file(REMOVE_RECURSE
  "libdagger_nic.a"
)
