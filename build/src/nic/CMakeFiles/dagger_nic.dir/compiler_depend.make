# Empty compiler generated dependencies file for dagger_nic.
# This may be replaced when dependencies are built.
