
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/ack_protocol.cc" "src/nic/CMakeFiles/dagger_nic.dir/ack_protocol.cc.o" "gcc" "src/nic/CMakeFiles/dagger_nic.dir/ack_protocol.cc.o.d"
  "/root/repo/src/nic/connection_manager.cc" "src/nic/CMakeFiles/dagger_nic.dir/connection_manager.cc.o" "gcc" "src/nic/CMakeFiles/dagger_nic.dir/connection_manager.cc.o.d"
  "/root/repo/src/nic/dagger_nic.cc" "src/nic/CMakeFiles/dagger_nic.dir/dagger_nic.cc.o" "gcc" "src/nic/CMakeFiles/dagger_nic.dir/dagger_nic.cc.o.d"
  "/root/repo/src/nic/load_balancer.cc" "src/nic/CMakeFiles/dagger_nic.dir/load_balancer.cc.o" "gcc" "src/nic/CMakeFiles/dagger_nic.dir/load_balancer.cc.o.d"
  "/root/repo/src/nic/request_buffer.cc" "src/nic/CMakeFiles/dagger_nic.dir/request_buffer.cc.o" "gcc" "src/nic/CMakeFiles/dagger_nic.dir/request_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dagger_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/dagger_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/ic/CMakeFiles/dagger_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dagger_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dagger_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
