file(REMOVE_RECURSE
  "CMakeFiles/dagger_nic.dir/ack_protocol.cc.o"
  "CMakeFiles/dagger_nic.dir/ack_protocol.cc.o.d"
  "CMakeFiles/dagger_nic.dir/connection_manager.cc.o"
  "CMakeFiles/dagger_nic.dir/connection_manager.cc.o.d"
  "CMakeFiles/dagger_nic.dir/dagger_nic.cc.o"
  "CMakeFiles/dagger_nic.dir/dagger_nic.cc.o.d"
  "CMakeFiles/dagger_nic.dir/load_balancer.cc.o"
  "CMakeFiles/dagger_nic.dir/load_balancer.cc.o.d"
  "CMakeFiles/dagger_nic.dir/request_buffer.cc.o"
  "CMakeFiles/dagger_nic.dir/request_buffer.cc.o.d"
  "libdagger_nic.a"
  "libdagger_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
