file(REMOVE_RECURSE
  "libdagger_baseline.a"
)
