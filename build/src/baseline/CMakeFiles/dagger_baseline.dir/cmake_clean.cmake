file(REMOVE_RECURSE
  "CMakeFiles/dagger_baseline.dir/soft_rpc_node.cc.o"
  "CMakeFiles/dagger_baseline.dir/soft_rpc_node.cc.o.d"
  "CMakeFiles/dagger_baseline.dir/soft_stack.cc.o"
  "CMakeFiles/dagger_baseline.dir/soft_stack.cc.o.d"
  "libdagger_baseline.a"
  "libdagger_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
