# Empty dependencies file for dagger_baseline.
# This may be replaced when dependencies are built.
