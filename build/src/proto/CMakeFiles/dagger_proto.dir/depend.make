# Empty dependencies file for dagger_proto.
# This may be replaced when dependencies are built.
