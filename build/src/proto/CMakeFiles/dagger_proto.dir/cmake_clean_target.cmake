file(REMOVE_RECURSE
  "libdagger_proto.a"
)
