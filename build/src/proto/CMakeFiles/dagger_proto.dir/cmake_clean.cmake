file(REMOVE_RECURSE
  "CMakeFiles/dagger_proto.dir/wire.cc.o"
  "CMakeFiles/dagger_proto.dir/wire.cc.o.d"
  "libdagger_proto.a"
  "libdagger_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
