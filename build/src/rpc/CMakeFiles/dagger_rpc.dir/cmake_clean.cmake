file(REMOVE_RECURSE
  "CMakeFiles/dagger_rpc.dir/client.cc.o"
  "CMakeFiles/dagger_rpc.dir/client.cc.o.d"
  "CMakeFiles/dagger_rpc.dir/cpu.cc.o"
  "CMakeFiles/dagger_rpc.dir/cpu.cc.o.d"
  "CMakeFiles/dagger_rpc.dir/report.cc.o"
  "CMakeFiles/dagger_rpc.dir/report.cc.o.d"
  "CMakeFiles/dagger_rpc.dir/server.cc.o"
  "CMakeFiles/dagger_rpc.dir/server.cc.o.d"
  "CMakeFiles/dagger_rpc.dir/system.cc.o"
  "CMakeFiles/dagger_rpc.dir/system.cc.o.d"
  "libdagger_rpc.a"
  "libdagger_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
