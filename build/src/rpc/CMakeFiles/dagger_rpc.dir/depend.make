# Empty dependencies file for dagger_rpc.
# This may be replaced when dependencies are built.
