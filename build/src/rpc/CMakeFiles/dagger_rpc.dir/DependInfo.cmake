
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/client.cc" "src/rpc/CMakeFiles/dagger_rpc.dir/client.cc.o" "gcc" "src/rpc/CMakeFiles/dagger_rpc.dir/client.cc.o.d"
  "/root/repo/src/rpc/cpu.cc" "src/rpc/CMakeFiles/dagger_rpc.dir/cpu.cc.o" "gcc" "src/rpc/CMakeFiles/dagger_rpc.dir/cpu.cc.o.d"
  "/root/repo/src/rpc/report.cc" "src/rpc/CMakeFiles/dagger_rpc.dir/report.cc.o" "gcc" "src/rpc/CMakeFiles/dagger_rpc.dir/report.cc.o.d"
  "/root/repo/src/rpc/server.cc" "src/rpc/CMakeFiles/dagger_rpc.dir/server.cc.o" "gcc" "src/rpc/CMakeFiles/dagger_rpc.dir/server.cc.o.d"
  "/root/repo/src/rpc/system.cc" "src/rpc/CMakeFiles/dagger_rpc.dir/system.cc.o" "gcc" "src/rpc/CMakeFiles/dagger_rpc.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dagger_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/dagger_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/ic/CMakeFiles/dagger_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dagger_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/dagger_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dagger_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
