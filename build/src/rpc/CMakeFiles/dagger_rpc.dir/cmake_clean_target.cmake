file(REMOVE_RECURSE
  "libdagger_rpc.a"
)
