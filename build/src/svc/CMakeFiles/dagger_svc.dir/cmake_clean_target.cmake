file(REMOVE_RECURSE
  "libdagger_svc.a"
)
