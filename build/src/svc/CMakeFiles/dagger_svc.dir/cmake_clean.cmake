file(REMOVE_RECURSE
  "CMakeFiles/dagger_svc.dir/flight.cc.o"
  "CMakeFiles/dagger_svc.dir/flight.cc.o.d"
  "CMakeFiles/dagger_svc.dir/socialnet.cc.o"
  "CMakeFiles/dagger_svc.dir/socialnet.cc.o.d"
  "CMakeFiles/dagger_svc.dir/tier.cc.o"
  "CMakeFiles/dagger_svc.dir/tier.cc.o.d"
  "libdagger_svc.a"
  "libdagger_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
