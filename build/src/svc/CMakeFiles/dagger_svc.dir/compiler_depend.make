# Empty compiler generated dependencies file for dagger_svc.
# This may be replaced when dependencies are built.
