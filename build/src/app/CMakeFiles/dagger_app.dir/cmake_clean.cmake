file(REMOVE_RECURSE
  "CMakeFiles/dagger_app.dir/kvs_service.cc.o"
  "CMakeFiles/dagger_app.dir/kvs_service.cc.o.d"
  "CMakeFiles/dagger_app.dir/memcached.cc.o"
  "CMakeFiles/dagger_app.dir/memcached.cc.o.d"
  "CMakeFiles/dagger_app.dir/mica.cc.o"
  "CMakeFiles/dagger_app.dir/mica.cc.o.d"
  "libdagger_app.a"
  "libdagger_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
