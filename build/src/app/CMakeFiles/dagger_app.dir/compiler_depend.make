# Empty compiler generated dependencies file for dagger_app.
# This may be replaced when dependencies are built.
