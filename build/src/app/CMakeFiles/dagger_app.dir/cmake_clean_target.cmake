file(REMOVE_RECURSE
  "libdagger_app.a"
)
