file(REMOVE_RECURSE
  "CMakeFiles/dagger_mem.dir/mem.cc.o"
  "CMakeFiles/dagger_mem.dir/mem.cc.o.d"
  "libdagger_mem.a"
  "libdagger_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
