# Empty dependencies file for dagger_mem.
# This may be replaced when dependencies are built.
