file(REMOVE_RECURSE
  "libdagger_mem.a"
)
