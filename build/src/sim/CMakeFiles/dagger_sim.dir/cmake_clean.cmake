file(REMOVE_RECURSE
  "CMakeFiles/dagger_sim.dir/event_queue.cc.o"
  "CMakeFiles/dagger_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/dagger_sim.dir/logging.cc.o"
  "CMakeFiles/dagger_sim.dir/logging.cc.o.d"
  "CMakeFiles/dagger_sim.dir/metrics.cc.o"
  "CMakeFiles/dagger_sim.dir/metrics.cc.o.d"
  "CMakeFiles/dagger_sim.dir/rng.cc.o"
  "CMakeFiles/dagger_sim.dir/rng.cc.o.d"
  "CMakeFiles/dagger_sim.dir/stats.cc.o"
  "CMakeFiles/dagger_sim.dir/stats.cc.o.d"
  "libdagger_sim.a"
  "libdagger_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
