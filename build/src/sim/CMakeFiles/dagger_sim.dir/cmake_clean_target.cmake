file(REMOVE_RECURSE
  "libdagger_sim.a"
)
