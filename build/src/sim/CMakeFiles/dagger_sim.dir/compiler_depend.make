# Empty compiler generated dependencies file for dagger_sim.
# This may be replaced when dependencies are built.
