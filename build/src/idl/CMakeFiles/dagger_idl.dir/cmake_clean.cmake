file(REMOVE_RECURSE
  "CMakeFiles/dagger_idl.dir/codegen.cc.o"
  "CMakeFiles/dagger_idl.dir/codegen.cc.o.d"
  "CMakeFiles/dagger_idl.dir/lexer.cc.o"
  "CMakeFiles/dagger_idl.dir/lexer.cc.o.d"
  "CMakeFiles/dagger_idl.dir/parser.cc.o"
  "CMakeFiles/dagger_idl.dir/parser.cc.o.d"
  "libdagger_idl.a"
  "libdagger_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
