file(REMOVE_RECURSE
  "libdagger_idl.a"
)
