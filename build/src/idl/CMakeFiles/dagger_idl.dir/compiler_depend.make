# Empty compiler generated dependencies file for dagger_idl.
# This may be replaced when dependencies are built.
