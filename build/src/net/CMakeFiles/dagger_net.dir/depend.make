# Empty dependencies file for dagger_net.
# This may be replaced when dependencies are built.
