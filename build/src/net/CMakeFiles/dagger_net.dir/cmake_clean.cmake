file(REMOVE_RECURSE
  "CMakeFiles/dagger_net.dir/tor_switch.cc.o"
  "CMakeFiles/dagger_net.dir/tor_switch.cc.o.d"
  "libdagger_net.a"
  "libdagger_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
