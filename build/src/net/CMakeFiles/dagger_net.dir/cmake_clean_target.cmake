file(REMOVE_RECURSE
  "libdagger_net.a"
)
