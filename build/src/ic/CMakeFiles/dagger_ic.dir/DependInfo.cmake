
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ic/cci_fabric.cc" "src/ic/CMakeFiles/dagger_ic.dir/cci_fabric.cc.o" "gcc" "src/ic/CMakeFiles/dagger_ic.dir/cci_fabric.cc.o.d"
  "/root/repo/src/ic/channel.cc" "src/ic/CMakeFiles/dagger_ic.dir/channel.cc.o" "gcc" "src/ic/CMakeFiles/dagger_ic.dir/channel.cc.o.d"
  "/root/repo/src/ic/cost_model.cc" "src/ic/CMakeFiles/dagger_ic.dir/cost_model.cc.o" "gcc" "src/ic/CMakeFiles/dagger_ic.dir/cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dagger_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
