# Empty compiler generated dependencies file for dagger_ic.
# This may be replaced when dependencies are built.
