file(REMOVE_RECURSE
  "libdagger_ic.a"
)
