file(REMOVE_RECURSE
  "CMakeFiles/dagger_ic.dir/cci_fabric.cc.o"
  "CMakeFiles/dagger_ic.dir/cci_fabric.cc.o.d"
  "CMakeFiles/dagger_ic.dir/channel.cc.o"
  "CMakeFiles/dagger_ic.dir/channel.cc.o.d"
  "CMakeFiles/dagger_ic.dir/cost_model.cc.o"
  "CMakeFiles/dagger_ic.dir/cost_model.cc.o.d"
  "libdagger_ic.a"
  "libdagger_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagger_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
