file(REMOVE_RECURSE
  "CMakeFiles/daggeridl.dir/daggeridl/main.cc.o"
  "CMakeFiles/daggeridl.dir/daggeridl/main.cc.o.d"
  "daggeridl"
  "daggeridl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daggeridl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
