# Empty dependencies file for daggeridl.
# This may be replaced when dependencies are built.
