file(REMOVE_RECURSE
  "../bench/fig10_cpu_nic_interfaces"
  "../bench/fig10_cpu_nic_interfaces.pdb"
  "CMakeFiles/fig10_cpu_nic_interfaces.dir/fig10_cpu_nic_interfaces.cc.o"
  "CMakeFiles/fig10_cpu_nic_interfaces.dir/fig10_cpu_nic_interfaces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_nic_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
