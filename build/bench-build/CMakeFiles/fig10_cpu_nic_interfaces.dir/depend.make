# Empty dependencies file for fig10_cpu_nic_interfaces.
# This may be replaced when dependencies are built.
