file(REMOVE_RECURSE
  "../bench/fig05_interference"
  "../bench/fig05_interference.pdb"
  "CMakeFiles/fig05_interference.dir/fig05_interference.cc.o"
  "CMakeFiles/fig05_interference.dir/fig05_interference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
