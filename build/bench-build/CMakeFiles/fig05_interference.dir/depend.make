# Empty dependencies file for fig05_interference.
# This may be replaced when dependencies are built.
