file(REMOVE_RECURSE
  "../bench/abl_conn_cache"
  "../bench/abl_conn_cache.pdb"
  "CMakeFiles/abl_conn_cache.dir/abl_conn_cache.cc.o"
  "CMakeFiles/abl_conn_cache.dir/abl_conn_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_conn_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
