# Empty dependencies file for abl_conn_cache.
# This may be replaced when dependencies are built.
