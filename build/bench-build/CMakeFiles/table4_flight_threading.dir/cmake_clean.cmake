file(REMOVE_RECURSE
  "../bench/table4_flight_threading"
  "../bench/table4_flight_threading.pdb"
  "CMakeFiles/table4_flight_threading.dir/table4_flight_threading.cc.o"
  "CMakeFiles/table4_flight_threading.dir/table4_flight_threading.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_flight_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
