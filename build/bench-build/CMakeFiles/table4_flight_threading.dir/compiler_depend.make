# Empty compiler generated dependencies file for table4_flight_threading.
# This may be replaced when dependencies are built.
