file(REMOVE_RECURSE
  "../bench/ext_socialnet_on_dagger"
  "../bench/ext_socialnet_on_dagger.pdb"
  "CMakeFiles/ext_socialnet_on_dagger.dir/ext_socialnet_on_dagger.cc.o"
  "CMakeFiles/ext_socialnet_on_dagger.dir/ext_socialnet_on_dagger.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_socialnet_on_dagger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
