# Empty compiler generated dependencies file for ext_socialnet_on_dagger.
# This may be replaced when dependencies are built.
