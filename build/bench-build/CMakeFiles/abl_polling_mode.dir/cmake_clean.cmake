file(REMOVE_RECURSE
  "../bench/abl_polling_mode"
  "../bench/abl_polling_mode.pdb"
  "CMakeFiles/abl_polling_mode.dir/abl_polling_mode.cc.o"
  "CMakeFiles/abl_polling_mode.dir/abl_polling_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_polling_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
