# Empty dependencies file for abl_polling_mode.
# This may be replaced when dependencies are built.
