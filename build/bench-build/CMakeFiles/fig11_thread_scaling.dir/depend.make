# Empty dependencies file for fig11_thread_scaling.
# This may be replaced when dependencies are built.
