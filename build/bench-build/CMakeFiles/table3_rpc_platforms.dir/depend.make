# Empty dependencies file for table3_rpc_platforms.
# This may be replaced when dependencies are built.
