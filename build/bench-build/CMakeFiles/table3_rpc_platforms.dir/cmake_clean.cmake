file(REMOVE_RECURSE
  "../bench/table3_rpc_platforms"
  "../bench/table3_rpc_platforms.pdb"
  "CMakeFiles/table3_rpc_platforms.dir/table3_rpc_platforms.cc.o"
  "CMakeFiles/table3_rpc_platforms.dir/table3_rpc_platforms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rpc_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
