# Empty compiler generated dependencies file for fig12_kvs.
# This may be replaced when dependencies are built.
