file(REMOVE_RECURSE
  "../bench/fig12_kvs"
  "../bench/fig12_kvs.pdb"
  "CMakeFiles/fig12_kvs.dir/fig12_kvs.cc.o"
  "CMakeFiles/fig12_kvs.dir/fig12_kvs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
