file(REMOVE_RECURSE
  "../bench/ext_cxl_interface"
  "../bench/ext_cxl_interface.pdb"
  "CMakeFiles/ext_cxl_interface.dir/ext_cxl_interface.cc.o"
  "CMakeFiles/ext_cxl_interface.dir/ext_cxl_interface.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cxl_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
