# Empty dependencies file for ext_cxl_interface.
# This may be replaced when dependencies are built.
