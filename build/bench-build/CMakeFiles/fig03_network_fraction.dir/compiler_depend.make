# Empty compiler generated dependencies file for fig03_network_fraction.
# This may be replaced when dependencies are built.
