file(REMOVE_RECURSE
  "../bench/fig03_network_fraction"
  "../bench/fig03_network_fraction.pdb"
  "CMakeFiles/fig03_network_fraction.dir/fig03_network_fraction.cc.o"
  "CMakeFiles/fig03_network_fraction.dir/fig03_network_fraction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_network_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
