file(REMOVE_RECURSE
  "../bench/fig15_flight_latency_load"
  "../bench/fig15_flight_latency_load.pdb"
  "CMakeFiles/fig15_flight_latency_load.dir/fig15_flight_latency_load.cc.o"
  "CMakeFiles/fig15_flight_latency_load.dir/fig15_flight_latency_load.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_flight_latency_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
