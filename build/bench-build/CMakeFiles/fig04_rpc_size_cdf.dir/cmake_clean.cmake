file(REMOVE_RECURSE
  "../bench/fig04_rpc_size_cdf"
  "../bench/fig04_rpc_size_cdf.pdb"
  "CMakeFiles/fig04_rpc_size_cdf.dir/fig04_rpc_size_cdf.cc.o"
  "CMakeFiles/fig04_rpc_size_cdf.dir/fig04_rpc_size_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rpc_size_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
