# Empty dependencies file for fig04_rpc_size_cdf.
# This may be replaced when dependencies are built.
