file(REMOVE_RECURSE
  "../bench/abl_load_balancer"
  "../bench/abl_load_balancer.pdb"
  "CMakeFiles/abl_load_balancer.dir/abl_load_balancer.cc.o"
  "CMakeFiles/abl_load_balancer.dir/abl_load_balancer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
