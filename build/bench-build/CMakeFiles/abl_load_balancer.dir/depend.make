# Empty dependencies file for abl_load_balancer.
# This may be replaced when dependencies are built.
