
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/test_sim.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/event_queue_test.cc.o.d"
  "/root/repo/tests/sim/metric_registry_test.cc" "tests/CMakeFiles/test_sim.dir/sim/metric_registry_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/metric_registry_test.cc.o.d"
  "/root/repo/tests/sim/rng_test.cc" "tests/CMakeFiles/test_sim.dir/sim/rng_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/rng_test.cc.o.d"
  "/root/repo/tests/sim/stats_test.cc" "tests/CMakeFiles/test_sim.dir/sim/stats_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idl/CMakeFiles/dagger_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/dagger_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dagger_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/dagger_app.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dagger_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/dagger_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dagger_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ic/CMakeFiles/dagger_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dagger_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/dagger_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dagger_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
