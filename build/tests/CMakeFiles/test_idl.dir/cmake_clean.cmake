file(REMOVE_RECURSE
  "CMakeFiles/test_idl.dir/idl/idl_enum_test.cc.o"
  "CMakeFiles/test_idl.dir/idl/idl_enum_test.cc.o.d"
  "CMakeFiles/test_idl.dir/idl/idl_options_test.cc.o"
  "CMakeFiles/test_idl.dir/idl/idl_options_test.cc.o.d"
  "CMakeFiles/test_idl.dir/idl/idl_test.cc.o"
  "CMakeFiles/test_idl.dir/idl/idl_test.cc.o.d"
  "test_idl"
  "test_idl.pdb"
  "test_idl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
