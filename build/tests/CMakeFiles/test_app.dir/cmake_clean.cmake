file(REMOVE_RECURSE
  "CMakeFiles/test_app.dir/app/kvs_service_test.cc.o"
  "CMakeFiles/test_app.dir/app/kvs_service_test.cc.o.d"
  "CMakeFiles/test_app.dir/app/kvs_sweep_test.cc.o"
  "CMakeFiles/test_app.dir/app/kvs_sweep_test.cc.o.d"
  "CMakeFiles/test_app.dir/app/memcached_test.cc.o"
  "CMakeFiles/test_app.dir/app/memcached_test.cc.o.d"
  "CMakeFiles/test_app.dir/app/mica_test.cc.o"
  "CMakeFiles/test_app.dir/app/mica_test.cc.o.d"
  "test_app"
  "test_app.pdb"
  "test_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
