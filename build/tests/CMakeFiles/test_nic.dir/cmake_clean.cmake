file(REMOVE_RECURSE
  "CMakeFiles/test_nic.dir/nic/connection_manager_test.cc.o"
  "CMakeFiles/test_nic.dir/nic/connection_manager_test.cc.o.d"
  "CMakeFiles/test_nic.dir/nic/load_balancer_test.cc.o"
  "CMakeFiles/test_nic.dir/nic/load_balancer_test.cc.o.d"
  "CMakeFiles/test_nic.dir/nic/request_buffer_test.cc.o"
  "CMakeFiles/test_nic.dir/nic/request_buffer_test.cc.o.d"
  "test_nic"
  "test_nic.pdb"
  "test_nic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
