file(REMOVE_RECURSE
  "CMakeFiles/test_nic_integration.dir/nic/ack_protocol_test.cc.o"
  "CMakeFiles/test_nic_integration.dir/nic/ack_protocol_test.cc.o.d"
  "CMakeFiles/test_nic_integration.dir/nic/nic_integration_test.cc.o"
  "CMakeFiles/test_nic_integration.dir/nic/nic_integration_test.cc.o.d"
  "test_nic_integration"
  "test_nic_integration.pdb"
  "test_nic_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
