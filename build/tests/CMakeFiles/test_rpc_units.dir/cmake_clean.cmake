file(REMOVE_RECURSE
  "CMakeFiles/test_rpc_units.dir/rpc/cpu_test.cc.o"
  "CMakeFiles/test_rpc_units.dir/rpc/cpu_test.cc.o.d"
  "CMakeFiles/test_rpc_units.dir/rpc/rings_test.cc.o"
  "CMakeFiles/test_rpc_units.dir/rpc/rings_test.cc.o.d"
  "test_rpc_units"
  "test_rpc_units.pdb"
  "test_rpc_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpc_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
