# Empty dependencies file for test_rpc_units.
# This may be replaced when dependencies are built.
