file(REMOVE_RECURSE
  "CMakeFiles/test_rpc.dir/rpc/client_pool_test.cc.o"
  "CMakeFiles/test_rpc.dir/rpc/client_pool_test.cc.o.d"
  "CMakeFiles/test_rpc.dir/rpc/end_to_end_test.cc.o"
  "CMakeFiles/test_rpc.dir/rpc/end_to_end_test.cc.o.d"
  "CMakeFiles/test_rpc.dir/rpc/report_test.cc.o"
  "CMakeFiles/test_rpc.dir/rpc/report_test.cc.o.d"
  "CMakeFiles/test_rpc.dir/rpc/system_test.cc.o"
  "CMakeFiles/test_rpc.dir/rpc/system_test.cc.o.d"
  "test_rpc"
  "test_rpc.pdb"
  "test_rpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
