# Empty dependencies file for test_ic.
# This may be replaced when dependencies are built.
