file(REMOVE_RECURSE
  "CMakeFiles/test_ic.dir/ic/channel_test.cc.o"
  "CMakeFiles/test_ic.dir/ic/channel_test.cc.o.d"
  "test_ic"
  "test_ic.pdb"
  "test_ic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
