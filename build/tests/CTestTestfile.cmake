# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_ic[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_idl[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_rpc_units[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_svc[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_nic_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_bench[1]_include.cmake")
add_test(idlc.kvs "/root/repo/build/tools/daggeridl" "/root/repo/examples/idl/kvs.idl" "/root/repo/build/idlc_test_kvs.hh")
set_tests_properties(idlc.kvs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;80;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(idlc.telemetry "/root/repo/build/tools/daggeridl" "/root/repo/examples/idl/telemetry.idl" "/root/repo/build/idlc_test_telemetry.hh")
set_tests_properties(idlc.telemetry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;83;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(idlc.missing_input "/root/repo/build/tools/daggeridl" "/root/repo/does_not_exist.idl" "/root/repo/build/idlc_test_none.hh")
set_tests_properties(idlc.missing_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;86;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(idlc.usage "/root/repo/build/tools/daggeridl")
set_tests_properties(idlc.usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;90;add_test;/root/repo/tests/CMakeLists.txt;0;")
