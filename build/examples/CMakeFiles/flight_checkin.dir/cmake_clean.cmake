file(REMOVE_RECURSE
  "CMakeFiles/flight_checkin.dir/flight_checkin.cc.o"
  "CMakeFiles/flight_checkin.dir/flight_checkin.cc.o.d"
  "flight_checkin"
  "flight_checkin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_checkin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
