# Empty dependencies file for flight_checkin.
# This may be replaced when dependencies are built.
