file(REMOVE_RECURSE
  "../generated/telemetry_gen.hh"
  "CMakeFiles/telemetry.dir/telemetry.cc.o"
  "CMakeFiles/telemetry.dir/telemetry.cc.o.d"
  "telemetry"
  "telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
