# Empty compiler generated dependencies file for mica_server.
# This may be replaced when dependencies are built.
