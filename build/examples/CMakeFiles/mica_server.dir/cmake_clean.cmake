file(REMOVE_RECURSE
  "CMakeFiles/mica_server.dir/mica_server.cc.o"
  "CMakeFiles/mica_server.dir/mica_server.cc.o.d"
  "mica_server"
  "mica_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mica_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
