# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.mica_server "/root/repo/build/examples/mica_server")
set_tests_properties(example.mica_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.flight_checkin "/root/repo/build/examples/flight_checkin")
set_tests_properties(example.flight_checkin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.multi_tenant "/root/repo/build/examples/multi_tenant")
set_tests_properties(example.multi_tenant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.telemetry "/root/repo/build/examples/telemetry")
set_tests_properties(example.telemetry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
