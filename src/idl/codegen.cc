#include "idl/codegen.hh"

#include <cctype>
#include <sstream>

namespace dagger::idl {

namespace {

std::string
capitalize(const std::string &s)
{
    std::string out = s;
    if (!out.empty())
        out[0] = static_cast<char>(
            std::toupper(static_cast<unsigned char>(out[0])));
    return out;
}

void
emitEnum(std::ostringstream &os, const EnumDef &e)
{
    os << "/** IDL enum `" << e.name << "` (int32 on the wire). */\n";
    os << "enum class " << e.name << " : std::int32_t\n{\n";
    for (const Enumerator &v : e.values)
        os << "    " << v.name << " = " << v.value << ",\n";
    os << "};\n\n";
}

void
emitMessage(std::ostringstream &os, const MessageDef &m)
{
    os << "/** IDL message `" << m.name << "` (" << m.byteSize()
       << " bytes on the wire). */\n";
    os << "#pragma pack(push, 1)\n";
    os << "struct " << m.name << "\n{\n";
    for (const Field &f : m.fields) {
        const char *type = f.kind == FieldKind::Enum
            ? f.enumName.c_str()
            : fieldKindCpp(f.kind);
        os << "    " << type << " " << f.name;
        if (f.kind == FieldKind::CharArray)
            os << "[" << f.arrayLen << "]";
        os << "{};\n";
    }
    os << "};\n";
    os << "#pragma pack(pop)\n";
    os << "static_assert(sizeof(" << m.name << ") == " << m.byteSize()
       << ", \"packed layout mismatch\");\n\n";
}

void
emitService(std::ostringstream &os, const ServiceDef &s)
{
    // Function-id enum.
    os << "/** Function ids of service `" << s.name << "`. */\n";
    os << "enum class " << s.name << "Fn : std::uint16_t\n{\n";
    for (const RpcDef &r : s.rpcs)
        os << "    " << r.name << " = " << r.fnId << ",\n";
    os << "};\n\n";

    // Client stub.
    os << "/** Client stub for `" << s.name
       << "`: wraps an RpcClient flow. */\n";
    os << "class " << s.name << "Client\n{\n  public:\n";
    os << "    explicit " << s.name
       << "Client(dagger::rpc::RpcClient &client) : _client(client) {}\n\n";
    for (const RpcDef &r : s.rpcs) {
        if (r.oneWay) {
            os << "    /** One-way `" << r.name
               << "`: fire-and-forget, no response. */\n";
            os << "    void\n    " << r.name << "(const " << r.requestType
               << " &req)\n    {\n";
            os << "        _client.callOneWay(static_cast<"
                  "dagger::proto::FnId>(" << s.name << "Fn::" << r.name
               << "),\n                           &req, sizeof(req));\n";
            os << "    }\n\n";
            continue;
        }
        os << "    /** Non-blocking `" << r.name
           << "`; the continuation runs on the client thread. */\n";
        os << "    void\n    " << r.name << "(const " << r.requestType
           << " &req,\n        std::function<void(const " << r.responseType
           << " &)> cb = {})\n    {\n";
        os << "        dagger::rpc::RpcClient::ResponseCb raw;\n";
        os << "        if (cb) {\n";
        os << "            raw = [cb = std::move(cb)](const "
              "dagger::proto::RpcMessage &m) {\n";
        os << "                " << r.responseType << " resp{};\n";
        os << "                if (m.payloadAs(resp))\n";
        os << "                    cb(resp);\n";
        os << "            };\n";
        os << "        }\n";
        os << "        _client.callAsync(static_cast<dagger::proto::FnId>("
           << s.name << "Fn::" << r.name
           << "),\n                          &req, sizeof(req), "
              "std::move(raw));\n";
        os << "    }\n\n";
    }
    os << "    /** The underlying transport client. */\n";
    os << "    dagger::rpc::RpcClient &raw() { return _client; }\n\n";
    os << "  private:\n    dagger::rpc::RpcClient &_client;\n};\n\n";

    // Server skeleton.
    os << "/** Server skeleton for `" << s.name
       << "`: subclass and attach(). */\n";
    os << "class " << s.name << "Service\n{\n  public:\n";
    os << "    virtual ~" << s.name << "Service() = default;\n\n";
    for (const RpcDef &r : s.rpcs) {
        os << "    struct " << capitalize(r.name) << "Result\n    {\n";
        if (!r.oneWay)
            os << "        " << r.responseType << " response{};\n";
        os << "        dagger::sim::Tick cost = 0; ///< simulated CPU time\n";
        if (!r.oneWay)
            os << "        bool respond = true;\n";
        os << "    };\n";
        os << "    virtual " << capitalize(r.name) << "Result " << r.name
           << "(const " << r.requestType << " &req) = 0;\n\n";
    }
    os << "    /** Register all rpcs on @p server. */\n";
    os << "    void\n    attach(dagger::rpc::RpcThreadedServer &server)\n"
          "    {\n";
    for (const RpcDef &r : s.rpcs) {
        os << "        server.registerHandler(\n";
        os << "            static_cast<dagger::proto::FnId>(" << s.name
           << "Fn::" << r.name << "),\n";
        os << "            [this](const dagger::proto::RpcMessage &m) {\n";
        os << "                dagger::rpc::HandlerOutcome out;\n";
        os << "                " << r.requestType << " req{};\n";
        os << "                if (!m.payloadAs(req)) {\n";
        os << "                    out.respond = false;\n";
        os << "                    return out;\n";
        os << "                }\n";
        os << "                auto result = this->" << r.name << "(req);\n";
        os << "                out.cost = result.cost;\n";
        if (r.oneWay) {
            os << "                out.respond = false;\n";
        } else {
            os << "                out.respond = result.respond;\n";
            os << "                out.response = "
                  "dagger::proto::PayloadBuf::ofPod(result.response);\n";
        }
        os << "                return out;\n";
        os << "            });\n";
    }
    os << "    }\n};\n\n";
}

} // namespace

std::string
generateHeader(const IdlFile &file, const CodegenOptions &opts)
{
    std::string ns = opts.ns;
    if (ns.empty()) {
        auto it = file.options.find("namespace");
        ns = it != file.options.end() ? it->second : "daggergen";
    }
    std::ostringstream os;
    os << "// Generated by daggeridl from " << opts.sourceName
       << ". DO NOT EDIT.\n";
    os << "#pragma once\n\n";
    os << "#include <cstdint>\n#include <cstring>\n#include <functional>\n\n";
    os << "#include \"proto/wire.hh\"\n";
    os << "#include \"rpc/client.hh\"\n";
    os << "#include \"rpc/server.hh\"\n\n";
    os << "namespace " << ns << " {\n\n";
    for (const EnumDef &e : file.enums)
        emitEnum(os, e);
    for (const MessageDef &m : file.messages)
        emitMessage(os, m);
    for (const ServiceDef &s : file.services)
        emitService(os, s);
    os << "} // namespace " << ns << "\n";
    return os.str();
}

} // namespace dagger::idl
