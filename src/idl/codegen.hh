/**
 * @file
 * C++ code generator for the Dagger IDL.
 *
 * "The code generator parses target IDL files and produces client and
 * server stubs which wrap up the low-level RPC structures being
 * written/read to/from the hardware into the high-level service API
 * function calls." (§4.2)  The paper's generator is Python; here it
 * is a C++ library plus the `daggeridl` CLI so stub generation is a
 * normal build step (see cmake/DaggerIdl.cmake).
 */

#ifndef DAGGER_IDL_CODEGEN_HH
#define DAGGER_IDL_CODEGEN_HH

#include <string>

#include "idl/ast.hh"

namespace dagger::idl {

/** Generation options. */
struct CodegenOptions
{
    /**
     * Namespace the generated types live in.  Empty means: use the
     * file's `option namespace = ...;` if present, else "daggergen".
     */
    std::string ns;

    /** Name recorded in the header banner (usually the .idl path). */
    std::string sourceName = "<memory>";
};

/**
 * Generate a self-contained C++ header with, per message, a packed
 * POD struct, and per service:
 *  - a `<Service>Fn` enum of function ids,
 *  - a `<Service>Client` stub wrapping an RpcClient,
 *  - a `<Service>Service` skeleton with one pure-virtual method per
 *    rpc and an attach() that registers handlers on an
 *    RpcThreadedServer.
 */
std::string generateHeader(const IdlFile &file,
                           const CodegenOptions &opts = {});

} // namespace dagger::idl

#endif // DAGGER_IDL_CODEGEN_HH
