/**
 * @file
 * Tokenizer for the Dagger IDL.
 */

#ifndef DAGGER_IDL_LEXER_HH
#define DAGGER_IDL_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dagger::idl {

/** Token categories. */
enum class TokKind {
    Ident,   ///< identifiers and keywords
    Number,  ///< unsigned integer literal
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Equals,
    End, ///< end of input
};

/** One token with source position. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;
    std::uint64_t number = 0;
    unsigned line = 1;
    unsigned col = 1;
};

/** Thrown (as a value) for lexical and syntax errors. */
struct IdlError
{
    std::string message;
    unsigned line = 0;
    unsigned col = 0;

    std::string
    what() const
    {
        return "line " + std::to_string(line) + ":" + std::to_string(col) +
               ": " + message;
    }
};

/**
 * Tokenize @p src.  '//' and '#' start line comments.
 * @throws IdlError on illegal characters.
 */
std::vector<Token> lex(const std::string &src);

} // namespace dagger::idl

#endif // DAGGER_IDL_LEXER_HH
