/**
 * @file
 * Recursive-descent parser and semantic checker for the Dagger IDL.
 */

#ifndef DAGGER_IDL_PARSER_HH
#define DAGGER_IDL_PARSER_HH

#include <string>

#include "idl/ast.hh"
#include "idl/lexer.hh"

namespace dagger::idl {

/**
 * Parse @p src into an IdlFile and run semantic checks:
 *  - unique message/service/field/rpc names,
 *  - rpc request/response types must name declared messages,
 *  - char arrays need a positive length,
 *  - message payloads must fit the wire format (<= 65535 B).
 *
 * @throws IdlError on any lexical, syntax, or semantic problem.
 */
IdlFile parse(const std::string &src);

} // namespace dagger::idl

#endif // DAGGER_IDL_PARSER_HH
