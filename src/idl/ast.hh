/**
 * @file
 * AST for the Dagger Interface Definition Language (§4.2, Listing 1).
 *
 * The IDL follows the paper's protobuf-inspired scheme:
 *
 *   Message GetRequest {
 *       int32 timestamp;
 *       char[32] key;
 *   }
 *
 *   Service KeyValueStore {
 *       rpc get(GetRequest) returns(GetResponse);
 *   }
 *
 * Messages are flat, fixed-size records ("our current implementation
 * only supports RPCs with continuous arguments that do not contain
 * references to other objects", §4.5) — so generated C++ messages are
 * packed PODs and serialization is a memcpy.
 */

#ifndef DAGGER_IDL_AST_HH
#define DAGGER_IDL_AST_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dagger::idl {

/** Scalar field types supported by the IDL. */
enum class FieldKind {
    Enum, ///< named IDL enum (wire width: int32)
    Bool,
    Int8,
    Int16,
    Int32,
    Int64,
    UInt8,
    UInt16,
    UInt32,
    UInt64,
    Float32,
    Float64,
    CharArray, ///< char[N] fixed-size string/blob
};

/** Size in bytes of one element of a field kind. */
std::size_t fieldKindSize(FieldKind kind);

/** C++ type spelling for a field kind (element type for arrays). */
const char *fieldKindCpp(FieldKind kind);

/** IDL spelling (for error messages / round-tripping). */
const char *fieldKindName(FieldKind kind);

/** One message field. */
struct Field
{
    FieldKind kind = FieldKind::Int32;
    std::size_t arrayLen = 0;  ///< nonzero only for CharArray
    std::string enumName;      ///< set when the field's type is an enum
    std::string name;
    unsigned line = 0;

    std::size_t
    byteSize() const
    {
        return kind == FieldKind::CharArray ? arrayLen
                                            : fieldKindSize(kind);
    }
};

/** One enumerator of an IDL enum. */
struct Enumerator
{
    std::string name;
    std::int64_t value = 0;
    unsigned line = 0;
};

/** An enum definition (generated as a C++ `enum class : int32_t`). */
struct EnumDef
{
    std::string name;
    std::vector<Enumerator> values;
    unsigned line = 0;
};

/** A message definition. */
struct MessageDef
{
    std::string name;
    std::vector<Field> fields;
    unsigned line = 0;

    /** Packed byte size of the message. */
    std::size_t
    byteSize() const
    {
        std::size_t n = 0;
        for (const Field &f : fields)
            n += f.byteSize();
        return n;
    }
};

/** One rpc declaration inside a service. */
struct RpcDef
{
    std::string name;
    std::string requestType;
    std::string responseType; ///< "void" for one-way RPCs
    std::uint16_t fnId = 0;   ///< assigned sequentially from fn_base+1
    bool oneWay = false;      ///< `returns(void)`: no response at all
    unsigned line = 0;
};

/** A service definition. */
struct ServiceDef
{
    std::string name;
    std::vector<RpcDef> rpcs;
    unsigned line = 0;
};

/** A parsed IDL file. */
struct IdlFile
{
    std::vector<EnumDef> enums;
    std::vector<MessageDef> messages;
    std::vector<ServiceDef> services;

    const EnumDef *findEnum(const std::string &name) const;

    /**
     * File-level options:
     *  - `option namespace = my_ns;`  default C++ namespace for the
     *    generated code (a --ns on the CLI still wins);
     *  - `option fn_base = 100;`      function ids of subsequent
     *    services start at fn_base + 1 (lets two services share one
     *    server without id collisions).
     */
    std::map<std::string, std::string> options;

    const MessageDef *findMessage(const std::string &name) const;
};

} // namespace dagger::idl

#endif // DAGGER_IDL_AST_HH
