#include "idl/parser.hh"

#include <unordered_map>
#include <unordered_set>

namespace dagger::idl {

std::size_t
fieldKindSize(FieldKind kind)
{
    switch (kind) {
      case FieldKind::Bool:
      case FieldKind::Int8:
      case FieldKind::UInt8:
      case FieldKind::CharArray:
        return 1;
      case FieldKind::Int16:
      case FieldKind::UInt16:
        return 2;
      case FieldKind::Int32:
      case FieldKind::UInt32:
      case FieldKind::Float32:
      case FieldKind::Enum:
        return 4;
      case FieldKind::Int64:
      case FieldKind::UInt64:
      case FieldKind::Float64:
        return 8;
    }
    return 0;
}

const char *
fieldKindCpp(FieldKind kind)
{
    switch (kind) {
      case FieldKind::Bool:
        return "bool";
      case FieldKind::Int8:
        return "std::int8_t";
      case FieldKind::Int16:
        return "std::int16_t";
      case FieldKind::Int32:
        return "std::int32_t";
      case FieldKind::Int64:
        return "std::int64_t";
      case FieldKind::UInt8:
        return "std::uint8_t";
      case FieldKind::UInt16:
        return "std::uint16_t";
      case FieldKind::UInt32:
        return "std::uint32_t";
      case FieldKind::UInt64:
        return "std::uint64_t";
      case FieldKind::Float32:
        return "float";
      case FieldKind::Float64:
        return "double";
      case FieldKind::CharArray:
        return "char";
      case FieldKind::Enum:
        return "<enum>"; // resolved via Field::enumName
    }
    return "?";
}

const char *
fieldKindName(FieldKind kind)
{
    switch (kind) {
      case FieldKind::Bool:
        return "bool";
      case FieldKind::Int8:
        return "int8";
      case FieldKind::Int16:
        return "int16";
      case FieldKind::Int32:
        return "int32";
      case FieldKind::Int64:
        return "int64";
      case FieldKind::UInt8:
        return "uint8";
      case FieldKind::UInt16:
        return "uint16";
      case FieldKind::UInt32:
        return "uint32";
      case FieldKind::UInt64:
        return "uint64";
      case FieldKind::Float32:
        return "float32";
      case FieldKind::Float64:
        return "float64";
      case FieldKind::CharArray:
        return "char[]";
      case FieldKind::Enum:
        return "enum";
    }
    return "?";
}

const MessageDef *
IdlFile::findMessage(const std::string &name) const
{
    for (const MessageDef &m : messages)
        if (m.name == name)
            return &m;
    return nullptr;
}

const EnumDef *
IdlFile::findEnum(const std::string &name) const
{
    for (const EnumDef &e : enums)
        if (e.name == name)
            return &e;
    return nullptr;
}

namespace {

const std::unordered_map<std::string, FieldKind> kScalarTypes = {
    {"bool", FieldKind::Bool},       {"int8", FieldKind::Int8},
    {"int16", FieldKind::Int16},     {"int32", FieldKind::Int32},
    {"int64", FieldKind::Int64},     {"uint8", FieldKind::UInt8},
    {"uint16", FieldKind::UInt16},   {"uint32", FieldKind::UInt32},
    {"uint64", FieldKind::UInt64},   {"float32", FieldKind::Float32},
    {"float64", FieldKind::Float64},
};

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : _toks(std::move(toks)) {}

    IdlFile
    run()
    {
        IdlFile file;
        while (peek().kind != TokKind::End) {
            const Token &t = expect(TokKind::Ident,
                                    "'Message', 'Service' or 'option'");
            if (t.text == "Message" || t.text == "message") {
                file.messages.push_back(parseMessage(file));
            } else if (t.text == "Enum" || t.text == "enum") {
                file.enums.push_back(parseEnum());
            } else if (t.text == "Service" || t.text == "service") {
                file.services.push_back(parseService());
            } else if (t.text == "option") {
                parseOption(file);
            } else {
                throw IdlError{"expected 'Message', 'Service' or "
                               "'option', got '" + t.text + "'",
                               t.line, t.col};
            }
        }
        check(file);
        return file;
    }

  private:
    const Token &peek() const { return _toks[_pos]; }
    const Token &next() { return _toks[_pos++]; }

    const Token &
    expect(TokKind kind, const char *what)
    {
        const Token &t = next();
        if (t.kind != kind)
            throw IdlError{std::string("expected ") + what + ", got '" +
                               (t.kind == TokKind::End ? "<eof>" : t.text) +
                               "'",
                           t.line, t.col};
        return t;
    }

    void
    parseOption(IdlFile &file)
    {
        const Token &name = expect(TokKind::Ident, "option name");
        if (name.text != "namespace" && name.text != "fn_base")
            throw IdlError{"unknown option '" + name.text + "'",
                           name.line, name.col};
        expect(TokKind::Equals, "'='");
        const Token &value = next();
        std::string text;
        if (value.kind == TokKind::Ident) {
            text = value.text;
        } else if (value.kind == TokKind::Number) {
            text = std::to_string(value.number);
        } else {
            throw IdlError{"expected option value", value.line, value.col};
        }
        if (name.text == "fn_base") {
            if (value.kind != TokKind::Number || value.number > 0xfff0)
                throw IdlError{"fn_base must be a number <= 65520",
                               value.line, value.col};
            _fnBase = static_cast<std::uint16_t>(value.number);
        }
        expect(TokKind::Semicolon, "';'");
        file.options[name.text] = text;
    }

    MessageDef
    parseMessage(const IdlFile &file)
    {
        MessageDef msg;
        const Token &name = expect(TokKind::Ident, "message name");
        msg.name = name.text;
        msg.line = name.line;
        expect(TokKind::LBrace, "'{'");
        while (peek().kind != TokKind::RBrace)
            msg.fields.push_back(parseField(file));
        next(); // consume '}'
        return msg;
    }

    EnumDef
    parseEnum()
    {
        EnumDef def;
        const Token &name = expect(TokKind::Ident, "enum name");
        def.name = name.text;
        def.line = name.line;
        expect(TokKind::LBrace, "'{'");
        while (peek().kind != TokKind::RBrace) {
            Enumerator e;
            const Token &en = expect(TokKind::Ident, "enumerator name");
            e.name = en.text;
            e.line = en.line;
            expect(TokKind::Equals, "'='");
            const Token &val = expect(TokKind::Number, "enumerator value");
            e.value = static_cast<std::int64_t>(val.number);
            expect(TokKind::Semicolon, "';'");
            def.values.push_back(std::move(e));
        }
        next(); // consume '}'
        if (def.values.empty())
            throw IdlError{"enum '" + def.name + "' has no enumerators",
                           def.line, 1};
        return def;
    }

    Field
    parseField(const IdlFile &file)
    {
        Field f;
        const Token &type = expect(TokKind::Ident, "field type");
        f.line = type.line;
        if (file.findEnum(type.text)) {
            f.kind = FieldKind::Enum;
            f.enumName = type.text;
            const Token &fname0 = expect(TokKind::Ident, "field name");
            f.name = fname0.text;
            expect(TokKind::Semicolon, "';'");
            return f;
        }
        if (type.text == "char") {
            f.kind = FieldKind::CharArray;
            expect(TokKind::LBracket, "'[' after char");
            const Token &len = expect(TokKind::Number, "array length");
            f.arrayLen = static_cast<std::size_t>(len.number);
            if (f.arrayLen == 0)
                throw IdlError{"char array length must be positive",
                               len.line, len.col};
            expect(TokKind::RBracket, "']'");
        } else {
            auto it = kScalarTypes.find(type.text);
            if (it == kScalarTypes.end())
                throw IdlError{"unknown field type '" + type.text + "'",
                               type.line, type.col};
            f.kind = it->second;
        }
        const Token &fname = expect(TokKind::Ident, "field name");
        f.name = fname.text;
        expect(TokKind::Semicolon, "';'");
        return f;
    }

    ServiceDef
    parseService()
    {
        ServiceDef svc;
        const Token &name = expect(TokKind::Ident, "service name");
        svc.name = name.text;
        svc.line = name.line;
        expect(TokKind::LBrace, "'{'");
        std::uint16_t next_id = static_cast<std::uint16_t>(_fnBase + 1);
        while (peek().kind != TokKind::RBrace) {
            const Token &kw = expect(TokKind::Ident, "'rpc'");
            if (kw.text != "rpc")
                throw IdlError{"expected 'rpc', got '" + kw.text + "'",
                               kw.line, kw.col};
            RpcDef rpc;
            const Token &rname = expect(TokKind::Ident, "rpc name");
            rpc.name = rname.text;
            rpc.line = rname.line;
            expect(TokKind::LParen, "'('");
            rpc.requestType = expect(TokKind::Ident, "request type").text;
            expect(TokKind::RParen, "')'");
            const Token &ret = expect(TokKind::Ident, "'returns'");
            if (ret.text != "returns")
                throw IdlError{"expected 'returns', got '" + ret.text + "'",
                               ret.line, ret.col};
            expect(TokKind::LParen, "'('");
            rpc.responseType = expect(TokKind::Ident, "response type").text;
            rpc.oneWay = rpc.responseType == "void";
            expect(TokKind::RParen, "')'");
            expect(TokKind::Semicolon, "';'");
            rpc.fnId = next_id++;
            svc.rpcs.push_back(std::move(rpc));
        }
        next(); // consume '}'
        return svc;
    }

    void
    check(const IdlFile &file)
    {
        std::unordered_set<std::string> names;
        for (const EnumDef &e : file.enums) {
            if (!names.insert(e.name).second)
                throw IdlError{"duplicate name '" + e.name + "'", e.line,
                               1};
            std::unordered_set<std::string> enumerators;
            for (const Enumerator &v : e.values)
                if (!enumerators.insert(v.name).second)
                    throw IdlError{"duplicate enumerator '" + v.name +
                                       "' in enum '" + e.name + "'",
                                   v.line, 1};
        }
        for (const MessageDef &m : file.messages) {
            if (!names.insert(m.name).second)
                throw IdlError{"duplicate message '" + m.name + "'", m.line,
                               1};
            std::unordered_set<std::string> fields;
            for (const Field &f : m.fields)
                if (!fields.insert(f.name).second)
                    throw IdlError{"duplicate field '" + f.name +
                                       "' in message '" + m.name + "'",
                                   f.line, 1};
            if (m.byteSize() > 0xffff)
                throw IdlError{"message '" + m.name +
                                   "' exceeds the 65535-byte payload limit",
                               m.line, 1};
            if (m.fields.empty())
                throw IdlError{"message '" + m.name + "' has no fields",
                               m.line, 1};
        }
        std::unordered_set<std::string> svc_names;
        for (const ServiceDef &s : file.services) {
            if (names.count(s.name) || !svc_names.insert(s.name).second)
                throw IdlError{"duplicate name '" + s.name + "'", s.line, 1};
            std::unordered_set<std::string> rpc_names;
            for (const RpcDef &r : s.rpcs) {
                if (!rpc_names.insert(r.name).second)
                    throw IdlError{"duplicate rpc '" + r.name +
                                       "' in service '" + s.name + "'",
                                   r.line, 1};
                if (!file.findMessage(r.requestType))
                    throw IdlError{"rpc '" + r.name +
                                       "' uses undeclared request type '" +
                                       r.requestType + "'",
                                   r.line, 1};
                if (!r.oneWay && !file.findMessage(r.responseType))
                    throw IdlError{"rpc '" + r.name +
                                       "' uses undeclared response type '" +
                                       r.responseType + "'",
                                   r.line, 1};
            }
            if (s.rpcs.empty())
                throw IdlError{"service '" + s.name + "' has no rpcs",
                               s.line, 1};
        }
    }

    std::vector<Token> _toks;
    std::size_t _pos = 0;
    std::uint16_t _fnBase = 0;
};

} // namespace

IdlFile
parse(const std::string &src)
{
    return Parser(lex(src)).run();
}

} // namespace dagger::idl
