#include "idl/lexer.hh"

#include <cctype>

namespace dagger::idl {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return identStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> out;
    unsigned line = 1, col = 1;
    std::size_t i = 0;

    auto advance = [&](std::size_t n = 1) {
        for (std::size_t k = 0; k < n; ++k) {
            if (i < src.size() && src[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
            ++i;
        }
    };

    while (i < src.size()) {
        const char c = src[i];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
            continue;
        }
        if (c == '#' || (c == '/' && i + 1 < src.size() && src[i + 1] == '/')) {
            while (i < src.size() && src[i] != '\n')
                advance();
            continue;
        }
        Token tok;
        tok.line = line;
        tok.col = col;
        if (identStart(c)) {
            std::size_t start = i;
            while (i < src.size() && identCont(src[i]))
                advance();
            tok.kind = TokKind::Ident;
            tok.text = src.substr(start, i - start);
            out.push_back(std::move(tok));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::uint64_t v = 0;
            while (i < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[i]))) {
                v = v * 10 + static_cast<std::uint64_t>(src[i] - '0');
                advance();
            }
            tok.kind = TokKind::Number;
            tok.number = v;
            out.push_back(std::move(tok));
            continue;
        }
        switch (c) {
          case '{':
            tok.kind = TokKind::LBrace;
            break;
          case '}':
            tok.kind = TokKind::RBrace;
            break;
          case '(':
            tok.kind = TokKind::LParen;
            break;
          case ')':
            tok.kind = TokKind::RParen;
            break;
          case '[':
            tok.kind = TokKind::LBracket;
            break;
          case ']':
            tok.kind = TokKind::RBracket;
            break;
          case ';':
            tok.kind = TokKind::Semicolon;
            break;
          case ',':
            tok.kind = TokKind::Comma;
            break;
          case '=':
            tok.kind = TokKind::Equals;
            break;
          default:
            throw IdlError{std::string("unexpected character '") + c + "'",
                           line, col};
        }
        tok.text = std::string(1, c);
        advance();
        out.push_back(std::move(tok));
    }
    Token end;
    end.kind = TokKind::End;
    end.line = line;
    end.col = col;
    out.push_back(end);
    return out;
}

} // namespace dagger::idl
