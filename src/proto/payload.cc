#include "proto/payload.hh"

#include <mutex>

namespace dagger::proto {

namespace {

// Guards the registry below; taken only on a thread's first payload
// touch and at stats collection, never on the copy hot path.
// dagger-lint: allow(shared-mutable-static-in-sim)
std::mutex g_cellMutex;

/**
 * All counter cells ever created, one per thread that ever touched a
 * payload.  The registry owns the cells outright so a cell's totals
 * survive its thread's exit (shard workers are joined before stats
 * are read, but the numbers must not vanish with them).
 */
std::vector<std::unique_ptr<detail::PayloadCounterCell>> &
cellRegistry()
{
    // Mutated only under g_cellMutex; cross-shard by design so cell
    // totals survive worker-thread exit.
    // dagger-lint: allow(shared-mutable-static-in-sim)
    static std::vector<std::unique_ptr<detail::PayloadCounterCell>> cells;
    return cells;
}

} // namespace

detail::PayloadCounterCell &
detail::registerPayloadCounterCell()
{
    auto cell = std::make_unique<PayloadCounterCell>();
    PayloadCounterCell &ref = *cell;
    std::lock_guard<std::mutex> lock(g_cellMutex);
    cellRegistry().push_back(std::move(cell));
    return ref;
}

PayloadStats
payloadStats()
{
    std::lock_guard<std::mutex> lock(g_cellMutex);
    PayloadStats s;
    for (const auto &c : cellRegistry()) {
        s.bytesCopied += c->bytesCopied.load(std::memory_order_relaxed);
        s.handlePasses += c->handlePasses.load(std::memory_order_relaxed);
    }
    return s;
}

} // namespace dagger::proto
