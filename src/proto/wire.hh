/**
 * @file
 * Dagger wire format.
 *
 * The CPU–NIC MTU of a coherent memory interconnect is one cache line
 * (64 B, paper §4.7).  Every RPC therefore travels as one or more
 * 64-byte frames.  Each frame carries a 16-byte header and up to 48
 * bytes of payload; RPCs larger than 48 B are split into multiple
 * frames and reassembled in software (the paper's stated limitation —
 * hardware CAM-based reassembly is future work there and here).
 */

#ifndef DAGGER_PROTO_WIRE_HH
#define DAGGER_PROTO_WIRE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace dagger::proto {

/** Cache line size of the host CPU and the interconnect MTU. */
constexpr std::size_t kCacheLineBytes = 64;

/** Header bytes per frame. */
constexpr std::size_t kHeaderBytes = 16;

/** Payload bytes per frame. */
constexpr std::size_t kFramePayload = kCacheLineBytes - kHeaderBytes;

/** Request vs. response marker (paper §4.4: "request type field"). */
enum class MsgType : std::uint8_t {
    Request = 1,
    Response = 2,
};

/** Connection identifier (c_id in the paper's connection table). */
using ConnId = std::uint32_t;

/** Per-connection RPC sequence number; pairs responses to requests. */
using RpcId = std::uint32_t;

/** Remote function identifier assigned by the IDL code generator. */
using FnId = std::uint16_t;

/**
 * Frame header, 16 bytes, packed.  Every 64 B frame of a multi-frame
 * RPC repeats the header with an incremented frame_idx so that frames
 * are self-describing (the reassembler needs no per-flow state beyond
 * a map keyed by (conn_id, rpc_id)).
 */
struct FrameHeader
{
    ConnId connId = 0;
    RpcId rpcId = 0;
    FnId fnId = 0;
    std::uint16_t payloadLen = 0; ///< total RPC payload bytes
    MsgType type = MsgType::Request;
    std::uint8_t numFrames = 1;
    std::uint8_t frameIdx = 0;
    std::uint8_t checksum = 0;    ///< xor over this frame's live payload
                                  ///< bytes, mixed with frameIdx

    bool operator==(const FrameHeader &) const = default;
};

/**
 * Transport-layer header a Protocol unit stamps on a wire packet
 * (nic::AckProtocol).  This is the sequence field reliable transports
 * need: a per-connection packet sequence number plus the cumulative
 * acknowledgement piggybacked on ACK frames.  It rides next to the
 * 64 B frames the way a real transport header would precede them; it
 * is not counted in wireBytes() so that installing a protocol never
 * perturbs the serialization model of protocol-free runs.
 */
struct TransportHeader
{
    std::uint32_t seq = 0;    ///< per-connection packet sequence (1-based)
    std::uint32_t ackCum = 0; ///< ACKs only: all seq <= ackCum received
    bool reliable = false;    ///< seq is valid (a protocol stamped it)

    bool operator==(const TransportHeader &) const = default;
};

static_assert(sizeof(FrameHeader) == kHeaderBytes,
              "FrameHeader must be exactly 16 bytes");

/** One 64-byte frame: what actually crosses the interconnect. */
struct Frame
{
    FrameHeader header;
    std::array<std::uint8_t, kFramePayload> payload{};

    /** Payload bytes of the message that live in this frame. */
    std::size_t
    liveBytes() const
    {
        const std::size_t off =
            static_cast<std::size_t>(header.frameIdx) * kFramePayload;
        if (off >= header.payloadLen)
            return 0;
        return std::min(kFramePayload,
                        static_cast<std::size_t>(header.payloadLen) - off);
    }

    /** Checksum over this frame's live bytes, mixed with its index. */
    std::uint8_t
    computeChecksum() const
    {
        std::uint8_t sum = header.frameIdx;
        const std::size_t n = liveBytes();
        for (std::size_t i = 0; i < n; ++i)
            sum ^= payload[i];
        return sum;
    }

    /**
     * Ingress integrity gate: true iff the stored checksum matches
     * the payload.  A reliable transport must run this *before*
     * acknowledging, so a corrupted frame looks like a loss to the
     * sender and is retransmitted.
     */
    bool verifyChecksum() const { return computeChecksum() == header.checksum; }
};

static_assert(sizeof(Frame) == kCacheLineBytes,
              "Frame must be exactly one cache line");

/**
 * A complete RPC message: header metadata plus contiguous payload.
 * This is the unit the software API and the NIC RPC unit operate on.
 */
class RpcMessage
{
  public:
    RpcMessage() = default;

    /** Build a message from raw payload bytes. */
    RpcMessage(ConnId conn, RpcId rpc, FnId fn, MsgType type,
               const void *payload, std::size_t len);

    ConnId connId() const { return _connId; }
    RpcId rpcId() const { return _rpcId; }
    FnId fnId() const { return _fnId; }
    MsgType type() const { return _type; }

    const std::vector<std::uint8_t> &payload() const { return _payload; }
    std::size_t payloadLen() const { return _payload.size(); }

    /** Number of 64 B frames this message occupies on the wire. */
    std::size_t frameCount() const;

    /** Total wire bytes (frames * 64). */
    std::size_t wireBytes() const { return frameCount() * kCacheLineBytes; }

    /** Split into wire frames. */
    std::vector<Frame> toFrames() const;

    /**
     * Reassemble from frames.  Frames may arrive in order within one
     * message (per-flow FIFO order is preserved by the fabric).
     * @retval false malformed input (count/len/checksum mismatch).
     */
    static bool fromFrames(const std::vector<Frame> &frames,
                           RpcMessage &out);

    /** Copy payload into a POD @p T (size must match exactly). */
    template <typename T>
    bool
    payloadAs(T &out) const
    {
        if (_payload.size() != sizeof(T))
            return false;
        std::memcpy(&out, _payload.data(), sizeof(T));
        return true;
    }

    /** Build a message whose payload is the bytes of POD @p value. */
    template <typename T>
    static RpcMessage
    ofPod(ConnId conn, RpcId rpc, FnId fn, MsgType type, const T &value)
    {
        return RpcMessage(conn, rpc, fn, type, &value, sizeof(T));
    }

  private:
    ConnId _connId = 0;
    RpcId _rpcId = 0;
    FnId _fnId = 0;
    MsgType _type = MsgType::Request;
    std::vector<std::uint8_t> _payload;
};

/**
 * Software frame reassembler (paper §4.7: "Dagger only features
 * software-based RPC reassembling").  Keyed by (conn, rpc, type);
 * complete() fires the instant the last frame of a message arrives.
 */
class Reassembler
{
  public:
    /**
     * Feed one frame.
     * @retval true @p out now holds a complete message.
     */
    bool push(const Frame &frame, RpcMessage &out);

    /** Messages currently under assembly. */
    std::size_t inFlight() const { return _partial.size(); }

    /** Frames dropped due to malformed sequences. */
    std::uint64_t malformed() const { return _malformed; }

  private:
    struct Key
    {
        ConnId conn;
        RpcId rpc;
        MsgType type;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            std::uint64_t v = (static_cast<std::uint64_t>(k.conn) << 32) ^
                              (static_cast<std::uint64_t>(k.rpc) << 2) ^
                              static_cast<std::uint64_t>(k.type);
            v *= 0x9e3779b97f4a7c15ull;
            return static_cast<std::size_t>(v ^ (v >> 32));
        }
    };

    struct Partial
    {
        std::vector<Frame> frames;
    };

    std::unordered_map<Key, Partial, KeyHash> _partial;
    std::uint64_t _malformed = 0;
};

} // namespace dagger::proto

#endif // DAGGER_PROTO_WIRE_HH
