/**
 * @file
 * Dagger wire format.
 *
 * The CPU–NIC MTU of a coherent memory interconnect is one cache line
 * (64 B, paper §4.7).  Every RPC therefore travels as one or more
 * 64-byte frames.  Each frame carries a 16-byte header and up to 48
 * bytes of payload; RPCs larger than 48 B are split into multiple
 * frames and reassembled in software (the paper's stated limitation —
 * hardware CAM-based reassembly is future work there and here).
 *
 * Frames model the wire, they do not own payload bytes: a Frame holds
 * a PayloadView into the message's refcounted PayloadBuf, so slicing a
 * message into frames, queueing them through rings and the switch, and
 * reassembling them at the receiver are all handle operations.  The
 * wire *model* is unchanged — liveBytes(), checksums, and the 64 B
 * per-frame accounting are computed over the viewed bytes exactly as
 * they were over the old owned 48 B array.
 */

#ifndef DAGGER_PROTO_WIRE_HH
#define DAGGER_PROTO_WIRE_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "proto/payload.hh"
#include "sim/logging.hh"

namespace dagger::proto {

/** Request vs. response marker (paper §4.4: "request type field"). */
enum class MsgType : std::uint8_t {
    Request = 1,
    Response = 2,
};

/** Connection identifier (c_id in the paper's connection table). */
using ConnId = std::uint32_t;

/** Per-connection RPC sequence number; pairs responses to requests. */
using RpcId = std::uint32_t;

/** Remote function identifier assigned by the IDL code generator. */
using FnId = std::uint16_t;

/**
 * Frame header, 16 bytes, packed.  Every 64 B frame of a multi-frame
 * RPC repeats the header with an incremented frame_idx so that frames
 * are self-describing (the reassembler needs no per-flow state beyond
 * a map keyed by (conn_id, rpc_id)).  The frame count is derived from
 * payloadLen rather than stored: a 16-bit frameIdx lets one RPC span
 * up to ceil(kMaxPayloadBytes / 48) = 1366 frames.
 */
struct FrameHeader
{
    ConnId connId = 0;
    RpcId rpcId = 0;
    FnId fnId = 0;
    std::uint16_t payloadLen = 0; ///< total RPC payload bytes
    MsgType type = MsgType::Request;
    std::uint8_t checksum = 0;    ///< xor over this frame's live payload
                                  ///< bytes, mixed with frameIdx
    std::uint16_t frameIdx = 0;

    /** Frames the whole message occupies (derived from payloadLen). */
    std::uint16_t
    frameCount() const
    {
        if (payloadLen == 0)
            return 1;
        return static_cast<std::uint16_t>(
            (payloadLen + kFramePayload - 1) / kFramePayload);
    }

    bool operator==(const FrameHeader &) const = default;
};

/**
 * Transport-layer header a Protocol unit stamps on a wire packet
 * (nic::AckProtocol).  This is the sequence field reliable transports
 * need: a per-connection packet sequence number plus the cumulative
 * acknowledgement piggybacked on ACK frames.  It rides next to the
 * 64 B frames the way a real transport header would precede them; it
 * is not counted in wireBytes() so that installing a protocol never
 * perturbs the serialization model of protocol-free runs.
 */
struct TransportHeader
{
    std::uint32_t seq = 0;    ///< per-connection packet sequence (1-based)
    std::uint32_t ackCum = 0; ///< ACKs only: all seq <= ackCum received
    bool reliable = false;    ///< seq is valid (a protocol stamped it)

    bool operator==(const TransportHeader &) const = default;
};

static_assert(sizeof(FrameHeader) == kHeaderBytes,
              "FrameHeader must be exactly 16 bytes");

/**
 * One frame: 16 B header plus a view of the message payload slice it
 * carries.  On the wire this is exactly one cache line (kWireBytes);
 * in host memory the payload bytes live once in the message's
 * PayloadBuf and every frame references them.
 */
struct Frame
{
    /** Bytes this frame occupies on the modeled wire. */
    static constexpr std::size_t kWireBytes = kCacheLineBytes;

    FrameHeader header;
    PayloadView view; ///< this frame's live payload bytes

    /** Payload bytes of the message that live in this frame. */
    std::size_t
    liveBytes() const
    {
        const std::size_t off =
            static_cast<std::size_t>(header.frameIdx) * kFramePayload;
        if (off >= header.payloadLen)
            return 0;
        return std::min(kFramePayload,
                        static_cast<std::size_t>(header.payloadLen) - off);
    }

    /**
     * Payload byte @p i as it appears on the wire: the viewed bytes,
     * zero-padded to the frame boundary.
     */
    std::uint8_t payloadByte(std::size_t i) const { return view.byteAt(i); }

    /** Checksum over this frame's live bytes, mixed with its index. */
    std::uint8_t
    computeChecksum() const
    {
        // The wire bytes are the view zero-padded to liveBytes(); the
        // padding XORs to identity, so only the viewed prefix counts.
        // XOR is associative, so fold a word at a time — this runs
        // twice per frame per hop and the byte-serial loop was the
        // single hottest instruction stream in the whole echo path.
        const std::size_t n = std::min(liveBytes(), view.size());
        const std::uint8_t *p = view.data();
        std::uint64_t acc = 0;
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, p + i, 8);
            acc ^= w;
        }
        std::uint8_t sum = static_cast<std::uint8_t>(header.frameIdx);
        for (; i < n; ++i)
            sum ^= p[i];
        acc ^= acc >> 32;
        acc ^= acc >> 16;
        acc ^= acc >> 8;
        return sum ^ static_cast<std::uint8_t>(acc);
    }

    /**
     * Ingress integrity gate: true iff the stored checksum matches
     * the payload.  A reliable transport must run this *before*
     * acknowledging, so a corrupted frame looks like a loss to the
     * sender and is retransmitted.
     */
    bool verifyChecksum() const { return computeChecksum() == header.checksum; }

    /**
     * Copy-on-write corruption (FaultInjector and tests): materialize
     * a private copy of this frame's live bytes, flip byte @p i, and
     * repoint the view at the copy.  Other frames — duplicates in
     * flight, the sender's retransmission copy — keep referencing the
     * original intact bytes.  The stored checksum is left stale so the
     * ingress gate detects the damage.
     */
    void corruptPayloadByte(std::size_t i);

    /**
     * Test-construction helper: point this frame at @p len bytes of
     * @p src (copied into a private buffer).  toFrames() is the real
     * producer; tests building frames by hand use this.
     */
    void setPayload(const void *src, std::size_t len);
};

/**
 * A complete RPC message: header metadata plus a refcounted flat
 * payload.  This is the unit the software API and the NIC RPC unit
 * operate on.  Copying a message passes the payload handle.
 */
class RpcMessage
{
  public:
    RpcMessage() = default;

    /** Build a message from raw payload bytes (the copying API edge). */
    RpcMessage(ConnId conn, RpcId rpc, FnId fn, MsgType type,
               const void *payload, std::size_t len);

    /** Build a message around an existing payload handle (no copy). */
    RpcMessage(ConnId conn, RpcId rpc, FnId fn, MsgType type,
               PayloadBuf payload);

    ConnId connId() const { return _connId; }
    RpcId rpcId() const { return _rpcId; }
    FnId fnId() const { return _fnId; }
    MsgType type() const { return _type; }

    const PayloadBuf &payload() const { return _payload; }
    std::size_t payloadLen() const { return _payload.size(); }

    /** Number of 64 B frames this message occupies on the wire. */
    std::size_t frameCount() const;

    /** Total wire bytes (frames * 64). */
    std::size_t wireBytes() const { return frameCount() * kCacheLineBytes; }

    /** Slice into wire frames (handle passes, no byte copies). */
    std::vector<Frame> toFrames() const;

    /**
     * Reassemble from frames.  Frames may arrive in order within one
     * message (per-flow FIFO order is preserved by the fabric).  When
     * every frame views the same underlying buffer at its wire offset
     * — the invariant toFrames() establishes — the buffer is adopted
     * outright; otherwise the bytes are gathered into a fresh buffer
     * (and counted as copies).
     * @retval false malformed input (count/len/checksum mismatch).
     */
    static bool fromFrames(const std::vector<Frame> &frames,
                           RpcMessage &out);

    /**
     * Single-frame fast path (the common small-RPC case): identical
     * semantics to fromFrames() on a one-element vector, without
     * materializing the vector.
     */
    static bool fromFrame(const Frame &frame, RpcMessage &out);

    /**
     * The validation half of fromFrames() — header consistency and
     * per-frame checksums — without reassembling the payload.
     */
    static bool validateFrames(const std::vector<Frame> &frames);

    /**
     * Header-consistency check alone: frameIdx sequence, shared
     * connId/rpcId/payloadLen, complete frame count — no checksum
     * work.  Hardware stages that only route or batch on headers
     * (NIC steering, egress packetization) use this; payload
     * integrity is enforced where the architecture places the gates —
     * the transport's pre-ACK check and receive-side reassembly.
     */
    static bool framesConsistent(const std::vector<Frame> &frames);

    /** Copy payload into a POD @p T (the read-side API edge). */
    template <typename T>
    bool
    payloadAs(T &out) const
    {
        if (_payload.size() != sizeof(T))
            return false;
        detail::addBytesCopied(sizeof(T));
        std::memcpy(&out, _payload.data(), sizeof(T));
        return true;
    }

    /** Build a message whose payload is the bytes of POD @p value. */
    template <typename T>
    static RpcMessage
    ofPod(ConnId conn, RpcId rpc, FnId fn, MsgType type, const T &value)
    {
        return RpcMessage(conn, rpc, fn, type, &value, sizeof(T));
    }

  private:
    ConnId _connId = 0;
    RpcId _rpcId = 0;
    FnId _fnId = 0;
    MsgType _type = MsgType::Request;
    PayloadBuf _payload;
};

/**
 * Software frame reassembler (paper §4.7: "Dagger only features
 * software-based RPC reassembling").  Keyed by (conn, rpc, type);
 * complete() fires the instant the last frame of a message arrives.
 * Buffered frames keep their payload views, so the source buffer
 * stays alive for as long as any message is under assembly.
 */
class Reassembler
{
  public:
    /**
     * Feed one frame (by value: callers that own the frame move it in
     * and the buffered copy is a handle steal, not a handle pass).
     * @retval true @p out now holds a complete message.
     */
    bool push(Frame frame, RpcMessage &out);

    /** Messages currently under assembly. */
    std::size_t inFlight() const { return _partial.size(); }

    /** Frames dropped due to malformed sequences. */
    std::uint64_t malformed() const { return _malformed; }

  private:
    struct Key
    {
        ConnId conn;
        RpcId rpc;
        MsgType type;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            std::uint64_t v = (static_cast<std::uint64_t>(k.conn) << 32) ^
                              (static_cast<std::uint64_t>(k.rpc) << 2) ^
                              static_cast<std::uint64_t>(k.type);
            v *= 0x9e3779b97f4a7c15ull;
            return static_cast<std::size_t>(v ^ (v >> 32));
        }
    };

    struct Partial
    {
        std::vector<Frame> frames;
    };

    std::unordered_map<Key, Partial, KeyHash> _partial;
    std::uint64_t _malformed = 0;
};

} // namespace dagger::proto

#endif // DAGGER_PROTO_WIRE_HH
