/**
 * @file
 * Zero-copy payload storage for the Dagger data path.
 *
 * The paper's NIC moves RPC payloads at cache-line granularity by
 * reading TX-ring lines directly from host memory (§4.4) — bytes are
 * written once by the application and then *referenced*, not re-copied,
 * as they traverse rings, the NIC pipeline, and the switch.  This file
 * provides the simulator-side analogue:
 *
 *  - PayloadBuf: an immutable, refcounted flat buffer.  Payloads of up
 *    to one frame (48 B) live inline in the handle itself (the way a
 *    single-line RPC rides in one flit); larger payloads live on the
 *    heap behind an atomically refcounted handle, so copies of the
 *    handle are cheap and thread-safe across the sharded engine's
 *    worker threads.
 *
 *  - PayloadView: a (handle, offset, length) slice of a PayloadBuf.
 *    Frames carry views into the message buffer instead of owned byte
 *    arrays, so fragmentation, ring hops, switch queues, and
 *    retransmission copies all pass handles.
 *
 * Real byte copies happen only at the API edges (message construction,
 * payloadAs() delivery) and in FaultInjector::corrupt's copy-on-write;
 * the global counters below make that auditable: bytes_copied must stay
 * O(payload) per RPC no matter how many hops the frames take, while
 * handle_passes grows with hop count.
 */

#ifndef DAGGER_PROTO_PAYLOAD_HH
#define DAGGER_PROTO_PAYLOAD_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <vector>

namespace dagger::proto {

/** Cache line size of the host CPU and the interconnect MTU. */
constexpr std::size_t kCacheLineBytes = 64;

/** Header bytes per frame. */
constexpr std::size_t kHeaderBytes = 16;

/** Payload bytes per frame (also the PayloadBuf inline capacity). */
constexpr std::size_t kFramePayload = kCacheLineBytes - kHeaderBytes;

/**
 * Largest RPC payload the wire format can carry: payloadLen is a
 * uint16_t in every frame header.  The client API rejects larger
 * payloads recoverably (CallStatus::Rejected); the RpcMessage
 * constructor asserts, since reaching it oversize means a layer above
 * skipped the check.
 */
constexpr std::size_t kMaxPayloadBytes = 0xffff;

namespace detail {
/**
 * Per-thread data-path copy accounting.  A handle pass happens for
 * every frame of every hop, so the increment must not cost a
 * lock-prefixed RMW; each thread owns a cell and bumps it with
 * single-writer load+store (plain MOVs on x86), while payloadStats()
 * sums the cells with atomic loads (race-free under TSan).
 */
struct PayloadCounterCell
{
    std::atomic<std::uint64_t> bytesCopied{0};
    std::atomic<std::uint64_t> handlePasses{0};
};

/** Create and register a fresh cell owned by the global registry. */
PayloadCounterCell &registerPayloadCounterCell();

/** This thread's cell (registered on first use, kept past exit). */
inline PayloadCounterCell &
payloadCounterCell()
{
    // Cache the raw pointer per thread so the increment below inlines
    // to a guard check plus two MOVs — no call on the data path.
    thread_local PayloadCounterCell *cell = &registerPayloadCounterCell();
    return *cell;
}

inline void
addBytesCopied(std::uint64_t n)
{
    auto &c = payloadCounterCell().bytesCopied;
    c.store(c.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
}

inline void
addHandlePass()
{
    auto &c = payloadCounterCell().handlePasses;
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
}
} // namespace detail

/** Snapshot of the payload data-path counters. */
struct PayloadStats
{
    std::uint64_t bytesCopied = 0;  ///< real payload bytes memcpy'd
    std::uint64_t handlePasses = 0; ///< buffer handles copied instead
};

/** Read the process-wide counters (monotonic; diff two snapshots). */
PayloadStats payloadStats();

/**
 * Immutable refcounted flat payload buffer with small-buffer-optimized
 * inline storage for payloads <= 48 B (one frame) and heap storage
 * beyond.  Copying a PayloadBuf never copies heap payload bytes — it
 * bumps an atomic refcount (or replicates the 48 B inline array, which
 * is part of the handle itself).
 */
class PayloadBuf
{
  public:
    /** Empty payload (an RPC with no argument bytes). */
    PayloadBuf() = default;

    /** Copying constructor: the write-side API edge. */
    PayloadBuf(const void *src, std::size_t len) : _len(len)
    {
        if (len == 0)
            return;
        detail::addBytesCopied(len);
        if (len <= kFramePayload) {
            std::memcpy(_inline.data(), src, len);
            return;
        }
        auto heap = std::make_shared<std::vector<std::uint8_t>>(len);
        std::memcpy(heap->data(), src, len);
        _heap = std::move(heap);
    }

    /** @p len zero bytes (sized-but-unfilled responses). */
    explicit PayloadBuf(std::size_t len) : _len(len)
    {
        if (len == 0)
            return;
        detail::addBytesCopied(len);
        if (len > kFramePayload)
            _heap = std::make_shared<std::vector<std::uint8_t>>(len);
        else
            std::memset(_inline.data(), 0, len);
    }

    PayloadBuf(std::initializer_list<std::uint8_t> bytes)
        : PayloadBuf(bytes.begin() == bytes.end() ? nullptr : bytes.begin(),
                     bytes.size())
    {}

    PayloadBuf(const PayloadBuf &other) : _len(other._len), _heap(other._heap)
    {
        // Heap handles leave the inline array dead weight; copy only
        // the live prefix when it actually carries the payload.
        if (!_heap && _len)
            std::memcpy(_inline.data(), other._inline.data(), _len);
        if (_len)
            detail::addHandlePass();
    }

    PayloadBuf &
    operator=(const PayloadBuf &other)
    {
        if (this == &other)
            return *this;
        _len = other._len;
        _heap = other._heap;
        if (!_heap && _len)
            std::memcpy(_inline.data(), other._inline.data(), _len);
        if (_len)
            detail::addHandlePass();
        return *this;
    }

    PayloadBuf(PayloadBuf &&other) noexcept
        : _len(other._len), _heap(std::move(other._heap))
    {
        if (!_heap && _len)
            std::memcpy(_inline.data(), other._inline.data(), _len);
    }

    PayloadBuf &
    operator=(PayloadBuf &&other) noexcept
    {
        _len = other._len;
        _heap = std::move(other._heap);
        if (!_heap && _len)
            std::memcpy(_inline.data(), other._inline.data(), _len);
        return *this;
    }

    /** Buffer whose payload is the bytes of POD @p value. */
    template <typename T>
    static PayloadBuf
    ofPod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return PayloadBuf(&value, sizeof(T));
    }

    /**
     * Adopt already-materialized bytes without recounting them as a
     * copy (the caller gathered them and did its own accounting).
     */
    static PayloadBuf
    adopt(std::vector<std::uint8_t> &&bytes)
    {
        PayloadBuf buf;
        buf._len = bytes.size();
        if (buf._len == 0)
            return buf;
        if (buf._len <= kFramePayload) {
            std::memcpy(buf._inline.data(), bytes.data(), buf._len);
            return buf;
        }
        buf._heap = std::make_shared<std::vector<std::uint8_t>>(
            std::move(bytes));
        return buf;
    }

    const std::uint8_t *
    data() const
    {
        return _heap ? _heap->data() : _inline.data();
    }

    std::size_t size() const { return _len; }
    bool empty() const { return _len == 0; }

    /** Read-only byte access; the buffer is immutable by design. */
    std::uint8_t operator[](std::size_t i) const { return data()[i]; }

    /** True when the bytes live inline in the handle (<= 48 B). */
    bool inlined() const { return !_heap; }

    /** Heap refcount (0 for inline/empty buffers) — test hook. */
    long heapUseCount() const { return _heap ? _heap.use_count() : 0; }

    /** True when both handles reference the same heap bytes. */
    bool
    sharesBufferWith(const PayloadBuf &other) const
    {
        return _heap && _heap == other._heap;
    }

    bool
    operator==(const PayloadBuf &other) const
    {
        if (_len != other._len)
            return false;
        return _len == 0 ||
            std::memcmp(data(), other.data(), _len) == 0;
    }

    bool
    operator==(const std::vector<std::uint8_t> &bytes) const
    {
        if (_len != bytes.size())
            return false;
        return _len == 0 || std::memcmp(data(), bytes.data(), _len) == 0;
    }

  private:
    std::size_t _len = 0;
    // Deliberately NOT value-initialized: heap handles never read it,
    // and zeroing 48 B per handle construction was measurable on the
    // frame hot path.  Every inline path writes before reading.
    std::array<std::uint8_t, kFramePayload> _inline;
    std::shared_ptr<const std::vector<std::uint8_t>> _heap;
};

/**
 * A cheap slice of a PayloadBuf: handle + offset + length.  Keeps the
 * underlying buffer alive; copying a view is a handle pass, never a
 * byte copy.
 */
class PayloadView
{
  public:
    /** Empty view (frames with no live payload bytes, e.g. ACKs). */
    PayloadView() = default;

    PayloadView(PayloadBuf buf, std::size_t offset, std::size_t len)
        : _buf(std::move(buf)), _off(offset), _len(len)
    {}

    /** Whole-buffer view. */
    explicit PayloadView(PayloadBuf buf)
        : _buf(std::move(buf)), _off(0), _len(_buf.size())
    {}

    const std::uint8_t *data() const { return _buf.data() + _off; }
    std::size_t size() const { return _len; }
    bool empty() const { return _len == 0; }

    /** Byte @p i of the slice; reads 0 beyond the end (wire padding). */
    std::uint8_t
    byteAt(std::size_t i) const
    {
        return i < _len ? _buf.data()[_off + i] : 0;
    }

    const PayloadBuf &buffer() const { return _buf; }
    std::size_t offset() const { return _off; }

  private:
    PayloadBuf _buf;
    std::size_t _off = 0;
    std::size_t _len = 0;
};

} // namespace dagger::proto

#endif // DAGGER_PROTO_PAYLOAD_HH
