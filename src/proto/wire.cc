#include "proto/wire.hh"

namespace dagger::proto {

RpcMessage::RpcMessage(ConnId conn, RpcId rpc, FnId fn, MsgType type,
                       const void *payload, std::size_t len)
    : _connId(conn), _rpcId(rpc), _fnId(fn), _type(type)
{
    dagger_assert(len <= 0xffff, "RPC payload too large: ", len);
    _payload.resize(len);
    if (len)
        std::memcpy(_payload.data(), payload, len);
}

std::size_t
RpcMessage::frameCount() const
{
    if (_payload.empty())
        return 1;
    return (_payload.size() + kFramePayload - 1) / kFramePayload;
}

std::vector<Frame>
RpcMessage::toFrames() const
{
    const std::size_t n = frameCount();
    dagger_assert(n <= 0xff, "RPC needs too many frames: ", n);
    std::vector<Frame> frames(n);
    for (std::size_t i = 0; i < n; ++i) {
        Frame &f = frames[i];
        f.header.connId = _connId;
        f.header.rpcId = _rpcId;
        f.header.fnId = _fnId;
        f.header.payloadLen = static_cast<std::uint16_t>(_payload.size());
        f.header.type = _type;
        f.header.numFrames = static_cast<std::uint8_t>(n);
        f.header.frameIdx = static_cast<std::uint8_t>(i);
        const std::size_t off = i * kFramePayload;
        if (off < _payload.size()) {
            const std::size_t chunk =
                std::min(kFramePayload, _payload.size() - off);
            std::memcpy(f.payload.data(), _payload.data() + off, chunk);
        }
        // Per-frame checksum so a receiver can validate each fragment
        // of a multi-packet RPC independently, before acknowledging.
        f.header.checksum = f.computeChecksum();
    }
    return frames;
}

bool
RpcMessage::fromFrames(const std::vector<Frame> &frames, RpcMessage &out)
{
    if (frames.empty())
        return false;
    const FrameHeader &h0 = frames.front().header;
    if (h0.numFrames != frames.size())
        return false;
    const std::size_t expect_frames =
        h0.payloadLen == 0
            ? 1
            : (h0.payloadLen + kFramePayload - 1) / kFramePayload;
    if (expect_frames != frames.size())
        return false;

    out._connId = h0.connId;
    out._rpcId = h0.rpcId;
    out._fnId = h0.fnId;
    out._type = h0.type;
    out._payload.resize(h0.payloadLen);

    for (std::size_t i = 0; i < frames.size(); ++i) {
        const Frame &f = frames[i];
        if (f.header.frameIdx != i || f.header.connId != h0.connId ||
            f.header.rpcId != h0.rpcId || f.header.numFrames != h0.numFrames)
            return false;
        if (!f.verifyChecksum())
            return false;
        const std::size_t off = i * kFramePayload;
        if (off < out._payload.size()) {
            const std::size_t chunk =
                std::min(kFramePayload, out._payload.size() - off);
            std::memcpy(out._payload.data() + off, f.payload.data(), chunk);
        }
    }
    return true;
}

bool
Reassembler::push(const Frame &frame, RpcMessage &out)
{
    const FrameHeader &h = frame.header;
    if (h.numFrames == 0) {
        ++_malformed;
        return false;
    }
    if (h.numFrames == 1) {
        // Fast path: single-line RPC, no state needed.
        if (RpcMessage::fromFrames({frame}, out))
            return true;
        ++_malformed;
        return false;
    }
    const Key key{h.connId, h.rpcId, h.type};
    Partial &p = _partial[key];
    if (frame.header.frameIdx != p.frames.size()) {
        // Out-of-sequence frame within a flow: the fabric preserves
        // per-flow FIFO order, so this indicates corruption.  Drop the
        // whole partial message.
        ++_malformed;
        _partial.erase(key);
        return false;
    }
    p.frames.push_back(frame);
    if (p.frames.size() < h.numFrames)
        return false;
    const bool ok = RpcMessage::fromFrames(p.frames, out);
    _partial.erase(key);
    if (!ok)
        ++_malformed;
    return ok;
}

} // namespace dagger::proto
