#include "proto/wire.hh"

namespace dagger::proto {

void
Frame::corruptPayloadByte(std::size_t i)
{
    const std::size_t n = liveBytes();
    std::uint8_t tmp[kFramePayload] = {};
    for (std::size_t j = 0; j < n; ++j)
        tmp[j] = view.byteAt(j);
    if (i < n)
        tmp[i] ^= 0xff;
    // PayloadBuf's copying constructor counts these <= 48 bytes: the
    // corrupt edge is one of the three sanctioned copy sites.
    view = PayloadView(PayloadBuf(tmp, n), 0, n);
}

void
Frame::setPayload(const void *src, std::size_t len)
{
    dagger_assert(len <= kFramePayload, "frame payload too large: ", len);
    view = PayloadView(PayloadBuf(src, len), 0, len);
}

RpcMessage::RpcMessage(ConnId conn, RpcId rpc, FnId fn, MsgType type,
                       const void *payload, std::size_t len)
    : _connId(conn), _rpcId(rpc), _fnId(fn), _type(type),
      _payload(payload, len)
{
    dagger_assert(len <= kMaxPayloadBytes, "RPC payload too large: ", len);
}

RpcMessage::RpcMessage(ConnId conn, RpcId rpc, FnId fn, MsgType type,
                       PayloadBuf payload)
    : _connId(conn), _rpcId(rpc), _fnId(fn), _type(type),
      _payload(std::move(payload))
{
    dagger_assert(_payload.size() <= kMaxPayloadBytes,
                  "RPC payload too large: ", _payload.size());
}

std::size_t
RpcMessage::frameCount() const
{
    if (_payload.empty())
        return 1;
    return (_payload.size() + kFramePayload - 1) / kFramePayload;
}

std::vector<Frame>
RpcMessage::toFrames() const
{
    const std::size_t n = frameCount();
    std::vector<Frame> frames;
    frames.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Emplace fully-formed frames: default-constructing Frame
        // slots just to overwrite them costs a zeroed handle and an
        // extra move per frame, and this is the egress hot path.
        Frame &f = frames.emplace_back();
        f.header.connId = _connId;
        f.header.rpcId = _rpcId;
        f.header.fnId = _fnId;
        f.header.payloadLen = static_cast<std::uint16_t>(_payload.size());
        f.header.type = _type;
        f.header.frameIdx = static_cast<std::uint16_t>(i);
        const std::size_t off = i * kFramePayload;
        if (off < _payload.size()) {
            const std::size_t chunk =
                std::min(kFramePayload, _payload.size() - off);
            f.view = PayloadView(_payload, off, chunk);
        }
        // Per-frame checksum so a receiver can validate each fragment
        // of a multi-packet RPC independently, before acknowledging.
        f.header.checksum = f.computeChecksum();
    }
    return frames;
}

namespace {

/**
 * True when @p frames all view the same payload buffer at exactly
 * their wire offsets — the invariant toFrames() establishes and every
 * handle-passing hop preserves.  Reassembly can then adopt the buffer
 * instead of gathering bytes.
 */
bool
framesCoverOneBuffer(const std::vector<Frame> &frames,
                     std::size_t payload_len)
{
    const PayloadBuf &buf = frames.front().view.buffer();
    if (buf.size() != payload_len)
        return false;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const Frame &f = frames[i];
        const std::size_t off = i * kFramePayload;
        const std::size_t chunk =
            std::min(kFramePayload, payload_len - off);
        if (f.view.offset() != off || f.view.size() != chunk)
            return false;
        // Multi-frame messages are > 48 B and therefore heap-backed,
        // so handle identity is heap-pointer identity.
        if (i > 0 && !f.view.buffer().sharesBufferWith(buf))
            return false;
    }
    return true;
}

} // namespace

bool
RpcMessage::framesConsistent(const std::vector<Frame> &frames)
{
    if (frames.empty())
        return false;
    const FrameHeader &h0 = frames.front().header;
    if (h0.frameCount() != frames.size())
        return false;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const Frame &f = frames[i];
        if (f.header.frameIdx != i || f.header.connId != h0.connId ||
            f.header.rpcId != h0.rpcId ||
            f.header.payloadLen != h0.payloadLen)
            return false;
    }
    return true;
}

bool
RpcMessage::validateFrames(const std::vector<Frame> &frames)
{
    if (!framesConsistent(frames))
        return false;
    for (const Frame &f : frames)
        if (!f.verifyChecksum())
            return false;
    return true;
}

bool
RpcMessage::fromFrames(const std::vector<Frame> &frames, RpcMessage &out)
{
    if (!validateFrames(frames))
        return false;
    const FrameHeader &h0 = frames.front().header;

    out._connId = h0.connId;
    out._rpcId = h0.rpcId;
    out._fnId = h0.fnId;
    out._type = h0.type;

    const std::size_t len = h0.payloadLen;
    if (len == 0) {
        out._payload = PayloadBuf();
        return true;
    }
    if (framesCoverOneBuffer(frames, len)) {
        // Zero-copy reassembly: every frame views the same buffer at
        // its wire offset, so the message re-adopts it whole.
        out._payload = frames.front().view.buffer();
        return true;
    }
    // Gather fallback: frames carry foreign or partial views (hand-
    // built tests, CoW-corrupted fragments that still checksum).
    std::vector<std::uint8_t> bytes(len);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const std::size_t off = i * kFramePayload;
        const std::size_t chunk = std::min(kFramePayload, len - off);
        for (std::size_t j = 0; j < chunk; ++j)
            bytes[off + j] = frames[i].payloadByte(j);
    }
    detail::addBytesCopied(len);
    out._payload = PayloadBuf::adopt(std::move(bytes));
    return true;
}

bool
RpcMessage::fromFrame(const Frame &f, RpcMessage &out)
{
    const FrameHeader &h = f.header;
    if (h.frameCount() != 1 || h.frameIdx != 0)
        return false;
    if (!f.verifyChecksum())
        return false;
    out._connId = h.connId;
    out._rpcId = h.rpcId;
    out._fnId = h.fnId;
    out._type = h.type;
    const std::size_t len = h.payloadLen;
    if (len == 0) {
        out._payload = PayloadBuf();
        return true;
    }
    const PayloadBuf &buf = f.view.buffer();
    if (buf.size() == len && f.view.offset() == 0 && f.view.size() == len) {
        // Zero-copy: the view covers its buffer whole; re-adopt it.
        out._payload = buf;
        return true;
    }
    std::vector<std::uint8_t> bytes(len);
    for (std::size_t j = 0; j < len; ++j)
        bytes[j] = f.payloadByte(j);
    detail::addBytesCopied(len);
    out._payload = PayloadBuf::adopt(std::move(bytes));
    return true;
}

bool
Reassembler::push(Frame frame, RpcMessage &out)
{
    const FrameHeader &h = frame.header;
    if (h.frameCount() == 1) {
        // Fast path: single-line RPC, no state needed.
        if (RpcMessage::fromFrame(frame, out))
            return true;
        ++_malformed;
        return false;
    }
    const Key key{h.connId, h.rpcId, h.type};
    Partial &p = _partial[key];
    if (p.frames.empty())
        p.frames.reserve(h.frameCount());
    if (frame.header.frameIdx != p.frames.size()) {
        // Out-of-sequence frame within a flow: the fabric preserves
        // per-flow FIFO order, so this indicates corruption.  Drop the
        // whole partial message.
        ++_malformed;
        _partial.erase(key);
        return false;
    }
    p.frames.push_back(std::move(frame));
    if (p.frames.size() < h.frameCount())
        return false;
    const bool ok = RpcMessage::fromFrames(p.frames, out);
    _partial.erase(key);
    if (!ok)
        ++_malformed;
    return ok;
}

} // namespace dagger::proto
