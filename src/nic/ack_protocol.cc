#include "nic/ack_protocol.hh"

#include "nic/dagger_nic.hh"
#include "sim/logging.hh"

namespace dagger::nic {

void
AckProtocol::attach(DaggerNic &nic)
{
    _nic = &nic;
}

// ------------------------------ egress ------------------------------

void
AckProtocol::trackEgress(net::Packet &pkt)
{
    const std::uint32_t conn = pkt.frames.front().header.connId;
    pkt.th.seq = ++_txSeq[conn];
    pkt.th.ackCum = 0;
    pkt.th.reliable = true;
    const Key key{conn, pkt.th.seq};
    Pending entry;
    entry.pkt = pkt; // keep a retransmission copy
    _pending[key] = std::move(entry);
    armTimer(key);
}

bool
AckProtocol::onEgress(net::Packet &pkt)
{
    dagger_assert(_nic, "AckProtocol not attached");
    dagger_assert(!pkt.frames.empty(), "empty packet");
    if (_mtuFrames > 0 && pkt.frames.size() > _mtuFrames) {
        // Fragment into independently sequenced wire packets so a
        // single lost fragment retransmits alone.  Frames already
        // carry (payloadLen, frameIdx), so the receiver can reassemble
        // from any packetization.
        for (std::size_t off = 0; off < pkt.frames.size();
             off += _mtuFrames) {
            net::Packet frag;
            frag.dst = pkt.dst;
            const std::size_t end =
                std::min(off + _mtuFrames, pkt.frames.size());
            frag.frames.assign(pkt.frames.begin() + off,
                               pkt.frames.begin() + end);
            trackEgress(frag);
            _nic->protocolEgress(std::move(frag));
        }
        return false; // swallowed: fragments went out instead
    }
    trackEgress(pkt);
    return true; // forward to the wire
}

void
AckProtocol::armTimer(const Key &key)
{
    auto expire = [this, key] {
        auto it = _pending.find(key);
        if (it == _pending.end())
            return; // acked in the meantime
        if (it->second.retries >= _maxRetries) {
            ++_lost;
            _pending.erase(it);
            return;
        }
        ++it->second.retries;
        ++_retransmissions;
        _nic->protocolEgress(it->second.pkt); // resend a copy
        armTimer(key);
    };
    // One timer per in-flight packet: `this` plus the 8-byte Key must
    // stay within EventClosure's inline buffer.
    static_assert(sim::EventClosure::fitsInline<decltype(expire)>());
    // The NIC's queue is this protocol unit's own domain.
    sim::EventQueue &eq = _nic->eventQueue();
    eq.schedule(_timeout, std::move(expire));
}

// ------------------------------ ingress ------------------------------

void
AckProtocol::sendAck(const net::Packet &data)
{
    // An ACK is a single control frame mirroring the data headers,
    // marked with the reserved fnId.  The transport header carries the
    // acknowledged sequence plus this side's cumulative receive point.
    net::Packet ack;
    ack.dst = data.src;
    ack.th.seq = data.th.seq;
    ack.th.ackCum = _rx[data.frames.front().header.connId].cum;
    ack.th.reliable = true;
    proto::Frame f;
    f.header = data.frames.front().header;
    f.header.fnId = kAckFn;
    f.header.frameIdx = 0;
    f.header.payloadLen = 0;
    f.header.checksum = f.computeChecksum();
    ack.frames.push_back(f);
    ++_acksSent;
    _nic->protocolEgress(std::move(ack));
}

void
AckProtocol::onAck(const net::Packet &ack)
{
    const std::uint32_t conn = ack.frames.front().header.connId;
    bool cleared = _pending.erase(Key{conn, ack.th.seq}) > 0;
    // Cumulative part: everything at or below ackCum on this
    // connection has been delivered; reclaim those entries too (their
    // own ACKs may have been lost).  Erasure order over the unordered
    // map is irrelevant: the surviving set is order-independent.
    if (ack.th.ackCum > 0) {
        for (auto it = _pending.begin(); it != _pending.end();) {
            if (it->first.conn == conn && it->first.seq <= ack.th.ackCum) {
                it = _pending.erase(it);
                cleared = true;
            } else {
                ++it;
            }
        }
    }
    if (cleared)
        ++_acksReceived;
}

bool
AckProtocol::admitSeq(std::uint32_t conn, std::uint32_t seq)
{
    RxConn &rx = _rx[conn];
    if (seq <= rx.cum || rx.ooo.count(seq))
        return false; // already delivered
    if (seq == rx.cum + 1) {
        rx.cum = seq;
        // Collapse any buffered successors into the cumulative point.
        while (rx.ooo.count(rx.cum + 1)) {
            rx.ooo.erase(rx.cum + 1);
            ++rx.cum;
        }
        return true;
    }
    rx.ooo.insert(seq);
    if (rx.ooo.size() > kDedupWindow) {
        // Bound receiver state: advance cum past the oldest gap.  The
        // skipped seqs are treated as delivered (the sender sees them
        // cum-ACKed and stops retrying) — the same trade a hardware
        // dedup CAM of fixed depth would make.
        auto first = rx.ooo.begin();
        rx.cum = *first;
        rx.ooo.erase(first);
        while (rx.ooo.count(rx.cum + 1)) {
            rx.ooo.erase(rx.cum + 1);
            ++rx.cum;
        }
    }
    return true;
}

bool
AckProtocol::reassemble(net::Packet &pkt)
{
    const proto::FrameHeader &h0 = pkt.frames.front().header;
    if (h0.frameCount() == pkt.frames.size())
        return true; // whole message in one packet
    const FragKey fk{h0.connId, h0.rpcId,
                     static_cast<std::uint8_t>(h0.type)};
    FragBuf &buf = _frags[fk];
    for (proto::Frame &f : pkt.frames)
        buf.byIdx[f.header.frameIdx] = std::move(f);
    if (buf.byIdx.size() < h0.frameCount())
        return false; // still missing fragments
    // Complete: rebuild the packet with frames in index order (the
    // map is ordered by frameIdx) and release the buffer.
    pkt.frames.clear();
    pkt.frames.reserve(buf.byIdx.size());
    for (auto &[idx, f] : buf.byIdx)
        pkt.frames.push_back(std::move(f));
    _frags.erase(fk);
    return true;
}

bool
AckProtocol::onIngress(net::Packet &pkt)
{
    dagger_assert(_nic, "AckProtocol not attached");
    const bool is_ack = pkt.frames.size() == 1 &&
        pkt.frames.front().header.fnId == kAckFn;
    if (is_ack) {
        if (_dropNextAcks > 0) {
            --_dropNextAcks;
            return false; // simulated ACK loss
        }
        onAck(pkt);
        return false; // consumed; never reaches the RPC pipeline
    }
    if (_dropNext > 0) {
        --_dropNext;
        return false; // simulated wire loss: no delivery, no ACK
    }
    if (!pkt.th.reliable)
        return true; // peer runs no protocol; pass through untouched
    // Integrity gate before the ACK: a corrupted frame must look like
    // a loss to the sender, so it retransmits a clean copy.
    for (const proto::Frame &f : pkt.frames) {
        if (!f.verifyChecksum()) {
            ++_corruptDropped;
            return false;
        }
    }
    if (!admitSeq(pkt.frames.front().header.connId, pkt.th.seq)) {
        // Duplicate (our ACK was lost or slow): re-ACK so the sender
        // stops retrying, but never re-deliver to the RPC pipeline.
        sendAck(pkt);
        ++_dupSuppressed;
        return false;
    }
    sendAck(pkt);
    return reassemble(pkt);
}

} // namespace dagger::nic
