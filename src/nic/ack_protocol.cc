#include "nic/ack_protocol.hh"

#include "nic/dagger_nic.hh"
#include "sim/logging.hh"

namespace dagger::nic {

void
AckProtocol::attach(DaggerNic &nic)
{
    _nic = &nic;
}

AckProtocol::Key
AckProtocol::keyOf(const net::Packet &pkt)
{
    dagger_assert(!pkt.frames.empty(), "empty packet");
    const proto::FrameHeader &h = pkt.frames.front().header;
    return Key{h.connId, h.rpcId, static_cast<std::uint8_t>(h.type)};
}

bool
AckProtocol::onEgress(net::Packet &pkt)
{
    dagger_assert(_nic, "AckProtocol not attached");
    const Key key = keyOf(pkt);
    Pending entry;
    entry.pkt = pkt; // keep a retransmission copy
    _pending[key] = std::move(entry);
    armTimer(key);
    return true; // forward to the wire
}

void
AckProtocol::armTimer(const Key &key)
{
    auto expire = [this, key] {
        auto it = _pending.find(key);
        if (it == _pending.end())
            return; // acked in the meantime
        if (it->second.retries >= _maxRetries) {
            ++_lost;
            _pending.erase(it);
            return;
        }
        ++it->second.retries;
        ++_retransmissions;
        _nic->protocolEgress(it->second.pkt); // resend a copy
        armTimer(key);
    };
    // One timer per in-flight packet: `this` plus the 12-byte Key must
    // stay within EventClosure's inline buffer.
    static_assert(sim::EventClosure::fitsInline<decltype(expire)>());
    _nic->eventQueue().schedule(_timeout, std::move(expire));
}

void
AckProtocol::sendAck(const net::Packet &data)
{
    // An ACK is a single control frame mirroring the data headers,
    // marked with the reserved fnId.
    net::Packet ack;
    ack.dst = data.src;
    proto::Frame f;
    f.header = data.frames.front().header;
    f.header.fnId = kAckFn;
    f.header.numFrames = 1;
    f.header.frameIdx = 0;
    f.header.payloadLen = 0;
    f.header.checksum = 0;
    ack.frames.push_back(f);
    ++_acksSent;
    _nic->protocolEgress(std::move(ack));
}

bool
AckProtocol::onIngress(net::Packet &pkt)
{
    dagger_assert(_nic, "AckProtocol not attached");
    const bool is_ack = pkt.frames.size() == 1 &&
        pkt.frames.front().header.fnId == kAckFn;
    if (!is_ack && _dropNext > 0) {
        --_dropNext;
        return false; // simulated wire loss: no delivery, no ACK
    }
    if (is_ack) {
        // Control frame: clear the retransmission entry.
        Key key = keyOf(pkt);
        if (_pending.erase(key))
            ++_acksReceived;
        return false; // consumed; never reaches the RPC pipeline
    }
    sendAck(pkt);
    return true;
}

} // namespace dagger::nic
