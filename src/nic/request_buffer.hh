/**
 * @file
 * The TX-path request buffer of Fig. 9(B).
 *
 * "Dagger implements a request buffer ... which stores all incoming
 * RPCs in a lookup table indexed by the slot_id. The Free Slot FIFO
 * is designed to keep track of free entries in the request buffer.
 * The Flow FIFOs in this case only contain references (slot_ids) to
 * the actual RPC data in the table."  The table holds B * N_flows
 * entries (one frame each).
 */

#ifndef DAGGER_NIC_REQUEST_BUFFER_HH
#define DAGGER_NIC_REQUEST_BUFFER_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "proto/wire.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace dagger::nic {

/** Index into the request table. */
using SlotId = std::uint32_t;

/**
 * Request table + free-slot FIFO + per-flow FIFOs of slot references.
 */
class RequestBuffer
{
  public:
    /**
     * @param slots total request-table entries (B * N_flows in the
     *              paper's sizing; larger is allowed)
     * @param flows number of flow FIFOs
     */
    RequestBuffer(std::size_t slots, unsigned flows);

    /**
     * Store one frame and append its slot reference to @p flow's FIFO.
     * @retval nullopt no free slot (backpressure: caller must drop or
     *         stall the ingress pipeline).
     */
    std::optional<SlotId> push(unsigned flow, proto::Frame frame);

    /** Frames queued in @p flow's FIFO. */
    std::size_t flowDepth(unsigned flow) const;

    /**
     * Pop up to @p n frames from @p flow in FIFO order, returning the
     * slots to the free FIFO.
     */
    std::vector<proto::Frame> pop(unsigned flow, std::size_t n);

    std::size_t freeSlots() const { return _freeFifo.size(); }
    std::size_t capacity() const { return _table.size(); }
    unsigned flows() const { return static_cast<unsigned>(_flowFifos.size()); }

    std::uint64_t pushes() const { return _pushes; }
    std::uint64_t rejections() const { return _rejections; }

    /** Register buffer statistics (JSON-only). */
    void
    registerMetrics(sim::MetricScope scope) const
    {
        scope.intGauge("pushes", [this] { return _pushes; },
                       sim::MetricText::Hide);
        scope.intGauge("rejections", [this] { return _rejections; },
                       sim::MetricText::Hide);
        scope.intGauge("free_slots",
                       [this] {
                           return static_cast<std::uint64_t>(
                               _freeFifo.size());
                       },
                       sim::MetricText::Hide);
    }

  private:
    // Embedded in a DaggerNic: node-domain state like the rest of the
    // TX pipeline.
    DAGGER_OWNED_BY(node) std::vector<proto::Frame> _table;
    DAGGER_OWNED_BY(node) std::deque<SlotId> _freeFifo;
    DAGGER_OWNED_BY(node) std::vector<std::deque<SlotId>> _flowFifos;
    DAGGER_OWNED_BY(node) std::uint64_t _pushes = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _rejections = 0;
};

} // namespace dagger::nic

#endif // DAGGER_NIC_REQUEST_BUFFER_HH
