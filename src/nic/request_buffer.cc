#include "nic/request_buffer.hh"

#include "sim/check.hh"

namespace dagger::nic {

RequestBuffer::RequestBuffer(std::size_t slots, unsigned flows)
    : _table(slots), _flowFifos(flows)
{
    dagger_assert(slots > 0, "request buffer needs slots");
    dagger_assert(flows > 0, "request buffer needs flows");
    for (SlotId s = 0; s < slots; ++s)
        _freeFifo.push_back(s);
}

std::optional<SlotId>
RequestBuffer::push(unsigned flow, proto::Frame frame)
{
    dagger_assert(flow < _flowFifos.size(), "bad flow ", flow);
    if (_freeFifo.empty()) {
        ++_rejections;
        return std::nullopt;
    }
    const SlotId slot = _freeFifo.front();
    _freeFifo.pop_front();
    DAGGER_DCHECK(slot < _table.size(),
                  "free FIFO handed out slot ", slot, " beyond table size ",
                  _table.size());
    _table[slot] = std::move(frame);
    _flowFifos[flow].push_back(slot);
    ++_pushes;
    return slot;
}

std::size_t
RequestBuffer::flowDepth(unsigned flow) const
{
    dagger_assert(flow < _flowFifos.size(), "bad flow ", flow);
    return _flowFifos[flow].size();
}

std::vector<proto::Frame>
RequestBuffer::pop(unsigned flow, std::size_t n)
{
    dagger_assert(flow < _flowFifos.size(), "bad flow ", flow);
    auto &fifo = _flowFifos[flow];
    const std::size_t take = std::min(n, fifo.size());
    std::vector<proto::Frame> out;
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        const SlotId slot = fifo.front();
        fifo.pop_front();
        out.push_back(std::move(_table[slot]));
        _freeFifo.push_back(slot);
    }
    // Slots are conserved: every entry is either free or queued in
    // exactly one flow FIFO, so the free FIFO can never outgrow the
    // table (a double-release would trip this first).
    DAGGER_INVARIANT(_freeFifo.size() <= _table.size(),
                     "free FIFO (", _freeFifo.size(),
                     ") outgrew the request table (", _table.size(), ")");
    return out;
}

} // namespace dagger::nic
