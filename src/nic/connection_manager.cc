#include "nic/connection_manager.hh"

#include "sim/logging.hh"

namespace dagger::nic {

ConnectionManager::ConnectionManager(const NicConfig &cfg)
    : _cfg(cfg), _table(cfg.connCacheEntries)
{
    dagger_assert(cfg.connCacheEntries > 0 &&
                  (cfg.connCacheEntries & (cfg.connCacheEntries - 1)) == 0,
                  "connection cache entries must be a power of two, got ",
                  cfg.connCacheEntries);
}

bool
ConnectionManager::open(proto::ConnId id, const ConnTuple &tuple)
{
    ++_readerAccesses[static_cast<std::size_t>(CmReader::Manager)];
    Slot &s = _table[index(id)];
    if (s.valid && s.id != id) {
        // Direct-mapped conflict.
        if (!_cfg.connCacheDramBacking) {
            dagger_warn("connection cache conflict: c_id ", id,
                        " displaces c_id ", s.id,
                        " and DRAM backing is disabled");
            return false;
        }
        ++_evictions;
        _backing[s.id] = s.tuple;
    }
    s.valid = true;
    s.id = id;
    s.tuple = tuple;
    if (_cfg.connCacheDramBacking)
        _backing[id] = tuple;
    return true;
}

void
ConnectionManager::close(proto::ConnId id)
{
    ++_readerAccesses[static_cast<std::size_t>(CmReader::Manager)];
    Slot &s = _table[index(id)];
    if (s.valid && s.id == id)
        s.valid = false;
    _backing.erase(id);
}

std::optional<ConnTuple>
ConnectionManager::lookup(proto::ConnId id, CmReader reader,
                          sim::Tick &penalty)
{
    ++_readerAccesses[static_cast<std::size_t>(reader)];
    penalty = 0;
    Slot &s = _table[index(id)];
    if (s.valid && s.id == id) {
        ++_hits;
        return s.tuple;
    }
    ++_misses;
    if (!_cfg.connCacheDramBacking)
        return std::nullopt;
    auto it = _backing.find(id);
    if (it == _backing.end())
        return std::nullopt;
    // Coherent fill from host DRAM; refill the cache slot.
    penalty = _cfg.connMissPenalty;
    if (s.valid && s.id != id) {
        ++_evictions;
        _backing[s.id] = s.tuple;
    }
    s.valid = true;
    s.id = id;
    s.tuple = it->second;
    return it->second;
}

std::size_t
ConnectionManager::cachedConnections() const
{
    std::size_t n = 0;
    for (const Slot &s : _table)
        n += s.valid;
    return n;
}

} // namespace dagger::nic
