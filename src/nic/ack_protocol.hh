/**
 * @file
 * A reliable-delivery Protocol unit.
 *
 * The paper leaves the Protocol block of the RPC unit idle ("it
 * simply forwards all packets to the network") and lists reliable
 * transports with piggybacked acknowledgements as follow-up work
 * (§4.5).  This extension implements the simplest useful version:
 * positive ACKs per packet, a retransmission queue with timeout, and
 * a bounded retry budget — enough to survive ToR-queue drops, and a
 * template for richer protocols (the paper mentions TONIC-style
 * designs as a fit for this block).
 *
 * Off by default, exactly like the paper's artifact; install with
 * DaggerNic::setProtocol(std::make_unique<AckProtocol>(...)).
 */

#ifndef DAGGER_NIC_ACK_PROTOCOL_HH
#define DAGGER_NIC_ACK_PROTOCOL_HH

#include <cstdint>
#include <unordered_map>

#include "nic/pipeline.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace dagger::nic {

class DaggerNic;

/** Positive-ACK reliability with timeout retransmission. */
class AckProtocol final : public ProtocolUnit
{
  public:
    /**
     * @param retransmit_timeout resend an unacked packet after this
     * @param max_retries        give up (and count a loss) after this
     *                           many resends
     */
    explicit AckProtocol(sim::Tick retransmit_timeout = sim::usToTicks(10),
                         unsigned max_retries = 4)
        : _timeout(retransmit_timeout), _maxRetries(max_retries)
    {}

    void attach(DaggerNic &nic) override;

    bool onEgress(net::Packet &pkt) override;
    bool onIngress(net::Packet &pkt) override;

    const char *name() const override { return "ack"; }

    /**
     * Fault injection: silently discard the next @p n ingress data
     * packets (no delivery, no ACK) — simulates wire loss for tests
     * and failure-injection benches.
     */
    void dropNextIngress(unsigned n) { _dropNext = n; }

    std::uint64_t acksSent() const { return _acksSent; }
    std::uint64_t acksReceived() const { return _acksReceived; }
    std::uint64_t retransmissions() const { return _retransmissions; }
    std::uint64_t lost() const { return _lost; }
    std::size_t unacked() const { return _pending.size(); }

  private:
    /** Sequence-number key of a data packet. */
    struct Key
    {
        std::uint32_t conn;
        std::uint32_t rpc;
        std::uint8_t type;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            std::uint64_t v = (static_cast<std::uint64_t>(k.conn) << 34) ^
                              (static_cast<std::uint64_t>(k.rpc) << 2) ^ k.type;
            v *= 0x9e3779b97f4a7c15ull;
            return static_cast<std::size_t>(v ^ (v >> 31));
        }
    };

    struct Pending
    {
        net::Packet pkt;
        unsigned retries = 0;
    };

    static Key keyOf(const net::Packet &pkt);
    void armTimer(const Key &key);
    void sendAck(const net::Packet &data);

    /** fnId marker distinguishing ACK frames from data. */
    static constexpr std::uint16_t kAckFn = 0xffff;

    DaggerNic *_nic = nullptr;
    sim::Tick _timeout;
    unsigned _maxRetries;
    std::unordered_map<Key, Pending, KeyHash> _pending;
    unsigned _dropNext = 0;
    std::uint64_t _acksSent = 0;
    std::uint64_t _acksReceived = 0;
    std::uint64_t _retransmissions = 0;
    std::uint64_t _lost = 0;
};

} // namespace dagger::nic

#endif // DAGGER_NIC_ACK_PROTOCOL_HH
