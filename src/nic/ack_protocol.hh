/**
 * @file
 * A reliable-delivery Protocol unit.
 *
 * The paper leaves the Protocol block of the RPC unit idle ("it
 * simply forwards all packets to the network") and lists reliable
 * transports with piggybacked acknowledgements as follow-up work
 * (§4.5).  This extension implements an at-most-once transport:
 * every data packet carries a per-connection sequence number
 * (proto::TransportHeader), the receiver keeps a dedup window and
 * acknowledges each packet with its sequence plus a cumulative ACK,
 * and the sender retransmits unacked packets on a timeout with a
 * bounded retry budget.  Multi-frame RPCs can be fragmented into
 * independently sequenced (and independently retransmitted) wire
 * packets, reassembled out of order on ingress.  Corrupted frames
 * (per-frame checksum mismatch) are dropped *before* the ACK, so they
 * look like losses to the sender.
 *
 * Off by default, exactly like the paper's artifact; install with
 * DaggerNic::setProtocol(std::make_unique<AckProtocol>(...)).
 */

#ifndef DAGGER_NIC_ACK_PROTOCOL_HH
#define DAGGER_NIC_ACK_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "nic/pipeline.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace dagger::nic {

class DaggerNic;

/** Positive-ACK reliability with dedup and timeout retransmission. */
class AckProtocol final : public ProtocolUnit
{
  public:
    /**
     * @param retransmit_timeout resend an unacked packet after this
     * @param max_retries        give up (and count a loss) after this
     *                           many resends
     * @param mtu_frames         fragment egress packets larger than
     *                           this many frames into independently
     *                           sequenced wire packets (0 = never
     *                           fragment: one packet per RPC)
     */
    explicit AckProtocol(sim::Tick retransmit_timeout = sim::usToTicks(10),
                         unsigned max_retries = 4,
                         std::size_t mtu_frames = 0)
        : _timeout(retransmit_timeout), _maxRetries(max_retries),
          _mtuFrames(mtu_frames)
    {}

    void attach(DaggerNic &nic) override;

    bool onEgress(net::Packet &pkt) override;
    bool onIngress(net::Packet &pkt) override;

    const char *name() const override { return "ack"; }

    /**
     * Fault injection: silently discard the next @p n ingress data
     * packets (no delivery, no ACK) — simulates wire loss for tests
     * and failure-injection benches.
     */
    void dropNextIngress(unsigned n) { _dropNext = n; }

    /**
     * Fault injection: silently discard the next @p n ingress *ACK*
     * packets — exercises the lost-ACK path (the peer retransmits a
     * packet this side already delivered; dedup must suppress it).
     */
    void dropNextIngressAcks(unsigned n) { _dropNextAcks = n; }

    /** Exposed for tests: the pending-map hash over (conn, seq).  Must
     *  mix every connection-id bit (a shift past bit 32 of a 64-bit
     *  lane would silently drop high conn bits). */
    static std::size_t
    hashKey(std::uint32_t conn, std::uint32_t seq)
    {
        return KeyHash{}(Key{conn, seq});
    }

    std::uint64_t acksSent() const { return _acksSent; }
    std::uint64_t acksReceived() const { return _acksReceived; }
    std::uint64_t retransmissions() const { return _retransmissions; }
    std::uint64_t lost() const { return _lost; }
    /** Duplicate data packets re-ACKed but not re-delivered. */
    std::uint64_t dupSuppressed() const { return _dupSuppressed; }
    /** Ingress frames failing the checksum gate (dropped, unACKed). */
    std::uint64_t corruptDropped() const { return _corruptDropped; }
    std::size_t unacked() const { return _pending.size(); }

  private:
    /** Retransmission key: a per-connection packet sequence number. */
    struct Key
    {
        std::uint32_t conn;
        std::uint32_t seq;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            // splitmix64 finalizer over the full (conn, seq) pair; a
            // plain shift-xor mix must not shift a 32-bit lane past
            // bit 32, or high connection ids silently collide.
            std::uint64_t v = (static_cast<std::uint64_t>(k.conn) << 32) |
                              static_cast<std::uint64_t>(k.seq);
            v ^= v >> 30;
            v *= 0xbf58476d1ce4e5b9ull;
            v ^= v >> 27;
            v *= 0x94d049bb133111ebull;
            v ^= v >> 31;
            return static_cast<std::size_t>(v);
        }
    };

    struct Pending
    {
        net::Packet pkt;
        unsigned retries = 0;
    };

    /** Receiver-side per-connection delivery state. */
    struct RxConn
    {
        std::uint32_t cum = 0;        ///< all seq <= cum delivered
        std::set<std::uint32_t> ooo;  ///< delivered out-of-order seqs
    };

    /** Reassembly key for fragmented multi-frame RPCs. */
    struct FragKey
    {
        std::uint32_t conn;
        std::uint32_t rpc;
        std::uint8_t type;
        bool operator==(const FragKey &) const = default;
    };
    struct FragKeyHash
    {
        std::size_t
        operator()(const FragKey &k) const
        {
            std::uint64_t v = (static_cast<std::uint64_t>(k.conn) << 32) |
                              static_cast<std::uint64_t>(k.rpc);
            v ^= static_cast<std::uint64_t>(k.type) << 17;
            v ^= v >> 30;
            v *= 0xbf58476d1ce4e5b9ull;
            v ^= v >> 27;
            return static_cast<std::size_t>(v);
        }
    };
    struct FragBuf
    {
        std::map<std::uint16_t, proto::Frame> byIdx; ///< ordered by frameIdx
    };

    /** Bound on per-connection out-of-order dedup state. */
    static constexpr std::size_t kDedupWindow = 4096;

    void trackEgress(net::Packet &pkt);
    void armTimer(const Key &key);
    void sendAck(const net::Packet &data);
    void onAck(const net::Packet &ack);
    /** @retval true seq admitted (first delivery); false = duplicate. */
    bool admitSeq(std::uint32_t conn, std::uint32_t seq);
    /** @retval true @p pkt now holds a complete, in-order frame set. */
    bool reassemble(net::Packet &pkt);

    /** fnId marker distinguishing ACK frames from data. */
    static constexpr std::uint16_t kAckFn = 0xffff;

    DaggerNic *_nic = nullptr;
    sim::Tick _timeout;
    unsigned _maxRetries;
    std::size_t _mtuFrames;

    // Attached to one DaggerNic: transport state is node-domain like
    // the rest of that NIC's pipeline.
    /// per conn
    DAGGER_OWNED_BY(node) std::unordered_map<std::uint32_t, std::uint32_t> _txSeq;
    DAGGER_OWNED_BY(node) std::unordered_map<Key, Pending, KeyHash> _pending;
    DAGGER_OWNED_BY(node) std::unordered_map<std::uint32_t, RxConn> _rx;
    DAGGER_OWNED_BY(node) std::unordered_map<FragKey, FragBuf, FragKeyHash> _frags;

    DAGGER_OWNED_BY(node) unsigned _dropNext = 0;
    DAGGER_OWNED_BY(node) unsigned _dropNextAcks = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _acksSent = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _acksReceived = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _retransmissions = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _lost = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _dupSuppressed = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _corruptDropped = 0;
};

} // namespace dagger::nic

#endif // DAGGER_NIC_ACK_PROTOCOL_HH
