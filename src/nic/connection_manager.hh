/**
 * @file
 * Connection Manager (CM): hardware connection state (§4.2).
 *
 * "The connection table interface maps connection IDs (c_id) onto
 * tuples <src_flow, dest_addr, load_balancer>."  The CM is a
 * direct-mapped cache split into three banked tables indexed by the
 * log2(N) LSBs of the connection ID, providing 1W3R access so the
 * outgoing flow, the incoming flow, and the CM itself can read in the
 * same cycle without stalling.
 */

#ifndef DAGGER_NIC_CONNECTION_MANAGER_HH
#define DAGGER_NIC_CONNECTION_MANAGER_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/tor_switch.hh"
#include "nic/config.hh"
#include "proto/wire.hh"
#include "sim/check.hh"
#include "sim/metrics.hh"
#include "sim/time.hh"

namespace dagger::nic {

/** The connection tuple stored per c_id (§4.2). */
struct ConnTuple
{
    unsigned srcFlow = 0;      ///< flow that owns this connection's rings
    net::NodeId destAddr = 0;  ///< destination NIC / host
    LbScheme loadBalancer = LbScheme::RoundRobin;

    bool operator==(const ConnTuple &) const = default;
};

/** Which hardware agent is reading (the three read ports). */
enum class CmReader : std::uint8_t {
    OutgoingFlow, ///< TX path: destination credentials
    IncomingFlow, ///< RX path: flow steering / load balancer
    Manager,      ///< the CM itself (open/close)
};

/**
 * The connection cache.  Entries live in a direct-mapped table of
 * NicConfig::connCacheEntries slots; with DRAM backing enabled,
 * evicted/missing entries can be refetched at connMissPenalty,
 * otherwise a miss on an open connection is an error in the caller's
 * setup and the lookup fails.
 */
class ConnectionManager
{
  public:
    explicit ConnectionManager(const NicConfig &cfg);

    /**
     * Open (register) a connection.
     * @retval false the slot conflict could not be resolved (no DRAM
     *         backing and the displaced connection would be lost).
     */
    bool open(proto::ConnId id, const ConnTuple &tuple);

    /** Close a connection; removes it from cache and backing store. */
    void close(proto::ConnId id);

    /**
     * Look up a connection from one of the three read ports.
     *
     * @param penalty out: access penalty (0 on cache hit; the
     *        coherent-fill cost when served from DRAM backing).
     * @return the tuple, or nullopt for an unknown connection.
     */
    std::optional<ConnTuple> lookup(proto::ConnId id, CmReader reader,
                                    sim::Tick &penalty);

    /** Convenience lookup ignoring the penalty (tests/config paths). */
    std::optional<ConnTuple>
    lookup(proto::ConnId id, CmReader reader)
    {
        sim::Tick penalty = 0;
        return lookup(id, reader, penalty);
    }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t evictions() const { return _evictions; }
    std::size_t cachedConnections() const;
    std::size_t backingConnections() const { return _backing.size(); }

    /** Per-read-port access counts (exercises the 1W3R structure). */
    const std::array<std::uint64_t, 3> &readerAccesses() const
    {
        return _readerAccesses;
    }

    /** Register CM statistics; only the hit rate is text-visible. */
    void
    registerMetrics(sim::MetricScope scope) const
    {
        scope.gauge("hit_rate",
                    [this] {
                        const auto total = _hits + _misses;
                        return total == 0
                            ? 0.0
                            : static_cast<double>(_hits) /
                                  static_cast<double>(total);
                    },
                    sim::MetricText::Show, "conn_cache_hit_rate");
        scope.intGauge("hits", [this] { return _hits; },
                       sim::MetricText::Hide);
        scope.intGauge("misses", [this] { return _misses; },
                       sim::MetricText::Hide);
        scope.intGauge("evictions", [this] { return _evictions; },
                       sim::MetricText::Hide);
        scope.intGauge("cached",
                       [this] {
                           return static_cast<std::uint64_t>(
                               cachedConnections());
                       },
                       sim::MetricText::Hide);
        scope.intGauge("backing",
                       [this] {
                           return static_cast<std::uint64_t>(
                               _backing.size());
                       },
                       sim::MetricText::Hide);
        scope.intGauge("reads_outgoing",
                       [this] { return _readerAccesses[0]; },
                       sim::MetricText::Hide);
        scope.intGauge("reads_incoming",
                       [this] { return _readerAccesses[1]; },
                       sim::MetricText::Hide);
        scope.intGauge("reads_manager",
                       [this] { return _readerAccesses[2]; },
                       sim::MetricText::Hide);
    }

  private:
    struct Slot
    {
        bool valid = false;
        proto::ConnId id = 0;
        ConnTuple tuple;
    };

    std::size_t index(proto::ConnId id) const
    {
        return static_cast<std::size_t>(id) & (_table.size() - 1);
    }

    const NicConfig &_cfg;
    /**
     * The three banked tables of the 1W3R design hold the same logical
     * mapping (c_id -> tuple field); functionally we keep one table
     * and count per-port accesses, which preserves behaviour exactly
     * (the banking only removes structural hazards in RTL).
     */
    DAGGER_OWNED_BY(node) std::vector<Slot> _table;
    /// host DRAM
    DAGGER_OWNED_BY(node) std::unordered_map<proto::ConnId, ConnTuple> _backing;
    DAGGER_OWNED_BY(node) std::uint64_t _hits = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _misses = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _evictions = 0;
    DAGGER_OWNED_BY(node) std::array<std::uint64_t, 3> _readerAccesses{};
};

} // namespace dagger::nic

#endif // DAGGER_NIC_CONNECTION_MANAGER_HH
