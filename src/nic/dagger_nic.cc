#include "nic/dagger_nic.hh"

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dagger::nic {

namespace {
/// Hardware maximum frames per CCI-P transaction (auto-batch burst cap).
constexpr std::size_t kHwMaxBatch = 16;
/// Per-flow ingress stall capacity, in frames.  The request buffer's
/// free-slot FIFO backpressures the ingress pipeline ("drop or stall",
/// request_buffer.hh); we model the stall: frames wait here until a
/// table slot frees, and only a backlog beyond several maximum-size
/// messages (kMaxPayloadBytes / kFramePayload = 1366 frames each) is
/// dropped as drops_no_slot.
constexpr std::size_t kIngressStallFrames = 8192;
/// Poll-mode management window (§4.4.1 load-triggered switch).
constexpr sim::Tick kPollWindow = sim::usToTicks(10);
} // namespace

DaggerNic::DaggerNic(sim::EventQueue &eq, NicConfig cfg, SoftConfig soft,
                     ic::CciPort &port, net::SwitchPort &net)
    : _eq(eq), _cfg(cfg), _soft(soft), _port(port), _net(net),
      // NOTE: the connection manager must reference the *member*
      // config (_cfg), not the constructor parameter, which dies at
      // return.
      _cm(_cfg), _hcc(cfg.connMissPenalty),
      _reqBuffer(kHwMaxBatch * cfg.numFlows, cfg.numFlows),
      _flows(cfg.numFlows), _protocol(std::make_unique<ProtocolUnit>()),
      _rrLb(std::make_unique<RoundRobinLb>()),
      _staticLb(std::make_unique<StaticLb>()),
      _objLb(std::make_unique<ObjectLevelLb>(0, 8))
{
    dagger_assert(cfg.numFlows >= 1, "NIC needs at least one flow");
    _net.setReceiver([this](net::Packet pkt) { onNetReceive(std::move(pkt)); });
}

void
DaggerNic::attachFlow(unsigned flow, rpc::TxRing *tx, rpc::RxRing *rx)
{
    dagger_assert(flow < _flows.size(), "bad flow ", flow);
    dagger_assert(tx && rx, "attachFlow with null rings");
    _flows[flow].tx = tx;
    _flows[flow].rx = rx;
    tx->setNotify([this, flow] { maybeFetch(flow); });
}

bool
DaggerNic::openConnection(proto::ConnId id, const ConnTuple &tuple)
{
    dagger_assert(tuple.srcFlow < _cfg.numFlows,
                  "connection src_flow out of range");
    return _cm.open(id, tuple);
}

void
DaggerNic::closeConnection(proto::ConnId id)
{
    _cm.close(id);
}

void
DaggerNic::setObjectLevelKey(std::size_t key_offset, std::size_t key_len)
{
    _objLb = std::make_unique<ObjectLevelLb>(key_offset, key_len);
}

void
DaggerNic::setProtocol(std::unique_ptr<ProtocolUnit> protocol)
{
    dagger_assert(protocol, "null protocol unit");
    _protocol = std::move(protocol);
    _protocol->attach(*this);
}

void
DaggerNic::protocolEgress(net::Packet pkt)
{
    _net.send(std::move(pkt));
}

// ------------------------- RX path (host -> net) -------------------------

void
DaggerNic::maybeFetch(unsigned flow)
{
    _guard.check("nic::DaggerNic RX pipeline");
    FlowState &fs = _flows[flow];
    if (!fs.tx)
        return;
    const unsigned B = effectiveBatch();
    for (;;) {
        const std::size_t avail = fs.tx->pendingFrames();
        if (avail == 0)
            return;
        if (fs.outstandingFetches >= kMaxFlowFetches)
            return; // completion will re-trigger
        if (_soft.autoBatch) {
            // Pull whatever is ready, up to the hardware burst cap.
            issueFetch(flow, std::min(avail, kHwMaxBatch));
            continue;
        }
        if (avail >= B) {
            issueFetch(flow, B);
            continue;
        }
        // Partial batch: wait for more entries or flush on timeout.
        armFetchTimeout(flow);
        return;
    }
}

void
DaggerNic::armFetchTimeout(unsigned flow)
{
    FlowState &fs = _flows[flow];
    if (fs.fetchTimeoutArmed)
        return;
    fs.fetchTimeoutArmed = true;
    _eq.schedule(_soft.batchTimeout,
                 [this, flow] {
                     FlowState &f = _flows[flow];
                     f.fetchTimeoutArmed = false;
                     const std::size_t avail = f.tx->pendingFrames();
                     if (avail > 0 && avail < effectiveBatch() &&
                         f.outstandingFetches < kMaxFlowFetches) {
                         _monitor.timeoutFlushes.inc();
                         issueFetch(flow, avail);
                     }
                     maybeFetch(flow);
                 },
                 sim::Priority::Hardware);
}

void
DaggerNic::issueFetch(unsigned flow, std::size_t frames)
{
    FlowState &fs = _flows[flow];
    auto claimed = fs.tx->popFrames(frames);
    dagger_assert(claimed.size() == frames, "ring under-delivered");
    ++fs.outstandingFetches;
    // The RX FSM pipelines asynchronous reads but maybeFetch() stops
    // issuing at the per-flow credit limit; exceeding it means a
    // completion was lost or double-counted.
    DAGGER_INVARIANT(fs.outstandingFetches <= kMaxFlowFetches,
                     "flow ", flow, " exceeded its fetch credit window: ",
                     fs.outstandingFetches, " > ", kMaxFlowFetches);
    _fetchesInWindow += frames; // request rate, not transaction rate
    _monitor.framesFetched.inc(frames);
    _monitor.fetchBatch.record(frames);
    pollModeTick();
    _port.fetch(static_cast<unsigned>(frames),
                [this, flow, claimed = std::move(claimed)]() mutable {
                    onFetched(flow, std::move(claimed));
                });
}

void
DaggerNic::onFetched(unsigned flow, std::vector<proto::Frame> frames)
{
    FlowState &fs = _flows[flow];
    dagger_assert(fs.outstandingFetches > 0, "fetch completion underflow");
    --fs.outstandingFetches;

    // Release ring entries once the bookkeeping write lands.
    const std::size_t n = frames.size();
    _port.bookkeep([tx = fs.tx, n] { tx->release(n); });

    // Serializer pipeline, then per-message egress.
    _eq.schedule(pipelineDelay(),
                 [this, flow, frames = std::move(frames)]() mutable {
                     FlowState &f = _flows[flow];
                     for (auto &frame : frames) {
                         f.partial.push_back(std::move(frame));
                         const auto need =
                             f.partial.front().header.frameCount();
                         if (f.partial.size() < need)
                             continue;
                         if (proto::RpcMessage::framesConsistent(
                                 f.partial)) {
                             // The fetched frames came straight from
                             // toFrames() in host memory and are
                             // already in wire form; forward them as
                             // the packet instead of re-framing (the
                             // NIC batches on headers, it does not
                             // audit host bytes).
                             egressFrames(std::move(f.partial));
                         } else {
                             _monitor.malformed.inc();
                         }
                         f.partial.clear();
                     }
                     maybeFetch(flow);
                 },
                 sim::Priority::Hardware);
}

void
DaggerNic::egressFrames(std::vector<proto::Frame> frames)
{
    const proto::ConnId conn = frames.front().header.connId;
    sim::Tick penalty = 0;
    auto tuple = _cm.lookup(conn, CmReader::OutgoingFlow, penalty);
    if (!tuple) {
        _monitor.dropsNoConnection.inc();
        return;
    }
    // Transport state for the connection lives in the HCC (§4.1);
    // a cold line costs one coherent fill from host memory.
    penalty += _hcc.access(conn);
    auto send = [this, dst = tuple->destAddr,
                 frames = std::move(frames)]() mutable {
        net::Packet pkt;
        pkt.dst = dst;
        pkt.frames = std::move(frames);
        _monitor.rpcsOut.inc();
        _monitor.bytesOut.inc(pkt.wireBytes());
        if (_protocol->onEgress(pkt))
            _net.send(std::move(pkt));
    };
    // Penalties stall the (in-order) egress pipeline: a later message
    // must not overtake an earlier one that is waiting on a state
    // fill, or per-flow FIFO order would break on the wire.
    const sim::Tick ready = std::max(_eq.now() + penalty, _egressFreeAt);
    _egressFreeAt = ready;
    if (ready == _eq.now())
        send();
    else
        _eq.scheduleAt(ready, std::move(send), sim::Priority::Hardware);
}

// ------------------------- TX path (net -> host) -------------------------

void
DaggerNic::onNetReceive(net::Packet pkt)
{
    _guard.check("nic::DaggerNic TX pipeline");
    if (!_protocol->onIngress(pkt))
        return;
    _eq.schedule(pipelineDelay(),
                 [this, pkt = std::move(pkt)]() mutable {
                     steerMessage(std::move(pkt));
                 },
                 sim::Priority::Hardware);
}

void
DaggerNic::steerMessage(net::Packet pkt)
{
    // Steering routes on the header alone: check consistency, not
    // checksums — integrity is gated at the transport's pre-ACK check
    // and at receive-side reassembly, and reassembling here would add
    // a handle pass per packet just to read connId and type.
    if (!proto::RpcMessage::framesConsistent(pkt.frames)) {
        _monitor.malformed.inc();
        return;
    }
    const proto::FrameHeader &h0 = pkt.frames.front().header;
    sim::Tick penalty = 0;
    auto tuple = _cm.lookup(h0.connId, CmReader::IncomingFlow, penalty);
    if (!tuple) {
        _monitor.dropsNoConnection.inc();
        return;
    }
    penalty += _hcc.access(h0.connId);
    unsigned flow;
    if (h0.type == proto::MsgType::Response) {
        flow = tuple->srcFlow % _cfg.numFlows;
    } else if (tuple->loadBalancer == LbScheme::ObjectLevel) {
        // The object-level balancer hashes key bytes out of the
        // payload, so this steering mode (alone) reassembles.
        proto::RpcMessage msg;
        if (!proto::RpcMessage::fromFrames(pkt.frames, msg)) {
            _monitor.malformed.inc();
            return;
        }
        flow = pickFlow(msg, *tuple);
    } else {
        const proto::RpcMessage hdr(h0.connId, h0.rpcId, h0.fnId, h0.type,
                                    proto::PayloadBuf());
        flow = pickFlow(hdr, *tuple);
    }
    DAGGER_DCHECK(flow < _flows.size(),
                  "load balancer steered to nonexistent flow ", flow);
    FlowState &fs = _flows[flow];
    if (!fs.rx) {
        _monitor.dropsNoConnection.inc();
        return;
    }
    if (fs.ingress.size() + pkt.frames.size() > kIngressStallFrames) {
        _monitor.dropsNoSlot.inc();
        return;
    }
    _monitor.rpcsIn.inc();
    _monitor.bytesIn.inc(pkt.wireBytes());
    if (fs.ingress.empty() && _reqBuffer.freeSlots() >= pkt.frames.size()) {
        // Common case: the request table has room, so frames go
        // straight to their slots without staging in the stall queue.
        for (auto &frame : pkt.frames)
            _reqBuffer.push(flow, std::move(frame));
    } else {
        for (auto &frame : pkt.frames)
            fs.ingress.push_back(std::move(frame));
        drainIngress(flow);
    }
    if (penalty == 0) {
        maybePost(flow);
    } else {
        auto post = [this, flow] { maybePost(flow); };
        // This fires once per steered RPC under CM-penalty pressure;
        // it must never fall off EventClosure's allocation-free path.
        static_assert(sim::EventClosure::fitsInline<decltype(post)>());
        _eq.schedule(penalty, std::move(post), sim::Priority::Hardware);
    }
}

unsigned
DaggerNic::pickFlow(const proto::RpcMessage &msg, const ConnTuple &tuple)
{
    LoadBalancer *lb = nullptr;
    switch (tuple.loadBalancer) {
      case LbScheme::RoundRobin:
        lb = _rrLb.get();
        break;
      case LbScheme::Static:
        lb = _staticLb.get();
        break;
      case LbScheme::ObjectLevel:
        lb = _objLb.get();
        break;
    }
    dagger_assert(lb, "no load balancer instance");
    return lb->pick(msg, tuple, activeFlows());
}

void
DaggerNic::maybePost(unsigned flow)
{
    FlowState &fs = _flows[flow];
    if (!fs.rx)
        return;
    const unsigned B = effectiveBatch();
    for (;;) {
        const std::size_t depth = _reqBuffer.flowDepth(flow);
        if (depth == 0)
            return;
        if (_soft.autoBatch) {
            issuePost(flow, std::min(depth, kHwMaxBatch));
            continue;
        }
        if (depth >= B) {
            issuePost(flow, B);
            continue;
        }
        armPostTimeout(flow);
        return;
    }
}

void
DaggerNic::armPostTimeout(unsigned flow)
{
    FlowState &fs = _flows[flow];
    if (fs.postTimeoutArmed)
        return;
    fs.postTimeoutArmed = true;
    _eq.schedule(_soft.batchTimeout,
                 [this, flow] {
                     FlowState &f = _flows[flow];
                     f.postTimeoutArmed = false;
                     const std::size_t depth = _reqBuffer.flowDepth(flow);
                     if (depth > 0 && depth < effectiveBatch()) {
                         _monitor.timeoutFlushes.inc();
                         issuePost(flow, depth);
                     }
                     maybePost(flow);
                 },
                 sim::Priority::Hardware);
}

void
DaggerNic::drainIngress(unsigned flow)
{
    FlowState &fs = _flows[flow];
    while (!fs.ingress.empty() && _reqBuffer.freeSlots() > 0) {
        _reqBuffer.push(flow, std::move(fs.ingress.front()));
        fs.ingress.pop_front();
    }
}

void
DaggerNic::issuePost(unsigned flow, std::size_t frames)
{
    FlowState &fs = _flows[flow];
    auto batch = _reqBuffer.pop(flow, frames);
    dagger_assert(batch.size() == frames, "request buffer under-delivered");
    // Popping returned slots to the free FIFO; stalled ingress frames
    // claim them immediately so large messages stream through the
    // table in batch-sized waves.
    drainIngress(flow);
    _monitor.framesPosted.inc(frames);
    _monitor.postBatch.record(frames);
    _port.post(static_cast<unsigned>(frames),
               [rx = fs.rx, batch = std::move(batch)]() mutable {
                   rx->deliver(std::move(batch));
               });
}

// ------------------------- poll-mode management -------------------------

void
DaggerNic::pollModeTick()
{
    if (_cfg.iface != ic::IfaceKind::Upi)
        return;
    static_assert(kPollWindow > 0);
    // Lazily manage: this is called on every fetch; once per window we
    // evaluate the observed fetch rate and pick the polling mode.
    const sim::Tick now = _eq.now();
    if (now < _lastPollEval + kPollWindow)
        return;
    const double window_us = sim::ticksToUs(now - _lastPollEval);
    const double mrps = window_us > 0
        ? static_cast<double>(_fetchesInWindow) / window_us
        : 0.0;
    _port.setPollMode(mrps >= _soft.llcPollThresholdMrps
                          ? ic::PollMode::Llc
                          : ic::PollMode::LocalCache);
    _fetchesInWindow = 0;
    _lastPollEval = now;
}

} // namespace dagger::nic
