/**
 * @file
 * Hard and soft configuration of the Dagger NIC (§4.1).
 *
 * Hard configuration corresponds to SystemVerilog parameters baked
 * into a synthesized bitstream: number of flows, cache sizes, ring
 * sizes, the CPU-NIC interface flavour.  Changing it means building a
 * new NIC object (the analogue of reprogramming the FPGA).
 *
 * Soft configuration corresponds to the soft register file written
 * over MMIO at runtime ("Dagger uses soft configuration to control
 * the batch size of CCI-P data transfers, provision the transmit and
 * receive rings, ..., choose a load balancing scheme").
 */

#ifndef DAGGER_NIC_CONFIG_HH
#define DAGGER_NIC_CONFIG_HH

#include <cstdint>

#include "ic/cost_model.hh"
#include "sim/time.hh"

namespace dagger::nic {

/** Load-balancing schemes supported by the RPC unit (§4.4.2, §5.7). */
enum class LbScheme : std::uint8_t {
    RoundRobin,  ///< dynamic uniform steering
    Static,      ///< per-connection static assignment (conn tuple field)
    ObjectLevel, ///< application-specific key hash (MICA, §5.7)
};

const char *lbSchemeName(LbScheme scheme);

/** Hard configuration: fixed when the NIC is "synthesized". */
struct NicConfig
{
    /** Parallel NIC flows; 1-to-1 with software RX/TX ring pairs. */
    unsigned numFlows = 4;

    /** Connection-cache entries (power of two; up to ~153K, §4.2). */
    std::size_t connCacheEntries = 1024;

    /** Per-flow TX ring capacity in 64 B entries (§4.4 sizing rule). */
    std::size_t txRingEntries = 256;

    /** Per-flow RX ring capacity in 64 B entries. */
    std::size_t rxRingEntries = 256;

    /** CPU-NIC interface flavour (Fig. 10 sweep). */
    ic::IfaceKind iface = ic::IfaceKind::Upi;

    /** NIC clock period: 200 MHz per Table 1. */
    sim::Tick clockPeriod = sim::nsToTicks(5);

    /**
     * RPC-unit pipeline depth in cycles (serializer/deserializer,
     * connection lookup, load balancer; Table 1 lists the unit at
     * 200 MHz).  One message spends depth * clockPeriod per direction.
     */
    unsigned pipelineDepth = 6;

    /**
     * Enable DRAM backing of the connection cache (paper future work,
     * implemented here as an extension; see bench/abl_conn_cache).
     */
    bool connCacheDramBacking = false;

    /** Coherent fetch cost of a connection-state fill on a miss. */
    sim::Tick connMissPenalty = sim::nsToTicks(400);
};

/** Soft configuration: mutable at runtime through soft registers. */
struct SoftConfig
{
    /** CCI-P batching factor B (frames per transfer), Fig. 10/11. */
    unsigned batchSize = 4;

    /**
     * Auto-batching: fetch whatever is pending when the FSM is idle
     * instead of waiting for a full batch (the green dashed line in
     * Fig. 11 left).
     */
    bool autoBatch = false;

    /** Max time a partial batch may wait before being forced out.
     *  Calibrated: Fig. 11 (left) shows B=4 costs ~1 us of extra
     *  median latency at low load relative to B=1. */
    sim::Tick batchTimeout = sim::usToTicks(0.5);

    /** Load-balancing scheme for incoming requests. */
    LbScheme loadBalancer = LbScheme::RoundRobin;

    /** Active flows (<= NicConfig::numFlows). */
    unsigned activeFlows = 0; ///< 0 means "all configured flows"

    /**
     * Load threshold (fetches/us) above which the FPGA switches from
     * local-cache polling to direct LLC polling (§4.4.1).
     */
    double llcPollThresholdMrps = 4.0;
};

} // namespace dagger::nic

#endif // DAGGER_NIC_CONFIG_HH
