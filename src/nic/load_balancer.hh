/**
 * @file
 * Request load balancers of the RPC unit (§4.4.2, §5.7).
 *
 * "The Load Balancer currently supports two request distribution
 * schemes: dynamic uniform steering and static load balancing. In
 * addition, we leave some room in the design for implementation of
 * application-specific load balancers (e.g. the Object-Level core
 * affinity mechanism in MICA)."  All three are implemented here; the
 * Object-Level balancer hashes the request key on the NIC exactly as
 * §5.7 describes for the MICA tiers.
 */

#ifndef DAGGER_NIC_LOAD_BALANCER_HH
#define DAGGER_NIC_LOAD_BALANCER_HH

#include <cstdint>
#include <memory>

#include "nic/config.hh"
#include "nic/connection_manager.hh"
#include "proto/wire.hh"
#include "sim/check.hh"

namespace dagger::nic {

/** Strategy interface: choose the flow an incoming request joins. */
class LoadBalancer
{
  public:
    virtual ~LoadBalancer() = default;

    /**
     * @param msg    the incoming request
     * @param tuple  the connection tuple (for static steering)
     * @param flows  number of active flows
     * @return flow index in [0, flows)
     */
    virtual unsigned pick(const proto::RpcMessage &msg,
                          const ConnTuple &tuple, unsigned flows) = 0;

    virtual LbScheme scheme() const = 0;
};

/** Dynamic uniform steering: requests round-robin over flows. */
class RoundRobinLb final : public LoadBalancer
{
  public:
    unsigned
    pick(const proto::RpcMessage &, const ConnTuple &,
         unsigned flows) override
    {
        const unsigned f = _next % flows;
        _next = (_next + 1) % flows;
        return f;
    }

    LbScheme scheme() const override { return LbScheme::RoundRobin; }

  private:
    /// round-robin cursor; owned by the steering NIC's node domain
    DAGGER_OWNED_BY(node) unsigned _next = 0;
};

/** Static balancing: steering recorded in the connection tuple. */
class StaticLb final : public LoadBalancer
{
  public:
    unsigned
    pick(const proto::RpcMessage &, const ConnTuple &tuple,
         unsigned flows) override
    {
        return tuple.srcFlow % flows;
    }

    LbScheme scheme() const override { return LbScheme::Static; }
};

/**
 * Object-level core affinity (MICA): hash the request's key bytes "by
 * applying the hash function to each request's key on the FPGA before
 * steering them to the flow FIFOs" (§5.7).  The key's position inside
 * the payload is configured per NIC (it is fixed by the generated
 * message layout).
 */
class ObjectLevelLb final : public LoadBalancer
{
  public:
    /**
     * @param key_offset byte offset of the key within the payload
     * @param key_len    key length in bytes
     */
    ObjectLevelLb(std::size_t key_offset, std::size_t key_len)
        : _keyOffset(key_offset), _keyLen(key_len)
    {}

    unsigned pick(const proto::RpcMessage &msg, const ConnTuple &tuple,
                  unsigned flows) override;

    LbScheme scheme() const override { return LbScheme::ObjectLevel; }

    /** FNV-1a over the key bytes; exposed so apps can pre-shard. */
    static std::uint64_t hashKey(const std::uint8_t *data, std::size_t len);

  private:
    std::size_t _keyOffset;
    std::size_t _keyLen;
};

/** Factory from the soft-config scheme selector. */
std::unique_ptr<LoadBalancer>
makeLoadBalancer(LbScheme scheme, std::size_t key_offset = 0,
                 std::size_t key_len = 8);

} // namespace dagger::nic

#endif // DAGGER_NIC_LOAD_BALANCER_HH
