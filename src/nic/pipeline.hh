/**
 * @file
 * RPC-unit auxiliary blocks: the Protocol unit hook and the Packet
 * Monitor (Fig. 6).
 *
 * "The Protocol is the last module of the RPC unit. It is designed to
 * implement RPC-optimized protocol layers such as congestion control,
 * piggybacking acknowledgement, ... and is currently idle - it simply
 * forwards all packets to the network." (§4.5)  The hook interface
 * below is that extension point; an optional ACK/retransmit protocol
 * ships in nic/ack_protocol.hh.
 */

#ifndef DAGGER_NIC_PIPELINE_HH
#define DAGGER_NIC_PIPELINE_HH

#include <cstdint>

#include "net/tor_switch.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"

namespace dagger::nic {

class DaggerNic;

/** Protocol-unit extension hook. */
class ProtocolUnit
{
  public:
    virtual ~ProtocolUnit() = default;

    /** Attach to the owning NIC (called once at install time). */
    virtual void attach(DaggerNic &) {}

    /**
     * Egress hook, after serialization, before the wire.
     * @retval false swallow the packet (the protocol took ownership).
     */
    virtual bool onEgress(net::Packet &) { return true; }

    /**
     * Ingress hook, straight off the wire.
     * @retval false consume the packet (e.g., it was an ACK).
     */
    virtual bool onIngress(net::Packet &) { return true; }

    virtual const char *name() const { return "idle"; }
};

/** The Packet Monitor block: networking statistics (§4.1). */
struct PacketMonitor
{
    sim::Counter rpcsOut{"rpcs_out"};
    sim::Counter rpcsIn{"rpcs_in"};
    sim::Counter framesFetched{"frames_fetched"};
    sim::Counter framesPosted{"frames_posted"};
    sim::Counter bytesOut{"bytes_out"};
    sim::Counter bytesIn{"bytes_in"};
    sim::Counter dropsNoConnection{"drops_no_connection"};
    sim::Counter dropsNoSlot{"drops_no_slot"};
    sim::Counter malformed{"malformed"};
    sim::Counter timeoutFlushes{"timeout_flushes"};
    sim::Histogram fetchBatch{"fetch_batch_frames"};
    sim::Histogram postBatch{"post_batch_frames"};

    /** Total drops across causes observable at the NIC. */
    std::uint64_t
    drops() const
    {
        return dropsNoConnection.value() + dropsNoSlot.value();
    }

    /**
     * Register all monitor statistics under @p scope, in legacy report
     * order.  post_batch never appeared in the text report.
     */
    void
    registerMetrics(sim::MetricScope scope) const
    {
        scope.counter("rpcs_out", rpcsOut);
        scope.counter("rpcs_in", rpcsIn);
        scope.counter("frames_fetched", framesFetched);
        scope.counter("frames_posted", framesPosted);
        scope.counter("bytes_out", bytesOut);
        scope.counter("bytes_in", bytesIn);
        scope.counter("drops_no_connection", dropsNoConnection);
        scope.counter("drops_no_slot", dropsNoSlot);
        scope.counter("malformed", malformed);
        scope.counter("timeout_flushes", timeoutFlushes);
        scope.histogram("fetch_batch", fetchBatch);
        scope.histogram("post_batch", postBatch, sim::MetricText::Hide);
    }
};

} // namespace dagger::nic

#endif // DAGGER_NIC_PIPELINE_HH
