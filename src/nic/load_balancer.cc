#include "nic/load_balancer.hh"

#include "sim/logging.hh"

namespace dagger::nic {

const char *
lbSchemeName(LbScheme scheme)
{
    switch (scheme) {
      case LbScheme::RoundRobin:
        return "round-robin";
      case LbScheme::Static:
        return "static";
      case LbScheme::ObjectLevel:
        return "object-level";
    }
    return "?";
}

std::uint64_t
ObjectLevelLb::hashKey(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

unsigned
ObjectLevelLb::pick(const proto::RpcMessage &msg, const ConnTuple &,
                    unsigned flows)
{
    const auto &payload = msg.payload();
    if (_keyOffset + _keyLen > payload.size()) {
        // Request without a key at the configured position (e.g. a
        // control RPC): fall back to flow 0 deterministically.
        return 0;
    }
    return static_cast<unsigned>(
        hashKey(payload.data() + _keyOffset, _keyLen) % flows);
}

std::unique_ptr<LoadBalancer>
makeLoadBalancer(LbScheme scheme, std::size_t key_offset,
                 std::size_t key_len)
{
    switch (scheme) {
      case LbScheme::RoundRobin:
        return std::make_unique<RoundRobinLb>();
      case LbScheme::Static:
        return std::make_unique<StaticLb>();
      case LbScheme::ObjectLevel:
        return std::make_unique<ObjectLevelLb>(key_offset, key_len);
    }
    dagger_panic("unknown LB scheme");
}

} // namespace dagger::nic
