/**
 * @file
 * The Dagger NIC: the paper's green-bitstream user logic (Fig. 6).
 *
 * Receiving path (RX, host -> network): the RX FSM watches the
 * per-flow TX rings, pulls request frames over the CCI-P port in
 * batches of B, runs them through the RPC-unit pipeline (serializer,
 * connection lookup, Protocol unit), and ships packets to the ToR
 * switch.  Bookkeeping messages release ring entries asynchronously.
 *
 * Transmitting path (TX, network -> host): incoming packets run
 * through the deserializer, are steered by the load balancer
 * (requests) or the connection table's src_flow (responses) into flow
 * FIFOs backed by the request buffer (Fig. 9B), and the flow
 * scheduler posts full batches into the host RX rings.
 */

#ifndef DAGGER_NIC_DAGGER_NIC_HH
#define DAGGER_NIC_DAGGER_NIC_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "ic/cci_fabric.hh"
#include "mem/hcc.hh"
#include "net/tor_switch.hh"
#include "nic/config.hh"
#include "nic/connection_manager.hh"
#include "nic/load_balancer.hh"
#include "nic/pipeline.hh"
#include "nic/request_buffer.hh"
#include "proto/wire.hh"
#include "rpc/rings.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/ownership.hh"

namespace dagger::nic {

/** One virtual-but-physical NIC instance (§6, Fig. 14). */
class DaggerNic
{
  public:
    /**
     * @param eq    event queue
     * @param cfg   hard configuration (the "bitstream")
     * @param soft  initial soft-register values
     * @param port  this instance's CCI-P port
     * @param net   this instance's ToR switch port
     */
    DaggerNic(sim::EventQueue &eq, NicConfig cfg, SoftConfig soft,
              ic::CciPort &port, net::SwitchPort &net);

    DaggerNic(const DaggerNic &) = delete;
    DaggerNic &operator=(const DaggerNic &) = delete;

    /** Bind flow @p flow to its software ring pair. */
    void attachFlow(unsigned flow, rpc::TxRing *tx, rpc::RxRing *rx);

    /** Register a connection in the hardware connection manager. */
    bool openConnection(proto::ConnId id, const ConnTuple &tuple);

    /** Remove a connection. */
    void closeConnection(proto::ConnId id);

    /**
     * Mutable soft registers; writes take effect on the next FSM
     * decision, like MMIO CSR writes (§4.1 soft configuration).
     */
    SoftConfig &softConfig() { return _soft; }
    const SoftConfig &softConfig() const { return _soft; }

    /** Install an application-specific load balancer (§5.7, MICA). */
    void setObjectLevelKey(std::size_t key_offset, std::size_t key_len);

    /** Install a protocol-unit extension (default: idle pass-through). */
    void setProtocol(std::unique_ptr<ProtocolUnit> protocol);

    /** Re-inject a packet from a protocol unit (retransmission). */
    void protocolEgress(net::Packet pkt);

    const NicConfig &config() const { return _cfg; }
    net::NodeId node() const { return _net.node(); }
    ConnectionManager &connectionManager() { return _cm; }

    /**
     * The Host Coherent Cache (§4.1): holds per-connection transport
     * state on the NIC, coherently backed by host memory.  Every RPC
     * touches its connection's state line; a miss costs a coherent
     * fill.
     */
    mem::Hcc &hcc() { return _hcc; }

    /** Ownership audit tag for the whole NIC pipeline; bound by
     *  DaggerSystem::addNode to the owning node's shard. */
    sim::OwnershipGuard &ownershipGuard() { return _guard; }

    PacketMonitor &monitor() { return _monitor; }
    const PacketMonitor &monitor() const { return _monitor; }
    ic::CciPort &cciPort() { return _port; }
    sim::EventQueue &eventQueue() { return _eq; }

    /**
     * Register all NIC statistics under @p scope: the Packet Monitor
     * first (legacy order), then the connection cache, HCC, and the
     * TX-path request buffer as child scopes.
     */
    void
    registerMetrics(sim::MetricScope scope) const
    {
        _monitor.registerMetrics(scope);
        _cm.registerMetrics(scope.sub("conn_cache"));
        _hcc.registerMetrics(scope.sub("hcc"));
        _reqBuffer.registerMetrics(scope.sub("req_buffer"));
    }

    /** Effective number of active flows. */
    unsigned
    activeFlows() const
    {
        return _soft.activeFlows == 0 || _soft.activeFlows > _cfg.numFlows
            ? _cfg.numFlows
            : _soft.activeFlows;
    }

  private:
    struct FlowState
    {
        rpc::TxRing *tx = nullptr;
        rpc::RxRing *rx = nullptr;
        bool fetchTimeoutArmed = false;
        bool postTimeoutArmed = false;
        unsigned outstandingFetches = 0;
        /// egress grouping of multi-frame messages
        std::vector<proto::Frame> partial;
        /// ingress frames stalled waiting for a request-buffer slot
        std::deque<proto::Frame> ingress;
    };

    sim::Tick pipelineDelay() const
    {
        return static_cast<sim::Tick>(_cfg.pipelineDepth) * _cfg.clockPeriod;
    }

    unsigned effectiveBatch() const { return std::max(1u, _soft.batchSize); }

    // --- RX path (host -> network) ---
    void maybeFetch(unsigned flow);
    void issueFetch(unsigned flow, std::size_t frames);
    void armFetchTimeout(unsigned flow);
    void onFetched(unsigned flow, std::vector<proto::Frame> frames);
    void egressFrames(std::vector<proto::Frame> frames);

    // --- TX path (network -> host) ---
    void onNetReceive(net::Packet pkt);
    void steerMessage(net::Packet pkt);
    void drainIngress(unsigned flow);
    unsigned pickFlow(const proto::RpcMessage &msg, const ConnTuple &tuple);
    void maybePost(unsigned flow);
    void issuePost(unsigned flow, std::size_t frames);
    void armPostTimeout(unsigned flow);

    // --- poll-mode management (§4.4.1) ---
    void pollModeTick();

    sim::EventQueue &_eq;
    NicConfig _cfg;
    // Everything below is NIC-pipeline state: owned by the node's
    // shard, mutated only from its queue's events.
    DAGGER_OWNED_BY(node) SoftConfig _soft;
    ic::CciPort &_port;
    net::SwitchPort &_net;
    DAGGER_OWNED_BY(node) ConnectionManager _cm;
    DAGGER_OWNED_BY(node) mem::Hcc _hcc;
    DAGGER_OWNED_BY(node) RequestBuffer _reqBuffer;
    DAGGER_OWNED_BY(node) std::vector<FlowState> _flows;
    DAGGER_OWNED_BY(node) PacketMonitor _monitor;
    std::unique_ptr<ProtocolUnit> _protocol;
    std::unique_ptr<LoadBalancer> _rrLb;
    std::unique_ptr<LoadBalancer> _staticLb;
    std::unique_ptr<LoadBalancer> _objLb;
    DAGGER_OWNED_BY(node) std::uint64_t _fetchesInWindow = 0;
    DAGGER_OWNED_BY(node) sim::Tick _lastPollEval = 0;
    /// in-order egress pipeline head
    DAGGER_OWNED_BY(node) sim::Tick _egressFreeAt = 0;
    sim::OwnershipGuard _guard;

    /// cap on per-flow outstanding fetches; creates natural batching
    /// in auto mode while keeping the bus pipelined (§4.4: "Dagger
    /// sends multiple asynchronous requests")
    static constexpr unsigned kMaxFlowFetches = 8;
};

} // namespace dagger::nic

#endif // DAGGER_NIC_DAGGER_NIC_HH
