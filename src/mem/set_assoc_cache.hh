/**
 * @file
 * Set-associative LRU cache model.
 *
 * Used where direct-mapped residency would thrash (e.g., the MICA
 * item-residency model under Zipfian traffic): with per-set LRU the
 * hit rate converges to the Che approximation — roughly the request
 * mass of the hottest `capacity` items — which is the behaviour of a
 * real LLC.
 */

#ifndef DAGGER_MEM_SET_ASSOC_CACHE_HH
#define DAGGER_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace dagger::mem {

/** Presence-only set-associative LRU cache keyed by 64-bit keys. */
class SetAssocLruCache
{
  public:
    /**
     * @param capacity total entries (rounded up to sets*ways)
     * @param ways     associativity
     */
    explicit SetAssocLruCache(std::size_t capacity, unsigned ways = 16)
        : _ways(ways)
    {
        dagger_assert(ways >= 1, "need at least one way");
        std::size_t sets = 1;
        while (sets * ways < capacity)
            sets <<= 1;
        _sets.resize(sets);
        for (auto &s : _sets)
            s.reserve(ways);
    }

    /**
     * Access @p key: returns true on a hit.  On a miss the key is
     * inserted, evicting the set's LRU entry if full.  Hits move the
     * key to MRU position.
     */
    bool
    access(std::uint64_t key)
    {
        auto &set = _sets[indexOf(key)];
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i] == key) {
                // Move to MRU (front).
                for (std::size_t j = i; j > 0; --j)
                    set[j] = set[j - 1];
                set[0] = key;
                ++_hits;
                return true;
            }
        }
        ++_misses;
        if (set.size() < _ways) {
            set.insert(set.begin(), key);
        } else {
            for (std::size_t j = set.size() - 1; j > 0; --j)
                set[j] = set[j - 1];
            set[0] = key;
            ++_evictions;
        }
        return false;
    }

    /** Probe without mutating state or statistics. */
    bool
    contains(std::uint64_t key) const
    {
        const auto &set = _sets[indexOf(key)];
        for (std::uint64_t k : set)
            if (k == key)
                return true;
        return false;
    }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t evictions() const { return _evictions; }
    std::size_t capacity() const { return _sets.size() * _ways; }

    double
    hitRate() const
    {
        const auto total = _hits + _misses;
        return total == 0
            ? 0.0
            : static_cast<double>(_hits) / static_cast<double>(total);
    }

    /** Register this cache's statistics under @p scope. */
    void
    registerMetrics(sim::MetricScope scope,
                    sim::MetricText hit_rate_text = sim::MetricText::Hide,
                    std::string hit_rate_label = {}) const
    {
        scope.gauge("hit_rate", [this] { return hitRate(); },
                    hit_rate_text, std::move(hit_rate_label));
        scope.intGauge("hits", [this] { return _hits; },
                       sim::MetricText::Hide);
        scope.intGauge("misses", [this] { return _misses; },
                       sim::MetricText::Hide);
        scope.intGauge("evictions", [this] { return _evictions; },
                       sim::MetricText::Hide);
    }

  private:
    std::size_t
    indexOf(std::uint64_t key) const
    {
        std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
        return static_cast<std::size_t>(h >> 40) & (_sets.size() - 1);
    }

    unsigned _ways;
    std::vector<std::vector<std::uint64_t>> _sets;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
};

} // namespace dagger::mem

#endif // DAGGER_MEM_SET_ASSOC_CACHE_HH
