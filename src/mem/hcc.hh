/**
 * @file
 * Host Coherent Cache (HCC) model.
 *
 * "HCC is a small (128 KB) direct-mapped cache implemented in the blue
 * bitstream, which is fully coherent with the host's memory, via the
 * CCI-P stack. HCC is used to hold cache connection states and the
 * necessary structures for the transport layer on the NIC, while the
 * actual data resides in the host memory." (§4.1)
 *
 * A miss therefore costs one coherent fetch from host DRAM over CCI-P
 * rather than a full PCIe DMA round trip — the paper's point that
 * "NIC cache misses [are] cheaper compared to PCIe-based NICs".
 */

#ifndef DAGGER_MEM_HCC_HH
#define DAGGER_MEM_HCC_HH

#include <cstdint>

#include "mem/direct_mapped_cache.hh"
#include "sim/time.hh"

namespace dagger::mem {

/** HCC capacity in bytes (§4.1). */
constexpr std::size_t kHccBytes = 128 * 1024;

/** Cache line granularity. */
constexpr std::size_t kHccLineBytes = 64;

/** Number of direct-mapped lines. */
constexpr std::size_t kHccLines = kHccBytes / kHccLineBytes; // 2048

/**
 * HCC: a direct-mapped line-presence tracker with coherent-miss cost
 * accounting.  The "value" is opaque: what matters for the models is
 * whether a given state line is NIC-resident (hit) or must be pulled
 * from host DRAM over the coherent interconnect (miss).
 */
class Hcc
{
  public:
    /**
     * @param miss_latency cost of a coherent fill from host memory
     */
    explicit Hcc(sim::Tick miss_latency = sim::nsToTicks(400))
        : _missLatency(miss_latency), _lines(kHccLines)
    {}

    /**
     * Access the state line for @p key.
     * @return the access latency: 0 on a hit, missLatency on a fill.
     */
    sim::Tick
    access(std::uint64_t key)
    {
        if (_lines.lookup(key))
            return 0;
        _lines.insert(key, true);
        return _missLatency;
    }

    /** Invalidate one line (host wrote the backing memory). */
    void invalidate(std::uint64_t key) { _lines.erase(key); }

    std::uint64_t hits() const { return _lines.hits(); }
    std::uint64_t misses() const { return _lines.misses(); }
    double hitRate() const { return _lines.hitRate(); }
    sim::Tick missLatency() const { return _missLatency; }

    /** Register HCC statistics; the hit rate is text-visible. */
    void
    registerMetrics(sim::MetricScope scope) const
    {
        _lines.registerMetrics(scope, sim::MetricText::Show,
                               "hcc_hit_rate");
    }

  private:
    sim::Tick _missLatency;
    DirectMappedCache<bool> _lines;
};

} // namespace dagger::mem

#endif // DAGGER_MEM_HCC_HH
