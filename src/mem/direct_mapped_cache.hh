/**
 * @file
 * Generic direct-mapped cache model with hit/miss/eviction statistics.
 *
 * Used for the Host Coherent Cache (HCC, 128 KB, §4.1) and as the
 * building block of the NIC connection cache (§4.2).
 */

#ifndef DAGGER_MEM_DIRECT_MAPPED_CACHE_HH
#define DAGGER_MEM_DIRECT_MAPPED_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace dagger::mem {

/**
 * Direct-mapped cache keyed by a 64-bit key, holding values of type V.
 * Index = key & (sets-1); sets must be a power of two.
 */
template <typename V>
class DirectMappedCache
{
  public:
    explicit DirectMappedCache(std::size_t sets) : _slots(sets)
    {
        dagger_assert(sets > 0 && (sets & (sets - 1)) == 0,
                      "cache sets must be a power of two, got ", sets);
    }

    std::size_t sets() const { return _slots.size(); }

    /** Look up @p key; counts a hit or a miss. */
    std::optional<V>
    lookup(std::uint64_t key)
    {
        Slot &s = slotFor(key);
        if (s.valid && s.key == key) {
            ++_hits;
            return s.value;
        }
        ++_misses;
        return std::nullopt;
    }

    /** Peek without touching statistics. */
    std::optional<V>
    peek(std::uint64_t key) const
    {
        const Slot &s = _slots[index(key)];
        if (s.valid && s.key == key)
            return s.value;
        return std::nullopt;
    }

    /**
     * Insert @p key -> @p value.
     * @return the evicted (key, value) pair if a different key was
     *         displaced.
     */
    std::optional<std::pair<std::uint64_t, V>>
    insert(std::uint64_t key, V value)
    {
        Slot &s = slotFor(key);
        std::optional<std::pair<std::uint64_t, V>> evicted;
        if (s.valid && s.key != key) {
            ++_evictions;
            evicted = std::make_pair(s.key, std::move(s.value));
        }
        s.valid = true;
        s.key = key;
        s.value = std::move(value);
        return evicted;
    }

    /** Remove @p key if present. @return true if it was present. */
    bool
    erase(std::uint64_t key)
    {
        Slot &s = slotFor(key);
        if (s.valid && s.key == key) {
            s.valid = false;
            return true;
        }
        return false;
    }

    /** Number of valid entries (O(sets)). */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const Slot &s : _slots)
            n += s.valid;
        return n;
    }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t evictions() const { return _evictions; }

    double
    hitRate() const
    {
        const auto total = _hits + _misses;
        return total == 0
            ? 0.0
            : static_cast<double>(_hits) / static_cast<double>(total);
    }

    /**
     * Register this cache's statistics under @p scope.  The hit rate's
     * text visibility/label is caller-controlled (the legacy reports
     * print it under cache-specific names); raw counts are JSON-only.
     */
    void
    registerMetrics(sim::MetricScope scope,
                    sim::MetricText hit_rate_text = sim::MetricText::Hide,
                    std::string hit_rate_label = {}) const
    {
        scope.gauge("hit_rate", [this] { return hitRate(); },
                    hit_rate_text, std::move(hit_rate_label));
        scope.intGauge("hits", [this] { return _hits; },
                       sim::MetricText::Hide);
        scope.intGauge("misses", [this] { return _misses; },
                       sim::MetricText::Hide);
        scope.intGauge("evictions", [this] { return _evictions; },
                       sim::MetricText::Hide);
        scope.intGauge("occupancy",
                       [this] {
                           return static_cast<std::uint64_t>(occupancy());
                       },
                       sim::MetricText::Hide);
    }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint64_t key = 0;
        V value{};
    };

    std::size_t index(std::uint64_t key) const
    {
        return static_cast<std::size_t>(key) & (_slots.size() - 1);
    }
    Slot &slotFor(std::uint64_t key) { return _slots[index(key)]; }

    std::vector<Slot> _slots;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
};

} // namespace dagger::mem

#endif // DAGGER_MEM_DIRECT_MAPPED_CACHE_HH
