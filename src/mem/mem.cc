// Intentionally nearly empty: mem/ is header-only templates; this TU
// exists so dagger_mem is an ordinary static library target.
#include "mem/direct_mapped_cache.hh"
#include "mem/hcc.hh"
#include "mem/llc_model.hh"
