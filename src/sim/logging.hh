/**
 * @file
 * Error / status reporting helpers, modeled on gem5's logging.hh.
 *
 * panic(): an internal invariant was violated (simulator bug) -> abort().
 * fatal(): the user configured something impossible -> exit(1).
 * warn()/inform(): status messages on stderr, never stop the run.
 */

#ifndef DAGGER_SIM_LOGGING_HH
#define DAGGER_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace dagger::sim {

namespace detail {

/** Fold any streamable argument pack into one string. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Global verbosity switch for inform(); warnings always print. */
bool verboseEnabled();
void setVerbose(bool on);

} // namespace detail

/** Enable or disable inform() output (default: disabled for quiet benches). */
inline void
setVerbose(bool on)
{
    detail::setVerbose(on);
}

} // namespace dagger::sim

/** Abort: simulator invariant violated (a bug in this codebase). */
#define dagger_panic(...) \
    ::dagger::sim::detail::panicImpl(__FILE__, __LINE__, \
        ::dagger::sim::detail::format(__VA_ARGS__))

/** Exit(1): impossible user configuration, not a simulator bug. */
#define dagger_fatal(...) \
    ::dagger::sim::detail::fatalImpl(__FILE__, __LINE__, \
        ::dagger::sim::detail::format(__VA_ARGS__))

/** Non-fatal warning on stderr. */
#define dagger_warn(...) \
    ::dagger::sim::detail::warnImpl(::dagger::sim::detail::format(__VA_ARGS__))

/** Informational message on stderr, gated by setVerbose(). */
#define dagger_inform(...) \
    ::dagger::sim::detail::informImpl( \
        ::dagger::sim::detail::format(__VA_ARGS__))

/** panic() unless the condition holds. */
#define dagger_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::dagger::sim::detail::panicImpl(__FILE__, __LINE__, \
                ::dagger::sim::detail::format("assertion '" #cond \
                    "' failed. ", ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // DAGGER_SIM_LOGGING_HH
