/**
 * @file
 * Round barrier for the sharded engine's worker pool.
 *
 * A classic generation-counting barrier: @p parties threads call
 * arriveAndWait(); the last arrival bumps the generation and wakes the
 * rest.  The sharded engine uses two of these per round — a start gate
 * (coordinator publishes the window, workers pick it up) and a done
 * gate (workers publish their window's results, coordinator runs the
 * serial merge phase) — so the mutex/condvar pair also provides the
 * happens-before edges the mailbox hand-offs rely on.
 */

#ifndef DAGGER_SIM_BARRIER_HH
#define DAGGER_SIM_BARRIER_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace dagger::sim {

class RoundBarrier
{
  public:
    explicit RoundBarrier(unsigned parties);

    /** Block until all parties of the current generation arrived. */
    void arriveAndWait();

    unsigned parties() const { return _parties; }

  private:
    std::mutex _mutex;
    std::condition_variable _cv;
    unsigned _parties;
    unsigned _waiting = 0;
    std::uint64_t _generation = 0;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_BARRIER_HH
