/**
 * @file
 * Round barrier for the sharded engine's worker pool.
 *
 * A sense-reversing spin-then-park barrier: @p parties threads call
 * arriveAndWait(); the last arrival flips the phase word and wakes any
 * parked waiters.  Earlier arrivals spin on the phase for a bounded
 * number of iterations — rounds are short, so the flip usually lands
 * while they spin — and fall back to a mutex/condvar park only when it
 * does not.  The phase store/loads are release/acquire, so the barrier
 * provides the same happens-before edges the mailbox hand-offs relied
 * on with the old mutex/condvar implementation.
 *
 * The sharded engine uses two of these per round — a start gate
 * (coordinator publishes the window, workers pick it up) and a done
 * gate (workers publish their window's results, coordinator runs the
 * serial merge phase).
 *
 * spins()/parks() count how arrivals resolved; they depend on host
 * scheduling, never on the simulation, and are exported as host-side
 * observability only (like wall-clock accounting).
 */

#ifndef DAGGER_SIM_BARRIER_HH
#define DAGGER_SIM_BARRIER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace dagger::sim {

class RoundBarrier
{
  public:
    /** Spin iterations before an arrival parks on the condvar. */
    static constexpr unsigned kSpinIters = 4096;

    explicit RoundBarrier(unsigned parties);

    /** Block until all parties of the current generation arrived. */
    void arriveAndWait();

    unsigned parties() const { return _parties; }

    /** Arrivals that observed the phase flip while spinning. */
    std::uint64_t spins() const
    {
        return _spins.load(std::memory_order_relaxed);
    }
    /** Arrivals that gave up spinning and parked on the condvar. */
    std::uint64_t parks() const
    {
        return _parks.load(std::memory_order_relaxed);
    }

  private:
    unsigned _parties;
    std::atomic<unsigned> _waiting{0};
    std::atomic<std::uint64_t> _phase{0};
    std::atomic<std::uint64_t> _spins{0};
    std::atomic<std::uint64_t> _parks{0};
    // Park fallback.  The phase flip happens under _mutex so a waiter
    // that re-checks the predicate under the lock can never miss the
    // notify (classic condvar protocol); spinners never touch it.
    std::mutex _mutex;
    std::condition_variable _cv;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_BARRIER_HH
