#include "sim/event_queue.hh"

#include "sim/check.hh"

namespace dagger::sim {

void
EventQueue::scheduleAt(Tick when, EventFn fn, Priority prio)
{
    dagger_assert(when >= _now,
                  "scheduleAt in the past: when=", when, " now=", _now);
    dagger_assert(fn, "scheduleAt with empty callback");
    // The insertion sequence is the deterministic tie-break key for
    // same-(tick, priority) events; wrap-around would scramble replay
    // order between two otherwise-identical runs.
    DAGGER_INVARIANT(_seq != UINT64_MAX,
                     "event sequence counter exhausted; tie-break keys "
                     "would wrap and break deterministic ordering");
    _heap.push(Event{when, static_cast<std::uint32_t>(prio), _seq++,
                     std::move(fn)});
}

bool
EventQueue::runOne()
{
    if (_heap.empty())
        return false;
    // priority_queue::top() is const only so callers can't disturb the
    // heap ordering; this entry is popped on the next line, so moving
    // the closure (and key fields) out instead of deep-copying the
    // whole Event is safe, and the local copy of the closure still
    // lets the callback schedule new events (mutating the heap).
    Event &top = const_cast<Event &>(_heap.top());
    const Tick when = top.when;
    EventFn fn = std::move(top.fn);
    _heap.pop();
    DAGGER_INVARIANT(when >= _now,
                     "simulated time moved backwards: event at ", when,
                     " popped with now=", _now);
    _now = when;
    ++_executed;
    fn();
    return true;
}

void
EventQueue::runUntil(Tick when)
{
    while (!_heap.empty() && _heap.top().when <= when)
        runOne();
    if (_now < when)
        _now = when;
}

void
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (runOne()) {
        if (++n >= max_events)
            dagger_panic("runAll exceeded ", max_events,
                         " events; likely a self-rescheduling loop");
    }
}

} // namespace dagger::sim
