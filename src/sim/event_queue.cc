#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/check.hh"

// Cache-warming hint; correctness never depends on it.
#if defined(__GNUC__)
#define DAGGER_PREFETCH_W(addr) __builtin_prefetch((addr), 1)
#else
#define DAGGER_PREFETCH_W(addr) ((void)0)
#endif

namespace dagger::sim {

EventQueue::~EventQueue()
{
    // Slots are a union of {closure, free-list link}, so block teardown
    // cannot run closure destructors itself: explicitly destroy the
    // closure of every still-pending event (free slots hold no closure).
    for (auto &bucket : _buckets)
        for (HeapEntry &entry : bucket)
            entry.ev->fn.~EventFn();
    for (auto &frame : _frames)
        for (HeapEntry &entry : frame)
            entry.ev->fn.~EventFn();
    for (HeapEntry &entry : _far)
        entry.ev->fn.~EventFn();
}

EventQueue::Event *
EventQueue::allocEvent()
{
    Event *ev;
    if (_freeList != nullptr) {
        ev = _freeList;
        _freeList = ev->nextFree;
        ++_stats.poolHits;
    } else {
        if (_blocks.empty() || _blockUsed == kPoolBlockEvents) {
            _blocks.push_back(std::make_unique<Event[]>(kPoolBlockEvents));
            _blockUsed = 0;
            ++_stats.poolBlocks;
        }
        ++_stats.poolMisses;
        ev = &_blocks.back()[_blockUsed++];
    }
    return ev;
}

void
EventQueue::releaseEvent(Event *ev) noexcept
{
    // The closure was moved out (and is therefore empty) before release;
    // end its lifetime and activate the free-list link member.
    ev->fn.~EventFn();
    ev->nextFree = _freeList;
    _freeList = ev;
}

void
EventQueue::scheduleAt(Tick when, EventFn &&fn, Priority prio)
{
    dagger_assert(when >= _now,
                  "scheduleAt in the past: when=", when, " now=", _now);
    dagger_assert(fn, "scheduleAt with empty callback");
    if (when >= _spillHorizon) {
        // Sharded execution: admissions beyond the current window are
        // handed back to the owning shard for stamped re-admission at
        // the next barrier (mailbox.hh).
        _spillFn(_spillCtx, when, std::move(fn), prio);
        return;
    }
    // A current-frame admission lands in a near-random bucket of the
    // wheel; start that header's line fill while the pool allocation
    // below proceeds.
    const std::uint64_t frame = when >> kFrameShift;
    if (frame == _curFrame)
        DAGGER_PREFETCH_W(
            &_buckets[(when >> kBucketBits) & (kWheelBuckets - 1)]);
    // The insertion sequence is the deterministic tie-break key for
    // same-(tick, priority) events; exhausting the packed field would
    // scramble replay order between two otherwise-identical runs.
    DAGGER_INVARIANT(_seq < (std::uint64_t{1} << kSeqBits),
                     "event sequence counter exhausted; tie-break keys "
                     "would wrap and break deterministic ordering");
    DAGGER_DCHECK(static_cast<std::uint32_t>(prio) <= 0xFFFF,
                  "priority does not fit the packed tie-break key");
    Event *ev = allocEvent();
    // Switch the union's active member from free-list link to closure,
    // moving the callable straight into the pooled slot.  Placement
    // construction; no ownership created.
    ::new (&ev->fn) EventFn(std::move(fn)); // dagger-lint: allow(no-raw-new-in-sim)
    const HeapEntry entry{
        when,
        (static_cast<std::uint64_t>(prio) << kSeqBits) | _seq++,
        ev,
    };

    // Frame index alone decides the level.  refill() guarantees that
    // _curFrame never runs ahead of frame(_now), and when >= _now, so
    // the admitted frame is never below the current one.
    DAGGER_DCHECK(frame >= _curFrame,
                  "admission into a frame below the current one");
    if (frame == _curFrame) {
        admitWheel(entry);
        ++_stats.wheelAdmits;
    } else if (frame - _curFrame < kFrames) {
        // Parked unsorted until the frame cascades.  A future frame f
        // maps to slot f & (kFrames-1); live parked frames all lie in
        // (_curFrame, _curFrame + kFrames), so distinct frames map to
        // distinct slots.
        _frames[frame & (kFrames - 1)].push_back(entry);
        ++_frameCount;
        ++_stats.frameAdmits;
    } else {
        _far.push_back(entry);
        std::push_heap(_far.begin(), _far.end(), LaterEntry{});
        ++_stats.heapAdmits;
    }
    _stats.maxPending = std::max<std::uint64_t>(_stats.maxPending, pending());
}

void
EventQueue::admitWheel(const HeapEntry &entry)
{
    // Every wheel event belongs to _curFrame, so absolute buckets span
    // exactly [frame * kWheelBuckets, (frame + 1) * kWheelBuckets) and
    // distinct buckets map to distinct slots: the forward scan can
    // attribute a slot's contents to exactly one bucket.
    //
    // Buckets are kept *unsorted* on admission and sorted once, when
    // the scan first drains them (peekWheel): appending beats a
    // push_heap sift per event, and the one sort costs the same
    // O(log k) per event with a much smaller constant.  The only
    // exception is an admission into the bucket the scan has already
    // sorted (a sub-bucket delay, rare): that one inserts in place to
    // keep the sorted suffix valid.
    const std::uint64_t absBucket = entry.when >> kBucketBits;
    auto &bucket = _buckets[absBucket & (kWheelBuckets - 1)];
    if (absBucket == _sortedAbs && !bucket.empty())
        bucket.insert(std::upper_bound(bucket.begin(), bucket.end(),
                                       entry, LaterEntry{}),
                      entry);
    else
        bucket.push_back(entry);
    if (++_wheelCount == 1 || absBucket < _scanAbs)
        _scanAbs = absBucket;
}

bool
EventQueue::refill(Tick limit)
{
    for (;;) {
        if (_wheelCount != 0)
            return true;
        if (_frameCount == 0 && _far.empty())
            return false;

        // Earliest frame holding events: the parked frames (all within
        // kFrames of _curFrame) and the far heap's minimum compete.
        std::uint64_t target = UINT64_MAX;
        if (_frameCount != 0) {
            for (std::uint64_t f = _curFrame + 1; f < _curFrame + kFrames;
                 ++f) {
                if (!_frames[f & (kFrames - 1)].empty()) {
                    target = f;
                    break;
                }
            }
            DAGGER_INVARIANT(target != UINT64_MAX,
                             "frame count ", _frameCount,
                             " but no parked frame found");
        }
        if (!_far.empty())
            target = std::min(target, _far.front().when >> kFrameShift);

        // Never make a frame current before the caller's window reaches
        // it: a runUntil() that stops short must leave the frame parked
        // so later admissions between now and the frame start still see
        // frame > _curFrame.  This keeps _curFrame <= frame(_now) at
        // every point where user code can schedule.
        if ((target << kFrameShift) > limit)
            return false;

        _curFrame = target;
        auto &frame = _frames[target & (kFrames - 1)];
        _frameCount -= frame.size();
        for (const HeapEntry &entry : frame)
            admitWheel(entry);
        frame.clear();
        // Far-heap events of the now-current frame migrate down too.
        while (!_far.empty() &&
               (_far.front().when >> kFrameShift) == target) {
            admitWheel(_far.front());
            std::pop_heap(_far.begin(), _far.end(), LaterEntry{});
            _far.pop_back();
        }
    }
}

std::vector<EventQueue::HeapEntry> *
EventQueue::peekWheel()
{
    if (_wheelCount == 0)
        return nullptr;
    std::uint64_t abs = std::max(_scanAbs, _now >> kBucketBits);
    [[maybe_unused]] const std::uint64_t start = abs;
    for (;;) {
        auto &bucket = _buckets[abs & (kWheelBuckets - 1)];
        if (!bucket.empty()) {
            if (abs != _sortedAbs) {
                // First touch by the scan: sort descending so pops are
                // pop_back and the earliest event sits at back().
                std::sort(bucket.begin(), bucket.end(), LaterEntry{});
                _sortedAbs = abs;
            }
            _scanAbs = abs;
            // This bucket's back is the global minimum; warm its
            // pooled slot while the limit check runs.
            DAGGER_PREFETCH_W(bucket.back().ev);
            return &bucket;
        }
        ++abs;
        DAGGER_INVARIANT(abs - start <= kWheelBuckets,
                         "timing-wheel scan overran the horizon with ",
                         _wheelCount, " events pending");
    }
}

bool
EventQueue::stepBefore(Tick limit, std::uint64_t tie_bound)
{
    if (_wheelCount == 0 && !refill(limit))
        return false;
    std::vector<HeapEntry> *bucket = peekWheel();
    // Every parked/far event is in a strictly later frame than every
    // wheel event, so the wheel minimum is the global minimum: no
    // cross-level merge on the pop path.
    const HeapEntry &top = bucket->back();
    if (top.when > limit || (top.when == limit && top.tie >= tie_bound))
        return false;
    const Tick when = top.when;
    const std::uint64_t tie = top.tie;
    Event *ev = top.ev;
    // The slot was written when the event was scheduled — typically
    // thousands of events ago, so this read misses cache.  Start the
    // line fill now so the bookkeeping below hides part of its latency.
    DAGGER_PREFETCH_W(ev);

    bucket->pop_back();
    --_wheelCount;

    DAGGER_INVARIANT(when >= _now,
                     "simulated time moved backwards: event at ", when,
                     " popped with now=", _now);
    _now = when;
    ++_executed;
    _curPrio = static_cast<std::uint32_t>(tie >> kSeqBits);
    // Release the slot before invoking so a callback that immediately
    // reschedules reuses it (the common self-clocking pattern hits the
    // free list every time).
    EventFn fn = std::move(ev->fn);
    releaseEvent(ev);
    fn();
    _curPrio = 0;
    // Warm the likely candidate of the NEXT pop: the callback above
    // ran for long enough that starting this line fill now hides most
    // of the slot-read latency of the following step.  _scanAbs may sit
    // on a drained bucket (the scan will advance past it next step);
    // this is only a hint, so checking that one slot is enough.
    {
        const auto &next = _buckets[_scanAbs & (kWheelBuckets - 1)];
        if (!next.empty())
            DAGGER_PREFETCH_W(next.back().ev);
    }
    return true;
}

bool
EventQueue::runOne()
{
    return step(UINT64_MAX);
}

void
EventQueue::runUntil(Tick when)
{
    while (step(when)) {
    }
    if (_now < when)
        _now = when;
}

void
EventQueue::runWhileBefore(Tick when, std::uint32_t prio)
{
    dagger_assert(when >= _now, "runWhileBefore into the past: when=",
                  when, " now=", _now);
    // seq 0 makes the packed bound the infimum of (when, prio, *):
    // events at earlier ticks and same-tick events of stricter
    // priority run; everything at (when, prio) or later stays.
    const std::uint64_t bound = static_cast<std::uint64_t>(prio)
        << kSeqBits;
    while (stepBefore(when, bound)) {
    }
    if (_now < when)
        _now = when;
}

Tick
EventQueue::nextEventLowerBound() const
{
    if (_wheelCount != 0) {
        // The wheel minimum is the global minimum; scan forward from
        // the last scan position (no nonempty bucket lies below it).
        std::uint64_t abs = std::max(_scanAbs, _now >> kBucketBits);
        [[maybe_unused]] const std::uint64_t start = abs;
        for (;; ++abs) {
            if (!_buckets[abs & (kWheelBuckets - 1)].empty())
                return std::max<Tick>(abs << kBucketBits, _now);
            DAGGER_INVARIANT(abs - start <= kWheelBuckets,
                             "lower-bound scan overran the horizon");
        }
    }
    Tick lb = UINT64_MAX;
    if (_frameCount != 0) {
        for (std::uint64_t f = _curFrame + 1; f < _curFrame + kFrames;
             ++f) {
            if (!_frames[f & (kFrames - 1)].empty()) {
                lb = static_cast<Tick>(f) << kFrameShift;
                break;
            }
        }
    }
    if (!_far.empty())
        lb = std::min(lb, _far.front().when);
    return lb == UINT64_MAX ? lb : std::max(lb, _now);
}

void
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (runOne()) {
        if (++n >= max_events)
            dagger_panic("runAll exceeded ", max_events,
                         " events; likely a self-rescheduling loop");
    }
}

} // namespace dagger::sim
