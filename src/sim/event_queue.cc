#include "sim/event_queue.hh"

#include "sim/check.hh"

namespace dagger::sim {

void
EventQueue::scheduleAt(Tick when, EventFn fn, Priority prio)
{
    dagger_assert(when >= _now,
                  "scheduleAt in the past: when=", when, " now=", _now);
    dagger_assert(fn, "scheduleAt with empty callback");
    // The insertion sequence is the deterministic tie-break key for
    // same-(tick, priority) events; wrap-around would scramble replay
    // order between two otherwise-identical runs.
    DAGGER_INVARIANT(_seq != UINT64_MAX,
                     "event sequence counter exhausted; tie-break keys "
                     "would wrap and break deterministic ordering");
    _heap.push(Event{when, static_cast<std::uint32_t>(prio), _seq++,
                     std::move(fn)});
}

bool
EventQueue::runOne()
{
    if (_heap.empty())
        return false;
    // priority_queue::top() is const; the event is copied out so the
    // callback may schedule new events (mutating the heap) safely.
    Event ev = _heap.top();
    _heap.pop();
    DAGGER_INVARIANT(ev.when >= _now,
                     "simulated time moved backwards: event at ", ev.when,
                     " popped with now=", _now);
    _now = ev.when;
    ++_executed;
    ev.fn();
    return true;
}

void
EventQueue::runUntil(Tick when)
{
    while (!_heap.empty() && _heap.top().when <= when)
        runOne();
    if (_now < when)
        _now = when;
}

void
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (runOne()) {
        if (++n >= max_events)
            dagger_panic("runAll exceeded ", max_events,
                         " events; likely a self-rescheduling loop");
    }
}

} // namespace dagger::sim
