#include "sim/ownership.hh"

#ifdef DAGGER_OWNERSHIP_AUDIT

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace dagger::sim {

namespace audit {

namespace {
thread_local ExecContext t_ctx;
} // namespace

const ExecContext &
current()
{
    return t_ctx;
}

} // namespace audit

void
OwnershipGuard::check(const char *what) const
{
    const audit::ExecContext &ctx = audit::current();
    // Unbound guards (single-queue systems), quiescent threads, and
    // objects of a different engine instance (SweepRunner scenarios run
    // one engine per thread) are all out of scope.
    if (!_engine || !ctx.active() || ctx.engine != _engine)
        return;
    if (ctx.shard == _shard)
        return;
    dagger_panic("ownership audit: ", what, " owned by shard ", _shard,
                 " touched from shard ", ctx.shard, " during the ",
                 ctx.parallel ? "parallel" : "serial", " phase at tick ",
                 ctx.queue ? ctx.queue->now() : 0,
                 " (cross-domain access must go through postCross/"
                 "postApply; see docs/ANALYSIS.md)");
}

ScopedExecContext::ScopedExecContext(const void *engine, unsigned shard,
                                     bool parallel, const EventQueue *queue)
    : _prev(audit::t_ctx)
{
    audit::t_ctx =
        audit::ExecContext{engine, shard, parallel, queue};
}

ScopedExecContext::~ScopedExecContext()
{
    audit::t_ctx = _prev;
}

} // namespace dagger::sim

#endif // DAGGER_OWNERSHIP_AUDIT
