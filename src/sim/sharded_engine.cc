#include "sim/sharded_engine.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/check.hh"
#include "sim/ownership.hh"

namespace dagger::sim {

namespace {

/** Worker count: DAGGER_SHARD_THREADS wins; otherwise one worker per
 *  parallel shard, capped by the hardware, and none on a single-CPU
 *  host (the coordinator multiplexes — identical results either way). */
unsigned
workerCount(unsigned shards)
{
    const unsigned parallel = shards - 1;
    unsigned want = 0;
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw >= 2)
        want = std::min(parallel, hw);
    if (const char *env = std::getenv("DAGGER_SHARD_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env)
            want = static_cast<unsigned>(
                std::min<unsigned long>(v, parallel));
    }
    return want;
}

} // namespace

ShardedEngine::ShardedEngine(EventQueue &q0, unsigned shards,
                             Tick lookahead)
    : _nshards(shards), _lookahead(lookahead), _q0(q0)
{
    dagger_assert(shards >= 2,
                  "a sharded engine needs at least one parallel shard");
    dagger_assert(lookahead >= 1, "lookahead must be positive");

    _shard.reserve(shards);
    _shard.push_back(std::make_unique<Shard>(_q0, 0));
    _ownedQueues.reserve(shards - 1);
    for (unsigned s = 1; s < shards; ++s) {
        _ownedQueues.push_back(std::make_unique<EventQueue>());
        _shard.push_back(
            std::make_unique<Shard>(*_ownedQueues.back(), s));
    }

    _cross.resize(static_cast<std::size_t>(shards) * shards);
    for (auto &box : _cross)
        box = std::make_unique<SpscMailbox<CrossEvent>>();
    _apply.resize(shards);
    for (auto &box : _apply)
        box = std::make_unique<SpscMailbox<CrossEvent>>();
    _busy.resize(shards);

    _nworkers = workerCount(shards);
    if (_nworkers > 0) {
        _startGate = std::make_unique<RoundBarrier>(_nworkers + 1);
        _doneGate = std::make_unique<RoundBarrier>(_nworkers + 1);
        _workers.reserve(_nworkers);
        for (unsigned w = 0; w < _nworkers; ++w)
            _workers.emplace_back([this, w] { workerLoop(w); });
    }
}

ShardedEngine::~ShardedEngine()
{
    if (!_workers.empty()) {
        _stop = true;
        _startGate->arriveAndWait();
        for (auto &worker : _workers)
            worker.join();
    }
}

void
ShardedEngine::workerLoop(unsigned w)
{
    const unsigned stride = _nworkers;
    for (;;) {
        _startGate->arriveAndWait();
        if (_stop)
            return;
        // Fixed shard->worker assignment: the SPSC mailbox consumer
        // for a given shard is the same thread on every round.
        for (unsigned s = 1 + w; s < _nshards; s += stride)
            runShardWindow(s);
        _doneGate->arriveAndWait();
    }
}

void
ShardedEngine::runShardWindow(unsigned s)
{
    Shard &sh = *_shard[s];
    // Publish "shard s is executing its parallel window on this
    // thread" for the ownership audit (no-op unless built with
    // DAGGER_OWNERSHIP_AUDIT).
    ScopedExecContext auditCtx(this, s, /*parallel=*/true, &sh.queue());
    const std::uint64_t t0 = _clock ? _clock() : 0;
    for (unsigned from = 0; from < _nshards; ++from) {
        if (from == s)
            continue;
        inbox(from, s).drain(
            [&sh](CrossEvent &&ev) { sh.takeCross(std::move(ev)); });
    }
    sh.beginWindow(_roundEnd);
    sh.admit(_roundEnd);
    sh.queue().runUntil(_roundEnd - 1);
    sh.endWindow();
    if (_clock)
        _busy[s].ns += _clock() - t0;
}

void
ShardedEngine::serialPhase()
{
    Shard &sh0 = *_shard[0];
    ScopedExecContext auditCtx(this, 0, /*parallel=*/false, &_q0);
    const std::uint64_t t0 = _clock ? _clock() : 0;

    for (unsigned from = 1; from < _nshards; ++from) {
        inbox(from, 0).drain(
            [&sh0](CrossEvent &&ev) { sh0.takeCross(std::move(ev)); });
    }
    sh0.beginWindow(_roundEnd);
    sh0.admit(_roundEnd);

    _applyBatch.clear();
    for (unsigned from = 1; from < _nshards; ++from) {
        _apply[from]->drain([this](CrossEvent &&ev) {
            _applyBatch.push_back(std::move(ev));
        });
    }
    if (!_applyBatch.empty()) {
        std::sort(_applyBatch.begin(), _applyBatch.end(),
                  [](const CrossEvent &a, const CrossEvent &b) {
                      return stampBefore(a.stamp, b.stamp);
                  });
        for (auto &apply : _applyBatch) {
            // Replay the apply at its exact sequential position: run
            // every shard-0 event strictly ordered before the caller's
            // (tick, priority), then invoke with the clock sitting at
            // the caller's tick and stamps inheriting its priority.
            _q0.runWhileBefore(apply.stamp.birthTick,
                               apply.stamp.birthPrio);
            sh0.setPrioOverride(apply.stamp.birthPrio);
            EventFn fn = std::move(apply.fn);
            fn();
            sh0.clearPrioOverride();
            ++_appliesRun;
        }
        _applyBatch.clear();
    }

    _q0.runUntil(_roundEnd - 1);
    sh0.endWindow();
    if (_clock)
        _busy[0].ns += _clock() - t0;
}

void
ShardedEngine::round(Tick start, Tick end)
{
    _roundStart = start;
    _roundEnd = end;
    const std::uint64_t t0 = _clock ? _clock() : 0;
    if (_workers.empty()) {
        for (unsigned s = 1; s < _nshards; ++s)
            runShardWindow(s);
    } else {
        _startGate->arriveAndWait();
        _doneGate->arriveAndWait();
    }
    const std::uint64_t t1 = _clock ? _clock() : 0;
    _parallelNs += t1 - t0;
    serialPhase();
    if (_clock)
        _serialNs += _clock() - t1;
    ++_rounds;
}

Tick
ShardedEngine::nextTickLowerBound() const
{
    Tick lb = UINT64_MAX;
    for (const auto &shard : _shard) {
        lb = std::min(lb, shard->queue().nextEventLowerBound());
        lb = std::min(lb, shard->pendingMin());
        lb = std::min(lb, shard->postedMin());
    }
    return lb;
}

void
ShardedEngine::runUntil(Tick target)
{
    dagger_assert(target >= _now, "ShardedEngine::runUntil into the past");
    dagger_assert(target < UINT64_MAX, "runUntil target overflows");
    Tick t = _now;
    const Tick bound = target + 1; // exclusive
    while (t < bound) {
        Tick end = t + _lookahead;
        if (end > bound || end < t)
            end = bound;
        round(t, end);
        t = end;
        if (t >= bound)
            break;
        // Idle skip-ahead: jump empty windows to the earliest pending
        // tick anywhere (queues, unadmitted pending lists, undrained
        // mailboxes — the latter bounded by each poster's postedMin).
        const Tick lb = nextTickLowerBound();
        if (lb > t) {
            const Tick skip = std::min(lb, bound - 1);
            if (skip > t) {
                t = skip;
                ++_skips;
            }
        }
    }
    _now = target;
}

void
ShardedEngine::postCross(unsigned from, unsigned to, TickDelta delay,
                         EventFn &&fn, Priority prio)
{
    dagger_assert(from < _nshards && to < _nshards, "bad shard id");
    dagger_assert(from != to,
                  "same-shard post: schedule on the queue instead");
    Shard &src = *_shard[from];
    const Tick when = src.queue().now() + delay;
    dagger_assert(when >= _roundEnd,
                  "cross-shard post lands inside the current window: "
                  "delay is below the engine lookahead");
    src.notePosted(when);
    inbox(from, to).push(
        CrossEvent{when, prio, src.nextStamp(), std::move(fn)});
}

void
ShardedEngine::postApply(unsigned from, EventFn &&fn)
{
    dagger_assert(from >= 1 && from < _nshards,
                  "applies come from parallel shards into shard 0");
    Shard &src = *_shard[from];
    src.noteApplySent();
    _apply[from]->push(CrossEvent{src.queue().now(), Priority::Hardware,
                                  src.nextStamp(), std::move(fn)});
}

std::uint64_t
ShardedEngine::executed() const
{
    std::uint64_t total = 0;
    for (const auto &shard : _shard)
        total += shard->queue().executed();
    return total;
}

EventQueue::EngineStats
ShardedEngine::aggregateStats() const
{
    EventQueue::EngineStats agg;
    for (const auto &shard : _shard) {
        const auto &st = shard->queue().stats();
        agg.poolHits += st.poolHits;
        agg.poolMisses += st.poolMisses;
        agg.poolBlocks += st.poolBlocks;
        agg.wheelAdmits += st.wheelAdmits;
        agg.frameAdmits += st.frameAdmits;
        agg.heapAdmits += st.heapAdmits;
        agg.maxPending = std::max(agg.maxPending, st.maxPending);
    }
    return agg;
}

std::uint64_t
ShardedEngine::mailboxHighWater(unsigned s) const
{
    std::uint64_t high = 0;
    for (unsigned from = 0; from < _nshards; ++from) {
        if (from != s)
            high = std::max(high, inbox(from, s).highWater());
    }
    if (s == 0) {
        for (unsigned from = 1; from < _nshards; ++from)
            high = std::max(high, _apply[from]->highWater());
    }
    return high;
}

std::uint64_t
ShardedEngine::mailboxOverflowed(unsigned s) const
{
    std::uint64_t total = 0;
    for (unsigned from = 0; from < _nshards; ++from) {
        if (from != s)
            total += inbox(from, s).overflowed();
    }
    if (s == 0) {
        for (unsigned from = 1; from < _nshards; ++from)
            total += _apply[from]->overflowed();
    }
    return total;
}

} // namespace dagger::sim
