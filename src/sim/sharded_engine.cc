#include "sim/sharded_engine.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/check.hh"
#include "sim/ownership.hh"

namespace dagger::sim {

namespace {

/** Worker count: DAGGER_SHARD_THREADS wins; otherwise one worker per
 *  parallel shard, capped by the hardware, and none on a single-CPU
 *  host (the coordinator multiplexes — identical results either way). */
unsigned
workerCount(unsigned shards)
{
    const unsigned parallel = shards - 1;
    unsigned want = 0;
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw >= 2)
        want = std::min(parallel, hw);
    if (const char *env = std::getenv("DAGGER_SHARD_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env)
            want = static_cast<unsigned>(
                std::min<unsigned long>(v, parallel));
    }
    return want;
}

} // namespace

ShardedEngine::ShardedEngine(EventQueue &q0, unsigned shards,
                             Tick lookahead)
    : _nshards(shards), _lookahead(lookahead), _q0(q0)
{
    dagger_assert(shards >= 2,
                  "a sharded engine needs at least one parallel shard");
    dagger_assert(lookahead >= 1, "lookahead must be positive");

    _shard.reserve(shards);
    _shard.push_back(std::make_unique<Shard>(_q0, 0, shards));
    _ownedQueues.reserve(shards - 1);
    for (unsigned s = 1; s < shards; ++s) {
        _ownedQueues.push_back(std::make_unique<EventQueue>());
        _shard.push_back(
            std::make_unique<Shard>(*_ownedQueues.back(), s, shards));
    }

    _cross.resize(static_cast<std::size_t>(shards) * shards);
    for (auto &box : _cross)
        box = std::make_unique<SpscMailbox<CrossEvent>>();
    _apply.resize(shards);
    for (auto &box : _apply)
        box = std::make_unique<SpscMailbox<CrossEvent>>();
    _busy.resize(shards);

    _nworkers = workerCount(shards);
    if (_nworkers > 0) {
        _startGate = std::make_unique<RoundBarrier>(_nworkers + 1);
        _doneGate = std::make_unique<RoundBarrier>(_nworkers + 1);
        _workers.reserve(_nworkers);
        for (unsigned w = 0; w < _nworkers; ++w)
            _workers.emplace_back([this, w] { workerLoop(w); });
    }
}

ShardedEngine::~ShardedEngine()
{
    if (!_workers.empty()) {
        _stop = true;
        _startGate->arriveAndWait();
        for (auto &worker : _workers)
            worker.join();
    }
}

void
ShardedEngine::workerLoop(unsigned w)
{
    const unsigned stride = _nworkers;
    for (;;) {
        _startGate->arriveAndWait();
        if (_stop)
            return;
        // Fixed shard->worker assignment: the SPSC mailbox consumer
        // for a given shard is the same thread on every round.
        for (unsigned s = 1 + w; s < _nshards; s += stride)
            runShardWindow(s);
        _doneGate->arriveAndWait();
    }
}

void
ShardedEngine::flushShard(unsigned s)
{
    Shard &sh = *_shard[s];
    if (!sh.hasStaged())
        return;
    for (unsigned to = 0; to < _nshards; ++to) {
        if (to != s)
            sh.flushCrossInto(to, inbox(s, to));
    }
    if (s >= 1)
        sh.flushAppliesInto(*_apply[s]);
    sh.clearStagedFlag();
}

void
ShardedEngine::runShardWindow(unsigned s)
{
    Shard &sh = *_shard[s];
    // Publish "shard s is executing its parallel window on this
    // thread" for the ownership audit (no-op unless built with
    // DAGGER_OWNERSHIP_AUDIT).
    ScopedExecContext auditCtx(this, s, /*parallel=*/true, &sh.queue());
    const std::uint64_t t0 = _clock ? _clock() : 0;
    for (unsigned from = 0; from < _nshards; ++from) {
        if (from == s)
            continue;
        inbox(from, s).drain(
            [&sh](CrossEvent &&ev) { sh.takeCross(std::move(ev)); });
    }
    sh.beginWindow(_roundEnd);
    sh.admit(_roundStart, _roundEnd);
    sh.queue().runUntil(_roundEnd - 1);
    sh.endWindow();
    flushShard(s);
    if (_clock)
        _busy[s].ns += _clock() - t0;
}

void
ShardedEngine::serialPhase()
{
    Shard &sh0 = *_shard[0];
    ScopedExecContext auditCtx(this, 0, /*parallel=*/false, &_q0);
    const std::uint64_t t0 = _clock ? _clock() : 0;

    for (unsigned from = 1; from < _nshards; ++from) {
        inbox(from, 0).drain(
            [&sh0](CrossEvent &&ev) { sh0.takeCross(std::move(ev)); });
    }
    sh0.beginWindow(_roundEnd);
    sh0.admit(_roundStart, _roundEnd);

    _applyBatch.clear();
    for (unsigned from = 1; from < _nshards; ++from) {
        _apply[from]->drain([this](CrossEvent &&ev) {
            _applyBatch.push_back(std::move(ev));
        });
    }
    if (!_applyBatch.empty()) {
        std::sort(_applyBatch.begin(), _applyBatch.end(),
                  [](const CrossEvent &a, const CrossEvent &b) {
                      return stampBefore(a.stamp, b.stamp);
                  });
        for (auto &apply : _applyBatch) {
            // Replay the apply at its exact sequential position: run
            // every shard-0 event strictly ordered before the caller's
            // (tick, priority), then invoke with the clock sitting at
            // the caller's tick and stamps inheriting its priority.
            _q0.runWhileBefore(apply.stamp.birthTick,
                               apply.stamp.birthPrio);
            sh0.setPrioOverride(apply.stamp.birthPrio);
            EventFn fn = std::move(apply.fn);
            fn();
            sh0.clearPrioOverride();
            ++_appliesRun;
        }
        _applyBatch.clear();
    }

    _q0.runUntil(_roundEnd - 1);
    sh0.endWindow();
    flushShard(0);
    if (_clock)
        _busy[0].ns += _clock() - t0;
}

bool
ShardedEngine::canElideSerial(Tick end) const
{
    // Everything read here is post-barrier state: the parallel phase
    // finished, so per-shard counters are visible and stable.  All of
    // it is deterministic, so elision decisions are identical at any
    // worker count.
    std::uint64_t appliesSent = 0;
    std::uint64_t flushedTo0 = 0;
    for (unsigned s = 1; s < _nshards; ++s) {
        const ShardStats &st = _shard[s]->stats();
        appliesSent += st.appliesSent;
        flushedTo0 += st.flushedTo0;
    }
    if (appliesSent != _appliesRun)
        return false; // queued applies need the serial phase
    if (flushedTo0 != _shard[0]->stats().crossRecvd)
        return false; // undrained shard-0 inbox items
    if (_shard[0]->pendingMin() < end)
        return false;
    return _q0.nextEventLowerBound() >= end;
}

void
ShardedEngine::round(Tick start, Tick end)
{
    _roundStart = start;
    _roundEnd = end;
    const std::uint64_t t0 = _clock ? _clock() : 0;
    if (_workers.empty()) {
        for (unsigned s = 1; s < _nshards; ++s)
            runShardWindow(s);
    } else {
        _startGate->arriveAndWait();
        _doneGate->arriveAndWait();
    }
    const std::uint64_t t1 = _clock ? _clock() : 0;
    _parallelNs += t1 - t0;
    if (canElideSerial(end)) {
        ++_serialElided;
        // Shard 0's last flush has been drained by every receiver (the
        // parallel phase drains all inboxes), so its posted minimum is
        // covered by receiver pending heaps; reset it here since the
        // skipped window would have.
        _shard[0]->resetPostedMin();
    } else {
        serialPhase();
    }
    if (_clock)
        _serialNs += _clock() - t1;
    ++_rounds;
    const Tick width = end - start;
    _windowTicksSum += width;
    if (width > _windowTicksMax)
        _windowTicksMax = width;
}

Tick
ShardedEngine::soloRun(unsigned s, Tick t, Tick bound)
{
    Shard &sh = *_shard[s];
    ScopedExecContext auditCtx(this, s, /*parallel=*/s != 0,
                               &sh.queue());
    const std::uint64_t t0 = _clock ? _clock() : 0;
    ++_soloRuns;
    sh.noteWindowRun();
    sh.resetPostedMin();
    // In-flight hand-offs are zero (solo precondition), so the inboxes
    // are empty; drain anyway — it is two loads per box — and admit
    // the whole pending heap: with every other shard idle there is
    // nothing to merge against, so direct insertion in stamp order
    // now, with no spill horizon during the run, reproduces the
    // sequential schedule exactly.
    for (unsigned from = 0; from < _nshards; ++from) {
        if (from != s) {
            inbox(from, s).drain(
                [&sh](CrossEvent &&ev) { sh.takeCross(std::move(ev)); });
        }
    }
    sh.admit(t, UINT64_MAX);
    Tick c = t;
    while (c < bound && !sh.hasStaged()) {
        const Tick lb = sh.queue().nextEventLowerBound();
        if (lb == UINT64_MAX) {
            c = bound; // drained with nothing staged: nothing anywhere
            break;
        }
        // One lookahead-wide chunk starting at the next event: any
        // cross/apply staged inside it lands at or after the chunk
        // end, so exiting at a chunk boundary is a safe commit point
        // for the receivers' next window.
        const Tick base = std::max(c, lb);
        Tick c2 = base + _lookahead;
        if (c2 > bound || c2 < base)
            c2 = bound;
        _roundStart = c;
        _roundEnd = c2; // keeps the postCross lookahead assert exact
        sh.queue().runUntil(c2 - 1);
        ++_soloChunks;
        c = c2;
    }
    flushShard(s);
    const std::uint64_t dt = _clock ? _clock() - t0 : 0;
    _busy[s].ns += dt;
    if (s == 0)
        _serialNs += dt;
    else
        _parallelNs += dt;
    if (s != 0)
        soloApplyEpilogue(c);
    return c;
}

void
ShardedEngine::soloApplyEpilogue(Tick commit)
{
    // Applies staged during a solo stretch were born before the commit
    // point, so deferring them to the next round's serial phase would
    // replay shard-0 work below that round's window start — and its
    // cross-posts could land inside the window.  Run them now instead,
    // with the solo commit as the window end: every apply (and thus
    // every shard-0 event its cascade schedules) was born at or after
    // the last chunk's base, so outbound posts land at or after
    // base + lookahead = commit, exactly the round invariant.
    std::uint64_t appliesSent = 0;
    for (unsigned s = 1; s < _nshards; ++s)
        appliesSent += _shard[s]->stats().appliesSent;
    if (appliesSent == _appliesRun)
        return;
    Shard &sh0 = *_shard[0];
    ScopedExecContext auditCtx(this, 0, /*parallel=*/false, &_q0);
    const std::uint64_t t0 = _clock ? _clock() : 0;
    _roundEnd = commit;
    sh0.resetPostedMin();
    _applyBatch.clear();
    for (unsigned from = 1; from < _nshards; ++from) {
        _apply[from]->drain([this](CrossEvent &&ev) {
            _applyBatch.push_back(std::move(ev));
        });
    }
    std::sort(_applyBatch.begin(), _applyBatch.end(),
              [](const CrossEvent &a, const CrossEvent &b) {
                  return stampBefore(a.stamp, b.stamp);
              });
    for (auto &apply : _applyBatch) {
        _q0.runWhileBefore(apply.stamp.birthTick, apply.stamp.birthPrio);
        sh0.setPrioOverride(apply.stamp.birthPrio);
        EventFn fn = std::move(apply.fn);
        fn();
        sh0.clearPrioOverride();
        ++_appliesRun;
    }
    _applyBatch.clear();
    _q0.runUntil(commit - 1);
    flushShard(0);
    if (_clock) {
        const std::uint64_t dt = _clock() - t0;
        _busy[0].ns += dt;
        _serialNs += dt;
    }
}

void
ShardedEngine::runUntil(Tick target)
{
    dagger_assert(target >= _now, "ShardedEngine::runUntil into the past");
    dagger_assert(target < UINT64_MAX, "runUntil target overflows");
    Tick t = _now;
    const Tick bound = target + 1; // exclusive
    while (t < bound) {
        // One pass over the shards: global next-tick lower bound
        // (queues, unadmitted pending heaps, staged/in-flight
        // hand-offs via postedMin) plus how many shards hold work.
        Tick lb = UINT64_MAX;
        unsigned active = 0;
        unsigned activeShard = 0;
        std::uint64_t flushed = 0, recvd = 0, appliesSent = 0;
        for (unsigned s = 0; s < _nshards; ++s) {
            const Shard &sh = *_shard[s];
            const Tick slb =
                std::min({sh.queue().nextEventLowerBound(),
                          sh.pendingMin(), sh.postedMin()});
            if (slb != UINT64_MAX) {
                ++active;
                activeShard = s;
                if (slb < lb)
                    lb = slb;
            }
            const ShardStats &st = sh.stats();
            flushed += st.flushedCross;
            recvd += st.crossRecvd;
            appliesSent += st.appliesSent;
        }
        const bool inflight = flushed != recvd;
        const bool appliesPending = appliesSent != _appliesRun;
        if (lb == UINT64_MAX && !inflight && !appliesPending)
            break; // nothing anywhere; the catch-up loop advances clocks
        if (active == 1 && !inflight && !appliesPending) {
            t = soloRun(activeShard, t, bound);
            continue;
        }
        // Adaptive window: cover the gap to the earliest event plus a
        // full lookahead.  Anything executing this round sits at or
        // after lb, so its cross-posts land at or after lb + lookahead
        // = E — the window stays conservative at its extended width.
        Tick end = lb == UINT64_MAX ? bound : lb + _lookahead;
        if (end > bound || end < t)
            end = bound;
        if (lb != UINT64_MAX && lb > t)
            ++_windowsExtended;
        else
            ++_windowsStatic;
        round(t, end);
        t = end;
    }
    _now = target;
    // Catch up queues a solo stretch or an elided serial phase left
    // behind: by this point nothing anywhere is due at or before
    // target, so this advances clocks without running events.
    for (auto &sh : _shard) {
        if (sh->queue().now() < target)
            sh->queue().runUntil(target);
    }
}

void
ShardedEngine::postCross(unsigned from, unsigned to, TickDelta delay,
                         EventFn &&fn, Priority prio)
{
    dagger_assert(from < _nshards && to < _nshards, "bad shard id");
    dagger_assert(from != to,
                  "same-shard post: schedule on the queue instead");
    Shard &src = *_shard[from];
    const Tick when = src.queue().now() + delay;
    dagger_assert(when >= _roundEnd,
                  "cross-shard post lands inside the current window: "
                  "delay is below the engine lookahead (from=", from,
                  " to=", to, " when=", when, " window end=", _roundEnd,
                  " lookahead=", _lookahead, ")");
    src.stageCross(to,
                   CrossEvent{when, prio, src.nextStamp(), std::move(fn)});
}

void
ShardedEngine::postApply(unsigned from, EventFn &&fn)
{
    dagger_assert(from >= 1 && from < _nshards,
                  "applies come from parallel shards into shard 0");
    Shard &src = *_shard[from];
    src.stageApply(CrossEvent{src.queue().now(), Priority::Hardware,
                              src.nextStamp(), std::move(fn)});
}

std::uint64_t
ShardedEngine::executed() const
{
    std::uint64_t total = 0;
    for (const auto &shard : _shard)
        total += shard->queue().executed();
    return total;
}

EventQueue::EngineStats
ShardedEngine::aggregateStats() const
{
    EventQueue::EngineStats agg;
    for (const auto &shard : _shard) {
        const auto &st = shard->queue().stats();
        agg.poolHits += st.poolHits;
        agg.poolMisses += st.poolMisses;
        agg.poolBlocks += st.poolBlocks;
        agg.wheelAdmits += st.wheelAdmits;
        agg.frameAdmits += st.frameAdmits;
        agg.heapAdmits += st.heapAdmits;
        agg.maxPending = std::max(agg.maxPending, st.maxPending);
    }
    return agg;
}

std::uint64_t
ShardedEngine::batchFlushes() const
{
    std::uint64_t total = 0;
    for (const auto &shard : _shard)
        total += shard->stats().batchFlushes;
    return total;
}

std::uint64_t
ShardedEngine::barrierSpins() const
{
    return (_startGate ? _startGate->spins() : 0) +
           (_doneGate ? _doneGate->spins() : 0);
}

std::uint64_t
ShardedEngine::barrierParks() const
{
    return (_startGate ? _startGate->parks() : 0) +
           (_doneGate ? _doneGate->parks() : 0);
}

std::uint64_t
ShardedEngine::mailboxHighWater(unsigned s) const
{
    std::uint64_t high = 0;
    for (unsigned from = 0; from < _nshards; ++from) {
        if (from != s)
            high = std::max(high, inbox(from, s).highWater());
    }
    if (s == 0) {
        for (unsigned from = 1; from < _nshards; ++from)
            high = std::max(high, _apply[from]->highWater());
    }
    return high;
}

std::uint64_t
ShardedEngine::mailboxOverflowed(unsigned s) const
{
    std::uint64_t total = 0;
    for (unsigned from = 0; from < _nshards; ++from) {
        if (from != s)
            total += inbox(from, s).overflowed();
    }
    if (s == 0) {
        for (unsigned from = 1; from < _nshards; ++from)
            total += _apply[from]->overflowed();
    }
    return total;
}

} // namespace dagger::sim
