#include "sim/metrics.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace dagger::sim {

namespace {

/** The legacy report pads every label to this column before the value. */
constexpr std::size_t kLabelColumn = 28;

void
textLine(std::ostringstream &os, const std::string &label,
         const std::string &value)
{
    os << "  " << label;
    for (std::size_t i = label.size(); i < kLabelColumn; ++i)
        os << ' ';
    os << value << "\n";
}

std::string
formatGauge(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

std::string
leafOf(const std::string &name)
{
    const auto dot = name.rfind('.');
    return dot == std::string::npos ? name : name.substr(dot + 1);
}

} // namespace

MetricRegistry::Entry &
MetricRegistry::add(Kind kind, std::string name, MetricText text,
                    std::string label)
{
    dagger_assert(!name.empty(), "metric needs a name");
    dagger_assert(!has(name), "duplicate metric name '", name, "'");
    Entry e;
    e.kind = kind;
    e.label = label.empty() ? leafOf(name) : std::move(label);
    e.name = std::move(name);
    e.text = text;
    _entries.push_back(std::move(e));
    return _entries.back();
}

void
MetricRegistry::addCounter(std::string name, const Counter &c,
                           MetricText text, std::string label)
{
    add(Kind::Counter, std::move(name), text, std::move(label)).counter = &c;
}

void
MetricRegistry::addHistogram(std::string name, const Histogram &h,
                             MetricText text, std::string label)
{
    add(Kind::Histogram, std::move(name), text, std::move(label))
        .histogram = &h;
}

void
MetricRegistry::addIntGauge(std::string name,
                            std::function<std::uint64_t()> fn,
                            MetricText text, std::string label)
{
    dagger_assert(fn, "int gauge needs a callback");
    add(Kind::IntGauge, std::move(name), text, std::move(label))
        .intGauge = std::move(fn);
}

void
MetricRegistry::addGauge(std::string name, std::function<double()> fn,
                         MetricText text, std::string label)
{
    dagger_assert(fn, "gauge needs a callback");
    add(Kind::Gauge, std::move(name), text, std::move(label))
        .gauge = std::move(fn);
}

void
MetricRegistry::addSection(std::string name, std::string title)
{
    // Sections are scope markers, not values; several sections may
    // share a name-less root, so only non-empty names are checked.
    if (!name.empty())
        dagger_assert(!has(name), "duplicate metric name '", name, "'");
    Entry e;
    e.kind = Kind::Section;
    e.name = std::move(name);
    e.title = std::move(title);
    _entries.push_back(std::move(e));
}

bool
MetricRegistry::has(std::string_view name) const
{
    for (const Entry &e : _entries)
        if (e.name == name)
            return true;
    return false;
}

bool
MetricRegistry::inScope(std::string_view name, std::string_view scope)
{
    if (scope.empty())
        return true;
    if (name.size() < scope.size() || name.substr(0, scope.size()) != scope)
        return false;
    return name.size() == scope.size() || name[scope.size()] == '.';
}

void
MetricRegistry::forEach(const std::function<void(const Entry &)> &fn,
                        std::string_view scope) const
{
    for (const Entry &e : _entries)
        if (inScope(e.name, scope))
            fn(e);
}

std::string
MetricRegistry::renderText(std::string_view scope) const
{
    std::ostringstream os;
    forEach(
        [&os](const Entry &e) {
            if (e.kind == Kind::Section) {
                os << e.title << "\n";
                return;
            }
            if (e.text != MetricText::Show)
                return;
            switch (e.kind) {
              case Kind::Counter:
                textLine(os, e.label, std::to_string(e.counter->value()));
                break;
              case Kind::IntGauge:
                textLine(os, e.label, std::to_string(e.intGauge()));
                break;
              case Kind::Gauge:
                textLine(os, e.label, formatGauge(e.gauge()));
                break;
              case Kind::Histogram:
                // The legacy reports print one representative
                // percentile per histogram.
                textLine(os, e.label + "_p50",
                         std::to_string(e.histogram->percentile(50)));
                break;
              case Kind::Section:
                break;
            }
        },
        scope);
    return os.str();
}

std::string
MetricRegistry::renderJson(std::string_view scope) const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    forEach(
        [&](const Entry &e) {
            if (e.kind == Kind::Section)
                return;
            if (!first)
                os << ",";
            first = false;
            os << "\n  \"" << jsonEscape(e.name) << "\": ";
            switch (e.kind) {
              case Kind::Counter:
                os << e.counter->value();
                break;
              case Kind::IntGauge:
                os << e.intGauge();
                break;
              case Kind::Gauge:
                os << jsonNumber(e.gauge());
                break;
              case Kind::Histogram: {
                const Histogram &h = *e.histogram;
                os << "{\"count\": " << h.count() << ", \"min\": "
                   << h.min() << ", \"max\": " << h.max()
                   << ", \"mean\": " << jsonNumber(h.mean())
                   << ", \"p50\": " << h.percentile(50)
                   << ", \"p90\": " << h.percentile(90)
                   << ", \"p99\": " << h.percentile(99) << "}";
                break;
              }
              case Kind::Section:
                break;
            }
        },
        scope);
    os << "\n}\n";
    return os.str();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no Inf/NaN
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace dagger::sim
