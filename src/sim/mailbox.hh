/**
 * @file
 * Cross-domain event hand-off for the sharded engine.
 *
 * A sharded simulation (sharded_engine.hh) never lets a handler call
 * schedule() on another shard's EventQueue: cross-domain events travel
 * through single-producer/single-consumer mailboxes instead, one per
 * (source shard, destination shard) pair, and are admitted into the
 * destination queue at the next conservative-lookahead barrier.
 *
 * Every hand-off carries an EventStamp — the (tick, priority, domain,
 * intra-domain sequence) of the *scheduling* context — so the
 * destination shard can admit a whole barrier batch in exactly the
 * order the single-queue engine would have assigned insertion
 * sequence numbers.  That stamp order is what makes the sharded merge
 * byte-identical to the sequential engine (docs/PERF.md).
 */

#ifndef DAGGER_SIM_MAILBOX_HH
#define DAGGER_SIM_MAILBOX_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace dagger::sim {

/**
 * Where (in simulated causality) a deferred event was born: the tick
 * and dispatch priority of the handler that scheduled it, the shard
 * that handler ran on, and a per-shard monotonic counter.  Batches are
 * admitted in stamp order, which reproduces the single-queue engine's
 * global insertion-sequence order for every pair of events whose
 * relative order can affect the simulation (see sharded_engine.cc for
 * the ordering argument).
 */
struct EventStamp
{
    Tick birthTick = 0;
    std::uint32_t birthPrio = 0;
    std::uint32_t birthDomain = 0;
    std::uint64_t birthIntra = 0;
};

/** Strict lexicographic (tick, priority, domain, intra) order. */
inline bool
stampBefore(const EventStamp &a, const EventStamp &b)
{
    if (a.birthTick != b.birthTick)
        return a.birthTick < b.birthTick;
    if (a.birthPrio != b.birthPrio)
        return a.birthPrio < b.birthPrio;
    if (a.birthDomain != b.birthDomain)
        return a.birthDomain < b.birthDomain;
    return a.birthIntra < b.birthIntra;
}

/** One deferred event: target key plus the closure and its stamp. */
struct CrossEvent
{
    Tick when = 0;
    Priority prio = Priority::Default;
    EventStamp stamp;
    EventFn fn;
};

/**
 * Lock-light single-producer/single-consumer mailbox.
 *
 * The fast path is a fixed-capacity ring with acquire/release indices
 * (no locks, no CAS).  When a window produces more than kRingCapacity
 * events the excess spills to a mutex-protected overflow deque — rare,
 * counted, and still FIFO: the producer keeps using the overflow until
 * the consumer has drained it, so hand-off order is preserved.
 *
 * Usage contract (what makes SPSC sufficient): exactly one shard
 * produces into a given mailbox while running a window, and exactly
 * one shard drains it during barrier admission; the engine's barrier
 * provides the round-level ordering between the two phases.
 */
template <typename T>
class SpscMailbox
{
  public:
    static constexpr std::size_t kRingCapacity = 1024;
    static_assert((kRingCapacity & (kRingCapacity - 1)) == 0,
                  "ring capacity must be a power of two");

    SpscMailbox() : _ring(kRingCapacity) {}
    SpscMailbox(const SpscMailbox &) = delete;
    SpscMailbox &operator=(const SpscMailbox &) = delete;

    /** Producer side: enqueue one item. */
    void
    push(T &&item)
    {
        const std::size_t tail = _tail.load(std::memory_order_relaxed);
        const std::size_t head = _head.load(std::memory_order_acquire);
        bool ringFull = tail - head >= kRingCapacity;
        if (ringFull || _producerOverflowing) {
            // Overflow path: stay on it until the consumer has emptied
            // the deque, so FIFO order across the two containers holds
            // (every ring item predates every live overflow item).
            std::lock_guard<std::mutex> lock(_overflowMutex);
            if (!_overflow.empty() || ringFull) {
                _overflow.push_back(std::move(item));
                _producerOverflowing = true;
                _overflowLive.store(true, std::memory_order_release);
                ++_overflowed;
                return;
            }
            _producerOverflowing = false; // consumer caught up
        }
        _ring[tail & (kRingCapacity - 1)] = std::move(item);
        _tail.store(tail + 1, std::memory_order_release);
        const std::uint64_t depth =
            static_cast<std::uint64_t>(tail - head) + 1;
        if (depth > _highWater)
            _highWater = depth;
    }

    /**
     * Producer side: enqueue a whole window's batch with one release
     * store on the tail index (the sharded engine stages cross events
     * locally and publishes once per pair per round).  @p items is
     * drained and left empty for reuse.
     */
    void
    pushBatch(std::vector<T> &items)
    {
        if (items.empty())
            return;
        const std::size_t tail = _tail.load(std::memory_order_relaxed);
        const std::size_t head = _head.load(std::memory_order_acquire);
        std::size_t n = 0;
        if (_producerOverflowing) {
            std::lock_guard<std::mutex> lock(_overflowMutex);
            if (_overflow.empty())
                _producerOverflowing = false; // consumer caught up
        }
        if (!_producerOverflowing) {
            const std::size_t space = kRingCapacity - (tail - head);
            n = std::min(space, items.size());
            for (std::size_t i = 0; i < n; ++i)
                _ring[(tail + i) & (kRingCapacity - 1)] =
                    std::move(items[i]);
            _tail.store(tail + n, std::memory_order_release);
            const std::uint64_t depth =
                static_cast<std::uint64_t>(tail - head) + n;
            if (depth > _highWater)
                _highWater = depth;
        }
        if (n < items.size()) {
            std::lock_guard<std::mutex> lock(_overflowMutex);
            for (std::size_t i = n; i < items.size(); ++i)
                _overflow.push_back(std::move(items[i]));
            _producerOverflowing = true;
            _overflowLive.store(true, std::memory_order_release);
            _overflowed += items.size() - n;
        }
        items.clear();
    }

    /** Consumer side: pop everything currently visible, in FIFO order. */
    template <typename Consume>
    void
    drain(Consume &&consume)
    {
        const std::size_t head = _head.load(std::memory_order_relaxed);
        const std::size_t tail = _tail.load(std::memory_order_acquire);
        if (head != tail) {
            for (std::size_t i = head; i != tail; ++i)
                consume(std::move(_ring[i & (kRingCapacity - 1)]));
            _head.store(tail, std::memory_order_release);
        }
        // The overflow mutex is only worth taking when the producer
        // has actually spilled — the flag makes idle drains lock-free.
        if (_overflowLive.load(std::memory_order_acquire)) {
            std::lock_guard<std::mutex> lock(_overflowMutex);
            while (!_overflow.empty()) {
                consume(std::move(_overflow.front()));
                _overflow.pop_front();
            }
            _overflowLive.store(false, std::memory_order_relaxed);
        }
    }

    /** Producer-side high-water mark of the ring depth. */
    std::uint64_t highWater() const { return _highWater; }

    /** Items that had to take the overflow path. */
    std::uint64_t overflowed() const { return _overflowed; }

  private:
    std::vector<T> _ring;
    std::atomic<std::size_t> _head{0};
    std::atomic<std::size_t> _tail{0};
    /** Producer-owned: true while FIFO order routes via _overflow. */
    bool _producerOverflowing = false;
    /** Set when _overflow may be non-empty; lets drain() skip the lock. */
    std::atomic<bool> _overflowLive{false};
    std::uint64_t _highWater = 0;  ///< producer-owned
    std::uint64_t _overflowed = 0; ///< producer-owned (guarded writes)
    std::mutex _overflowMutex;
    std::deque<T> _overflow;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_MAILBOX_HH
