/**
 * @file
 * Statistics primitives: counters and HDR-style latency histograms.
 *
 * The histogram uses logarithmic buckets (32 sub-buckets per power of
 * two), giving <= ~3% relative error on percentile reads over a range
 * of 1 tick .. 2^63 ticks with a fixed 64 KB footprint.  That error is
 * far below the run-to-run variation of the systems we model.
 */

#ifndef DAGGER_SIM_STATS_HH
#define DAGGER_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace dagger::sim {

/** A monotonically increasing named counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : _name(std::move(name)) {}

    void inc(std::uint64_t by = 1) { _value += by; }
    std::uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }
    void reset() { _value = 0; }

  private:
    std::string _name;
    std::uint64_t _value = 0;
};

/**
 * Log-bucketed histogram for latency-like values.
 *
 * Values are recorded as raw integers (ticks by convention).  The
 * percentile() accessor returns a representative value from the bucket
 * containing the requested rank.
 */
class Histogram
{
  public:
    static constexpr int kSubBucketBits = 5; // 32 sub-buckets / octave
    static constexpr int kSubBuckets = 1 << kSubBucketBits;

    Histogram() = default;
    explicit Histogram(std::string name) : _name(std::move(name)) {}

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Record @p n identical samples. */
    void recordMany(std::uint64_t value, std::uint64_t n);

    std::uint64_t count() const { return _count; }
    std::uint64_t min() const { return _count ? _min : 0; }
    std::uint64_t max() const { return _max; }
    double mean() const;

    /**
     * Value at percentile @p p in [0, 100].  p=50 is the median.
     * Returns 0 on an empty histogram.
     */
    std::uint64_t percentile(double p) const;

    /** Median convenience accessor. */
    std::uint64_t median() const { return percentile(50.0); }

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Forget all samples. */
    void reset();

    const std::string &name() const { return _name; }

    /** Render "median/p90/p99 (us)" for reports (values taken as ticks). */
    std::string summaryUs() const;

  private:
    static std::size_t bucketIndex(std::uint64_t value);
    static std::uint64_t bucketMidpoint(std::size_t index);

    std::string _name;
    std::vector<std::uint64_t> _buckets; // grown lazily
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t _max = 0;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_STATS_HH
