/**
 * @file
 * Sharded parallel discrete-event engine with conservative-lookahead
 * barriers and a deterministic merge.
 *
 * The single-queue engine (event_queue.hh) runs the whole simulation
 * on one thread.  This engine partitions it into domains — one
 * EventQueue per shard — and advances them in lock-step *rounds* over
 * adaptive windows:
 *
 *   round k over window [T, E), E = min(LB + lookahead, target+1)
 *   where LB is the global next-tick lower bound (queues, unadmitted
 *   pending heaps, staged/in-flight hand-offs)
 *     1. parallel phase — every shard (1..S-1, worker threads; shard 0
 *        is handled in step 3) drains its inboxes, admits pending
 *        cross events with when < E in stamp order, runs its own queue
 *        through the window, and publishes its staged cross/apply
 *        batches (one mailbox release-store per destination).
 *        Admissions at/after E spill back to the shard's pending heap;
 *        cross-domain events must land at least `lookahead` ticks out.
 *     2. barrier (sense-reversing, spin-then-park).
 *     3. serial phase — the coordinator runs shard 0 (the fabric/ToR
 *        domain): inbox drain + admission, then the *applies* —
 *        synchronous zero-latency calls into shard-0 state (e.g. a
 *        host-side port issuing into the shared interconnect channel)
 *        — interleaved at their exact sequential position via
 *        EventQueue::runWhileBefore, then the rest of the window.
 *        Rounds where shard 0 has nothing due in-window, drained
 *        inboxes, and no queued applies skip this phase entirely.
 *     4. T = E.
 *
 * Because E is derived from LB, idle stretches collapse into the next
 * window instead of iterating empty rounds, and sparse phases extend
 * each window to cover the gap to the next event plus a full lookahead.
 * Dense phases degrade to the static T + lookahead window.
 *
 * When exactly one shard holds any work (no in-flight hand-offs, no
 * queued applies) the engine drops out of rounds entirely: the active
 * shard runs *solo* on the coordinator in lookahead-wide chunks with
 * no spill horizon, no barriers, and no serial phase, exiting at the
 * first chunk that stages an outbound event (which, by the chunk
 * width, lands at or after the chunk end — the commit point the next
 * round starts from).  A single-shard-active workload therefore runs
 * at near single-queue speed.
 *
 * `lookahead` must not exceed the minimum cross-domain latency: every
 * cross-post born inside a window then lands at or after the window
 * end, so no shard ever receives an event in its past.  Hand-offs are
 * stamped with their scheduling context and admitted in stamp order,
 * which reproduces the single-queue engine's (tick, priority, seq)
 * dispatch order exactly — same-seed runs are byte-identical at any
 * shard or worker count (docs/PERF.md has the full argument, why the
 * window must stay uniform across shards, and the acceptance
 * protocol).
 *
 * Worker threads are a performance knob, not a semantic one: with zero
 * workers the coordinator multiplexes every shard inline and the
 * result is identical by construction.  DAGGER_SHARD_THREADS overrides
 * the default (min(shards-1, hardware threads); 0 on single-CPU
 * hosts).
 */

#ifndef DAGGER_SIM_SHARDED_ENGINE_HH
#define DAGGER_SIM_SHARDED_ENGINE_HH

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/barrier.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/mailbox.hh"
#include "sim/shard.hh"
#include "sim/time.hh"

namespace dagger::sim {

class ShardedEngine
{
  public:
    /** Wall-clock source for busy/stall accounting (ns, monotonic).
     *  Injected by the bench harness; the simulator itself never reads
     *  wall time. */
    using ClockFn = std::uint64_t (*)();

    /**
     * @param q0 the serial-domain (fabric/ToR) queue, owned by the
     *           caller so existing components keep their references.
     * @param shards total shard count including shard 0; >= 2.
     * @param lookahead conservative window width in ticks; must be a
     *           lower bound on every cross-domain latency.
     */
    ShardedEngine(EventQueue &q0, unsigned shards, Tick lookahead);
    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;
    ~ShardedEngine();

    unsigned shards() const { return _nshards; }
    Tick lookahead() const { return _lookahead; }
    /** Worker threads actually running (0 = coordinator multiplexes). */
    unsigned workers() const { return _nworkers; }

    EventQueue &queue(unsigned s) { return _shard[s]->queue(); }
    Shard &shard(unsigned s) { return *_shard[s]; }

    /** Committed global time (every queue has run through this). */
    Tick now() const { return _now; }

    /** Advance all shards to @p target (inclusive). */
    void runUntil(Tick target);
    void runFor(TickDelta window) { runUntil(_now + window); }

    /**
     * Hand @p fn to shard @p to, to run at now(@p from) + @p delay.
     * Must only be called from shard @p from's execution context, and
     * @p delay must respect the engine lookahead (asserted).  The
     * event is staged locally and published to the SPSC mailbox at
     * window close.
     */
    void postCross(unsigned from, unsigned to, TickDelta delay,
                   EventFn &&fn, Priority prio = Priority::Default);

    /**
     * Queue @p fn for the serial phase of the current round: it runs
     * on the coordinator with shard 0's queue advanced exactly to the
     * caller's current tick — a synchronous, zero-lookahead call into
     * serial-domain state.  @p from must be a parallel shard (>= 1).
     */
    void postApply(unsigned from, EventFn &&fn);

    // ----------------------- observability ---------------------------

    /** Total events executed across every shard queue. */
    std::uint64_t executed() const;

    /** Field-wise sum of every queue's EngineStats (max for maxPending). */
    EventQueue::EngineStats aggregateStats() const;

    const ShardStats &shardStats(unsigned s) const
    {
        return _shard[s]->stats();
    }

    /** High-water mark across shard @p s's inboxes (ring depth). */
    std::uint64_t mailboxHighWater(unsigned s) const;
    /** Events that overflowed the ring across shard @p s's inboxes. */
    std::uint64_t mailboxOverflowed(unsigned s) const;

    // All of the following are deterministic: they depend only on the
    // event schedule, never on thread timing (barrierSpins/Parks are
    // the one exception and say so).

    /** Full barrier rounds executed (parallel + serial machinery). */
    std::uint64_t rounds() const { return _rounds; }
    /** Single-active-shard stretches run without rounds or barriers. */
    std::uint64_t soloRuns() const { return _soloRuns; }
    /** Lookahead-wide chunks executed inside solo stretches. */
    std::uint64_t soloChunks() const { return _soloChunks; }
    /** Rounds whose window was extended past start + lookahead. */
    std::uint64_t windowsExtended() const { return _windowsExtended; }
    /** Rounds that ran the static start + lookahead window. */
    std::uint64_t windowsStatic() const { return _windowsStatic; }
    /** Sum of round window widths in ticks (mean = sum / rounds). */
    std::uint64_t windowTicksSum() const { return _windowTicksSum; }
    /** Widest round window in ticks. */
    std::uint64_t windowTicksMax() const { return _windowTicksMax; }
    /** Serial phases skipped because shard 0 provably had no work. */
    std::uint64_t serialElided() const { return _serialElided; }
    /** Staging-buffer publications across all shards (non-empty). */
    std::uint64_t batchFlushes() const;
    std::uint64_t appliesRun() const { return _appliesRun; }

    /** Barrier arrivals resolved by spinning (host-timing dependent). */
    std::uint64_t barrierSpins() const;
    /** Barrier arrivals that parked on a condvar (host-timing dependent). */
    std::uint64_t barrierParks() const;

    /** Install a wall-clock source; enables the *_ns accessors. */
    void setClock(ClockFn clock) { _clock = clock; }
    /** Wall time shard @p s spent executing its windows. */
    std::uint64_t busyNs(unsigned s) const { return _busy[s].ns; }
    /** Wall time spent in parallel phases (incl. barrier waits). */
    std::uint64_t parallelNs() const { return _parallelNs; }
    /** Wall time spent in serial (shard 0 + apply) phases. */
    std::uint64_t serialNs() const { return _serialNs; }

  private:
    struct alignas(64) BusySlot
    {
        std::uint64_t ns = 0;
    };

    SpscMailbox<CrossEvent> &inbox(unsigned from, unsigned to)
    {
        return *_cross[from * _nshards + to];
    }
    const SpscMailbox<CrossEvent> &inbox(unsigned from, unsigned to) const
    {
        return *_cross[from * _nshards + to];
    }

    void round(Tick start, Tick end);
    void runShardWindow(unsigned s);
    void serialPhase();
    bool canElideSerial(Tick end) const;
    /** Publish shard @p s's staged cross/apply batches to its mailboxes. */
    void flushShard(unsigned s);
    /**
     * Run shard @p s alone from @p t in lookahead-wide chunks until it
     * stages an outbound event, drains, or reaches @p bound; returns
     * the committed time (the end of the last chunk executed).
     */
    Tick soloRun(unsigned s, Tick t, Tick bound);
    /** Run applies staged during a solo stretch at its commit point. */
    void soloApplyEpilogue(Tick commit);
    void workerLoop(unsigned w);

    unsigned _nshards;
    Tick _lookahead;
    unsigned _nworkers = 0; ///< set before any worker starts
    Tick _now = 0;

    EventQueue &_q0;
    std::vector<std::unique_ptr<EventQueue>> _ownedQueues;
    std::vector<std::unique_ptr<Shard>> _shard;
    std::vector<std::unique_ptr<SpscMailbox<CrossEvent>>> _cross;
    std::vector<std::unique_ptr<SpscMailbox<CrossEvent>>> _apply;
    /// serial-phase scratch; only the coordinator touches it
    DAGGER_OWNED_BY(engine) std::vector<CrossEvent> _applyBatch;

    // Round window, published to workers through the start barrier.
    Tick _roundStart = 0;
    Tick _roundEnd = 0;
    bool _stop = false;

    std::vector<std::thread> _workers;
    std::unique_ptr<RoundBarrier> _startGate;
    std::unique_ptr<RoundBarrier> _doneGate;

    DAGGER_OWNED_BY(engine) std::uint64_t _rounds = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _soloRuns = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _soloChunks = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _windowsExtended = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _windowsStatic = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _windowTicksSum = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _windowTicksMax = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _serialElided = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _appliesRun = 0;

    ClockFn _clock = nullptr;
    std::vector<BusySlot> _busy;
    std::uint64_t _parallelNs = 0;
    std::uint64_t _serialNs = 0;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_SHARDED_ENGINE_HH
