/**
 * @file
 * Sharded parallel discrete-event engine with conservative-lookahead
 * barriers and a deterministic merge.
 *
 * The single-queue engine (event_queue.hh) runs the whole simulation
 * on one thread.  This engine partitions it into domains — one
 * EventQueue per shard — and advances them in lock-step *rounds*:
 *
 *   round k over window [T, end), end = min(T + lookahead, target+1)
 *     1. parallel phase — every shard (1..S-1, worker threads; shard 0
 *        is handled in step 3) drains its inboxes, admits pending
 *        cross events with when < end in stamp order, and runs its own
 *        queue through the window.  Admissions at/after end spill back
 *        to the shard's pending list; cross-domain events go through
 *        SPSC mailboxes and must land at least `lookahead` ticks out.
 *     2. barrier.
 *     3. serial phase — the coordinator runs shard 0 (the fabric/ToR
 *        domain): inbox drain + admission, then the *applies* —
 *        synchronous zero-latency calls into shard-0 state (e.g. a
 *        host-side port issuing into the shared interconnect channel)
 *        — interleaved at their exact sequential position via
 *        EventQueue::runWhileBefore, then the rest of the window.
 *     4. T = end; idle rounds skip ahead to the earliest pending tick.
 *
 * `lookahead` must not exceed the minimum cross-domain latency: every
 * cross-post born inside a window then lands at or after the window
 * end, so no shard ever receives an event in its past.  Hand-offs are
 * stamped with their scheduling context and admitted in stamp order,
 * which reproduces the single-queue engine's (tick, priority, seq)
 * dispatch order exactly — same-seed runs are byte-identical at any
 * shard or worker count (docs/PERF.md has the full argument and the
 * acceptance protocol).
 *
 * Worker threads are a performance knob, not a semantic one: with zero
 * workers the coordinator multiplexes every shard inline and the
 * result is identical by construction.  DAGGER_SHARD_THREADS overrides
 * the default (min(shards-1, hardware threads); 0 on single-CPU
 * hosts).
 */

#ifndef DAGGER_SIM_SHARDED_ENGINE_HH
#define DAGGER_SIM_SHARDED_ENGINE_HH

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/barrier.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/mailbox.hh"
#include "sim/shard.hh"
#include "sim/time.hh"

namespace dagger::sim {

class ShardedEngine
{
  public:
    /** Wall-clock source for busy/stall accounting (ns, monotonic).
     *  Injected by the bench harness; the simulator itself never reads
     *  wall time. */
    using ClockFn = std::uint64_t (*)();

    /**
     * @param q0 the serial-domain (fabric/ToR) queue, owned by the
     *           caller so existing components keep their references.
     * @param shards total shard count including shard 0; >= 2.
     * @param lookahead conservative window width in ticks; must be a
     *           lower bound on every cross-domain latency.
     */
    ShardedEngine(EventQueue &q0, unsigned shards, Tick lookahead);
    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;
    ~ShardedEngine();

    unsigned shards() const { return _nshards; }
    Tick lookahead() const { return _lookahead; }
    /** Worker threads actually running (0 = coordinator multiplexes). */
    unsigned workers() const { return _nworkers; }

    EventQueue &queue(unsigned s) { return _shard[s]->queue(); }
    Shard &shard(unsigned s) { return *_shard[s]; }

    /** Committed global time (every queue has run through this). */
    Tick now() const { return _now; }

    /** Advance all shards to @p target (inclusive). */
    void runUntil(Tick target);
    void runFor(TickDelta window) { runUntil(_now + window); }

    /**
     * Hand @p fn to shard @p to, to run at now(@p from) + @p delay.
     * Must only be called from shard @p from's execution context, and
     * @p delay must respect the engine lookahead (asserted).
     */
    void postCross(unsigned from, unsigned to, TickDelta delay,
                   EventFn &&fn, Priority prio = Priority::Default);

    /**
     * Queue @p fn for the serial phase of the current round: it runs
     * on the coordinator with shard 0's queue advanced exactly to the
     * caller's current tick — a synchronous, zero-lookahead call into
     * serial-domain state.  @p from must be a parallel shard (>= 1).
     */
    void postApply(unsigned from, EventFn &&fn);

    // ----------------------- observability ---------------------------

    /** Total events executed across every shard queue. */
    std::uint64_t executed() const;

    /** Field-wise sum of every queue's EngineStats (max for maxPending). */
    EventQueue::EngineStats aggregateStats() const;

    const ShardStats &shardStats(unsigned s) const
    {
        return _shard[s]->stats();
    }

    /** High-water mark across shard @p s's inboxes (ring depth). */
    std::uint64_t mailboxHighWater(unsigned s) const;
    /** Events that overflowed the ring across shard @p s's inboxes. */
    std::uint64_t mailboxOverflowed(unsigned s) const;

    std::uint64_t rounds() const { return _rounds; }
    std::uint64_t skips() const { return _skips; }
    std::uint64_t appliesRun() const { return _appliesRun; }

    /** Install a wall-clock source; enables the *_ns accessors. */
    void setClock(ClockFn clock) { _clock = clock; }
    /** Wall time shard @p s spent executing its windows. */
    std::uint64_t busyNs(unsigned s) const { return _busy[s].ns; }
    /** Wall time spent in parallel phases (incl. barrier waits). */
    std::uint64_t parallelNs() const { return _parallelNs; }
    /** Wall time spent in serial (shard 0 + apply) phases. */
    std::uint64_t serialNs() const { return _serialNs; }

  private:
    struct alignas(64) BusySlot
    {
        std::uint64_t ns = 0;
    };

    SpscMailbox<CrossEvent> &inbox(unsigned from, unsigned to)
    {
        return *_cross[from * _nshards + to];
    }
    const SpscMailbox<CrossEvent> &inbox(unsigned from, unsigned to) const
    {
        return *_cross[from * _nshards + to];
    }

    void round(Tick start, Tick end);
    void runShardWindow(unsigned s);
    void serialPhase();
    void workerLoop(unsigned w);
    /** Conservative lower bound on the next event tick anywhere. */
    Tick nextTickLowerBound() const;

    unsigned _nshards;
    Tick _lookahead;
    unsigned _nworkers = 0; ///< set before any worker starts
    Tick _now = 0;

    EventQueue &_q0;
    std::vector<std::unique_ptr<EventQueue>> _ownedQueues;
    std::vector<std::unique_ptr<Shard>> _shard;
    std::vector<std::unique_ptr<SpscMailbox<CrossEvent>>> _cross;
    std::vector<std::unique_ptr<SpscMailbox<CrossEvent>>> _apply;
    /// serial-phase scratch; only the coordinator touches it
    DAGGER_OWNED_BY(engine) std::vector<CrossEvent> _applyBatch;

    // Round window, published to workers through the start barrier.
    Tick _roundStart = 0;
    Tick _roundEnd = 0;
    bool _stop = false;

    std::vector<std::thread> _workers;
    std::unique_ptr<RoundBarrier> _startGate;
    std::unique_ptr<RoundBarrier> _doneGate;

    DAGGER_OWNED_BY(engine) std::uint64_t _rounds = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _skips = 0;
    DAGGER_OWNED_BY(engine) std::uint64_t _appliesRun = 0;

    ClockFn _clock = nullptr;
    std::vector<BusySlot> _busy;
    std::uint64_t _parallelNs = 0;
    std::uint64_t _serialNs = 0;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_SHARDED_ENGINE_HH
