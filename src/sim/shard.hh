/**
 * @file
 * Per-domain shard state for the sharded engine.
 *
 * A Shard pairs one EventQueue (one simulation domain: a NIC/host pair,
 * or the fabric/ToR domain) with the bookkeeping the conservative-
 * lookahead round protocol needs around it: the pending heap of
 * cross-domain events awaiting admission, the spill hook that diverts
 * beyond-window admissions back into that heap, the per-destination
 * staging buffers that batch outbound hand-offs into one mailbox
 * publication per (sender, receiver) pair per round, and the stamp
 * counter that lets a barrier batch be admitted in the sequential
 * engine's insertion order (mailbox.hh).
 *
 * A Shard is single-threaded by contract: exactly one thread (its
 * owning worker, or the coordinator) touches it during a round, and
 * rounds are separated by barriers.
 */

#ifndef DAGGER_SIM_SHARD_HH
#define DAGGER_SIM_SHARD_HH

#include <cstdint>
#include <vector>

#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/mailbox.hh"
#include "sim/time.hh"

namespace dagger::sim {

/**
 * Deterministic per-shard counters.  These depend only on the event
 * schedule, never on thread timing, so they are identical across
 * worker counts (the sharded determinism test relies on that).
 */
struct ShardStats
{
    std::uint64_t crossSent = 0;   ///< events posted to another shard
    std::uint64_t crossRecvd = 0;  ///< events drained from inboxes
    std::uint64_t appliesSent = 0; ///< synchronous applies sent to shard 0
    std::uint64_t spills = 0;      ///< local admissions deferred past a window
    std::uint64_t windowsRun = 0;  ///< windows this shard executed
    std::uint64_t batchFlushes = 0; ///< non-empty staging publications
    std::uint64_t flushedCross = 0; ///< cross events published to mailboxes
    std::uint64_t flushedTo0 = 0;   ///< subset of flushedCross destined shard 0
};

class Shard
{
  public:
    /**
     * @param queue this shard's domain queue.
     * @param id this shard's index.
     * @param fanout total shard count (sizes the staging buffers).
     */
    Shard(EventQueue &queue, unsigned id, unsigned fanout)
        : _queue(queue), _id(id), _stageCross(fanout)
    {
    }
    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    EventQueue &queue() { return _queue; }
    const EventQueue &queue() const { return _queue; }
    unsigned id() const { return _id; }

    /**
     * Stamp for an event being scheduled from this shard's current
     * execution context: (tick, dispatch priority, shard, per-shard
     * counter).  During a serial-phase apply the engine overrides the
     * priority with the apply's birth priority, because the applied
     * closure runs outside any queue handler but stands in for code
     * that, sequentially, ran inside one.
     */
    EventStamp
    nextStamp()
    {
        return EventStamp{
            _queue.now(),
            _prioOverride >= 0 ? static_cast<std::uint32_t>(_prioOverride)
                               : _queue.currentPriority(),
            _id, _intra++};
    }

    void setPrioOverride(std::uint32_t prio)
    {
        _prioOverride = static_cast<std::int64_t>(prio);
    }
    void clearPrioOverride() { _prioOverride = -1; }

    /**
     * Stage one outbound cross event for @p to.  Publication to the
     * SPSC mailbox happens once per destination at window close
     * (flushCrossInto), so a window costs one release store per pair
     * instead of one per event.  Also records the target tick: staged
     * and in-flight events must stay visible to the coordinator's
     * next-tick lower bound until the receiver's pending heap covers
     * them.
     */
    void
    stageCross(unsigned to, CrossEvent &&ev)
    {
        if (ev.when < _postedMin)
            _postedMin = ev.when;
        ++_stats.crossSent;
        _stageCross[to].push_back(std::move(ev));
        _hasStaged = true;
    }

    /** Stage one synchronous apply for the next serial phase. */
    void
    stageApply(CrossEvent &&ev)
    {
        ++_stats.appliesSent;
        _stageApply.push_back(std::move(ev));
        _hasStaged = true;
    }

    /** True if any cross or apply is staged but not yet published. */
    bool hasStaged() const { return _hasStaged; }

    /** Publish the staging buffer for @p to; returns items published. */
    std::size_t flushCrossInto(unsigned to, SpscMailbox<CrossEvent> &box);

    /** Publish staged applies; returns items published. */
    std::size_t flushAppliesInto(SpscMailbox<CrossEvent> &box);

    /** Mark staging fully published (engine calls after both flushes). */
    void clearStagedFlag() { _hasStaged = false; }

    /** Inbox drain target: push one received event onto the pending heap. */
    void
    takeCross(CrossEvent &&ev)
    {
        ++_stats.crossRecvd;
        pushPending(std::move(ev));
    }

    /**
     * Start a window ending (exclusively) at @p end: reset the posted
     * minimum and divert admissions at/after @p end to the pending
     * heap, stamped with their scheduling context.
     */
    void
    beginWindow(Tick end)
    {
        _postedMin = UINT64_MAX;
        _queue.setSpillHorizon(end, &Shard::spillThunk, this);
        ++_stats.windowsRun;
    }

    /**
     * Admit every pending event with when < @p end into the queue, in
     * stamp order — which makes the queue's insertion-sequence order
     * for the batch match the sequential engine's (mailbox.hh).
     * @p start is the window start; the round protocol guarantees no
     * pending event targets below it (checked).
     */
    void admit(Tick start, Tick end);

    void endWindow() { _queue.clearSpillHorizon(); }

    /** Reset the posted minimum without window bookkeeping (solo runs). */
    void resetPostedMin() { _postedMin = UINT64_MAX; }

    /** Count a window execution without spill-horizon setup (solo runs). */
    void noteWindowRun() { ++_stats.windowsRun; }

    /** Earliest pending (unadmitted) tick; UINT64_MAX when none. */
    Tick
    pendingMin() const
    {
        return _pending.empty() ? UINT64_MAX : _pending.front().when;
    }

    /** Earliest tick this shard cross-posted since the last reset. */
    Tick postedMin() const { return _postedMin; }

    const ShardStats &stats() const { return _stats; }

  private:
    static void
    spillThunk(void *ctx, Tick when, EventFn &&fn, Priority prio)
    {
        static_cast<Shard *>(ctx)->spill(when, std::move(fn), prio);
    }

    void spill(Tick when, EventFn &&fn, Priority prio);
    void pushPending(CrossEvent &&ev);

    EventQueue &_queue;
    unsigned _id;
    // Round bookkeeping is owned by the engine's round protocol: one
    // thread per shard per round, never two (see file comment).
    /// min-heap on `when` (heap order maintained via std::push_heap)
    DAGGER_OWNED_BY(engine) std::vector<CrossEvent> _pending;
    /// scratch, reused per round
    DAGGER_OWNED_BY(engine) std::vector<CrossEvent> _admitBatch;
    /// outbound staging, one buffer per destination shard
    DAGGER_OWNED_BY(engine) std::vector<std::vector<CrossEvent>> _stageCross;
    /// outbound staging for serial-phase applies
    DAGGER_OWNED_BY(engine) std::vector<CrossEvent> _stageApply;
    DAGGER_OWNED_BY(engine) bool _hasStaged = false;
    DAGGER_OWNED_BY(engine) std::uint64_t _intra = 0;
    /// <0 = none; see nextStamp()
    DAGGER_OWNED_BY(engine) std::int64_t _prioOverride = -1;
    DAGGER_OWNED_BY(engine) Tick _postedMin = UINT64_MAX;
    DAGGER_OWNED_BY(engine) ShardStats _stats;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_SHARD_HH
