/**
 * @file
 * Per-domain shard state for the sharded engine.
 *
 * A Shard pairs one EventQueue (one simulation domain: a NIC/host pair,
 * or the fabric/ToR domain) with the bookkeeping the conservative-
 * lookahead round protocol needs around it: the pending list of
 * cross-domain events awaiting admission, the spill hook that diverts
 * beyond-window admissions back into that list, and the stamp counter
 * that lets a barrier batch be admitted in the sequential engine's
 * insertion order (mailbox.hh).
 *
 * A Shard is single-threaded by contract: exactly one thread (its
 * owning worker, or the coordinator) touches it during a round, and
 * rounds are separated by barriers.
 */

#ifndef DAGGER_SIM_SHARD_HH
#define DAGGER_SIM_SHARD_HH

#include <cstdint>
#include <vector>

#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/mailbox.hh"
#include "sim/time.hh"

namespace dagger::sim {

/**
 * Deterministic per-shard counters.  These depend only on the event
 * schedule, never on thread timing, so they are identical across
 * worker counts (the sharded determinism test relies on that).
 */
struct ShardStats
{
    std::uint64_t crossSent = 0;   ///< events posted to another shard
    std::uint64_t crossRecvd = 0;  ///< events drained from inboxes
    std::uint64_t appliesSent = 0; ///< synchronous applies sent to shard 0
    std::uint64_t spills = 0;      ///< local admissions deferred past a window
    std::uint64_t windowsRun = 0;  ///< windows this shard executed
};

class Shard
{
  public:
    Shard(EventQueue &queue, unsigned id) : _queue(queue), _id(id) {}
    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    EventQueue &queue() { return _queue; }
    const EventQueue &queue() const { return _queue; }
    unsigned id() const { return _id; }

    /**
     * Stamp for an event being scheduled from this shard's current
     * execution context: (tick, dispatch priority, shard, per-shard
     * counter).  During a serial-phase apply the engine overrides the
     * priority with the apply's birth priority, because the applied
     * closure runs outside any queue handler but stands in for code
     * that, sequentially, ran inside one.
     */
    EventStamp
    nextStamp()
    {
        return EventStamp{
            _queue.now(),
            _prioOverride >= 0 ? static_cast<std::uint32_t>(_prioOverride)
                               : _queue.currentPriority(),
            _id, _intra++};
    }

    void setPrioOverride(std::uint32_t prio)
    {
        _prioOverride = static_cast<std::int64_t>(prio);
    }
    void clearPrioOverride() { _prioOverride = -1; }

    /** Record a cross-post's target tick for conservative skip-ahead. */
    void
    notePosted(Tick when)
    {
        if (when < _postedMin)
            _postedMin = when;
        ++_stats.crossSent;
    }

    void noteApplySent() { ++_stats.appliesSent; }

    /** Inbox drain target: move one received event onto the pending list. */
    void
    takeCross(CrossEvent &&ev)
    {
        ++_stats.crossRecvd;
        _pending.push_back(std::move(ev));
    }

    /**
     * Start a window ending (exclusively) at @p end: reset the posted
     * minimum and divert admissions at/after @p end to the pending
     * list, stamped with their scheduling context.
     */
    void
    beginWindow(Tick end)
    {
        _postedMin = UINT64_MAX;
        _queue.setSpillHorizon(end, &Shard::spillThunk, this);
        ++_stats.windowsRun;
    }

    /**
     * Admit every pending event with when < @p end into the queue, in
     * stamp order — which makes the queue's insertion-sequence order
     * for the batch match the sequential engine's (mailbox.hh).
     */
    void admit(Tick end);

    void endWindow() { _queue.clearSpillHorizon(); }

    /** Earliest pending (unadmitted) tick; UINT64_MAX when none. */
    Tick pendingMin() const;

    /** Earliest tick this shard cross-posted in the current round. */
    Tick postedMin() const { return _postedMin; }

    const ShardStats &stats() const { return _stats; }

  private:
    static void
    spillThunk(void *ctx, Tick when, EventFn &&fn, Priority prio)
    {
        static_cast<Shard *>(ctx)->spill(when, std::move(fn), prio);
    }

    void spill(Tick when, EventFn &&fn, Priority prio);

    EventQueue &_queue;
    unsigned _id;
    // Round bookkeeping is owned by the engine's round protocol: one
    // thread per shard per round, never two (see file comment).
    DAGGER_OWNED_BY(engine) std::vector<CrossEvent> _pending;
    /// scratch, reused per round
    DAGGER_OWNED_BY(engine) std::vector<CrossEvent> _admitBatch;
    DAGGER_OWNED_BY(engine) std::uint64_t _intra = 0;
    /// <0 = none; see nextStamp()
    DAGGER_OWNED_BY(engine) std::int64_t _prioOverride = -1;
    DAGGER_OWNED_BY(engine) Tick _postedMin = UINT64_MAX;
    DAGGER_OWNED_BY(engine) ShardStats _stats;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_SHARD_HH
