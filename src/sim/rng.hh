/**
 * @file
 * Deterministic random number generation for workloads and models.
 *
 * Uses xoshiro256** seeded via splitmix64 — fast, high quality, and
 * fully reproducible across platforms (unlike std::default_random_engine
 * or libstdc++ distribution implementations, which we avoid so that two
 * builds produce identical workloads).
 */

#ifndef DAGGER_SIM_RNG_HH
#define DAGGER_SIM_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>

namespace dagger::sim {

/** Deterministic PRNG with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x6461676765720001ull) { reseed(seed); }

    /** Re-seed; expands the seed through splitmix64. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + range(hi - lo + 1);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Normally distributed value (Box–Muller). */
    double normal(double mean, double stddev);

  private:
    std::array<std::uint64_t, 4> _s{};
    bool _haveSpare = false;
    double _spare = 0.0;
};

/**
 * Zipfian generator over [0, n) with skew theta, using the standard
 * Gray et al. rejection-free formulation (as used by YCSB and the MICA
 * evaluation).  theta in [0, 1); theta=0.99 matches the paper's KVS
 * workloads, 0.9999 the high-skew variant.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta,
                     std::uint64_t seed = 0x7a697066ull);

    /** Next sample in [0, n). */
    std::uint64_t next();

    std::uint64_t n() const { return _n; }
    double theta() const { return _theta; }

  private:
    double zeta(std::uint64_t n, double theta) const;

    std::uint64_t _n;
    double _theta;
    double _alpha;
    double _zetan;
    double _eta;
    Rng _rng;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_RNG_HH
