#include "sim/logging.hh"

#include <cstdio>

namespace dagger::sim::detail {

namespace {
// Written once at startup from DAGGER_VERBOSE, read-only afterwards.
// dagger-lint: allow(shared-mutable-static-in-sim)
bool gVerbose = false;
} // namespace

bool
verboseEnabled()
{
    return gVerbose;
}

void
setVerbose(bool on)
{
    gVerbose = on;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (gVerbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace dagger::sim::detail
