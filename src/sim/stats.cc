#include "sim/stats.hh"

#include <bit>
#include <cstdio>

#include "sim/logging.hh"

namespace dagger::sim {

std::size_t
Histogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - kSubBucketBits;
    const auto sub = static_cast<std::size_t>(
        (value >> shift) & (kSubBuckets - 1));
    const auto octave = static_cast<std::size_t>(msb - kSubBucketBits + 1);
    return octave * kSubBuckets + sub;
}

std::uint64_t
Histogram::bucketMidpoint(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    const std::size_t octave = index / kSubBuckets;
    const std::size_t sub = index % kSubBuckets;
    const int shift = static_cast<int>(octave) - 1;
    const std::uint64_t lo =
        (static_cast<std::uint64_t>(kSubBuckets + sub)) << shift;
    const std::uint64_t width = 1ull << shift;
    return lo + width / 2;
}

void
Histogram::record(std::uint64_t value)
{
    recordMany(value, 1);
}

void
Histogram::recordMany(std::uint64_t value, std::uint64_t n)
{
    if (n == 0)
        return;
    const std::size_t idx = bucketIndex(value);
    if (idx >= _buckets.size())
        _buckets.resize(idx + 1, 0);
    _buckets[idx] += n;
    _count += n;
    _sum += value * n;
    if (value < _min)
        _min = value;
    if (value > _max)
        _max = value;
}

double
Histogram::mean() const
{
    return _count == 0
        ? 0.0
        : static_cast<double>(_sum) / static_cast<double>(_count);
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (_count == 0)
        return 0;
    dagger_assert(p >= 0.0 && p <= 100.0, "bad percentile ", p);
    // Rank of the requested sample (1-based, ceil).
    const double exact = p / 100.0 * static_cast<double>(_count);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact || rank == 0)
        ++rank;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen >= rank)
            return bucketMidpoint(i);
    }
    return _max;
}

void
Histogram::merge(const Histogram &other)
{
    if (other._buckets.size() > _buckets.size())
        _buckets.resize(other._buckets.size(), 0);
    for (std::size_t i = 0; i < other._buckets.size(); ++i)
        _buckets[i] += other._buckets[i];
    _count += other._count;
    _sum += other._sum;
    if (other._count) {
        if (other._min < _min)
            _min = other._min;
        if (other._max > _max)
            _max = other._max;
    }
}

void
Histogram::reset()
{
    _buckets.clear();
    _count = 0;
    _sum = 0;
    _min = std::numeric_limits<std::uint64_t>::max();
    _max = 0;
}

std::string
Histogram::summaryUs() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "p50=%.2fus p90=%.2fus p99=%.2fus",
                  ticksToUs(percentile(50)), ticksToUs(percentile(90)),
                  ticksToUs(percentile(99)));
    return buf;
}

} // namespace dagger::sim
