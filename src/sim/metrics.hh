/**
 * @file
 * MetricRegistry: the one observability spine of the simulator.
 *
 * The paper's Packet Monitor "collects various networking statistics"
 * (§4.1); in this codebase every layer (fabric, switch, NIC, caches,
 * rings) keeps Counter / Histogram members.  Instead of each report
 * hand-traversing those members, components register them here at
 * construction under hierarchical dotted names, e.g.
 *
 *   node0.nic.rpcs_out
 *   node0.nic.conn_cache.hit_rate
 *   node1.flow0.rx.drops
 *   fabric.to_nic.utilization
 *
 * and reports become generic registry walks.  Two renderers ship: a
 * text renderer that reproduces the legacy gem5-style report byte for
 * byte (entries carry an optional display label and a text-visibility
 * flag for that), and a JSON renderer that exports *every* metric,
 * including the text-hidden ones.
 *
 * The registry stores non-owning pointers / closures; the owner of the
 * registered objects (normally rpc::DaggerSystem) must outlive it.
 */

#ifndef DAGGER_SIM_METRICS_HH
#define DAGGER_SIM_METRICS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hh"

namespace dagger::sim {

/** Entry visibility in the legacy text report (JSON always shows all). */
enum class MetricText : std::uint8_t {
    Show, ///< rendered by renderText()
    Hide, ///< JSON-only (detail counters the legacy report never printed)
};

/** A flat, ordered collection of named metrics. */
class MetricRegistry
{
  public:
    enum class Kind : std::uint8_t {
        Counter,   ///< monotonically increasing sim::Counter
        IntGauge,  ///< computed integral value
        Gauge,     ///< computed floating-point value
        Histogram, ///< sim::Histogram
        Section,   ///< text-report section header (no value)
    };

    struct Entry
    {
        Kind kind;
        std::string name;  ///< full hierarchical dotted name
        std::string label; ///< text-report display label
        MetricText text = MetricText::Show;
        const Counter *counter = nullptr;
        const Histogram *histogram = nullptr;
        std::function<std::uint64_t()> intGauge;
        std::function<double()> gauge;
        std::string title; ///< Section only: the header line
    };

    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * Register a counter under @p name.  @p label overrides the text
     * label (defaults to the last dotted component of @p name).
     * Duplicate full names assert.
     */
    void addCounter(std::string name, const Counter &c,
                    MetricText text = MetricText::Show,
                    std::string label = {});

    /** Register a histogram (text renders "<label>_p50"). */
    void addHistogram(std::string name, const Histogram &h,
                      MetricText text = MetricText::Show,
                      std::string label = {});

    /** Register a computed integral value. */
    void addIntGauge(std::string name, std::function<std::uint64_t()> fn,
                     MetricText text = MetricText::Show,
                     std::string label = {});

    /** Register a computed floating-point value (text: %.4f). */
    void addGauge(std::string name, std::function<double()> fn,
                  MetricText text = MetricText::Show,
                  std::string label = {});

    /**
     * Register a text-report section header.  @p name scopes it (a
     * prefix walk with that scope includes the header); @p title is
     * the verbatim, unindented header line.
     */
    void addSection(std::string name, std::string title);

    const std::vector<Entry> &entries() const { return _entries; }

    /** True if any entry's name equals @p name. */
    bool has(std::string_view name) const;

    /** Walk every entry (registration order), optionally scope-filtered. */
    void forEach(const std::function<void(const Entry &)> &fn,
                 std::string_view scope = {}) const;

    /**
     * Legacy text report: one "  label<pad>value" line per visible
     * entry, section headers unindented.  @p scope restricts the walk
     * to entries under that dotted prefix ("" = everything).
     */
    std::string renderText(std::string_view scope = {}) const;

    /**
     * JSON object mapping every metric's full name to its value.
     * Counters / int gauges render as integers, gauges as numbers,
     * histograms as {count,min,max,mean,p50,p90,p99}; sections are
     * skipped.  Deterministic: registration order, fixed formatting.
     */
    std::string renderJson(std::string_view scope = {}) const;

  private:
    /** True if @p name is the @p scope itself or lives under it. */
    static bool inScope(std::string_view name, std::string_view scope);

    Entry &add(Kind kind, std::string name, MetricText text,
               std::string label);

    std::vector<Entry> _entries;
};

/**
 * A cursor into a MetricRegistry carrying a dotted name prefix, so
 * components register relative names without knowing where they are
 * mounted ("node0.nic" + "rpcs_out" -> "node0.nic.rpcs_out").
 * Cheap to copy; sub() derives child scopes.
 */
class MetricScope
{
  public:
    MetricScope(MetricRegistry &registry, std::string prefix)
        : _registry(&registry), _prefix(std::move(prefix))
    {}

    /** Child scope: "<prefix>.<name>" (or just @p name at the root). */
    MetricScope
    sub(std::string_view name) const
    {
        return MetricScope(*_registry, join(name));
    }

    void
    counter(std::string_view name, const Counter &c,
            MetricText text = MetricText::Show, std::string label = {}) const
    {
        _registry->addCounter(join(name), c, text, std::move(label));
    }

    void
    histogram(std::string_view name, const Histogram &h,
              MetricText text = MetricText::Show,
              std::string label = {}) const
    {
        _registry->addHistogram(join(name), h, text, std::move(label));
    }

    void
    intGauge(std::string_view name, std::function<std::uint64_t()> fn,
             MetricText text = MetricText::Show, std::string label = {}) const
    {
        _registry->addIntGauge(join(name), std::move(fn), text,
                               std::move(label));
    }

    void
    gauge(std::string_view name, std::function<double()> fn,
          MetricText text = MetricText::Show, std::string label = {}) const
    {
        _registry->addGauge(join(name), std::move(fn), text,
                            std::move(label));
    }

    /** Section header scoped at this prefix. */
    void
    section(std::string title) const
    {
        _registry->addSection(_prefix, std::move(title));
    }

    const std::string &prefix() const { return _prefix; }
    MetricRegistry &registry() const { return *_registry; }

  private:
    std::string
    join(std::string_view name) const
    {
        if (_prefix.empty())
            return std::string(name);
        std::string full = _prefix;
        full += '.';
        full += name;
        return full;
    }

    MetricRegistry *_registry;
    std::string _prefix;
};

/** Escape a string for inclusion in a JSON document (no quotes added). */
std::string jsonEscape(std::string_view s);

/** Format a double the way the JSON renderers do (shortest round-trip-ish). */
std::string jsonNumber(double v);

} // namespace dagger::sim

#endif // DAGGER_SIM_METRICS_HH
