#include "sim/barrier.hh"

#include "sim/check.hh"

namespace dagger::sim {

RoundBarrier::RoundBarrier(unsigned parties) : _parties(parties)
{
    dagger_assert(parties >= 1, "barrier needs at least one party");
}

void
RoundBarrier::arriveAndWait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    const std::uint64_t gen = _generation;
    if (++_waiting == _parties) {
        _waiting = 0;
        ++_generation;
        lock.unlock();
        _cv.notify_all();
        return;
    }
    _cv.wait(lock, [this, gen] { return _generation != gen; });
}

} // namespace dagger::sim
