#include "sim/barrier.hh"

#include "sim/logging.hh"

namespace dagger::sim {

RoundBarrier::RoundBarrier(unsigned parties) : _parties(parties)
{
    dagger_assert(parties >= 1, "barrier needs at least one party");
}

void
RoundBarrier::arriveAndWait()
{
    const std::uint64_t phase = _phase.load(std::memory_order_acquire);
    if (_waiting.fetch_add(1, std::memory_order_acq_rel) + 1 == _parties) {
        // Last arrival: reset the count and flip the phase.  The flip
        // happens under the mutex so a parker that re-checks the
        // predicate before sleeping can never miss the notify.
        _waiting.store(0, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _phase.store(phase + 1, std::memory_order_release);
        }
        _cv.notify_all();
        return;
    }
    for (unsigned i = 0; i < kSpinIters; ++i) {
        if (_phase.load(std::memory_order_acquire) != phase) {
            _spins.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
    _parks.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(_mutex);
    _cv.wait(lock, [&] {
        return _phase.load(std::memory_order_acquire) != phase;
    });
}

} // namespace dagger::sim
