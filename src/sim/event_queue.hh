/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are ordered by (tick, priority, insertion sequence), so two runs
 * with the same schedule order produce identical execution orders.  The
 * whole simulation runs on one OS thread; simulated concurrency (CPU
 * cores, NIC pipeline stages, the switch) is expressed purely as events.
 *
 * Internally the queue is a cascading calendar scheduler (docs/PERF.md)
 * with three levels:
 *
 *  1. a bucketed timing wheel (kWheelBuckets buckets of 2^kBucketBits
 *     ticks; unsorted append, sorted once when the scan reaches the
 *     bucket) holding ONLY events of the current *frame* — the aligned
 *     span of kWheelBuckets buckets the simulation clock sits in;
 *  2. kFrames unsorted per-frame vectors for events in later frames
 *     (append is O(1); a frame's events are bulk-admitted — "cascaded"
 *     — into the wheel exactly once, when that frame becomes current);
 *  3. one far-future heap for everything beyond the frame horizon
 *     (~1 ms); its events migrate down when their frame arrives.
 *
 * The aligned-frame split is what makes pops cheap: every level-2/3
 * event is in a strictly later frame than every wheel event, so the
 * wheel minimum IS the global minimum and a pop never merges across
 * levels, never sifts a many-thousand-entry heap, and only pays for a
 * scan plus a small in-bucket sift.  Event records are carved from a
 * free-list pool and carry a small-buffer EventClosure, so
 * steady-state scheduling of the member-function + `this` callbacks
 * that dominate the NIC/fabric models performs no heap allocation.
 * The heaps order 24-byte (tick, tie, pointer) entries whose key is
 * stored inline, so a sift touches only the contiguous heap array and
 * never chases the pooled Event.
 *
 * The dispatch order is provably identical to the old single binary
 * heap: within the current frame distinct absolute buckets map to
 * distinct slots (so the forward scan attributes each slot to exactly
 * one bucket), a sorted bucket yields its events in (tick, priority,
 * seq) order, and cascading is pure data movement that happens before
 * any same-frame event can run.  Because the (tick, priority, seq)
 * keys are all distinct, the pop order is a property of the key set
 * alone — never of container layout or cascade order.
 */

#ifndef DAGGER_SIM_EVENT_QUEUE_HH
#define DAGGER_SIM_EVENT_QUEUE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_closure.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace dagger::sim {

/** Event callback type: move-only, 48 B of inline storage. */
using EventFn = EventClosure;

/**
 * Scheduling priority; lower values run first among same-tick events.
 * The defaults below keep hardware "before" software within a tick,
 * mirroring how the NIC commits ring entries before a polling core
 * could observe them.
 */
enum class Priority : std::uint32_t {
    Hardware = 0,
    Default = 100,
    Software = 200,
    Stats = 1000,
};

/**
 * Spill hook: receives admissions at/after the installed horizon (see
 * EventQueue::setSpillHorizon).  A plain function pointer plus context
 * keeps the hot schedule path free of std::function indirection.
 */
using SpillFn = void (*)(void *ctx, Tick when, EventFn &&fn,
                         Priority prio);

/**
 * The central event queue.  One instance per simulation.
 */
class EventQueue
{
  public:
    /** log2 of the wheel bucket width: 2^12 ps ≈ 4.1 ns per bucket. */
    static constexpr unsigned kBucketBits = 12;
    /** Bucket count (power of two); one frame ≈ 16.8 µs of sim time. */
    static constexpr std::size_t kWheelBuckets = 4096;
    /** Level-2 frame count (power of two); horizon ≈ 1.07 ms. */
    static constexpr std::size_t kFrames = 64;
    /** log2 of the frame width in ticks: frame(when) = when >> this. */
    static constexpr unsigned kFrameShift =
        kBucketBits + std::countr_zero(kWheelBuckets);
    /** Events carved per pool block. */
    static constexpr std::size_t kPoolBlockEvents = 512;

    /** Allocator / scheduler counters, exported as sim.events.* gauges. */
    struct EngineStats
    {
        std::uint64_t poolHits = 0;    ///< events served from the free list
        std::uint64_t poolMisses = 0;  ///< events carved fresh from a block
        std::uint64_t poolBlocks = 0;  ///< pool blocks allocated
        std::uint64_t wheelAdmits = 0; ///< events admitted straight to the wheel
        std::uint64_t frameAdmits = 0; ///< events parked in a future frame
        std::uint64_t heapAdmits = 0;  ///< events admitted to the far heap
        std::uint64_t maxPending = 0;  ///< high-water mark of pending()
    };

    EventQueue() : _buckets(kWheelBuckets), _frames(kFrames) {}
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    schedule(TickDelta delay, EventFn &&fn,
             Priority prio = Priority::Default)
    {
        scheduleAt(_now + delay, std::move(fn), prio);
    }

    /**
     * Schedule @p fn at absolute tick @p when (>= now).
     *
     * Takes the closure by rvalue reference (EventFn is move-only, so
     * every caller already passes a temporary or a moved lvalue): the
     * callable is then move-constructed exactly once, straight into the
     * pooled event slot, instead of relocating through two by-value
     * parameters on its way there.
     */
    void scheduleAt(Tick when, EventFn &&fn,
                    Priority prio = Priority::Default);

    /** True when no events remain. */
    bool
    empty() const
    {
        return _wheelCount == 0 && _frameCount == 0 && _far.empty();
    }

    /** Number of pending events. */
    std::size_t
    pending() const
    {
        return _wheelCount + _frameCount + _far.size();
    }

    /** Total events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /** Engine counters (monotonic; see EngineStats). */
    const EngineStats &stats() const { return _stats; }

    /**
     * Run the single earliest event.
     * @retval true an event ran; false the queue was empty.
     */
    bool runOne();

    /**
     * Dispatch priority of the event currently being executed, as the
     * raw integer key (see Priority).  Zero (Hardware) outside of any
     * handler — the sharded engine stamps events scheduled from setup
     * code as "before everything at this tick", which is where a
     * sequential run would have placed them.
     */
    std::uint32_t currentPriority() const { return _curPrio; }

    // -------- sharded-engine hooks (sharded_engine.hh) ---------------
    //
    // A shard queue executes windows of [T, T+W).  Admissions at or
    // beyond the window end are diverted to the owning Shard through
    // the spill hook so they can be re-admitted at the next barrier in
    // globally stamped order; see mailbox.hh for why.  With no horizon
    // installed (the default, and always in single-queue mode) the
    // hook costs one always-false compare on the schedule path.

    /** Divert admissions at/after @p horizon to @p fn. */
    void
    setSpillHorizon(Tick horizon, SpillFn fn, void *ctx)
    {
        _spillHorizon = horizon;
        _spillFn = fn;
        _spillCtx = ctx;
    }

    /** Remove the spill horizon (all admissions go to the queue). */
    void
    clearSpillHorizon()
    {
        _spillHorizon = UINT64_MAX;
        _spillFn = nullptr;
        _spillCtx = nullptr;
    }

    /**
     * Run every event strictly ordered before (@p when, @p prio) —
     * i.e. earlier ticks, plus same-tick events of stricter priority —
     * then advance the clock to exactly @p when.  The sharded engine
     * uses this to interleave cross-shard state applications with this
     * queue's own events at their sequential position.
     */
    void runWhileBefore(Tick when, std::uint32_t prio);

    /**
     * A lower bound on the tick of the earliest pending event:
     * bucket-exact when the wheel holds events, frame-start / heap-top
     * granular otherwise, and never below now().  UINT64_MAX when
     * empty.  Read-only; used for idle skip-ahead across shards.
     */
    Tick nextEventLowerBound() const;

    /**
     * Run events until simulated time reaches @p when (inclusive of
     * events at exactly @p when) or the queue drains.  Time is advanced
     * to @p when even if the queue drains earlier.
     */
    void runUntil(Tick when);

    /** Run for a relative window. */
    void runFor(TickDelta window) { runUntil(_now + window); }

    /** Drain the queue completely (use in tests; unbounded). */
    void runAll(std::uint64_t max_events = UINT64_MAX);

  private:
    /**
     * Pooled event record: only the payload lives here.  The ordering
     * key is carried by the HeapEntry that points at it, so heap sifts
     * never touch this (cache-cold) storage.  A slot is either *live*
     * (the `fn` member holds the pending closure) or *free* (the
     * `nextFree` member links it into the free list) — overlapping the
     * two keeps the record at exactly one cache line, so the one cold
     * read a pop must do (the closure was written thousands of events
     * ago) costs a single line fill.  alloc/release switch the active
     * member explicitly with placement new / destructor calls.
     */
    union alignas(64) Event {
        Event() : nextFree(nullptr) {}
        ~Event() {}
        EventFn fn;
        Event *nextFree;
    };
    static_assert(sizeof(Event) == 64, "event slot is one cache line");

    /**
     * Heap element: the full (tick, priority, seq) key inline plus the
     * payload pointer.  `tie` packs (priority << 48) | seq — priorities
     * fit 16 bits (max enumerator is 1000) and 2^48 insertions exceed
     * any plausible run — so one integer compare resolves the whole
     * same-tick tie-break and lexicographic (when, tie) equals the
     * documented (tick, priority, seq) order exactly.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t tie;
        Event *ev;
    };

    /** Bits reserved for seq in the packed tie key. */
    static constexpr unsigned kSeqBits = 48;

    /** Strict (tick, priority, seq) order — the one total order every
     *  container here agrees on. */
    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.tie < b.tie;
    }

    /** push_heap/pop_heap comparator: max-heap on "later" keeps the
     *  earliest event at front(). */
    struct LaterEntry
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            return before(b, a);
        }
    };

    Event *allocEvent();
    void releaseEvent(Event *ev) noexcept;

    /** Push @p entry into its wheel bucket (must be in _curFrame). */
    void admitWheel(const HeapEntry &entry);

    /**
     * Make the earliest nonempty frame that starts at or before
     * @p limit current, cascading its parked events (and any far-heap
     * events of that frame) into the wheel.  Returns true when the
     * wheel holds events afterwards.
     */
    bool refill(Tick limit);

    /** Earliest nonempty wheel bucket, or nullptr; advances _scanAbs. */
    std::vector<HeapEntry> *peekWheel();

    /**
     * Run the earliest event if its key is strictly before
     * (@p limit, @p tie_bound): an earlier tick, or the same tick with
     * a smaller packed (priority, seq) key.
     */
    bool stepBefore(Tick limit, std::uint64_t tie_bound);

    /** Run the earliest event if its tick is <= @p limit. */
    bool
    step(Tick limit)
    {
        // Every real tie key is below UINT64_MAX (priorities fit 16
        // bits), so this bound admits all events at the limit tick.
        return stepBefore(limit, UINT64_MAX);
    }

    Tick _now = 0;
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;
    std::uint32_t _curPrio = 0;

    // Spill hook (sharded engine only); UINT64_MAX = no horizon.
    Tick _spillHorizon = UINT64_MAX;
    SpillFn _spillFn = nullptr;
    void *_spillCtx = nullptr;

    // Cascading scheduler state.  The wheel (_buckets) holds only
    // events whose frame (when >> kFrameShift) equals _curFrame;
    // _scanAbs is an absolute bucket number with the invariant that no
    // nonempty bucket lies below it, so the wheel scan is amortized
    // O(1) per pop.  _frames[f & (kFrames-1)] parks events of future
    // frame f unsorted; _far holds everything at least kFrames frames
    // out.  refill() keeps _curFrame <= frame(_now) at every admission,
    // which is what lets frame index alone decide the level.
    std::vector<std::vector<HeapEntry>> _buckets;
    std::size_t _wheelCount = 0;
    std::uint64_t _scanAbs = 0;
    /** Absolute bucket the scan has sorted (descending); UINT64_MAX
     *  until the first pop.  Buckets below it may be unsorted. */
    std::uint64_t _sortedAbs = UINT64_MAX;
    std::uint64_t _curFrame = 0;
    std::vector<std::vector<HeapEntry>> _frames;
    std::size_t _frameCount = 0;
    std::vector<HeapEntry> _far;

    // Event pool: bump allocation within blocks, recycled through an
    // intrusive free list.  Blocks are never returned to the OS while
    // the queue lives, so Event pointers stay stable.
    std::vector<std::unique_ptr<Event[]>> _blocks;
    std::size_t _blockUsed = 0;
    Event *_freeList = nullptr;

    EngineStats _stats;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_EVENT_QUEUE_HH
