/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are ordered by (tick, priority, insertion sequence), so two runs
 * with the same schedule order produce identical execution orders.  The
 * whole simulation runs on one OS thread; simulated concurrency (CPU
 * cores, NIC pipeline stages, the switch) is expressed purely as events.
 */

#ifndef DAGGER_SIM_EVENT_QUEUE_HH
#define DAGGER_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/time.hh"

namespace dagger::sim {

/** Event callback type. */
using EventFn = std::function<void()>;

/**
 * Scheduling priority; lower values run first among same-tick events.
 * The defaults below keep hardware "before" software within a tick,
 * mirroring how the NIC commits ring entries before a polling core
 * could observe them.
 */
enum class Priority : std::uint32_t {
    Hardware = 0,
    Default = 100,
    Software = 200,
    Stats = 1000,
};

/**
 * The central event queue.  One instance per simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    schedule(TickDelta delay, EventFn fn,
             Priority prio = Priority::Default)
    {
        scheduleAt(_now + delay, std::move(fn), prio);
    }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, EventFn fn,
                    Priority prio = Priority::Default);

    /** True when no events remain. */
    bool empty() const { return _heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return _heap.size(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Run the single earliest event.
     * @retval true an event ran; false the queue was empty.
     */
    bool runOne();

    /**
     * Run events until simulated time reaches @p when (inclusive of
     * events at exactly @p when) or the queue drains.  Time is advanced
     * to @p when even if the queue drains earlier.
     */
    void runUntil(Tick when);

    /** Run for a relative window. */
    void runFor(TickDelta window) { runUntil(_now + window); }

    /** Drain the queue completely (use in tests; unbounded). */
    void runAll(std::uint64_t max_events = UINT64_MAX);

  private:
    struct Event
    {
        Tick when;
        std::uint32_t prio;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    Tick _now = 0;
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;
    std::priority_queue<Event, std::vector<Event>, Later> _heap;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_EVENT_QUEUE_HH
