#include "sim/rng.hh"

#include "sim/logging.hh"

namespace dagger::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : _s)
        word = splitmix64(sm);
    _haveSpare = false;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    dagger_assert(bound > 0, "Rng::range with zero bound");
    // Lemire's nearly-divisionless method would be faster; the simple
    // rejection loop keeps the output identical on all platforms.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::normal(double mean, double stddev)
{
    if (_haveSpare) {
        _haveSpare = false;
        return mean + stddev * _spare;
    }
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    _spare = v * mul;
    _haveSpare = true;
    return mean + stddev * u * mul;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta,
                                   std::uint64_t seed)
    : _n(n), _theta(theta), _rng(seed)
{
    dagger_assert(n > 0, "ZipfianGenerator over empty key space");
    dagger_assert(theta >= 0.0 && theta < 1.0,
                  "Zipf theta must be in [0,1), got ", theta);
    _zetan = zeta(n, theta);
    _alpha = 1.0 / (1.0 - theta);
    const double zeta2 = zeta(2, theta);
    _eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / _zetan);
}

double
ZipfianGenerator::zeta(std::uint64_t n, double theta) const
{
    // Exact sum for small n; for the paper's 10M/200M key spaces use the
    // Euler–Maclaurin approximation so construction stays O(1)-ish.
    constexpr std::uint64_t kExactLimit = 1u << 20;
    double sum = 0.0;
    if (n <= kExactLimit) {
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        return sum;
    }
    for (std::uint64_t i = 1; i <= kExactLimit; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    const double a = static_cast<double>(kExactLimit);
    const double b = static_cast<double>(n);
    // Integral of x^-theta from a to b plus endpoint correction.
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
           (1.0 - theta);
    sum += 0.5 * (std::pow(b, -theta) - std::pow(a, -theta));
    return sum;
}

std::uint64_t
ZipfianGenerator::next()
{
    const double u = _rng.uniform();
    const double uz = u * _zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, _theta))
        return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(_n) *
        std::pow(_eta * u - _eta + 1.0, _alpha));
    return idx >= _n ? _n - 1 : idx;
}

} // namespace dagger::sim
