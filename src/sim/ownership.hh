/**
 * @file
 * Runtime twin of the DAGGER_OWNED_BY(domain) annotation (check.hh).
 *
 * The sharded engine (sharded_engine.hh) is correct only if every
 * piece of domain-owned mutable state is touched exclusively from its
 * owning shard while a round is executing.  tools/dagger_lint checks
 * that statically; this header checks it dynamically in
 * DAGGER_OWNERSHIP_AUDIT builds:
 *
 *  - The engine publishes a thread-local execution context (engine
 *    identity, executing shard, phase, shard queue) around every
 *    parallel window and the serial phase.
 *
 *  - An OwnershipGuard embedded in an owned object is bound once to
 *    its owning shard (DaggerSystem::addNode / CciPort::bindHost /
 *    TorSwitch::bindPort).  OwnershipGuard::check() then panics — with
 *    owning shard, executing shard, phase, and simulation tick — when
 *    the executing shard differs from the owner.  Event order is
 *    deterministic, so a violating run fails at the same tick with the
 *    same message on every same-seed run, unlike a TSan race report.
 *
 * Outside engine rounds (construction, wiring, metrics rendering,
 * single-queue systems) no context is published and every check
 * passes.  Without DAGGER_OWNERSHIP_AUDIT everything here compiles to
 * empty inline no-ops.
 */

#ifndef DAGGER_SIM_OWNERSHIP_HH
#define DAGGER_SIM_OWNERSHIP_HH

namespace dagger::sim {

class EventQueue;

#ifdef DAGGER_OWNERSHIP_AUDIT

namespace audit {

/** What this thread is executing right now, published by the engine. */
struct ExecContext
{
    const void *engine = nullptr; ///< identity tag; null = no round active
    unsigned shard = 0;           ///< executing shard id
    bool parallel = false;        ///< parallel window vs serial phase
    const EventQueue *queue = nullptr; ///< executing shard's queue (tick)

    bool active() const { return engine != nullptr; }
};

/** This thread's current context (inactive outside engine rounds). */
const ExecContext &current();

} // namespace audit

/**
 * Tags one owned object with its owning shard; check() panics on
 * access from any other shard while a round is executing.
 */
class OwnershipGuard
{
  public:
    /** Bind to the owning shard of @p engine; idempotent re-wiring. */
    void
    bind(const void *engine, unsigned shard)
    {
        _engine = engine;
        _shard = shard;
    }

    bool bound() const { return _engine != nullptr; }
    unsigned owner() const { return _shard; }

    /**
     * Assert the calling thread's executing shard owns this object.
     * @p what names the state for the failure message.  No-op when
     * unbound, outside rounds, or under a different engine.
     */
    void check(const char *what) const;

  private:
    const void *_engine = nullptr;
    unsigned _shard = 0;
};

/**
 * RAII context publication for the engine's round phases.  Saves and
 * restores the previous context, so nesting (multiplexed windows on
 * the coordinator) behaves.
 */
class ScopedExecContext
{
  public:
    ScopedExecContext(const void *engine, unsigned shard, bool parallel,
                      const EventQueue *queue);
    ~ScopedExecContext();
    ScopedExecContext(const ScopedExecContext &) = delete;
    ScopedExecContext &operator=(const ScopedExecContext &) = delete;

  private:
    audit::ExecContext _prev;
};

#else // !DAGGER_OWNERSHIP_AUDIT

class OwnershipGuard
{
  public:
    void bind(const void *, unsigned) {}
    bool bound() const { return false; }
    unsigned owner() const { return 0; }
    void check(const char *) const {}
};

class ScopedExecContext
{
  public:
    ScopedExecContext(const void *, unsigned, bool, const EventQueue *) {}
};

#endif // DAGGER_OWNERSHIP_AUDIT

} // namespace dagger::sim

#endif // DAGGER_SIM_OWNERSHIP_HH
