/**
 * @file
 * Small-buffer, move-only event callback.
 *
 * The DES hot path schedules millions of closures per simulated
 * second, and almost all of them are a member-function call bound to a
 * `this` pointer plus a word or two of arguments ([this], [this, key],
 * [this, flow], ...).  std::function copies, type-erases through a
 * 16-byte SBO, and heap-allocates everything bigger; EventClosure
 * instead guarantees inline storage for any nothrow-movable callable
 * up to kInlineBytes (48 B), so steady-state scheduling never touches
 * the allocator.  Oversized callables (e.g. ones that capture a whole
 * RpcMessage) fall back to a single owned heap copy.
 *
 * Move-only on purpose: an event fires exactly once, and copyability
 * is what forced the old queue to deep-copy closures on every pop.
 * Constructing an EventClosure from an EventClosure rvalue is a plain
 * move (no re-wrap), so handing a completion callback onwards is free.
 */

#ifndef DAGGER_SIM_EVENT_CLOSURE_HH
#define DAGGER_SIM_EVENT_CLOSURE_HH

#include <cstddef>
#include <cstring>
#include <memory>
// <new> is needed for placement construction into the inline buffer
// and std::launder; the token-level linter flags the header name.
#include <new> // dagger-lint: allow(no-raw-new-in-sim)
#include <type_traits>
#include <utility>

namespace dagger::sim {

/** Type-erased, move-only `void()` callable with 48 B inline storage. */
class EventClosure
{
  public:
    /** Inline buffer size: fits a member pointer + `this` + 3 words. */
    static constexpr std::size_t kInlineBytes = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /** True when @p F is stored inline (no allocation on construction). */
    template <typename F>
    static constexpr bool
    fitsInline()
    {
        using D = std::decay_t<F>;
        return sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign &&
            std::is_nothrow_move_constructible_v<D>;
    }

    EventClosure() noexcept = default;

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, EventClosure> &&
                 std::is_invocable_r_v<void, std::decay_t<F> &>)
    EventClosure(F &&f)
    {
        using D = std::decay_t<F>;
        if constexpr (fitsInline<F>()) {
            // Placement-construct into the inline buffer: no ownership
            // is created here, so the raw-new lint rule does not apply.
            ::new (bufPtr()) D(std::forward<F>(f)); // dagger-lint: allow(no-raw-new-in-sim)
            _ops = &kInlineOps<D>;
        } else {
            // Oversized closure: one owned heap copy, released by
            // destroyHeap<D>.  make_unique keeps the allocation paired
            // with a deleter even if D's move constructor throws.
            *static_cast<D **>(bufPtr()) =
                std::make_unique<D>(std::forward<F>(f)).release();
            _ops = &kHeapOps<D>;
        }
    }

    EventClosure(EventClosure &&other) noexcept { moveFrom(other); }

    EventClosure &
    operator=(EventClosure &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventClosure(const EventClosure &) = delete;
    EventClosure &operator=(const EventClosure &) = delete;

    ~EventClosure() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return _ops != nullptr; }

    /** True when the held callable lives in the inline buffer. */
    bool inlineStored() const noexcept { return _ops && _ops->inline_stored; }

    /** Invoke the callable (undefined when empty; the queue asserts). */
    void operator()() const { _ops->invoke(bufPtr()); }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct dst's storage from src's, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
        bool inline_stored;
        /** Relocation is a plain byte copy (trivially copyable inline
         *  callable, or the heap path's owning pointer).  The hot path
         *  tests this flag and inlines a fixed-size memcpy instead of
         *  dispatching through `relocate` — moving an event is then a
         *  branch plus a few vector stores, no indirect call. */
        bool trivial_relocate;
        /** Destruction is a no-op (trivially destructible inline
         *  callable); lets `reset` skip the indirect `destroy` call. */
        bool trivial_destroy;
    };

    template <typename D>
    static D *
    inlineObj(void *storage) noexcept
    {
        return std::launder(static_cast<D *>(storage));
    }

    template <typename D>
    static void
    invokeInline(void *storage)
    {
        (*inlineObj<D>(storage))();
    }

    template <typename D>
    static void
    relocateInline(void *dst, void *src) noexcept
    {
        D *obj = inlineObj<D>(src);
        // Relocation within pre-sized buffers; no allocation.
        ::new (dst) D(std::move(*obj)); // dagger-lint: allow(no-raw-new-in-sim)
        obj->~D();
    }

    template <typename D>
    static void
    destroyInline(void *storage) noexcept
    {
        inlineObj<D>(storage)->~D();
    }

    template <typename D>
    static void
    invokeHeap(void *storage)
    {
        (**static_cast<D **>(storage))();
    }

    static void
    relocateHeap(void *dst, void *src) noexcept
    {
        *static_cast<void **>(dst) = *static_cast<void **>(src);
    }

    template <typename D>
    static void
    destroyHeap(void *storage) noexcept
    {
        delete *static_cast<D **>(storage);
    }

    // Trivially copyable callables (a captured `this` plus value
    // arguments — essentially every hot-path event) relocate by memcpy
    // and destroy as a no-op.  The heap path's storage is one owning
    // pointer, so relocation is also a byte copy there, but destroy
    // must still run to free the callable.
    template <typename D>
    static constexpr Ops kInlineOps{&invokeInline<D>, &relocateInline<D>,
                                    &destroyInline<D>, true,
                                    std::is_trivially_copyable_v<D>,
                                    std::is_trivially_destructible_v<D>};

    template <typename D>
    static constexpr Ops kHeapOps{&invokeHeap<D>, &relocateHeap,
                                  &destroyHeap<D>, false, true, false};

    void *bufPtr() const noexcept { return _storage; }

    void
    moveFrom(EventClosure &other) noexcept
    {
        _ops = other._ops;
        if (_ops) {
            if (_ops->trivial_relocate)
                std::memcpy(_storage, other._storage, kInlineBytes);
            else
                _ops->relocate(bufPtr(), other.bufPtr());
            other._ops = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (_ops) {
            if (!_ops->trivial_destroy)
                _ops->destroy(bufPtr());
            _ops = nullptr;
        }
    }

    /** mutable: invoking through a const EventClosure may mutate the
     *  callable's own captured state, like std::function does. */
    alignas(kInlineAlign) mutable std::byte _storage[kInlineBytes];
    const Ops *_ops = nullptr;
};

} // namespace dagger::sim

#endif // DAGGER_SIM_EVENT_CLOSURE_HH
