/**
 * @file
 * Runtime invariant checks for the discrete-event core.
 *
 * dagger_assert() (logging.hh) is always on and guards conditions that
 * are cheap and externally reachable (bad user config, API misuse).
 * The macros here guard *internal* model invariants — monotonic event
 * time, transaction-window bounds, ring occupancy arithmetic — that
 * are hot enough that Release builds compile them out entirely:
 *
 *   DAGGER_DCHECK(cond, ...)     debug check on a hot path; no side
 *                                effects allowed in the condition.
 *   DAGGER_INVARIANT(cond, ...)  named model invariant; same build
 *                                gating, but reads as documentation of
 *                                a paper-level property (e.g. "<=128
 *                                outstanding CCI-P transactions",
 *                                §4.4) and should cite context.
 *
 * Both abort with file/line and a formatted message when
 * DAGGER_ENABLE_CHECKS is defined — which CMake sets for Debug builds
 * and for every DAGGER_SANITIZE preset — and expand to nothing
 * otherwise.  The condition is NOT evaluated in Release, so it must be
 * side-effect free.
 */

#ifndef DAGGER_SIM_CHECK_HH
#define DAGGER_SIM_CHECK_HH

#include "sim/logging.hh"

#ifdef DAGGER_ENABLE_CHECKS

#define DAGGER_DCHECK(cond, ...) \
    do { \
        if (!(cond)) { \
            ::dagger::sim::detail::panicImpl(__FILE__, __LINE__, \
                ::dagger::sim::detail::format("DCHECK '" #cond \
                    "' failed. ", ##__VA_ARGS__)); \
        } \
    } while (0)

#define DAGGER_INVARIANT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::dagger::sim::detail::panicImpl(__FILE__, __LINE__, \
                ::dagger::sim::detail::format("invariant '" #cond \
                    "' violated. ", ##__VA_ARGS__)); \
        } \
    } while (0)

#else

#define DAGGER_DCHECK(cond, ...) \
    do { \
    } while (0)

#define DAGGER_INVARIANT(cond, ...) \
    do { \
    } while (0)

#endif // DAGGER_ENABLE_CHECKS

/**
 * Shard-ownership annotation for domain-owned mutable state.
 *
 * Placed in front of a member declaration, it names the execution
 * domain that may touch the member during a sharded round:
 *
 *   DAGGER_OWNED_BY(node)   std::uint64_t _forwarded = 0;
 *   DAGGER_OWNED_BY(fabric) std::vector<std::deque<Txn>> _queues;
 *
 * Domains: `node` (a DaggerNode's parallel shard: NIC pipeline, rings,
 * ToR-port egress, CCI window), `fabric` (shard 0: channel arbitration,
 * serial-phase state), `engine` (sharded-engine internals, owned by the
 * coordinator/worker protocol itself).  The macro expands to nothing —
 * it exists for tools/dagger_lint's whole-program ownership pass and
 * for human readers; sim::OwnershipGuard (sim/ownership.hh) is the
 * runtime twin.  Grammar and rule semantics: docs/ANALYSIS.md.
 */
#define DAGGER_OWNED_BY(domain)

#endif // DAGGER_SIM_CHECK_HH
