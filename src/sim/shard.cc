#include "sim/shard.hh"

#include <algorithm>

#include "sim/check.hh"

namespace dagger::sim {

namespace {

/// Min-heap on target tick: std::*_heap build max-heaps, so invert.
inline bool
whenAfter(const CrossEvent &a, const CrossEvent &b)
{
    return a.when > b.when;
}

} // namespace

void
Shard::pushPending(CrossEvent &&ev)
{
    _pending.push_back(std::move(ev));
    std::push_heap(_pending.begin(), _pending.end(), whenAfter);
}

void
Shard::admit([[maybe_unused]] Tick start, Tick end)
{
    if (_pending.empty() || _pending.front().when >= end)
        return;
    _admitBatch.clear();
    // Pop only the due prefix of the heap; events beyond the window
    // stay put and are never rescanned (the old flat-vector pending
    // list recompacted every deferred event every round, which
    // dominated the sharded engine's overhead on spill-heavy loads).
    do {
        std::pop_heap(_pending.begin(), _pending.end(), whenAfter);
        _admitBatch.push_back(std::move(_pending.back()));
        _pending.pop_back();
    } while (!_pending.empty() && _pending.front().when < end);
    auto inStampOrder = [](const CrossEvent &a, const CrossEvent &b) {
        return stampBefore(a.stamp, b.stamp);
    };
    // Single-sender batches usually pop already stamp-sorted.
    if (!std::is_sorted(_admitBatch.begin(), _admitBatch.end(),
                        inStampOrder)) {
        std::sort(_admitBatch.begin(), _admitBatch.end(), inStampOrder);
    }
    for (auto &ev : _admitBatch) {
        DAGGER_DCHECK(ev.when >= start,
                      "cross event admitted below its window start");
        dagger_assert(ev.when >= _queue.now(),
                      "cross event admitted into this shard's past");
        _queue.scheduleAt(ev.when, std::move(ev.fn), ev.prio);
    }
    _admitBatch.clear();
}

void
Shard::spill(Tick when, EventFn &&fn, Priority prio)
{
    ++_stats.spills;
    pushPending(CrossEvent{when, prio, nextStamp(), std::move(fn)});
}

std::size_t
Shard::flushCrossInto(unsigned to, SpscMailbox<CrossEvent> &box)
{
    auto &stage = _stageCross[to];
    const std::size_t n = stage.size();
    if (n == 0)
        return 0;
    box.pushBatch(stage);
    ++_stats.batchFlushes;
    _stats.flushedCross += n;
    if (to == 0)
        _stats.flushedTo0 += n;
    return n;
}

std::size_t
Shard::flushAppliesInto(SpscMailbox<CrossEvent> &box)
{
    const std::size_t n = _stageApply.size();
    if (n == 0)
        return 0;
    box.pushBatch(_stageApply);
    ++_stats.batchFlushes;
    return n;
}

} // namespace dagger::sim
