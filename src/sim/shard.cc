#include "sim/shard.hh"

#include <algorithm>

#include "sim/check.hh"

namespace dagger::sim {

void
Shard::admit(Tick end)
{
    if (_pending.empty())
        return;
    _admitBatch.clear();
    std::size_t keep = 0;
    for (auto &ev : _pending) {
        if (ev.when < end)
            _admitBatch.push_back(std::move(ev));
        else
            _pending[keep++] = std::move(ev);
    }
    _pending.resize(keep);
    if (_admitBatch.empty())
        return;
    std::sort(_admitBatch.begin(), _admitBatch.end(),
              [](const CrossEvent &a, const CrossEvent &b) {
                  return stampBefore(a.stamp, b.stamp);
              });
    for (auto &ev : _admitBatch) {
        dagger_assert(ev.when >= _queue.now(),
                      "cross event admitted into this shard's past");
        _queue.scheduleAt(ev.when, std::move(ev.fn), ev.prio);
    }
    _admitBatch.clear();
}

void
Shard::spill(Tick when, EventFn &&fn, Priority prio)
{
    ++_stats.spills;
    _pending.push_back(CrossEvent{when, prio, nextStamp(), std::move(fn)});
}

Tick
Shard::pendingMin() const
{
    Tick min = UINT64_MAX;
    for (const auto &ev : _pending)
        if (ev.when < min)
            min = ev.when;
    return min;
}

} // namespace dagger::sim
