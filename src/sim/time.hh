/**
 * @file
 * Simulated time base for the Dagger discrete-event simulator.
 *
 * All simulated time is kept in integer picoseconds.  Picosecond
 * resolution lets us express both NIC clock cycles (5 ns at 200 MHz)
 * and sub-nanosecond CPU cost fractions without rounding drift.
 */

#ifndef DAGGER_SIM_TIME_HH
#define DAGGER_SIM_TIME_HH

#include <cstdint>

namespace dagger::sim {

/** Simulated time in picoseconds since simulation start. */
using Tick = std::uint64_t;

/** A time delta in picoseconds. */
using TickDelta = std::uint64_t;

constexpr Tick kPsPerNs = 1000ull;
constexpr Tick kPsPerUs = 1000ull * kPsPerNs;
constexpr Tick kPsPerMs = 1000ull * kPsPerUs;
constexpr Tick kPsPerSec = 1000ull * kPsPerMs;

/** Convert nanoseconds (fractional allowed) to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kPsPerNs) + 0.5);
}

/** Convert microseconds (fractional allowed) to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kPsPerUs) + 0.5);
}

/** Convert milliseconds (fractional allowed) to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kPsPerMs) + 0.5);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kPsPerNs);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kPsPerUs);
}

/** Convert ticks to (fractional) seconds. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kPsPerSec);
}

/**
 * Convert an event rate over a tick window into millions of events
 * per second.  Returns 0 for an empty window.
 */
constexpr double
ratePerSec(std::uint64_t events, Tick window)
{
    return window == 0
        ? 0.0
        : static_cast<double>(events) / ticksToSec(window);
}

} // namespace dagger::sim

#endif // DAGGER_SIM_TIME_HH
