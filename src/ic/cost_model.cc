#include "ic/cost_model.hh"

#include "sim/logging.hh"

namespace dagger::ic {

const char *
ifaceName(IfaceKind kind)
{
    switch (kind) {
      case IfaceKind::MmioWrite:
        return "MMIO";
      case IfaceKind::Doorbell:
        return "Doorbell";
      case IfaceKind::DoorbellBatch:
        return "DoorbellBatch";
      case IfaceKind::Upi:
        return "UPI";
      case IfaceKind::Cxl:
        return "CXL";
    }
    return "?";
}

Tick
hostTxCpuCost(IfaceKind kind, unsigned batch, const UpiCost &upi,
              const PcieCost &pcie)
{
    dagger_assert(batch >= 1, "batch factor must be >= 1");
    switch (kind) {
      case IfaceKind::MmioWrite:
        // Full payload pushed by the CPU; batching does not help MMIO.
        return pcie.cpuMmioPayloadCost;
      case IfaceKind::Doorbell:
        // Ring write plus one doorbell MMIO per request.
        return pcie.cpuRingWriteCost + pcie.cpuMmioCost;
      case IfaceKind::DoorbellBatch:
        // One doorbell MMIO amortized over the batch, plus one DMA
        // descriptor per request.
        return pcie.cpuRingWriteCost + pcie.cpuDescCost +
               pcie.cpuMmioCost / batch;
      case IfaceKind::Upi:
        // Pure memory write; bookkeeping consumed once per batch.
        return upi.cpuWriteCost + upi.cpuBookkeepCost / batch;
      case IfaceKind::Cxl:
        // Direct device write: no host-side buffer bookkeeping at all
        // (the NIC owns the buffer), just the uncached store.
        return upi.cxlCpuWriteCost;
    }
    dagger_panic("unreachable iface kind");
}

Tick
hostTxBaseLatency(IfaceKind kind, const UpiCost &upi, const PcieCost &pcie)
{
    switch (kind) {
      case IfaceKind::MmioWrite:
        return pcie.mmioDeliverLatency;
      case IfaceKind::Doorbell:
      case IfaceKind::DoorbellBatch:
        // Doorbell must reach the NIC, then the NIC DMA-reads the ring.
        return pcie.doorbellLatency + pcie.dmaReadLatency;
      case IfaceKind::Upi:
        return upi.fetchLatency;
      case IfaceKind::Cxl:
        return upi.cxlDeliverLatency;
    }
    dagger_panic("unreachable iface kind");
}

} // namespace dagger::ic
