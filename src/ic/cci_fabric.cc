#include "ic/cci_fabric.hh"

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/sharded_engine.hh"

namespace dagger::ic {

CciFabric::CciFabric(EventQueue &eq, IfaceKind kind, unsigned ports,
                     UpiCost upi, PcieCost pcie)
    : _eq(eq), _kind(kind), _upi(upi), _pcie(pcie),
      _toNic(eq,
             isMemoryInterconnect(kind) ? upi.lineService
                                        : pcie.lineService,
             isMemoryInterconnect(kind) ? upi.txnOverhead
                                        : pcie.txnOverhead,
             ports),
      _toHost(eq,
              isMemoryInterconnect(kind) ? upi.lineService
                                         : pcie.lineService,
              isMemoryInterconnect(kind) ? upi.txnOverhead
                                         : pcie.txnOverhead,
              ports),
      _maxOutstanding(isMemoryInterconnect(kind) ? upi.maxOutstanding
                                                 : pcie.maxOutstanding)
{
    _ports.reserve(ports);
    for (unsigned i = 0; i < ports; ++i)
        _ports.emplace_back(std::unique_ptr<CciPort>(new CciPort(*this, i)));
}

CciPort &
CciFabric::addPort()
{
    const unsigned id = _toNic.addPort();
    const unsigned id2 = _toHost.addPort();
    dagger_assert(id == id2 && id == _ports.size(),
                  "channel/port id drift");
    _ports.emplace_back(std::unique_ptr<CciPort>(new CciPort(*this, id)));
    if (_metricScope)
        registerPortMetrics(*_ports.back());
    return *_ports.back();
}

void
CciFabric::registerMetrics(sim::MetricScope scope)
{
    dagger_assert(!_metricScope, "fabric metrics registered twice");
    _metricScope = scope;
    // The two channel directions, in legacy report order.  The
    // utilization gauges are windowed over the whole simulated time.
    scope.gauge("to_nic.utilization",
                [this] { return _toNic.utilization(_eq.now()); },
                sim::MetricText::Show, "ccip_to_nic_utilization");
    scope.gauge("to_host.utilization",
                [this] { return _toHost.utilization(_eq.now()); },
                sim::MetricText::Show, "ccip_to_host_utilization");
    scope.intGauge("to_nic.lines",
                   [this] { return _toNic.linesServiced(); },
                   sim::MetricText::Show, "ccip_lines_to_nic");
    scope.intGauge("to_host.lines",
                   [this] { return _toHost.linesServiced(); },
                   sim::MetricText::Show, "ccip_lines_to_host");
    scope.intGauge("to_nic.txns", [this] { return _toNic.txnsServiced(); },
                   sim::MetricText::Hide);
    scope.intGauge("to_host.txns", [this] { return _toHost.txnsServiced(); },
                   sim::MetricText::Hide);
    scope.intGauge("to_nic.busy_ticks",
                   [this] {
                       return static_cast<std::uint64_t>(_toNic.busyTicks());
                   },
                   sim::MetricText::Hide);
    scope.intGauge("to_host.busy_ticks",
                   [this] {
                       return static_cast<std::uint64_t>(_toHost.busyTicks());
                   },
                   sim::MetricText::Hide);
    for (auto &port : _ports)
        registerPortMetrics(*port);
}

void
CciFabric::registerPortMetrics(CciPort &port)
{
    std::string leaf = "port" + std::to_string(port.id());
    sim::MetricScope scope = _metricScope->sub(leaf);
    // Per-port transaction detail never appeared in the legacy report.
    scope.intGauge("fetch_txns",
                   [&port] { return port.fetchTxns(); },
                   sim::MetricText::Hide);
    scope.intGauge("post_txns", [&port] { return port.postTxns(); },
                   sim::MetricText::Hide);
    scope.intGauge("lines_fetched",
                   [&port] { return port.linesFetched(); },
                   sim::MetricText::Hide);
    scope.intGauge("lines_posted",
                   [&port] { return port.linesPosted(); },
                   sim::MetricText::Hide);
    scope.intGauge("stalls", [&port] { return port.stalls(); },
                   sim::MetricText::Hide);
}

CciPort &
CciFabric::port(unsigned i)
{
    dagger_assert(i < _ports.size(), "bad port index ", i);
    return *_ports[i];
}

Tick
CciFabric::hostTxCpuCost(unsigned batch) const
{
    return ic::hostTxCpuCost(_kind, batch, _upi, _pcie);
}

void
CciPort::bindHost(sim::ShardedEngine &engine, unsigned shard,
                  EventQueue &hostEq)
{
    dagger_assert(shard >= 1,
                  "CCI ports belong to node domains; shard 0 is the fabric");
    _engine = &engine;
    _shard = shard;
    _hostEq = &hostEq;
    _guard.bind(&engine, shard);
    // Both channel directions are shard-0 state shared by every port;
    // first bind wins, later binds re-tag identically.
    _fabric._toNic.ownershipGuard().bind(&engine, 0);
    _fabric._toHost.ownershipGuard().bind(&engine, 0);
}

EventQueue &
CciPort::hostEq()
{
    return _hostEq ? *_hostEq : _fabric._eq;
}

Tick
CciPort::hostPollPenalty() const
{
    // Only the UPI invalidation path polls; CXL writes push directly.
    if (_fabric.kind() != IfaceKind::Upi)
        return 0;
    return _pollMode == PollMode::LocalCache
        ? _fabric.upi().ownershipBounceCost
        : 0;
}

void
CciPort::fetch(unsigned lines, EventFn done)
{
    Tick extra = hostTxBaseLatency(_fabric.kind(), _fabric.upi(),
                                   _fabric.pcie());
    if (_fabric.kind() == IfaceKind::Upi && _pollMode == PollMode::Llc)
        extra += _fabric.upi().llcPollExtra;
    ++_fetchTxns;
    _linesFetched += lines;
    submit(Op{true, lines, extra, std::move(done)});
}

void
CciPort::post(unsigned lines, EventFn done)
{
    const Tick extra = isMemoryInterconnect(_fabric.kind())
        ? _fabric.upi().postLatency
        : _fabric.pcie().postLatency;
    ++_postTxns;
    _linesPosted += lines;
    submit(Op{false, lines, extra, std::move(done)});
}

void
CciPort::bookkeep(EventFn done)
{
    // Bookkeeping rides back piggybacked on read responses / posted
    // metadata: it costs delivery latency but no dedicated channel
    // occupancy (the paper pipelines it with in-flight requests,
    // §4.4).  CXL device buffers are NIC-owned: release is immediate.
    const Tick extra = _fabric.kind() == IfaceKind::Cxl ? 0
        : _fabric.kind() == IfaceKind::Upi
        ? _fabric.upi().bookkeepLatency
        : _fabric.pcie().postLatency;
    // Pass the completion straight through instead of wrapping it: an
    // EventClosure scheduled from an EventClosure rvalue is a plain
    // move, so the caller's inline storage survives end to end.  An
    // empty `done` still schedules a no-op so event counts (and thus
    // seq-number assignment) match the previous engine exactly.
    if (done)
        hostEq().schedule(extra, std::move(done), sim::Priority::Hardware);
    else
        hostEq().schedule(extra, [] {}, sim::Priority::Hardware);
}

void
CciPort::rawRead(EventFn done)
{
    // Idle reads are hardware-pipelined: no FSM transaction overhead.
    submit(Op{true, 1, _fabric.upi().fetchLatency, std::move(done), true});
}

void
CciPort::submit(Op op)
{
    DAGGER_DCHECK(op.lines > 0, "zero-line CCI-P op on port ", _id);
    _guard.check("ic::CciPort outstanding window");
    if (_inFlight >= _fabric._maxOutstanding) {
        ++_stalls;
        _pendingWindow.push_back(std::move(op));
        return;
    }
    issue(std::move(op));
}

void
CciPort::issue(Op op)
{
    ++_inFlight;
    // §4.4: a port may keep at most maxOutstanding (default 128) CCI-P
    // transactions in flight; anything above means the pending-window
    // bookkeeping in submit()/completed() has desynchronized.
    DAGGER_INVARIANT(_inFlight <= _fabric._maxOutstanding,
                     "port ", _id, " exceeded the outstanding-transaction "
                     "window: ", _inFlight, " > ",
                     _fabric._maxOutstanding);
    Channel &ch = op.to_nic ? _fabric._toNic : _fabric._toHost;
    const Tick extra = op.extra_latency;
    auto done = std::move(op.done);
    if (_engine) {
        // Sharded mode: channel arbitration state is owned by the
        // fabric domain, so hand the request over as an apply (it runs
        // at its exact sequential position in the serial phase).  The
        // grant fires in the fabric domain and crosses back with the
        // propagation latency, which is one of the latencies the
        // engine lookahead is derived from — so the hand-off is always
        // at least one window ahead.
        const unsigned lines = op.lines;
        const bool streamed = op.streamed;
        _engine->postApply(
            _shard,
            [this, &ch, lines, extra, streamed,
             done = std::move(done)]() mutable {
                ch.request(_id, lines,
                           [this, extra, done = std::move(done)]() mutable {
                               _engine->postCross(
                                   0, _shard, extra,
                                   [this, done = std::move(done)]() {
                                       completed();
                                       if (done)
                                           done();
                                   },
                                   sim::Priority::Hardware);
                           },
                           streamed);
            });
        return;
    }
    ch.request(_id, op.lines,
               [this, extra, done = std::move(done)]() mutable {
                   // Channel service finished; propagation takes `extra`.
                   _fabric._eq.schedule(extra,
                                        [this, done = std::move(done)]() {
                                            completed();
                                            if (done)
                                                done();
                                        },
                                        sim::Priority::Hardware);
               },
               op.streamed);
}

void
CciPort::completed()
{
    dagger_assert(_inFlight > 0, "completion without in-flight op");
    _guard.check("ic::CciPort outstanding window");
    --_inFlight;
    if (!_pendingWindow.empty()) {
        Op op = std::move(_pendingWindow.front());
        _pendingWindow.pop_front();
        issue(std::move(op));
    }
}

} // namespace dagger::ic
