#include "ic/channel.hh"

#include "sim/logging.hh"

namespace dagger::ic {

Channel::Channel(EventQueue &eq, Tick line_service, Tick txn_overhead,
                 unsigned ports)
    : _eq(eq), _lineService(line_service), _txnOverhead(txn_overhead),
      _queues(ports), _grants(ports, 0)
{
}

unsigned
Channel::addPort()
{
    _queues.emplace_back();
    _grants.push_back(0);
    return static_cast<unsigned>(_queues.size() - 1);
}

void
Channel::request(unsigned port, unsigned lines, EventFn done, bool streamed)
{
    dagger_assert(port < _queues.size(), "bad channel port ", port);
    dagger_assert(lines >= 1, "empty transaction");
    _guard.check("ic::Channel arbitration state");
    _queues[port].push_back(Txn{lines, std::move(done), streamed});
    if (!_busy)
        grantNext();
}

void
Channel::grantNext()
{
    // Guard against re-entrant grants: a completion callback that
    // (transitively) enqueues new work must not start a second
    // transaction while one is already in service.
    if (_busy)
        return;
    // Round-robin scan starting at _rrNext.
    const unsigned n = static_cast<unsigned>(_queues.size());
    for (unsigned i = 0; i < n; ++i) {
        const unsigned p = (_rrNext + i) % n;
        if (_queues[p].empty())
            continue;
        Txn txn = std::move(_queues[p].front());
        _queues[p].pop_front();
        ++_grants[p];
        _rrNext = (p + 1) % n;
        _busy = true;
        const Tick service = (txn.streamed ? 0 : _txnOverhead) +
                             txn.lines * _lineService;
        _busyTicks += service;
        _linesServiced += txn.lines;
        ++_txnsServiced;
        _inService = std::move(txn.done);
        _eq.schedule(service, [this] { serviceDone(); },
                     sim::Priority::Hardware);
        return;
    }
    _busy = false;
}

void
Channel::serviceDone()
{
    _busy = false;
    // Move the completion out first: it may request more work, which
    // would start the next transaction and overwrite _inService.
    EventFn done = std::move(_inService);
    if (done)
        done();
    grantNext();
}

} // namespace dagger::ic
