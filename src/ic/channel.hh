/**
 * @file
 * A serialized, port-fair interconnect channel.
 *
 * Models one direction of the CCI-P endpoint in the FPGA blue
 * bitstream: transactions from multiple NIC instances (ports) are
 * granted in round-robin order (the paper's PCIe/UPI arbiter,
 * Fig. 14) and occupy the channel for txnOverhead + lines *
 * lineService.
 */

#ifndef DAGGER_IC_CHANNEL_HH
#define DAGGER_IC_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/ownership.hh"
#include "sim/time.hh"

namespace dagger::ic {

using sim::EventFn;
using sim::EventQueue;
using sim::Tick;

/**
 * One direction of the interconnect endpoint with round-robin port
 * arbitration.
 */
class Channel
{
  public:
    /**
     * @param eq           simulation event queue
     * @param line_service endpoint occupancy per cache line
     * @param txn_overhead fixed occupancy per transaction
     * @param ports        number of arbitrated ports (NIC instances)
     */
    Channel(EventQueue &eq, Tick line_service, Tick txn_overhead,
            unsigned ports = 1);

    /**
     * Request service for a transaction of @p lines cache lines from
     * @p port.  @p done runs when the transaction's channel service
     * completes (propagation latency is added by the caller).
     */
    void request(unsigned port, unsigned lines, EventFn done,
                 bool streamed = false);

    /** Add one more arbitrated port; returns its index. */
    unsigned addPort();

    /** Total lines serviced. */
    std::uint64_t linesServiced() const { return _linesServiced; }

    /** Total transactions serviced. */
    std::uint64_t txnsServiced() const { return _txnsServiced; }

    /** Per-port grant counts (for arbiter fairness checks). */
    const std::vector<std::uint64_t> &grants() const { return _grants; }

    /** Ticks the channel spent busy. */
    Tick busyTicks() const { return _busyTicks; }

    /** Utilization over a window. */
    double
    utilization(Tick window) const
    {
        return window == 0
            ? 0.0
            : static_cast<double>(_busyTicks) / static_cast<double>(window);
    }

    /** Ownership audit tag; bound to shard 0 on a sharded system. */
    sim::OwnershipGuard &ownershipGuard() { return _guard; }

  private:
    struct Txn
    {
        unsigned lines;
        EventFn done;
        bool streamed; ///< no per-transaction overhead (pipelined reads)
    };

    void grantNext();
    void serviceDone();

    EventQueue &_eq;
    Tick _lineService;
    Tick _txnOverhead;
    // Arbitration state lives in the fabric/serial domain: node-side
    // ports reach it only through ShardedEngine::postApply (the grant
    // crosses back via postCross).
    DAGGER_OWNED_BY(fabric) std::vector<std::deque<Txn>> _queues;
    DAGGER_OWNED_BY(fabric) std::vector<std::uint64_t> _grants;
    DAGGER_OWNED_BY(fabric) unsigned _rrNext = 0;
    DAGGER_OWNED_BY(fabric) bool _busy = false;
    /** Completion of the transaction in service.  Parked here so the
     *  scheduled event captures only `this` and stays in EventClosure's
     *  inline buffer; at most one transaction is in service at a time. */
    DAGGER_OWNED_BY(fabric) EventFn _inService;
    DAGGER_OWNED_BY(fabric) std::uint64_t _linesServiced = 0;
    DAGGER_OWNED_BY(fabric) std::uint64_t _txnsServiced = 0;
    DAGGER_OWNED_BY(fabric) Tick _busyTicks = 0;
    sim::OwnershipGuard _guard;
};

} // namespace dagger::ic

#endif // DAGGER_IC_CHANNEL_HH
