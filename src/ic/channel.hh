/**
 * @file
 * A serialized, port-fair interconnect channel.
 *
 * Models one direction of the CCI-P endpoint in the FPGA blue
 * bitstream: transactions from multiple NIC instances (ports) are
 * granted in round-robin order (the paper's PCIe/UPI arbiter,
 * Fig. 14) and occupy the channel for txnOverhead + lines *
 * lineService.
 */

#ifndef DAGGER_IC_CHANNEL_HH
#define DAGGER_IC_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace dagger::ic {

using sim::EventFn;
using sim::EventQueue;
using sim::Tick;

/**
 * One direction of the interconnect endpoint with round-robin port
 * arbitration.
 */
class Channel
{
  public:
    /**
     * @param eq           simulation event queue
     * @param line_service endpoint occupancy per cache line
     * @param txn_overhead fixed occupancy per transaction
     * @param ports        number of arbitrated ports (NIC instances)
     */
    Channel(EventQueue &eq, Tick line_service, Tick txn_overhead,
            unsigned ports = 1);

    /**
     * Request service for a transaction of @p lines cache lines from
     * @p port.  @p done runs when the transaction's channel service
     * completes (propagation latency is added by the caller).
     */
    void request(unsigned port, unsigned lines, EventFn done,
                 bool streamed = false);

    /** Add one more arbitrated port; returns its index. */
    unsigned addPort();

    /** Total lines serviced. */
    std::uint64_t linesServiced() const { return _linesServiced; }

    /** Total transactions serviced. */
    std::uint64_t txnsServiced() const { return _txnsServiced; }

    /** Per-port grant counts (for arbiter fairness checks). */
    const std::vector<std::uint64_t> &grants() const { return _grants; }

    /** Ticks the channel spent busy. */
    Tick busyTicks() const { return _busyTicks; }

    /** Utilization over a window. */
    double
    utilization(Tick window) const
    {
        return window == 0
            ? 0.0
            : static_cast<double>(_busyTicks) / static_cast<double>(window);
    }

  private:
    struct Txn
    {
        unsigned lines;
        EventFn done;
        bool streamed; ///< no per-transaction overhead (pipelined reads)
    };

    void grantNext();
    void serviceDone();

    EventQueue &_eq;
    Tick _lineService;
    Tick _txnOverhead;
    std::vector<std::deque<Txn>> _queues;
    std::vector<std::uint64_t> _grants;
    unsigned _rrNext = 0;
    bool _busy = false;
    /** Completion of the transaction in service.  Parked here so the
     *  scheduled event captures only `this` and stays in EventClosure's
     *  inline buffer; at most one transaction is in service at a time. */
    EventFn _inService;
    std::uint64_t _linesServiced = 0;
    std::uint64_t _txnsServiced = 0;
    Tick _busyTicks = 0;
};

} // namespace dagger::ic

#endif // DAGGER_IC_CHANNEL_HH
