/**
 * @file
 * The CCI-P fabric: the CPU-side-visible interface of the FPGA.
 *
 * One CciFabric models the blue-bitstream protocol stack (the
 * triangle in Fig. 6): two serialized directions (host->NIC and
 * NIC->host) with round-robin arbitration between NIC instances
 * (ports, Fig. 14) and a per-port outstanding-transaction window
 * (<=128, §4.4).  Each Dagger NIC instance owns one CciPort.
 */

#ifndef DAGGER_IC_CCI_FABRIC_HH
#define DAGGER_IC_CCI_FABRIC_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "ic/channel.hh"
#include "ic/cost_model.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/ownership.hh"

namespace dagger::sim {
class ShardedEngine;
}

namespace dagger::ic {

class CciFabric;

/** FPGA-side polling mode (§4.4.1). */
enum class PollMode {
    LocalCache, ///< poll the FPGA's coherent cache; invalidations pull data
    Llc,        ///< poll the processor LLC directly (high-load mode)
};

/**
 * One NIC instance's view of the interconnect.
 */
class CciPort
{
  public:
    /**
     * Pull @p lines cache lines of new requests from host TX buffers
     * into the NIC (the NIC RX path).  @p done fires when the data is
     * usable by the RPC pipeline.
     */
    void fetch(unsigned lines, EventFn done);

    /**
     * Write @p lines cache lines of received RPCs into a host RX ring
     * (the NIC TX path).  @p done fires when the lines are visible to
     * software.
     */
    void post(unsigned lines, EventFn done);

    /**
     * Send bookkeeping info (free-slot releases) back to software.
     * One cache line regardless of batch size.
     */
    void bookkeep(EventFn done = {});

    /**
     * Issue an idle read of one cache line over the interconnect —
     * used by the raw-UPI scalability experiment (Fig. 11 right).
     */
    void rawRead(EventFn done);

    /**
     * Sharded-engine wiring (rpc::DaggerSystem): channel arbitration
     * stays in the fabric domain (shard 0) while the outstanding
     * window and every completion run in the owning node's domain on
     * @p hostEq.  Call before traffic.
     */
    void bindHost(sim::ShardedEngine &engine, unsigned shard,
                  EventQueue &hostEq);

    void setPollMode(PollMode mode) { _pollMode = mode; }
    PollMode pollMode() const { return _pollMode; }

    /** Per-request CPU-side penalty implied by the current poll mode. */
    Tick hostPollPenalty() const;

    unsigned id() const { return _id; }

    std::uint64_t fetchTxns() const { return _fetchTxns; }
    std::uint64_t postTxns() const { return _postTxns; }
    std::uint64_t linesFetched() const { return _linesFetched; }
    std::uint64_t linesPosted() const { return _linesPosted; }
    std::uint64_t stalls() const { return _stalls; }

  private:
    friend class CciFabric;
    CciPort(CciFabric &fabric, unsigned id) : _fabric(fabric), _id(id) {}

    struct Op
    {
        bool to_nic;
        unsigned lines;
        Tick extra_latency;
        EventFn done;
        bool streamed = false;
    };

    void submit(Op op);
    void issue(Op op);
    void completed();
    /** Queue completions land on: the owning node's shard queue on a
     *  sharded system, the fabric's queue otherwise. */
    EventQueue &hostEq();

    CciFabric &_fabric;
    unsigned _id;
    sim::ShardedEngine *_engine = nullptr;
    unsigned _shard = 0;
    EventQueue *_hostEq = nullptr;
    // The outstanding-transaction window and its statistics run in the
    // owning node's domain; completions cross back via postCross.
    DAGGER_OWNED_BY(node) PollMode _pollMode = PollMode::LocalCache;
    DAGGER_OWNED_BY(node) unsigned _inFlight = 0;
    /// ops waiting for an outstanding slot
    DAGGER_OWNED_BY(node) std::deque<Op> _pendingWindow;

    DAGGER_OWNED_BY(node) std::uint64_t _fetchTxns = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _postTxns = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _linesFetched = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _linesPosted = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _stalls = 0;
    sim::OwnershipGuard _guard;
};

/**
 * The shared CPU<->FPGA protocol stack, owning both channel directions
 * and all ports.
 */
class CciFabric
{
  public:
    /**
     * @param eq    simulation event queue
     * @param kind  CPU-NIC interface flavour for the NIC RX path
     * @param ports number of NIC instances sharing the fabric
     */
    CciFabric(EventQueue &eq, IfaceKind kind, unsigned ports = 1,
              UpiCost upi = {}, PcieCost pcie = {});

    CciPort &port(unsigned i);
    unsigned numPorts() const { return static_cast<unsigned>(_ports.size()); }

    /** Attach another NIC instance to the shared fabric (Fig. 14). */
    CciPort &addPort();

    IfaceKind kind() const { return _kind; }
    const UpiCost &upi() const { return _upi; }
    const PcieCost &pcie() const { return _pcie; }
    EventQueue &eventQueue() { return _eq; }

    /** CPU cost per request for the configured interface (see cost model). */
    Tick hostTxCpuCost(unsigned batch) const;

    /** Channels, exposed for utilization stats and tests. */
    const Channel &toNicChannel() const { return _toNic; }
    const Channel &toHostChannel() const { return _toHost; }

    /**
     * Register the fabric's statistics under @p scope (both channel
     * directions; ports added later self-register under
     * "<scope>.port<i>").  Call at most once, before traffic.
     */
    void registerMetrics(sim::MetricScope scope);

  private:
    friend class CciPort;

    void registerPortMetrics(CciPort &port);

    EventQueue &_eq;
    IfaceKind _kind;
    UpiCost _upi;
    PcieCost _pcie;
    Channel _toNic;
    Channel _toHost;
    unsigned _maxOutstanding;
    std::vector<std::unique_ptr<CciPort>> _ports;
    std::optional<sim::MetricScope> _metricScope;
};

} // namespace dagger::ic

#endif // DAGGER_IC_CCI_FABRIC_HH
