/**
 * @file
 * Calibrated timing constants for the CPU-NIC interconnect models.
 *
 * Every constant is annotated with the paper sentence it derives from
 * (Dagger, ASPLOS'21).  Constants with no direct sentence are
 * calibrated so the bench harnesses reproduce the Fig. 10 / Fig. 11 /
 * Table 3 numbers; see EXPERIMENTS.md for the calibration table.
 */

#ifndef DAGGER_IC_COST_MODEL_HH
#define DAGGER_IC_COST_MODEL_HH

#include "sim/time.hh"

namespace dagger::ic {

using sim::nsToTicks;
using sim::Tick;

/**
 * CPU-NIC interface flavours evaluated in Fig. 10.  The RX path (host
 * TX ring -> NIC) uses the selected mechanism; the NIC -> host path
 * always uses direct writes into the RX rings (DMA write / coherent
 * write), as in the paper.
 */
enum class IfaceKind {
    MmioWrite,     ///< WQE-by-MMIO: full request written via MMIO stores
    Doorbell,      ///< MMIO doorbell + PCIe DMA per request
    DoorbellBatch, ///< one doorbell initiates a DMA batch of B requests
    Upi,           ///< coherent memory interconnect (Dagger's design)
    Cxl,           ///< CXL-style direct device writes (§4.3 outlook):
                   ///< the CPU writes RPCs straight into NIC memory —
                   ///< no polling, a single bus transaction per request
};

/** Printable name for bench output. */
const char *ifaceName(IfaceKind kind);

/** True for the memory-interconnect family (UPI, CXL). */
constexpr bool
isMemoryInterconnect(IfaceKind kind)
{
    return kind == IfaceKind::Upi || kind == IfaceKind::Cxl;
}

/**
 * UPI / CCI-P coherent-path constants.
 */
struct UpiCost
{
    /**
     * Host software buffer -> NIC delivery.  "the CCI-P-based memory
     * interconnect, based on Intel UPI, delivers data from the
     * software buffers to the NIC within 400 ns" (§4.4).
     */
    Tick fetchLatency = nsToTicks(400);

    /**
     * "another 400 ns required for sending back the bookkeeping
     * information" (§4.4).
     */
    Tick bookkeepLatency = nsToTicks(400);

    /**
     * NIC -> host RX-ring delivery.  A coherent write needs no request/
     * response round trip; calibrated so the B=1 RTT lands at the
     * paper's 1.8 us (Fig. 11 left).
     */
    Tick postLatency = nsToTicks(120);

    /**
     * "The CCI-P bus can support up to 128 outstanding requests"
     * (§4.4).
     */
    unsigned maxOutstanding = 128;

    /**
     * Per-direction service time of the blue-bitstream UPI endpoint
     * per cache line.  Calibrated: end-to-end RPC throughput flattens
     * at ~42 Mrps (84 Mrps of messages, each crossing the endpoint in
     * both directions) and raw idle reads flatten at ~80 Mrps
     * (Fig. 11 right; §5.5 attributes the ceiling to "the
     * implementation of the UPI end-point on the FPGA in the blue
     * region").
     */
    Tick lineService = nsToTicks(11.9);

    /** Fixed per-transaction overhead at the endpoint (amortized by B). */
    Tick txnOverhead = nsToTicks(8);

    /**
     * CPU cost to serialize + write one 64 B frame into the shared TX
     * buffer ("the only operation the processor needs to do is write
     * the RPC requests/responses to the buffer it shares with the
     * NIC", §4.3).
     */
    Tick cpuWriteCost = nsToTicks(42);

    /**
     * CPU cost to consume one bookkeeping return (free-slot release);
     * paid once per fetched batch, so amortized by B.  Calibrated to
     * Fig. 10: UPI B=1 -> 8.1 Mrps, B=4 -> 12.4 Mrps per core.
     */
    Tick cpuBookkeepCost = nsToTicks(64);

    /**
     * Extra fetch latency when the FPGA polls the processor LLC
     * directly instead of its local coherent cache (§4.4.1: Dagger
     * "dynamically switches to direct polling of the processor's LLC
     * when the load becomes high").  Local-cache polling is cheaper
     * per probe but steals line ownership from the CPU, which we model
     * as extra CPU-side cost at high load instead.
     */
    Tick llcPollExtra = nsToTicks(50);

    /** CPU-side ownership-loss penalty per request under local-cache
     *  polling mode (cache line bounces back to the FPGA). */
    Tick ownershipBounceCost = nsToTicks(25);

    /**
     * CXL outlook (§4.3): a non-cacheable direct write into device
     * memory.  One bus transaction, no polling round trip — the
     * delivery latency drops well under the UPI invalidation path.
     * The write itself is slightly more expensive than a cacheable
     * store (uncached WC path).
     */
    Tick cxlDeliverLatency = nsToTicks(180);
    Tick cxlCpuWriteCost = nsToTicks(55);
};

/**
 * PCIe-path constants (doorbell / batched doorbell / WQE-by-MMIO).
 */
struct PcieCost
{
    /**
     * PCIe DMA read of a host cache line as measured by the paper's
     * microbenchmark: "The PCIe DMA gives us 450 [ns] of median
     * one-way latency while the UPI read achieves 400 [ns]" (§5.3 —
     * printed as "us" in the text, an evident typo).
     */
    Tick dmaReadLatency = nsToTicks(450);

    /** NIC -> host DMA write (posted; no completion round trip). */
    Tick postLatency = nsToTicks(300);

    /**
     * Latency for an MMIO-written request to be visible NIC-side.
     * One PCIe transaction carries the whole 64 B request, so this is
     * the *lowest-latency* PCIe scheme (Fig. 10) though still well
     * above the coherent path.
     */
    Tick mmioDeliverLatency = nsToTicks(700);

    /** Doorbell MMIO arrival at the NIC (small non-cacheable write). */
    Tick doorbellLatency = nsToTicks(400);

    /** Per-direction PCIe link serialization per cache line. */
    Tick lineService = nsToTicks(8.0);

    /** Per-transaction overhead (TLP + DMA engine setup). */
    Tick txnOverhead = nsToTicks(60);

    /** PCIe tag limit. */
    unsigned maxOutstanding = 128;

    /** CPU cost to write one request into the TX ring. */
    Tick cpuRingWriteCost = nsToTicks(45);

    /**
     * CPU cost of issuing one MMIO transaction ("MMIO transactions
     * are slow ... every MMIO request should be explicitly issued by
     * the processor", §4.3).  Calibrated: doorbell-per-request caps a
     * core at ~4.3 Mrps.
     */
    Tick cpuMmioCost = nsToTicks(165);

    /**
     * CPU cost to push a full 64 B request through MMIO stores (two
     * AVX-256 stores, write-combining disabled; §4.4.1).  Calibrated:
     * WQE-by-MMIO caps a core at ~4.2 Mrps.
     */
    Tick cpuMmioPayloadCost = nsToTicks(185);

    /** CPU cost per DMA descriptor prepared for a batched doorbell. */
    Tick cpuDescCost = nsToTicks(10);
};

/**
 * Host-side CPU cost charged per request for pushing RPCs toward the
 * NIC under interface @p kind with batching factor @p batch.
 */
Tick hostTxCpuCost(IfaceKind kind, unsigned batch, const UpiCost &upi,
                   const PcieCost &pcie);

/**
 * Interface-dependent one-way delivery latency of a request from the
 * moment software finished writing it until the NIC RPC unit can see
 * it, excluding dynamic queueing/batch-wait (modeled in the DES).
 */
Tick hostTxBaseLatency(IfaceKind kind, const UpiCost &upi,
                       const PcieCost &pcie);

} // namespace dagger::ic

#endif // DAGGER_IC_COST_MODEL_HH
