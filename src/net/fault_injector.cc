#include "net/fault_injector.hh"

namespace dagger::net {

void
FaultInjector::registerMetrics(sim::MetricScope scope)
{
    scope.counter("seen", _seen, sim::MetricText::Hide);
    scope.counter("delivered", _delivered, sim::MetricText::Hide);
    scope.counter("dropped", _dropped, sim::MetricText::Hide);
    scope.counter("duplicated", _duplicated, sim::MetricText::Hide);
    scope.counter("reordered", _reordered, sim::MetricText::Hide);
    scope.counter("corrupted", _corrupted, sim::MetricText::Hide);
    scope.counter("flap_dropped", _flapDropped, sim::MetricText::Hide);
}

bool
FaultInjector::inFlap(sim::Tick now) const
{
    for (const FaultSpec::FlapWindow &w : _spec.flaps)
        if (now >= w.start && now < w.end)
            return true;
    return false;
}

void
FaultInjector::corruptPayload(Packet &pkt)
{
    if (pkt.frames.empty())
        return;
    // Prefer a frame that actually carries message bytes, so the
    // per-frame checksum can catch the flip; an all-header packet has
    // its checksum byte flipped instead.
    std::vector<std::size_t> live;
    live.reserve(pkt.frames.size());
    for (std::size_t i = 0; i < pkt.frames.size(); ++i)
        if (pkt.frames[i].liveBytes() > 0)
            live.push_back(i);
    if (live.empty()) {
        pkt.frames[_rng.range(pkt.frames.size())].header.checksum ^= 0xff;
        return;
    }
    // Copy-on-write: only this frame's view is repointed at the
    // damaged bytes, so the sender's retransmission copy and any
    // in-flight duplicates keep referencing the intact buffer.
    proto::Frame &f = pkt.frames[live[_rng.range(live.size())]];
    f.corruptPayloadByte(_rng.range(f.liveBytes()));
}

void
FaultInjector::schedule(SwitchPort &port, Packet pkt, sim::Tick delay)
{
    if (delay == 0) {
        // Immediate path: hand over synchronously, exactly like an
        // injector-free port, so a zeroed FaultSpec is transparent.
        _delivered.inc();
        port.receiverDeliver(std::move(pkt));
        return;
    }
    _eq.schedule(delay,
                 [this, port = &port, pkt = std::move(pkt)]() mutable {
                     _delivered.inc();
                     port->receiverDeliver(std::move(pkt));
                 },
                 sim::Priority::Hardware);
}

void
FaultInjector::process(SwitchPort &port, Packet pkt)
{
    _seen.inc();
    const std::uint64_t idx = ++_index;

    if (_scriptDrops.erase(idx)) {
        _dropped.inc();
        return;
    }
    if (inFlap(_eq.now())) {
        _flapDropped.inc();
        return;
    }
    if (_spec.dropP > 0.0 && _rng.chance(_spec.dropP)) {
        _dropped.inc();
        return;
    }

    bool corrupt = _scriptCorrupts.erase(idx) != 0;
    if (_spec.corruptP > 0.0 && _rng.chance(_spec.corruptP))
        corrupt = true;
    if (corrupt) {
        corruptPayload(pkt);
        _corrupted.inc();
    }

    if (_spec.dupP > 0.0 && _rng.chance(_spec.dupP)) {
        _duplicated.inc();
        schedule(port, pkt, _spec.dupDelay); // copy: the second arrival
    }

    sim::Tick delay = 0;
    auto it = _scriptDelays.find(idx);
    if (it != _scriptDelays.end()) {
        delay = it->second;
        _scriptDelays.erase(it);
        _reordered.inc();
    } else if (_spec.reorderP > 0.0 && _rng.chance(_spec.reorderP)) {
        delay = _spec.reorderDelay;
        _reordered.inc();
    }
    schedule(port, std::move(pkt), delay);
}

} // namespace dagger::net
