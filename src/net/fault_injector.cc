#include "net/fault_injector.hh"

#include "sim/logging.hh"

namespace dagger::net {

namespace {

/** splitmix64 finalizer: spreads a port's node id over the seed. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    std::uint64_t s = seed + salt * 0x9e3779b97f4a7c15ull;
    s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ull;
    s = (s ^ (s >> 27)) * 0x94d049bb133111ebull;
    return s ^ (s >> 31);
}

} // namespace

void
FaultInjector::install(SwitchPort &port)
{
    if (_ports.find(&port) == _ports.end()) {
        // The first port keeps the base seed — a single-port install
        // sees the classic single-domain stream.  Further ports get
        // their own mixed stream so no two shard domains ever share
        // an rng.
        const std::uint64_t seed = _ports.empty()
            ? _spec.seed
            : mixSeed(_spec.seed, 1 + port.node());
        _ports.emplace(&port, PortState(seed));
    }
    port.setFaultInjector(this);
}

void
FaultInjector::registerMetrics(sim::MetricScope scope)
{
    const auto gauge = [&](const char *name,
                           std::uint64_t PortState::*field) {
        scope.intGauge(name, [this, field] { return sum(field); },
                       sim::MetricText::Hide);
    };
    gauge("seen", &PortState::seen);
    gauge("delivered", &PortState::delivered);
    gauge("dropped", &PortState::dropped);
    gauge("duplicated", &PortState::duplicated);
    gauge("reordered", &PortState::reordered);
    gauge("corrupted", &PortState::corrupted);
    gauge("flap_dropped", &PortState::flapDropped);
}

std::uint64_t
FaultInjector::sum(std::uint64_t PortState::*field) const
{
    std::uint64_t total = 0;
    for (const auto &[port, st] : _ports)
        total += st.*field;
    return total;
}

bool
FaultInjector::inFlap(sim::Tick now) const
{
    for (const FaultSpec::FlapWindow &w : _spec.flaps)
        if (now >= w.start && now < w.end)
            return true;
    return false;
}

void
FaultInjector::corruptPayload(PortState &st, Packet &pkt)
{
    if (pkt.frames.empty())
        return;
    // Prefer a frame that actually carries message bytes, so the
    // per-frame checksum can catch the flip; an all-header packet has
    // its checksum byte flipped instead.
    std::vector<std::size_t> live;
    live.reserve(pkt.frames.size());
    for (std::size_t i = 0; i < pkt.frames.size(); ++i)
        if (pkt.frames[i].liveBytes() > 0)
            live.push_back(i);
    if (live.empty()) {
        pkt.frames[st.rng.range(pkt.frames.size())].header.checksum ^=
            0xff;
        return;
    }
    // Copy-on-write: only this frame's view is repointed at the
    // damaged bytes, so the sender's retransmission copy and any
    // in-flight duplicates keep referencing the intact buffer.
    proto::Frame &f = pkt.frames[live[st.rng.range(live.size())]];
    f.corruptPayloadByte(st.rng.range(f.liveBytes()));
}

void
FaultInjector::schedule(SwitchPort &port, PortState &st, Packet pkt,
                        sim::Tick delay)
{
    if (delay == 0) {
        // Immediate path: hand over synchronously, exactly like an
        // injector-free port, so a zeroed FaultSpec is transparent.
        ++st.delivered;
        port.receiverDeliver(std::move(pkt));
        return;
    }
    // Re-deliveries self-schedule in the port's own domain queue —
    // never the injector's construction queue, which on a sharded
    // system may belong to another shard.
    port._eq->schedule(delay,
                       [port = &port, st = &st,
                        pkt = std::move(pkt)]() mutable {
                           ++st->delivered;
                           port->receiverDeliver(std::move(pkt));
                       },
                       sim::Priority::Hardware);
}

void
FaultInjector::process(SwitchPort &port, Packet pkt)
{
    auto it = _ports.find(&port);
    dagger_assert(it != _ports.end(),
                  "packet on a port the injector was never installed on");
    PortState &st = it->second;
    ++st.seen;
    const std::uint64_t idx = ++st.index;

    if (_scriptDrops.count(idx) != 0) {
        ++st.dropped;
        return;
    }
    if (inFlap(port._eq->now())) {
        ++st.flapDropped;
        return;
    }
    if (_spec.dropP > 0.0 && st.rng.chance(_spec.dropP)) {
        ++st.dropped;
        return;
    }

    bool corrupt = _scriptCorrupts.count(idx) != 0;
    if (_spec.corruptP > 0.0 && st.rng.chance(_spec.corruptP))
        corrupt = true;
    if (corrupt) {
        corruptPayload(st, pkt);
        ++st.corrupted;
    }

    if (_spec.dupP > 0.0 && st.rng.chance(_spec.dupP)) {
        ++st.duplicated;
        schedule(port, st, pkt, _spec.dupDelay); // copy: second arrival
    }

    sim::Tick delay = 0;
    auto d = _scriptDelays.find(idx);
    if (d != _scriptDelays.end()) {
        delay = d->second;
        ++st.reordered;
    } else if (_spec.reorderP > 0.0 && st.rng.chance(_spec.reorderP)) {
        delay = _spec.reorderDelay;
        ++st.reordered;
    }
    schedule(port, st, std::move(pkt), delay);
}

} // namespace dagger::net
