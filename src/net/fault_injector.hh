/**
 * @file
 * Deterministic per-link fault injection.
 *
 * The paper's loop-back network and ToR model are lossless; real
 * datacenter links are not, and the RPC unit's Protocol block (§4.5)
 * exists precisely to recover from loss.  FaultInjector sits between a
 * SwitchPort's egress serializer and its receiver callback and applies
 * a seeded fault model — drop, duplicate, reorder-by-delay, and
 * payload-corruption probabilities, plus scripted link-flap windows —
 * so the reliability stack above it (nic::AckProtocol, RpcClient retry
 * budgets) can be exercised reproducibly.
 *
 * Determinism contract: every random decision comes from one seeded
 * sim::Rng consumed in packet-arrival order, which the event queue
 * makes deterministic; two runs with the same seed make byte-identical
 * fault decisions regardless of --jobs.
 */

#ifndef DAGGER_NET_FAULT_INJECTOR_HH
#define DAGGER_NET_FAULT_INJECTOR_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/tor_switch.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"

namespace dagger::net {

/**
 * Fault model for one link direction.  All probabilities are
 * independent per-packet Bernoulli trials; faults compose in a fixed
 * order (scripted → flap → drop → corrupt → duplicate → reorder), so
 * e.g. a duplicated packet can also be delivered out of order.
 */
struct FaultSpec
{
    double dropP = 0.0;    ///< P(packet silently dropped)
    double dupP = 0.0;     ///< P(packet delivered twice)
    double reorderP = 0.0; ///< P(delivery delayed by reorderDelay)
    double corruptP = 0.0; ///< P(one payload byte flipped)

    /** Extra delivery delay applied to reordered packets. */
    sim::Tick reorderDelay = sim::usToTicks(5);
    /** Delay of the second copy of a duplicated packet. */
    sim::Tick dupDelay = sim::usToTicks(2);

    /** Link-flap window [start, end): every packet in it is dropped. */
    struct FlapWindow
    {
        sim::Tick start = 0;
        sim::Tick end = 0;
    };
    std::vector<FlapWindow> flaps;

    std::uint64_t seed = 0x6661756c74ull; ///< rng seed ("fault")
};

/**
 * One injector instance guards one SwitchPort's delivery side.  A
 * single FaultInjector may be installed on several ports; its rng is
 * then shared across them (still deterministic — consumption order is
 * event order).
 */
class FaultInjector
{
  public:
    FaultInjector(sim::EventQueue &eq, FaultSpec spec = {})
        : _eq(eq), _spec(spec), _rng(spec.seed)
    {}

    /** Install on @p port (equivalent to port.setFaultInjector(this)). */
    void install(SwitchPort &port) { port.setFaultInjector(this); }

    /** Script: drop the @p nth packet seen (1-based). */
    void scriptDrop(std::uint64_t nth) { _scriptDrops.insert(nth); }

    /** Script: delay the @p nth packet seen (1-based) by @p delay. */
    void
    scriptDelay(std::uint64_t nth, sim::Tick delay)
    {
        _scriptDelays[nth] = delay;
    }

    /** Script: flip a payload byte of the @p nth packet seen (1-based). */
    void scriptCorrupt(std::uint64_t nth) { _scriptCorrupts.insert(nth); }

    const FaultSpec &spec() const { return _spec; }

    std::uint64_t seen() const { return _seen.value(); }
    std::uint64_t delivered() const { return _delivered.value(); }
    std::uint64_t droppedCount() const { return _dropped.value(); }
    std::uint64_t duplicated() const { return _duplicated.value(); }
    std::uint64_t reordered() const { return _reordered.value(); }
    std::uint64_t corrupted() const { return _corrupted.value(); }
    std::uint64_t flapDropped() const { return _flapDropped.value(); }

    /** Register net.fault.* counters under @p scope. */
    void registerMetrics(sim::MetricScope scope);

  private:
    friend class SwitchPort;

    /** Apply the fault model to @p pkt bound for @p port's receiver. */
    void process(SwitchPort &port, Packet pkt);

    /** Deliver now or after @p delay, through the injector bypass. */
    void schedule(SwitchPort &port, Packet pkt, sim::Tick delay);

    bool inFlap(sim::Tick now) const;
    void corruptPayload(Packet &pkt);

    sim::EventQueue &_eq;
    FaultSpec _spec;
    sim::Rng _rng;

    std::uint64_t _index = 0; ///< packets seen (1-based script index)
    std::set<std::uint64_t> _scriptDrops;
    std::set<std::uint64_t> _scriptCorrupts;
    std::map<std::uint64_t, sim::Tick> _scriptDelays;

    sim::Counter _seen;
    sim::Counter _delivered;
    sim::Counter _dropped;
    sim::Counter _duplicated;
    sim::Counter _reordered;
    sim::Counter _corrupted;
    sim::Counter _flapDropped;
};

} // namespace dagger::net

#endif // DAGGER_NET_FAULT_INJECTOR_HH
