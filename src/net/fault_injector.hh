/**
 * @file
 * Deterministic per-link fault injection.
 *
 * The paper's loop-back network and ToR model are lossless; real
 * datacenter links are not, and the RPC unit's Protocol block (§4.5)
 * exists precisely to recover from loss.  FaultInjector sits between a
 * SwitchPort's egress serializer and its receiver callback and applies
 * a seeded fault model — drop, duplicate, reorder-by-delay, and
 * payload-corruption probabilities, plus scripted link-flap windows —
 * so the reliability stack above it (nic::AckProtocol, RpcClient retry
 * budgets) can be exercised reproducibly.
 *
 * Determinism contract: every installed port owns its own seeded
 * sim::Rng, consumed in that port's packet-arrival order.  Per-port
 * arrival order is what the sharded engine reproduces byte-identically
 * at any --shards count, so fault decisions are identical across
 * --jobs AND --shards — and no rng is ever shared across shard
 * domains.  The first installed port uses the spec seed directly
 * (single-port installs see the classic stream); every further port
 * derives its stream by mixing its node id into the seed.
 *
 * Install ports and register scripts before traffic starts: the
 * per-port state table and the script tables are read-only once
 * packets flow.
 */

#ifndef DAGGER_NET_FAULT_INJECTOR_HH
#define DAGGER_NET_FAULT_INJECTOR_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/tor_switch.hh"
#include "sim/metrics.hh"
#include "sim/ownership.hh"
#include "sim/rng.hh"

namespace dagger::net {

/**
 * Fault model for one link direction.  All probabilities are
 * independent per-packet Bernoulli trials; faults compose in a fixed
 * order (scripted → flap → drop → corrupt → duplicate → reorder), so
 * e.g. a duplicated packet can also be delivered out of order.
 */
struct FaultSpec
{
    double dropP = 0.0;    ///< P(packet silently dropped)
    double dupP = 0.0;     ///< P(packet delivered twice)
    double reorderP = 0.0; ///< P(delivery delayed by reorderDelay)
    double corruptP = 0.0; ///< P(one payload byte flipped)

    /** Extra delivery delay applied to reordered packets. */
    sim::Tick reorderDelay = sim::usToTicks(5);
    /** Delay of the second copy of a duplicated packet. */
    sim::Tick dupDelay = sim::usToTicks(2);

    /** Link-flap window [start, end): every packet in it is dropped. */
    struct FlapWindow
    {
        sim::Tick start = 0;
        sim::Tick end = 0;
    };
    std::vector<FlapWindow> flaps;

    std::uint64_t seed = 0x6661756c74ull; ///< rng seed ("fault")
};

/**
 * One injector instance guards the delivery side of one or more
 * SwitchPorts.  Each installed port gets its own domain-local rng
 * stream and counters, so an injector may span ports living on
 * different shards of a sharded engine.
 */
class FaultInjector
{
  public:
    FaultInjector(sim::EventQueue &eq, FaultSpec spec = {})
        : _eq(eq), _spec(spec)
    {}

    /** Install on @p port (allocates the port's fault state). */
    void install(SwitchPort &port);

    /** Script: drop the @p nth packet seen on a port (1-based). */
    void scriptDrop(std::uint64_t nth) { _scriptDrops.insert(nth); }

    /** Script: delay a port's @p nth packet (1-based) by @p delay. */
    void
    scriptDelay(std::uint64_t nth, sim::Tick delay)
    {
        _scriptDelays[nth] = delay;
    }

    /** Script: flip a payload byte of a port's @p nth packet (1-based). */
    void scriptCorrupt(std::uint64_t nth) { _scriptCorrupts.insert(nth); }

    const FaultSpec &spec() const { return _spec; }

    std::uint64_t seen() const { return sum(&PortState::seen); }
    std::uint64_t delivered() const { return sum(&PortState::delivered); }
    std::uint64_t droppedCount() const { return sum(&PortState::dropped); }
    std::uint64_t duplicated() const
    {
        return sum(&PortState::duplicated);
    }
    std::uint64_t reordered() const { return sum(&PortState::reordered); }
    std::uint64_t corrupted() const { return sum(&PortState::corrupted); }
    std::uint64_t flapDropped() const
    {
        return sum(&PortState::flapDropped);
    }

    /** Register net.fault.* counters under @p scope. */
    void registerMetrics(sim::MetricScope scope);

  private:
    friend class SwitchPort;

    /**
     * Domain-local fault state of one installed port: its rng stream,
     * script index, and statistics all live (and mutate) in the
     * port's shard domain.
     */
    struct PortState
    {
        explicit PortState(std::uint64_t seed) : rng(seed) {}

        DAGGER_OWNED_BY(node) sim::Rng rng;
        DAGGER_OWNED_BY(node) std::uint64_t index = 0; ///< script index
        DAGGER_OWNED_BY(node) std::uint64_t seen = 0;
        DAGGER_OWNED_BY(node) std::uint64_t delivered = 0;
        DAGGER_OWNED_BY(node) std::uint64_t dropped = 0;
        DAGGER_OWNED_BY(node) std::uint64_t duplicated = 0;
        DAGGER_OWNED_BY(node) std::uint64_t reordered = 0;
        DAGGER_OWNED_BY(node) std::uint64_t corrupted = 0;
        DAGGER_OWNED_BY(node) std::uint64_t flapDropped = 0;
    };

    /** Apply the fault model to @p pkt bound for @p port's receiver. */
    void process(SwitchPort &port, Packet pkt);

    /** Deliver now or after @p delay, through the injector bypass. */
    void schedule(SwitchPort &port, PortState &st, Packet pkt,
                  sim::Tick delay);

    bool inFlap(sim::Tick now) const;
    void corruptPayload(PortState &st, Packet &pkt);
    std::uint64_t sum(std::uint64_t PortState::*field) const;

    sim::EventQueue &_eq; ///< construction-domain queue (unsharded use)
    FaultSpec _spec;

    /** Keyed by port; entries are created by install() and the table
     *  itself is never touched once traffic starts — only the mapped
     *  PortStates mutate, each in its own port's domain. */
    std::map<const SwitchPort *, PortState> _ports;

    // Scripts are read-only during the run (see file comment).
    std::set<std::uint64_t> _scriptDrops;
    std::set<std::uint64_t> _scriptCorrupts;
    std::map<std::uint64_t, sim::Tick> _scriptDelays;
};

} // namespace dagger::net

#endif // DAGGER_NET_FAULT_INJECTOR_HH
