/**
 * @file
 * Top-of-rack switch model.
 *
 * The paper connects its two on-FPGA NICs "via a loop-back network"
 * and models a ToR delay of 0.3 us (Table 3); the 8-tier experiment
 * uses "our simple model of a ToR networking switch with a static
 * switching table" (§5.7).  This is that switch: static routing by
 * destination node id, a fixed per-hop delay, per-egress-port
 * serialization at line rate, and bounded egress queues with drop
 * accounting.
 */

#ifndef DAGGER_NET_TOR_SWITCH_HH
#define DAGGER_NET_TOR_SWITCH_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "proto/wire.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/ownership.hh"
#include "sim/time.hh"

namespace dagger::sim {
class ShardedEngine;
}

namespace dagger::net {

using sim::EventQueue;
using sim::Tick;

/** Network endpoint identifier (one per NIC instance). */
using NodeId = std::uint16_t;

/** A network packet: one RPC message's frames, addressed. */
struct Packet
{
    NodeId src = 0;
    NodeId dst = 0;
    /** Transport metadata stamped by a reliable Protocol unit; rides
     *  beside the frames and is not counted in wireBytes(). */
    proto::TransportHeader th;
    std::vector<proto::Frame> frames;

    std::size_t wireBytes() const
    {
        return frames.size() * proto::kCacheLineBytes;
    }
};

class TorSwitch;
class FaultInjector;

/** One switch port; handed to a NIC's transport layer. */
class SwitchPort
{
  public:
    /** Transmit a packet into the switch. */
    void send(Packet pkt);

    /** Install the delivery callback (packets arriving at this port). */
    void
    setReceiver(std::function<void(Packet)> rx)
    {
        _receiver = std::move(rx);
    }

    /**
     * Install a fault injector on this port's *delivery* side: every
     * packet that finishes egress serialization is handed to @p fi
     * instead of the receiver, and @p fi decides whether (and when) it
     * reaches the receiver.  nullptr uninstalls.  On a sharded system
     * the injector's per-port state runs in this port's domain (use
     * FaultInjector::install, which allocates it).
     */
    void setFaultInjector(FaultInjector *fi);

    NodeId node() const { return _node; }

  private:
    friend class TorSwitch;
    friend class FaultInjector;
    SwitchPort(TorSwitch &sw, NodeId node);

    void deliver(Packet pkt);
    /** Final hop: hand @p pkt to the receiver, bypassing the injector. */
    void receiverDeliver(Packet pkt);

    TorSwitch &_switch;
    NodeId _node;
    /** Domain this port (and its whole egress pipeline) runs in: the
     *  owning node's shard queue on a sharded system, the switch's
     *  queue otherwise. */
    EventQueue *_eq;
    unsigned _shard = 0;
    FaultInjector *_fault = nullptr;
    std::function<void(Packet)> _receiver;

    // Per-port counters so a sharded run never shares a cache line of
    // statistics across domains; the switch accessors sum them.
    DAGGER_OWNED_BY(node) std::uint64_t _forwarded = 0;  ///< egress
    DAGGER_OWNED_BY(node) std::uint64_t _dropped = 0;    ///< overflows
    DAGGER_OWNED_BY(node) std::uint64_t _unroutable = 0; ///< ingress

    // Egress side (switch -> this port).
    DAGGER_OWNED_BY(node) std::deque<Packet> _egressQueue;
    DAGGER_OWNED_BY(node) bool _egressBusy = false;
    /** Packet currently serializing out of this port.  Parked here so
     *  the serialization-done event captures only [this, &port] and
     *  stays inline; egress serializes one packet at a time. */
    DAGGER_OWNED_BY(node) Packet _inFlight;
    sim::OwnershipGuard _guard;
};

/**
 * The switch itself.  Routing is purely static: packets go to the
 * port registered under their destination node id.
 */
class TorSwitch
{
  public:
    /**
     * @param eq        event queue
     * @param hop_delay one-way switch traversal delay (0.3 us default)
     * @param byte_time serialization time per byte at egress
     *                  (default ~100 Gb/s)
     * @param queue_cap egress queue capacity in packets
     */
    explicit TorSwitch(EventQueue &eq,
                       Tick hop_delay = sim::nsToTicks(300),
                       Tick byte_time = sim::nsToTicks(0.08),
                       std::size_t queue_cap = 4096);

    /** Attach (or fetch) the port for @p node. */
    SwitchPort &attach(NodeId node);

    /**
     * Sharded-engine wiring (rpc::DaggerSystem): the switch fabric
     * keeps its routing table, but each port's egress pipeline runs in
     * the owning node's domain.  Call before traffic.
     */
    void bindEngine(sim::ShardedEngine *engine) { _engine = engine; }
    /** Place @p node's port (ingress + egress) on @p shard / @p eq. */
    void bindPort(NodeId node, EventQueue &eq, unsigned shard);

    std::uint64_t forwarded() const;
    std::uint64_t dropped() const;
    EventQueue &eventQueue() { return _eq; }
    Tick hopDelay() const { return _hopDelay; }

    /** Register switch statistics under @p scope. */
    void
    registerMetrics(sim::MetricScope scope)
    {
        scope.intGauge("forwarded", [this] { return forwarded(); },
                       sim::MetricText::Show, "tor_forwarded");
        scope.intGauge("dropped", [this] { return dropped(); },
                       sim::MetricText::Show, "tor_dropped");
    }

  private:
    friend class SwitchPort;

    void route(Packet pkt);
    void enqueueEgress(SwitchPort &port, Packet pkt);
    void drainEgress(SwitchPort &port);
    void egressDone(SwitchPort &port);

    EventQueue &_eq;
    sim::ShardedEngine *_engine = nullptr;
    Tick _hopDelay;
    Tick _byteTime;
    std::size_t _queueCap;
    std::vector<std::unique_ptr<SwitchPort>> _ports; // indexed by NodeId
};

} // namespace dagger::net

#endif // DAGGER_NET_TOR_SWITCH_HH
