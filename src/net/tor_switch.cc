#include "net/tor_switch.hh"

#include "net/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/sharded_engine.hh"

namespace dagger::net {

TorSwitch::TorSwitch(EventQueue &eq, Tick hop_delay, Tick byte_time,
                     std::size_t queue_cap)
    : _eq(eq), _hopDelay(hop_delay), _byteTime(byte_time),
      _queueCap(queue_cap)
{}

SwitchPort::SwitchPort(TorSwitch &sw, NodeId node)
    : _switch(sw), _node(node), _eq(&sw._eq)
{}

SwitchPort &
TorSwitch::attach(NodeId node)
{
    if (node >= _ports.size())
        _ports.resize(node + 1);
    if (!_ports[node])
        _ports[node] =
            std::unique_ptr<SwitchPort>(new SwitchPort(*this, node));
    return *_ports[node];
}

void
TorSwitch::bindPort(NodeId node, EventQueue &eq, unsigned shard)
{
    SwitchPort &port = attach(node);
    port._eq = &eq;
    port._shard = shard;
    if (_engine)
        port._guard.bind(_engine, shard);
}

std::uint64_t
TorSwitch::forwarded() const
{
    std::uint64_t total = 0;
    for (const auto &port : _ports)
        if (port)
            total += port->_forwarded;
    return total;
}

std::uint64_t
TorSwitch::dropped() const
{
    std::uint64_t total = 0;
    for (const auto &port : _ports)
        if (port)
            total += port->_dropped + port->_unroutable;
    return total;
}

void
SwitchPort::setFaultInjector(FaultInjector *fi)
{
    _fault = fi;
}

void
SwitchPort::send(Packet pkt)
{
    pkt.src = _node;
    TorSwitch &sw = _switch;
    if (sw._engine) {
        // Sharded mode: routing is a static-table lookup, so resolve
        // the destination port here and run the whole egress pipeline
        // (queueing, serialization, delivery) in the destination
        // node's domain.  The hop delay covers the cross-domain
        // hand-off; it is one of the latencies the engine lookahead is
        // derived from.
        SwitchPort *dst = pkt.dst < sw._ports.size()
            ? sw._ports[pkt.dst].get()
            : nullptr;
        if (!dst) {
            ++_unroutable;
            dagger_warn("ToR: no port for node ", pkt.dst,
                        "; packet dropped");
            return;
        }
        auto arrive = [sw = &_switch, dst, pkt = std::move(pkt)]() mutable {
            sw->enqueueEgress(*dst, std::move(pkt));
        };
        if (dst->_shard == _shard)
            _eq->schedule(sw._hopDelay, std::move(arrive),
                          sim::Priority::Hardware);
        else
            sw._engine->postCross(_shard, dst->_shard, sw._hopDelay,
                                  std::move(arrive),
                                  sim::Priority::Hardware);
        return;
    }
    // Ingress: the packet traverses the switch fabric after hop delay,
    // then serializes out of the destination's egress port.
    _switch._eq.schedule(_switch._hopDelay,
                         [sw = &_switch, pkt = std::move(pkt)]() mutable {
                             sw->route(std::move(pkt));
                         },
                         sim::Priority::Hardware);
}

void
TorSwitch::route(Packet pkt)
{
    if (pkt.dst >= _ports.size() || !_ports[pkt.dst]) {
        if (pkt.src < _ports.size() && _ports[pkt.src])
            ++_ports[pkt.src]->_unroutable;
        dagger_warn("ToR: no port for node ", pkt.dst, "; packet dropped");
        return;
    }
    enqueueEgress(*_ports[pkt.dst], std::move(pkt));
}

void
TorSwitch::enqueueEgress(SwitchPort &port, Packet pkt)
{
    // Egress state is node-domain: on a sharded system this runs in
    // the destination port's shard (send() crossed the packet over).
    port._guard.check("net::SwitchPort egress pipeline");
    if (port._egressQueue.size() >= _queueCap) {
        ++port._dropped;
        return;
    }
    port._egressQueue.push_back(std::move(pkt));
    if (!port._egressBusy)
        drainEgress(port);
}

void
TorSwitch::drainEgress(SwitchPort &port)
{
    port._guard.check("net::SwitchPort egress pipeline");
    if (port._egressQueue.empty()) {
        port._egressBusy = false;
        return;
    }
    port._egressBusy = true;
    port._inFlight = std::move(port._egressQueue.front());
    port._egressQueue.pop_front();
    const Tick ser = _byteTime * port._inFlight.wireBytes();
    ++port._forwarded;
    port._eq->schedule(ser, [this, &port] { egressDone(port); },
                       sim::Priority::Hardware);
}

void
TorSwitch::egressDone(SwitchPort &port)
{
    // Move the packet out first: drainEgress() below reuses the
    // _inFlight slot for the next queued packet.
    Packet pkt = std::move(port._inFlight);
    port.deliver(std::move(pkt));
    drainEgress(port);
}

void
SwitchPort::deliver(Packet pkt)
{
    if (_fault) {
        _fault->process(*this, std::move(pkt));
        return;
    }
    receiverDeliver(std::move(pkt));
}

void
SwitchPort::receiverDeliver(Packet pkt)
{
    if (_receiver)
        _receiver(std::move(pkt));
}

} // namespace dagger::net
