#include "net/tor_switch.hh"

#include "net/fault_injector.hh"
#include "sim/logging.hh"

namespace dagger::net {

TorSwitch::TorSwitch(EventQueue &eq, Tick hop_delay, Tick byte_time,
                     std::size_t queue_cap)
    : _eq(eq), _hopDelay(hop_delay), _byteTime(byte_time),
      _queueCap(queue_cap)
{}

SwitchPort &
TorSwitch::attach(NodeId node)
{
    if (node >= _ports.size())
        _ports.resize(node + 1);
    if (!_ports[node])
        _ports[node] =
            std::unique_ptr<SwitchPort>(new SwitchPort(*this, node));
    return *_ports[node];
}

void
SwitchPort::send(Packet pkt)
{
    pkt.src = _node;
    // Ingress: the packet traverses the switch fabric after hop delay,
    // then serializes out of the destination's egress port.
    _switch._eq.schedule(_switch._hopDelay,
                         [sw = &_switch, pkt = std::move(pkt)]() mutable {
                             sw->route(std::move(pkt));
                         },
                         sim::Priority::Hardware);
}

void
TorSwitch::route(Packet pkt)
{
    if (pkt.dst >= _ports.size() || !_ports[pkt.dst]) {
        ++_dropped;
        dagger_warn("ToR: no port for node ", pkt.dst, "; packet dropped");
        return;
    }
    enqueueEgress(*_ports[pkt.dst], std::move(pkt));
}

void
TorSwitch::enqueueEgress(SwitchPort &port, Packet pkt)
{
    if (port._egressQueue.size() >= _queueCap) {
        ++_dropped;
        return;
    }
    port._egressQueue.push_back(std::move(pkt));
    if (!port._egressBusy)
        drainEgress(port);
}

void
TorSwitch::drainEgress(SwitchPort &port)
{
    if (port._egressQueue.empty()) {
        port._egressBusy = false;
        return;
    }
    port._egressBusy = true;
    port._inFlight = std::move(port._egressQueue.front());
    port._egressQueue.pop_front();
    const Tick ser = _byteTime * port._inFlight.wireBytes();
    ++_forwarded;
    _eq.schedule(ser, [this, &port] { egressDone(port); },
                 sim::Priority::Hardware);
}

void
TorSwitch::egressDone(SwitchPort &port)
{
    // Move the packet out first: drainEgress() below reuses the
    // _inFlight slot for the next queued packet.
    Packet pkt = std::move(port._inFlight);
    port.deliver(std::move(pkt));
    drainEgress(port);
}

void
SwitchPort::deliver(Packet pkt)
{
    if (_fault) {
        _fault->process(*this, std::move(pkt));
        return;
    }
    receiverDeliver(std::move(pkt));
}

void
SwitchPort::receiverDeliver(Packet pkt)
{
    if (_receiver)
        _receiver(std::move(pkt));
}

} // namespace dagger::net
