#include "svc/flight.hh"

#include <cinttypes>
#include <cstdio>

#include "sim/logging.hh"

namespace dagger::svc {

namespace {

/** The one RPC every compute tier serves. */
constexpr proto::FnId kProcess = 1;

#pragma pack(push, 1)
struct TierReq
{
    std::uint64_t passengerId = 0;
};

struct TierResp
{
    std::uint64_t passengerId = 0;
    std::uint32_t status = 0;
};
#pragma pack(pop)

std::string
keyFor(std::uint64_t pid)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, pid);
    return std::string(buf, 16);
}

/** Pre-seeded Citizens records. */
constexpr std::uint64_t kCitizens = 200'000;

} // namespace

FlightApp::FlightApp(FlightConfig cfg)
    : _cfg(cfg), _cpus(_sys.eq(), 12 + std::max(1u, cfg.flightWorkers)),
      _rng(cfg.seed)
{
    buildTiers();
    installHandlers();
}

void
FlightApp::buildTiers()
{
    nic::SoftConfig soft;
    soft.autoBatch = true; // latency-sensitive tiers: no batch waits

    auto thr = [this](unsigned core) -> rpc::HwThread & {
        return _cpus.core(core).thread(0);
    };

    // Tiers (server flow + downstream client flows).
    _checkin = std::make_unique<Tier>(_sys, "checkin", thr(2), 4,
                                      nic::NicConfig{}, soft);
    _flight = std::make_unique<Tier>(_sys, "flight", thr(3), 0,
                                     nic::NicConfig{}, soft);
    _baggage = std::make_unique<Tier>(_sys, "baggage", thr(4), 0,
                                      nic::NicConfig{}, soft);
    _passport = std::make_unique<Tier>(_sys, "passport", thr(5), 1,
                                       nic::NicConfig{}, soft);
    _airport = std::make_unique<Tier>(_sys, "airport", thr(6), 0,
                                      nic::NicConfig{}, soft);
    _citizens = std::make_unique<Tier>(_sys, "citizens", thr(7), 0,
                                       nic::NicConfig{}, soft);

    // Stores: single-partition MICA caches behind the two DB tiers.
    _airportStore = std::make_unique<app::MicaKvs>(1, 16u << 20, 1u << 15);
    _citizensStore = std::make_unique<app::MicaKvs>(1, 32u << 20, 1u << 16);
    for (std::uint64_t pid = 1; pid <= kCitizens; ++pid)
        _citizensStore->partition(0).set(keyFor(pid), "citizen-ok");

    _airportBackend = std::make_unique<app::MicaBackend>(*_airportStore);
    _citizensBackend = std::make_unique<app::MicaBackend>(*_citizensStore);
    _airportSrv = std::make_unique<app::KvsServer>(_airport->server(),
                                                   *_airportBackend);
    _citizensSrv = std::make_unique<app::KvsServer>(_citizens->server(),
                                                    *_citizensBackend);

    // Downstream connections (static LB: each tier has one server flow).
    _toFlight = &_checkin->connectTo(*_flight, nic::LbScheme::Static);
    _toBaggage = &_checkin->connectTo(*_baggage, nic::LbScheme::Static);
    _toPassport = &_checkin->connectTo(*_passport, nic::LbScheme::Static);
    auto &airport_client =
        _checkin->connectTo(*_airport, nic::LbScheme::Static);
    _toAirport = std::make_unique<app::KvsClient>(airport_client);
    auto &citizens_client =
        _passport->connectTo(*_citizens, nic::LbScheme::Static);
    _toCitizens = std::make_unique<app::KvsClient>(citizens_client);

    // Front-ends: client-only nodes.
    nic::NicConfig fe_cfg;
    fe_cfg.numFlows = 1;
    _passengerNode = &_sys.addNode(fe_cfg, soft);
    _passengerClient =
        std::make_unique<rpc::RpcClient>(*_passengerNode, 0, thr(0));
    _passengerClient->setConnection(_sys.connect(
        *_passengerNode, 0, _checkin->node(), 0, nic::LbScheme::Static));

    _staffNode = &_sys.addNode(fe_cfg, soft);
    _staffClient = std::make_unique<rpc::RpcClient>(*_staffNode, 0, thr(1));
    _staffClient->setConnection(_sys.connect(
        *_staffNode, 0, _airport->node(), 0, nic::LbScheme::Static));
    _staffKvs = std::make_unique<app::KvsClient>(*_staffClient);

    // Optimized threading: worker pools for the long-running services.
    if (_cfg.model == ThreadingModel::Optimized) {
        std::vector<rpc::HwThread *> flight_workers;
        for (unsigned w = 0; w < _cfg.flightWorkers; ++w)
            flight_workers.push_back(&_cpus.core(12 + w).thread(0));
        _flight->useWorkerPool(std::move(flight_workers));
        // Check-in and Passport keep their dispatch loops free by
        // running their request processing (the nested-call
        // orchestration) on workers — handlers submit to these pools
        // explicitly since the work completes asynchronously.
        _pools.push_back(std::make_unique<rpc::WorkerPool>(
            _sys, std::vector<rpc::HwThread *>{&_cpus.core(8).thread(0)}));
        _pools.push_back(std::make_unique<rpc::WorkerPool>(
            _sys, std::vector<rpc::HwThread *>{&_cpus.core(9).thread(0)}));
    }
}

void
FlightApp::installHandlers()
{
    const bool simple = _cfg.model == ThreadingModel::Simple;

    // Flight: bimodal compute, the bottleneck tier (§5.7).
    _flight->serverThread().registerHandler(
        kProcess, [this](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            TierReq r{};
            if (!req.payloadAs(r)) {
                out.respond = false;
                return out;
            }
            out.cost = _rng.chance(_cfg.flightCheapFraction)
                ? _cfg.flightCheapCost
                : _cfg.flightExpensiveCost;
            _tracer.record("flight", out.cost);
            TierResp resp{r.passengerId, 1};
            out.response = proto::PayloadBuf::ofPod(resp);
            return out;
        });

    // Baggage: plain compute.
    _baggage->serverThread().registerHandler(
        kProcess, [this](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            TierReq r{};
            if (!req.payloadAs(r)) {
                out.respond = false;
                return out;
            }
            out.cost = _cfg.baggageCost;
            _tracer.record("baggage", out.cost);
            TierResp resp{r.passengerId, 1};
            out.response = proto::PayloadBuf::ofPod(resp);
            return out;
        });

    // Passport: nested blocking call into the Citizens cache.
    _passport->serverThread().registerHandler(
        kProcess, [this, simple](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            out.respond = false;
            TierReq r{};
            if (!req.payloadAs(r))
                return out;
            if (simple)
                _passport->serverThread().pause();
            const sim::Tick t0 = _sys.eq().now();
            const auto conn = req.connId();
            const auto rpc_id = req.rpcId();
            const auto fn = req.fnId();
            const std::uint64_t pid = r.passengerId;
            _tracer.record("passport", _cfg.passportCost);
            auto do_lookup = [this, simple, conn, rpc_id, fn, pid, t0] {
                _toCitizens->get(
                    keyFor(pid),
                    [this, simple, conn, rpc_id, fn, pid,
                     t0](bool hit, std::string_view) {
                        TierResp resp{pid, hit ? 1u : 0u};
                        _passport->serverThread().respondLater(
                            conn, rpc_id, fn, &resp, sizeof(resp));
                        _tracer.record("passport.wall",
                                       _sys.eq().now() - t0);
                        if (simple)
                            _passport->serverThread().resume();
                    });
            };
            if (simple) {
                out.cost = _cfg.passportCost;
                do_lookup();
            } else {
                // Optimized: request processing moves to the worker.
                _pools.at(1)->submit(_cfg.passportCost,
                                     std::move(do_lookup));
            }
            return out;
        });

    // Check-in: fan-out to Flight/Baggage/Passport, then register in
    // the Airport cache, then answer the front-end.
    _checkin->serverThread().registerHandler(
        kProcess, [this, simple](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            out.respond = false;
            TierReq r{};
            if (!req.payloadAs(r))
                return out;
            if (simple)
                _checkin->serverThread().pause();
            _tracer.record("checkin", _cfg.checkinCost);

            struct Fanout
            {
                int remaining = 3;
                proto::ConnId conn;
                proto::RpcId rpc;
                proto::FnId fn;
                std::uint64_t pid;
                sim::Tick t0;
            };
            auto state = std::make_shared<Fanout>();
            state->conn = req.connId();
            state->rpc = req.rpcId();
            state->fn = req.fnId();
            state->pid = r.passengerId;
            state->t0 = _sys.eq().now();

            auto on_part = [this, simple,
                            state](const proto::RpcMessage &) {
                if (--state->remaining > 0)
                    return;
                // All three answered: blocking call to the Airport DB.
                _toAirport->set(
                    keyFor(state->pid), "registered",
                    [this, simple, state](bool) {
                        TierResp resp{state->pid, 1};
                        _checkin->serverThread().respondLater(
                            state->conn, state->rpc, state->fn, &resp,
                            sizeof(resp));
                        _tracer.record("checkin.wall",
                                       _sys.eq().now() - state->t0);
                        if (simple)
                            _checkin->serverThread().resume();
                    });
            };
            auto do_fanout = [this, state, on_part] {
                TierReq fwd{state->pid};
                _toFlight->callPod(kProcess, fwd, on_part);
                _toBaggage->callPod(kProcess, fwd, on_part);
                _toPassport->callPod(kProcess, fwd, on_part);
            };
            if (simple) {
                out.cost = _cfg.checkinCost;
                do_fanout();
            } else {
                _pools.at(0)->submit(_cfg.checkinCost,
                                     std::move(do_fanout));
            }
            return out;
        });
}

void
FlightApp::issueRegistration()
{
    if (_sys.eq().now() >= _stopAt)
        return;
    const double mean_gap_us = 1000.0 / _krps;
    // The generator lives in the passenger node's domain: it reads
    // that queue's clock and self-schedules there.
    sim::EventQueue &eq = _passengerNode->eq();
    auto fire = [this] {
        sim::EventQueue &eq = _passengerNode->eq();
        if (eq.now() >= _stopAt)
            return;
        const std::uint64_t pid = _nextPassenger++;
        ++_issued;
        const sim::Tick t0 = eq.now();
        TierReq r{pid};
        _passengerClient->callPod(
            kProcess, r, [this, t0](const proto::RpcMessage &) {
                _e2e.record(_passengerNode->eq().now() - t0);
                ++_completed;
            });
        issueRegistration();
    };
    // The open-loop load generator self-schedules once per request;
    // keep it on EventClosure's allocation-free inline path.
    static_assert(sim::EventClosure::fitsInline<decltype(fire)>());
    eq.schedule(sim::usToTicks(_rng.exponential(mean_gap_us)),
                std::move(fire));
}

void
FlightApp::run(double krps, sim::Tick duration, sim::Tick drain)
{
    dagger_assert(krps > 0, "offered load must be positive");
    _krps = krps;
    _stopAt = _sys.now() + duration;
    issueRegistration();

    if (_cfg.staffReadRate > 0) {
        // Staff front-end: background async reads of Airport records.
        struct StaffDriver
        {
            FlightApp *app;
            void
            operator()() const
            {
                FlightApp *a = app;
                // Staff reads issue from the staff node's domain.
                sim::EventQueue &eq = a->_staffNode->eq();
                if (eq.now() >= a->_stopAt)
                    return;
                const double mean_gap_us = 1e6 / a->_cfg.staffReadRate;
                eq.schedule(
                    sim::usToTicks(a->_rng.exponential(mean_gap_us)),
                    [a] {
                        if (a->_staffNode->eq().now() >= a->_stopAt)
                            return;
                        const std::uint64_t pid =
                            1 + a->_rng.range(
                                    std::max<std::uint64_t>(
                                        1, a->_nextPassenger));
                        a->_staffKvs->get(keyFor(pid),
                                          [a](bool, std::string_view) {
                                              ++a->_staffReads;
                                          });
                        StaffDriver{a}();
                    });
            }
        };
        StaffDriver{this}();
    }

    _sys.runUntilTick(_stopAt + drain);
}

} // namespace dagger::svc
