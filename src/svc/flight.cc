#include "svc/flight.hh"

#include <cinttypes>
#include <cstdio>

#include "sim/logging.hh"

namespace dagger::svc {

namespace {

/** The one RPC every compute tier serves. */
constexpr proto::FnId kProcess = 1;

/** TierResp status values. */
constexpr std::uint32_t kOk = 1;
constexpr std::uint32_t kDegraded = 2; ///< served without some dependency

#pragma pack(push, 1)
struct TierReq
{
    std::uint64_t passengerId = 0;
};

struct TierResp
{
    std::uint64_t passengerId = 0;
    std::uint32_t status = 0;
};
#pragma pack(pop)

std::string
keyFor(std::uint64_t pid)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, pid);
    return std::string(buf, 16);
}

/** Pre-seeded Citizens records. */
constexpr std::uint64_t kCitizens = 200'000;

} // namespace

FlightApp::FlightApp(FlightConfig cfg)
    : _cfg(cfg), _sys(ic::IfaceKind::Upi, {}, {}, cfg.shards),
      _rng(cfg.seed), _flightRng(cfg.seed ^ 0x666c69676874ull),
      _staffRng(cfg.seed ^ 0x7374616666ull)
{
    buildTiers();
    installHandlers();
}

void
FlightApp::buildTiers()
{
    nic::SoftConfig soft;
    soft.autoBatch = true; // latency-sensitive tiers: no batch waits

    const bool optimized = _cfg.model == ThreadingModel::Optimized;

    // Tiers (server flow + downstream client flows).  Each tier owns
    // its cores in its node's shard domain: dispatch on core 0, any
    // worker threads on cores 1+.
    _checkin = std::make_unique<Tier>(_sys, "checkin", 4,
                                      optimized ? 2u : 1u,
                                      nic::NicConfig{}, soft);
    _flight = std::make_unique<Tier>(
        _sys, "flight", 0,
        optimized ? 1u + std::max(1u, _cfg.flightWorkers) : 1u,
        nic::NicConfig{}, soft);
    _baggage = std::make_unique<Tier>(_sys, "baggage", 0, 1u,
                                      nic::NicConfig{}, soft);
    _passport = std::make_unique<Tier>(_sys, "passport", 1,
                                       optimized ? 2u : 1u,
                                       nic::NicConfig{}, soft);
    _airport = std::make_unique<Tier>(_sys, "airport", 0, 1u,
                                      nic::NicConfig{}, soft);
    _citizens = std::make_unique<Tier>(_sys, "citizens", 0, 1u,
                                       nic::NicConfig{}, soft);

    // Reliability knobs (off by default; the storm benches set them).
    if (_cfg.checkinLegBudget > 0)
        _checkin->setTimeoutBudget(_cfg.checkinLegBudget,
                                   _cfg.checkinLegRetries);
    if (_cfg.flightShedQueue > 0)
        _flight->setShedPolicy(rpc::ShedPolicy{_cfg.flightShedQueue});

    // Stores: single-partition MICA caches behind the two DB tiers.
    _airportStore = std::make_unique<app::MicaKvs>(1, 16u << 20, 1u << 15);
    _citizensStore = std::make_unique<app::MicaKvs>(1, 32u << 20, 1u << 16);
    for (std::uint64_t pid = 1; pid <= kCitizens; ++pid)
        _citizensStore->partition(0).set(keyFor(pid), "citizen-ok");

    _airportBackend = std::make_unique<app::MicaBackend>(*_airportStore);
    _citizensBackend = std::make_unique<app::MicaBackend>(*_citizensStore);
    _airportSrv = std::make_unique<app::KvsServer>(_airport->server(),
                                                   *_airportBackend);
    _citizensSrv = std::make_unique<app::KvsServer>(_citizens->server(),
                                                    *_citizensBackend);

    // Downstream connections (static LB: each tier has one server flow).
    _toFlight = &_checkin->connectTo(*_flight, nic::LbScheme::Static);
    _toBaggage = &_checkin->connectTo(*_baggage, nic::LbScheme::Static);
    _toPassport = &_checkin->connectTo(*_passport, nic::LbScheme::Static);
    auto &airport_client =
        _checkin->connectTo(*_airport, nic::LbScheme::Static);
    _toAirport = std::make_unique<app::KvsClient>(airport_client);
    auto &citizens_client =
        _passport->connectTo(*_citizens, nic::LbScheme::Static);
    _toCitizens = std::make_unique<app::KvsClient>(citizens_client);

    // Front-ends: client-only nodes, each with its own core in its
    // node's domain.
    nic::NicConfig fe_cfg;
    fe_cfg.numFlows = 1;
    _passengerNode = &_sys.addNode(fe_cfg, soft);
    _passengerCpus =
        std::make_unique<rpc::CpuSet>(_passengerNode->eq(), 1);
    _passengerClient = std::make_unique<rpc::RpcClient>(
        *_passengerNode, 0, _passengerCpus->core(0).thread(0));
    _passengerClient->setConnection(_sys.connect(
        *_passengerNode, 0, _checkin->node(), 0, nic::LbScheme::Static));

    _staffNode = &_sys.addNode(fe_cfg, soft);
    _staffCpus = std::make_unique<rpc::CpuSet>(_staffNode->eq(), 1);
    _staffClient = std::make_unique<rpc::RpcClient>(
        *_staffNode, 0, _staffCpus->core(0).thread(0));
    _staffClient->setConnection(_sys.connect(
        *_staffNode, 0, _airport->node(), 0, nic::LbScheme::Static));
    _staffKvs = std::make_unique<app::KvsClient>(*_staffClient);

    // Optimized threading: worker pools for the long-running services.
    if (optimized) {
        _flight->useWorkerPool(std::max(1u, _cfg.flightWorkers));
        // Check-in and Passport keep their dispatch loops free by
        // running their request processing (the nested-call
        // orchestration) on workers — handlers submit to these pools
        // explicitly since the work completes asynchronously.
        _pools.push_back(std::make_unique<rpc::WorkerPool>(
            _sys, std::vector<rpc::HwThread *>{
                      &_checkin->ownCore(1).thread(0)}));
        _pools.push_back(std::make_unique<rpc::WorkerPool>(
            _sys, std::vector<rpc::HwThread *>{
                      &_passport->ownCore(1).thread(0)}));
    }
}

void
FlightApp::installHandlers()
{
    const bool simple = _cfg.model == ThreadingModel::Simple;

    // Flight: bimodal compute, the bottleneck tier (§5.7).  The draw
    // comes from _costRng: the classic interleaved stream in
    // closed-loop mode, the flight tier's own stream in storm mode
    // (the handler runs in the flight shard's domain).
    _flight->serverThread().registerHandler(
        kProcess, [this](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            TierReq r{};
            if (!req.payloadAs(r)) {
                out.respond = false;
                return out;
            }
            out.cost = _costRng->chance(_cfg.flightCheapFraction)
                ? _cfg.flightCheapCost
                : _cfg.flightExpensiveCost;
            _flight->tracer().record("flight", out.cost);
            TierResp resp{r.passengerId, kOk};
            out.response = proto::PayloadBuf::ofPod(resp);
            return out;
        });

    // Baggage: plain compute.
    _baggage->serverThread().registerHandler(
        kProcess, [this](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            TierReq r{};
            if (!req.payloadAs(r)) {
                out.respond = false;
                return out;
            }
            out.cost = _cfg.baggageCost;
            _baggage->tracer().record("baggage", out.cost);
            TierResp resp{r.passengerId, kOk};
            out.response = proto::PayloadBuf::ofPod(resp);
            return out;
        });

    // Passport: nested blocking call into the Citizens cache.  Under
    // a timeout budget a stranded lookup serves the passport check
    // degraded instead of hanging the tier.
    _passport->serverThread().registerHandler(
        kProcess, [this, simple](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            out.respond = false;
            TierReq r{};
            if (!req.payloadAs(r))
                return out;
            if (simple)
                _passport->serverThread().pause();
            const sim::Tick t0 = _passport->node().eq().now();
            const auto conn = req.connId();
            const auto rpc_id = req.rpcId();
            const auto fn = req.fnId();
            const std::uint64_t pid = r.passengerId;
            _passport->tracer().record("passport", _cfg.passportCost);
            auto do_lookup = [this, simple, conn, rpc_id, fn, pid, t0] {
                _toCitizens->getChecked(
                    keyFor(pid),
                    [this, simple, conn, rpc_id, fn, pid,
                     t0](rpc::CallStatus st, bool hit, std::string_view) {
                        const std::uint32_t status =
                            st != rpc::CallStatus::Ok ? kDegraded
                            : hit                     ? kOk
                                                      : 0u;
                        TierResp resp{pid, status};
                        _passport->serverThread().respondLater(
                            conn, rpc_id, fn, &resp, sizeof(resp));
                        _passport->tracer().record(
                            "passport.wall",
                            _passport->node().eq().now() - t0);
                        if (simple)
                            _passport->serverThread().resume();
                    });
            };
            if (simple) {
                out.cost = _cfg.passportCost;
                do_lookup();
            } else {
                // Optimized: request processing moves to the worker.
                _pools.at(1)->submit(_cfg.passportCost,
                                     std::move(do_lookup));
            }
            return out;
        });

    // Check-in: fan-out to Flight/Baggage/Passport, then register in
    // the Airport cache, then answer the front-end.  Legs are status
    // tracked: under a timeout budget an exhausted leg marks the
    // registration degraded instead of stalling it forever.
    _checkin->serverThread().registerHandler(
        kProcess, [this, simple](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            out.respond = false;
            TierReq r{};
            if (!req.payloadAs(r))
                return out;
            if (simple)
                _checkin->serverThread().pause();
            _checkin->tracer().record("checkin", _cfg.checkinCost);

            struct Fanout
            {
                int remaining = 3;
                bool degraded = false;
                proto::ConnId conn;
                proto::RpcId rpc;
                proto::FnId fn;
                std::uint64_t pid;
                sim::Tick t0;
            };
            auto state = std::make_shared<Fanout>();
            state->conn = req.connId();
            state->rpc = req.rpcId();
            state->fn = req.fnId();
            state->pid = r.passengerId;
            state->t0 = _checkin->node().eq().now();

            auto on_part = [this, simple, state](
                               rpc::CallStatus st,
                               const proto::RpcMessage &m) {
                TierResp part{};
                if (st != rpc::CallStatus::Ok ||
                    (m.payloadAs(part) && part.status == kDegraded))
                    state->degraded = true;
                if (--state->remaining > 0)
                    return;
                // All three resolved: blocking call to the Airport DB.
                _toAirport->set(
                    keyFor(state->pid), "registered",
                    [this, simple, state](bool) {
                        TierResp resp{state->pid,
                                      state->degraded ? kDegraded : kOk};
                        _checkin->serverThread().respondLater(
                            state->conn, state->rpc, state->fn, &resp,
                            sizeof(resp));
                        _checkin->tracer().record(
                            "checkin.wall",
                            _checkin->node().eq().now() - state->t0);
                        if (simple)
                            _checkin->serverThread().resume();
                    });
            };
            auto do_fanout = [this, state, on_part] {
                TierReq fwd{state->pid};
                _toFlight->callPodStatus(kProcess, fwd, on_part);
                _toBaggage->callPodStatus(kProcess, fwd, on_part);
                _toPassport->callPodStatus(kProcess, fwd, on_part);
            };
            if (simple) {
                out.cost = _cfg.checkinCost;
                do_fanout();
            } else {
                _pools.at(0)->submit(_cfg.checkinCost,
                                     std::move(do_fanout));
            }
            return out;
        });
}

void
FlightApp::issuePassenger(sim::Tick t0)
{
    const std::uint64_t pid = _nextPassenger++;
    ++_issued;
    TierReq r{pid};
    _passengerClient->callPodStatus(
        kProcess, r,
        [this, t0](rpc::CallStatus st, const proto::RpcMessage &m) {
            if (st != rpc::CallStatus::Ok) {
                ++_stormTimeouts;
                return;
            }
            _e2e.record(_passengerNode->eq().now() - t0);
            ++_completed;
            TierResp resp{};
            if (m.payloadAs(resp) && resp.status == kDegraded)
                ++_completedDegraded;
        });
}

void
FlightApp::issueRegistration()
{
    if (_sys.eq().now() >= _stopAt)
        return;
    const double mean_gap_us = 1000.0 / _krps;
    // The generator lives in the passenger node's domain: it reads
    // that queue's clock and self-schedules there.
    sim::EventQueue &eq = _passengerNode->eq();
    auto fire = [this] {
        sim::EventQueue &eq = _passengerNode->eq();
        if (eq.now() >= _stopAt)
            return;
        issuePassenger(eq.now());
        issueRegistration();
    };
    // The open-loop load generator self-schedules once per request;
    // keep it on EventClosure's allocation-free inline path.
    static_assert(sim::EventClosure::fitsInline<decltype(fire)>());
    eq.schedule(sim::usToTicks(_rng.exponential(mean_gap_us)),
                std::move(fire));
}

void
FlightApp::run(double krps, sim::Tick duration, sim::Tick drain)
{
    dagger_assert(krps > 0, "offered load must be positive");
    // Closed-loop mode predates the sharded engine and keeps the
    // classic calibration: every draw — arrival gaps, flight cost
    // draws, staff traffic — interleaves on the one _rng stream, which
    // is only race-free when the whole app shares a domain.  Sharded
    // runs use runStorm(), whose streams are domain-local.
    dagger_assert(_cfg.shards == 1,
                  "closed-loop run() is single-shard; use runStorm()");
    _krps = krps;
    _stopAt = _sys.now() + duration;
    issueRegistration();
    startStaffDriver(_rng);
    _sys.runUntilTick(_stopAt + drain);
}

void
FlightApp::startStaffDriver(sim::Rng &rng)
{
    if (_cfg.staffReadRate <= 0)
        return;
    // Staff front-end: background async reads of Airport records,
    // issued from the staff node's domain (keys drawn over the
    // citizen id space).  @p rng is the classic interleaved stream in
    // closed-loop mode and the staff-owned stream in storm mode.
    struct StaffDriver
    {
        FlightApp *app;
        sim::Rng *rng;
        void
        operator()() const
        {
            FlightApp *a = app;
            sim::Rng *r = rng;
            sim::EventQueue &eq = a->_staffNode->eq();
            if (eq.now() >= a->_stopAt)
                return;
            const double mean_gap_us = 1e6 / a->_cfg.staffReadRate;
            eq.schedule(
                sim::usToTicks(r->exponential(mean_gap_us)),
                [a, r] {
                    if (a->_staffNode->eq().now() >= a->_stopAt)
                        return;
                    const std::uint64_t pid = 1 + r->range(kCitizens);
                    a->_staffKvs->get(keyFor(pid),
                                      [a](bool, std::string_view) {
                                          ++a->_staffReads;
                                      });
                    StaffDriver{a, r}();
                });
        }
    };
    StaffDriver{this, &rng}();
}

void
FlightApp::runStorm(const FlightStormSpec &spec)
{
    dagger_assert(spec.offeredRps > 0, "offered load must be positive");
    dagger_assert(!_storm, "runStorm called twice");
    // Storm mode is shard-safe: each draw stream lives in the domain
    // that consumes it (flight costs in the flight shard, staff
    // traffic in the staff shard, arrivals in the generator's).
    _costRng = &_flightRng;
    _stopAt = _sys.now() + spec.duration;
    if (spec.passengerRetry.enabled())
        _passengerClient->setRetryPolicy(spec.passengerRetry);

    _storm = std::make_unique<app::OpenLoopGen>(_passengerNode->eq(),
                                                _cfg.seed ^ 0x73746f726dull);
    app::TenantSpec tenant;
    tenant.name = "passengers";
    tenant.clients = spec.clients;
    tenant.cohorts = spec.cohorts;
    tenant.perClientRps =
        spec.offeredRps / static_cast<double>(spec.clients);
    tenant.diurnal = spec.diurnal;
    // Registration ids are monotonic, not Zipf-keyed: keep the unused
    // per-cohort key machinery tiny (zeta init is O(keySpace)).
    tenant.keySpace = 1024;
    _storm->addTenant(tenant);
    _storm->start(_stopAt, [this](const app::OpenLoopCall &) {
        issuePassenger(_passengerNode->eq().now());
    });
    startStaffDriver(_staffRng);

    _sys.runUntilTick(_stopAt + spec.drain);
}

Tracer &
FlightApp::tracer()
{
    _tracer = Tracer();
    for (Tier *t : {_checkin.get(), _flight.get(), _baggage.get(),
                    _passport.get(), _airport.get(), _citizens.get()})
        for (const auto &[name, hist] : t->tracer().all())
            _tracer.span(name).merge(hist);
    return _tracer;
}

} // namespace dagger::svc
