/**
 * @file
 * Lightweight request tracing (§5.7: "In order to profile the
 * application, we design a lightweight request tracing system and
 * integrate it with Dagger. Our analysis reveals that the system is
 * bottlenecked by the resource-demanding and long-running Flight
 * service.").
 *
 * Tiers record one span per request (service time at the tier); the
 * tracer aggregates per-tier histograms so the bottleneck falls out
 * of a report, exactly how the paper found the Flight service.
 */

#ifndef DAGGER_SVC_TRACE_HH
#define DAGGER_SVC_TRACE_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/stats.hh"
#include "sim/time.hh"

namespace dagger::svc {

/** Aggregating tracer: one histogram per (tier, span-kind). */
class Tracer
{
  public:
    /** Record a completed span of @p duration ticks. */
    void
    record(const std::string &span, sim::Tick duration)
    {
        _spans[span].record(duration);
    }

    /** Histogram of a span (creates it empty if absent). */
    sim::Histogram &span(const std::string &name) { return _spans[name]; }

    /**
     * Name of the service span with the largest mean duration — the
     * bottleneck tier.  Spans with a '.' in the name (auxiliary
     * wall-clock spans like "checkin.wall", which include downstream
     * wait) are excluded; only per-tier service time competes.
     */
    std::string
    bottleneck() const
    {
        std::string best;
        double best_mean = -1.0;
        for (const auto &[name, hist] : _spans) {
            if (name.find('.') != std::string::npos)
                continue;
            if (hist.mean() > best_mean) {
                best_mean = hist.mean();
                best = name;
            }
        }
        return best;
    }

    const std::map<std::string, sim::Histogram> &all() const
    {
        return _spans;
    }

  private:
    std::map<std::string, sim::Histogram> _spans;
};

} // namespace dagger::svc

#endif // DAGGER_SVC_TRACE_HH
