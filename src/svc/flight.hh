/**
 * @file
 * The 8-tier Flight Registration service of §5.7 (Fig. 13).
 *
 * Topology: the Passenger front-end sends registration requests to
 * Check-in, which fans out to Flight, Baggage, and Passport (Passport
 * nests into the Citizens MICA cache), then registers the passenger
 * in the Airport MICA cache and responds.  The Staff front-end
 * asynchronously reads Airport records.
 *
 * The Flight service is "resource-demanding and long-running": its
 * handler cost is bimodal (mostly cheap lookups, a fraction of slow
 * fare-computation requests), which is what throttles the Simple
 * threading model to a few Krps while leaving the low-load median
 * latency in the tens of microseconds — the Table 4 contrast.
 *
 * Every tier owns its CPU set and RNG stream in its own node's shard
 * domain, so the deployment runs byte-identically on the sharded
 * parallel engine (FlightConfig::shards) — which is what lets
 * runStorm() drive million-client open-loop load (app::OpenLoopGen)
 * against per-tier timeout budgets, shedding, and degraded-mode
 * fan-out.
 */

#ifndef DAGGER_SVC_FLIGHT_HH
#define DAGGER_SVC_FLIGHT_HH

#include <memory>
#include <unordered_map>

#include "app/adapters.hh"
#include "app/kvs_service.hh"
#include "app/mica.hh"
#include "app/open_loop.hh"
#include "rpc/client.hh"
#include "rpc/system.hh"
#include "sim/rng.hh"
#include "svc/tier.hh"

namespace dagger::svc {

/** Tunables of the Flight Registration deployment. */
struct FlightConfig
{
    ThreadingModel model = ThreadingModel::Simple;

    /** Event-engine shards (1 = classic single-queue engine). */
    unsigned shards = 1;

    /** Worker threads for the Flight service in the Optimized model. */
    unsigned flightWorkers = 16;

    /**
     * Fraction of Flight requests that are cheap lookups.  The slow
     * remainder ("resource-demanding and long-running", §5.7) stays
     * below 1% so the paper's us-scale p99 (23.8 / 33.6 us) coexists
     * with the Krps-scale Simple-model capacity: the Simple cap
     * 1 / (0.009 * 41 ms) ~= 2.7 Krps and the Optimized cap
     * 16 workers / (0.009 * 41 ms) ~= 43 Krps both match Table 4.
     */
    double flightCheapFraction = 0.991;

    sim::Tick flightCheapCost = sim::usToTicks(4);
    sim::Tick flightExpensiveCost = sim::msToTicks(41);
    sim::Tick baggageCost = sim::usToTicks(5);
    sim::Tick checkinCost = sim::usToTicks(3);
    sim::Tick passportCost = sim::usToTicks(3);

    /** Staff front-end background read rate (requests/s); 0 = off. */
    double staffReadRate = 500.0;

    /**
     * Check-in's end-to-end budget for each fan-out leg (0 = no
     * budget: legs wait forever, as the paper's closed-loop runs do).
     * With a budget, a leg that exhausts its retry ladder is served
     * *degraded*: the registration completes without that dependency
     * and the response is marked so the front-end can count it.
     */
    sim::Tick checkinLegBudget = 0;
    unsigned checkinLegRetries = 2; ///< resends within the budget

    /** Request-backlog bound for the Flight tier (0 = no shed). */
    std::size_t flightShedQueue = 0;

    std::uint64_t seed = 0x666c69676874ull;
};

/** Open-loop storm parameters (see app::OpenLoopGen). */
struct FlightStormSpec
{
    std::uint64_t clients = 1'048'576; ///< simulated passenger population
    unsigned cohorts = 64;             ///< actors carrying it
    double offeredRps = 10'000.0;      ///< aggregate peak arrival rate
    sim::Tick duration = sim::msToTicks(200);
    sim::Tick drain = sim::msToTicks(50);
    app::DiurnalCurve diurnal;         ///< flat by default
    /** Passenger-side retry/timeout policy (off by default). */
    rpc::RetryPolicy passengerRetry;
};

/** The deployed application. */
class FlightApp
{
  public:
    explicit FlightApp(FlightConfig cfg = {});

    FlightApp(const FlightApp &) = delete;
    FlightApp &operator=(const FlightApp &) = delete;

    /**
     * Offer an open-loop Poisson load of @p krps for @p duration, then
     * let in-flight requests drain.  May be called once per app.
     */
    void run(double krps, sim::Tick duration,
             sim::Tick drain = sim::msToTicks(20));

    /**
     * Drive a million-client open-loop storm (cohort actors, diurnal
     * curve, per-call status tracking).  May be called once per app,
     * instead of run().
     */
    void runStorm(const FlightStormSpec &spec);

    /** End-to-end registration latency (ticks). */
    sim::Histogram &e2eLatency() { return _e2e; }

    std::uint64_t issued() const { return _issued; }
    std::uint64_t completed() const { return _completed; }
    /** Completions served degraded (some fan-out leg timed out). */
    std::uint64_t completedDegraded() const { return _completedDegraded; }
    /** Storm calls whose passenger-side retry budget ran out. */
    std::uint64_t stormTimeouts() const { return _stormTimeouts; }

    /** Fraction of issued registrations that never completed. */
    double
    dropRate() const
    {
        return _issued == 0
            ? 0.0
            : 1.0 - static_cast<double>(_completed) /
                  static_cast<double>(_issued);
    }

    /**
     * Per-tier service-time tracing (§5.7 bottleneck analysis).
     * Tiers record into their own shard-local tracers; this merges
     * them into one aggregate view (rebuild on each call).
     */
    Tracer &tracer();

    rpc::DaggerSystem &system() { return _sys; }
    Tier &checkinTier() { return *_checkin; }
    Tier &flightTier() { return *_flight; }
    rpc::RpcClient &passengerClient() { return *_passengerClient; }
    std::uint64_t staffReadsCompleted() const { return _staffReads; }
    app::MicaKvs &airportStore() { return *_airportStore; }

  private:
    void buildTiers();
    void installHandlers();
    void issueRegistration();
    void issuePassenger(sim::Tick t0);
    void startStaffDriver(sim::Rng &rng);

    FlightConfig _cfg;
    rpc::DaggerSystem _sys;
    /** Classic stream: closed-loop run() interleaves arrival gaps,
     *  flight cost draws, and staff traffic on it (single-shard). */
    sim::Rng _rng;
    /** Storm-mode flight-tier stream: the bimodal handler draw runs
     *  in the flight shard's domain. */
    sim::Rng _flightRng;
    /** Storm-mode staff-domain stream: read gaps and key picks. */
    sim::Rng _staffRng;
    /** Which stream the flight handler draws costs from; runStorm()
     *  repoints it at _flightRng before traffic. */
    sim::Rng *_costRng = &_rng;
    Tracer _tracer; ///< merged view, rebuilt by tracer()

    // Tiers (Fig. 13); each owns its cores in its shard domain.
    std::unique_ptr<Tier> _checkin;
    std::unique_ptr<Tier> _flight;
    std::unique_ptr<Tier> _baggage;
    std::unique_ptr<Tier> _passport;
    std::unique_ptr<Tier> _airport;  ///< MICA-backed Airport cache
    std::unique_ptr<Tier> _citizens; ///< MICA-backed Citizens cache

    // Front-ends (client-only nodes with their own single cores).
    rpc::DaggerNode *_passengerNode = nullptr;
    std::unique_ptr<rpc::CpuSet> _passengerCpus;
    std::unique_ptr<rpc::RpcClient> _passengerClient;
    rpc::DaggerNode *_staffNode = nullptr;
    std::unique_ptr<rpc::CpuSet> _staffCpus;
    std::unique_ptr<rpc::RpcClient> _staffClient;
    std::unique_ptr<app::KvsClient> _staffKvs;

    // Downstream clients.
    rpc::RpcClient *_toFlight = nullptr;
    rpc::RpcClient *_toBaggage = nullptr;
    rpc::RpcClient *_toPassport = nullptr;
    std::unique_ptr<app::KvsClient> _toAirport;
    std::unique_ptr<app::KvsClient> _toCitizens;

    // Stores.
    std::unique_ptr<app::MicaKvs> _airportStore;
    std::unique_ptr<app::MicaKvs> _citizensStore;
    std::unique_ptr<app::MicaBackend> _airportBackend;
    std::unique_ptr<app::MicaBackend> _citizensBackend;
    std::unique_ptr<app::KvsServer> _airportSrv;
    std::unique_ptr<app::KvsServer> _citizensSrv;

    // Worker pools (Optimized model: check-in / passport nested work).
    std::vector<std::unique_ptr<rpc::WorkerPool>> _pools;

    // Storm driver (runStorm only).
    std::unique_ptr<app::OpenLoopGen> _storm;

    sim::Histogram _e2e{"flight_e2e"};
    std::uint64_t _issued = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _completedDegraded = 0;
    std::uint64_t _stormTimeouts = 0;
    std::uint64_t _staffReads = 0;
    std::uint64_t _nextPassenger = 1;
    double _krps = 0;
    sim::Tick _stopAt = 0;
};

} // namespace dagger::svc

#endif // DAGGER_SVC_FLIGHT_HH
