/**
 * @file
 * The 8-tier Flight Registration service of §5.7 (Fig. 13).
 *
 * Topology: the Passenger front-end sends registration requests to
 * Check-in, which fans out to Flight, Baggage, and Passport (Passport
 * nests into the Citizens MICA cache), then registers the passenger
 * in the Airport MICA cache and responds.  The Staff front-end
 * asynchronously reads Airport records.
 *
 * The Flight service is "resource-demanding and long-running": its
 * handler cost is bimodal (mostly cheap lookups, a fraction of slow
 * fare-computation requests), which is what throttles the Simple
 * threading model to a few Krps while leaving the low-load median
 * latency in the tens of microseconds — the Table 4 contrast.
 */

#ifndef DAGGER_SVC_FLIGHT_HH
#define DAGGER_SVC_FLIGHT_HH

#include <memory>
#include <unordered_map>

#include "app/adapters.hh"
#include "app/kvs_service.hh"
#include "app/mica.hh"
#include "rpc/client.hh"
#include "rpc/system.hh"
#include "sim/rng.hh"
#include "svc/tier.hh"

namespace dagger::svc {

/** Tunables of the Flight Registration deployment. */
struct FlightConfig
{
    ThreadingModel model = ThreadingModel::Simple;

    /** Worker threads for the Flight service in the Optimized model. */
    unsigned flightWorkers = 16;

    /**
     * Fraction of Flight requests that are cheap lookups.  The slow
     * remainder ("resource-demanding and long-running", §5.7) stays
     * below 1% so the paper's us-scale p99 (23.8 / 33.6 us) coexists
     * with the Krps-scale Simple-model capacity: the Simple cap
     * 1 / (0.009 * 41 ms) ~= 2.7 Krps and the Optimized cap
     * 16 workers / (0.009 * 41 ms) ~= 43 Krps both match Table 4.
     */
    double flightCheapFraction = 0.991;

    sim::Tick flightCheapCost = sim::usToTicks(4);
    sim::Tick flightExpensiveCost = sim::msToTicks(41);
    sim::Tick baggageCost = sim::usToTicks(5);
    sim::Tick checkinCost = sim::usToTicks(3);
    sim::Tick passportCost = sim::usToTicks(3);

    /** Staff front-end background read rate (requests/s); 0 = off. */
    double staffReadRate = 500.0;

    std::uint64_t seed = 0x666c69676874ull;
};

/** The deployed application. */
class FlightApp
{
  public:
    explicit FlightApp(FlightConfig cfg = {});

    FlightApp(const FlightApp &) = delete;
    FlightApp &operator=(const FlightApp &) = delete;

    /**
     * Offer an open-loop Poisson load of @p krps for @p duration, then
     * let in-flight requests drain.  May be called once per app.
     */
    void run(double krps, sim::Tick duration,
             sim::Tick drain = sim::msToTicks(20));

    /** End-to-end registration latency (ticks). */
    sim::Histogram &e2eLatency() { return _e2e; }

    std::uint64_t issued() const { return _issued; }
    std::uint64_t completed() const { return _completed; }

    /** Fraction of issued registrations that never completed. */
    double
    dropRate() const
    {
        return _issued == 0
            ? 0.0
            : 1.0 - static_cast<double>(_completed) /
                  static_cast<double>(_issued);
    }

    /** Per-tier service-time tracing (§5.7 bottleneck analysis). */
    Tracer &tracer() { return _tracer; }

    rpc::DaggerSystem &system() { return _sys; }
    std::uint64_t staffReadsCompleted() const { return _staffReads; }
    app::MicaKvs &airportStore() { return *_airportStore; }

  private:
    void buildTiers();
    void installHandlers();
    void issueRegistration();

    FlightConfig _cfg;
    rpc::DaggerSystem _sys;
    rpc::CpuSet _cpus;
    sim::Rng _rng;
    Tracer _tracer;

    // Tiers (Fig. 13).
    std::unique_ptr<Tier> _checkin;
    std::unique_ptr<Tier> _flight;
    std::unique_ptr<Tier> _baggage;
    std::unique_ptr<Tier> _passport;
    std::unique_ptr<Tier> _airport;  ///< MICA-backed Airport cache
    std::unique_ptr<Tier> _citizens; ///< MICA-backed Citizens cache

    // Front-ends (client-only nodes).
    rpc::DaggerNode *_passengerNode = nullptr;
    std::unique_ptr<rpc::RpcClient> _passengerClient;
    rpc::DaggerNode *_staffNode = nullptr;
    std::unique_ptr<rpc::RpcClient> _staffClient;
    std::unique_ptr<app::KvsClient> _staffKvs;

    // Downstream clients.
    rpc::RpcClient *_toFlight = nullptr;
    rpc::RpcClient *_toBaggage = nullptr;
    rpc::RpcClient *_toPassport = nullptr;
    std::unique_ptr<app::KvsClient> _toAirport;
    std::unique_ptr<app::KvsClient> _toCitizens;

    // Stores.
    std::unique_ptr<app::MicaKvs> _airportStore;
    std::unique_ptr<app::MicaKvs> _citizensStore;
    std::unique_ptr<app::MicaBackend> _airportBackend;
    std::unique_ptr<app::MicaBackend> _citizensBackend;
    std::unique_ptr<app::KvsServer> _airportSrv;
    std::unique_ptr<app::KvsServer> _citizensSrv;

    // Worker pools (Optimized model).
    std::vector<std::unique_ptr<rpc::WorkerPool>> _pools;

    sim::Histogram _e2e{"flight_e2e"};
    std::uint64_t _issued = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _staffReads = 0;
    std::uint64_t _nextPassenger = 1;
    double _krps = 0;
    sim::Tick _stopAt = 0;
};

} // namespace dagger::svc

#endif // DAGGER_SVC_FLIGHT_HH
