/**
 * @file
 * Microservice-tier framework over the Dagger fabric (§5.7).
 *
 * A Tier is one microservice process: its own NIC instance (the
 * virtualized-NIC deployment of Fig. 14), one server flow with a
 * dispatch thread, and one client flow per downstream dependency.
 * Tiers support chain and fan-out call patterns with both threading
 * models:
 *
 *  - Simple: handlers run (and block) in the dispatch thread;
 *  - Optimized: handler compute runs on a WorkerPool and nested calls
 *    never block the dispatch loop.
 */

#ifndef DAGGER_SVC_TIER_HH
#define DAGGER_SVC_TIER_HH

#include <memory>
#include <string>
#include <vector>

#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"
#include "svc/trace.hh"

namespace dagger::svc {

/** Threading models of §5.7 / Table 4. */
enum class ThreadingModel {
    Simple,    ///< handlers in dispatch threads, nested calls block
    Optimized, ///< worker threads, non-blocking dispatch
};

/** One microservice tier. */
class Tier
{
  public:
    /**
     * @param sys        the deployment
     * @param name       tier name (for traces)
     * @param dispatch   hardware thread of the dispatch loop
     * @param downstreams number of downstream client flows to provision
     * @param cfg        per-tier NIC hard config template (flows are
     *                   sized automatically: 1 server + downstreams)
     */
    Tier(rpc::DaggerSystem &sys, std::string name, rpc::HwThread &dispatch,
         unsigned downstreams, nic::NicConfig cfg = {},
         nic::SoftConfig soft = {});

    /**
     * Shard-safe construction: the tier owns a CpuSet of @p cores
     * cores created on its *own node's* event queue (core 0 thread 0
     * becomes the dispatch thread).  On a sharded DaggerSystem every
     * tier's software then runs in the tier's shard domain — the
     * external-dispatch constructor above can only place threads in
     * whatever domain the caller's CpuSet lives in, which is wrong the
     * moment shards > 1.  At shards == 1 both constructors schedule on
     * the same single queue and behave identically.
     */
    Tier(rpc::DaggerSystem &sys, std::string name, unsigned downstreams,
         unsigned cores, nic::NicConfig cfg = {}, nic::SoftConfig soft = {});

    /** Connect the next free client flow to @p server_tier. */
    rpc::RpcClient &connectTo(Tier &server_tier,
                              nic::LbScheme lb = nic::LbScheme::RoundRobin);

    /** Apply the Optimized threading model with the given workers. */
    void useWorkerPool(std::vector<rpc::HwThread *> workers);

    /**
     * Apply the Optimized threading model with @p workers threads from
     * this tier's own CpuSet (cores 1..workers; requires the shard-safe
     * constructor and cores > workers).
     */
    void useWorkerPool(unsigned workers);

    /**
     * Apply a timeout/retry policy to every downstream client, current
     * and future.  Budget-exhausted downstream calls count as degraded
     * (the tier served its caller without that dependency).
     */
    void setRetryPolicy(rpc::RetryPolicy policy);

    /**
     * Derive the retry policy from an end-to-end downstream budget:
     * with doubling backoff, first-attempt timeout T and @p attempts
     * resends, the worst-case wait is T * (2^(attempts+1) - 1) — so T
     * is sized such that the whole retry ladder completes within
     * @p total.  After the budget the call is degraded, never stuck.
     */
    void setTimeoutBudget(sim::Tick total, unsigned attempts);

    /** Bound this tier's RX backlog (admission control). */
    void setShedPolicy(rpc::ShedPolicy policy);

    /** Downstream calls that exhausted their retry budget. */
    std::uint64_t degradedCalls() const;

    /** Requests dropped by the shed policy. */
    std::uint64_t shedCalls() const { return _server->totalShed(); }

    rpc::RpcThreadedServer &server() { return *_server; }
    rpc::RpcServerThread &serverThread() { return _server->serverThread(0); }
    rpc::DaggerNode &node() { return *_node; }
    rpc::HwThread &dispatchThread() { return *_dispatch; }
    /** Core @p i of the tier-owned CpuSet (shard-safe ctor only). */
    rpc::CpuCore &ownCore(unsigned i);
    const std::string &name() const { return _name; }
    rpc::WorkerPool *workerPool() { return _pool.get(); }
    Tracer &tracer() { return _tracer; }

  private:
    void registerMetrics();

    rpc::DaggerSystem &_sys;
    std::string _name;
    rpc::DaggerNode *_node;
    /** Set by the shard-safe constructor; threads live in the node's
     *  shard domain. */
    std::unique_ptr<rpc::CpuSet> _ownCpus;
    rpc::HwThread *_dispatch;
    std::unique_ptr<rpc::RpcThreadedServer> _server;
    std::vector<std::unique_ptr<rpc::RpcClient>> _clients;
    std::unique_ptr<rpc::WorkerPool> _pool;
    unsigned _nextClientFlow = 1;
    rpc::RetryPolicy _retryPolicy; ///< applied when enabled()
    Tracer _tracer;
};

} // namespace dagger::svc

#endif // DAGGER_SVC_TIER_HH
