#include "svc/socialnet.hh"

#include "sim/logging.hh"

namespace dagger::svc {

using baseline::Payload;
using baseline::SoftRpcNode;

const char *
snTierName(unsigned tier)
{
    switch (static_cast<SnTier>(tier)) {
      case SnTier::Media:
        return "s1:Media";
      case SnTier::User:
        return "s2:User";
      case SnTier::UniqueId:
        return "s3:UniqueID";
      case SnTier::Text:
        return "s4:Text";
      case SnTier::UserMention:
        return "s5:UserMention";
      case SnTier::UrlShorten:
        return "s6:UrlShorten";
    }
    return "?";
}

SocialNet::SocialNet(SocialNetConfig cfg) : _cfg(cfg), _rng(cfg.seed)
{
    build();
}

void
SocialNet::build()
{
    // Cores 0..5: one app core per tier; core 6: front-end.
    // Isolated mode: softirq processing on dedicated cores 7..10.
    // Colocated mode (Fig. 5 shaded): softirqs run on the SMT siblings
    // of the tier cores, i.e., on the same physical cores as the app.
    _cpus = std::make_unique<rpc::CpuSet>(_eq, 11);

    auto tier_cost = [&](unsigned t) -> sim::Tick {
        switch (static_cast<SnTier>(t)) {
          case SnTier::Media:
            return _cfg.mediaCost;
          case SnTier::User:
            return _cfg.userCost;
          case SnTier::UniqueId:
            return _cfg.uniqueIdCost;
          case SnTier::Text:
            return _cfg.textCost;
          case SnTier::UserMention:
            return _cfg.userMentionCost;
          case SnTier::UrlShorten:
            return _cfg.urlShortenCost;
        }
        return 0;
    };

    for (unsigned t = 0; t < kSnTiers; ++t) {
        rpc::HwThread &app = _cpus->core(t).thread(0);
        // Fig. 5 setup: interrupt service routines are bound either to
        // the *same logical cores* as the application (shaded bars) or
        // to dedicated network cores (solid bars).
        rpc::HwThread *net = _cfg.colocatedNetworking
            ? &app                               // softirqs preempt app
            : &_cpus->core(7 + t % 4).thread(0); // dedicated net cores
        _tiers[t] =
            std::make_unique<SoftRpcNode>(_eq, _cfg.stack, app, net);
        _tiers[t]->setColocationSlowdown(_cfg.colocationSlowdown);
        _reqSize[t] = sim::Histogram(snTierName(t));
        _respSize[t] = sim::Histogram(snTierName(t));
    }
    rpc::HwThread &fe_app = _cpus->core(6).thread(0);
    _frontend = std::make_unique<SoftRpcNode>(
        _eq, _cfg.stack, fe_app,
        _cfg.colocatedNetworking ? &fe_app : &_cpus->core(7).thread(1));
    _frontend->setColocationSlowdown(_cfg.colocationSlowdown);

    // Leaf tiers: compute then respond.
    auto leaf_handler = [this, tier_cost](unsigned t) {
        return [this, t, tier_cost](const Payload &,
                                    SoftRpcNode::Responder respond) {
            Payload resp(sampleRespSize(t));
            _respSize[t].record(resp.size());
            _allResp.record(resp.size());
            respond(std::move(resp), tier_cost(t));
        };
    };
    for (unsigned t : {0u, 1u, 2u, 4u, 5u})
        _tiers[t]->setHandler(leaf_handler(t));

    // Text (s4) fans out to UserMention (s5) and UrlShorten (s6)
    // before responding, like the compose-post path in Fig. 1.
    _tiers[3]->setHandler([this, tier_cost](const Payload &,
                                            SoftRpcNode::Responder respond) {
        auto remaining = std::make_shared<int>(2);
        auto resp_holder =
            std::make_shared<SoftRpcNode::Responder>(std::move(respond));
        auto on_done = [this, remaining, resp_holder,
                        tier_cost](const Payload &, sim::Tick) {
            if (--*remaining > 0)
                return;
            Payload resp(sampleRespSize(3));
            _respSize[3].record(resp.size());
            _allResp.record(resp.size());
            (*resp_holder)(std::move(resp), tier_cost(3));
        };
        callTier(*_tiers[3], 4, sampleReqSize(4),
                 [on_done](const Payload &p) { on_done(p, 0); });
        callTier(*_tiers[3], 5, sampleReqSize(5),
                 [on_done](const Payload &p) { on_done(p, 0); });
    });

    // The front-end itself never serves RPCs in this model.
    _frontend->setHandler([](const Payload &, SoftRpcNode::Responder r) {
        r({}, 0);
    });
}

std::size_t
SocialNet::sampleReqSize(unsigned tier)
{
    // Fig. 4 (right): Text's median RPC is 580 B; Media, User and
    // UniqueID never exceed 64 B; UserMention and UrlShorten sit in
    // between.
    switch (static_cast<SnTier>(tier)) {
      case SnTier::Text:
        return 64 + static_cast<std::size_t>(
                        std::min(_rng.exponential(745.0), 4000.0));
      case SnTier::UserMention:
        return 96 + static_cast<std::size_t>(
                        std::min(_rng.exponential(160.0), 1200.0));
      case SnTier::UrlShorten:
        return 80 + static_cast<std::size_t>(
                        std::min(_rng.exponential(130.0), 1200.0));
      case SnTier::Media:
      case SnTier::User:
      case SnTier::UniqueId:
        return 16 + _rng.range(49); // 16..64 B
    }
    return 64;
}

std::size_t
SocialNet::sampleRespSize(unsigned tier)
{
    // Fig. 4 (left): >90% of responses are <= 64 B.
    if (_rng.chance(0.92))
        return 8 + _rng.range(57);
    (void)tier;
    return 64 + _rng.range(448);
}

void
SocialNet::callTier(SoftRpcNode &from, unsigned tier, std::size_t req_bytes,
                    std::function<void(const Payload &)> cb)
{
    _reqSize[tier].record(req_bytes);
    _allReq.record(req_bytes);
    from.call(*_tiers[tier], Payload(req_bytes),
              [cb = std::move(cb)](const Payload &resp, sim::Tick) {
                  cb(resp);
              });
}

void
SocialNet::finishRequest(sim::Tick t0)
{
    _e2e.record(_eq.now() - t0);
    ++_completed;
    if (_inflight > 0)
        --_inflight;
}

void
SocialNet::composePost(sim::Tick t0, bool degraded)
{
    // Fan-out from the front-end: UniqueID, Media, User, Text (which
    // nests UserMention + UrlShorten).  In degraded mode (front-end
    // overload, see SnStormSpec::maxInflight) the Media leg is shed:
    // the post goes up without its media attachment.
    auto remaining = std::make_shared<int>(degraded ? 3 : 4);
    auto done = [this, remaining, t0](const Payload &) {
        if (--*remaining > 0)
            return;
        finishRequest(t0);
    };
    callTier(*_frontend, 2, sampleReqSize(2), done); // UniqueID
    if (!degraded)
        callTier(*_frontend, 0, sampleReqSize(0), done); // Media
    else
        ++_degradedServed;
    callTier(*_frontend, 1, sampleReqSize(1), done); // User
    callTier(*_frontend, 3, sampleReqSize(3), done); // Text (nests)
}

void
SocialNet::readTimeline(sim::Tick t0)
{
    // Read paths touch the User tier (then storage, modeled in-cost).
    callTier(*_frontend, 1, sampleReqSize(1), [this, t0](const Payload &) {
        finishRequest(t0);
    });
}

void
SocialNet::issueRequest()
{
    if (_eq.now() >= _stopAt)
        return;
    const double mean_gap_us = 1e6 / _qps;
    auto fire = [this] {
        if (_eq.now() >= _stopAt)
            return;
        ++_issued;
        ++_inflight;
        const sim::Tick t0 = _eq.now();
        const double mix = _rng.uniform();
        if (mix < _cfg.composeFraction)
            composePost(t0);
        else
            readTimeline(t0);
        issueRequest();
    };
    // The open-loop load generator self-schedules once per request;
    // keep it on EventClosure's allocation-free inline path.
    static_assert(sim::EventClosure::fitsInline<decltype(fire)>());
    _eq.schedule(sim::usToTicks(_rng.exponential(mean_gap_us)),
                 std::move(fire));
}

void
SocialNet::run(double qps, sim::Tick duration, sim::Tick drain)
{
    dagger_assert(qps > 0, "offered load must be positive");
    _qps = qps;
    _stopAt = _eq.now() + duration;
    issueRequest();
    _eq.runUntil(_stopAt + drain);
}

void
SocialNet::runStorm(const SnStormSpec &spec)
{
    dagger_assert(spec.offeredQps > 0, "offered load must be positive");
    dagger_assert(!_storm, "runStorm called twice");
    _stopAt = _eq.now() + spec.duration;
    _maxInflight = spec.maxInflight;

    _storm = std::make_unique<app::OpenLoopGen>(_eq,
                                                _cfg.seed ^ 0x73746f726dull);
    app::TenantSpec tenant;
    tenant.name = "users";
    tenant.clients = spec.clients;
    tenant.cohorts = spec.cohorts;
    tenant.perClientRps =
        spec.offeredQps / static_cast<double>(spec.clients);
    // §3.2 mix rides the workload's GET ratio: a GET arrival is a
    // timeline read, a SET is a compose post.
    tenant.getRatio = 1.0 - _cfg.composeFraction;
    tenant.diurnal = spec.diurnal;
    // Timeline keys are not re-used by the model; keep the unused
    // per-cohort key machinery tiny (zeta init is O(keySpace)).
    tenant.keySpace = 1024;
    _storm->addTenant(tenant);
    _storm->start(_stopAt, [this](const app::OpenLoopCall &call) {
        ++_issued;
        ++_inflight;
        const sim::Tick t0 = _eq.now();
        if (call.op.isGet) {
            readTimeline(t0);
            return;
        }
        const bool degraded =
            _maxInflight > 0 && _inflight > _maxInflight;
        composePost(t0, degraded);
    });

    _eq.runUntil(_stopAt + spec.drain);
}

const baseline::ServeBreakdown &
SocialNet::tierBreakdown(unsigned tier) const
{
    dagger_assert(tier < kSnTiers, "bad tier ", tier);
    return _tiers[tier]->served();
}

} // namespace dagger::svc
