/**
 * @file
 * The Social Network characterization model (§3, Figs. 1, 3, 4, 5).
 *
 * A queueing-faithful model of the DeathStarBench Social Network
 * subset the paper profiles: six representative tiers (s1 Media, s2
 * User, s3 UniqueID, s4 Text, s5 UserMention, s6 UrlShorten) served
 * over a kernel-TCP + Thrift software stack (SoftRpcNode), with the
 * request mix of §3.2 (Compose Post / Read Home Timeline / Read User
 * Timeline) and per-tier RPC-size distributions matching Fig. 4
 * (Text's median RPC is 580 B; Media, User, and UniqueID never exceed
 * 64 B).
 *
 * Used by bench/fig03 (networking fraction of median/tail latency),
 * bench/fig04 (RPC size CDF), and bench/fig05 (interference between
 * network processing and application logic on shared cores).
 */

#ifndef DAGGER_SVC_SOCIALNET_HH
#define DAGGER_SVC_SOCIALNET_HH

#include <array>
#include <memory>

#include "app/open_loop.hh"
#include "baseline/soft_rpc_node.hh"
#include "rpc/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace dagger::svc {

/** The six profiled tiers, in the paper's s1..s6 order. */
enum class SnTier : unsigned {
    Media = 0,      // s1
    User = 1,       // s2
    UniqueId = 2,   // s3
    Text = 3,       // s4
    UserMention = 4,// s5
    UrlShorten = 5, // s6
};

constexpr unsigned kSnTiers = 6;

/** Tier display name ("s1: Media", ...). */
const char *snTierName(unsigned tier);

/** Configuration of the characterization deployment. */
struct SocialNetConfig
{
    /**
     * Fig. 5 knob: true = network interrupt processing shares the
     * application cores (shaded bars); false = dedicated net cores
     * (solid bars).
     */
    bool colocatedNetworking = false;

    /** Thrift-over-kernel-TCP software stack costs. */
    baseline::SoftStackParams stack{
        "LinuxTCP+Thrift",
        sim::usToTicks(14.0), // RPC send (Thrift serialization)
        sim::usToTicks(8.0),  // TCP send
        sim::usToTicks(9.0),  // TCP receive (softirq)
        sim::usToTicks(12.0), // RPC receive (deserialize + dispatch)
        sim::usToTicks(20.0), // wire
    };

    // Per-tier application compute (DeathStarBench-like: Text and
    // UserMention are compute-heavy, User and UniqueID are tiny).
    sim::Tick mediaCost = sim::usToTicks(500);
    sim::Tick userCost = sim::usToTicks(15);
    sim::Tick uniqueIdCost = sim::usToTicks(10);
    sim::Tick textCost = sim::usToTicks(1800);
    sim::Tick userMentionCost = sim::usToTicks(1400);
    sim::Tick urlShortenCost = sim::usToTicks(700);

    /**
     * CPU slowdown from interrupt context switches + cache pollution
     * when softirqs share the application cores (see
     * SoftRpcNode::setColocationSlowdown).
     */
    double colocationSlowdown = 1.35;

    // Request mix (§3.2).
    double composeFraction = 0.6;
    double readHomeFraction = 0.3; // remainder = read-user-timeline

    std::uint64_t seed = 0x736e6574ull;
};

/** Open-loop storm parameters (see app::OpenLoopGen). */
struct SnStormSpec
{
    std::uint64_t clients = 1'048'576; ///< simulated user population
    unsigned cohorts = 64;             ///< actors carrying it
    double offeredQps = 600.0;         ///< aggregate peak arrival rate
    sim::Tick duration = sim::msToTicks(200);
    sim::Tick drain = sim::msToTicks(50);
    app::DiurnalCurve diurnal;         ///< flat by default
    /**
     * Degraded-mode trigger: when more than this many requests are in
     * flight at the front-end, compose posts shed their Media leg and
     * complete degraded (0 = never degrade).  This is the §3 analogue
     * of the Flight tiers' timeout budgets: the software stack has no
     * per-call deadlines, so overload control happens at admission.
     */
    std::size_t maxInflight = 0;
};

/** The deployed model. */
class SocialNet
{
  public:
    explicit SocialNet(SocialNetConfig cfg = {});

    SocialNet(const SocialNet &) = delete;
    SocialNet &operator=(const SocialNet &) = delete;

    /** Drive an open-loop Poisson load of @p qps for @p duration. */
    void run(double qps, sim::Tick duration,
             sim::Tick drain = sim::msToTicks(50));

    /**
     * Drive a million-client open-loop storm (cohort actors, diurnal
     * curve, §3.2 mix via the tenant's GET ratio).  May be called once
     * per app, instead of run().
     */
    void runStorm(const SnStormSpec &spec);

    /** End-to-end request latency. */
    sim::Histogram &e2eLatency() { return _e2e; }

    /** Per-tier served breakdown (transport / rpc / app / total). */
    const baseline::ServeBreakdown &tierBreakdown(unsigned tier) const;

    /** Per-tier request/response wire sizes (bytes). */
    const sim::Histogram &requestSize(unsigned tier) const
    {
        return _reqSize[tier];
    }
    const sim::Histogram &responseSize(unsigned tier) const
    {
        return _respSize[tier];
    }

    /** Aggregate size histograms across all RPCs (Fig. 4 left). */
    const sim::Histogram &allRequestSizes() const { return _allReq; }
    const sim::Histogram &allResponseSizes() const { return _allResp; }

    std::uint64_t issued() const { return _issued; }
    std::uint64_t completed() const { return _completed; }
    /** Compose posts served without their Media leg (overload mode). */
    std::uint64_t degradedServed() const { return _degradedServed; }
    /** Requests issued but not yet completed. */
    std::uint64_t inflight() const { return _inflight; }
    sim::EventQueue &eq() { return _eq; }

  private:
    void build();
    void issueRequest();
    void composePost(sim::Tick t0, bool degraded = false);
    void readTimeline(sim::Tick t0);
    void finishRequest(sim::Tick t0);

    /** Issue one sized call and record size stats. */
    void callTier(baseline::SoftRpcNode &from, unsigned tier,
                  std::size_t req_bytes,
                  std::function<void(const baseline::Payload &)> cb);

    std::size_t sampleReqSize(unsigned tier);
    std::size_t sampleRespSize(unsigned tier);

    SocialNetConfig _cfg;
    sim::EventQueue _eq;
    std::unique_ptr<rpc::CpuSet> _cpus;
    sim::Rng _rng;

    std::array<std::unique_ptr<baseline::SoftRpcNode>, kSnTiers> _tiers;
    std::unique_ptr<baseline::SoftRpcNode> _frontend;

    std::array<sim::Histogram, kSnTiers> _reqSize;
    std::array<sim::Histogram, kSnTiers> _respSize;
    sim::Histogram _allReq{"all_req_bytes"};
    sim::Histogram _allResp{"all_resp_bytes"};
    sim::Histogram _e2e{"socialnet_e2e"};

    // Storm driver (runStorm only).
    std::unique_ptr<app::OpenLoopGen> _storm;

    std::uint64_t _issued = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _degradedServed = 0;
    std::uint64_t _inflight = 0;
    std::size_t _maxInflight = 0;
    double _qps = 0;
    sim::Tick _stopAt = 0;
};

} // namespace dagger::svc

#endif // DAGGER_SVC_SOCIALNET_HH
