#include "svc/tier.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dagger::svc {

Tier::Tier(rpc::DaggerSystem &sys, std::string name,
           rpc::HwThread &dispatch, unsigned downstreams,
           nic::NicConfig cfg, nic::SoftConfig soft)
    : _sys(sys), _name(std::move(name)), _dispatch(&dispatch)
{
    cfg.numFlows = 1 + downstreams;
    _node = &sys.addNode(cfg, soft);
    _server = std::make_unique<rpc::RpcThreadedServer>(*_node);
    _server->addThread(0, dispatch);
    registerMetrics();
}

Tier::Tier(rpc::DaggerSystem &sys, std::string name, unsigned downstreams,
           unsigned cores, nic::NicConfig cfg, nic::SoftConfig soft)
    : _sys(sys), _name(std::move(name))
{
    dagger_assert(cores > 0, "tier '", _name, "' needs at least one core");
    cfg.numFlows = 1 + downstreams;
    _node = &sys.addNode(cfg, soft);
    // The CpuSet is created *after* the node so its threads schedule
    // on the node's shard queue, not the system-wide one.
    _ownCpus = std::make_unique<rpc::CpuSet>(_node->eq(), cores);
    _dispatch = &_ownCpus->core(0).thread(0);
    _server = std::make_unique<rpc::RpcThreadedServer>(*_node);
    _server->addThread(0, *_dispatch);
    registerMetrics();
}

void
Tier::registerMetrics()
{
    // JSON-only (the text report is byte-compared); the gauge closures
    // reference this tier, which — like every registered component —
    // must outlive report rendering.
    sim::MetricScope scope(_sys.metrics(), "svc." + _name);
    scope.intGauge("degraded_calls", [this] { return degradedCalls(); },
                   sim::MetricText::Hide);
    scope.intGauge("shed_calls", [this] { return shedCalls(); },
                   sim::MetricText::Hide);
}

rpc::CpuCore &
Tier::ownCore(unsigned i)
{
    dagger_assert(_ownCpus, "tier '", _name,
                  "' was built with an external dispatch thread");
    return _ownCpus->core(i);
}

rpc::RpcClient &
Tier::connectTo(Tier &server_tier, nic::LbScheme lb)
{
    dagger_assert(_nextClientFlow < _node->numFlows(),
                  "tier '", _name, "' has no free client flows");
    const unsigned flow = _nextClientFlow++;
    auto client = std::make_unique<rpc::RpcClient>(*_node, flow, *_dispatch);
    const proto::ConnId conn =
        _sys.connect(*_node, flow, server_tier.node(), 0, lb);
    client->setConnection(conn);
    if (_retryPolicy.enabled())
        client->setRetryPolicy(_retryPolicy);
    _clients.push_back(std::move(client));
    return *_clients.back();
}

void
Tier::setRetryPolicy(rpc::RetryPolicy policy)
{
    _retryPolicy = policy;
    for (auto &client : _clients)
        client->setRetryPolicy(policy);
}

void
Tier::setTimeoutBudget(sim::Tick total, unsigned attempts)
{
    dagger_assert(total > 0, "timeout budget must be positive");
    // Doubling ladder: T + 2T + ... + 2^attempts * T = total.
    const std::uint64_t ladder = (1ull << (attempts + 1)) - 1;
    rpc::RetryPolicy policy;
    policy.timeout = std::max<sim::Tick>(1, total / ladder);
    policy.maxRetries = attempts;
    policy.backoff = 2.0;
    policy.maxTimeout = total;
    setRetryPolicy(policy);
}

void
Tier::setShedPolicy(rpc::ShedPolicy policy)
{
    _server->setShedPolicy(policy);
}

std::uint64_t
Tier::degradedCalls() const
{
    std::uint64_t n = 0;
    for (const auto &client : _clients)
        n += client->timeouts();
    return n;
}

void
Tier::useWorkerPool(std::vector<rpc::HwThread *> workers)
{
    _pool = std::make_unique<rpc::WorkerPool>(_sys, std::move(workers));
    _server->setWorkerPool(_pool.get());
}

void
Tier::useWorkerPool(unsigned workers)
{
    dagger_assert(_ownCpus, "tier '", _name,
                  "' was built with an external dispatch thread");
    dagger_assert(_ownCpus->numCores() > workers,
                  "tier '", _name, "' has ", _ownCpus->numCores(),
                  " cores, needs ", workers + 1, " for a ", workers,
                  "-worker pool");
    std::vector<rpc::HwThread *> threads;
    for (unsigned w = 0; w < workers; ++w)
        threads.push_back(&_ownCpus->core(1 + w).thread(0));
    useWorkerPool(std::move(threads));
}

} // namespace dagger::svc
