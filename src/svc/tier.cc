#include "svc/tier.hh"

#include "sim/logging.hh"

namespace dagger::svc {

Tier::Tier(rpc::DaggerSystem &sys, std::string name,
           rpc::HwThread &dispatch, unsigned downstreams,
           nic::NicConfig cfg, nic::SoftConfig soft)
    : _sys(sys), _name(std::move(name)), _dispatch(dispatch)
{
    cfg.numFlows = 1 + downstreams;
    _node = &sys.addNode(cfg, soft);
    _server = std::make_unique<rpc::RpcThreadedServer>(*_node);
    _server->addThread(0, dispatch);
    // JSON-only (the text report is byte-compared); the gauge closure
    // references this tier, which — like every registered component —
    // must outlive report rendering.
    sim::MetricScope scope(sys.metrics(), "svc." + _name);
    scope.intGauge("degraded_calls", [this] { return degradedCalls(); },
                   sim::MetricText::Hide);
}

rpc::RpcClient &
Tier::connectTo(Tier &server_tier, nic::LbScheme lb)
{
    dagger_assert(_nextClientFlow < _node->numFlows(),
                  "tier '", _name, "' has no free client flows");
    const unsigned flow = _nextClientFlow++;
    auto client = std::make_unique<rpc::RpcClient>(*_node, flow, _dispatch);
    const proto::ConnId conn =
        _sys.connect(*_node, flow, server_tier.node(), 0, lb);
    client->setConnection(conn);
    if (_retryPolicy.enabled())
        client->setRetryPolicy(_retryPolicy);
    _clients.push_back(std::move(client));
    return *_clients.back();
}

void
Tier::setRetryPolicy(rpc::RetryPolicy policy)
{
    _retryPolicy = policy;
    for (auto &client : _clients)
        client->setRetryPolicy(policy);
}

std::uint64_t
Tier::degradedCalls() const
{
    std::uint64_t n = 0;
    for (const auto &client : _clients)
        n += client->timeouts();
    return n;
}

void
Tier::useWorkerPool(std::vector<rpc::HwThread *> workers)
{
    _pool = std::make_unique<rpc::WorkerPool>(_sys, std::move(workers));
    _server->setWorkerPool(_pool.get());
}

} // namespace dagger::svc
