#include "rpc/client.hh"

#include "sim/logging.hh"

namespace dagger::rpc {

RpcClient::RpcClient(DaggerNode &node, unsigned flow, HwThread &thread)
    : _node(node), _flow(flow), _thread(thread)
{
    dagger_assert(flow < node.numFlows(), "client flow out of range");
    node.flow(flow).rx.setNotify([this] {
        if (_rxScheduled)
            return;
        _rxScheduled = true;
        processResponses();
    });
}

void
RpcClient::setBestEffort(bool on)
{
    _bestEffort = on;
    if (on)
        _node.flow(_flow).rx.setNotify({});
}

void
RpcClient::callAsyncOn(proto::ConnId conn, proto::FnId fn, const void *data,
                       std::size_t len, ResponseCb cb)
{
    dagger_assert(conn != 0, "callAsync without a connection");
    DaggerSystem &sys = _node.system();
    sim::Tick cost = sys.sendCpuCost(_node) +
                     _node.nicDev().cciPort().hostPollPenalty();
    if (_shared)
        cost += sys.swCost().srqLockCost;

    const proto::RpcId rpc_id = _nextRpcId++;
    proto::RpcMessage msg(conn, rpc_id, fn, proto::MsgType::Request, data,
                          len);
    if (_bestEffort) {
        // Fire and forget: no pending entry, no completion tracking.
        _thread.execute(cost, [this, msg = std::move(msg)]() {
            if (_node.flow(_flow).tx.push(msg))
                ++_sent;
            else
                ++_sendFailures;
        });
        return;
    }
    _pending.emplace(rpc_id, Pending{std::move(cb), 0});

    _thread.execute(cost, [this, rpc_id, msg = std::move(msg)]() {
        auto it = _pending.find(rpc_id);
        if (it == _pending.end())
            return; // cancelled
        if (!_node.flow(_flow).tx.push(msg)) {
            ++_sendFailures;
            _pending.erase(it);
            return;
        }
        it->second.sentAt = _node.system().eq().now();
        ++_sent;
    });
}

void
RpcClient::callOneWay(proto::FnId fn, const void *data, std::size_t len)
{
    dagger_assert(_conn != 0, "callOneWay without a connection");
    DaggerSystem &sys = _node.system();
    sim::Tick cost = sys.sendCpuCost(_node) +
                     _node.nicDev().cciPort().hostPollPenalty();
    if (_shared)
        cost += sys.swCost().srqLockCost;
    proto::RpcMessage msg(_conn, _nextRpcId++, fn, proto::MsgType::Request,
                          data, len);
    _thread.execute(cost, [this, msg = std::move(msg)]() {
        if (_node.flow(_flow).tx.push(msg))
            ++_sent;
        else
            ++_sendFailures;
    });
}

void
RpcClient::processResponses()
{
    proto::RpcMessage msg;
    if (!_node.flow(_flow).rx.popMessage(msg)) {
        _rxScheduled = false;
        return;
    }
    const SwCost &costs = _node.system().swCost();
    _thread.execute(costs.completionCost,
                    [this, msg = std::move(msg)]() mutable {
                        auto it = _pending.find(msg.rpcId());
                        if (it == _pending.end()) {
                            ++_orphans;
                        } else {
                            ++_responses;
                            const sim::Tick now = _node.system().eq().now();
                            if (it->second.sentAt)
                                _latency.record(now - it->second.sentAt);
                            ResponseCb cb = std::move(it->second.cb);
                            _pending.erase(it);
                            if (cb)
                                cb(msg);
                            else
                                _cq.push(std::move(msg));
                        }
                        processResponses();
                    });
}

RpcClient &
RpcClientPool::addClient(unsigned flow, HwThread &thread)
{
    _clients.push_back(std::make_unique<RpcClient>(_node, flow, thread));
    return *_clients.back();
}

sim::Histogram
RpcClientPool::aggregateLatency() const
{
    sim::Histogram h("pool_rtt");
    for (const auto &c : _clients)
        h.merge(c->_latency);
    return h;
}

std::uint64_t
RpcClientPool::totalResponses() const
{
    std::uint64_t n = 0;
    for (const auto &c : _clients)
        n += c->_responses;
    return n;
}

} // namespace dagger::rpc
