#include "rpc/client.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dagger::rpc {

RpcClient::RpcClient(DaggerNode &node, unsigned flow, HwThread &thread)
    : _node(node), _flow(flow), _thread(thread)
{
    dagger_assert(flow < node.numFlows(), "client flow out of range");
    installRxNotify();
}

void
RpcClient::installRxNotify()
{
    _node.flow(_flow).rx.setNotify([this] {
        if (_rxScheduled)
            return;
        _rxScheduled = true;
        processResponses();
    });
}

void
RpcClient::setBestEffort(bool on)
{
    _bestEffort = on;
    if (on) {
        _node.flow(_flow).rx.setNotify({});
        // A drain chain in flight stops at its next processResponses()
        // step; the flag must not stay latched, or switching
        // best-effort back off would never drain the ring again.
        _rxScheduled = false;
        return;
    }
    installRxNotify();
    // Drain whatever piled up while best-effort was on.
    if (!_rxScheduled && _node.flow(_flow).rx.occupied() > 0) {
        _rxScheduled = true;
        processResponses();
    }
}

void
RpcClient::callAsyncOn(proto::ConnId conn, proto::FnId fn, const void *data,
                       std::size_t len, ResponseCb cb)
{
    issueCall(conn, fn, data, len, std::move(cb), {});
}

void
RpcClient::callAsyncStatus(proto::FnId fn, const void *data, std::size_t len,
                           StatusCb cb)
{
    issueCall(_conn, fn, data, len, {}, std::move(cb));
}

void
RpcClient::issueCall(proto::ConnId conn, proto::FnId fn, const void *data,
                     std::size_t len, ResponseCb cb, StatusCb scb)
{
    dagger_assert(conn != 0, "callAsync without a connection");
    if (len > proto::kMaxPayloadBytes) {
        // Recoverable API error: the wire format cannot carry this
        // payload (payloadLen is 16-bit), so the call is refused
        // before any simulated work instead of tripping an assert.
        ++_sendFailures;
        if (scb) {
            proto::RpcMessage empty;
            scb(CallStatus::Rejected, empty);
        }
        return;
    }
    DaggerSystem &sys = _node.system();
    sim::Tick cost = sys.sendCpuCost(_node) +
                     _node.nicDev().cciPort().hostPollPenalty();
    if (_shared)
        cost += sys.swCost().srqLockCost;

    const proto::RpcId rpc_id = _nextRpcId++;
    proto::PayloadBuf payload(data, len);
    if (_bestEffort) {
        // Fire and forget: no pending entry, no completion tracking.
        proto::RpcMessage msg(conn, rpc_id, fn, proto::MsgType::Request,
                              std::move(payload));
        _thread.execute(cost, [this, msg = std::move(msg)]() {
            if (_node.flow(_flow).tx.push(msg))
                ++_sent;
            else
                ++_sendFailures;
        });
        return;
    }
    Pending entry;
    entry.cb = std::move(cb);
    entry.scb = std::move(scb);
    if (_retry.enabled()) {
        // Keep what a resend needs; without a policy this handle (and
        // the timer) is skipped and tracked calls cost what they
        // always did.
        entry.conn = conn;
        entry.fn = fn;
        entry.payload = payload;
    }
    _pending.emplace(rpc_id, std::move(entry));
    proto::RpcMessage msg(conn, rpc_id, fn, proto::MsgType::Request,
                          std::move(payload));

    const sim::Tick issued_at = _node.eq().now();
    _thread.execute(cost, [this, rpc_id, issued_at, msg = std::move(msg)]() {
        auto it = _pending.find(rpc_id);
        if (it == _pending.end())
            return; // cancelled
        if (!_node.flow(_flow).tx.push(msg)) {
            ++_sendFailures;
            if (_retry.enabled()) {
                // Full ring on the first copy: keep the entry and let
                // a short re-attempt timer carry it instead of
                // dropping the call on the floor.
                ++_resendDrops;
                _node.system().reliability().resendDrops.inc();
                armResendRetry(rpc_id);
                return;
            }
            _pending.erase(it);
            return;
        }
        const sim::Tick now = _node.eq().now();
        it->second.sentAt = now;
        ++_sent;
        if (_retry.enabled()) {
            // The timeout budget starts when the request reaches the
            // TX ring: arming at issue time raced the send lambda
            // under CPU backlog, so the timer could fire — and
            // retransmit — before the first copy was ever sent.
            if (now - issued_at >= _retry.timeout) {
                ++_spuriousArms;
                _node.system().reliability().spuriousArms.inc();
            }
            armCallTimer(rpc_id, _retry.timeout);
        }
    });
}

sim::Tick
RpcClient::retryTimeout(unsigned attempt) const
{
    double t = static_cast<double>(_retry.timeout);
    for (unsigned i = 0; i < attempt; ++i)
        t *= _retry.backoff;
    if (_retry.maxTimeout > 0)
        t = std::min(t, static_cast<double>(_retry.maxTimeout));
    return static_cast<sim::Tick>(t);
}

void
RpcClient::rememberRetried(proto::RpcId rpc_id)
{
    _retriedDone.insert(rpc_id);
    if (_retriedDone.size() > kRetriedDoneCap)
        _retriedDone.erase(_retriedDone.begin()); // oldest id first
}

void
RpcClient::armCallTimer(proto::RpcId rpc_id, sim::Tick timeout)
{
    auto expire = [this, rpc_id] { onCallTimeout(rpc_id); };
    // One timer per in-flight retried call; hot under loss, so it must
    // stay on the event pool's allocation-free path.
    static_assert(sim::EventClosure::fitsInline<decltype(expire)>());
    _node.eq().schedule(timeout, std::move(expire));
}

void
RpcClient::onCallTimeout(proto::RpcId rpc_id)
{
    auto it = _pending.find(rpc_id);
    if (it == _pending.end())
        return; // completed before the timer fired
    Pending &p = it->second;
    if (p.attempt >= _retry.maxRetries) {
        // Budget exhausted: complete the call with a status instead of
        // leaving a silent orphan behind.
        ++_timeouts;
        _node.system().reliability().timeouts.inc();
        rememberRetried(rpc_id);
        StatusCb scb = std::move(p.scb);
        _pending.erase(it);
        if (scb) {
            proto::RpcMessage empty;
            scb(CallStatus::TimedOut, empty);
        }
        return;
    }
    ++p.attempt;
    ++_retriesSent;
    _node.system().reliability().retries.inc();
    resend(rpc_id);
    armCallTimer(rpc_id, retryTimeout(p.attempt));
}

void
RpcClient::resend(proto::RpcId rpc_id)
{
    auto it = _pending.find(rpc_id);
    if (it == _pending.end())
        return; // resolved meanwhile
    Pending &p = it->second;
    proto::RpcMessage msg(p.conn, rpc_id, p.fn, proto::MsgType::Request,
                          p.payload);
    DaggerSystem &sys = _node.system();
    sim::Tick cost = sys.sendCpuCost(_node) +
                     _node.nicDev().cciPort().hostPollPenalty();
    if (_shared)
        cost += sys.swCost().srqLockCost;
    _thread.execute(cost, [this, rpc_id, msg = std::move(msg)]() {
        auto it = _pending.find(rpc_id);
        if (it == _pending.end())
            return; // resolved while the resend was queued
        if (!_node.flow(_flow).tx.push(msg)) {
            // A full backoff used to elapse here with nothing in
            // flight; re-attempt on a short timer instead, and make
            // the storm visible.
            ++_sendFailures;
            ++_resendDrops;
            _node.system().reliability().resendDrops.inc();
            armResendRetry(rpc_id);
            return;
        }
        if (it->second.sentAt == 0) {
            // First copy to reach the ring (the issue-time send was
            // dropped): start the round-trip clock and the timeout.
            it->second.sentAt = _node.eq().now();
            ++_sent;
            if (_retry.enabled())
                armCallTimer(rpc_id, _retry.timeout);
        }
    });
}

void
RpcClient::armResendRetry(proto::RpcId rpc_id)
{
    auto it = _pending.find(rpc_id);
    if (it == _pending.end() || it->second.resendQueued)
        return;
    it->second.resendQueued = true;
    // Deterministic short re-attempt, a fraction of the first timeout:
    // long enough for the NIC to drain ring entries, far shorter than
    // a backoff step.
    const sim::Tick delay = std::max<sim::Tick>(1, _retry.timeout / 8);
    auto fire = [this, rpc_id] {
        auto it2 = _pending.find(rpc_id);
        if (it2 == _pending.end())
            return;
        it2->second.resendQueued = false;
        resend(rpc_id);
    };
    // Hot under ring backpressure; keep it on the event pool's
    // allocation-free path.
    static_assert(sim::EventClosure::fitsInline<decltype(fire)>());
    _node.eq().schedule(delay, std::move(fire));
}

void
RpcClient::callOneWay(proto::FnId fn, const void *data, std::size_t len)
{
    dagger_assert(_conn != 0, "callOneWay without a connection");
    if (len > proto::kMaxPayloadBytes) {
        ++_sendFailures; // recoverable: refused before any work
        return;
    }
    DaggerSystem &sys = _node.system();
    sim::Tick cost = sys.sendCpuCost(_node) +
                     _node.nicDev().cciPort().hostPollPenalty();
    if (_shared)
        cost += sys.swCost().srqLockCost;
    proto::RpcMessage msg(_conn, _nextRpcId++, fn, proto::MsgType::Request,
                          data, len);
    _thread.execute(cost, [this, msg = std::move(msg)]() {
        if (_node.flow(_flow).tx.push(msg))
            ++_sent;
        else
            ++_sendFailures;
    });
}

void
RpcClient::processResponses()
{
    if (_bestEffort) {
        _rxScheduled = false;
        return; // responses pile up (and overflow) in the RX ring
    }
    proto::RpcMessage msg;
    if (!_node.flow(_flow).rx.popMessage(msg)) {
        _rxScheduled = false;
        return;
    }
    const SwCost &costs = _node.system().swCost();
    _thread.execute(costs.completionCost,
                    [this, msg = std::move(msg)]() mutable {
                        auto it = _pending.find(msg.rpcId());
                        if (it == _pending.end()) {
                            if (_retriedDone.count(msg.rpcId())) {
                                // Duplicate or post-timeout response of
                                // a retried call: accounted, not an
                                // unknown orphan — and never delivered
                                // twice.
                                ++_lateResponses;
                                _node.system()
                                    .reliability()
                                    .lateResponses.inc();
                            } else {
                                ++_orphans;
                            }
                        } else {
                            ++_responses;
                            _node.system().reliability().completions.inc();
                            const sim::Tick now = _node.eq().now();
                            if (it->second.sentAt)
                                _latency.record(now - it->second.sentAt);
                            if (it->second.attempt > 0)
                                rememberRetried(msg.rpcId());
                            ResponseCb cb = std::move(it->second.cb);
                            StatusCb scb = std::move(it->second.scb);
                            _pending.erase(it);
                            if (scb)
                                scb(CallStatus::Ok, msg);
                            else if (cb)
                                cb(msg);
                            else
                                _cq.push(std::move(msg));
                        }
                        processResponses();
                    });
}

RpcClient &
RpcClientPool::addClient(unsigned flow, HwThread &thread)
{
    _clients.push_back(std::make_unique<RpcClient>(_node, flow, thread));
    return *_clients.back();
}

sim::Histogram
RpcClientPool::aggregateLatency() const
{
    sim::Histogram h("pool_rtt");
    for (const auto &c : _clients)
        h.merge(c->_latency);
    return h;
}

std::uint64_t
RpcClientPool::totalResponses() const
{
    std::uint64_t n = 0;
    for (const auto &c : _clients)
        n += c->_responses;
    return n;
}

} // namespace dagger::rpc
