#include "rpc/cpu.hh"

#include "sim/logging.hh"

namespace dagger::rpc {

CpuCore::CpuCore(EventQueue &eq, unsigned id, double smt_penalty)
    : _eq(eq), _id(id), _smtPenalty(smt_penalty)
{
    dagger_assert(smt_penalty >= 1.0, "SMT penalty must be >= 1.0");
    for (unsigned i = 0; i < _threads.size(); ++i) {
        _threads[i]._core = this;
        _threads[i]._index = i;
    }
}

HwThread &
CpuCore::thread(unsigned i)
{
    dagger_assert(i < _threads.size(), "bad hw thread ", i);
    return _threads[i];
}

double
CpuCore::utilization(Tick window) const
{
    if (window == 0)
        return 0.0;
    const Tick busy = _threads[0]._busyTicks + _threads[1]._busyTicks;
    const double u = static_cast<double>(busy) / static_cast<double>(window);
    return u > 1.0 ? 1.0 : u;
}

bool
HwThread::idle() const
{
    return _busyUntil <= _core->_eq.now();
}

void
HwThread::execute(Tick cost, EventFn fn)
{
    EventQueue &eq = _core->_eq;
    const Tick start = std::max(eq.now(), _busyUntil);
    // SMT contention: if the sibling hardware thread is busy past our
    // start time, this slice runs slower.
    const HwThread &sibling = _core->_threads[_index ^ 1];
    Tick effective = cost;
    if (sibling._busyUntil > start) {
        effective = static_cast<Tick>(
            static_cast<double>(cost) * _core->_smtPenalty);
    }
    _busyUntil = start + effective;
    _busyTicks += effective;
    eq.scheduleAt(_busyUntil, std::move(fn), sim::Priority::Software);
}

CpuSet::CpuSet(EventQueue &eq, unsigned cores, double smt_penalty)
{
    dagger_assert(cores >= 1, "CpuSet needs cores");
    _cores.reserve(cores);
    for (unsigned i = 0; i < cores; ++i)
        _cores.push_back(std::make_unique<CpuCore>(eq, i, smt_penalty));
}

CpuCore &
CpuSet::core(unsigned i)
{
    dagger_assert(i < _cores.size(), "bad core ", i);
    return *_cores[i];
}

HwThread &
CpuSet::logicalThread(unsigned t)
{
    dagger_assert(t / 2 < _cores.size(), "logical thread ", t,
                  " exceeds core count");
    return _cores[t / 2]->thread(t % 2);
}

} // namespace dagger::rpc
