/**
 * @file
 * Host-side network buffers: the RX/TX rings of Fig. 8.
 *
 * "RX/TX rings are comprised of RX/TX buffers and free buffers. The
 * former store RPC payloads for all requests until the NIC/completion
 * queue acknowledges receiving the data by placing the ID of the
 * corresponding RX/TX buffer entry into the free buffer." (§4.4)
 *
 * The rings are functional: real frames are stored and moved.  Entry
 * reuse models the paper exactly — a TX entry becomes writable again
 * only after the NIC's bookkeeping message releases it, so an
 * undersized ring blocks the flow (the paper sizes TX rings at >= 10x
 * the mean RPC size per 12.4 Mrps flow for this reason).
 */

#ifndef DAGGER_RPC_RINGS_HH
#define DAGGER_RPC_RINGS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "proto/wire.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace dagger::rpc {

/**
 * Transmit ring: software producer, NIC consumer.
 * Capacity is counted in 64 B frames (= cache lines = buffer entries).
 */
class TxRing
{
  public:
    explicit TxRing(std::size_t entries) : _capacity(entries)
    {
        dagger_assert(entries > 0, "TxRing needs capacity");
    }

    std::size_t capacity() const { return _capacity; }

    /** Frames written but not yet released by NIC bookkeeping. */
    std::size_t used() const { return _used; }

    /** Frames written and not yet fetched by the NIC. */
    std::size_t pendingFrames() const { return _pending.size(); }

    /** True if a message of @p frames frames fits right now. */
    bool
    hasSpace(std::size_t frames) const
    {
        return _used + frames <= _capacity;
    }

    /**
     * Software: append all frames of @p msg.
     * @retval false the ring is full (flow blocked); nothing written.
     */
    bool
    push(const proto::RpcMessage &msg)
    {
        auto frames = msg.toFrames();
        if (!hasSpace(frames.size())) {
            ++_blocked;
            return false;
        }
        _used += frames.size();
        _pushedFrames += frames.size();
        // Occupancy is the wrap-math ground truth: entries written but
        // not yet released never exceed the ring, and frames the NIC
        // has not claimed yet are a subset of the occupied ones.
        DAGGER_INVARIANT(_used <= _capacity,
                         "TX ring over-filled: used=", _used,
                         " capacity=", _capacity);
        DAGGER_DCHECK(_pending.size() + frames.size() <= _used,
                      "TX ring pending frames exceed occupancy");
        for (auto &f : frames)
            _pending.push_back(std::move(f));
        if (_notify)
            _notify();
        return true;
    }

    /**
     * NIC: claim up to @p n frames in FIFO order.  Claimed entries
     * stay occupied until release().
     */
    std::vector<proto::Frame>
    popFrames(std::size_t n)
    {
        std::vector<proto::Frame> out;
        const std::size_t take = std::min(n, _pending.size());
        out.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(std::move(_pending.front()));
            _pending.pop_front();
        }
        _poppedFrames += take;
        DAGGER_DCHECK(_poppedFrames <= _pushedFrames,
                      "TX ring popped more frames than were pushed");
        return out;
    }

    /** NIC bookkeeping: return @p n entries to the free buffer. */
    void
    release(std::size_t n)
    {
        dagger_assert(n <= _used, "releasing more than used");
        _used -= n;
        if (_spaceNotify && n > 0)
            _spaceNotify();
    }

    /** NIC subscribes: called on every push. */
    void setNotify(std::function<void()> fn) { _notify = std::move(fn); }

    /** Software subscribes: called when space frees up. */
    void
    setSpaceNotify(std::function<void()> fn)
    {
        _spaceNotify = std::move(fn);
    }

    std::uint64_t pushedFrames() const { return _pushedFrames; }
    std::uint64_t poppedFrames() const { return _poppedFrames; }
    std::uint64_t blocked() const { return _blocked; }

  private:
    std::size_t _capacity;
    // Ring state is node-domain: producer (software) and consumer
    // (NIC) both run on the owning node's shard queue.
    DAGGER_OWNED_BY(node) std::size_t _used = 0;
    DAGGER_OWNED_BY(node) std::deque<proto::Frame> _pending;
    std::function<void()> _notify;
    std::function<void()> _spaceNotify;
    DAGGER_OWNED_BY(node) std::uint64_t _pushedFrames = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _poppedFrames = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _blocked = 0;
};

/**
 * Receive ring: NIC producer, software consumer.  The NIC delivers
 * whole frames; software reassembles messages (paper §4.7: software
 * reassembly).  Overflow at delivery time is a drop, mirroring the
 * paper's "<1% packet drops on the server" methodology.
 */
class RxRing
{
  public:
    explicit RxRing(std::size_t entries) : _capacity(entries)
    {
        dagger_assert(entries > 0, "RxRing needs capacity");
    }

    std::size_t capacity() const { return _capacity; }
    std::size_t occupied() const { return _frames.size(); }

    /**
     * NIC: deliver a batch of frames.
     * @return number of frames actually accepted (rest dropped).
     */
    std::size_t
    deliver(std::vector<proto::Frame> frames)
    {
        std::size_t accepted = 0;
        for (auto &f : frames) {
            if (_frames.size() >= _capacity) {
                ++_drops;
                continue;
            }
            _frames.push_back(std::move(f));
            ++accepted;
        }
        DAGGER_INVARIANT(_frames.size() <= _capacity,
                         "RX ring over-filled: occupied=", _frames.size(),
                         " capacity=", _capacity);
        _deliveredFrames += accepted;
        if (_notify && accepted > 0)
            _notify();
        return accepted;
    }

    /**
     * Software: pop the next complete RPC message, feeding frames
     * through the reassembler.  Frees ring entries immediately (the
     * consumer copies payloads into the completion queue, step 7 in
     * Fig. 8).
     * @retval false no complete message available.
     */
    bool
    popMessage(proto::RpcMessage &out)
    {
        while (!_frames.empty()) {
            proto::Frame f = std::move(_frames.front());
            _frames.pop_front();
            if (_reassembler.push(std::move(f), out))
                return true;
        }
        return false;
    }

    /** Software subscribes: called whenever frames arrive. */
    void setNotify(std::function<void()> fn) { _notify = std::move(fn); }

    std::uint64_t drops() const { return _drops; }
    std::uint64_t deliveredFrames() const { return _deliveredFrames; }
    std::uint64_t malformed() const { return _reassembler.malformed(); }

  private:
    std::size_t _capacity;
    DAGGER_OWNED_BY(node) std::deque<proto::Frame> _frames;
    DAGGER_OWNED_BY(node) proto::Reassembler _reassembler;
    std::function<void()> _notify;
    DAGGER_OWNED_BY(node) std::uint64_t _drops = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _deliveredFrames = 0;
};

/** A flow's pair of rings (one per NIC flow, Fig. 7). */
struct FlowRings
{
    FlowRings(std::size_t tx_entries, std::size_t rx_entries)
        : tx(tx_entries), rx(rx_entries)
    {}

    TxRing tx;
    RxRing rx;

    /**
     * Register ring-health statistics.  Only the RX drop count is
     * text-visible, under the caller-supplied legacy label
     * ("flow<N>_rx_drops").
     */
    void
    registerMetrics(sim::MetricScope scope,
                    std::string rx_drops_label) const
    {
        scope.intGauge("rx.drops", [this] { return rx.drops(); },
                       sim::MetricText::Show, std::move(rx_drops_label));
        scope.intGauge("rx.delivered_frames",
                       [this] { return rx.deliveredFrames(); },
                       sim::MetricText::Hide);
        scope.intGauge("rx.malformed", [this] { return rx.malformed(); },
                       sim::MetricText::Hide);
        scope.intGauge("rx.occupied",
                       [this] {
                           return static_cast<std::uint64_t>(rx.occupied());
                       },
                       sim::MetricText::Hide);
        scope.intGauge("tx.pushed_frames",
                       [this] { return tx.pushedFrames(); },
                       sim::MetricText::Hide);
        scope.intGauge("tx.popped_frames",
                       [this] { return tx.poppedFrames(); },
                       sim::MetricText::Hide);
        scope.intGauge("tx.blocked", [this] { return tx.blocked(); },
                       sim::MetricText::Hide);
        scope.intGauge("tx.used",
                       [this] {
                           return static_cast<std::uint64_t>(tx.used());
                       },
                       sim::MetricText::Hide);
    }
};

} // namespace dagger::rpc

#endif // DAGGER_RPC_RINGS_HH
