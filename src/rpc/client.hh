/**
 * @file
 * RpcClient / RpcClientPool: the client half of the Dagger API (§4.2).
 *
 * Each RpcClient is 1-to-1 mapped to a NIC flow and its RX/TX ring
 * pair (Fig. 7).  Calls are asynchronous: the continuation (or the
 * CompletionQueue) receives the response on the client's hardware
 * thread.  Several connections may share one client's rings — the
 * Shared Receive Queue model — in which case an explicit lock cost is
 * charged on the TX path.
 */

#ifndef DAGGER_RPC_CLIENT_HH
#define DAGGER_RPC_CLIENT_HH

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "proto/wire.hh"
#include "rpc/completion_queue.hh"
#include "rpc/cpu.hh"
#include "rpc/system.hh"
#include "sim/check.hh"
#include "sim/stats.hh"

namespace dagger::rpc {

/** Outcome of a tracked call, delivered to a StatusCb. */
enum class CallStatus : std::uint8_t {
    Ok,       ///< response arrived; the message argument is valid
    TimedOut, ///< retry budget exhausted; the message argument is empty
    Rejected, ///< payload exceeds proto::kMaxPayloadBytes; never sent
};

/**
 * Per-call timeout + retry policy (off by default: timeout == 0).
 * Each retry multiplies the timeout by @ref backoff, capped at
 * @ref maxTimeout; after @ref maxRetries resends the call completes
 * with CallStatus::TimedOut instead of lingering as a silent orphan.
 */
struct RetryPolicy
{
    sim::Tick timeout = 0;    ///< first-attempt timeout (0 = disabled)
    unsigned maxRetries = 3;  ///< resend budget after the first attempt
    double backoff = 2.0;     ///< timeout multiplier per retry
    sim::Tick maxTimeout = 0; ///< backoff cap (0 = uncapped)

    bool enabled() const { return timeout > 0; }
};

/** The client endpoint for one NIC flow. */
class RpcClient
{
  public:
    using ResponseCb = std::function<void(const proto::RpcMessage &)>;
    /** Status-aware continuation: fires exactly once per call. */
    using StatusCb =
        std::function<void(CallStatus, const proto::RpcMessage &)>;

    /**
     * @param node   the Dagger node (NIC + rings) this client uses
     * @param flow   NIC flow owned by this client
     * @param thread hardware thread the client's software runs on
     */
    RpcClient(DaggerNode &node, unsigned flow, HwThread &thread);

    RpcClient(const RpcClient &) = delete;
    RpcClient &operator=(const RpcClient &) = delete;

    /** Bind the default connection used by callAsync. */
    void setConnection(proto::ConnId conn) { _conn = conn; }
    proto::ConnId connection() const { return _conn; }

    /**
     * Issue a non-blocking call on the default connection.
     * The continuation runs on this client's hardware thread when the
     * response arrives; with no continuation the response lands in
     * the CompletionQueue.
     */
    void
    callAsync(proto::FnId fn, const void *data, std::size_t len,
              ResponseCb cb = {})
    {
        callAsyncOn(_conn, fn, data, len, std::move(cb));
    }

    /** Issue a non-blocking call on an explicit connection (SRQ). */
    void callAsyncOn(proto::ConnId conn, proto::FnId fn, const void *data,
                     std::size_t len, ResponseCb cb = {});

    /**
     * Issue a tracked call whose continuation also reports the call
     * outcome: CallStatus::Ok with the response, or (when a
     * RetryPolicy is set and the budget runs out) CallStatus::TimedOut
     * with an empty message.  Fires exactly once per call.
     */
    void callAsyncStatus(proto::FnId fn, const void *data, std::size_t len,
                         StatusCb cb);

    /** POD-payload convenience wrapper for callAsyncStatus. */
    template <typename T>
    void
    callPodStatus(proto::FnId fn, const T &value, StatusCb cb)
    {
        callAsyncStatus(fn, &value, sizeof(T), std::move(cb));
    }

    /**
     * Install a per-call timeout/retry policy.  When enabled, the
     * client keeps the payload handle per in-flight call and resends
     * it on timeout with capped exponential backoff; budget exhaustion
     * is surfaced through the StatusCb (or just the timeouts() counter
     * for plain-callback calls).
     */
    void setRetryPolicy(RetryPolicy policy) { _retry = policy; }
    const RetryPolicy &retryPolicy() const { return _retry; }

    /**
     * One-way call: fire-and-forget, no response expected and no
     * completion-tracking state kept (IDL `returns(void)` rpcs).
     */
    void callOneWay(proto::FnId fn, const void *data, std::size_t len);

    /** POD-payload convenience wrapper. */
    template <typename T>
    void
    callPod(proto::FnId fn, const T &value, ResponseCb cb = {})
    {
        callAsync(fn, &value, sizeof(T), std::move(cb));
    }

    /**
     * Mark this client's rings as shared between multiple software
     * threads; charges the SRQ lock cost on every send (§4.2).
     */
    void setSharedByThreads(bool shared) { _shared = shared; }

    /**
     * Best-effort mode (§5.3's 16.5 Mrps peak): fire-and-forget sends
     * with no completion tracking; responses pile up in the RX ring
     * and overflow as drops ("best-effort request processing by
     * allowing arbitrary packet drops").
     */
    void setBestEffort(bool on);

    CompletionQueue &completions() { return _cq; }

    std::uint64_t sent() const { return _sent; }
    std::uint64_t responses() const { return _responses; }
    std::uint64_t sendFailures() const { return _sendFailures; }
    std::uint64_t orphanResponses() const { return _orphans; }
    /** Calls that exhausted the retry budget. */
    std::uint64_t timeouts() const { return _timeouts; }
    /** Resends issued by the retry policy. */
    std::uint64_t retriesSent() const { return _retriesSent; }
    /** Responses that arrived after their call was retried/timed out. */
    std::uint64_t lateResponses() const { return _lateResponses; }
    /**
     * Timer arms whose send was delayed past the first timeout by CPU
     * backlog — calls that the old issue-time arming would have
     * spuriously retransmitted before they ever reached the TX ring.
     */
    std::uint64_t spuriousArms() const { return _spuriousArms; }
    /** Resend attempts that found the TX ring full. */
    std::uint64_t resendDrops() const { return _resendDrops; }
    std::size_t pendingCalls() const { return _pending.size(); }

    /** Round-trip latency of completed calls, in ticks. */
    sim::Histogram &latency() { return _latency; }

    HwThread &thread() { return _thread; }
    DaggerNode &node() { return _node; }
    unsigned flow() const { return _flow; }

  private:
    friend class RpcClientPool;

    void installRxNotify();
    void processResponses();
    void issueCall(proto::ConnId conn, proto::FnId fn, const void *data,
                   std::size_t len, ResponseCb cb, StatusCb scb);
    void armCallTimer(proto::RpcId rpc_id, sim::Tick timeout);
    void onCallTimeout(proto::RpcId rpc_id);
    void resend(proto::RpcId rpc_id);
    void armResendRetry(proto::RpcId rpc_id);
    sim::Tick retryTimeout(unsigned attempt) const;
    void rememberRetried(proto::RpcId rpc_id);

    DaggerNode &_node;
    unsigned _flow;
    HwThread &_thread;
    proto::ConnId _conn = 0;
    // Call state below runs on the owning node's shard queue (the
    // client's HwThread events and NIC delivery share that domain).
    DAGGER_OWNED_BY(node) proto::RpcId _nextRpcId = 1;
    bool _shared = false;
    bool _bestEffort = false;
    DAGGER_OWNED_BY(node) bool _rxScheduled = false;
    RetryPolicy _retry;

    struct Pending
    {
        ResponseCb cb;
        StatusCb scb;
        sim::Tick sentAt = 0;
        unsigned attempt = 0; ///< resends issued so far
        /** A short ring-full re-attempt is queued; suppresses a second
         *  chain when the backoff timer fires while one is pending. */
        bool resendQueued = false;
        // Resend state, kept only while a RetryPolicy is enabled.  The
        // payload handle is shared with the in-flight message: resends
        // re-wrap it, they never re-copy the bytes.
        proto::ConnId conn = 0;
        proto::FnId fn = 0;
        proto::PayloadBuf payload;
    };
    DAGGER_OWNED_BY(node) std::unordered_map<proto::RpcId, Pending> _pending;

    /** Ids of retried/timed-out calls, so a late (or duplicate)
     *  response counts as such instead of as an unknown orphan.
     *  Bounded; ordered so eviction is deterministic. */
    DAGGER_OWNED_BY(node) std::set<proto::RpcId> _retriedDone;
    static constexpr std::size_t kRetriedDoneCap = 1024;

    DAGGER_OWNED_BY(node) CompletionQueue _cq;
    DAGGER_OWNED_BY(node) sim::Histogram _latency{"rpc_rtt"};
    DAGGER_OWNED_BY(node) std::uint64_t _sent = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _responses = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _sendFailures = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _orphans = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _timeouts = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _retriesSent = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _lateResponses = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _spuriousArms = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _resendDrops = 0;
};

/**
 * RpcClientPool: "encapsulates a pool of RPC clients (RpcClient) that
 * concurrently call remote procedures registered in the corresponding
 * RpcThreadedServer" (§4.2).
 */
class RpcClientPool
{
  public:
    explicit RpcClientPool(DaggerNode &node) : _node(node) {}

    /** Create a client on @p flow bound to @p thread. */
    RpcClient &addClient(unsigned flow, HwThread &thread);

    RpcClient &client(std::size_t i) { return *_clients.at(i); }
    std::size_t size() const { return _clients.size(); }
    DaggerNode &node() { return _node; }

    /** Aggregate RTT histogram across the pool's clients. */
    sim::Histogram aggregateLatency() const;

    /** Aggregate completed-response count. */
    std::uint64_t totalResponses() const;

  private:
    DaggerNode &_node;
    std::vector<std::unique_ptr<RpcClient>> _clients;
};

} // namespace dagger::rpc

#endif // DAGGER_RPC_CLIENT_HH
