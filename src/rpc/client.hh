/**
 * @file
 * RpcClient / RpcClientPool: the client half of the Dagger API (§4.2).
 *
 * Each RpcClient is 1-to-1 mapped to a NIC flow and its RX/TX ring
 * pair (Fig. 7).  Calls are asynchronous: the continuation (or the
 * CompletionQueue) receives the response on the client's hardware
 * thread.  Several connections may share one client's rings — the
 * Shared Receive Queue model — in which case an explicit lock cost is
 * charged on the TX path.
 */

#ifndef DAGGER_RPC_CLIENT_HH
#define DAGGER_RPC_CLIENT_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "proto/wire.hh"
#include "rpc/completion_queue.hh"
#include "rpc/cpu.hh"
#include "rpc/system.hh"
#include "sim/stats.hh"

namespace dagger::rpc {

/** The client endpoint for one NIC flow. */
class RpcClient
{
  public:
    using ResponseCb = std::function<void(const proto::RpcMessage &)>;

    /**
     * @param node   the Dagger node (NIC + rings) this client uses
     * @param flow   NIC flow owned by this client
     * @param thread hardware thread the client's software runs on
     */
    RpcClient(DaggerNode &node, unsigned flow, HwThread &thread);

    RpcClient(const RpcClient &) = delete;
    RpcClient &operator=(const RpcClient &) = delete;

    /** Bind the default connection used by callAsync. */
    void setConnection(proto::ConnId conn) { _conn = conn; }
    proto::ConnId connection() const { return _conn; }

    /**
     * Issue a non-blocking call on the default connection.
     * The continuation runs on this client's hardware thread when the
     * response arrives; with no continuation the response lands in
     * the CompletionQueue.
     */
    void
    callAsync(proto::FnId fn, const void *data, std::size_t len,
              ResponseCb cb = {})
    {
        callAsyncOn(_conn, fn, data, len, std::move(cb));
    }

    /** Issue a non-blocking call on an explicit connection (SRQ). */
    void callAsyncOn(proto::ConnId conn, proto::FnId fn, const void *data,
                     std::size_t len, ResponseCb cb = {});

    /**
     * One-way call: fire-and-forget, no response expected and no
     * completion-tracking state kept (IDL `returns(void)` rpcs).
     */
    void callOneWay(proto::FnId fn, const void *data, std::size_t len);

    /** POD-payload convenience wrapper. */
    template <typename T>
    void
    callPod(proto::FnId fn, const T &value, ResponseCb cb = {})
    {
        callAsync(fn, &value, sizeof(T), std::move(cb));
    }

    /**
     * Mark this client's rings as shared between multiple software
     * threads; charges the SRQ lock cost on every send (§4.2).
     */
    void setSharedByThreads(bool shared) { _shared = shared; }

    /**
     * Best-effort mode (§5.3's 16.5 Mrps peak): fire-and-forget sends
     * with no completion tracking; responses pile up in the RX ring
     * and overflow as drops ("best-effort request processing by
     * allowing arbitrary packet drops").
     */
    void setBestEffort(bool on);

    CompletionQueue &completions() { return _cq; }

    std::uint64_t sent() const { return _sent; }
    std::uint64_t responses() const { return _responses; }
    std::uint64_t sendFailures() const { return _sendFailures; }
    std::uint64_t orphanResponses() const { return _orphans; }
    std::size_t pendingCalls() const { return _pending.size(); }

    /** Round-trip latency of completed calls, in ticks. */
    sim::Histogram &latency() { return _latency; }

    HwThread &thread() { return _thread; }
    DaggerNode &node() { return _node; }
    unsigned flow() const { return _flow; }

  private:
    friend class RpcClientPool;

    void processResponses();

    DaggerNode &_node;
    unsigned _flow;
    HwThread &_thread;
    proto::ConnId _conn = 0;
    proto::RpcId _nextRpcId = 1;
    bool _shared = false;
    bool _bestEffort = false;
    bool _rxScheduled = false;

    struct Pending
    {
        ResponseCb cb;
        sim::Tick sentAt;
    };
    std::unordered_map<proto::RpcId, Pending> _pending;

    CompletionQueue _cq;
    sim::Histogram _latency{"rpc_rtt"};
    std::uint64_t _sent = 0;
    std::uint64_t _responses = 0;
    std::uint64_t _sendFailures = 0;
    std::uint64_t _orphans = 0;
};

/**
 * RpcClientPool: "encapsulates a pool of RPC clients (RpcClient) that
 * concurrently call remote procedures registered in the corresponding
 * RpcThreadedServer" (§4.2).
 */
class RpcClientPool
{
  public:
    explicit RpcClientPool(DaggerNode &node) : _node(node) {}

    /** Create a client on @p flow bound to @p thread. */
    RpcClient &addClient(unsigned flow, HwThread &thread);

    RpcClient &client(std::size_t i) { return *_clients.at(i); }
    std::size_t size() const { return _clients.size(); }
    DaggerNode &node() { return _node; }

    /** Aggregate RTT histogram across the pool's clients. */
    sim::Histogram aggregateLatency() const;

    /** Aggregate completed-response count. */
    std::uint64_t totalResponses() const;

  private:
    DaggerNode &_node;
    std::vector<std::unique_ptr<RpcClient>> _clients;
};

} // namespace dagger::rpc

#endif // DAGGER_RPC_CLIENT_HH
