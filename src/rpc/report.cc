#include "rpc/report.hh"

#include <sstream>

#include "nic/dagger_nic.hh"

namespace dagger::rpc {

namespace {

void
line(std::ostringstream &os, const char *key, std::uint64_t value)
{
    os << "  " << key;
    for (std::size_t i = std::string(key).size(); i < 28; ++i)
        os << ' ';
    os << value << "\n";
}

void
lineF(std::ostringstream &os, const char *key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    os << "  " << key;
    for (std::size_t i = std::string(key).size(); i < 28; ++i)
        os << ' ';
    os << buf << "\n";
}

} // namespace

std::string
reportNic(DaggerNode &node)
{
    std::ostringstream os;
    nic::DaggerNic &dev = node.nicDev();
    const auto &mon = dev.monitor();
    os << "nic" << node.id() << " ("
       << ic::ifaceName(dev.config().iface) << ", "
       << dev.config().numFlows << " flows)\n";
    line(os, "rpcs_out", mon.rpcsOut.value());
    line(os, "rpcs_in", mon.rpcsIn.value());
    line(os, "frames_fetched", mon.framesFetched.value());
    line(os, "frames_posted", mon.framesPosted.value());
    line(os, "bytes_out", mon.bytesOut.value());
    line(os, "bytes_in", mon.bytesIn.value());
    line(os, "drops_no_connection", mon.dropsNoConnection.value());
    line(os, "drops_no_slot", mon.dropsNoSlot.value());
    line(os, "malformed", mon.malformed.value());
    line(os, "timeout_flushes", mon.timeoutFlushes.value());
    line(os, "fetch_batch_p50", mon.fetchBatch.percentile(50));
    lineF(os, "conn_cache_hit_rate",
          dev.connectionManager().hits() +
                  dev.connectionManager().misses() ==
              0
              ? 0.0
              : static_cast<double>(dev.connectionManager().hits()) /
                    static_cast<double>(dev.connectionManager().hits() +
                                        dev.connectionManager().misses()));
    lineF(os, "hcc_hit_rate", dev.hcc().hitRate());

    // Per-flow ring health.
    for (unsigned f = 0; f < node.numFlows(); ++f) {
        std::ostringstream key;
        key << "flow" << f << "_rx_drops";
        line(os, key.str().c_str(), node.flow(f).rx.drops());
    }
    return os.str();
}

std::string
reportSystem(DaggerSystem &sys)
{
    std::ostringstream os;
    const sim::Tick now = sys.eq().now();
    os << "=== dagger system report @ " << sim::ticksToUs(now)
       << " us simulated ===\n";
    lineF(os, "ccip_to_nic_utilization",
          sys.fabric().toNicChannel().utilization(now));
    lineF(os, "ccip_to_host_utilization",
          sys.fabric().toHostChannel().utilization(now));
    line(os, "ccip_lines_to_nic",
         sys.fabric().toNicChannel().linesServiced());
    line(os, "ccip_lines_to_host",
         sys.fabric().toHostChannel().linesServiced());
    line(os, "tor_forwarded", sys.tor().forwarded());
    line(os, "tor_dropped", sys.tor().dropped());
    line(os, "events_executed", sys.eq().executed());
    for (std::size_t n = 0; n < sys.numNodes(); ++n)
        os << reportNic(sys.node(n));
    return os.str();
}

} // namespace dagger::rpc
