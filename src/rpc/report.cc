#include "rpc/report.hh"

#include <sstream>

namespace dagger::rpc {

std::string
reportNic(DaggerNode &node)
{
    return node.system().metrics().renderText(
        "node" + std::to_string(node.id()));
}

std::string
reportSystem(DaggerSystem &sys)
{
    std::ostringstream os;
    const sim::Tick now = sys.eq().now();
    os << "=== dagger system report @ " << sim::ticksToUs(now)
       << " us simulated ===\n";
    os << sys.metrics().renderText();
    return os.str();
}

std::string
reportSystemJson(DaggerSystem &sys)
{
    std::ostringstream os;
    os << "{\n\"time_us\": "
       << sim::jsonNumber(sim::ticksToUs(sys.eq().now()))
       << ",\n\"metrics\": " << sys.metrics().renderJson() << "}\n";
    return os.str();
}

} // namespace dagger::rpc
