/**
 * @file
 * Simulated CPU cores and hardware threads.
 *
 * Software actors (RPC clients, server dispatch threads, workers,
 * microservice logic) charge CPU time to a HwThread.  Executions on
 * one hardware thread serialize; two active hardware threads on the
 * same physical core slow each other down by an SMT penalty —
 * this is what makes "8 threads on 4 cores" behave like the paper's
 * Xeon E5-2600v4 (2 threads/core, Table 2).
 */

#ifndef DAGGER_RPC_CPU_HH
#define DAGGER_RPC_CPU_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace dagger::rpc {

using sim::EventFn;
using sim::EventQueue;
using sim::Tick;

class CpuCore;

/** One SMT hardware thread. */
class HwThread
{
  public:
    /**
     * Charge @p cost of CPU time and then run @p fn.  Work requested
     * while the thread is busy queues behind it (FIFO by scheduling).
     */
    void execute(Tick cost, EventFn fn);

    /** First tick at which new work could start. */
    Tick busyUntil() const { return _busyUntil; }

    /** True if the thread has no queued work at the current tick. */
    bool idle() const;

    /** Total CPU time charged (after SMT scaling). */
    Tick busyTicks() const { return _busyTicks; }

    CpuCore &core() { return *_core; }
    unsigned index() const { return _index; }

  private:
    friend class CpuCore;

    CpuCore *_core = nullptr;
    unsigned _index = 0;
    // Busy accounting runs on the owning node's shard queue.
    DAGGER_OWNED_BY(node) Tick _busyUntil = 0;
    DAGGER_OWNED_BY(node) Tick _busyTicks = 0;
};

/** A physical core with two SMT hardware threads. */
class CpuCore
{
  public:
    /**
     * @param eq          event queue
     * @param id          core number (reporting only)
     * @param smt_penalty execution-time multiplier applied to work
     *                    that overlaps with the sibling thread
     *                    (1.6 ~= the usual ~1.25x total SMT yield)
     */
    CpuCore(EventQueue &eq, unsigned id, double smt_penalty = 1.6);

    HwThread &thread(unsigned i);
    unsigned id() const { return _id; }
    EventQueue &eventQueue() { return _eq; }
    double smtPenalty() const { return _smtPenalty; }

    /** Utilization of the core over a window (both threads, capped). */
    double utilization(Tick window) const;

  private:
    friend class HwThread;

    EventQueue &_eq;
    unsigned _id;
    double _smtPenalty;
    std::array<HwThread, 2> _threads;
};

/** A convenience bag of cores, e.g. "the 12-core Xeon". */
class CpuSet
{
  public:
    CpuSet(EventQueue &eq, unsigned cores, double smt_penalty = 1.6);

    CpuCore &core(unsigned i);
    unsigned numCores() const { return static_cast<unsigned>(_cores.size()); }

    /**
     * The paper's thread-placement convention: logical thread t runs
     * on core t/2, hw thread t%2 — so "4 threads" means 2 physical
     * cores fully SMT-loaded, matching §5.5.
     */
    HwThread &logicalThread(unsigned t);

  private:
    std::vector<std::unique_ptr<CpuCore>> _cores;
};

} // namespace dagger::rpc

#endif // DAGGER_RPC_CPU_HH
