/**
 * @file
 * CPU costs of the thin Dagger software layer.
 *
 * The paper's design principle (1) leaves only the RPC API in
 * software: stub (de)serialization, the single shared-buffer write,
 * completion-queue handling, and the dispatch loop.  These constants
 * are what "lightweight" means quantitatively; together with the
 * interface costs in ic/cost_model.hh they reproduce the per-core
 * throughput of Fig. 10.
 */

#ifndef DAGGER_RPC_SW_COST_HH
#define DAGGER_RPC_SW_COST_HH

#include "sim/time.hh"

namespace dagger::rpc {

/** Host software cost model. */
struct SwCost
{
    /** Check a ring for new entries (hot, cached). */
    sim::Tick pollCost = sim::nsToTicks(5);

    /** Stub deserialization of one received message (flat PODs). */
    sim::Tick deserializeCost = sim::nsToTicks(8);

    /**
     * Client-side completion handling per response: pop the RX ring,
     * match the pending request, fire the continuation (§4.2
     * CompletionQueue).
     */
    sim::Tick completionCost = sim::nsToTicks(18);

    /** Server dispatch-loop overhead per request (before the handler). */
    sim::Tick dispatchCost = sim::nsToTicks(30);

    /**
     * Extra dispatcher work to hand a request off to a worker thread
     * (enqueue + wakeup; §5.7 Optimized threading model).
     */
    sim::Tick workerHandoffCpu = sim::nsToTicks(80);

    /**
     * Queueing/wakeup delay before a worker starts on a handed-off
     * request ("the overhead of inter-thread communication and
     * additional request queueing between the dispatch and worker
     * threads", §5.7).
     */
    sim::Tick workerHandoffDelay = sim::usToTicks(1.5);

    /**
     * Mutex cost on the TX path when several threads share one
     * RpcClient's rings (SRQ model, §4.2: "explicit locking in the
     * RpcClient RX/TX path is required").
     */
    sim::Tick srqLockCost = sim::nsToTicks(18);
};

} // namespace dagger::rpc

#endif // DAGGER_RPC_SW_COST_HH
