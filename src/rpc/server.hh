/**
 * @file
 * RpcThreadedServer / RpcServerThread / WorkerPool: the server half of
 * the Dagger API (§4.2, §5.7).
 *
 * Two threading models, selectable per server thread:
 *
 *  - Dispatch ("Simple"): handlers run inside the dispatch thread.
 *    Lowest latency ("similarly to FaRM, Dagger runs RPC handlers in
 *    dispatch threads to avoid inter-thread communication overheads")
 *    but a long-running handler blocks the flow's RX ring.
 *
 *  - Worker ("Optimized"): the dispatch thread hands requests to a
 *    WorkerPool running on other hardware threads, at the price of a
 *    handoff delay — §5.7 measures this as a 17x throughput gain and
 *    a ~10 us latency increase for the Flight service.
 */

#ifndef DAGGER_RPC_SERVER_HH
#define DAGGER_RPC_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "proto/wire.hh"
#include "rpc/cpu.hh"
#include "rpc/system.hh"
#include "sim/check.hh"
#include "sim/stats.hh"

namespace dagger::rpc {

/** What a handler produces. */
struct HandlerOutcome
{
    /**
     * Response payload (ignored when respond == false).  A handle:
     * echoing the request payload (`out.response = req.payload()`) or
     * forwarding another message's bytes costs a refcount bump, not a
     * copy; fresh bytes enter via proto::PayloadBuf::ofPod or the
     * copying constructor.
     */
    proto::PayloadBuf response;

    /** Simulated CPU time the handler consumes. */
    sim::Tick cost = 0;

    /** False for one-way RPCs (no response is sent). */
    bool respond = true;
};

/** RPC handler: pure function of the request. */
using Handler = std::function<HandlerOutcome(const proto::RpcMessage &)>;

/**
 * Admission control for a server thread.  Under open-loop overload an
 * unbounded request backlog turns every queued request into guaranteed
 * tail-latency damage *and* keeps the CPU busy serving requests whose
 * clients have already timed out.  A shed policy bounds the backlog:
 * when a request is popped while more than @ref maxQueue requests are
 * still queued behind it — RX frames plus, in the Optimized model,
 * work sitting in the tier's WorkerPool — it is dropped at poll cost
 * instead of being handled.  Clients see the shed as a loss — their
 * RetryPolicy (or the caller's degraded path) decides what happens
 * next.
 */
struct ShedPolicy
{
    std::size_t maxQueue = 0; ///< request-backlog bound (0 = off)

    bool enabled() const { return maxQueue > 0; }
};

/**
 * Worker-thread pool for the Optimized threading model.  Work is
 * placed on the least-loaded worker after the inter-thread handoff
 * delay.
 */
class WorkerPool
{
  public:
    WorkerPool(DaggerSystem &sys, std::vector<HwThread *> workers);

    /** Submit one unit of work costing @p cost CPU time. */
    void submit(sim::Tick cost, sim::EventFn fn);

    std::uint64_t submitted() const { return _submitted; }
    std::size_t workers() const { return _workers.size(); }
    /** Work submitted but not yet run (queued + waiting on a worker). */
    std::size_t inflight() const { return _inflight; }

  private:
    struct Handoff
    {
        sim::Tick cost;
        sim::EventFn fn;
    };

    void dispatchOne();

    DaggerSystem &_sys;
    std::vector<HwThread *> _workers;
    /** The workers' domain queue: handoff events must fire where the
     *  worker threads live, which on a sharded system is the owning
     *  node's shard — never the system-wide queue. */
    sim::EventQueue &_eq;
    /** Work waiting out the handoff delay.  Parked here so each
     *  scheduled handoff event captures only `this`; the fixed delay
     *  makes event order == submit order == deque order (FIFO). */
    DAGGER_OWNED_BY(node) std::deque<Handoff> _handoff;
    DAGGER_OWNED_BY(node) std::uint64_t _submitted = 0;
    DAGGER_OWNED_BY(node) std::size_t _inflight = 0;
};

/**
 * One server event loop: wraps a flow's rings and a dispatch thread.
 */
class RpcServerThread
{
  public:
    RpcServerThread(DaggerNode &node, unsigned flow, HwThread &dispatch);

    RpcServerThread(const RpcServerThread &) = delete;
    RpcServerThread &operator=(const RpcServerThread &) = delete;

    /** Register the handler for @p fn. */
    void registerHandler(proto::FnId fn, Handler handler);

    /**
     * Switch to the Optimized model: handlers run on @p pool.
     * Pass nullptr to return to dispatch-thread execution.
     */
    void setWorkerPool(WorkerPool *pool) { _pool = pool; }

    /** Install (or disable, with a default-constructed policy) load
     *  shedding on this thread's RX backlog. */
    void setShedPolicy(ShedPolicy policy) { _shed = policy; }
    const ShedPolicy &shedPolicy() const { return _shed; }

    /**
     * Send a response outside the handler's return path.  Used by
     * tiers that must issue nested RPCs before answering (the
     * Check-in service pattern of §5.7): the handler returns
     * `respond = false` and the application calls respondLater() once
     * its downstream calls complete.  Charges the send CPU cost on
     * the dispatch thread.
     */
    void respondLater(proto::ConnId conn, proto::RpcId rpc, proto::FnId fn,
                      const void *data, std::size_t len);

    /**
     * Block the dispatch loop: no further requests are popped from the
     * RX ring until resume().  This is what a handler that *blocks* on
     * nested RPCs does to its server thread (the Simple threading
     * model of §5.7) — "handling such RPCs in dispatch threads limits
     * the overall throughput since they block the NIC's RX rings".
     */
    void pause() { _paused = true; }

    /** Resume the dispatch loop after pause(). */
    void resume();

    std::uint64_t processed() const { return _processed; }
    std::uint64_t responsesSent() const { return _responsesSent; }
    std::uint64_t txBlocked() const { return _txBlocked; }
    std::uint64_t unhandled() const { return _unhandled; }
    /** Requests dropped by the shed policy. */
    std::uint64_t shedCalls() const { return _shedCalls; }

    DaggerNode &node() { return _node; }
    unsigned flow() const { return _flow; }
    HwThread &dispatchThread() { return _dispatch; }

  private:
    void processNext();
    void finishRequest(const proto::RpcMessage &req, HandlerOutcome outcome);
    void flushResponses();

    DaggerNode &_node;
    unsigned _flow;
    HwThread &_dispatch;
    WorkerPool *_pool = nullptr;
    ShedPolicy _shed;
    std::unordered_map<proto::FnId, Handler> _handlers;
    DAGGER_OWNED_BY(node) bool _rxScheduled = false;
    DAGGER_OWNED_BY(node) bool _paused = false;
    DAGGER_OWNED_BY(node) std::deque<proto::RpcMessage> _txBacklog;
    DAGGER_OWNED_BY(node) std::uint64_t _processed = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _responsesSent = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _txBlocked = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _unhandled = 0;
    DAGGER_OWNED_BY(node) std::uint64_t _shedCalls = 0;
};

/**
 * RpcThreadedServer: a set of server threads (one per flow) sharing a
 * handler table, as produced by the IDL-generated service skeletons.
 */
class RpcThreadedServer
{
  public:
    explicit RpcThreadedServer(DaggerNode &node) : _node(node) {}

    /** Add a server thread on @p flow dispatching on @p thread. */
    RpcServerThread &addThread(unsigned flow, HwThread &thread);

    /** Register @p handler for @p fn on all current threads. */
    void registerHandler(proto::FnId fn, const Handler &handler);

    /** Apply the Optimized threading model to all threads. */
    void setWorkerPool(WorkerPool *pool);

    /** Apply a shed policy to all threads. */
    void setShedPolicy(ShedPolicy policy);

    RpcServerThread &serverThread(std::size_t i) { return *_threads.at(i); }
    std::size_t size() const { return _threads.size(); }
    DaggerNode &node() { return _node; }

    std::uint64_t totalProcessed() const;
    std::uint64_t totalShed() const;

  private:
    DaggerNode &_node;
    std::vector<std::unique_ptr<RpcServerThread>> _threads;
};

} // namespace dagger::rpc

#endif // DAGGER_RPC_SERVER_HH
