/**
 * @file
 * Human-readable statistics reports (gem5 stats-dump style).
 *
 * The paper's Packet Monitor "collects various networking statistics"
 * (§4.1); this is the operator-facing view: per-NIC counters, channel
 * utilization, connection-cache and HCC hit rates, ring/switch drops.
 *
 * Both reports are generic walks over the system's MetricRegistry
 * (see sim/metrics.hh); components register their statistics at
 * construction, nothing here knows any component's internals.
 */

#ifndef DAGGER_RPC_REPORT_HH
#define DAGGER_RPC_REPORT_HH

#include <string>

#include "rpc/system.hh"

namespace dagger::rpc {

/** Render one NIC's monitor/caches as an indented text block. */
std::string reportNic(DaggerNode &node);

/** Render the whole deployment: fabric, switch, every node. */
std::string reportSystem(DaggerSystem &sys);

/**
 * The same system-wide statistics as a JSON object: a "time_us"
 * timestamp plus a "metrics" map of every registered metric (including
 * the ones the text report hides) keyed by hierarchical name.
 */
std::string reportSystemJson(DaggerSystem &sys);

} // namespace dagger::rpc

#endif // DAGGER_RPC_REPORT_HH
