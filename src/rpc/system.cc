#include "rpc/system.hh"

#include <algorithm>
#include <sstream>

#include "proto/payload.hh"
#include "sim/logging.hh"

namespace dagger::rpc {

namespace {

/**
 * Conservative window width for the sharded engine: the minimum
 * latency of any event that crosses a domain boundary.  Crossings are
 * (a) the ToR hop (every packet enters the destination node's domain
 * behind it), (b) CCI-P channel grants propagating back to the host
 * port (fetch/post/rawRead `extra` latencies).  Everything else is
 * domain-local.
 */
sim::Tick
engineLookahead(ic::IfaceKind iface, const ic::UpiCost &upi,
                const ic::PcieCost &pcie, sim::Tick hop_delay)
{
    sim::Tick w = hop_delay;
    w = std::min(w, ic::hostTxBaseLatency(iface, upi, pcie));
    w = std::min(w, ic::isMemoryInterconnect(iface) ? upi.postLatency
                                                    : pcie.postLatency);
    w = std::min(w, upi.fetchLatency); // rawRead grant propagation
    return w;
}

} // namespace

DaggerSystem::DaggerSystem(ic::IfaceKind iface, ic::UpiCost upi,
                           ic::PcieCost pcie, unsigned shards)
    : _fabric(_eq, iface, 0, upi, pcie), _tor(_eq)
{
    dagger_assert(shards >= 1, "a system needs at least one shard");
    if (shards > 1) {
        _engine = std::make_unique<sim::ShardedEngine>(
            _eq, shards,
            engineLookahead(iface, upi, pcie, _tor.hopDelay()));
        _tor.bindEngine(_engine.get());
    }

    // Registration order here and in addNode() is the legacy report's
    // print order; renderText() walks entries in that order.
    sim::MetricScope root(_metrics, "");
    _fabric.registerMetrics(root.sub("fabric"));
    _tor.registerMetrics(root.sub("tor"));
    root.intGauge("events_executed", [this] { return eventsExecuted(); });
    // Engine internals (event pool + two-level scheduler, docs/PERF.md),
    // aggregated across every domain queue on a sharded system.  Hidden
    // from the legacy text report, which is compared byte-for-byte by
    // tests; JSON consumers see them under sim.events.*.
    sim::MetricScope events = root.sub("sim").sub("events");
    events.intGauge("pool_hits",
                    [this] { return engineStats().poolHits; },
                    sim::MetricText::Hide);
    events.intGauge("pool_misses",
                    [this] { return engineStats().poolMisses; },
                    sim::MetricText::Hide);
    events.intGauge("pool_blocks",
                    [this] { return engineStats().poolBlocks; },
                    sim::MetricText::Hide);
    events.intGauge("wheel_admits",
                    [this] { return engineStats().wheelAdmits; },
                    sim::MetricText::Hide);
    events.intGauge("frame_admits",
                    [this] { return engineStats().frameAdmits; },
                    sim::MetricText::Hide);
    events.intGauge("heap_admits",
                    [this] { return engineStats().heapAdmits; },
                    sim::MetricText::Hide);
    events.intGauge("max_pending",
                    [this] { return engineStats().maxPending; },
                    sim::MetricText::Hide);
    if (_engine) {
        // Sharded-engine counters (JSON-only, like sim.events.*).
        sim::MetricScope eng = root.sub("sim").sub("engine");
        eng.intGauge("shards", [this] { return _engine->shards(); },
                     sim::MetricText::Hide);
        eng.intGauge("workers", [this] { return _engine->workers(); },
                     sim::MetricText::Hide);
        eng.intGauge("lookahead_ticks",
                     [this] { return _engine->lookahead(); },
                     sim::MetricText::Hide);
        eng.intGauge("rounds", [this] { return _engine->rounds(); },
                     sim::MetricText::Hide);
        eng.intGauge("solo_runs", [this] { return _engine->soloRuns(); },
                     sim::MetricText::Hide);
        eng.intGauge("solo_chunks",
                     [this] { return _engine->soloChunks(); },
                     sim::MetricText::Hide);
        eng.intGauge("windows_extended",
                     [this] { return _engine->windowsExtended(); },
                     sim::MetricText::Hide);
        eng.intGauge("windows_static",
                     [this] { return _engine->windowsStatic(); },
                     sim::MetricText::Hide);
        eng.gauge("window_ticks_mean",
                  [this] {
                      const double n =
                          static_cast<double>(_engine->rounds());
                      return n == 0 ? 0.0
                                    : static_cast<double>(
                                          _engine->windowTicksSum()) /
                                          n;
                  },
                  sim::MetricText::Hide);
        eng.intGauge("window_ticks_max",
                     [this] { return _engine->windowTicksMax(); },
                     sim::MetricText::Hide);
        eng.intGauge("serial_elided",
                     [this] { return _engine->serialElided(); },
                     sim::MetricText::Hide);
        eng.intGauge("batch_flushes",
                     [this] { return _engine->batchFlushes(); },
                     sim::MetricText::Hide);
        eng.intGauge("applies", [this] { return _engine->appliesRun(); },
                     sim::MetricText::Hide);
        // Host-timing dependent (how barrier arrivals resolved); never
        // part of any byte-compared surface.
        eng.intGauge("barrier_spins",
                     [this] { return _engine->barrierSpins(); },
                     sim::MetricText::Hide);
        eng.intGauge("barrier_parks",
                     [this] { return _engine->barrierParks(); },
                     sim::MetricText::Hide);
        for (unsigned s = 0; s < _engine->shards(); ++s) {
            sim::MetricScope sh =
                root.sub("sim").sub("shard" + std::to_string(s));
            sh.intGauge("executed",
                        [this, s] { return _engine->queue(s).executed(); },
                        sim::MetricText::Hide);
            sh.intGauge("cross_sent",
                        [this, s] { return _engine->shardStats(s).crossSent; },
                        sim::MetricText::Hide);
            sh.intGauge("cross_recvd",
                        [this, s] {
                            return _engine->shardStats(s).crossRecvd;
                        },
                        sim::MetricText::Hide);
            sh.intGauge("spills",
                        [this, s] { return _engine->shardStats(s).spills; },
                        sim::MetricText::Hide);
            sh.intGauge("windows",
                        [this, s] {
                            return _engine->shardStats(s).windowsRun;
                        },
                        sim::MetricText::Hide);
            sh.intGauge("mailbox_high_water",
                        [this, s] { return _engine->mailboxHighWater(s); },
                        sim::MetricText::Hide);
            sh.intGauge("mailbox_overflowed",
                        [this, s] { return _engine->mailboxOverflowed(s); },
                        sim::MetricText::Hide);
        }
    }
    // Client retry/timeout behaviour, aggregated across all RpcClients
    // (JSON-only, like sim.events.*: the text report is byte-compared).
    sim::MetricScope rel = root.sub("rpc").sub("reliability");
    rel.intGauge("retries", [this] { return _reliability.retries.value(); },
                 sim::MetricText::Hide);
    rel.intGauge("timeouts",
                 [this] { return _reliability.timeouts.value(); },
                 sim::MetricText::Hide);
    rel.intGauge("completions",
                 [this] { return _reliability.completions.value(); },
                 sim::MetricText::Hide);
    rel.intGauge("late_responses",
                 [this] { return _reliability.lateResponses.value(); },
                 sim::MetricText::Hide);
    rel.intGauge("spurious_arms",
                 [this] { return _reliability.spuriousArms.value(); },
                 sim::MetricText::Hide);
    rel.intGauge("resend_drops",
                 [this] { return _reliability.resendDrops.value(); },
                 sim::MetricText::Hide);
    // Payload-path traffic accounting (JSON-only).  The counters are
    // process-global (proto::payloadStats()), not per-system: they
    // prove the zero-copy invariant — bytes_copied stays O(payload)
    // per RPC while handle_passes grows with hop count.
    sim::MetricScope pay = root.sub("sim").sub("payload");
    pay.intGauge("bytes_copied",
                 [] { return proto::payloadStats().bytesCopied; },
                 sim::MetricText::Hide);
    pay.intGauge("handle_passes",
                 [] { return proto::payloadStats().handlePasses; },
                 sim::MetricText::Hide);
}

sim::EventQueue::EngineStats
DaggerSystem::engineStats() const
{
    return _engine ? _engine->aggregateStats() : _eq.stats();
}

FlowRings &
DaggerNode::flow(unsigned i)
{
    dagger_assert(i < _rings.size(), "bad flow ", i);
    return *_rings[i];
}

DaggerNode &
DaggerSystem::addNode(nic::NicConfig cfg, nic::SoftConfig soft)
{
    auto node = std::unique_ptr<DaggerNode>(new DaggerNode());
    node->_system = this;
    node->_id = static_cast<net::NodeId>(_nodes.size());

    // Domain assignment: shard 0 is the fabric/ToR serial domain;
    // nodes round-robin over the parallel shards.  Everything the node
    // owns — NIC pipeline, rings, its ToR port's egress, CCI window —
    // runs on its shard queue.
    node->_eq = &_eq;
    if (_engine) {
        node->_shard = 1 + (node->_id % (_engine->shards() - 1));
        node->_eq = &_engine->queue(node->_shard);
    }

    ic::CciPort &port = _fabric.addPort();
    net::SwitchPort &sw = _tor.attach(node->_id);
    if (_engine) {
        port.bindHost(*_engine, node->_shard, *node->_eq);
        _tor.bindPort(node->_id, *node->_eq, node->_shard);
    }
    node->_nic = std::make_unique<nic::DaggerNic>(*node->_eq, cfg, soft,
                                                  port, sw);
    if (_engine)
        node->_nic->ownershipGuard().bind(_engine.get(), node->_shard);

    node->_rings.reserve(cfg.numFlows);
    for (unsigned f = 0; f < cfg.numFlows; ++f) {
        node->_rings.push_back(std::make_unique<FlowRings>(
            cfg.txRingEntries, cfg.rxRingEntries));
        node->_nic->attachFlow(f, &node->_rings[f]->tx,
                               &node->_rings[f]->rx);
    }

    sim::MetricScope scope(_metrics,
                           "node" + std::to_string(node->_id));
    std::ostringstream title;
    title << "nic" << node->_id << " (" << ic::ifaceName(cfg.iface)
          << ", " << cfg.numFlows << " flows)";
    scope.section(title.str());
    node->_nic->registerMetrics(scope.sub("nic"));
    for (unsigned f = 0; f < cfg.numFlows; ++f)
        node->_rings[f]->registerMetrics(
            scope.sub("flow" + std::to_string(f)),
            "flow" + std::to_string(f) + "_rx_drops");

    _nodes.push_back(std::move(node));
    return *_nodes.back();
}

proto::ConnId
DaggerSystem::connect(DaggerNode &client, unsigned client_flow,
                      DaggerNode &server, unsigned server_flow,
                      nic::LbScheme lb)
{
    dagger_assert(client_flow < client.numFlows(),
                  "client flow out of range");
    const auto id = static_cast<proto::ConnId>(_conns.size() + 1);

    nic::ConnTuple client_tuple;
    client_tuple.srcFlow = client_flow;
    client_tuple.destAddr = server.id();
    client_tuple.loadBalancer = lb;

    nic::ConnTuple server_tuple;
    server_tuple.srcFlow = server_flow;
    server_tuple.destAddr = client.id();
    server_tuple.loadBalancer = lb;

    if (!client.nicDev().openConnection(id, client_tuple))
        dagger_fatal("connection cache conflict on client NIC; enable "
                     "connCacheDramBacking or enlarge the cache");
    if (!server.nicDev().openConnection(id, server_tuple))
        dagger_fatal("connection cache conflict on server NIC; enable "
                     "connCacheDramBacking or enlarge the cache");

    _conns.push_back(ConnRecord{client.id(), server.id()});
    return id;
}

void
DaggerSystem::disconnect(proto::ConnId id)
{
    dagger_assert(id >= 1 && id <= _conns.size(), "unknown connection ", id);
    const ConnRecord &rec = _conns[id - 1];
    _nodes.at(rec.client)->nicDev().closeConnection(id);
    _nodes.at(rec.server)->nicDev().closeConnection(id);
}

} // namespace dagger::rpc
