#include "rpc/system.hh"

#include <sstream>

#include "sim/logging.hh"

namespace dagger::rpc {

DaggerSystem::DaggerSystem(ic::IfaceKind iface, ic::UpiCost upi,
                           ic::PcieCost pcie)
    : _fabric(_eq, iface, 0, upi, pcie), _tor(_eq)
{
    // Registration order here and in addNode() is the legacy report's
    // print order; renderText() walks entries in that order.
    sim::MetricScope root(_metrics, "");
    _fabric.registerMetrics(root.sub("fabric"));
    _tor.registerMetrics(root.sub("tor"));
    root.intGauge("events_executed", [this] { return _eq.executed(); });
    // Engine internals (event pool + two-level scheduler, docs/PERF.md).
    // Hidden from the legacy text report, which is compared byte-for-
    // byte by tests; JSON consumers see them under sim.events.*.
    sim::MetricScope events = root.sub("sim").sub("events");
    events.intGauge("pool_hits",
                    [this] { return _eq.stats().poolHits; },
                    sim::MetricText::Hide);
    events.intGauge("pool_misses",
                    [this] { return _eq.stats().poolMisses; },
                    sim::MetricText::Hide);
    events.intGauge("pool_blocks",
                    [this] { return _eq.stats().poolBlocks; },
                    sim::MetricText::Hide);
    events.intGauge("wheel_admits",
                    [this] { return _eq.stats().wheelAdmits; },
                    sim::MetricText::Hide);
    events.intGauge("frame_admits",
                    [this] { return _eq.stats().frameAdmits; },
                    sim::MetricText::Hide);
    events.intGauge("heap_admits",
                    [this] { return _eq.stats().heapAdmits; },
                    sim::MetricText::Hide);
    events.intGauge("max_pending",
                    [this] { return _eq.stats().maxPending; },
                    sim::MetricText::Hide);
    // Client retry/timeout behaviour, aggregated across all RpcClients
    // (JSON-only, like sim.events.*: the text report is byte-compared).
    sim::MetricScope rel = root.sub("rpc").sub("reliability");
    rel.counter("retries", _reliability.retries, sim::MetricText::Hide);
    rel.counter("timeouts", _reliability.timeouts, sim::MetricText::Hide);
    rel.counter("completions", _reliability.completions,
                sim::MetricText::Hide);
    rel.counter("late_responses", _reliability.lateResponses,
                sim::MetricText::Hide);
}

FlowRings &
DaggerNode::flow(unsigned i)
{
    dagger_assert(i < _rings.size(), "bad flow ", i);
    return *_rings[i];
}

DaggerNode &
DaggerSystem::addNode(nic::NicConfig cfg, nic::SoftConfig soft)
{
    auto node = std::unique_ptr<DaggerNode>(new DaggerNode());
    node->_system = this;
    node->_id = static_cast<net::NodeId>(_nodes.size());

    ic::CciPort &port = _fabric.addPort();
    net::SwitchPort &sw = _tor.attach(node->_id);
    node->_nic = std::make_unique<nic::DaggerNic>(_eq, cfg, soft, port, sw);

    node->_rings.reserve(cfg.numFlows);
    for (unsigned f = 0; f < cfg.numFlows; ++f) {
        node->_rings.push_back(std::make_unique<FlowRings>(
            cfg.txRingEntries, cfg.rxRingEntries));
        node->_nic->attachFlow(f, &node->_rings[f]->tx,
                               &node->_rings[f]->rx);
    }

    sim::MetricScope scope(_metrics,
                           "node" + std::to_string(node->_id));
    std::ostringstream title;
    title << "nic" << node->_id << " (" << ic::ifaceName(cfg.iface)
          << ", " << cfg.numFlows << " flows)";
    scope.section(title.str());
    node->_nic->registerMetrics(scope.sub("nic"));
    for (unsigned f = 0; f < cfg.numFlows; ++f)
        node->_rings[f]->registerMetrics(
            scope.sub("flow" + std::to_string(f)),
            "flow" + std::to_string(f) + "_rx_drops");

    _nodes.push_back(std::move(node));
    return *_nodes.back();
}

proto::ConnId
DaggerSystem::connect(DaggerNode &client, unsigned client_flow,
                      DaggerNode &server, unsigned server_flow,
                      nic::LbScheme lb)
{
    dagger_assert(client_flow < client.numFlows(),
                  "client flow out of range");
    const auto id = static_cast<proto::ConnId>(_conns.size() + 1);

    nic::ConnTuple client_tuple;
    client_tuple.srcFlow = client_flow;
    client_tuple.destAddr = server.id();
    client_tuple.loadBalancer = lb;

    nic::ConnTuple server_tuple;
    server_tuple.srcFlow = server_flow;
    server_tuple.destAddr = client.id();
    server_tuple.loadBalancer = lb;

    if (!client.nicDev().openConnection(id, client_tuple))
        dagger_fatal("connection cache conflict on client NIC; enable "
                     "connCacheDramBacking or enlarge the cache");
    if (!server.nicDev().openConnection(id, server_tuple))
        dagger_fatal("connection cache conflict on server NIC; enable "
                     "connCacheDramBacking or enlarge the cache");

    _conns.push_back(ConnRecord{client.id(), server.id()});
    return id;
}

void
DaggerSystem::disconnect(proto::ConnId id)
{
    dagger_assert(id >= 1 && id <= _conns.size(), "unknown connection ", id);
    const ConnRecord &rec = _conns[id - 1];
    _nodes.at(rec.client)->nicDev().closeConnection(id);
    _nodes.at(rec.server)->nicDev().closeConnection(id);
}

} // namespace dagger::rpc
