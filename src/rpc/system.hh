/**
 * @file
 * DaggerSystem: top-level wiring of a simulated deployment.
 *
 * One DaggerSystem owns the event queue, the CCI-P fabric (with its
 * round-robin arbiter), the ToR switch, and any number of nodes.  A
 * node is one "virtual but physical" NIC instance (Fig. 14) plus its
 * per-flow software rings — the unit a tenant / microservice tier
 * gets.  Connections are opened symmetrically on both endpoint NICs,
 * mirroring the paper's connection setup through the Connection
 * Manager.
 */

#ifndef DAGGER_RPC_SYSTEM_HH
#define DAGGER_RPC_SYSTEM_HH

#include <atomic>
#include <memory>
#include <vector>

#include "ic/cci_fabric.hh"
#include "net/tor_switch.hh"
#include "nic/dagger_nic.hh"
#include "rpc/cpu.hh"
#include "rpc/rings.hh"
#include "rpc/sw_cost.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/sharded_engine.hh"

namespace dagger::rpc {

class DaggerSystem;

/** One NIC instance plus its host-side rings. */
class DaggerNode
{
  public:
    nic::DaggerNic &nicDev() { return *_nic; }
    net::NodeId id() const { return _id; }

    /** Event queue this node's domain runs on: its shard queue on a
     *  sharded system, the system queue otherwise.  Everything acting
     *  on behalf of this node (clients, server threads, services) must
     *  schedule here, never on DaggerSystem::eq() directly. */
    sim::EventQueue &eq() { return *_eq; }
    unsigned shard() const { return _shard; }

    FlowRings &flow(unsigned i);
    unsigned numFlows() const { return static_cast<unsigned>(_rings.size()); }
    DaggerSystem &system() { return *_system; }

  private:
    friend class DaggerSystem;
    DaggerNode() = default;

    DaggerSystem *_system = nullptr;
    net::NodeId _id = 0;
    sim::EventQueue *_eq = nullptr;
    unsigned _shard = 0;
    std::vector<std::unique_ptr<FlowRings>> _rings;
    std::unique_ptr<nic::DaggerNic> _nic;
};

/**
 * One system-wide reliability counter.  Clients live on their node's
 * shard, so increments can land from several shard workers inside one
 * parallel phase; the value is a commutative sum, so relaxed atomics
 * keep the final report deterministic without serializing the hot
 * path or routing every bump through a mailbox.
 */
class RelCounter
{
  public:
    void inc(std::uint64_t by = 1)
    {
        _v.fetch_add(by, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return _v.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _v{0};
};

/**
 * System-wide client reliability counters, aggregated across every
 * RpcClient (clients come and go; these counters outlive them, so the
 * MetricRegistry can safely point at them).
 */
struct ReliabilityStats
{
    RelCounter retries;
    RelCounter timeouts;
    RelCounter completions;
    RelCounter lateResponses;
    /** Timer arms that the pre-fix issue-time arming would already
     *  have expired (send delayed past the timeout by CPU backlog). */
    RelCounter spuriousArms;
    /** Resend attempts dropped on a full TX ring (re-attempted on a
     *  short timer instead of waiting out a full backoff). */
    RelCounter resendDrops;
};

/** Full simulated deployment. */
class DaggerSystem
{
  public:
    /**
     * @param iface  CPU-NIC interface flavour for all nodes
     * @param shards event-engine domains: 1 keeps the classic
     *               single-queue engine; N >= 2 runs the fabric/ToR on
     *               shard 0 and spreads nodes over shards 1..N-1 under
     *               the sharded parallel engine (sim/sharded_engine.hh)
     *               with an identical event order.
     */
    explicit DaggerSystem(ic::IfaceKind iface = ic::IfaceKind::Upi,
                          ic::UpiCost upi = {}, ic::PcieCost pcie = {},
                          unsigned shards = 1);

    /** Create a node (NIC instance + rings); returns a stable ref. */
    DaggerNode &addNode(nic::NicConfig cfg = {}, nic::SoftConfig soft = {});

    /**
     * Open a bidirectional connection between a client flow and a
     * server node.
     *
     * @param client      client node
     * @param client_flow flow on the client NIC owning the rings
     * @param server      server node
     * @param server_flow server flow recorded for static balancing
     * @param lb          load-balancing scheme applied server-side
     * @return the connection id registered on both NICs
     */
    proto::ConnId connect(DaggerNode &client, unsigned client_flow,
                          DaggerNode &server, unsigned server_flow = 0,
                          nic::LbScheme lb = nic::LbScheme::RoundRobin);

    /** Close a connection on both sides. */
    void disconnect(proto::ConnId id);

    /** Shard 0's queue (fabric/ToR domain).  Per-node work must use
     *  DaggerNode::eq(); driving time forward must use runFor() /
     *  runUntilTick() so every domain advances. */
    sim::EventQueue &eq() { return _eq; }
    ic::CciFabric &fabric() { return _fabric; }
    net::TorSwitch &tor() { return _tor; }

    /** The sharded engine, or nullptr on a single-queue system. */
    sim::ShardedEngine *engine() { return _engine.get(); }
    unsigned shards() const { return _engine ? _engine->shards() : 1; }

    /** Committed simulated time (every domain has run through it). */
    sim::Tick now() const { return _engine ? _engine->now() : _eq.now(); }

    void
    runFor(sim::TickDelta window)
    {
        if (_engine)
            _engine->runFor(window);
        else
            _eq.runFor(window);
    }

    void
    runUntilTick(sim::Tick when)
    {
        if (_engine)
            _engine->runUntil(when);
        else
            _eq.runUntil(when);
    }

    std::uint64_t
    eventsExecuted() const
    {
        return _engine ? _engine->executed() : _eq.executed();
    }

    /**
     * The system-wide metric registry.  Every component registers its
     * statistics here at construction: "fabric.*", "tor.*",
     * "events_executed", then per node "node<i>.nic.*" and
     * "node<i>.flow<f>.*".  Reports are registry walks.
     */
    sim::MetricRegistry &metrics() { return _metrics; }
    const sim::MetricRegistry &metrics() const { return _metrics; }
    const SwCost &swCost() const { return _swCost; }
    SwCost &swCost() { return _swCost; }
    ReliabilityStats &reliability() { return _reliability; }
    DaggerNode &node(std::size_t i) { return *_nodes.at(i); }
    std::size_t numNodes() const { return _nodes.size(); }

    /** CPU cost a sender pays per request (interface + batching). */
    sim::Tick
    sendCpuCost(const DaggerNode &node) const
    {
        const auto &soft = node._nic->softConfig();
        const unsigned b = std::max(1u, soft.batchSize);
        return _fabric.hostTxCpuCost(b);
    }

  private:
    struct ConnRecord
    {
        net::NodeId client;
        net::NodeId server;
    };

    /** Pool/scheduler stats aggregated over every domain queue. */
    sim::EventQueue::EngineStats engineStats() const;

    sim::MetricRegistry _metrics; ///< outlives everything registered in it
    ReliabilityStats _reliability;
    sim::EventQueue _eq;
    ic::CciFabric _fabric;
    net::TorSwitch _tor;
    /** Destroyed before _tor/_fabric/_eq (reverse member order): joins
     *  its workers and releases the shard queues they ran. */
    std::unique_ptr<sim::ShardedEngine> _engine;
    SwCost _swCost;
    std::vector<std::unique_ptr<DaggerNode>> _nodes;
    std::vector<ConnRecord> _conns; // index = ConnId - 1
};

} // namespace dagger::rpc

#endif // DAGGER_RPC_SYSTEM_HH
