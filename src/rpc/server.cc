#include "rpc/server.hh"

#include "sim/logging.hh"

namespace dagger::rpc {

WorkerPool::WorkerPool(DaggerSystem &sys, std::vector<HwThread *> workers)
    : _sys(sys), _workers(std::move(workers)),
      _eq(_workers.empty() ? sys.eq()
                           : _workers.front()->core().eventQueue())
{
    dagger_assert(!_workers.empty(), "worker pool needs threads");
}

void
WorkerPool::submit(sim::Tick cost, sim::EventFn fn)
{
    ++_submitted;
    ++_inflight;
    const sim::Tick delay = _sys.swCost().workerHandoffDelay;
    _handoff.push_back(
        Handoff{cost, [this, fn = std::move(fn)]() mutable {
                    --_inflight;
                    fn();
                }});
    _eq.schedule(delay, [this] { dispatchOne(); });
}

void
WorkerPool::dispatchOne()
{
    dagger_assert(!_handoff.empty(), "handoff event without queued work");
    Handoff h = std::move(_handoff.front());
    _handoff.pop_front();
    // Pick the least-loaded worker at wakeup time.
    HwThread *best = _workers.front();
    for (HwThread *w : _workers)
        if (w->busyUntil() < best->busyUntil())
            best = w;
    best->execute(h.cost, std::move(h.fn));
}

RpcServerThread::RpcServerThread(DaggerNode &node, unsigned flow,
                                 HwThread &dispatch)
    : _node(node), _flow(flow), _dispatch(dispatch)
{
    dagger_assert(flow < node.numFlows(), "server flow out of range");
    node.flow(flow).rx.setNotify([this] {
        if (_rxScheduled)
            return;
        _rxScheduled = true;
        processNext();
    });
    node.flow(flow).tx.setSpaceNotify([this] { flushResponses(); });
}

void
RpcServerThread::registerHandler(proto::FnId fn, Handler handler)
{
    dagger_assert(handler, "null handler for fn ", fn);
    _handlers[fn] = std::move(handler);
}

void
RpcServerThread::resume()
{
    if (!_paused)
        return;
    _paused = false;
    if (!_rxScheduled) {
        _rxScheduled = true;
        processNext();
    }
}

void
RpcServerThread::processNext()
{
    if (_paused) {
        _rxScheduled = false;
        return;
    }
    proto::RpcMessage msg;
    RxRing &rx = _node.flow(_flow).rx;
    if (!rx.popMessage(msg)) {
        _rxScheduled = false;
        return;
    }
    const SwCost &costs = _node.system().swCost();

    // Admission control: with more than maxQueue requests still backed
    // up behind this one — RX frames plus work parked in the worker
    // pool — serving it only adds queueing delay to everything after
    // it.  Drop it at poll cost and let the caller's retry/degraded
    // path take over.
    const std::size_t backlog =
        rx.occupied() + (_pool ? _pool->inflight() : 0);
    if (_shed.enabled() && backlog > _shed.maxQueue) {
        ++_shedCalls;
        _dispatch.execute(costs.pollCost, [this] { processNext(); });
        return;
    }

    auto it = _handlers.find(msg.fnId());
    if (it == _handlers.end()) {
        ++_unhandled;
        _dispatch.execute(costs.pollCost, [this] { processNext(); });
        return;
    }

    // The handler runs functionally now; its simulated cost is charged
    // on the executing thread below.
    HandlerOutcome outcome = it->second(msg);
    ++_processed;

    if (_pool) {
        // Optimized model: dispatch pays poll + deser + handoff; the
        // worker pays the handler and response-send costs.
        const sim::Tick dispatch_cost = costs.pollCost +
            costs.deserializeCost + costs.workerHandoffCpu;
        _dispatch.execute(
            dispatch_cost,
            [this, msg = std::move(msg), outcome = std::move(outcome)]() mutable {
                const sim::Tick worker_cost = outcome.cost +
                    (outcome.respond
                         ? _node.system().sendCpuCost(_node)
                         : 0);
                _pool->submit(worker_cost,
                              [this, msg = std::move(msg),
                               outcome = std::move(outcome)]() mutable {
                                  finishRequest(msg, std::move(outcome));
                              });
                processNext();
            });
        return;
    }

    // Simple model: everything in the dispatch thread.
    const sim::Tick total = costs.pollCost + costs.deserializeCost +
        outcome.cost +
        (outcome.respond ? _node.system().sendCpuCost(_node) : 0);
    _dispatch.execute(total,
                      [this, msg = std::move(msg),
                       outcome = std::move(outcome)]() mutable {
                          finishRequest(msg, std::move(outcome));
                          processNext();
                      });
}

void
RpcServerThread::respondLater(proto::ConnId conn, proto::RpcId rpc,
                              proto::FnId fn, const void *data,
                              std::size_t len)
{
    proto::RpcMessage resp(conn, rpc, fn, proto::MsgType::Response, data,
                           len);
    _dispatch.execute(_node.system().sendCpuCost(_node),
                      [this, resp = std::move(resp)]() mutable {
                          TxRing &tx = _node.flow(_flow).tx;
                          if (!_txBacklog.empty() || !tx.push(resp)) {
                              ++_txBlocked;
                              _txBacklog.push_back(std::move(resp));
                              return;
                          }
                          ++_responsesSent;
                      });
}

void
RpcServerThread::finishRequest(const proto::RpcMessage &req,
                               HandlerOutcome outcome)
{
    if (!outcome.respond)
        return;
    proto::RpcMessage resp(req.connId(), req.rpcId(), req.fnId(),
                           proto::MsgType::Response,
                           std::move(outcome.response));
    TxRing &tx = _node.flow(_flow).tx;
    if (!_txBacklog.empty() || !tx.push(resp)) {
        ++_txBlocked;
        _txBacklog.push_back(std::move(resp));
        return;
    }
    ++_responsesSent;
}

void
RpcServerThread::flushResponses()
{
    TxRing &tx = _node.flow(_flow).tx;
    while (!_txBacklog.empty() && tx.push(_txBacklog.front())) {
        _txBacklog.pop_front();
        ++_responsesSent;
    }
}

RpcServerThread &
RpcThreadedServer::addThread(unsigned flow, HwThread &thread)
{
    _threads.push_back(
        std::make_unique<RpcServerThread>(_node, flow, thread));
    return *_threads.back();
}

void
RpcThreadedServer::registerHandler(proto::FnId fn, const Handler &handler)
{
    dagger_assert(!_threads.empty(),
                  "register handlers after adding server threads");
    for (auto &t : _threads)
        t->registerHandler(fn, handler);
}

void
RpcThreadedServer::setWorkerPool(WorkerPool *pool)
{
    for (auto &t : _threads)
        t->setWorkerPool(pool);
}

void
RpcThreadedServer::setShedPolicy(ShedPolicy policy)
{
    for (auto &t : _threads)
        t->setShedPolicy(policy);
}

std::uint64_t
RpcThreadedServer::totalProcessed() const
{
    std::uint64_t n = 0;
    for (const auto &t : _threads)
        n += t->processed();
    return n;
}

std::uint64_t
RpcThreadedServer::totalShed() const
{
    std::uint64_t n = 0;
    for (const auto &t : _threads)
        n += t->shedCalls();
    return n;
}

} // namespace dagger::rpc
