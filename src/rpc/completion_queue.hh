/**
 * @file
 * Client-side completion queue (§4.2).
 *
 * "each RpcClient contains the associated CompletionQueue object
 * which accumulates completed requests. The CompletionQueue might
 * also invoke arbitrary continuation callback functions upon
 * receiving RPC responses, if so desired."
 */

#ifndef DAGGER_RPC_COMPLETION_QUEUE_HH
#define DAGGER_RPC_COMPLETION_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "proto/wire.hh"
#include "sim/check.hh"

namespace dagger::rpc {

/** Accumulates completed RPCs; optionally fires a continuation. */
class CompletionQueue
{
  public:
    using Continuation = std::function<void(const proto::RpcMessage &)>;

    /** Deliver a completed response (called by the client runtime). */
    void
    push(proto::RpcMessage resp)
    {
        ++_completed;
        if (_continuation) {
            _continuation(resp);
            return; // consumed by the continuation, not queued
        }
        _queue.push_back(std::move(resp));
    }

    /** Poll for a completed response. */
    bool
    pop(proto::RpcMessage &out)
    {
        if (_queue.empty())
            return false;
        out = std::move(_queue.front());
        _queue.pop_front();
        return true;
    }

    /** Install a continuation invoked on every completion. */
    void
    setContinuation(Continuation fn)
    {
        _continuation = std::move(fn);
    }

    std::size_t size() const { return _queue.size(); }
    std::uint64_t completed() const { return _completed; }

  private:
    // Owned by the client's node: delivery and polling both run on the
    // owning node's shard queue.
    DAGGER_OWNED_BY(node) std::deque<proto::RpcMessage> _queue;
    Continuation _continuation;
    DAGGER_OWNED_BY(node) std::uint64_t _completed = 0;
};

} // namespace dagger::rpc

#endif // DAGGER_RPC_COMPLETION_QUEUE_HH
