#include "app/open_loop.hh"

#include <cmath>

namespace dagger::app {

namespace {

/** splitmix64 finalizer: decorrelates per-cohort seed streams. */
std::uint64_t
mixSeed(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

double
DiurnalCurve::at(sim::Tick now) const
{
    if (period == 0)
        return high;
    const double phase = 2.0 * M_PI *
        static_cast<double>(now % period) / static_cast<double>(period);
    return low + (high - low) * 0.5 * (1.0 - std::cos(phase));
}

unsigned
OpenLoopGen::addTenant(const TenantSpec &spec)
{
    dagger_assert(!_started, "addTenant after start");
    dagger_assert(spec.clients > 0, "tenant needs clients");
    dagger_assert(spec.cohorts > 0, "tenant needs cohorts");
    dagger_assert(spec.cohorts <= spec.clients,
                  "more cohorts than clients");
    dagger_assert(spec.perClientRps > 0, "per-client rate must be > 0");
    dagger_assert(spec.diurnal.period == 0 || spec.diurnal.low > 0,
                  "diurnal trough must keep a positive rate");

    const auto tenant_idx = static_cast<unsigned>(_tenants.size());
    _tenants.push_back(spec);

    // Spread the population over the cohorts; the first
    // (clients % cohorts) cohorts carry one extra client.
    const std::uint64_t per = spec.clients / spec.cohorts;
    const std::uint64_t extra = spec.clients % spec.cohorts;
    std::uint64_t base = 0;
    for (unsigned c = 0; c < spec.cohorts; ++c) {
        const std::uint64_t count = per + (c < extra ? 1 : 0);
        const std::uint64_t seed =
            mixSeed(_seed ^ mixSeed((std::uint64_t{tenant_idx} << 32) | c));
        _cohorts.push_back(std::make_unique<Cohort>(tenant_idx, base, count,
                                                    spec, seed));
        base += count;
    }
    return tenant_idx;
}

void
OpenLoopGen::start(sim::Tick stop_at, IssueFn issue)
{
    dagger_assert(!_started, "start called twice");
    dagger_assert(issue, "start needs an issue callback");
    dagger_assert(!_cohorts.empty(), "start with no tenants");
    _started = true;
    _stopAt = stop_at;
    _issue = std::move(issue);
    for (std::size_t c = 0; c < _cohorts.size(); ++c)
        armCohort(c);
}

std::uint64_t
OpenLoopGen::clientCount() const
{
    std::uint64_t n = 0;
    for (const TenantSpec &t : _tenants)
        n += t.clients;
    return n;
}

void
OpenLoopGen::armCohort(std::size_t idx)
{
    if (_eq.now() >= _stopAt)
        return;
    Cohort &c = *_cohorts[idx];
    const TenantSpec &spec = _tenants[c.tenant];
    // The cohort's merged arrival rate at this instant: superposed
    // independent Poisson clients scaled by the diurnal curve.  The
    // gap is resampled per arrival, so the curve is tracked at the
    // cohort's own arrival granularity.
    const double rate = static_cast<double>(c.clientCount) *
        spec.perClientRps * spec.diurnal.at(_eq.now());
    const double mean_gap_us = 1e6 / rate;
    auto fire = [this, idx] { onArrival(idx); };
    // One event per in-flight cohort gap; keep it on the event pool's
    // allocation-free inline path.
    static_assert(sim::EventClosure::fitsInline<decltype(fire)>());
    _eq.schedule(sim::usToTicks(c.rng.exponential(mean_gap_us)),
                 std::move(fire));
}

void
OpenLoopGen::onArrival(std::size_t idx)
{
    if (_eq.now() >= _stopAt)
        return;
    Cohort &c = *_cohorts[idx];
    OpenLoopCall call;
    call.tenant = c.tenant;
    call.cohort = static_cast<unsigned>(idx);
    call.client = c.clientBase + c.rng.range(c.clientCount);
    call.op = c.work.next();
    ++_issued;
    _issue(call);
    armCohort(idx);
}

} // namespace dagger::app
