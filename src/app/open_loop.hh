/**
 * @file
 * Open-loop traffic generation at million-client scale.
 *
 * The figure benches drive closed-loop sweeps: one generator, one
 * arrival process, load stops the moment the simulated service backs
 * up.  Real microservice front-ends face *open-loop* load — millions
 * of independent clients that keep arriving regardless of service
 * backlog, which is the regime that produces retry storms and is the
 * only honest way to score p99/p999 SLOs under overload.
 *
 * Simulating millions of client actors directly would cost O(clients)
 * memory and events.  OpenLoopGen instead folds each tenant's client
 * population into a small number of *cohort actors*: one actor owns a
 * cohort's merged Poisson arrival process (the superposition of its
 * clients' independent Poisson streams is itself Poisson at the
 * summed rate), draws the originating client uniformly per arrival,
 * and draws keys from a per-cohort Zipfian KvWorkload.  Memory stays
 * O(cohorts + in-flight), yet arrival statistics — including which of
 * the 2^20 clients issued each call — match the naive actor-per-client
 * construction.
 *
 * Every cohort self-schedules on the one EventQueue passed at
 * construction (the front-end node's domain on a sharded system), so
 * the generated trace is deterministic for a given seed regardless of
 * --jobs or --shards.
 */

#ifndef DAGGER_APP_OPEN_LOOP_HH
#define DAGGER_APP_OPEN_LOOP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/workload.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace dagger::app {

/**
 * Diurnal load multiplier: a raised-cosine curve between @ref low and
 * @ref high over @ref period.  t=0 sits in the trough, mid-period at
 * the peak.  period == 0 disables the curve (multiplier = high).
 */
struct DiurnalCurve
{
    sim::Tick period = 0;
    double low = 1.0;
    double high = 1.0;

    double at(sim::Tick now) const;
};

/** One tenant: a client population and its traffic mix. */
struct TenantSpec
{
    std::string name = "tenant";
    std::uint64_t clients = 1'000'000; ///< simulated client population
    unsigned cohorts = 64;             ///< actors carrying that population
    double perClientRps = 0.5;         ///< peak per-client request rate
    double getRatio = 1.0;             ///< GET (read) fraction of the mix
    std::uint64_t keySpace = 100'000;  ///< Zipf key-space size
    double zipfTheta = 0.99;           ///< Zipf skew (§5.6)
    DatasetShape shape = kTiny;        ///< key/value shape for KvOps
    DiurnalCurve diurnal;              ///< load curve (flat by default)
};

/** One generated arrival. */
struct OpenLoopCall
{
    unsigned tenant = 0;
    unsigned cohort = 0;      ///< global cohort index
    std::uint64_t client = 0; ///< client index within the tenant
    KvOp op;                  ///< Zipf-keyed operation (keyIndex set)
};

/** The cohort-actor open-loop generator. */
class OpenLoopGen
{
  public:
    using IssueFn = std::function<void(const OpenLoopCall &)>;

    OpenLoopGen(sim::EventQueue &eq, std::uint64_t seed)
        : _eq(eq), _seed(seed)
    {}

    OpenLoopGen(const OpenLoopGen &) = delete;
    OpenLoopGen &operator=(const OpenLoopGen &) = delete;

    /** Register a tenant; returns its index.  Call before start(). */
    unsigned addTenant(const TenantSpec &spec);

    /**
     * Arm every cohort actor.  Arrivals invoke @p issue until the
     * queue clock reaches @p stop_at; in-flight work is the caller's
     * to drain.  May be called once per generator.
     */
    void start(sim::Tick stop_at, IssueFn issue);

    std::uint64_t issued() const { return _issued; }
    std::size_t cohortCount() const { return _cohorts.size(); }
    std::uint64_t clientCount() const;
    const TenantSpec &tenant(unsigned t) const { return _tenants.at(t); }

    /** Peak offered load of one tenant (requests/s, diurnal high). */
    double
    peakRps(unsigned t) const
    {
        const TenantSpec &spec = _tenants.at(t);
        return static_cast<double>(spec.clients) * spec.perClientRps *
               spec.diurnal.high;
    }

  private:
    /**
     * One cohort actor: the merged Poisson arrival process of
     * clientCount clients plus their key-popularity stream.  This —
     * not a per-client record — is the whole per-client memory story.
     */
    struct Cohort
    {
        Cohort(unsigned tenant_idx, std::uint64_t base, std::uint64_t count,
               const TenantSpec &spec, std::uint64_t seed)
            : tenant(tenant_idx), clientBase(base), clientCount(count),
              rng(seed),
              work(spec.keySpace, spec.zipfTheta, spec.getRatio, spec.shape,
                   seed ^ 0x5a5a5a5a5a5a5a5aull)
        {}

        unsigned tenant;
        std::uint64_t clientBase;
        std::uint64_t clientCount;
        sim::Rng rng;
        KvWorkload work;
    };

    void armCohort(std::size_t idx);
    void onArrival(std::size_t idx);

    sim::EventQueue &_eq;
    std::uint64_t _seed;
    std::vector<TenantSpec> _tenants;
    std::vector<std::unique_ptr<Cohort>> _cohorts;
    IssueFn _issue;
    sim::Tick _stopAt = 0;
    bool _started = false;
    std::uint64_t _issued = 0;
};

} // namespace dagger::app

#endif // DAGGER_APP_OPEN_LOOP_HH
