/**
 * @file
 * A miniature memcached: the second KVS ported onto Dagger in §5.6.
 *
 * Keeps the load-bearing memcached mechanics: a chained hash table,
 * slab-class memory accounting with a global byte budget, LRU
 * eviction, and optional TTL expiry.  Item layout and command set are
 * reduced to what the paper exercises (SET/GET, "we also keep the
 * original memcached protocol to verify the integrity and correctness
 * of the data" — our tests do the same through checksummed values).
 */

#ifndef DAGGER_APP_MEMCACHED_HH
#define DAGGER_APP_MEMCACHED_HH

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sim/time.hh"

namespace dagger::app {

/** Statistics mirroring `stats` counters in memcached. */
struct MemcachedStats
{
    std::uint64_t cmdGet = 0;
    std::uint64_t getHits = 0;
    std::uint64_t cmdSet = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expired = 0;
    std::uint64_t currItems = 0;
    std::uint64_t bytes = 0;
};

/** The cache. */
class Memcached
{
  public:
    /**
     * @param memory_limit byte budget for items (keys + values +
     *                     per-item overhead), like `-m`
     */
    explicit Memcached(std::size_t memory_limit);

    /**
     * Store an item.
     * @param ttl_ticks 0 = never expires; otherwise absolute expiry is
     *                  now + ttl (caller supplies its notion of now).
     */
    void set(std::string_view key, std::string_view value,
             sim::Tick now = 0, sim::Tick ttl_ticks = 0);

    /** Fetch an item; expiry is evaluated against @p now. */
    std::optional<std::string> get(std::string_view key, sim::Tick now = 0);

    /** Delete. @return true if the key existed. */
    bool erase(std::string_view key);

    const MemcachedStats &stats() const { return _stats; }
    std::size_t memoryLimit() const { return _memoryLimit; }

    /** Slab class (size-class index) an item of @p bytes lands in. */
    static unsigned slabClassOf(std::size_t bytes);

    /** Chunk size of a slab class (geometric, factor 1.25). */
    static std::size_t slabChunkSize(unsigned cls);

  private:
    struct Item
    {
        std::string key;
        std::string value;
        sim::Tick expiry = 0; ///< 0 = immortal
        unsigned slabClass = 0;
        std::list<std::string>::iterator lruIt;
    };

    std::size_t itemFootprint(const Item &item) const;
    void evictForSpace(std::size_t need);
    void removeItem(std::unordered_map<std::string, Item>::iterator it);

    std::size_t _memoryLimit;
    std::size_t _usedBytes = 0;
    std::unordered_map<std::string, Item> _table;
    /** LRU: front = most recent, back = eviction victim. */
    std::list<std::string> _lru;
    MemcachedStats _stats;
};

/** Calibrated per-op service costs: memcached is ~an order of
 *  magnitude slower per op than MICA ("it is relatively slow (~12x
 *  slower than Dagger)", §5.6). */
struct MemcachedCost
{
    sim::Tick getCost = sim::nsToTicks(590);
    sim::Tick setCost = sim::nsToTicks(2600);
};

} // namespace dagger::app

#endif // DAGGER_APP_MEMCACHED_HH
