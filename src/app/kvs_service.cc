#include "app/kvs_service.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dagger::app {

KvsServer::KvsServer(rpc::RpcThreadedServer &server, KvBackend &backend)
    : _backend(backend)
{
    dagger_assert(server.size() > 0,
                  "add server threads before attaching KvsServer");
    for (std::size_t i = 0; i < server.size(); ++i)
        attachThread(server.serverThread(i), static_cast<unsigned>(i));
}

void
KvsServer::attachThread(rpc::RpcServerThread &thread, unsigned partition)
{
    thread.registerHandler(
        static_cast<proto::FnId>(KvsFn::Get),
        [this, partition](const proto::RpcMessage &m) {
            rpc::HandlerOutcome out;
            KvGetRequest req{};
            if (!m.payloadAs(req) || req.keyLen > kKvMaxKey) {
                out.respond = false;
                return out;
            }
            sim::Tick cost = 0;
            auto value = _backend.kvGet(
                partition, std::string_view(req.key, req.keyLen), cost);
            KvGetResponse resp{};
            if (value) {
                resp.hit = 1;
                resp.valLen = static_cast<std::uint8_t>(
                    std::min(value->size(), kKvMaxVal));
                std::memcpy(resp.value, value->data(), resp.valLen);
            }
            out.cost = cost;
            out.response = proto::PayloadBuf::ofPod(resp);
            return out;
        });

    thread.registerHandler(
        static_cast<proto::FnId>(KvsFn::Set),
        [this, partition](const proto::RpcMessage &m) {
            rpc::HandlerOutcome out;
            KvSetRequest req{};
            if (!m.payloadAs(req) || req.keyLen > kKvMaxKey ||
                req.valLen > kKvMaxVal) {
                out.respond = false;
                return out;
            }
            sim::Tick cost = 0;
            const bool stored = _backend.kvSet(
                partition, std::string_view(req.key, req.keyLen),
                std::string_view(req.value, req.valLen), cost);
            KvSetResponse resp{};
            resp.stored = stored ? 1 : 0;
            out.cost = cost;
            out.response = proto::PayloadBuf::ofPod(resp);
            return out;
        });
}

void
KvsClient::get(std::string_view key, GetCb cb)
{
    dagger_assert(key.size() <= kKvMaxKey, "key too long");
    KvGetRequest req{};
    req.keyLen = static_cast<std::uint8_t>(key.size());
    std::memcpy(req.key, key.data(), key.size());

    rpc::RpcClient::ResponseCb raw;
    if (cb) {
        raw = [cb = std::move(cb)](const proto::RpcMessage &m) {
            KvGetResponse resp{};
            if (!m.payloadAs(resp))
                return;
            cb(resp.hit != 0, std::string_view(resp.value, resp.valLen));
        };
    }
    _client.callAsync(static_cast<proto::FnId>(KvsFn::Get), &req,
                      sizeof(req), std::move(raw));
}

void
KvsClient::set(std::string_view key, std::string_view value, SetCb cb)
{
    dagger_assert(key.size() <= kKvMaxKey, "key too long");
    dagger_assert(value.size() <= kKvMaxVal, "value too long");
    KvSetRequest req{};
    req.keyLen = static_cast<std::uint8_t>(key.size());
    req.valLen = static_cast<std::uint8_t>(value.size());
    std::memcpy(req.key, key.data(), key.size());
    std::memcpy(req.value, value.data(), value.size());

    rpc::RpcClient::ResponseCb raw;
    if (cb) {
        raw = [cb = std::move(cb)](const proto::RpcMessage &m) {
            KvSetResponse resp{};
            if (!m.payloadAs(resp))
                return;
            cb(resp.stored != 0);
        };
    }
    _client.callAsync(static_cast<proto::FnId>(KvsFn::Set), &req,
                      sizeof(req), std::move(raw));
}

void
KvsClient::getChecked(std::string_view key, GetStatusCb cb)
{
    dagger_assert(key.size() <= kKvMaxKey, "key too long");
    dagger_assert(cb, "getChecked needs a continuation");
    KvGetRequest req{};
    req.keyLen = static_cast<std::uint8_t>(key.size());
    std::memcpy(req.key, key.data(), key.size());

    _client.callPodStatus(
        static_cast<proto::FnId>(KvsFn::Get), req,
        [cb = std::move(cb)](rpc::CallStatus st,
                             const proto::RpcMessage &m) {
            KvGetResponse resp{};
            if (st != rpc::CallStatus::Ok || !m.payloadAs(resp)) {
                cb(st, false, {});
                return;
            }
            cb(st, resp.hit != 0,
               std::string_view(resp.value, resp.valLen));
        });
}

void
KvsClient::setChecked(std::string_view key, std::string_view value,
                      SetStatusCb cb)
{
    dagger_assert(key.size() <= kKvMaxKey, "key too long");
    dagger_assert(value.size() <= kKvMaxVal, "value too long");
    dagger_assert(cb, "setChecked needs a continuation");
    KvSetRequest req{};
    req.keyLen = static_cast<std::uint8_t>(key.size());
    req.valLen = static_cast<std::uint8_t>(value.size());
    std::memcpy(req.key, key.data(), key.size());
    std::memcpy(req.value, value.data(), value.size());

    _client.callPodStatus(
        static_cast<proto::FnId>(KvsFn::Set), req,
        [cb = std::move(cb)](rpc::CallStatus st,
                             const proto::RpcMessage &m) {
            KvSetResponse resp{};
            if (st != rpc::CallStatus::Ok || !m.payloadAs(resp)) {
                cb(st, false);
                return;
            }
            cb(st, resp.stored != 0);
        });
}

} // namespace dagger::app
