#include "app/mica.hh"

#include "nic/load_balancer.hh"
#include "sim/logging.hh"

namespace dagger::app {

MicaPartition::MicaPartition(std::size_t log_bytes,
                             std::size_t index_buckets)
    : _log(log_bytes), _buckets(index_buckets)
{
    dagger_assert(log_bytes >= 1024, "log too small: ", log_bytes);
    dagger_assert(index_buckets > 0 &&
                  (index_buckets & (index_buckets - 1)) == 0,
                  "index buckets must be a power of two");
}

std::uint64_t
MicaPartition::keyHash(std::string_view key) const
{
    return nic::ObjectLevelLb::hashKey(
        reinterpret_cast<const std::uint8_t *>(key.data()), key.size());
}

MicaPartition::Bucket &
MicaPartition::bucketFor(std::uint64_t hash)
{
    return _buckets[(hash >> 16) & (_buckets.size() - 1)];
}

std::uint16_t
MicaPartition::tagOf(std::uint64_t hash)
{
    return static_cast<std::uint16_t>(hash & 0xffff);
}

std::uint64_t
MicaPartition::appendRecord(std::string_view key, std::string_view value)
{
    const std::size_t need = sizeof(RecordHeader) + key.size() +
                             value.size();
    dagger_assert(need <= _log.size(), "record larger than log");

    // Keep records contiguous: if the record would straddle the end of
    // the ring, skip to the ring start (MICA pads the same way).
    std::size_t pos = static_cast<std::size_t>(_head % _log.size());
    std::uint64_t off = _head;
    if (pos + need > _log.size()) {
        off += _log.size() - pos; // skip padding
        pos = 0;
        ++_stats.logWraps;
    }

    RecordHeader hdr{static_cast<std::uint16_t>(key.size()),
                     static_cast<std::uint16_t>(value.size())};
    std::memcpy(_log.data() + pos, &hdr, sizeof(hdr));
    std::memcpy(_log.data() + pos + sizeof(hdr), key.data(), key.size());
    std::memcpy(_log.data() + pos + sizeof(hdr) + key.size(), value.data(),
                value.size());
    _head = off + need;
    return off;
}

bool
MicaPartition::readRecord(std::uint64_t offset, std::string_view key,
                          std::string &value_out) const
{
    // Stale if the log head has lapped this record.
    if (_head > offset + _log.size())
        return false;
    const std::size_t pos = static_cast<std::size_t>(offset % _log.size());
    RecordHeader hdr;
    if (pos + sizeof(hdr) > _log.size())
        return false;
    std::memcpy(&hdr, _log.data() + pos, sizeof(hdr));
    const std::size_t need = sizeof(hdr) + hdr.keyLen + hdr.valLen;
    if (pos + need > _log.size())
        return false;
    if (hdr.keyLen != key.size())
        return false;
    if (std::memcmp(_log.data() + pos + sizeof(hdr), key.data(),
                    key.size()) != 0)
        return false;
    value_out.assign(
        reinterpret_cast<const char *>(_log.data() + pos + sizeof(hdr) +
                                       hdr.keyLen),
        hdr.valLen);
    return true;
}

void
MicaPartition::set(std::string_view key, std::string_view value)
{
    ++_stats.sets;
    const std::uint64_t h = keyHash(key);
    const std::uint64_t off = appendRecord(key, value);
    Bucket &b = bucketFor(h);
    const std::uint16_t tag = tagOf(h);

    // Overwrite a matching tag if present.
    for (IndexEntry &e : b.ways) {
        if (e.valid && e.tag == tag) {
            e.offset = off;
            return;
        }
    }
    // Otherwise take an invalid way, else displace (lossy).
    for (IndexEntry &e : b.ways) {
        if (!e.valid) {
            e = IndexEntry{true, tag, off};
            return;
        }
    }
    IndexEntry &victim = b.ways[b.nextVictim];
    b.nextVictim = (b.nextVictim + 1) % kWays;
    victim = IndexEntry{true, tag, off};
    ++_stats.indexEvictions;
}

std::optional<std::string>
MicaPartition::get(std::string_view key)
{
    ++_stats.gets;
    const std::uint64_t h = keyHash(key);
    Bucket &b = bucketFor(h);
    const std::uint16_t tag = tagOf(h);
    for (IndexEntry &e : b.ways) {
        if (!e.valid || e.tag != tag)
            continue;
        std::string value;
        if (readRecord(e.offset, key, value)) {
            ++_stats.getHits;
            return value;
        }
        // Tag collision with a different key, or a lapped record:
        // keep scanning the remaining ways.
    }
    return std::nullopt;
}

bool
MicaPartition::erase(std::string_view key)
{
    const std::uint64_t h = keyHash(key);
    Bucket &b = bucketFor(h);
    const std::uint16_t tag = tagOf(h);
    for (IndexEntry &e : b.ways) {
        if (!e.valid || e.tag != tag)
            continue;
        std::string value;
        if (readRecord(e.offset, key, value)) {
            e.valid = false;
            return true;
        }
    }
    return false;
}

MicaKvs::MicaKvs(unsigned partitions, std::size_t log_bytes_each,
                 std::size_t index_buckets_each)
{
    dagger_assert(partitions >= 1, "MICA needs partitions");
    _parts.reserve(partitions);
    for (unsigned i = 0; i < partitions; ++i)
        _parts.emplace_back(log_bytes_each, index_buckets_each);
}

unsigned
MicaKvs::partitionOf(std::string_view key) const
{
    return static_cast<unsigned>(
        nic::ObjectLevelLb::hashKey(
            reinterpret_cast<const std::uint8_t *>(key.data()),
            key.size()) %
        _parts.size());
}

void
MicaKvs::set(unsigned caller_partition, std::string_view key,
             std::string_view value)
{
    const unsigned owner = partitionOf(key);
    MicaPartition &p = _parts[owner];
    if (caller_partition != owner)
        p.noteCrossPartition();
    p.set(key, value);
}

std::optional<std::string>
MicaKvs::get(unsigned caller_partition, std::string_view key)
{
    const unsigned owner = partitionOf(key);
    MicaPartition &p = _parts[owner];
    if (caller_partition != owner)
        p.noteCrossPartition();
    return p.get(key);
}

MicaPartition &
MicaKvs::partition(unsigned i)
{
    dagger_assert(i < _parts.size(), "bad partition ", i);
    return _parts[i];
}

MicaStats
MicaKvs::totalStats() const
{
    MicaStats s;
    for (const auto &p : _parts)
        s.merge(p.stats());
    return s;
}

} // namespace dagger::app
