/**
 * @file
 * A faithful miniature of MICA (Lim et al., NSDI'14), the KVS the
 * paper ports onto Dagger in §5.6.
 *
 * Structure follows the original: the store is split into per-core
 * partitions (EREW — each partition is owned by exactly one serving
 * thread, with requests steered by key hash, which is what Dagger's
 * Object-Level load balancer reproduces on the NIC).  Each partition
 * is a *lossy* set-associative index over a circular append-only log:
 * inserts may displace colliding entries, and log wrap-around
 * invalidates the oldest items.
 */

#ifndef DAGGER_APP_MICA_HH
#define DAGGER_APP_MICA_HH

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"

namespace dagger::app {

/** Statistics for one partition / the whole store. */
struct MicaStats
{
    std::uint64_t gets = 0;
    std::uint64_t getHits = 0;
    std::uint64_t sets = 0;
    std::uint64_t indexEvictions = 0; ///< lossy-index displacements
    std::uint64_t logWraps = 0;
    std::uint64_t crossPartition = 0; ///< EREW violations (wrong thread)

    void
    merge(const MicaStats &o)
    {
        gets += o.gets;
        getHits += o.getHits;
        sets += o.sets;
        indexEvictions += o.indexEvictions;
        logWraps += o.logWraps;
        crossPartition += o.crossPartition;
    }
};

/** One MICA partition: lossy index + circular log. */
class MicaPartition
{
  public:
    /**
     * @param log_bytes    circular log capacity
     * @param index_buckets set count of the lossy index (power of two)
     */
    MicaPartition(std::size_t log_bytes, std::size_t index_buckets);

    /** Insert or overwrite. Always succeeds (lossy semantics). */
    void set(std::string_view key, std::string_view value);

    /** Fetch; nullopt on miss (never stored, displaced, or wrapped). */
    std::optional<std::string> get(std::string_view key);

    /** Remove (tombstone by index invalidation). */
    bool erase(std::string_view key);

    const MicaStats &stats() const { return _stats; }
    std::size_t logBytes() const { return _log.size(); }

    /** Record an EREW violation observed by the owning store. */
    void noteCrossPartition() { ++_stats.crossPartition; }

  private:
    static constexpr unsigned kWays = 8;

    struct IndexEntry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint64_t offset = 0; ///< absolute log offset (monotonic)
    };

    struct Bucket
    {
        IndexEntry ways[kWays];
        unsigned nextVictim = 0;
    };

    /** Log record header. */
    struct RecordHeader
    {
        std::uint16_t keyLen;
        std::uint16_t valLen;
    };

    std::uint64_t keyHash(std::string_view key) const;
    Bucket &bucketFor(std::uint64_t hash);
    static std::uint16_t tagOf(std::uint64_t hash);

    /** Append a record; returns its absolute offset. */
    std::uint64_t appendRecord(std::string_view key, std::string_view value);

    /** Read the record at absolute @p offset if still live. */
    bool readRecord(std::uint64_t offset, std::string_view key,
                    std::string &value_out) const;

    std::vector<std::uint8_t> _log;
    std::uint64_t _head = 0; ///< absolute append offset (monotonic)
    std::vector<Bucket> _buckets;
    MicaStats _stats;
};

/**
 * The partitioned store.  Key-to-partition mapping uses the same
 * FNV-1a hash as the NIC's Object-Level load balancer, so hardware
 * steering and the store agree on ownership.
 */
class MicaKvs
{
  public:
    /**
     * @param partitions        per-core partitions
     * @param log_bytes_each    circular log capacity per partition
     * @param index_buckets_each lossy-index buckets per partition
     */
    MicaKvs(unsigned partitions, std::size_t log_bytes_each,
            std::size_t index_buckets_each);

    /** Partition owning @p key. */
    unsigned partitionOf(std::string_view key) const;

    /**
     * Access through a specific serving thread (EREW check): if
     * @p caller_partition differs from the key's owner the access
     * still works but is counted as a cross-partition violation —
     * this is what a round-robin balancer does to MICA (§5.7).
     */
    void set(unsigned caller_partition, std::string_view key,
             std::string_view value);
    std::optional<std::string> get(unsigned caller_partition,
                                   std::string_view key);

    MicaPartition &partition(unsigned i);
    unsigned numPartitions() const
    {
        return static_cast<unsigned>(_parts.size());
    }

    /** Aggregated statistics. */
    MicaStats totalStats() const;

  private:
    std::vector<MicaPartition> _parts;
};

/**
 * Calibrated per-op service costs (see DESIGN.md §4).  Costs are
 * two-tier: an item resident in the processor LLC is served at cache
 * speed; a cold item walks the index + log in DRAM.  This is what
 * makes throughput skew-dependent, as §5.6 observes ("skewness of
 * 0.9999 ... yields even higher data locality, and therefore better
 * cache utilization", raising MICA from ~5 to ~10 Mrps).
 */
struct MicaCost
{
    /** GET of an LLC-resident item. */
    sim::Tick hotGetCost = sim::nsToTicks(55);

    /** GET that misses the LLC (index + log walk in DRAM). */
    sim::Tick coldGetCost = sim::nsToTicks(450);

    /** SET of an LLC-resident item. */
    sim::Tick hotSetCost = sim::nsToTicks(120);

    /** SET that misses the LLC. */
    sim::Tick coldSetCost = sim::nsToTicks(520);

    /** Extra cost when EREW is violated (remote partition access). */
    sim::Tick crossPartitionPenalty = sim::nsToTicks(260);

    /**
     * Modeled LLC capacity in items.  The paper's ratio is what
     * matters: ~650K LLC-resident items over a 200M-key dataset
     * (0.33%).  Bench key spaces are scaled down (see fig12), so the
     * default models the same *ratio* against a 1M-key space.
     */
    std::size_t llcItems = std::size_t{1} << 18;
};

} // namespace dagger::app

#endif // DAGGER_APP_MICA_HH
