#include "app/memcached.hh"

#include "sim/logging.hh"

namespace dagger::app {

namespace {
/// Fixed per-item metadata overhead (memcached's item header ~48-56 B).
constexpr std::size_t kItemOverhead = 48;
/// Smallest slab chunk.
constexpr std::size_t kMinChunk = 96;
/// Slab growth factor (memcached default 1.25).
constexpr double kSlabFactor = 1.25;
} // namespace

Memcached::Memcached(std::size_t memory_limit)
    : _memoryLimit(memory_limit)
{
    dagger_assert(memory_limit >= 256, "memory limit too small");
}

unsigned
Memcached::slabClassOf(std::size_t bytes)
{
    unsigned cls = 0;
    std::size_t chunk = kMinChunk;
    while (chunk < bytes + kItemOverhead) {
        chunk = static_cast<std::size_t>(
            static_cast<double>(chunk) * kSlabFactor) + 1;
        ++cls;
    }
    return cls;
}

std::size_t
Memcached::slabChunkSize(unsigned cls)
{
    std::size_t chunk = kMinChunk;
    for (unsigned i = 0; i < cls; ++i)
        chunk = static_cast<std::size_t>(
            static_cast<double>(chunk) * kSlabFactor) + 1;
    return chunk;
}

std::size_t
Memcached::itemFootprint(const Item &item) const
{
    // Memory is consumed in whole slab chunks.
    return slabChunkSize(item.slabClass);
}

void
Memcached::removeItem(std::unordered_map<std::string, Item>::iterator it)
{
    _usedBytes -= itemFootprint(it->second);
    _lru.erase(it->second.lruIt);
    _table.erase(it);
    --_stats.currItems;
}

void
Memcached::evictForSpace(std::size_t need)
{
    while (_usedBytes + need > _memoryLimit && !_lru.empty()) {
        auto victim = _table.find(_lru.back());
        dagger_assert(victim != _table.end(), "LRU/table inconsistency");
        removeItem(victim);
        ++_stats.evictions;
    }
}

void
Memcached::set(std::string_view key, std::string_view value, sim::Tick now,
               sim::Tick ttl_ticks)
{
    ++_stats.cmdSet;
    auto it = _table.find(std::string(key));
    if (it != _table.end())
        removeItem(it);

    Item item;
    item.key.assign(key);
    item.value.assign(value);
    item.expiry = ttl_ticks == 0 ? 0 : now + ttl_ticks;
    item.slabClass = slabClassOf(key.size() + value.size());

    const std::size_t need = slabChunkSize(item.slabClass);
    if (need > _memoryLimit) {
        dagger_warn("memcached: item larger than memory limit, rejected");
        return;
    }
    evictForSpace(need);

    _lru.push_front(item.key);
    item.lruIt = _lru.begin();
    _usedBytes += need;
    ++_stats.currItems;
    _stats.bytes = _usedBytes;
    _table.emplace(item.key, std::move(item));
}

std::optional<std::string>
Memcached::get(std::string_view key, sim::Tick now)
{
    ++_stats.cmdGet;
    auto it = _table.find(std::string(key));
    if (it == _table.end())
        return std::nullopt;
    Item &item = it->second;
    if (item.expiry != 0 && now >= item.expiry) {
        removeItem(it);
        ++_stats.expired;
        return std::nullopt;
    }
    // LRU touch.
    _lru.erase(item.lruIt);
    _lru.push_front(item.key);
    item.lruIt = _lru.begin();
    ++_stats.getHits;
    return item.value;
}

bool
Memcached::erase(std::string_view key)
{
    auto it = _table.find(std::string(key));
    if (it == _table.end())
        return false;
    removeItem(it);
    return true;
}

} // namespace dagger::app
