/**
 * @file
 * KvBackend adapters for the two stores of §5.6.
 */

#ifndef DAGGER_APP_ADAPTERS_HH
#define DAGGER_APP_ADAPTERS_HH

#include "app/kvs_service.hh"
#include "app/memcached.hh"
#include "app/mica.hh"
#include "mem/set_assoc_cache.hh"
#include "nic/load_balancer.hh"
#include "sim/event_queue.hh"

namespace dagger::app {

/** MICA behind the Dagger KVS service (EREW partitions by flow). */
class MicaBackend final : public KvBackend
{
  public:
    explicit MicaBackend(MicaKvs &store, MicaCost cost = {})
        : _store(store), _cost(cost), _llc(cost.llcItems)
    {}

    std::optional<std::string>
    kvGet(unsigned partition, std::string_view key, sim::Tick &cost) override
    {
        cost = accessCost(key, /*is_get=*/true);
        if (_store.partitionOf(key) != partition % _store.numPartitions())
            cost += _cost.crossPartitionPenalty;
        return _store.get(partition % _store.numPartitions(), key);
    }

    bool
    kvSet(unsigned partition, std::string_view key, std::string_view value,
          sim::Tick &cost) override
    {
        cost = accessCost(key, /*is_get=*/false);
        if (_store.partitionOf(key) != partition % _store.numPartitions())
            cost += _cost.crossPartitionPenalty;
        _store.set(partition % _store.numPartitions(), key, value);
        return true;
    }

    /** Observed LLC hit rate of the item working set. */
    double llcHitRate() const { return _llc.hitRate(); }

  private:
    sim::Tick
    accessCost(std::string_view key, bool is_get)
    {
        const std::uint64_t h = nic::ObjectLevelLb::hashKey(
            reinterpret_cast<const std::uint8_t *>(key.data()),
            key.size());
        const bool hot = _llc.access(h);
        if (is_get)
            return hot ? _cost.hotGetCost : _cost.coldGetCost;
        return hot ? _cost.hotSetCost : _cost.coldSetCost;
    }

    MicaKvs &_store;
    MicaCost _cost;
    mem::SetAssocLruCache _llc; ///< item residency model
};

/** Memcached behind the Dagger KVS service (shared store, any thread). */
class MemcachedBackend final : public KvBackend
{
  public:
    MemcachedBackend(Memcached &store, sim::EventQueue &eq,
                     MemcachedCost cost = {})
        : _store(store), _eq(eq), _cost(cost)
    {}

    std::optional<std::string>
    kvGet(unsigned, std::string_view key, sim::Tick &cost) override
    {
        cost = _cost.getCost;
        return _store.get(key, _eq.now());
    }

    bool
    kvSet(unsigned, std::string_view key, std::string_view value,
          sim::Tick &cost) override
    {
        cost = _cost.setCost;
        _store.set(key, value, _eq.now());
        return true;
    }

  private:
    Memcached &_store;
    sim::EventQueue &_eq;
    MemcachedCost _cost;
};

} // namespace dagger::app

#endif // DAGGER_APP_ADAPTERS_HH
