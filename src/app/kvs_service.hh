/**
 * @file
 * KVS-over-Dagger service adapter (§5.6).
 *
 * This is the porting layer the paper describes: "we modify only ~50
 * LOC of the Memcached source code in order to integrate it with
 * Dagger" / "we simply implement a MICA server application which
 * integrates it with Dagger with ~200 LOC".  The wire messages follow
 * Listing 1's KVS service; the key sits at payload offset 0 so the
 * NIC's Object-Level load balancer can hash it in "hardware".
 */

#ifndef DAGGER_APP_KVS_SERVICE_HH
#define DAGGER_APP_KVS_SERVICE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "rpc/client.hh"
#include "rpc/server.hh"
#include "sim/time.hh"

namespace dagger::app {

/** Maximum key bytes carried on the wire. */
constexpr std::size_t kKvMaxKey = 16;
/** Maximum value bytes carried on the wire. */
constexpr std::size_t kKvMaxVal = 32;

/** Function ids of the KVS service (get=1, set=2, as Listing 1). */
enum class KvsFn : proto::FnId {
    Get = 1,
    Set = 2,
};

#pragma pack(push, 1)
/** GET request: fits one cache-line frame. */
struct KvGetRequest
{
    char key[kKvMaxKey]{}; ///< offset 0: hashed by the NIC LB
    std::uint8_t keyLen = 0;
    std::uint8_t pad[3]{};
};
static_assert(sizeof(KvGetRequest) == 20);

/** GET response. */
struct KvGetResponse
{
    std::uint8_t hit = 0;
    std::uint8_t valLen = 0;
    char value[kKvMaxVal]{};
};
static_assert(sizeof(KvGetResponse) == 34);

/** SET request: two frames for max-size values. */
struct KvSetRequest
{
    char key[kKvMaxKey]{}; ///< offset 0: hashed by the NIC LB
    std::uint8_t keyLen = 0;
    std::uint8_t valLen = 0;
    std::uint8_t pad[2]{};
    char value[kKvMaxVal]{};
};
static_assert(sizeof(KvSetRequest) == 52);

/** SET response. */
struct KvSetResponse
{
    std::uint8_t stored = 0;
};
static_assert(sizeof(KvSetResponse) == 1);
#pragma pack(pop)

/**
 * Backend interface the adapter serves from — the "~50-200 LOC"
 * integration surface for a third-party store.
 */
class KvBackend
{
  public:
    virtual ~KvBackend() = default;

    /**
     * @param partition index of the serving thread (EREW stores use
     *                  it to select their partition)
     * @param cost out: simulated CPU cost of the operation
     */
    virtual std::optional<std::string> kvGet(unsigned partition,
                                             std::string_view key,
                                             sim::Tick &cost) = 0;
    virtual bool kvSet(unsigned partition, std::string_view key,
                       std::string_view value, sim::Tick &cost) = 0;
};

/**
 * Server-side adapter: registers get/set handlers on every thread of
 * an RpcThreadedServer, binding each thread to its flow index as the
 * backend partition.
 */
class KvsServer
{
  public:
    KvsServer(rpc::RpcThreadedServer &server, KvBackend &backend);

  private:
    void attachThread(rpc::RpcServerThread &thread, unsigned partition);

    KvBackend &_backend;
};

/** Client-side typed stub. */
class KvsClient
{
  public:
    using GetCb = std::function<void(bool hit, std::string_view value)>;
    using SetCb = std::function<void(bool stored)>;
    /** Status-aware continuations: fire exactly once per call, even
     *  when the underlying RetryPolicy exhausts its budget. */
    using GetStatusCb = std::function<void(rpc::CallStatus, bool hit,
                                           std::string_view value)>;
    using SetStatusCb = std::function<void(rpc::CallStatus, bool stored)>;

    explicit KvsClient(rpc::RpcClient &client) : _client(client) {}

    /** Non-blocking GET. */
    void get(std::string_view key, GetCb cb = {});

    /** Non-blocking SET. */
    void set(std::string_view key, std::string_view value, SetCb cb = {});

    /** GET whose continuation also reports the call outcome (for
     *  degraded-mode callers under a timeout budget). */
    void getChecked(std::string_view key, GetStatusCb cb);

    /** SET with outcome reporting; see getChecked(). */
    void setChecked(std::string_view key, std::string_view value,
                    SetStatusCb cb);

    rpc::RpcClient &raw() { return _client; }

  private:
    rpc::RpcClient &_client;
};

} // namespace dagger::app

#endif // DAGGER_APP_KVS_SERVICE_HH
