/**
 * @file
 * KVS workload generation (§5.6).
 *
 * "we generate two types of datasets similar to the ones used to
 * evaluate MICA: tiny (8B keys and 8B values) and small (16B keys and
 * 32B values). We populate both memcached and MICA KVS with 10M and
 * 200M unique key-value pairs respectively, and access them over the
 * Dagger fabric, following a Zipfian distribution with skewness of
 * 0.99. ... write-intense (set/get = 50%/50%) and read-intense
 * (set/get = 5%/95%)."
 *
 * Values are a deterministic function of the key so any GET hit can
 * be integrity-checked without keeping a shadow copy of the dataset.
 */

#ifndef DAGGER_APP_WORKLOAD_HH
#define DAGGER_APP_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "sim/rng.hh"

namespace dagger::app {

/** The two dataset shapes of §5.6. */
struct DatasetShape
{
    std::size_t keyLen;
    std::size_t valLen;
    const char *name;
};

constexpr DatasetShape kTiny{8, 8, "tiny"};
constexpr DatasetShape kSmall{16, 32, "small"};

/** One generated operation. */
struct KvOp
{
    bool isGet = true;
    std::uint64_t keyIndex = 0; ///< Zipf rank the key was drawn at
    std::string key;
    std::string value; ///< empty for GETs
};

/** Zipfian GET/SET stream over a fixed key space. */
class KvWorkload
{
  public:
    /**
     * @param num_keys  key-space size
     * @param theta     Zipf skew (0.99 / 0.9999 in the paper)
     * @param get_ratio fraction of GETs (0.95 read-intense, 0.50
     *                  write-intense)
     * @param shape     tiny or small
     */
    KvWorkload(std::uint64_t num_keys, double theta, double get_ratio,
               DatasetShape shape, std::uint64_t seed = 0x6b7673ull)
        : _shape(shape), _getRatio(get_ratio), _zipf(num_keys, theta, seed),
          _rng(seed ^ 0x9e3779b97f4a7c15ull)
    {}

    /** Deterministic fixed-width key for index @p i. */
    std::string
    keyFor(std::uint64_t i) const
    {
        std::string key(_shape.keyLen, '0');
        for (std::size_t pos = key.size(); pos-- > 0 && i > 0; i /= 36) {
            const auto digit = static_cast<char>(i % 36);
            key[pos] = digit < 10 ? static_cast<char>('0' + digit)
                                  : static_cast<char>('a' + digit - 10);
        }
        return key;
    }

    /** Deterministic value for a key (integrity-checkable). */
    std::string
    valueFor(std::string_view key) const
    {
        std::string v(_shape.valLen, 'v');
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = static_cast<char>(
                'A' + (key[i % key.size()] * 31 + static_cast<char>(i)) % 26);
        return v;
    }

    /** Next operation in the stream. */
    KvOp
    next()
    {
        KvOp op;
        const std::uint64_t idx = _zipf.next();
        op.keyIndex = idx;
        op.key = keyFor(idx);
        op.isGet = _rng.uniform() < _getRatio;
        if (!op.isGet)
            op.value = valueFor(op.key);
        return op;
    }

    const DatasetShape &shape() const { return _shape; }
    std::uint64_t numKeys() const { return _zipf.n(); }

  private:
    DatasetShape _shape;
    double _getRatio;
    sim::ZipfianGenerator _zipf;
    sim::Rng _rng;
};

} // namespace dagger::app

#endif // DAGGER_APP_WORKLOAD_HH
