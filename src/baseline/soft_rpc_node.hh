/**
 * @file
 * A software-RPC endpoint running on simulated cores.
 *
 * Serves two purposes:
 *  - the comparison harness for Table 3 (echo RPCs over each modeled
 *    stack), and
 *  - the substrate for the §3 characterization (Figs. 3-5): the
 *    Social Network tiers run over this node with kernel-TCP costs,
 *    and the per-request latency is decomposed into transport
 *    processing, RPC processing, and application time exactly like
 *    the paper's profiler (queueing for the network thread counts as
 *    transport; queueing for the app thread counts as RPC).
 *
 * The node supports deferred responses so mid-tier services can fan
 * out nested calls before answering.
 */

#ifndef DAGGER_BASELINE_SOFT_RPC_NODE_HH
#define DAGGER_BASELINE_SOFT_RPC_NODE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "baseline/soft_stack.hh"
#include "proto/payload.hh"
#include "rpc/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace dagger::baseline {

/**
 * Baseline request/response payload.  Shares the refcounted flat
 * buffer used by the Dagger path, so baseline-vs-Dagger comparisons
 * (Table 3) move handles over the same allocation model and the copy
 * counters in proto::payloadStats() cover both stacks.
 */
using Payload = proto::PayloadBuf;

/** Per-request component times recorded at the serving node. */
struct ServeBreakdown
{
    sim::Histogram transport{"transport_ns"}; ///< RX transport (+queue)
    sim::Histogram rpc{"rpc_ns"};             ///< RPC layers (+queue)
    sim::Histogram app{"app_ns"};             ///< handler incl. nested calls
    sim::Histogram total{"total_ns"};         ///< arrival -> response sent
};

/** One endpoint (think: one microservice process). */
class SoftRpcNode
{
  public:
    /** Send the response; @p app_cost is the handler's CPU time. */
    using Responder = std::function<void(Payload response,
                                         sim::Tick app_cost)>;

    /** Request handler; must eventually invoke the responder once. */
    using SHandler = std::function<void(const Payload &request,
                                        Responder respond)>;

    /**
     * @param eq    event queue
     * @param p     stack cost model
     * @param app   hardware thread running application + RPC layers
     * @param net   hardware thread running transport processing
     *              (interrupts); nullptr = colocated with @p app,
     *              which is the shaded-bars configuration of Fig. 5
     */
    SoftRpcNode(sim::EventQueue &eq, const SoftStackParams &p,
                rpc::HwThread &app, rpc::HwThread *net = nullptr);

    /** Install the request handler. */
    void setHandler(SHandler handler) { _handler = std::move(handler); }

    /**
     * Multiplier applied to every CPU cost at this node while network
     * processing shares the application thread.  A FIFO queueing
     * model alone cannot see why colocation hurts (the same work just
     * queues in one place instead of two); the real costs are
     * interrupt context switches and LLC/L1 pollution, which §3.3
 	 * measures and which this factor models.  Ignored when a
     * dedicated net thread is configured.
     */
    void setColocationSlowdown(double factor) { _colocSlowdown = factor; }

    /** True when transport processing shares the app thread. */
    bool colocated() const { return _net == nullptr || _net == &_app; }

    /**
     * Issue an RPC to @p dest.  @p cb runs on this node's app thread
     * with the response payload and the measured RTT.
     */
    void call(SoftRpcNode &dest, Payload request,
              std::function<void(const Payload &, sim::Tick rtt)> cb);

    /** Serving-side breakdown of everything this node handled. */
    const ServeBreakdown &served() const { return _served; }
    ServeBreakdown &served() { return _served; }

    std::uint64_t handled() const { return _handled; }
    const SoftStackParams &params() const { return _params; }
    rpc::HwThread &appThread() { return _app; }
    rpc::HwThread &netThread() { return _net ? *_net : _app; }

  private:
    void receive(Payload request, std::function<void(Payload)> reply);
    void receiveResponse(Payload response,
                         std::function<void(Payload)> done);

    /** Cost scaled by the colocation slowdown when applicable. */
    sim::Tick scaled(sim::Tick cost) const;

    sim::EventQueue &_eq;
    SoftStackParams _params;
    rpc::HwThread &_app;
    rpc::HwThread *_net;
    double _colocSlowdown = 1.0;
    SHandler _handler;
    ServeBreakdown _served;
    std::uint64_t _handled = 0;
};

} // namespace dagger::baseline

#endif // DAGGER_BASELINE_SOFT_RPC_NODE_HH
