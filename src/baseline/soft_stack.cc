#include "baseline/soft_stack.hh"

#include "sim/logging.hh"

namespace dagger::baseline {

using sim::nsToTicks;
using sim::usToTicks;

SoftStackParams
paramsFor(SoftStack stack)
{
    switch (stack) {
      case SoftStack::LinuxTcp:
        // Kernel TCP/IP + Thrift-style RPC.  Anchors: memcached over
        // its native kernel transport is 11.4x slower than over
        // Dagger (§1: 2.8us * 11.4 ~= 32us RTT), and a well-tuned
        // kernel stack sustains a few hundred Krps per core.
        return SoftStackParams{"LinuxTCP", nsToTicks(850), nsToTicks(750),
                               nsToTicks(800), nsToTicks(700),
                               usToTicks(13.0)};
      case SoftStack::DpdkIx:
        // Table 3: 64B msg, RTT 11.4us, 1.5 Mrps/core.  IX batches
        // aggressively at the NIC -> high latency, decent throughput.
        return SoftStackParams{"IX", nsToTicks(140), nsToTicks(190),
                               nsToTicks(190), nsToTicks(145),
                               usToTicks(4.35)};
      case SoftStack::Erpc:
        // Table 3: 32B RPC, RTT 2.3us, 4.96 Mrps/core.
        return SoftStackParams{"eRPC", nsToTicks(45), nsToTicks(55),
                               nsToTicks(55), nsToTicks(46),
                               usToTicks(0.95)};
      case SoftStack::RdmaFasst:
        // Table 3: 48B RPC, RTT 2.8us, 4.8 Mrps/core.
        return SoftStackParams{"FaSST", nsToTicks(48), nsToTicks(56),
                               nsToTicks(56), nsToTicks(48),
                               usToTicks(1.19)};
      case SoftStack::NetDimm:
        // Table 3: 64B msg, RTT 2.2us (no RPC layer, no throughput
        // reported).  Integrated NIC: tiny per-message CPU cost.
        return SoftStackParams{"NetDIMM", nsToTicks(30), nsToTicks(45),
                               nsToTicks(45), nsToTicks(30),
                               usToTicks(0.95)};
    }
    dagger_panic("unknown soft stack");
}

const char *
stackName(SoftStack stack)
{
    return paramsFor(stack).name;
}

} // namespace dagger::baseline
