#include "baseline/soft_rpc_node.hh"

#include "sim/logging.hh"

namespace dagger::baseline {

SoftRpcNode::SoftRpcNode(sim::EventQueue &eq, const SoftStackParams &p,
                         rpc::HwThread &app, rpc::HwThread *net)
    : _eq(eq), _params(p), _app(app), _net(net)
{
}

sim::Tick
SoftRpcNode::scaled(sim::Tick cost) const
{
    if (!colocated() || _colocSlowdown <= 1.0)
        return cost;
    return static_cast<sim::Tick>(static_cast<double>(cost) *
                                  _colocSlowdown);
}

void
SoftRpcNode::call(SoftRpcNode &dest, Payload request,
                  std::function<void(const Payload &, sim::Tick)> cb)
{
    const sim::Tick t0 = _eq.now();

    // Delivery of the response back at this (caller) node.
    auto reply = [this, cb = std::move(cb), t0](Payload resp) mutable {
        receiveResponse(std::move(resp),
                        [this, cb = std::move(cb), t0](Payload r) {
                            if (cb)
                                cb(r, _eq.now() - t0);
                        });
    };

    // Sender-side RPC + transport layers on the app thread, then wire.
    _app.execute(scaled(_params.rpcSendCpu + _params.transportSendCpu),
                 [this, &dest, request = std::move(request),
                  reply = std::move(reply)]() mutable {
                     auto hop = [&dest, request = std::move(request),
                                 reply = std::move(reply)]() mutable {
                         dest.receive(std::move(request),
                                      std::move(reply));
                     };
                     // The software baseline deliberately threads fat
                     // closures (payload + nested completion) through
                     // every hop — exactly the per-RPC allocation and
                     // copy overheads Dagger's NIC offload removes.
                     // This one rides EventClosure's heap fallback.
                     static_assert(!sim::EventClosure::fitsInline<
                                   decltype(hop)>());
                     _eq.schedule(_params.wireOneWay, std::move(hop),
                                  sim::Priority::Hardware);
                 });
}

void
SoftRpcNode::receive(Payload request, std::function<void(Payload)> reply)
{
    const sim::Tick t2 = _eq.now();
    netThread().execute(
        scaled(_params.transportRecvCpu),
        [this, request = std::move(request), reply = std::move(reply),
         t2]() mutable {
            const sim::Tick t3 = _eq.now();
            _app.execute(
                scaled(_params.rpcRecvCpu),
                [this, request = std::move(request),
                 reply = std::move(reply), t2, t3]() mutable {
                    const sim::Tick t4 = _eq.now();
                    dagger_assert(_handler, "SoftRpcNode without handler");
                    ++_handled;
                    auto respond = [this, reply = std::move(reply), t2, t3,
                                    t4](Payload response,
                                        sim::Tick app_cost) mutable {
                        const sim::Tick t5 = _eq.now();
                        _app.execute(
                            scaled(app_cost + _params.rpcSendCpu +
                                   _params.transportSendCpu),
                            [this, reply = std::move(reply),
                             response = std::move(response), t2, t3, t4, t5,
                             app_cost]() mutable {
                                const sim::Tick t6 = _eq.now();
                                _served.transport.record(t3 - t2);
                                _served.rpc.record((t4 - t3) +
                                                   (t6 - t5 - app_cost));
                                _served.app.record((t5 - t4) + app_cost);
                                _served.total.record(t6 - t2);
                                _eq.schedule(
                                    _params.wireOneWay,
                                    [reply = std::move(reply),
                                     response =
                                         std::move(response)]() mutable {
                                        reply(std::move(response));
                                    },
                                    sim::Priority::Hardware);
                            });
                    };
                    _handler(request, std::move(respond));
                });
        });
}

void
SoftRpcNode::receiveResponse(Payload response,
                             std::function<void(Payload)> done)
{
    netThread().execute(
        scaled(_params.transportRecvCpu),
        [this, response = std::move(response),
         done = std::move(done)]() mutable {
            _app.execute(scaled(_params.rpcRecvCpu),
                         [response = std::move(response),
                          done = std::move(done)]() mutable {
                             done(std::move(response));
                         });
        });
}

} // namespace dagger::baseline
