/**
 * @file
 * Modeled software / RDMA RPC systems (Table 3 comparisons and the
 * §3 characterization substrate).
 *
 * The paper compares Dagger against the published numbers of IX
 * (kernel-bypass DPDK networking), eRPC (raw user-space NIC driver),
 * FaSST (two-sided RDMA RPCs), and NetDIMM (in-DIMM integrated NIC).
 * We do the computational equivalent: each system is a cost-model
 * point (per-direction CPU costs + wire latency) calibrated to its
 * published single-core throughput and median RTT, run in the same
 * DES harness as Dagger.
 */

#ifndef DAGGER_BASELINE_SOFT_STACK_HH
#define DAGGER_BASELINE_SOFT_STACK_HH

#include "sim/time.hh"

namespace dagger::baseline {

using sim::Tick;

/** The modeled systems. */
enum class SoftStack {
    LinuxTcp, ///< kernel TCP/IP + Thrift-style RPC (the §3 baseline)
    DpdkIx,   ///< IX [23]
    Erpc,     ///< eRPC [38]
    RdmaFasst,///< FaSST [40]
    NetDimm,  ///< NetDIMM [18]
};

/** Cost-model point for one software stack. */
struct SoftStackParams
{
    const char *name;

    /** CPU: RPC-layer work on the sender (serialize, stubs). */
    Tick rpcSendCpu;

    /** CPU: transport-layer work on the sender (TCP/IP or driver TX). */
    Tick transportSendCpu;

    /** CPU: transport-layer work on the receiver (interrupt/poll, RX). */
    Tick transportRecvCpu;

    /** CPU: RPC-layer work on the receiver (deserialize, dispatch). */
    Tick rpcRecvCpu;

    /** One-way NIC + wire + ToR latency excluding the CPU parts. */
    Tick wireOneWay;

    /** Per-request client CPU (send + receive sides). */
    Tick
    clientCpuPerRpc() const
    {
        return rpcSendCpu + transportSendCpu + transportRecvCpu + rpcRecvCpu;
    }

    /** Single-core throughput (Mrps) implied by the CPU costs. */
    double
    coreMrps() const
    {
        return 1000.0 / sim::ticksToNs(clientCpuPerRpc());
    }
};

/** Calibrated parameters; see EXPERIMENTS.md for the anchor table. */
SoftStackParams paramsFor(SoftStack stack);

/** Printable name. */
const char *stackName(SoftStack stack);

} // namespace dagger::baseline

#endif // DAGGER_BASELINE_SOFT_STACK_HH
