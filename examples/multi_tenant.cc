/**
 * @file
 * NIC virtualization demo (§6, Fig. 14): several independent tenants
 * share one physical FPGA through per-tenant Dagger NIC instances,
 * arbitrated round-robin on the CCI-P bus and switched by the ToR
 * model.  Shows per-tenant isolation of connections, flows, and
 * statistics, plus fair bus sharing under contention.
 *
 * Build & run:  ./build/examples/multi_tenant
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "rpc/client.hh"
#include "rpc/report.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

int
main()
{
    using namespace dagger;
    constexpr unsigned kTenants = 3;
    constexpr int kRpcsPerTenant = 5000;

    rpc::DaggerSystem sys(ic::IfaceKind::Upi);
    rpc::CpuSet cpus(sys.eq(), 2 * kTenants);

    nic::NicConfig cfg;
    cfg.numFlows = 1;
    nic::SoftConfig soft;
    soft.batchSize = 4;

    struct Tenant
    {
        rpc::DaggerNode *client_node;
        rpc::DaggerNode *server_node;
        std::unique_ptr<rpc::RpcClient> client;
        std::unique_ptr<rpc::RpcThreadedServer> server;
        std::uint64_t done = 0;
    };
    std::vector<Tenant> tenants(kTenants);

    for (unsigned t = 0; t < kTenants; ++t) {
        Tenant &tn = tenants[t];
        // Each tenant gets its own pair of NIC instances on the same
        // physical FPGA ("virtual but physical" NICs).
        tn.client_node = &sys.addNode(cfg, soft);
        tn.server_node = &sys.addNode(cfg, soft);
        tn.client = std::make_unique<rpc::RpcClient>(
            *tn.client_node, 0, cpus.core(2 * t).thread(0));
        tn.client->setConnection(
            sys.connect(*tn.client_node, 0, *tn.server_node, 0));
        tn.server = std::make_unique<rpc::RpcThreadedServer>(
            *tn.server_node);
        tn.server->addThread(0, cpus.core(2 * t + 1).thread(0));
        tn.server->registerHandler(1, [](const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            out.response = req.payload();
            out.cost = sim::nsToTicks(60);
            return out;
        });
    }

    // All tenants hammer the shared fabric simultaneously.
    for (unsigned t = 0; t < kTenants; ++t) {
        Tenant &tn = tenants[t];
        // Closed loop, window 8 per tenant.
        struct Driver : std::enable_shared_from_this<Driver>
        {
            Tenant *tn;
            int remaining;
            void
            fire()
            {
                if (remaining <= 0)
                    return;
                --remaining;
                std::uint64_t payload = 42;
                auto self = shared_from_this();
                tn->client->callPod(
                    1, payload, [self](const proto::RpcMessage &) {
                        ++self->tn->done;
                        self->fire();
                    });
            }
        };
        auto driver = std::make_shared<Driver>();
        driver->tn = &tn;
        driver->remaining = kRpcsPerTenant;
        for (int w = 0; w < 8; ++w)
            sys.eq().schedule(0, [driver] { driver->fire(); });
    }

    sys.eq().runFor(sim::msToTicks(200));

    std::printf("multi-tenant fabric: %u tenants, shared CCI-P arbiter\n",
                kTenants);
    bool ok = true;
    for (unsigned t = 0; t < kTenants; ++t) {
        const Tenant &tn = tenants[t];
        std::printf("  tenant %u: %llu/%d RPCs, median RTT %.2f us, "
                    "NIC drops %llu\n",
                    t, static_cast<unsigned long long>(tn.done),
                    kRpcsPerTenant,
                    sim::ticksToUs(tn.client->latency().percentile(50)),
                    static_cast<unsigned long long>(
                        tn.server_node->nicDev().monitor().drops()));
        ok = ok && tn.done == kRpcsPerTenant;
    }

    // Arbiter fairness: grants across ports should be near-equal.
    const auto &grants = sys.fabric().toNicChannel().grants();
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (auto g : grants) {
        lo = std::min(lo, g);
        hi = std::max(hi, g);
    }
    std::printf("  CCI-P arbiter grants per port: min=%llu max=%llu\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi));
    std::printf("\n%s", rpc::reportSystem(sys).c_str());
    return ok ? 0 : 1;
}
