/**
 * @file
 * MICA-over-Dagger (§5.6): a partitioned KVS served through the
 * hardware-offloaded RPC stack, with the NIC's Object-Level load
 * balancer steering each key to its owning partition.
 *
 * Demonstrates:
 *  - multi-flow servers (one flow = one MICA partition, EREW),
 *  - hardware key-hash steering matching the store's partitioning,
 *  - the Zipfian workloads of the paper (tiny / small datasets),
 *  - data-integrity verification through the full wire path.
 *
 * Build & run:  ./build/examples/mica_server
 */

#include <cstdio>

#include "app/adapters.hh"
#include "app/kvs_service.hh"
#include "app/workload.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

int
main()
{
    using namespace dagger;
    constexpr unsigned kPartitions = 4;
    constexpr int kOps = 20000;

    rpc::DaggerSystem sys(ic::IfaceKind::Upi);
    rpc::CpuSet cpus(sys.eq(), 1 + kPartitions);

    nic::NicConfig client_cfg;
    client_cfg.numFlows = 1;
    nic::NicConfig server_cfg;
    server_cfg.numFlows = kPartitions;
    nic::SoftConfig soft;
    soft.batchSize = 4;

    auto &client_node = sys.addNode(client_cfg, soft);
    auto &server_node = sys.addNode(server_cfg, soft);
    server_node.nicDev().setObjectLevelKey(0, 8); // key at offset 0

    // The store: 4 partitions, steered by the same hash the NIC uses.
    app::MicaKvs store(kPartitions, 64u << 20, 1u << 16);
    app::MicaBackend backend(store);

    rpc::RpcThreadedServer server(server_node);
    for (unsigned p = 0; p < kPartitions; ++p)
        server.addThread(p, cpus.core(1 + p).thread(0));
    app::KvsServer kvs_server(server, backend);

    rpc::RpcClient rpc_client(client_node, 0, cpus.core(0).thread(0));
    rpc_client.setConnection(sys.connect(client_node, 0, server_node, 0,
                                         nic::LbScheme::ObjectLevel));
    app::KvsClient kvs(rpc_client);

    // Tiny dataset, write-intensive mix, Zipf 0.99 (§5.6).
    app::KvWorkload wl(100'000, 0.99, 0.5, app::kTiny);

    std::uint64_t hits = 0, gets = 0, integrity_errors = 0;
    int issued = 0;

    // Closed-loop driver with a window of 16 outstanding ops.
    std::function<void()> issue = [&] {
        if (issued >= kOps)
            return;
        ++issued;
        app::KvOp op = wl.next();
        if (op.isGet) {
            ++gets;
            const std::string expect = wl.valueFor(op.key);
            kvs.get(op.key,
                    [&, expect](bool hit, std::string_view value) {
                        if (hit) {
                            ++hits;
                            if (std::string(value) != expect)
                                ++integrity_errors;
                        }
                        issue();
                    });
        } else {
            kvs.set(op.key, op.value, [&](bool) { issue(); });
        }
    };
    for (int w = 0; w < 16; ++w)
        issue();

    sys.eq().runFor(sim::msToTicks(500));

    const auto &stats = store.totalStats();
    std::printf("MICA over Dagger: %d ops in %.2f ms simulated\n", issued,
                sim::ticksToUs(sys.eq().now()) / 1000.0);
    std::printf("  gets=%llu hit-rate=%.1f%% integrity-errors=%llu\n",
                static_cast<unsigned long long>(gets),
                gets ? 100.0 * static_cast<double>(hits) /
                           static_cast<double>(gets)
                     : 0.0,
                static_cast<unsigned long long>(integrity_errors));
    std::printf("  EREW violations (should be 0 with object-level LB): "
                "%llu\n",
                static_cast<unsigned long long>(stats.crossPartition));
    std::printf("  median RTT %.2f us, p99 %.2f us\n",
                sim::ticksToUs(rpc_client.latency().percentile(50)),
                sim::ticksToUs(rpc_client.latency().percentile(99)));
    return integrity_errors == 0 && stats.crossPartition == 0 ? 0 : 1;
}
