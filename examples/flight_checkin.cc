/**
 * @file
 * The 8-tier Flight Registration microservice application of §5.7,
 * run end-to-end over virtualized Dagger NICs, with the request
 * tracer identifying the bottleneck tier and the two threading
 * models compared side by side (Table 4).
 *
 * Build & run:  ./build/examples/flight_checkin
 */

#include <cstdio>

#include "svc/flight.hh"

namespace {

void
runModel(dagger::svc::ThreadingModel model, const char *label, double krps)
{
    using namespace dagger;
    svc::FlightConfig cfg;
    cfg.model = model;
    svc::FlightApp app(cfg);
    app.run(krps, sim::msToTicks(80));

    std::printf("%s threading @ %.1f Krps offered:\n", label, krps);
    std::printf("  completed %llu/%llu (drop rate %.2f%%)\n",
                static_cast<unsigned long long>(app.completed()),
                static_cast<unsigned long long>(app.issued()),
                100.0 * app.dropRate());
    std::printf("  e2e latency: p50=%.1f us p90=%.1f us p99=%.1f us\n",
                sim::ticksToUs(app.e2eLatency().percentile(50)),
                sim::ticksToUs(app.e2eLatency().percentile(90)),
                sim::ticksToUs(app.e2eLatency().percentile(99)));
    std::printf("  tracer bottleneck: %s\n",
                app.tracer().bottleneck().c_str());
    for (const auto &[name, hist] : app.tracer().all()) {
        std::printf("    span %-14s n=%-6llu mean=%.1f us\n", name.c_str(),
                    static_cast<unsigned long long>(hist.count()),
                    hist.mean() / 1e6);
    }
    std::printf("  staff reads served: %llu\n\n",
                static_cast<unsigned long long>(app.staffReadsCompleted()));
}

} // namespace

int
main()
{
    std::printf("Flight Registration service (Fig. 13), 8 tiers over "
                "virtualized Dagger NICs\n\n");
    // The Simple model handles ~2.7 Krps before drops (Table 4);
    // drive both models at a rate the Simple model can still carry.
    runModel(dagger::svc::ThreadingModel::Simple, "Simple", 1.5);
    runModel(dagger::svc::ThreadingModel::Optimized, "Optimized", 1.5);
    // And demonstrate the Optimized model's headroom.
    runModel(dagger::svc::ThreadingModel::Optimized, "Optimized", 30.0);
    return 0;
}
