/**
 * @file
 * Reproduces Fig. 15: latency/load curves for the Flight Registration
 * service with the Optimized threading model.
 *
 * Paper: median and tail of 23 / 33 us before the saturation point
 * (~25 Krps in the figure's left panel); past saturation the tail
 * latency "soars sharply, while the median latency stays at the level
 * of 23-26 us".
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"
#include "svc/flight.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct LoadPoint
{
    double krps = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    double drops = 0;
};

constexpr double kLoads[] = {5.0, 10.0, 15.0, 20.0, 25.0,
                             30.0, 35.0, 40.0, 45.0, 50.0};

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("staff_read_rate", 500.0);
    ctx.config("measure_ms", 80.0);

    std::vector<std::function<LoadPoint()>> scenarios;
    for (double krps : kLoads)
        scenarios.push_back([krps] {
            svc::FlightConfig cfg;
            cfg.model = svc::ThreadingModel::Optimized;
            cfg.staffReadRate = 500;
            svc::FlightApp app(cfg);
            app.run(krps, sim::msToTicks(80));
            LoadPoint p;
            p.krps = krps;
            p.p50 = sim::ticksToUs(app.e2eLatency().percentile(50));
            p.p90 = sim::ticksToUs(app.e2eLatency().percentile(90));
            p.p99 = sim::ticksToUs(app.e2eLatency().percentile(99));
            p.drops = 100.0 * app.dropRate();
            return p;
        });
    const std::vector<LoadPoint> points =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Fig. 15: Flight Registration latency vs load "
                "(Optimized threading)",
                "load(Krps)   p50(us)   p90(us)   p99(us)  drop%");

    for (const LoadPoint &p : points) {
        std::printf("%10.1f %9.1f %9.1f %9.1f %6.2f\n", p.krps, p.p50,
                    p.p90, p.p99, p.drops);
        ctx.point()
            .value("krps", p.krps)
            .value("p50_us", p.p50)
            .value("p90_us", p.p90)
            .value("p99_us", p.p99)
            .value("drop_pct", p.drops);
    }

    // Identify the pre-saturation region (tail still bounded).
    const LoadPoint &low = points[1];      // 10 Krps
    const LoadPoint &mid = points[3];      // 20 Krps
    const LoadPoint &post_sat = points[5]; // 30 Krps (just past knee)
    const LoadPoint &high = points.back();

    ctx.check("pre-saturation median stays in the ~20-30us band",
              low.p50 > 8.0 && low.p50 < 40.0 && mid.p50 < 45.0);
    ctx.check("tail soars past the saturation point",
              high.p99 > 3.0 * mid.p99);
    ctx.check("just past saturation the median holds while the "
              "tail soars (paper: 23-26us median)",
              post_sat.p50 < 45.0 && post_sat.p99 > 20.0 * post_sat.p50);
    ctx.check("drops appear only at/after saturation",
              low.drops < 1.0 && mid.drops < 1.0);

    ctx.anchor("presat_p50_us", 23.0, mid.p50, 0.60);
}

} // namespace

DAGGER_BENCH_MAIN("fig15_flight_latency_load", run)
