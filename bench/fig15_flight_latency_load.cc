/**
 * @file
 * Reproduces Fig. 15: latency/load curves for the Flight Registration
 * service with the Optimized threading model.
 *
 * Paper: median and tail of 23 / 33 us before the saturation point
 * (~25 Krps in the figure's left panel); past saturation the tail
 * latency "soars sharply, while the median latency stays at the level
 * of 23-26 us".
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "svc/flight.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct LoadPoint
{
    double krps;
    double p50, p90, p99;
    double drops;
};

} // namespace

int
main()
{
    tableHeader("Fig. 15: Flight Registration latency vs load "
                "(Optimized threading)",
                "load(Krps)   p50(us)   p90(us)   p99(us)  drop%");

    std::vector<LoadPoint> points;
    for (double krps : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0,
                        45.0, 50.0}) {
        svc::FlightConfig cfg;
        cfg.model = svc::ThreadingModel::Optimized;
        cfg.staffReadRate = 500;
        svc::FlightApp app(cfg);
        app.run(krps, sim::msToTicks(80));
        LoadPoint p;
        p.krps = krps;
        p.p50 = sim::ticksToUs(app.e2eLatency().percentile(50));
        p.p90 = sim::ticksToUs(app.e2eLatency().percentile(90));
        p.p99 = sim::ticksToUs(app.e2eLatency().percentile(99));
        p.drops = 100.0 * app.dropRate();
        points.push_back(p);
        std::printf("%10.1f %9.1f %9.1f %9.1f %6.2f\n", krps, p.p50, p.p90,
                    p.p99, p.drops);
    }

    // Identify the pre-saturation region (tail still bounded).
    const LoadPoint &low = points[1];       // 10 Krps
    const LoadPoint &mid = points[3];       // 20 Krps
    const LoadPoint &post_sat = points[5];  // 30 Krps (just past knee)
    const LoadPoint &high = points.back();

    bool ok = true;
    ok &= shapeCheck("pre-saturation median stays in the ~20-30us band",
                     low.p50 > 8.0 && low.p50 < 40.0 && mid.p50 < 45.0);
    ok &= shapeCheck("tail soars past the saturation point",
                     high.p99 > 3.0 * mid.p99);
    ok &= shapeCheck("just past saturation the median holds while the "
                     "tail soars (paper: 23-26us median)",
                     post_sat.p50 < 45.0 && post_sat.p99 > 20.0 * post_sat.p50);
    ok &= shapeCheck("drops appear only at/after saturation",
                     low.drops < 1.0 && mid.drops < 1.0);
    return ok ? 0 : 1;
}
