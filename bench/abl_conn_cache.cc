/**
 * @file
 * Ablation: connection-cache sizing and DRAM backing (§4.2, §6).
 *
 * The paper sizes the on-FPGA connection cache by application need
 * ("If some application requires many connections, N can be set to a
 * high value") and proposes DRAM backing of evicted entries as future
 * work ("allow more connections with certain performance penalty due
 * to NIC cache misses") — implemented here.  This bench opens many
 * connections over one flow (the SRQ model) and sweeps the cache
 * size: small caches thrash and pay the coherent-fill penalty per
 * miss; a right-sized cache serves everything on-chip.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct Result
{
    std::size_t cache_entries;
    double p50_us;
    double hit_rate;
};

Result
runWith(std::size_t cache_entries, unsigned connections)
{
    rpc::DaggerSystem sys(ic::IfaceKind::Upi);
    rpc::CpuSet cpus(sys.eq(), 2);

    nic::NicConfig cfg;
    cfg.numFlows = 1;
    cfg.connCacheEntries = cache_entries;
    cfg.connCacheDramBacking = true;
    nic::SoftConfig soft;
    soft.autoBatch = true;

    auto &cnode = sys.addNode(cfg, soft);
    auto &snode = sys.addNode(cfg, soft);

    rpc::RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setSharedByThreads(true); // SRQ: many conns share the rings

    rpc::RpcThreadedServer server(snode);
    server.addThread(0, cpus.core(1).thread(0));
    server.registerHandler(1, [](const proto::RpcMessage &req) {
        rpc::HandlerOutcome out;
        out.response = req.payload();
        out.cost = sim::nsToTicks(20);
        return out;
    });

    std::vector<proto::ConnId> conns;
    for (unsigned c = 0; c < connections; ++c)
        conns.push_back(sys.connect(cnode, 0, snode, 0,
                                    nic::LbScheme::Static));

    // Round-robin over connections, modest open-loop load.
    sim::Rng rng(7);
    unsigned next = 0;
    for (int i = 0; i < 4000; ++i) {
        sys.eq().scheduleAt(sim::nsToTicks(500.0 * i), [&, i] {
            std::uint64_t v = i;
            client.callAsyncOn(conns[next], 1, &v, sizeof(v));
            next = (next + 1) % conns.size();
        });
    }
    sys.eq().runFor(sim::msToTicks(6));

    Result r;
    r.cache_entries = cache_entries;
    r.p50_us = sim::ticksToUs(client.latency().percentile(50));
    const auto &cm_client = cnode.nicDev().connectionManager();
    const auto &cm_server = snode.nicDev().connectionManager();
    const double hits = static_cast<double>(cm_client.hits() +
                                            cm_server.hits());
    const double total = hits + static_cast<double>(cm_client.misses() +
                                                    cm_server.misses());
    r.hit_rate = total > 0 ? hits / total : 0.0;
    return r;
}

} // namespace

int
main()
{
    constexpr unsigned kConnections = 256;
    tableHeader("Ablation: connection cache size (256 connections, DRAM "
                "backing on)",
                "cache entries   conn-cache hit rate   median RTT (us)");

    std::vector<Result> results;
    for (std::size_t entries : {16u, 64u, 256u, 1024u}) {
        Result r = runWith(entries, kConnections);
        results.push_back(r);
        std::printf("%13zu %21.3f %17.2f\n", r.cache_entries, r.hit_rate,
                    r.p50_us);
    }

    bool ok = true;
    // Each RPC looks the connection up twice in short succession
    // (egress + response steering), so even a thrashing cache floors
    // at ~50% hits; below that every *first* lookup is a miss.
    ok &= shapeCheck("an undersized cache thrashes (every 1st lookup "
                     "misses)",
                     results[0].hit_rate < 0.55);
    ok &= shapeCheck("a right-sized cache serves on-chip",
                     results.back().hit_rate > 0.95);
    ok &= shapeCheck("misses cost latency (coherent fills, §4.2)",
                     results[0].p50_us > results.back().p50_us + 0.2);
    ok &= shapeCheck("hit rate improves monotonically with size",
                     results[0].hit_rate <= results[1].hit_rate &&
                         results[1].hit_rate <= results[2].hit_rate &&
                         results[2].hit_rate <= results[3].hit_rate);
    return ok ? 0 : 1;
}
