/**
 * @file
 * Ablation: connection-cache sizing and DRAM backing (§4.2, §6).
 *
 * The paper sizes the on-FPGA connection cache by application need
 * ("If some application requires many connections, N can be set to a
 * high value") and proposes DRAM backing of evicted entries as future
 * work ("allow more connections with certain performance penalty due
 * to NIC cache misses") — implemented here.  This bench opens many
 * connections over one flow (the SRQ model) and sweeps the cache
 * size: small caches thrash and pay the coherent-fill penalty per
 * miss; a right-sized cache serves everything on-chip.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct Result
{
    std::size_t cache_entries = 0;
    double p50_us = 0;
    double hit_rate = 0;
};

Result
runWith(std::size_t cache_entries, unsigned connections)
{
    rpc::DaggerSystem sys(ic::IfaceKind::Upi);
    rpc::CpuSet cpus(sys.eq(), 2);

    nic::NicConfig cfg;
    cfg.numFlows = 1;
    cfg.connCacheEntries = cache_entries;
    cfg.connCacheDramBacking = true;
    nic::SoftConfig soft;
    soft.autoBatch = true;

    auto &cnode = sys.addNode(cfg, soft);
    auto &snode = sys.addNode(cfg, soft);

    rpc::RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setSharedByThreads(true); // SRQ: many conns share the rings

    rpc::RpcThreadedServer server(snode);
    server.addThread(0, cpus.core(1).thread(0));
    server.registerHandler(1, [](const proto::RpcMessage &req) {
        rpc::HandlerOutcome out;
        out.response = req.payload();
        out.cost = sim::nsToTicks(20);
        return out;
    });

    std::vector<proto::ConnId> conns;
    for (unsigned c = 0; c < connections; ++c)
        conns.push_back(sys.connect(cnode, 0, snode, 0,
                                    nic::LbScheme::Static));

    // Round-robin over connections, modest open-loop load.
    sim::Rng rng(7);
    unsigned next = 0;
    for (int i = 0; i < 4000; ++i) {
        cnode.eq().scheduleAt(sim::nsToTicks(500.0 * i), [&, i] {
            std::uint64_t v = i;
            client.callAsyncOn(conns[next], 1, &v, sizeof(v));
            next = (next + 1) % conns.size();
        });
    }
    sys.runFor(sim::msToTicks(6));

    Result r;
    r.cache_entries = cache_entries;
    r.p50_us = sim::ticksToUs(client.latency().percentile(50));
    const auto &cm_client = cnode.nicDev().connectionManager();
    const auto &cm_server = snode.nicDev().connectionManager();
    const double hits = static_cast<double>(cm_client.hits() +
                                            cm_server.hits());
    const double total = hits + static_cast<double>(cm_client.misses() +
                                                    cm_server.misses());
    r.hit_rate = total > 0 ? hits / total : 0.0;
    return r;
}

constexpr unsigned kConnections = 256;
constexpr std::size_t kCacheSizes[] = {16, 64, 256, 1024};

void
run(BenchContext &ctx)
{
    ctx.seed(7);
    ctx.config("connections", static_cast<double>(kConnections));

    std::vector<std::function<Result()>> scenarios;
    for (std::size_t entries : kCacheSizes)
        scenarios.push_back(
            [entries] { return runWith(entries, kConnections); });
    const std::vector<Result> results =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Ablation: connection cache size (256 connections, DRAM "
                "backing on)",
                "cache entries   conn-cache hit rate   median RTT (us)");

    for (const Result &r : results) {
        std::printf("%13zu %21.3f %17.2f\n", r.cache_entries, r.hit_rate,
                    r.p50_us);
        ctx.point()
            .value("cache_entries", static_cast<double>(r.cache_entries))
            .value("hit_rate", r.hit_rate)
            .value("p50_us", r.p50_us);
    }

    // Each RPC looks the connection up twice in short succession
    // (egress + response steering), so even a thrashing cache floors
    // at ~50% hits; below that every *first* lookup is a miss.
    ctx.check("an undersized cache thrashes (every 1st lookup misses)",
              results[0].hit_rate < 0.55);
    ctx.check("a right-sized cache serves on-chip",
              results.back().hit_rate > 0.95);
    ctx.check("misses cost latency (coherent fills, §4.2)",
              results[0].p50_us > results.back().p50_us + 0.2);
    ctx.check("hit rate improves monotonically with size",
              results[0].hit_rate <= results[1].hit_rate &&
                  results[1].hit_rate <= results[2].hit_rate &&
                  results[2].hit_rate <= results[3].hit_rate);

    ctx.anchor("right_sized_hit_rate", 1.0, results.back().hit_rate,
               0.05);
}

} // namespace

DAGGER_BENCH_MAIN("abl_conn_cache", run)
