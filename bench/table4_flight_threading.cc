/**
 * @file
 * Reproduces Table 4: the Flight Registration service under the
 * Simple (dispatch-thread) and Optimized (worker-thread) threading
 * models — highest sustainable load (<1% drops) and lowest latency.
 *
 * Paper: Simple 2.7 Krps / 13.3 / 20.2 / 23.8 us (p50/p90/p99);
 * Optimized 48 Krps / 23.4 / 27.3 / 33.6 us — "such a change in the
 * threading model dramatically increases the overall application
 * throughput by up to 17x" at the price of inter-thread latency.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "svc/flight.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;
using svc::FlightApp;
using svc::FlightConfig;
using svc::ThreadingModel;

struct ModelResult
{
    double max_krps = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    std::string bottleneck;
};

ModelResult
evaluate(ThreadingModel model)
{
    ModelResult result;

    // Lowest latency: light load.
    {
        FlightConfig cfg;
        cfg.model = model;
        cfg.staffReadRate = 500;
        FlightApp app(cfg);
        app.run(0.3, sim::msToTicks(120));
        result.p50 = sim::ticksToUs(app.e2eLatency().percentile(50));
        result.p90 = sim::ticksToUs(app.e2eLatency().percentile(90));
        result.p99 = sim::ticksToUs(app.e2eLatency().percentile(99));
        result.bottleneck = app.tracer().bottleneck();
    }

    // Highest load with <1% drops: sweep upward.
    const double loads_simple[] = {1, 1.5, 2, 2.5, 3, 3.5, 4, 5};
    const double loads_opt[] = {5, 10, 20, 30, 40, 45, 50, 55, 60};
    const auto &loads = model == ThreadingModel::Simple
        ? std::vector<double>(std::begin(loads_simple),
                              std::end(loads_simple))
        : std::vector<double>(std::begin(loads_opt), std::end(loads_opt));
    for (double krps : loads) {
        FlightConfig cfg;
        cfg.model = model;
        cfg.staffReadRate = 500;
        FlightApp app(cfg);
        app.run(krps, sim::msToTicks(60));
        // The bottleneck analysis needs a populated trace; take it
        // from the loaded runs (the light run may see no slow
        // requests at all).
        result.bottleneck = app.tracer().bottleneck();
        if (app.dropRate() < 0.01 && app.completed() > 0)
            result.max_krps = krps;
        else
            break;
    }
    return result;
}

} // namespace

int
main()
{
    tableHeader("Table 4: Flight Registration service, threading models",
                "model      paper: Krps  p50   p90   p99  | measured: "
                "Krps   p50    p90    p99");

    ModelResult simple = evaluate(ThreadingModel::Simple);
    ModelResult opt = evaluate(ThreadingModel::Optimized);

    std::printf("%-10s %10.1f %5.1f %5.1f %5.1f | %13.1f %6.1f %6.1f "
                "%6.1f\n",
                "Simple", 2.7, 13.3, 20.2, 23.8, simple.max_krps,
                simple.p50, simple.p90, simple.p99);
    std::printf("%-10s %10.1f %5.1f %5.1f %5.1f | %13.1f %6.1f %6.1f "
                "%6.1f\n",
                "Optimized", 48.0, 23.4, 27.3, 33.6, opt.max_krps, opt.p50,
                opt.p90, opt.p99);
    std::printf("tracer bottleneck (both models): %s / %s\n",
                simple.bottleneck.c_str(), opt.bottleneck.c_str());

    bool ok = true;
    ok &= shapeCheck("Optimized sustains >=10x the Simple load "
                     "(paper ~17x)",
                     opt.max_krps >= 10.0 * simple.max_krps);
    ok &= shapeCheck("Simple max load is a few Krps (paper 2.7)",
                     simple.max_krps >= 1.0 && simple.max_krps <= 5.0);
    ok &= shapeCheck("Optimized max load tens of Krps (paper 48)",
                     opt.max_krps >= 25.0 && opt.max_krps <= 70.0);
    ok &= shapeCheck("Simple has the lower latency floor",
                     simple.p50 < opt.p50);
    ok &= shapeCheck("Simple p50 ~13us band (paper 13.3)",
                     simple.p50 > 6.0 && simple.p50 < 26.0);
    ok &= shapeCheck("tracer blames the Flight service (§5.7)",
                     simple.bottleneck == "flight" &&
                         opt.bottleneck == "flight");
    return ok ? 0 : 1;
}
