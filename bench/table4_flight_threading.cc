/**
 * @file
 * Reproduces Table 4: the Flight Registration service under the
 * Simple (dispatch-thread) and Optimized (worker-thread) threading
 * models — highest sustainable load (<1% drops) and lowest latency.
 *
 * Paper: Simple 2.7 Krps / 13.3 / 20.2 / 23.8 us (p50/p90/p99);
 * Optimized 48 Krps / 23.4 / 27.3 / 33.6 us — "such a change in the
 * threading model dramatically increases the overall application
 * throughput by up to 17x" at the price of inter-thread latency.
 */

#include <cstdio>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "svc/flight.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;
using svc::FlightApp;
using svc::FlightConfig;
using svc::ThreadingModel;

/** One FlightApp run (light-load latency probe or loaded drop probe). */
struct FlightProbe
{
    double p50 = 0, p90 = 0, p99 = 0;
    double drop_rate = 0;
    std::uint64_t completed = 0;
    std::string bottleneck;
};

FlightProbe
probe(ThreadingModel model, double krps, sim::Tick duration)
{
    FlightConfig cfg;
    cfg.model = model;
    cfg.staffReadRate = 500;
    FlightApp app(cfg);
    app.run(krps, duration);
    FlightProbe r;
    r.p50 = sim::ticksToUs(app.e2eLatency().percentile(50));
    r.p90 = sim::ticksToUs(app.e2eLatency().percentile(90));
    r.p99 = sim::ticksToUs(app.e2eLatency().percentile(99));
    r.drop_rate = app.dropRate();
    r.completed = app.completed();
    r.bottleneck = app.tracer().bottleneck();
    return r;
}

struct ModelResult
{
    double max_krps = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    std::string bottleneck;
};

const std::vector<double> kLoadsSimple = {1, 1.5, 2, 2.5, 3, 3.5, 4, 5};
const std::vector<double> kLoadsOpt = {5, 10, 20, 30, 40, 45, 50, 55, 60};

/**
 * Aggregate one model's probes: index 0 is the light-load latency run,
 * the rest climb the load ladder.  The serial sweep stopped at the
 * first load with >= 1% drops; the same stop rule is applied here so
 * results are identical at any --jobs count.
 */
ModelResult
aggregate(const std::vector<FlightProbe> &probes,
          const std::vector<double> &loads)
{
    ModelResult result;
    result.p50 = probes[0].p50;
    result.p90 = probes[0].p90;
    result.p99 = probes[0].p99;
    result.bottleneck = probes[0].bottleneck;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const FlightProbe &p = probes[i + 1];
        // The bottleneck analysis needs a populated trace; take it
        // from the loaded runs (the light run may see no slow
        // requests at all).
        result.bottleneck = p.bottleneck;
        if (p.drop_rate < 0.01 && p.completed > 0)
            result.max_krps = loads[i];
        else
            break;
    }
    return result;
}

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("staff_read_rate", 500.0);

    std::vector<std::function<FlightProbe()>> scenarios;
    scenarios.push_back([] {
        return probe(ThreadingModel::Simple, 0.3, sim::msToTicks(120));
    });
    for (double krps : kLoadsSimple)
        scenarios.push_back([krps] {
            return probe(ThreadingModel::Simple, krps,
                         sim::msToTicks(60));
        });
    scenarios.push_back([] {
        return probe(ThreadingModel::Optimized, 0.3,
                     sim::msToTicks(120));
    });
    for (double krps : kLoadsOpt)
        scenarios.push_back([krps] {
            return probe(ThreadingModel::Optimized, krps,
                         sim::msToTicks(60));
        });
    const std::vector<FlightProbe> probes =
        ctx.runner().run(std::move(scenarios));

    const std::size_t opt_base = 1 + kLoadsSimple.size();
    const ModelResult simple = aggregate(
        std::vector<FlightProbe>(probes.begin(),
                                 probes.begin() + opt_base),
        kLoadsSimple);
    const ModelResult opt = aggregate(
        std::vector<FlightProbe>(probes.begin() + opt_base, probes.end()),
        kLoadsOpt);

    tableHeader("Table 4: Flight Registration service, threading models",
                "model      paper: Krps  p50   p90   p99  | measured: "
                "Krps   p50    p90    p99");

    std::printf("%-10s %10.1f %5.1f %5.1f %5.1f | %13.1f %6.1f %6.1f "
                "%6.1f\n",
                "Simple", 2.7, 13.3, 20.2, 23.8, simple.max_krps,
                simple.p50, simple.p90, simple.p99);
    std::printf("%-10s %10.1f %5.1f %5.1f %5.1f | %13.1f %6.1f %6.1f "
                "%6.1f\n",
                "Optimized", 48.0, 23.4, 27.3, 33.6, opt.max_krps, opt.p50,
                opt.p90, opt.p99);
    std::printf("tracer bottleneck (both models): %s / %s\n",
                simple.bottleneck.c_str(), opt.bottleneck.c_str());

    ctx.point()
        .tag("model", "Simple")
        .value("max_krps", simple.max_krps)
        .value("p50_us", simple.p50)
        .value("p90_us", simple.p90)
        .value("p99_us", simple.p99);
    ctx.point()
        .tag("model", "Optimized")
        .value("max_krps", opt.max_krps)
        .value("p50_us", opt.p50)
        .value("p90_us", opt.p90)
        .value("p99_us", opt.p99);

    ctx.check("Optimized sustains >=10x the Simple load (paper ~17x)",
              opt.max_krps >= 10.0 * simple.max_krps);
    ctx.check("Simple max load is a few Krps (paper 2.7)",
              simple.max_krps >= 1.0 && simple.max_krps <= 5.0);
    ctx.check("Optimized max load tens of Krps (paper 48)",
              opt.max_krps >= 25.0 && opt.max_krps <= 70.0);
    ctx.check("Simple has the lower latency floor", simple.p50 < opt.p50);
    ctx.check("Simple p50 ~13us band (paper 13.3)",
              simple.p50 > 6.0 && simple.p50 < 26.0);
    ctx.check("tracer blames the Flight service (§5.7)",
              simple.bottleneck == "flight" && opt.bottleneck == "flight");

    ctx.anchor("simple_max_krps", 2.7, simple.max_krps, 0.60);
    ctx.anchor("optimized_max_krps", 48.0, opt.max_krps, 0.40);
}

} // namespace

DAGGER_BENCH_MAIN("table4_flight_threading", run)
