/**
 * @file
 * Ablation: FPGA polling mode (§4.4.1).
 *
 * "Dagger starts by polling its local cache which is coherent with
 * the processor's LLC ... However, since the FPGA allocates data in
 * its local cache in this case, it causes the CPU to lose ownership
 * of the corresponding cache lines therefore hurting the data
 * transfer's efficiency.  For this reason, Dagger dynamically
 * switches to direct polling of the processor's LLC when the load
 * becomes high."
 *
 * We pin each mode and compare: local-cache polling is
 * lower-latency at light load; LLC polling is cheaper per request at
 * saturation; the dynamic switch gets both.
 */

#include <cstdio>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

enum class Mode { ForcedLocal, ForcedLlc, Dynamic };

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::ForcedLocal:
        return "local-cache";
      case Mode::ForcedLlc:
        return "LLC-direct";
      case Mode::Dynamic:
        return "dynamic";
    }
    return "?";
}

std::unique_ptr<EchoRig>
makeRig(Mode m)
{
    EchoRig::Options opt;
    opt.batch = 4;
    opt.threads = 1;
    auto rig = std::make_unique<EchoRig>(opt);
    for (std::size_t n = 0; n < 2; ++n) {
        auto &soft = rig->system().node(n).nicDev().softConfig();
        auto &port = rig->system().node(n).nicDev().cciPort();
        switch (m) {
          case Mode::ForcedLocal:
            soft.llcPollThresholdMrps = 1e9; // never switch
            port.setPollMode(ic::PollMode::LocalCache);
            break;
          case Mode::ForcedLlc:
            soft.llcPollThresholdMrps = 0.0; // switch immediately
            port.setPollMode(ic::PollMode::Llc);
            break;
          case Mode::Dynamic:
            break; // default threshold
        }
    }
    return rig;
}

} // namespace

int
main()
{
    tableHeader("Ablation: FPGA polling mode (local coherent cache vs "
                "processor LLC)",
                "mode           low-load p50(us)   saturation Mrps");

    double lowload[3], peak[3];
    int i = 0;
    for (Mode m : {Mode::ForcedLocal, Mode::ForcedLlc, Mode::Dynamic}) {
        {
            auto rig = makeRig(m);
            Point p =
                rig->offer(0.5, sim::msToTicks(1), sim::msToTicks(6));
            lowload[i] = p.p50_us;
        }
        {
            auto rig = makeRig(m);
            Point p = rig->saturate(96);
            peak[i] = p.mrps;
        }
        std::printf("%-14s %16.2f %17.2f\n", modeName(m), lowload[i],
                    peak[i]);
        ++i;
    }

    bool ok = true;
    ok &= shapeCheck("local-cache polling wins at light load (latency)",
                     lowload[0] < lowload[1]);
    ok &= shapeCheck("LLC polling wins at saturation (CPU efficiency)",
                     peak[1] > peak[0] * 1.02);
    ok &= shapeCheck("dynamic switch ~ best of both: latency",
                     lowload[2] < lowload[1] + 0.15);
    ok &= shapeCheck("dynamic switch ~ best of both: throughput",
                     peak[2] > 0.97 * peak[1]);
    return ok ? 0 : 1;
}
