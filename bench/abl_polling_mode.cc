/**
 * @file
 * Ablation: FPGA polling mode (§4.4.1).
 *
 * "Dagger starts by polling its local cache which is coherent with
 * the processor's LLC ... However, since the FPGA allocates data in
 * its local cache in this case, it causes the CPU to lose ownership
 * of the corresponding cache lines therefore hurting the data
 * transfer's efficiency.  For this reason, Dagger dynamically
 * switches to direct polling of the processor's LLC when the load
 * becomes high."
 *
 * We pin each mode and compare: local-cache polling is
 * lower-latency at light load; LLC polling is cheaper per request at
 * saturation; the dynamic switch gets both.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

enum class Mode { ForcedLocal, ForcedLlc, Dynamic };

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::ForcedLocal:
        return "local-cache";
      case Mode::ForcedLlc:
        return "LLC-direct";
      case Mode::Dynamic:
        return "dynamic";
    }
    return "?";
}

std::unique_ptr<EchoRig>
makeRig(Mode m)
{
    EchoRig::Options opt;
    opt.batch = 4;
    opt.threads = 1;
    auto rig = std::make_unique<EchoRig>(opt);
    for (std::size_t n = 0; n < 2; ++n) {
        auto &soft = rig->system().node(n).nicDev().softConfig();
        auto &port = rig->system().node(n).nicDev().cciPort();
        switch (m) {
          case Mode::ForcedLocal:
            soft.llcPollThresholdMrps = 1e9; // never switch
            port.setPollMode(ic::PollMode::LocalCache);
            break;
          case Mode::ForcedLlc:
            soft.llcPollThresholdMrps = 0.0; // switch immediately
            port.setPollMode(ic::PollMode::Llc);
            break;
          case Mode::Dynamic:
            break; // default threshold
        }
    }
    return rig;
}

struct ModePoint
{
    double lowload_p50 = 0;
    double peak_mrps = 0;
};

ModePoint
runMode(Mode m)
{
    ModePoint r;
    {
        auto rig = makeRig(m);
        Point p = rig->offer(0.5, sim::msToTicks(1), sim::msToTicks(6));
        r.lowload_p50 = p.p50_us;
    }
    {
        auto rig = makeRig(m);
        Point p = rig->saturate(96);
        r.peak_mrps = p.mrps;
    }
    return r;
}

constexpr Mode kModes[] = {Mode::ForcedLocal, Mode::ForcedLlc,
                           Mode::Dynamic};

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);

    std::vector<std::function<ModePoint()>> scenarios;
    for (Mode m : kModes)
        scenarios.push_back([m] { return runMode(m); });
    const std::vector<ModePoint> results =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Ablation: FPGA polling mode (local coherent cache vs "
                "processor LLC)",
                "mode           low-load p50(us)   saturation Mrps");

    for (unsigned i = 0; i < 3; ++i) {
        std::printf("%-14s %16.2f %17.2f\n", modeName(kModes[i]),
                    results[i].lowload_p50, results[i].peak_mrps);
        ctx.point()
            .tag("mode", modeName(kModes[i]))
            .value("lowload_p50_us", results[i].lowload_p50)
            .value("peak_mrps", results[i].peak_mrps);
    }

    const ModePoint &local = results[0];
    const ModePoint &llc = results[1];
    const ModePoint &dyn = results[2];

    ctx.check("local-cache polling wins at light load (latency)",
              local.lowload_p50 < llc.lowload_p50);
    ctx.check("LLC polling wins at saturation (CPU efficiency)",
              llc.peak_mrps > local.peak_mrps * 1.02);
    ctx.check("dynamic switch ~ best of both: latency",
              dyn.lowload_p50 < llc.lowload_p50 + 0.15);
    ctx.check("dynamic switch ~ best of both: throughput",
              dyn.peak_mrps > 0.97 * llc.peak_mrps);

    ctx.anchor("dynamic_vs_llc_peak_ratio", 1.0,
               dyn.peak_mrps / llc.peak_mrps, 0.10);
}

} // namespace

DAGGER_BENCH_MAIN("abl_polling_mode", run)
