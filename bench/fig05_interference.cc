/**
 * @file
 * Reproduces Fig. 5: end-to-end latency when network interrupt
 * processing shares CPU cores with the application logic (shaded
 * bars) versus running on dedicated cores (solid bars).
 *
 * Paper: "when both application logic and network processing contend
 * for the same CPU resources, end-to-end latency (both median and
 * tail) suffers. ... interference becomes worse as the system load
 * increases, especially when it comes to tail latency."
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"
#include "svc/socialnet.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct Pair
{
    double iso_p50 = 0, iso_p99 = 0, col_p50 = 0, col_p99 = 0;
};

constexpr double kQps[] = {200.0, 400.0, 600.0};

Pair
runBoth(double qps)
{
    svc::SocialNetConfig iso_cfg;
    iso_cfg.colocatedNetworking = false;
    svc::SocialNet iso(iso_cfg);
    iso.run(qps, sim::msToTicks(600));

    svc::SocialNetConfig col_cfg;
    col_cfg.colocatedNetworking = true;
    svc::SocialNet col(col_cfg);
    col.run(qps, sim::msToTicks(600));

    Pair p;
    p.iso_p50 = sim::ticksToUs(iso.e2eLatency().percentile(50));
    p.iso_p99 = sim::ticksToUs(iso.e2eLatency().percentile(99));
    p.col_p50 = sim::ticksToUs(col.e2eLatency().percentile(50));
    p.col_p99 = sim::ticksToUs(col.e2eLatency().percentile(99));
    return p;
}

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("measure_ms", 600.0);

    std::vector<std::function<Pair()>> scenarios;
    for (double qps : kQps)
        scenarios.push_back([qps] { return runBoth(qps); });
    const std::vector<Pair> rows = ctx.runner().run(std::move(scenarios));

    tableHeader("Fig. 5: isolated vs colocated network processing",
                "QPS    isolated p50/p99 (us)     colocated p50/p99 (us)"
                "   p99 ratio");

    for (unsigned q = 0; q < 3; ++q) {
        const Pair &p = rows[q];
        std::printf("%4.0f %12.0f / %-8.0f %14.0f / %-8.0f %8.2fx\n",
                    kQps[q], p.iso_p50, p.iso_p99, p.col_p50, p.col_p99,
                    p.col_p99 / p.iso_p99);
        ctx.point()
            .value("qps", kQps[q])
            .value("iso_p50_us", p.iso_p50)
            .value("iso_p99_us", p.iso_p99)
            .value("col_p50_us", p.col_p50)
            .value("col_p99_us", p.col_p99);
    }

    ctx.check("colocation hurts the tail at every load",
              rows[0].col_p99 > rows[0].iso_p99 &&
                  rows[1].col_p99 > rows[1].iso_p99 &&
                  rows[2].col_p99 > rows[2].iso_p99);
    ctx.check("colocation hurts the median too",
              rows[2].col_p50 > rows[2].iso_p50);
    ctx.check("interference grows with load (tail ratio)",
              rows[2].col_p99 / rows[2].iso_p99 >
                  rows[0].col_p99 / rows[0].iso_p99);

    ctx.anchor("colocated_tail_inflation_x", 2.0,
               rows[2].col_p99 / rows[2].iso_p99, 0.80);
}

} // namespace

DAGGER_BENCH_MAIN("fig05_interference", run)
