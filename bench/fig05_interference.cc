/**
 * @file
 * Reproduces Fig. 5: end-to-end latency when network interrupt
 * processing shares CPU cores with the application logic (shaded
 * bars) versus running on dedicated cores (solid bars).
 *
 * Paper: "when both application logic and network processing contend
 * for the same CPU resources, end-to-end latency (both median and
 * tail) suffers. ... interference becomes worse as the system load
 * increases, especially when it comes to tail latency."
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "svc/socialnet.hh"

int
main()
{
    using namespace dagger;
    using namespace dagger::bench;

    tableHeader("Fig. 5: isolated vs colocated network processing",
                "QPS    isolated p50/p99 (us)     colocated p50/p99 (us)"
                "   p99 ratio");

    struct Pair
    {
        double iso_p50, iso_p99, col_p50, col_p99;
    };
    std::vector<Pair> rows;

    for (double qps : {200.0, 400.0, 600.0}) {
        svc::SocialNetConfig iso_cfg;
        iso_cfg.colocatedNetworking = false;
        svc::SocialNet iso(iso_cfg);
        iso.run(qps, sim::msToTicks(600));

        svc::SocialNetConfig col_cfg;
        col_cfg.colocatedNetworking = true;
        svc::SocialNet col(col_cfg);
        col.run(qps, sim::msToTicks(600));

        Pair p;
        p.iso_p50 = sim::ticksToUs(iso.e2eLatency().percentile(50));
        p.iso_p99 = sim::ticksToUs(iso.e2eLatency().percentile(99));
        p.col_p50 = sim::ticksToUs(col.e2eLatency().percentile(50));
        p.col_p99 = sim::ticksToUs(col.e2eLatency().percentile(99));
        rows.push_back(p);
        std::printf("%4.0f %12.0f / %-8.0f %14.0f / %-8.0f %8.2fx\n", qps,
                    p.iso_p50, p.iso_p99, p.col_p50, p.col_p99,
                    p.col_p99 / p.iso_p99);
    }

    bool ok = true;
    ok &= shapeCheck("colocation hurts the tail at every load",
                     rows[0].col_p99 > rows[0].iso_p99 &&
                         rows[1].col_p99 > rows[1].iso_p99 &&
                         rows[2].col_p99 > rows[2].iso_p99);
    ok &= shapeCheck("colocation hurts the median too",
                     rows[2].col_p50 > rows[2].iso_p50);
    ok &= shapeCheck("interference grows with load (tail ratio)",
                     rows[2].col_p99 / rows[2].iso_p99 >
                         rows[0].col_p99 / rows[0].iso_p99);
    return ok ? 0 : 1;
}
