/**
 * @file
 * Ablation: NIC load balancers on a partitioned KVS (§5.7).
 *
 * "MICA does not work correctly with round-robin/random load
 * balancers due to the way it partitions the object heap across CPU
 * cores/NIC flows. ... we implement our own application-specific
 * Object-Level load balancer for MICA tiers by applying the hash
 * function to each request's key on the FPGA."  This bench serves a
 * 4-partition MICA through both balancers and measures EREW
 * violations and throughput.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::app;
using namespace dagger::bench;

struct Result
{
    double mrps = 0;
    double violation_rate = 0;
};

Result
runWith(nic::LbScheme lb)
{
    constexpr unsigned kPartitions = 4;
    rpc::DaggerSystem sys(ic::IfaceKind::Upi);
    rpc::CpuSet cpus(sys.eq(), 1 + kPartitions);

    nic::NicConfig ccfg;
    ccfg.numFlows = 1;
    nic::NicConfig scfg;
    scfg.numFlows = kPartitions;
    nic::SoftConfig soft;
    soft.batchSize = 4;

    auto &cnode = sys.addNode(ccfg, soft);
    auto &snode = sys.addNode(scfg, soft);
    snode.nicDev().setObjectLevelKey(0, 8);

    MicaKvs store(kPartitions, 16u << 20, 1u << 14);
    MicaBackend backend(store);

    rpc::RpcThreadedServer server(snode);
    for (unsigned p = 0; p < kPartitions; ++p)
        server.addThread(p, cpus.core(1 + p).thread(0));
    KvsServer kvs_server(server, backend);

    rpc::RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setConnection(sys.connect(cnode, 0, snode, 0, lb));
    KvsClient typed(client);

    KvWorkload wl(100'000, 0.99, 0.5, kTiny);
    // Closed loop, window 64.
    std::function<void()> fire = [&] {
        KvOp op = wl.next();
        if (op.isGet)
            typed.get(op.key, [&](bool, std::string_view) { fire(); });
        else
            typed.set(op.key, op.value, [&](bool) { fire(); });
    };
    for (int w = 0; w < 64; ++w)
        fire();

    sys.eq().runFor(sim::msToTicks(2));
    const std::uint64_t d0 = client.responses();
    sys.eq().runFor(sim::msToTicks(8));

    Result r;
    r.mrps = sim::ratePerSec(client.responses() - d0, sim::msToTicks(8)) /
             1e6;
    const auto stats = store.totalStats();
    const double ops = static_cast<double>(stats.gets + stats.sets);
    r.violation_rate = ops > 0
        ? static_cast<double>(stats.crossPartition) / ops
        : 0.0;
    return r;
}

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("partitions", 4.0);

    std::vector<std::function<Result()>> scenarios = {
        [] { return runWith(nic::LbScheme::RoundRobin); },
        [] { return runWith(nic::LbScheme::ObjectLevel); },
    };
    const std::vector<Result> results =
        ctx.runner().run(std::move(scenarios));
    const Result &rr = results[0];
    const Result &ol = results[1];

    tableHeader("Ablation: round-robin vs object-level LB on 4-partition "
                "MICA",
                "balancer       throughput(Mrps)   EREW violation rate");

    std::printf("%-14s %16.2f %21.3f\n", "round-robin", rr.mrps,
                rr.violation_rate);
    std::printf("%-14s %16.2f %21.3f\n", "object-level", ol.mrps,
                ol.violation_rate);
    ctx.point()
        .tag("balancer", "round-robin")
        .value("mrps", rr.mrps)
        .value("violation_rate", rr.violation_rate);
    ctx.point()
        .tag("balancer", "object-level")
        .value("mrps", ol.mrps)
        .value("violation_rate", ol.violation_rate);

    ctx.check("object-level steering preserves EREW exactly",
              ol.violation_rate == 0.0);
    ctx.check("round-robin violates EREW on ~3/4 of accesses",
              rr.violation_rate > 0.6);
    ctx.check("object-level yields higher throughput",
              ol.mrps > 1.1 * rr.mrps);

    // Round-robin across P partitions sends (P-1)/P of requests to the
    // wrong flow: 0.75 for the 4-partition setup.
    ctx.anchor("rr_violation_rate", 0.75, rr.violation_rate, 0.15);
}

} // namespace

DAGGER_BENCH_MAIN("abl_load_balancer", run)
