/**
 * @file
 * Ablation: NIC load balancers on a partitioned KVS (§5.7).
 *
 * "MICA does not work correctly with round-robin/random load
 * balancers due to the way it partitions the object heap across CPU
 * cores/NIC flows. ... we implement our own application-specific
 * Object-Level load balancer for MICA tiers by applying the hash
 * function to each request's key on the FPGA."  This bench serves a
 * 4-partition MICA through both balancers and measures EREW
 * violations and throughput.
 */

#include <cstdio>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::app;
using namespace dagger::bench;

struct Result
{
    double mrps;
    double violation_rate;
};

Result
runWith(nic::LbScheme lb)
{
    constexpr unsigned kPartitions = 4;
    rpc::DaggerSystem sys(ic::IfaceKind::Upi);
    rpc::CpuSet cpus(sys.eq(), 1 + kPartitions);

    nic::NicConfig ccfg;
    ccfg.numFlows = 1;
    nic::NicConfig scfg;
    scfg.numFlows = kPartitions;
    nic::SoftConfig soft;
    soft.batchSize = 4;

    auto &cnode = sys.addNode(ccfg, soft);
    auto &snode = sys.addNode(scfg, soft);
    snode.nicDev().setObjectLevelKey(0, 8);

    MicaKvs store(kPartitions, 16u << 20, 1u << 14);
    MicaBackend backend(store);

    rpc::RpcThreadedServer server(snode);
    for (unsigned p = 0; p < kPartitions; ++p)
        server.addThread(p, cpus.core(1 + p).thread(0));
    KvsServer kvs_server(server, backend);

    rpc::RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setConnection(sys.connect(cnode, 0, snode, 0, lb));
    KvsClient typed(client);

    KvWorkload wl(100'000, 0.99, 0.5, kTiny);
    // Closed loop, window 64.
    std::function<void()> fire = [&] {
        KvOp op = wl.next();
        if (op.isGet)
            typed.get(op.key, [&](bool, std::string_view) { fire(); });
        else
            typed.set(op.key, op.value, [&](bool) { fire(); });
    };
    for (int w = 0; w < 64; ++w)
        fire();

    sys.eq().runFor(sim::msToTicks(2));
    const std::uint64_t d0 = client.responses();
    sys.eq().runFor(sim::msToTicks(8));

    Result r;
    r.mrps = sim::ratePerSec(client.responses() - d0, sim::msToTicks(8)) /
             1e6;
    const auto stats = store.totalStats();
    const double ops = static_cast<double>(stats.gets + stats.sets);
    r.violation_rate = ops > 0
        ? static_cast<double>(stats.crossPartition) / ops
        : 0.0;
    return r;
}

} // namespace

int
main()
{
    tableHeader("Ablation: round-robin vs object-level LB on 4-partition "
                "MICA",
                "balancer       throughput(Mrps)   EREW violation rate");

    Result rr = runWith(nic::LbScheme::RoundRobin);
    Result ol = runWith(nic::LbScheme::ObjectLevel);
    std::printf("%-14s %16.2f %21.3f\n", "round-robin", rr.mrps,
                rr.violation_rate);
    std::printf("%-14s %16.2f %21.3f\n", "object-level", ol.mrps,
                ol.violation_rate);

    bool ok = true;
    ok &= shapeCheck("object-level steering preserves EREW exactly",
                     ol.violation_rate == 0.0);
    ok &= shapeCheck("round-robin violates EREW on ~3/4 of accesses",
                     rr.violation_rate > 0.6);
    ok &= shapeCheck("object-level yields higher throughput",
                     ol.mrps > 1.1 * rr.mrps);
    return ok ? 0 : 1;
}
