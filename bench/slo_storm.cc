/**
 * @file
 * SLO-driven degradation under open-loop million-client storms
 * (extension bench; no paper figure).
 *
 * The figure benches drive closed-loop sweeps that stop offering load
 * the moment a tier backs up.  Real front-ends face *open-loop*
 * traffic: millions of independent clients keep arriving regardless
 * of backlog, which is the only regime where retry storms, load
 * shedding, and degraded-mode fan-out actually matter.  This bench
 * drives both deployed applications with app::OpenLoopGen cohort
 * actors (2^20 clients folded into 64 actors — memory stays
 * O(cohorts + in-flight)) and scores each operating point against
 * p99/p999 SLOs:
 *
 *  - Flight Registration (Optimized threading, --shards aware): a
 *    capacity ladder whose 50 Krps point *completes* the offered
 *    load yet violates the SLO (the knee a closed-loop drop-rate
 *    criterion never sees), a diurnal curve, an overload point where
 *    the Flight tier sheds its request backlog, and fault rows
 *    (seeded 2% loss, a 10% lossy Flight link, a 2 ms blackout)
 *    riding the per-tier timeout budgets — exhausted fan-out legs
 *    complete *degraded* instead of hanging.
 *  - Social Network (kernel-TCP stack, §3): a QPS ladder with an
 *    admission cap — past it, compose posts shed their Media leg.
 *
 * Every row checks exactly-once accounting (issued == completed +
 * timeouts + still-pending) and zero orphan responses.  All
 * randomness is seeded; the JSON is byte-identical across --jobs and
 * --shards, and the CI slo-smoke job diffs two shrunk runs
 * (DAGGER_SLO_SMOKE=1) on every push.
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "bench/harness.hh"
#include "net/fault_injector.hh"
#include "svc/flight.hh"
#include "svc/socialnet.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

// SLO targets (per-service; the degraded paths keep the tail bounded
// by the 1 ms leg budget, so a met SLO means the budgets held).
constexpr double kFlightSloP99Us = 1000.0;
constexpr double kFlightSloP999Us = 5000.0;
constexpr double kSnSloP99Us = 15000.0;
constexpr double kSnSloP999Us = 30000.0;

struct FlightRow
{
    const char *scenario;
    double offeredKrps;
    unsigned legRetries = 2;   ///< check-in leg resends within 1 ms
    double lossBothDirs = 0;   ///< toward check-in and passenger
    double lossToFlight = 0;   ///< toward the Flight tier only
    sim::Tick flapLen = 0;     ///< blackout of the check-in link
    bool diurnal = false;
    std::uint64_t seed = 0x510;
};

struct SnRow
{
    const char *scenario;
    double qps;
};

struct RowResult
{
    const char *service;
    const char *scenario;
    double offered_rps = 0;
    double achieved_rps = 0;
    double p50_us = 0, p99_us = 0, p999_us = 0;
    double degraded_frac = 0;
    double shed = 0;
    double timeouts = 0;
    double retries = 0;
    double spurious_arms = 0;
    double resend_drops = 0;
    double orphans = 0;
    bool slo = false;
    bool exactly_once = false;
};

struct StormScale
{
    std::uint64_t clients;
    sim::Tick flightDuration, flightDrain;
    sim::Tick snDuration, snDrain;
};

RowResult
runFlightRow(const FlightRow &row, unsigned shards, const StormScale &scale)
{
    svc::FlightConfig cfg;
    cfg.model = svc::ThreadingModel::Optimized;
    cfg.shards = shards;
    cfg.staffReadRate = 500;
    // Reliability stack under test: each check-in fan-out leg gets a
    // 1 ms budget; the Flight tier sheds its RX backlog past 64.
    cfg.checkinLegBudget = sim::msToTicks(1);
    cfg.checkinLegRetries = row.legRetries;
    cfg.flightShedQueue = 64;
    svc::FlightApp app(cfg);
    rpc::DaggerSystem &sys = app.system();

    // Seeded fault injectors sit on the ToR ports of the targeted
    // nodes; they must outlive the run.
    std::vector<std::unique_ptr<net::FaultInjector>> faults;
    auto inject = [&](rpc::DaggerNode &node, double drop_p,
                      sim::Tick flap_len, std::uint64_t seed) {
        net::FaultSpec spec;
        spec.dropP = drop_p;
        spec.seed = seed;
        if (flap_len > 0)
            spec.flaps.push_back(
                {sim::msToTicks(5), sim::msToTicks(5) + flap_len});
        faults.push_back(
            std::make_unique<net::FaultInjector>(sys.eq(), spec));
        faults.back()->install(sys.tor().attach(node.id()));
    };
    if (row.lossBothDirs > 0 || row.flapLen > 0) {
        inject(app.checkinTier().node(), row.lossBothDirs, row.flapLen,
               row.seed * 2 + 1);
        inject(app.passengerClient().node(), row.lossBothDirs, 0,
               row.seed * 2 + 2);
    }
    if (row.lossToFlight > 0)
        inject(app.flightTier().node(), row.lossToFlight, 0,
               row.seed * 2 + 3);

    svc::FlightStormSpec storm;
    storm.clients = scale.clients;
    storm.cohorts = 64;
    storm.offeredRps = row.offeredKrps * 1000.0;
    storm.duration = scale.flightDuration;
    storm.drain = scale.flightDrain;
    if (row.diurnal) {
        storm.diurnal.period = storm.duration;
        storm.diurnal.low = 0.25;
        storm.diurnal.high = 1.0;
    }
    // Passenger-side budget: 1 ms first timeout, doubling to an 8 ms
    // total — enough to ride out the scripted 2 ms blackout.
    storm.passengerRetry.timeout = sim::msToTicks(1);
    storm.passengerRetry.maxRetries = 3;
    storm.passengerRetry.backoff = 2.0;
    storm.passengerRetry.maxTimeout = sim::msToTicks(8);
    app.runStorm(storm);

    rpc::RpcClient &cli = app.passengerClient();
    RowResult r;
    r.service = "flight";
    r.scenario = row.scenario;
    r.offered_rps = storm.offeredRps;
    r.achieved_rps = static_cast<double>(app.completed()) /
                     sim::ticksToSec(storm.duration);
    r.p50_us = sim::ticksToUs(app.e2eLatency().percentile(50));
    r.p99_us = sim::ticksToUs(app.e2eLatency().percentile(99));
    r.p999_us = sim::ticksToUs(app.e2eLatency().percentile(99.9));
    r.degraded_frac = app.completed() == 0
        ? 0.0
        : static_cast<double>(app.completedDegraded()) /
            static_cast<double>(app.completed());
    r.shed = static_cast<double>(app.flightTier().shedCalls());
    r.timeouts = static_cast<double>(app.stormTimeouts());
    r.retries = static_cast<double>(cli.retriesSent());
    r.spurious_arms = static_cast<double>(cli.spuriousArms());
    r.resend_drops = static_cast<double>(cli.resendDrops());
    r.orphans = static_cast<double>(cli.orphanResponses());
    r.slo = r.p99_us <= kFlightSloP99Us && r.p999_us <= kFlightSloP999Us;
    r.exactly_once = app.issued() ==
        app.completed() + app.stormTimeouts() + cli.pendingCalls();
    return r;
}

RowResult
runSnRow(const SnRow &row, const StormScale &scale)
{
    svc::SocialNetConfig cfg;
    svc::SocialNet sn(cfg);

    svc::SnStormSpec storm;
    storm.clients = scale.clients;
    storm.cohorts = 64;
    storm.offeredQps = row.qps;
    storm.duration = scale.snDuration;
    storm.drain = scale.snDrain;
    // Admission cap: past 24 in-flight requests compose posts shed
    // their Media leg (degraded mode) instead of queueing it too.
    storm.maxInflight = 24;
    sn.runStorm(storm);

    RowResult r;
    r.service = "socialnet";
    r.scenario = row.scenario;
    r.offered_rps = row.qps;
    r.achieved_rps = static_cast<double>(sn.completed()) /
                     sim::ticksToSec(storm.duration);
    r.p50_us = sim::ticksToUs(sn.e2eLatency().percentile(50));
    r.p99_us = sim::ticksToUs(sn.e2eLatency().percentile(99));
    r.p999_us = sim::ticksToUs(sn.e2eLatency().percentile(99.9));
    r.degraded_frac = sn.completed() == 0
        ? 0.0
        : static_cast<double>(sn.degradedServed()) /
            static_cast<double>(sn.completed());
    r.slo = r.p99_us <= kSnSloP99Us && r.p999_us <= kSnSloP999Us;
    // The software stack has no drop points: every issued request is
    // either done or still queued somewhere in the model.
    r.exactly_once = sn.issued() == sn.completed() + sn.inflight();
    return r;
}

void
run(BenchContext &ctx)
{
    // CI smoke mode: same grid shape, shrunk population and windows.
    const bool smoke = std::getenv("DAGGER_SLO_SMOKE") != nullptr;
    StormScale scale;
    scale.clients = smoke ? (1ull << 16) : (1ull << 20);
    scale.flightDuration = sim::msToTicks(smoke ? 25 : 80);
    scale.flightDrain = sim::msToTicks(smoke ? 15 : 40);
    scale.snDuration = sim::msToTicks(smoke ? 60 : 200);
    scale.snDrain = sim::msToTicks(smoke ? 25 : 50);

    ctx.seed(0x510c4);
    ctx.config("clients", static_cast<double>(scale.clients));
    ctx.config("cohorts", 64.0);
    ctx.config("smoke", smoke ? 1.0 : 0.0);
    ctx.config("flight_slo_p99_us", kFlightSloP99Us);
    ctx.config("flight_slo_p999_us", kFlightSloP999Us);
    ctx.config("socialnet_slo_p99_us", kSnSloP99Us);
    ctx.config("socialnet_slo_p999_us", kSnSloP999Us);

    const std::vector<FlightRow> flight_rows = {
        {"capacity-10k", 10.0},
        {"capacity-20k", 20.0},
        {"capacity-30k", 30.0},
        {"capacity-40k", 40.0},
        {"capacity-50k", 50.0},
        {"overload-60k", 60.0},
        {"diurnal-40k", 40.0, 2, 0, 0, 0, true},
        {"loss-2%", 20.0, 2, 0.02},
        {"flight-loss-10%", 20.0, 1, 0, 0.10},
        {"flap-2ms", 20.0, 2, 0, 0, sim::msToTicks(2)},
    };
    const std::vector<SnRow> sn_rows = {
        {"qps-300", 300.0},
        {"qps-600", 600.0},
        {"qps-900", 900.0},
        {"qps-1200", 1200.0},
    };

    const unsigned shards = ctx.shards();
    std::vector<std::function<RowResult()>> scenarios;
    for (const FlightRow &row : flight_rows)
        scenarios.push_back([row, shards, scale] {
            return runFlightRow(row, shards, scale);
        });
    for (const SnRow &row : sn_rows)
        scenarios.push_back([row, scale] { return runSnRow(row, scale); });
    const std::vector<RowResult> rows =
        ctx.runner().run(std::move(scenarios));

    tableHeader("SLO storm: open-loop degradation, both services",
                "service    scenario         offered   achieved    p50(us) "
                "  p99(us)  p999(us)  dgrd%  shed  t/o  SLO");

    for (const RowResult &r : rows) {
        std::printf("%-10s %-16s %8.0f %10.0f %10.1f %9.1f %9.1f %6.2f "
                    "%5.0f %4.0f  %s\n",
                    r.service, r.scenario, r.offered_rps, r.achieved_rps,
                    r.p50_us, r.p99_us, r.p999_us, 100.0 * r.degraded_frac,
                    r.shed, r.timeouts, r.slo ? "met" : "VIOLATED");
        ctx.point()
            .tag("service", r.service)
            .tag("scenario", r.scenario)
            .value("offered_rps", r.offered_rps)
            .value("achieved_rps", r.achieved_rps)
            .value("p50_us", r.p50_us)
            .value("p99_us", r.p99_us)
            .value("p999_us", r.p999_us)
            .value("degraded_frac", r.degraded_frac)
            .value("shed", r.shed)
            .value("timeouts", r.timeouts)
            .value("retries", r.retries)
            .value("spurious_arms", r.spurious_arms)
            .value("resend_drops", r.resend_drops)
            .value("orphans", r.orphans)
            .value("slo_met", r.slo ? 1.0 : 0.0);
    }

    // Row lookup by scenario name (grid order is fixed).
    auto find = [&rows](const char *scenario) -> const RowResult & {
        for (const RowResult &r : rows)
            if (std::string_view(r.scenario) == scenario)
                return r;
        dagger_assert(false, "missing scenario ", scenario);
        return rows.front();
    };

    bool exact = true, no_orphans = true;
    for (const RowResult &r : rows) {
        exact = exact && r.exactly_once;
        no_orphans = no_orphans && r.orphans == 0;
    }
    ctx.check("exactly-once accounting holds on every row "
              "(issued == completed + timeouts + pending)",
              exact);
    ctx.check("no orphan responses anywhere, loss and flap included",
              no_orphans);
    // The SLO knee sits below the ~50 Krps throughput knee: at 50
    // Krps the Optimized model still *completes* the offered load
    // (table4's capacity point), but worker-pool queueing excursions
    // blow through the 1 ms leg budgets and the p99 SLO — the
    // open-loop distinction a closed-loop drop-rate criterion never
    // sees.
    ctx.check("flight meets its SLO at nominal load (10-20 Krps)",
              find("capacity-10k").slo && find("capacity-20k").slo);
    // Saturation physics needs the full windows: queue excursions
    // (and the Social Network admission cap) take tens of simulated
    // milliseconds to build, so the shrunk smoke grid only scores the
    // reliability invariants above.
    if (!smoke) {
        ctx.check("the SLO knee sits below the throughput knee: at "
                  "capacity the load completes but the SLO is gone",
                  !find("capacity-50k").slo &&
                      find("capacity-50k").achieved_rps >
                          0.95 * find("capacity-50k").offered_rps);
        ctx.check("past the knee the SLO breaks and the Flight tier "
                  "sheds",
                  !find("overload-60k").slo &&
                      find("overload-60k").shed > 0);
    }
    ctx.check("lossy Flight link degrades legs instead of hanging them",
              find("flight-loss-10%").degraded_frac > 0);
    ctx.check("passenger retries ride out the 2ms blackout",
              find("flap-2ms").retries > 0 &&
                  find("flap-2ms").achieved_rps >
                      0.9 * find("capacity-20k").achieved_rps);
    ctx.check("socialnet meets its SLO at nominal load",
              find("qps-300").slo && find("qps-600").slo);
    if (!smoke)
        ctx.check("socialnet overload trips the admission cap into "
                  "degraded compose",
                  find("qps-1200").degraded_frac > 0);

    ctx.anchor("flight_capacity_p99_us", 25.0,
               find("capacity-20k").p99_us, 1.0);
}

} // namespace

DAGGER_BENCH_MAIN("slo_storm", run)
