/**
 * @file
 * Extension: the CXL outlook of §4.3 and §6, implemented.
 *
 * "Some specifications, such as the upcoming peripheral memory
 * interconnect CXL, allow non-cacheable writes to the device memory,
 * meaning that the CPU can directly write RPCs to the NIC, so in
 * addition to improved CPU efficiency, the model also reduces
 * latency, since only one bus transaction is required to send data to
 * the device."  The paper could not evaluate this (no CXL FPGA IP in
 * 2021); the model here projects it: direct device writes remove the
 * invalidation/poll round trip and all host-buffer bookkeeping.
 */

#include <cstdio>

#include "bench/harness.hh"

int
main()
{
    using namespace dagger;
    using namespace dagger::bench;

    tableHeader("Extension: projected CXL interface vs UPI (64B RPCs, "
                "single core)",
                "interface   low-load p50(us)  p99(us)   saturation Mrps");

    struct Row
    {
        const char *label;
        ic::IfaceKind iface;
        unsigned batch;
        Point lat;
        double sat;
    };
    Row rows[] = {
        {"UPI B=1", ic::IfaceKind::Upi, 1, {}, 0},
        {"UPI B=4", ic::IfaceKind::Upi, 4, {}, 0},
        {"CXL B=1", ic::IfaceKind::Cxl, 1, {}, 0},
        {"CXL B=4", ic::IfaceKind::Cxl, 4, {}, 0},
    };

    for (Row &row : rows) {
        EchoRig::Options opt;
        opt.iface = row.iface;
        opt.batch = row.batch;
        opt.threads = 1;
        {
            EchoRig rig(opt);
            row.lat = rig.offer(0.5, sim::msToTicks(1), sim::msToTicks(6));
        }
        {
            EchoRig rig(opt);
            row.sat = rig.saturate(96).mrps;
        }
        std::printf("%-11s %15.2f %8.2f %17.2f\n", row.label,
                    row.lat.p50_us, row.lat.p99_us, row.sat);
    }

    bool ok = true;
    ok &= shapeCheck("CXL cuts the B=1 RTT below UPI (one transaction)",
                     rows[2].lat.p50_us < rows[0].lat.p50_us - 0.2);
    ok &= shapeCheck("CXL needs no batching to reach UPI-B4 throughput",
                     rows[2].sat > 0.95 * rows[1].sat);
    ok &= shapeCheck("CXL B=1 throughput beats UPI B=1 (no bookkeeping)",
                     rows[2].sat > 1.3 * rows[0].sat);
    ok &= shapeCheck("batching adds little on top of CXL",
                     rows[3].lat.p50_us + 0.05 >= rows[2].lat.p50_us);
    return ok ? 0 : 1;
}
