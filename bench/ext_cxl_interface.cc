/**
 * @file
 * Extension: the CXL outlook of §4.3 and §6, implemented.
 *
 * "Some specifications, such as the upcoming peripheral memory
 * interconnect CXL, allow non-cacheable writes to the device memory,
 * meaning that the CPU can directly write RPCs to the NIC, so in
 * addition to improved CPU efficiency, the model also reduces
 * latency, since only one bus transaction is required to send data to
 * the device."  The paper could not evaluate this (no CXL FPGA IP in
 * 2021); the model here projects it: direct device writes remove the
 * invalidation/poll round trip and all host-buffer bookkeeping.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct RowResult
{
    Point lat;
    double sat = 0;
};

struct RowSpec
{
    const char *label;
    ic::IfaceKind iface;
    unsigned batch;
};

constexpr RowSpec kRows[] = {
    {"UPI B=1", ic::IfaceKind::Upi, 1},
    {"UPI B=4", ic::IfaceKind::Upi, 4},
    {"CXL B=1", ic::IfaceKind::Cxl, 1},
    {"CXL B=4", ic::IfaceKind::Cxl, 4},
};

RowResult
runRow(const RowSpec &spec)
{
    EchoRig::Options opt;
    opt.iface = spec.iface;
    opt.batch = spec.batch;
    opt.threads = 1;
    RowResult r;
    {
        EchoRig rig(opt);
        r.lat = rig.offer(0.5, sim::msToTicks(1), sim::msToTicks(6));
    }
    {
        EchoRig rig(opt);
        r.sat = rig.saturate(96).mrps;
    }
    return r;
}

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("payload_bytes", 64.0);

    std::vector<std::function<RowResult()>> scenarios;
    for (const RowSpec &spec : kRows)
        scenarios.push_back([&spec] { return runRow(spec); });
    const std::vector<RowResult> rows =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Extension: projected CXL interface vs UPI (64B RPCs, "
                "single core)",
                "interface   low-load p50(us)  p99(us)   saturation Mrps");

    for (unsigned i = 0; i < 4; ++i) {
        std::printf("%-11s %15.2f %8.2f %17.2f\n", kRows[i].label,
                    rows[i].lat.p50_us, rows[i].lat.p99_us, rows[i].sat);
        ctx.point()
            .tag("interface", kRows[i].label)
            .value("lowload_p50_us", rows[i].lat.p50_us)
            .value("lowload_p99_us", rows[i].lat.p99_us)
            .value("saturation_mrps", rows[i].sat);
    }

    ctx.check("CXL cuts the B=1 RTT below UPI (one transaction)",
              rows[2].lat.p50_us < rows[0].lat.p50_us - 0.2);
    ctx.check("CXL needs no batching to reach UPI-B4 throughput",
              rows[2].sat > 0.95 * rows[1].sat);
    ctx.check("CXL B=1 throughput beats UPI B=1 (no bookkeeping)",
              rows[2].sat > 1.3 * rows[0].sat);
    ctx.check("batching adds little on top of CXL",
              rows[3].lat.p50_us + 0.05 >= rows[2].lat.p50_us);

    ctx.anchor("cxl_b1_vs_upi_b4_sat_ratio", 1.0,
               rows[2].sat / rows[1].sat, 0.15);
}

} // namespace

DAGGER_BENCH_MAIN("ext_cxl_interface", run)
