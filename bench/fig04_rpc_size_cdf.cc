/**
 * @file
 * Reproduces Fig. 4: the distribution of RPC request and response
 * sizes in the Social Network application (left: aggregate CDFs;
 * right: per-service size breakdown).
 *
 * Paper anchors: "75% of all RPC requests are smaller than 512B.
 * Responses are even more compact, with more than 90% of packets
 * being smaller then 64B"; "the median RPC size in the Text service
 * is 580B, while the Media, User, and UniqueID services never have
 * RPCs larger than 64B".
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/harness.hh"
#include "svc/socialnet.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;
using svc::SocialNet;

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("qps", 400.0);
    ctx.config("measure_ms", 500.0);

    std::vector<std::function<std::shared_ptr<SocialNet>()>> scenarios;
    scenarios.push_back([] {
        auto sn = std::make_shared<SocialNet>();
        sn->run(400, sim::msToTicks(500));
        return sn;
    });
    const auto runs = ctx.runner().run(std::move(scenarios));
    const SocialNet &sn = *runs[0];

    tableHeader("Fig. 4 (left): CDF of RPC sizes",
                "percentile   request(B)   response(B)");
    for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        const auto req = sn.allRequestSizes().percentile(pct);
        const auto rsp = sn.allResponseSizes().percentile(pct);
        std::printf("%9.0f%% %12llu %13llu\n", pct,
                    static_cast<unsigned long long>(req),
                    static_cast<unsigned long long>(rsp));
        ctx.point()
            .value("percentile", pct)
            .value("request_bytes", static_cast<double>(req))
            .value("response_bytes", static_cast<double>(rsp));
    }

    tableHeader("Fig. 4 (right): per-service request sizes",
                "service          p50(B)   p99(B)   max(B)");
    for (unsigned t = 0; t < svc::kSnTiers; ++t) {
        const auto &h = sn.requestSize(t);
        std::printf("%-15s %7llu %8llu %8llu\n", svc::snTierName(t),
                    static_cast<unsigned long long>(h.percentile(50)),
                    static_cast<unsigned long long>(h.percentile(99)),
                    static_cast<unsigned long long>(h.max()));
        ctx.point()
            .tag("tier", svc::snTierName(t))
            .value("p50_bytes", static_cast<double>(h.percentile(50)))
            .value("p99_bytes", static_cast<double>(h.percentile(99)))
            .value("max_bytes", static_cast<double>(h.max()));
    }

    ctx.check("75% of requests are < 512B (paper)",
              sn.allRequestSizes().percentile(75) < 512);
    ctx.check(">90% of responses are <= 64B (paper)",
              sn.allResponseSizes().percentile(90) <= 64 + 6);
    const auto text_med = sn.requestSize(3).percentile(50);
    ctx.check("Text's median RPC ~580B (paper)",
              text_med > 400 && text_med < 800);
    ctx.check("Media/User/UniqueID never exceed 64B (paper)",
              sn.requestSize(0).max() <= 64 &&
                  sn.requestSize(1).max() <= 64 &&
                  sn.requestSize(2).max() <= 64);
    ctx.check("size diversity across tiers (one-size-fits-all is "
              "a poor fit, §3.2)",
              sn.requestSize(3).percentile(50) >
                  8 * sn.requestSize(1).percentile(50));

    ctx.anchor("text_median_rpc_bytes", 580.0,
               static_cast<double>(text_med), 0.40);
}

} // namespace

DAGGER_BENCH_MAIN("fig04_rpc_size_cdf", run)
