/**
 * @file
 * Reproduces Fig. 4: the distribution of RPC request and response
 * sizes in the Social Network application (left: aggregate CDFs;
 * right: per-service size breakdown).
 *
 * Paper anchors: "75% of all RPC requests are smaller than 512B.
 * Responses are even more compact, with more than 90% of packets
 * being smaller then 64B"; "the median RPC size in the Text service
 * is 580B, while the Media, User, and UniqueID services never have
 * RPCs larger than 64B".
 */

#include <cstdio>

#include "bench/harness.hh"
#include "svc/socialnet.hh"

int
main()
{
    using namespace dagger;
    using namespace dagger::bench;

    svc::SocialNet sn;
    sn.run(400, sim::msToTicks(500));

    tableHeader("Fig. 4 (left): CDF of RPC sizes",
                "percentile   request(B)   response(B)");
    for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        std::printf("%9.0f%% %12llu %13llu\n", pct,
                    static_cast<unsigned long long>(
                        sn.allRequestSizes().percentile(pct)),
                    static_cast<unsigned long long>(
                        sn.allResponseSizes().percentile(pct)));
    }

    tableHeader("Fig. 4 (right): per-service request sizes",
                "service          p50(B)   p99(B)   max(B)");
    for (unsigned t = 0; t < svc::kSnTiers; ++t) {
        const auto &h = sn.requestSize(t);
        std::printf("%-15s %7llu %8llu %8llu\n", svc::snTierName(t),
                    static_cast<unsigned long long>(h.percentile(50)),
                    static_cast<unsigned long long>(h.percentile(99)),
                    static_cast<unsigned long long>(h.max()));
    }

    bool ok = true;
    ok &= shapeCheck("75% of requests are < 512B (paper)",
                     sn.allRequestSizes().percentile(75) < 512);
    ok &= shapeCheck(">90% of responses are <= 64B (paper)",
                     sn.allResponseSizes().percentile(90) <= 64 + 6);
    const auto text_med = sn.requestSize(3).percentile(50);
    ok &= shapeCheck("Text's median RPC ~580B (paper)",
                     text_med > 400 && text_med < 800);
    ok &= shapeCheck("Media/User/UniqueID never exceed 64B (paper)",
                     sn.requestSize(0).max() <= 64 &&
                         sn.requestSize(1).max() <= 64 &&
                         sn.requestSize(2).max() <= 64);
    ok &= shapeCheck("size diversity across tiers (one-size-fits-all is "
                     "a poor fit, §3.2)",
                     sn.requestSize(3).percentile(50) >
                         8 * sn.requestSize(1).percentile(50));
    return ok ? 0 : 1;
}
