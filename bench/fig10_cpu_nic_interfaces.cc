/**
 * @file
 * Reproduces Fig. 10: single-core throughput, median and 99th-pct
 * latency of 64 B RPCs for each CPU-NIC interface (RX path):
 * MMIO, doorbell, batched doorbells (B = 3, 7, 11), and the memory
 * interconnect (UPI, B = 1 and 4).  Also reports the §5.3 best-effort
 * peak (16.5 Mrps with drops allowed).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct Config
{
    const char *label;
    ic::IfaceKind iface;
    unsigned batch;
    // Paper values (Fig. 10).
    double paper_mrps;
    double paper_p50;
    double paper_p99;
};

constexpr Config kConfigs[] = {
    {"MMIO", ic::IfaceKind::MmioWrite, 1, 4.2, 3.8, 5.2},
    {"Doorbell", ic::IfaceKind::Doorbell, 1, 4.3, 4.4, 5.1},
    {"Doorbell B=3", ic::IfaceKind::DoorbellBatch, 3, 7.9, 4.4, 5.8},
    {"Doorbell B=7", ic::IfaceKind::DoorbellBatch, 7, 9.9, 4.6, 7.0},
    {"Doorbell B=11", ic::IfaceKind::DoorbellBatch, 11, 10.8, 5.5, 9.1},
    {"UPI B=1", ic::IfaceKind::Upi, 1, 8.1, 1.8, 2.0},
    {"UPI B=4", ic::IfaceKind::Upi, 4, 12.4, 2.4, 3.1},
};
constexpr unsigned kNumConfigs = 7;

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("payload_bytes", 48.0);

    std::vector<std::function<Point()>> scenarios;
    for (const Config &cfg : kConfigs)
        scenarios.push_back([cfg] {
            EchoRig::Options opt;
            opt.iface = cfg.iface;
            opt.batch = cfg.batch;
            opt.threads = 1;
            // Saturation throughput: deep closed-loop pipeline.
            EchoRig rig(opt);
            Point sat = rig.saturate(/*window=*/96);
            // Latency: a fresh rig at a high-but-stable open-loop load
            // (75% of saturation), the paper's operating regime.
            EchoRig lat_rig(opt);
            Point p = lat_rig.offer(0.6 * sat.mrps);
            p.mrps = sat.mrps;
            return p;
        });
    // Best-effort peak (§5.3: 16.5 Mrps with arbitrary drops allowed).
    scenarios.push_back([] {
        EchoRig::Options opt;
        opt.iface = ic::IfaceKind::Upi;
        opt.batch = 4;
        opt.threads = 1;
        opt.serverCost = 0;
        opt.bestEffort = true;
        EchoRig rig(opt);
        return rig.floodPeak();
    });
    const std::vector<Point> results =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Fig. 10: single-core throughput & latency per CPU-NIC "
                "interface (64B RPCs)",
                "config            paper: Mrps  p50    p99   | measured: "
                "Mrps   p50    p99");

    std::vector<Point> points(results.begin(),
                              results.begin() + kNumConfigs);
    for (unsigned i = 0; i < kNumConfigs; ++i) {
        const Config &cfg = kConfigs[i];
        const Point &p = points[i];
        std::printf("%-17s %10.1f %5.1f %6.1f  | %13.1f %6.2f %6.2f\n",
                    cfg.label, cfg.paper_mrps, cfg.paper_p50,
                    cfg.paper_p99, p.mrps, p.p50_us, p.p99_us);
        ctx.point()
            .tag("config", cfg.label)
            .value("mrps", p.mrps)
            .value("p50_us", p.p50_us)
            .value("p99_us", p.p99_us)
            .value("paper_mrps", cfg.paper_mrps);
    }
    {
        const Point &p = results[kNumConfigs];
        std::printf("%-17s %10.1f %5s %6s  | %13.1f %6s %6s  "
                    "(drops %.0f%%)\n",
                    "best-effort peak", 16.5, "-", "-", p.mrps, "-", "-",
                    100.0 * p.drops);
        ctx.point()
            .tag("config", "best-effort peak")
            .value("mrps", p.mrps)
            .value("drops", p.drops)
            .value("paper_mrps", 16.5);
    }

    // The paper's qualitative claims.
    ctx.check("UPI B=4 is the fastest interface",
              points[6].mrps > points[4].mrps &&
                  points[6].mrps > points[0].mrps);
    ctx.check("UPI beats doorbell batching in latency",
              points[5].p50_us < points[2].p50_us &&
                  points[6].p50_us < points[4].p50_us);
    ctx.check("MMIO is the lowest-latency PCIe scheme",
              points[0].p50_us < points[1].p50_us);
    ctx.check("MMIO fails to deliver throughput",
              points[0].mrps < 0.6 * points[6].mrps);
    ctx.check("doorbell batching trades latency for throughput",
              points[4].mrps > points[1].mrps &&
                  points[4].p99_us > points[1].p99_us);
    ctx.check("UPI B=1 ~8 Mrps per core (paper 8.1)",
              points[5].mrps > 6.5 && points[5].mrps < 9.7);
    ctx.check("UPI B=4 ~12.4 Mrps per core (paper 12.4)",
              points[6].mrps > 10.5 && points[6].mrps < 14.3);
    ctx.check("UPI B=1 median RTT ~1.8us",
              points[5].p50_us > 1.2 && points[5].p50_us < 2.8);

    ctx.anchor("upi_b1_mrps", 8.1, points[5].mrps, 0.25);
    ctx.anchor("upi_b4_mrps", 12.4, points[6].mrps, 0.20);
    ctx.anchor("upi_b1_p50_us", 1.8, points[5].p50_us, 0.45);
    ctx.anchor("best_effort_peak_mrps", 16.5, results[kNumConfigs].mrps,
               0.30);
}

} // namespace

DAGGER_BENCH_MAIN("fig10_cpu_nic_interfaces", run)
