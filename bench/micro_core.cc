/**
 * @file
 * Wall-clock micro-benchmarks (google-benchmark) of the simulator's
 * hot primitives: event queue, wire codec, histogram, Zipf generator,
 * MICA partition, and a full simulated-RPC step.  These guard the
 * *simulator's* performance — a slow DES makes the figure harnesses
 * above impractical — and double as regression anchors.
 *
 * This binary wraps google-benchmark in the shared bench harness for
 * flag parsing and --json export, but deliberately does NOT run the
 * timed loops through SweepRunner: concurrent wall-clock timing on a
 * shared machine would distort the numbers the binary exists to guard.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "app/mica.hh"
#include "bench/harness.hh"
#include "proto/wire.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace {

using namespace dagger;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.schedule(1, [&] { ++sink; });
        eq.runOne();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_WireCodecRoundTrip(benchmark::State &state)
{
    const std::size_t payload = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> data(payload, 0x5a);
    for (auto _ : state) {
        proto::RpcMessage msg(1, 2, 3, proto::MsgType::Request,
                              data.data(), data.size());
        auto frames = msg.toFrames();
        proto::RpcMessage out;
        bool ok = proto::RpcMessage::fromFrames(frames, out);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(payload));
}
BENCHMARK(BM_WireCodecRoundTrip)->Arg(48)->Arg(512)->Arg(1500);

void
BM_HistogramRecord(benchmark::State &state)
{
    sim::Histogram h;
    sim::Rng rng(1);
    for (auto _ : state)
        h.record(rng.range(1'000'000));
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void
BM_ZipfNext(benchmark::State &state)
{
    sim::ZipfianGenerator z(1'000'000, 0.99);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += z.next();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfNext);

void
BM_MicaPartitionSetGet(benchmark::State &state)
{
    app::MicaPartition part(16u << 20, 1u << 14);
    sim::Rng rng(3);
    char key[9] = {};
    for (auto _ : state) {
        std::snprintf(key, sizeof(key), "k%07u",
                      static_cast<unsigned>(rng.range(100000)));
        part.set(std::string_view(key, 8), "valueval");
        auto got = part.get(std::string_view(key, 8));
        benchmark::DoNotOptimize(got);
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_MicaPartitionSetGet);

void
BM_SimulatedRpcEndToEnd(benchmark::State &state)
{
    // Wall-time cost of simulating one complete RPC through the full
    // stack (client -> NIC -> switch -> NIC -> server and back).
    bench::EchoRig::Options opt;
    opt.batch = 1;
    bench::EchoRig rig(opt);
    auto &client = rig.client(0);
    std::uint64_t done = 0;
    std::uint64_t v = 1;
    for (auto _ : state) {
        client.callPod(1, v, [&](const proto::RpcMessage &) { ++done; });
        rig.system().eq().runFor(sim::usToTicks(10));
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedRpcEndToEnd);

/** Console output as usual, plus every run recorded as a JSON point. */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CapturingReporter(bench::BenchContext &ctx) : _ctx(ctx) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            auto &p = _ctx.point();
            p.tag("name", run.benchmark_name())
                .value("real_time", run.GetAdjustedRealTime())
                .value("cpu_time", run.GetAdjustedCPUTime())
                .tag("time_unit",
                     benchmark::GetTimeUnitString(run.time_unit))
                .value("iterations",
                       static_cast<double>(run.iterations));
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                p.value("items_per_second", it->second);
            it = run.counters.find("bytes_per_second");
            if (it != run.counters.end())
                p.value("bytes_per_second", it->second);
        }
    }

  private:
    bench::BenchContext &_ctx;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchContext ctx("micro_core", argc, argv);

    // Strip the harness's flags so google-benchmark only sees its own.
    std::vector<char *> bm_argv;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--strict")
            continue;
        if (a == "--jobs" || a == "--json") {
            if (i + 1 < argc && argv[i + 1][0] != '-')
                ++i; // consume the value
            continue;
        }
        if (a.rfind("--jobs=", 0) == 0 || a.rfind("--json=", 0) == 0)
            continue;
        bm_argv.push_back(argv[i]);
    }
    int bm_argc = static_cast<int>(bm_argv.size());
    benchmark::Initialize(&bm_argc, bm_argv.data());

    CapturingReporter reporter(ctx);
    const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
    ctx.check("all micro-benchmark families ran", ran >= 6);
    return ctx.finish();
}
