/**
 * @file
 * Wall-clock micro-benchmarks (google-benchmark) of the simulator's
 * hot primitives: event queue, wire codec, histogram, Zipf generator,
 * MICA partition, and a full simulated-RPC step.  These guard the
 * *simulator's* performance — a slow DES makes the figure harnesses
 * above impractical — and double as regression anchors.
 */

#include <benchmark/benchmark.h>

#include "app/mica.hh"
#include "bench/harness.hh"
#include "proto/wire.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace {

using namespace dagger;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.schedule(1, [&] { ++sink; });
        eq.runOne();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_WireCodecRoundTrip(benchmark::State &state)
{
    const std::size_t payload = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> data(payload, 0x5a);
    for (auto _ : state) {
        proto::RpcMessage msg(1, 2, 3, proto::MsgType::Request,
                              data.data(), data.size());
        auto frames = msg.toFrames();
        proto::RpcMessage out;
        bool ok = proto::RpcMessage::fromFrames(frames, out);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(payload));
}
BENCHMARK(BM_WireCodecRoundTrip)->Arg(48)->Arg(512)->Arg(1500);

void
BM_HistogramRecord(benchmark::State &state)
{
    sim::Histogram h;
    sim::Rng rng(1);
    for (auto _ : state)
        h.record(rng.range(1'000'000));
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void
BM_ZipfNext(benchmark::State &state)
{
    sim::ZipfianGenerator z(1'000'000, 0.99);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += z.next();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfNext);

void
BM_MicaPartitionSetGet(benchmark::State &state)
{
    app::MicaPartition part(16u << 20, 1u << 14);
    sim::Rng rng(3);
    char key[9] = {};
    for (auto _ : state) {
        std::snprintf(key, sizeof(key), "k%07u",
                      static_cast<unsigned>(rng.range(100000)));
        part.set(std::string_view(key, 8), "valueval");
        auto got = part.get(std::string_view(key, 8));
        benchmark::DoNotOptimize(got);
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_MicaPartitionSetGet);

void
BM_SimulatedRpcEndToEnd(benchmark::State &state)
{
    // Wall-time cost of simulating one complete RPC through the full
    // stack (client -> NIC -> switch -> NIC -> server and back).
    bench::EchoRig::Options opt;
    opt.batch = 1;
    bench::EchoRig rig(opt);
    auto &client = rig.client(0);
    std::uint64_t done = 0;
    std::uint64_t v = 1;
    for (auto _ : state) {
        client.callPod(1, v, [&](const proto::RpcMessage &) { ++done; });
        rig.system().eq().runFor(sim::usToTicks(10));
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedRpcEndToEnd);

} // namespace

BENCHMARK_MAIN();
