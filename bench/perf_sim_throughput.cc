/**
 * @file
 * Simulator self-benchmark: raw event-engine throughput.
 *
 * Unlike every other bench in this directory, the quantity under test
 * here is the *host* cost of the DES engine itself (docs/PERF.md), not
 * a simulated latency or rate.  Two workload families:
 *
 *  - storm: a synthetic schedule/dispatch storm — a fixed population
 *    of self-rescheduling events drawing (delay, priority) from a
 *    seeded Rng, 3:1 near-future (current frame) vs far-future (later
 *    frames) — that isolates the scheduler + event-pool hot path from
 *    any model code.
 *    This is the scenario whose seed-engine baseline is recorded in
 *    docs/PERF.md; the acceptance bar is >= 2x events/sec over it.
 *
 *  - echo fleets: the micro RPC echo rig at several fleet sizes, so
 *    the reported events/sec includes real model callbacks (NIC
 *    pipeline, CCI-P channels, rings) rather than empty closures.
 *
 * Simulated results stay deterministic at any --jobs count; only the
 * wall_ms / events_per_sec fields vary with the host.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/sharded_engine.hh"
#include "sim/time.hh"

namespace {

using dagger::bench::BenchContext;
using dagger::bench::EchoRig;
using dagger::bench::WallTimer;
using dagger::sim::EventQueue;
using dagger::sim::Tick;

constexpr std::uint64_t kStormSeed = 0x570a11;
constexpr unsigned kStormPopulation = 32768;
constexpr std::uint64_t kStormTarget = 3'000'000;

/** Payload-sweep sizes: one frame up to a 342-frame (16 KB) message. */
constexpr std::size_t kPayloadSweep[] = {64, 256, 1024, 4096, 16384};

/** One scenario's measurement. */
struct PerfResult
{
    std::string scenario;
    unsigned threads = 0;
    std::uint64_t events = 0;
    std::uint64_t finalTick = 0;
    double wallSec = 0;
    double mrps = 0;
    std::size_t payloadBytes = 0; ///< payload-sweep rows only
    EventQueue::EngineStats stats;
    // Sharded-storm extras (zero elsewhere).
    unsigned shards = 0;
    unsigned workers = 0;
    std::vector<double> busyMs;     ///< per shard
    double parallelMs = 0;
    double serialMs = 0;
    double stallFrac = 0;
    // Round-protocol counters (deterministic; see ShardedEngine docs).
    std::uint64_t rounds = 0;
    std::uint64_t soloRuns = 0;
    std::uint64_t soloChunks = 0;
    std::uint64_t windowsExtended = 0;
    std::uint64_t serialElided = 0;
    std::uint64_t batchFlushes = 0;
};

/**
 * The schedule/dispatch storm.  Keep the arming pattern and the
 * (delay, priority) draw formulas in sync with the seed-engine
 * baseline recorded in docs/PERF.md, or the 2x comparison is
 * meaningless.
 */
struct Storm
{
    EventQueue eq;
    dagger::sim::Rng rng{kStormSeed};
    std::uint64_t target = kStormTarget;

    void
    arm(unsigned population)
    {
        for (unsigned c = 0; c < population; ++c)
            eq.schedule(c % 1024, [this] { step(); });
    }

    void
    step()
    {
        if (eq.executed() >= target)
            return;
        const std::uint64_t r = rng.next64();
        dagger::sim::TickDelta d;
        if ((r & 3) != 0) // 3:1 near-future vs far-future delays
            d = 1 + (r >> 2) % dagger::sim::usToTicks(8);
        else
            d = dagger::sim::usToTicks(16) +
                (r >> 2) % dagger::sim::usToTicks(184);
        const auto prio =
            static_cast<dagger::sim::Priority>(((r >> 32) % 3) * 100);
        auto next = [this] { step(); };
        static_assert(
            dagger::sim::EventClosure::fitsInline<decltype(next)>());
        eq.schedule(d, std::move(next), prio);
    }
};

/**
 * The storm under the sharded engine: the population is split over the
 * parallel shards (shard 0, the serial domain, stays empty), each
 * shard draws from its own seeded Rng, and 1/16 of the steps hop to
 * the next parallel shard through the engine's cross-domain mailboxes
 * with a delay >= the lookahead.  Every actor only ever touches its
 * own shard's state from that shard's execution context, and stop
 * conditions are per-actor step budgets — no cross-thread reads — so
 * the simulated schedule is identical at any worker count.
 */
struct ShardedStorm
{
    struct Actor
    {
        ShardedStorm *storm = nullptr;
        unsigned shard = 0;
        dagger::sim::Rng rng{0};
        std::uint64_t steps = 0;
        std::uint64_t budget = 0;

        void
        step()
        {
            if (steps >= budget)
                return;
            ++steps;
            const std::uint64_t r = rng.next64();
            dagger::sim::TickDelta d;
            if ((r & 3) != 0) // 3:1 near-future vs far-future delays
                d = 1 + (r >> 2) % dagger::sim::usToTicks(8);
            else
                d = dagger::sim::usToTicks(16) +
                    (r >> 2) % dagger::sim::usToTicks(184);
            const auto prio = static_cast<dagger::sim::Priority>(
                ((r >> 32) % 3) * 100);
            dagger::sim::ShardedEngine &eng = *storm->eng;
            const unsigned nshards = eng.shards();
            if (nshards > 2 && (r >> 34) % 16 == 0) {
                // Hop to the next parallel shard; the extra delay keeps
                // the hand-off at or beyond the conservative window.
                const unsigned to = shard + 1 == nshards ? 1 : shard + 1;
                eng.postCross(shard, to, eng.lookahead() + d,
                              [a = &storm->actors[to]] { a->step(); },
                              prio);
            } else {
                eng.queue(shard).schedule(d, [this] { step(); }, prio);
            }
        }
    };

    EventQueue q0;
    std::unique_ptr<dagger::sim::ShardedEngine> eng;
    std::vector<Actor> actors; ///< index == shard; [0] unused

    explicit ShardedStorm(unsigned shards)
    {
        eng = std::make_unique<dagger::sim::ShardedEngine>(
            q0, shards, dagger::sim::usToTicks(4));
        const unsigned parallel = shards - 1;
        actors.resize(shards);
        // Distribute the division remainders over the low shards so the
        // step budget and seed population sum to exactly kStormTarget
        // and kStormPopulation at every shard count — `events` rows are
        // directly comparable across --shards values.
        for (unsigned s = 1; s < shards; ++s) {
            actors[s].storm = this;
            actors[s].shard = s;
            actors[s].rng =
                dagger::sim::Rng(kStormSeed ^ (0x9e3779b97f4a7c15ull * s));
            actors[s].budget = kStormTarget / parallel +
                               (s <= kStormTarget % parallel ? 1 : 0);
        }
        for (unsigned s = 1; s < shards; ++s) {
            const unsigned per = kStormPopulation / parallel +
                                 (s <= kStormPopulation % parallel ? 1 : 0);
            for (unsigned c = 0; c < per; ++c)
                eng->queue(s).schedule(c % 1024,
                                       [a = &actors[s]] { a->step(); });
        }
    }
};

PerfResult runStorm();

PerfResult
runShardedStorm(unsigned shards)
{
    if (shards <= 1) {
        // The --shards 1 row is the classic single-queue engine on the
        // same workload family: the PR4-comparable baseline.
        PerfResult res = runStorm();
        res.scenario = "storm-sharded";
        res.shards = 1;
        return res;
    }
    PerfResult res;
    res.scenario = "storm-sharded";
    ShardedStorm s(shards);
    s.eng->setClock(&dagger::bench::engineClockNs);
    res.shards = shards;
    res.workers = s.eng->workers();
    WallTimer timer;
    // Each step schedules at most one successor, so once every actor
    // exhausts its budget the queues drain and executed() goes flat.
    std::uint64_t prev = ~std::uint64_t{0};
    while (s.eng->executed() != prev) {
        prev = s.eng->executed();
        s.eng->runFor(dagger::sim::msToTicks(1));
    }
    res.wallSec = timer.seconds();
    res.events = s.eng->executed();
    res.finalTick = s.eng->now();
    res.stats = s.eng->aggregateStats();
    res.rounds = s.eng->rounds();
    res.soloRuns = s.eng->soloRuns();
    res.soloChunks = s.eng->soloChunks();
    res.windowsExtended = s.eng->windowsExtended();
    res.serialElided = s.eng->serialElided();
    res.batchFlushes = s.eng->batchFlushes();
    std::uint64_t busy_sum = 0;
    for (unsigned sh = 0; sh < shards; ++sh) {
        res.busyMs.push_back(
            static_cast<double>(s.eng->busyNs(sh)) / 1e6);
        if (sh >= 1)
            busy_sum += s.eng->busyNs(sh);
    }
    res.parallelMs = static_cast<double>(s.eng->parallelNs()) / 1e6;
    res.serialMs = static_cast<double>(s.eng->serialNs()) / 1e6;
    const double lanes = static_cast<double>(
        std::max(1u, s.eng->workers()));
    const double offered =
        lanes * static_cast<double>(s.eng->parallelNs());
    res.stallFrac = offered <= 0.0
        ? 0.0
        : std::max(0.0,
                   1.0 - static_cast<double>(busy_sum) / offered);
    return res;
}

PerfResult
runStorm()
{
    PerfResult res;
    res.scenario = "storm";
    Storm s;
    s.arm(kStormPopulation);
    WallTimer timer;
    s.eq.runAll();
    res.wallSec = timer.seconds();
    res.events = s.eq.executed();
    res.finalTick = s.eq.now();
    res.stats = s.eq.stats();
    return res;
}

PerfResult
runEcho(unsigned threads)
{
    PerfResult res;
    res.scenario = "echo";
    res.threads = threads;
    EchoRig::Options opt;
    opt.threads = threads;
    EchoRig rig(opt);
    WallTimer timer;
    const dagger::bench::Point p = rig.saturate();
    res.wallSec = timer.seconds();
    res.events = rig.system().eq().executed();
    res.finalTick = rig.system().eq().now();
    res.stats = rig.system().eq().stats();
    res.mrps = p.mrps;
    return res;
}

/**
 * Payload-size sweep: the echo rig at one payload size, measuring the
 * host cost of moving RPC bytes through rings, NIC, and switch.  Large
 * payloads span many 64 B frames (16 KB = 342), so this is the row
 * family that exposes per-frame byte copies on the data path; rings
 * are widened so a 342-frame message never outsizes its TX ring.
 */
PerfResult
runPayloadEcho(std::size_t payload, unsigned shards)
{
    PerfResult res;
    res.scenario = "payload";
    res.threads = 2;
    res.payloadBytes = payload;
    res.shards = shards;
    EchoRig::Options opt;
    opt.threads = 2;
    opt.payload = payload;
    opt.shards = shards;
    opt.txRingEntries = 2048;
    opt.rxRingEntries = 2048;
    EchoRig rig(opt);
    dagger::bench::attachEngineClock(rig.system());
    WallTimer timer;
    const dagger::bench::Point p = rig.saturate(
        8, dagger::sim::msToTicks(1), dagger::sim::msToTicks(5));
    res.wallSec = timer.seconds();
    res.events = rig.system().eventsExecuted();
    res.finalTick = rig.system().now();
    res.stats = rig.system().engine()
        ? rig.system().engine()->aggregateStats()
        : rig.system().eq().stats();
    res.mrps = p.mrps;
    return res;
}

double
eventsPerSec(const PerfResult &r)
{
    return r.wallSec <= 0 ? 0.0
                          : static_cast<double>(r.events) / r.wallSec;
}

double
poolHitRate(const EventQueue::EngineStats &s)
{
    const double total =
        static_cast<double>(s.poolHits + s.poolMisses);
    return total == 0 ? 0.0 : static_cast<double>(s.poolHits) / total;
}

void
run(BenchContext &ctx)
{
    ctx.seed(kStormSeed);
    ctx.config("storm_population", static_cast<double>(kStormPopulation));
    ctx.config("storm_target_events", static_cast<double>(kStormTarget));
    ctx.config("echo_fleets", "1,2,4");
    ctx.config("payload_sweep", "64,256,1024,4096,16384");
    ctx.config("closure_inline_bytes",
               static_cast<double>(dagger::sim::EventClosure::kInlineBytes));
    ctx.config("wheel_buckets",
               static_cast<double>(EventQueue::kWheelBuckets));
    ctx.config("wheel_bucket_ticks",
               static_cast<double>(Tick{1} << EventQueue::kBucketBits));
    ctx.config("frames", static_cast<double>(EventQueue::kFrames));
    ctx.config("frame_ticks",
               static_cast<double>(Tick{1} << EventQueue::kFrameShift));

    const unsigned shards = ctx.shards();
    std::vector<std::function<PerfResult()>> scenarios;
    scenarios.emplace_back(runStorm);
    scenarios.emplace_back([shards] { return runShardedStorm(shards); });
    for (unsigned t : {1u, 2u, 4u})
        scenarios.emplace_back([t] { return runEcho(t); });
    // Payload rows ride at the end: the positional checks below index
    // into the fixed prefix of this list.
    for (std::size_t bytes : kPayloadSweep)
        scenarios.emplace_back(
            [bytes, shards] { return runPayloadEcho(bytes, shards); });
    const std::vector<PerfResult> results =
        ctx.runner().run(std::move(scenarios));

    dagger::bench::tableHeader(
        "Simulator event-engine throughput",
        "scenario       threads shards  events       events/sec    wall-ms");
    for (const PerfResult &r : results)
        std::printf("%-13s  %6u %6u   %9llu   %10.0f   %8.1f\n",
                    r.scenario.c_str(), r.threads, r.shards,
                    static_cast<unsigned long long>(r.events),
                    eventsPerSec(r), r.wallSec * 1e3);

    for (const PerfResult &r : results) {
        auto &pt = ctx.point()
                       .tag("scenario", r.scenario)
                       .value("threads", r.threads)
                       .value("events", static_cast<double>(r.events))
                       .value("final_tick", static_cast<double>(r.finalTick))
                       .value("events_per_sec", eventsPerSec(r))
                       .value("wall_ms", r.wallSec * 1e3)
                       .value("pool_hit_rate", poolHitRate(r.stats))
                       .value("wheel_admits",
                              static_cast<double>(r.stats.wheelAdmits))
                       .value("frame_admits",
                              static_cast<double>(r.stats.frameAdmits))
                       .value("heap_admits",
                              static_cast<double>(r.stats.heapAdmits))
                       .value("max_pending",
                              static_cast<double>(r.stats.maxPending));
        if (r.scenario == "echo")
            pt.value("mrps", r.mrps);
        if (r.scenario == "payload") {
            pt.value("payload_bytes",
                     static_cast<double>(r.payloadBytes));
            pt.value("shards", r.shards);
            pt.value("mrps", r.mrps);
        }
        if (r.scenario == "storm-sharded") {
            pt.value("shards", r.shards);
            pt.value("engine_workers", r.workers);
            for (std::size_t s = 0; s < r.busyMs.size(); ++s)
                pt.value("busy_ms_shard" + std::to_string(s),
                         r.busyMs[s]);
            pt.value("parallel_ms", r.parallelMs);
            pt.value("serial_ms", r.serialMs);
            pt.value("barrier_stall_frac", r.stallFrac);
            pt.value("rounds", static_cast<double>(r.rounds));
            pt.value("solo_runs", static_cast<double>(r.soloRuns));
            pt.value("solo_chunks", static_cast<double>(r.soloChunks));
            pt.value("windows_extended",
                     static_cast<double>(r.windowsExtended));
            pt.value("serial_elided",
                     static_cast<double>(r.serialElided));
            pt.value("batch_flushes",
                     static_cast<double>(r.batchFlushes));
        }
    }

    const PerfResult &storm = results.front();
    ctx.check("storm executes the full event target",
              storm.events >= kStormTarget);
    ctx.check("storm steady state runs off the event pool (hit rate >= 0.98)",
              poolHitRate(storm.stats) >= 0.98);
    ctx.check("storm near-future admits dominate (wheel > frames + far heap)",
              storm.stats.wheelAdmits >
                  storm.stats.frameAdmits + storm.stats.heapAdmits);
    bool positive = true;
    for (const PerfResult &r : results)
        positive = positive && eventsPerSec(r) > 0;
    ctx.check("every scenario reports a positive event rate", positive);
    // More fleet => more simulated work in the same measured window;
    // the event count is a simulated quantity, so this is deterministic.
    const PerfResult &echo1 = results[2];
    const PerfResult &echo4 = results[4];
    ctx.check("echo fleet event count scales with threads",
              echo4.events > echo1.events);
    const PerfResult &shst = results[1];
    // The remainder-distributed budget sums to exactly kStormTarget at
    // every shard count, so the check is exact and S-independent.
    ctx.check("sharded storm executes its full step budget",
              shst.events >= kStormTarget);
    if (shards > 1)
        ctx.check("sharded storm runs off the per-shard event pools",
                  poolHitRate(shst.stats) >= 0.98);
    bool sweepDelivers = true;
    for (const PerfResult &r : results)
        if (r.scenario == "payload")
            sweepDelivers = sweepDelivers && r.mrps > 0;
    ctx.check("every payload-sweep point sustains a positive RPC rate",
              sweepDelivers);
}

} // namespace

DAGGER_BENCH_MAIN("perf_sim_throughput", run)
