/**
 * @file
 * Simulator self-benchmark: raw event-engine throughput.
 *
 * Unlike every other bench in this directory, the quantity under test
 * here is the *host* cost of the DES engine itself (docs/PERF.md), not
 * a simulated latency or rate.  Two workload families:
 *
 *  - storm: a synthetic schedule/dispatch storm — a fixed population
 *    of self-rescheduling events drawing (delay, priority) from a
 *    seeded Rng, 3:1 near-future (current frame) vs far-future (later
 *    frames) — that isolates the scheduler + event-pool hot path from
 *    any model code.
 *    This is the scenario whose seed-engine baseline is recorded in
 *    docs/PERF.md; the acceptance bar is >= 2x events/sec over it.
 *
 *  - echo fleets: the micro RPC echo rig at several fleet sizes, so
 *    the reported events/sec includes real model callbacks (NIC
 *    pipeline, CCI-P channels, rings) rather than empty closures.
 *
 * Simulated results stay deterministic at any --jobs count; only the
 * wall_ms / events_per_sec fields vary with the host.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "harness.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace {

using dagger::bench::BenchContext;
using dagger::bench::EchoRig;
using dagger::bench::WallTimer;
using dagger::sim::EventQueue;
using dagger::sim::Tick;

constexpr std::uint64_t kStormSeed = 0x570a11;
constexpr unsigned kStormPopulation = 32768;
constexpr std::uint64_t kStormTarget = 3'000'000;

/** One scenario's measurement. */
struct PerfResult
{
    std::string scenario;
    unsigned threads = 0;
    std::uint64_t events = 0;
    std::uint64_t finalTick = 0;
    double wallSec = 0;
    double mrps = 0;
    EventQueue::EngineStats stats;
};

/**
 * The schedule/dispatch storm.  Keep the arming pattern and the
 * (delay, priority) draw formulas in sync with the seed-engine
 * baseline recorded in docs/PERF.md, or the 2x comparison is
 * meaningless.
 */
struct Storm
{
    EventQueue eq;
    dagger::sim::Rng rng{kStormSeed};
    std::uint64_t target = kStormTarget;

    void
    arm(unsigned population)
    {
        for (unsigned c = 0; c < population; ++c)
            eq.schedule(c % 1024, [this] { step(); });
    }

    void
    step()
    {
        if (eq.executed() >= target)
            return;
        const std::uint64_t r = rng.next64();
        dagger::sim::TickDelta d;
        if ((r & 3) != 0) // 3:1 near-future vs far-future delays
            d = 1 + (r >> 2) % dagger::sim::usToTicks(8);
        else
            d = dagger::sim::usToTicks(16) +
                (r >> 2) % dagger::sim::usToTicks(184);
        const auto prio =
            static_cast<dagger::sim::Priority>(((r >> 32) % 3) * 100);
        auto next = [this] { step(); };
        static_assert(
            dagger::sim::EventClosure::fitsInline<decltype(next)>());
        eq.schedule(d, std::move(next), prio);
    }
};

PerfResult
runStorm()
{
    PerfResult res;
    res.scenario = "storm";
    Storm s;
    s.arm(kStormPopulation);
    WallTimer timer;
    s.eq.runAll();
    res.wallSec = timer.seconds();
    res.events = s.eq.executed();
    res.finalTick = s.eq.now();
    res.stats = s.eq.stats();
    return res;
}

PerfResult
runEcho(unsigned threads)
{
    PerfResult res;
    res.scenario = "echo";
    res.threads = threads;
    EchoRig::Options opt;
    opt.threads = threads;
    EchoRig rig(opt);
    WallTimer timer;
    const dagger::bench::Point p = rig.saturate();
    res.wallSec = timer.seconds();
    res.events = rig.system().eq().executed();
    res.finalTick = rig.system().eq().now();
    res.stats = rig.system().eq().stats();
    res.mrps = p.mrps;
    return res;
}

double
eventsPerSec(const PerfResult &r)
{
    return r.wallSec <= 0 ? 0.0
                          : static_cast<double>(r.events) / r.wallSec;
}

double
poolHitRate(const EventQueue::EngineStats &s)
{
    const double total =
        static_cast<double>(s.poolHits + s.poolMisses);
    return total == 0 ? 0.0 : static_cast<double>(s.poolHits) / total;
}

void
run(BenchContext &ctx)
{
    ctx.seed(kStormSeed);
    ctx.config("storm_population", static_cast<double>(kStormPopulation));
    ctx.config("storm_target_events", static_cast<double>(kStormTarget));
    ctx.config("echo_fleets", "1,2,4");
    ctx.config("closure_inline_bytes",
               static_cast<double>(dagger::sim::EventClosure::kInlineBytes));
    ctx.config("wheel_buckets",
               static_cast<double>(EventQueue::kWheelBuckets));
    ctx.config("wheel_bucket_ticks",
               static_cast<double>(Tick{1} << EventQueue::kBucketBits));
    ctx.config("frames", static_cast<double>(EventQueue::kFrames));
    ctx.config("frame_ticks",
               static_cast<double>(Tick{1} << EventQueue::kFrameShift));

    std::vector<std::function<PerfResult()>> scenarios;
    scenarios.emplace_back(runStorm);
    for (unsigned t : {1u, 2u, 4u})
        scenarios.emplace_back([t] { return runEcho(t); });
    const std::vector<PerfResult> results =
        ctx.runner().run(std::move(scenarios));

    dagger::bench::tableHeader(
        "Simulator event-engine throughput",
        "scenario      threads   events       events/sec    wall-ms");
    for (const PerfResult &r : results)
        std::printf("%-12s  %7u   %9llu   %10.0f   %8.1f\n",
                    r.scenario.c_str(), r.threads,
                    static_cast<unsigned long long>(r.events),
                    eventsPerSec(r), r.wallSec * 1e3);

    for (const PerfResult &r : results) {
        auto &pt = ctx.point()
                       .tag("scenario", r.scenario)
                       .value("threads", r.threads)
                       .value("events", static_cast<double>(r.events))
                       .value("final_tick", static_cast<double>(r.finalTick))
                       .value("events_per_sec", eventsPerSec(r))
                       .value("wall_ms", r.wallSec * 1e3)
                       .value("pool_hit_rate", poolHitRate(r.stats))
                       .value("wheel_admits",
                              static_cast<double>(r.stats.wheelAdmits))
                       .value("frame_admits",
                              static_cast<double>(r.stats.frameAdmits))
                       .value("heap_admits",
                              static_cast<double>(r.stats.heapAdmits))
                       .value("max_pending",
                              static_cast<double>(r.stats.maxPending));
        if (r.scenario == "echo")
            pt.value("mrps", r.mrps);
    }

    const PerfResult &storm = results.front();
    ctx.check("storm executes the full event target",
              storm.events >= kStormTarget);
    ctx.check("storm steady state runs off the event pool (hit rate >= 0.98)",
              poolHitRate(storm.stats) >= 0.98);
    ctx.check("storm near-future admits dominate (wheel > frames + far heap)",
              storm.stats.wheelAdmits >
                  storm.stats.frameAdmits + storm.stats.heapAdmits);
    bool positive = true;
    for (const PerfResult &r : results)
        positive = positive && eventsPerSec(r) > 0;
    ctx.check("every scenario reports a positive event rate", positive);
    // More fleet => more simulated work in the same measured window;
    // the event count is a simulated quantity, so this is deterministic.
    const PerfResult &echo1 = results[1];
    const PerfResult &echo4 = results[3];
    ctx.check("echo fleet event count scales with threads",
              echo4.events > echo1.events);
}

} // namespace

DAGGER_BENCH_MAIN("perf_sim_throughput", run)
