/**
 * @file
 * Reproduces Fig. 3: networking (RPC + TCP processing) as a fraction
 * of median and 99th-percentile latency for six Social Network tiers
 * (s1 Media .. s6 UrlShorten) and end-to-end, at increasing load.
 *
 * Paper claims: "Across all tiers, communication accounts for a
 * significant fraction of a microservice's latency, 40% on average,
 * and up to 80% for the light in terms of computation User and
 * UniqueID tiers"; the fraction grows with load through queueing, and
 * for some services the RPC layer exceeds the TCP/IP stack at the
 * tail.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/harness.hh"
#include "svc/socialnet.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;
using svc::SocialNet;
using svc::SocialNetConfig;

struct TierShare
{
    double tcp_pct;
    double rpc_pct;
    double app_pct;
};

TierShare
shareOf(const baseline::ServeBreakdown &b, double pct)
{
    const double tcp = static_cast<double>(b.transport.percentile(pct));
    const double rpc = static_cast<double>(b.rpc.percentile(pct));
    const double app = static_cast<double>(b.app.percentile(pct));
    const double total = tcp + rpc + app;
    if (total <= 0)
        return {0, 0, 0};
    return {100.0 * tcp / total, 100.0 * rpc / total, 100.0 * app / total};
}

constexpr double kQps[] = {200.0, 400.0, 600.0, 800.0};

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("measure_ms", 400.0);

    std::vector<std::function<std::shared_ptr<SocialNet>()>> scenarios;
    for (double qps : kQps)
        scenarios.push_back([qps] {
            auto sn = std::make_shared<SocialNet>();
            sn->run(qps, sim::msToTicks(400));
            return sn;
        });
    const auto runs = ctx.runner().run(std::move(scenarios));

    double user_net_low = 0, text_net_low = 0, sum_net_low = 0;
    double text_rpc99_low = 0, text_rpc99_high = 0;

    for (unsigned q = 0; q < 4; ++q) {
        const double qps = kQps[q];
        SocialNet &sn = *runs[q];

        std::printf("\n=== Fig. 3 @ QPS=%.0f: %% of latency in "
                    "TCP / RPC / app (median | p99) ===\n",
                    qps);
        double net_sum = 0;
        for (unsigned t = 0; t < svc::kSnTiers; ++t) {
            TierShare med = shareOf(sn.tierBreakdown(t), 50);
            TierShare tail = shareOf(sn.tierBreakdown(t), 99);
            std::printf("%-15s med: %4.0f/%4.0f/%4.0f   p99: "
                        "%4.0f/%4.0f/%4.0f\n",
                        svc::snTierName(t), med.tcp_pct, med.rpc_pct,
                        med.app_pct, tail.tcp_pct, tail.rpc_pct,
                        tail.app_pct);
            ctx.point()
                .value("qps", qps)
                .tag("tier", svc::snTierName(t))
                .value("med_tcp_pct", med.tcp_pct)
                .value("med_rpc_pct", med.rpc_pct)
                .value("med_app_pct", med.app_pct)
                .value("p99_tcp_pct", tail.tcp_pct)
                .value("p99_rpc_pct", tail.rpc_pct)
                .value("p99_app_pct", tail.app_pct);
            net_sum += med.tcp_pct + med.rpc_pct;
            if (qps == 200) {
                if (t == 1)
                    user_net_low = med.tcp_pct + med.rpc_pct;
                if (t == 3) {
                    text_net_low = med.tcp_pct + med.rpc_pct;
                    text_rpc99_low = tail.rpc_pct;
                }
            }
            if (qps == 800 && t == 3)
                text_rpc99_high = tail.rpc_pct;
        }
        if (qps == 200)
            sum_net_low = net_sum / svc::kSnTiers;
        std::printf("e2e p50 = %.0f us, p99 = %.0f us (%llu requests)\n",
                    sim::ticksToUs(sn.e2eLatency().percentile(50)),
                    sim::ticksToUs(sn.e2eLatency().percentile(99)),
                    static_cast<unsigned long long>(sn.completed()));
    }

    std::printf("\n");
    ctx.check("networking ~40% of tier latency on average (paper: 40%)",
              sum_net_low > 25.0 && sum_net_low < 65.0);
    ctx.check("light User tier is networking-dominated (paper: up to 80%)",
              user_net_low > 60.0);
    ctx.check("compute-heavy Text tier is app-dominated",
              text_net_low < 30.0);
    ctx.check("RPC-layer share grows with load (queueing, §3.1)",
              text_rpc99_high > text_rpc99_low);

    ctx.anchor("avg_net_fraction_pct", 40.0, sum_net_low, 0.50);
}

} // namespace

DAGGER_BENCH_MAIN("fig03_network_fraction", run)
