/**
 * @file
 * Reproduces Fig. 11 (left): latency-throughput curves for
 * single-core asynchronous round-trip 64 B RPCs with CCI-P batching
 * B in {1, 2, 4, auto}.
 *
 * Paper anchors: B=1 lowest median RTT 1.8 us, stable until its
 * saturation point ~7.2 Mrps; B=4 reaches 12.4 Mrps at 2.8 us; at low
 * load fixed B=4 pays a batch-fill wait; "auto" (soft-configured
 * dynamic batching) combines B=1's low-load latency with B=4's peak
 * throughput (the green dashed line).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct Curve
{
    const char *label;
    unsigned batch;
    bool autoBatch;
};

constexpr Curve kCurves[] = {
    {"B=1", 1, false},
    {"B=2", 2, false},
    {"B=4", 4, false},
    {"B=auto", 4, true},
};
constexpr double kLoads[] = {0.5, 1, 2, 3, 4, 5, 6,
                             7,   8, 9, 10, 11, 12};
constexpr unsigned kNumLoads = 13;

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("threads", 1.0);
    ctx.config("payload_bytes", 48.0);
    ctx.config("measure_ms", 8.0);

    // All (curve, load) grid points are independent simulations; the
    // serial sweep stopped a curve past saturation, so the same stop
    // rule is applied below at aggregation time to keep tables
    // identical at any --jobs count.
    const unsigned shards = ctx.shards();
    std::vector<std::function<Point()>> scenarios;
    for (const Curve &curve : kCurves)
        for (double load : kLoads)
            scenarios.push_back([curve, load, shards] {
                EchoRig::Options opt;
                opt.batch = curve.batch;
                opt.autoBatch = curve.autoBatch;
                opt.threads = 1;
                opt.shards = shards;
                EchoRig rig(opt);
                return rig.offer(load, sim::msToTicks(2),
                                 sim::msToTicks(8));
            });
    const std::vector<Point> results =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Fig. 11 (left): latency vs throughput, single core, "
                "64B async RPCs",
                "curve    offered(Mrps) achieved(Mrps)  p50(us)  p99(us)");

    // Record (per curve): low-load median, peak achieved throughput.
    double lowload_p50[4] = {0};
    double peak_mrps[4] = {0};

    for (unsigned c = 0; c < 4; ++c) {
        for (unsigned l = 0; l < kNumLoads; ++l) {
            const double load = kLoads[l];
            const Point &p = results[c * kNumLoads + l];
            std::printf("%-8s %13.1f %14.2f %8.2f %8.2f\n",
                        kCurves[c].label, load, p.mrps, p.p50_us,
                        p.p99_us);
            ctx.point()
                .tag("curve", kCurves[c].label)
                .value("offered_mrps", load)
                .value("mrps", p.mrps)
                .value("p50_us", p.p50_us)
                .value("p99_us", p.p99_us);
            if (load == 0.5)
                lowload_p50[c] = p.p50_us;
            peak_mrps[c] = std::max(peak_mrps[c], p.mrps);
            // Stop reporting a curve well past its saturation point.
            if (p.mrps < load * 0.8)
                break;
        }
        std::printf("\n");
    }

    ctx.check("B=1 has the lowest low-load latency (paper 1.8us)",
              lowload_p50[0] < lowload_p50[2]);
    ctx.check("fixed B=4 pays a batch-fill wait at low load",
              lowload_p50[2] > lowload_p50[0] + 0.3);
    ctx.check("B=4 peak ~12.4 Mrps vs B=1 ~7.2 Mrps",
              peak_mrps[2] > 1.4 * peak_mrps[0]);
    ctx.check("B=2 lands between B=1 and B=4",
              peak_mrps[1] > peak_mrps[0] && peak_mrps[1] < peak_mrps[2]);
    ctx.check("auto keeps B=1's low-load latency",
              lowload_p50[3] < lowload_p50[0] + 0.4);
    ctx.check("auto reaches (near) B=4's peak throughput",
              peak_mrps[3] > 0.85 * peak_mrps[2]);

    ctx.anchor("b1_lowload_p50_us", 1.8, lowload_p50[0], 0.35);
    ctx.anchor("b1_peak_mrps", 7.2, peak_mrps[0], 0.35);
    ctx.anchor("b4_peak_mrps", 12.4, peak_mrps[2], 0.35);
}

} // namespace

DAGGER_BENCH_MAIN("fig11_latency_throughput", run)
