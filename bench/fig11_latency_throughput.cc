/**
 * @file
 * Reproduces Fig. 11 (left): latency-throughput curves for
 * single-core asynchronous round-trip 64 B RPCs with CCI-P batching
 * B in {1, 2, 4, auto}.
 *
 * Paper anchors: B=1 lowest median RTT 1.8 us, stable until its
 * saturation point ~7.2 Mrps; B=4 reaches 12.4 Mrps at 2.8 us; at low
 * load fixed B=4 pays a batch-fill wait; "auto" (soft-configured
 * dynamic batching) combines B=1's low-load latency with B=4's peak
 * throughput (the green dashed line).
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

struct Curve
{
    const char *label;
    unsigned batch;
    bool autoBatch;
};

} // namespace

int
main()
{
    const Curve curves[] = {
        {"B=1", 1, false},
        {"B=2", 2, false},
        {"B=4", 4, false},
        {"B=auto", 4, true},
    };
    const double loads[] = {0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};

    tableHeader("Fig. 11 (left): latency vs throughput, single core, "
                "64B async RPCs",
                "curve    offered(Mrps) achieved(Mrps)  p50(us)  p99(us)");

    // Record (per curve): low-load median, peak achieved throughput.
    double lowload_p50[4] = {0};
    double peak_mrps[4] = {0};

    for (unsigned c = 0; c < 4; ++c) {
        for (double load : loads) {
            EchoRig::Options opt;
            opt.batch = curves[c].batch;
            opt.autoBatch = curves[c].autoBatch;
            opt.threads = 1;
            EchoRig rig(opt);
            Point p = rig.offer(load, sim::msToTicks(2), sim::msToTicks(8));
            std::printf("%-8s %13.1f %14.2f %8.2f %8.2f\n", curves[c].label,
                        load, p.mrps, p.p50_us, p.p99_us);
            if (load == 0.5)
                lowload_p50[c] = p.p50_us;
            peak_mrps[c] = std::max(peak_mrps[c], p.mrps);
            // Stop sweeping a curve well past its saturation point.
            if (p.mrps < load * 0.8)
                break;
        }
        std::printf("\n");
    }

    bool ok = true;
    ok &= shapeCheck("B=1 has the lowest low-load latency (paper 1.8us)",
                     lowload_p50[0] < lowload_p50[2]);
    ok &= shapeCheck("fixed B=4 pays a batch-fill wait at low load",
                     lowload_p50[2] > lowload_p50[0] + 0.3);
    ok &= shapeCheck("B=4 peak ~12.4 Mrps vs B=1 ~7.2 Mrps",
                     peak_mrps[2] > 1.4 * peak_mrps[0]);
    ok &= shapeCheck("B=2 lands between B=1 and B=4",
                     peak_mrps[1] > peak_mrps[0] &&
                         peak_mrps[1] < peak_mrps[2]);
    ok &= shapeCheck("auto keeps B=1's low-load latency",
                     lowload_p50[3] < lowload_p50[0] + 0.4);
    ok &= shapeCheck("auto reaches (near) B=4's peak throughput",
                     peak_mrps[3] > 0.85 * peak_mrps[2]);
    return ok ? 0 : 1;
}
