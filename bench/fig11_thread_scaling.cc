/**
 * @file
 * Reproduces Fig. 11 (right): multi-thread scaling of 64 B requests.
 *
 * Paper anchors: end-to-end RPC throughput scales linearly up to 4
 * threads (2 physical cores) and flattens at ~42 Mrps — "the current
 * bottleneck is the implementation of the UPI end-point on the FPGA
 * in the blue region", i.e., 84 Mrps of messages as seen by the
 * processor.  Raw idle UPI reads scale to ~80 Mrps with 7 threads and
 * go flat when the 8th is added.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/harness.hh"
#include "ic/cci_fabric.hh"
#include "rpc/cpu.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

/** Raw idle UPI reads: each thread issues reads in a closed loop. */
double
rawUpiMrps(unsigned threads)
{
    sim::EventQueue eq;
    ic::CciFabric fabric(eq, ic::IfaceKind::Upi, 1);
    ic::CciPort &port = fabric.port(0);
    // Raw-read threads get their own physical cores (the 12-core
    // Xeon has room; the paper scales linearly to 7 threads).
    rpc::CpuSet cpus(eq, threads);
    std::uint64_t completed = 0;

    // Per-read CPU cost of issuing an idle read (load + check).
    const sim::Tick issue_cost = sim::nsToTicks(87);

    struct Driver
    {
        ic::CciPort *port;
        rpc::HwThread *thread;
        std::uint64_t *completed;
        sim::Tick issue_cost;

        void
        fire()
        {
            thread->execute(issue_cost, [this] {
                port->rawRead([this] {
                    ++*completed;
                });
                fire();
            });
        }
    };

    std::vector<std::unique_ptr<Driver>> drivers;
    for (unsigned t = 0; t < threads; ++t) {
        auto d = std::make_unique<Driver>();
        d->port = &port;
        d->thread = &cpus.core(t).thread(0);
        d->completed = &completed;
        d->issue_cost = issue_cost;
        d->fire();
        drivers.push_back(std::move(d));
    }
    eq.runFor(sim::msToTicks(2));
    const std::uint64_t c0 = completed;
    eq.runFor(sim::msToTicks(5));
    return sim::ratePerSec(completed - c0, sim::msToTicks(5)) / 1e6;
}

struct Row
{
    double e2e = 0;
    double raw = 0;
};

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("batch", 4.0);
    ctx.config("payload_bytes", 48.0);

    std::vector<std::function<Row()>> scenarios;
    for (unsigned t = 1; t <= 8; ++t)
        scenarios.push_back([t] {
            EchoRig::Options opt;
            opt.batch = 4;
            opt.threads = t;
            EchoRig rig(opt);
            const Point p = rig.saturate(/*window=*/96,
                                         sim::msToTicks(2),
                                         sim::msToTicks(6));
            Row r;
            r.e2e = p.mrps;
            r.raw = rawUpiMrps(t);
            return r;
        });
    const std::vector<Row> rows = ctx.runner().run(std::move(scenarios));

    tableHeader("Fig. 11 (right): thread scaling, 64B requests",
                "threads  e2e RPC (Mrps)   raw UPI reads (Mrps)");

    std::vector<double> e2e, raw;
    for (unsigned t = 1; t <= 8; ++t) {
        const Row &r = rows[t - 1];
        e2e.push_back(r.e2e);
        raw.push_back(r.raw);
        std::printf("%7u %15.1f %22.1f\n", t, r.e2e, r.raw);
        ctx.point()
            .value("threads", t)
            .value("e2e_mrps", r.e2e)
            .value("raw_upi_mrps", r.raw);
    }

    ctx.check("e2e scales up through 4 threads", e2e[3] > 2.5 * e2e[0]);
    ctx.check("e2e flattens near 42 Mrps (UPI endpoint bound)",
              e2e[7] < 1.15 * e2e[3] && e2e[7] > 30 && e2e[7] < 52);
    ctx.check("raw UPI reads scale further than e2e",
              raw[6] > 1.4 * e2e[7]);
    ctx.check("raw reads flatten near 80 Mrps by 7-8 threads",
              raw[7] < 1.1 * raw[6] && raw[6] > 65 && raw[6] < 95);
    ctx.check("1->2 threads scales near-linearly (paper: linear to 4)",
              e2e[1] > 1.8 * e2e[0]);

    ctx.anchor("e2e_flat_mrps", 42.0, e2e[7], 0.30);
    ctx.anchor("raw_upi_7t_mrps", 80.0, raw[6], 0.30);
}

} // namespace

DAGGER_BENCH_MAIN("fig11_thread_scaling", run)
