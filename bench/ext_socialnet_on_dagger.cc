/**
 * @file
 * Extension: the Social Network tiers of §3, ported onto Dagger.
 *
 * Section 3 motivates Dagger by showing that over kernel TCP + Thrift
 * the light tiers spend up to 80% of their latency in networking.
 * The paper never closes that loop explicitly; this bench does: the
 * same six-tier topology, the same per-tier compute and RPC sizes,
 * but served over the Dagger fabric (one virtualized NIC per tier,
 * Fig. 14).  The per-tier networking share collapses from tens of
 * percent to single digits, and the end-to-end latency drops by the
 * entire former networking budget.
 */

#include <array>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/harness.hh"
#include "svc/socialnet.hh"
#include "svc/tier.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;
using namespace dagger::rpc;

constexpr proto::FnId kProcess = 1;

/** Tier compute costs — identical to the SocialNetConfig defaults. */
struct TierSpec
{
    const char *name;
    sim::Tick compute;
    std::size_t reqBytes;
};

const TierSpec kSpecs[svc::kSnTiers] = {
    {"s1:Media", sim::usToTicks(500), 48},
    {"s2:User", sim::usToTicks(15), 48},
    {"s3:UniqueID", sim::usToTicks(10), 48},
    {"s4:Text", sim::usToTicks(1800), 580},
    {"s5:UserMention", sim::usToTicks(1400), 200},
    {"s6:UrlShorten", sim::usToTicks(700), 150},
};

/** The six tiers + front-end over one Dagger deployment. */
class SnOverDagger
{
  public:
    SnOverDagger() : _cpus(_sys.eq(), 8), _rng(0x536e44)
    {
        nic::SoftConfig soft;
        soft.autoBatch = true;

        for (unsigned t = 0; t < svc::kSnTiers; ++t) {
            const unsigned downstreams = t == 3 ? 2 : 0; // Text fans out
            _tiers[t] = std::make_unique<svc::Tier>(
                _sys, kSpecs[t].name, _cpus.core(t).thread(0), downstreams,
                nic::NicConfig{}, soft);
        }
        // Text -> UserMention, UrlShorten.
        _textToUm = &_tiers[3]->connectTo(*_tiers[4]);
        _textToUrl = &_tiers[3]->connectTo(*_tiers[5]);

        // Front-end: one client flow per downstream tier.
        nic::NicConfig fe;
        fe.numFlows = 4;
        _feNode = &_sys.addNode(fe, soft);
        const unsigned targets[4] = {2, 0, 1, 3}; // uid, media, user, text
        for (unsigned i = 0; i < 4; ++i) {
            _feClients[i] = std::make_unique<RpcClient>(
                *_feNode, i, _cpus.core(6).thread(0));
            _feClients[i]->setConnection(_sys.connect(
                *_feNode, i, _tiers[targets[i]]->node(), 0,
                nic::LbScheme::Static));
        }
        installHandlers();
    }

    /** Leaf handler with the tier's compute cost. */
    void
    installLeaf(unsigned t)
    {
        _tiers[t]->serverThread().registerHandler(
            kProcess, [t](const proto::RpcMessage &) {
                HandlerOutcome out;
                out.response = proto::PayloadBuf(32);
                out.cost = kSpecs[t].compute;
                return out;
            });
    }

    void
    installHandlers()
    {
        for (unsigned t : {0u, 1u, 2u, 4u, 5u})
            installLeaf(t);
        // Text fans out to s5/s6 before answering.
        _tiers[3]->serverThread().registerHandler(
            kProcess, [this](const proto::RpcMessage &req) {
                HandlerOutcome out;
                out.respond = false;
                out.cost = 0;
                auto remaining = std::make_shared<int>(2);
                const auto conn = req.connId();
                const auto rpc = req.rpcId();
                const auto fn = req.fnId();
                auto on_done = [this, remaining, conn, rpc,
                                fn](const proto::RpcMessage &) {
                    if (--*remaining > 0)
                        return;
                    // The Text compute itself runs before responding.
                    std::vector<std::uint8_t> resp(32);
                    _tiers[3]->dispatchThread().execute(
                        kSpecs[3].compute,
                        [this, conn, rpc, fn, resp = std::move(resp)] {
                            _tiers[3]->serverThread().respondLater(
                                conn, rpc, fn, resp.data(), resp.size());
                        });
                };
                std::vector<std::uint8_t> um(kSpecs[4].reqBytes);
                _textToUm->callAsync(kProcess, um.data(), um.size(),
                                     on_done);
                std::vector<std::uint8_t> url(kSpecs[5].reqBytes);
                _textToUrl->callAsync(kProcess, url.data(), url.size(),
                                      on_done);
                return out;
            });
    }

    /** Run compose-posts at @p qps for @p duration. */
    void
    run(double qps, sim::Tick duration)
    {
        _stopAt = _sys.now() + duration;
        _qps = qps;
        issue();
        _sys.runUntilTick(_stopAt + sim::msToTicks(50));
    }

    void
    issue()
    {
        // This bench runs single-queue; the compose driver fans out to
        // front-end clients on four nodes, so it stays on the system
        // queue by design.
        sim::EventQueue &eq = _sys.eq();
        if (eq.now() >= _stopAt)
            return;
        eq.schedule(
            sim::usToTicks(_rng.exponential(1e6 / _qps)), [this] {
                if (_sys.eq().now() >= _stopAt)
                    return;
                const sim::Tick t0 = _sys.eq().now();
                auto remaining = std::make_shared<int>(4);
                auto done = [this, remaining,
                             t0](const proto::RpcMessage &) {
                    if (--*remaining > 0)
                        return;
                    _e2e.record(_sys.eq().now() - t0);
                };
                const unsigned targets[4] = {2, 0, 1, 3};
                for (unsigned i = 0; i < 4; ++i) {
                    std::vector<std::uint8_t> req(
                        kSpecs[targets[i]].reqBytes);
                    _feClients[i]->callAsync(kProcess, req.data(),
                                             req.size(), done);
                }
                issue();
            });
    }

    /** Per-hop RTT as seen by the front-end for tier index 0..3. */
    sim::Histogram &hopRtt(unsigned i) { return _feClients[i]->latency(); }
    sim::Histogram &e2e() { return _e2e; }

  private:
    rpc::DaggerSystem _sys;
    rpc::CpuSet _cpus;
    sim::Rng _rng;
    std::array<std::unique_ptr<svc::Tier>, svc::kSnTiers> _tiers;
    rpc::DaggerNode *_feNode;
    std::array<std::unique_ptr<RpcClient>, 4> _feClients;
    RpcClient *_textToUm;
    RpcClient *_textToUrl;
    sim::Histogram _e2e{"sn_dagger_e2e"};
    double _qps = 0;
    sim::Tick _stopAt = 0;
};

/**
 * Everything the report needs from one side's run.  The TCP scenario
 * fills net/app; the Dagger scenario fills hop_rtt; both fill
 * e2e_p50_us.
 */
struct SideResult
{
    std::array<double, svc::kSnTiers> net{};
    std::array<double, svc::kSnTiers> app{};
    std::array<double, 4> hop_rtt{};
    double e2e_p50_us = 0;
};

constexpr double kQps = 200;

SideResult
runTcp()
{
    svc::SocialNet tcp;
    tcp.run(kQps, sim::msToTicks(400));
    SideResult r;
    for (unsigned t = 0; t < svc::kSnTiers; ++t) {
        const auto &b = tcp.tierBreakdown(t);
        r.net[t] = b.transport.mean() + b.rpc.mean();
        r.app[t] = b.app.mean();
    }
    r.e2e_p50_us = sim::ticksToUs(tcp.e2eLatency().percentile(50));
    return r;
}

SideResult
runDagger()
{
    SnOverDagger dagger;
    dagger.run(kQps, sim::msToTicks(400));
    SideResult r;
    for (unsigned i = 0; i < 4; ++i)
        r.hop_rtt[i] = dagger.hopRtt(i).mean();
    r.e2e_p50_us = sim::ticksToUs(dagger.e2e().percentile(50));
    return r;
}

void
run(BenchContext &ctx)
{
    ctx.seed(0x536e44);
    ctx.config("qps", kQps);
    ctx.config("measure_ms", 400.0);

    std::vector<std::function<SideResult()>> scenarios = {
        [] { return runTcp(); },
        [] { return runDagger(); },
    };
    const std::vector<SideResult> sides =
        ctx.runner().run(std::move(scenarios));
    const SideResult &tcp = sides[0];
    const SideResult &dag = sides[1];

    tableHeader("Extension: Social Network tiers over kernel TCP vs "
                "over Dagger (QPS=200)",
                "tier           net share over TCP    net share over "
                "Dagger");

    // Networking share = (tier latency - app compute) / tier latency.
    // TCP side: from the served breakdown.  Dagger side: from the
    // front-end's per-hop RTT minus the tier's compute.
    const unsigned fe_slot_of_tier[svc::kSnTiers] = {1, 2, 0, 3, 9, 9};
    double tcp_user_share = 0, dagger_user_share = 0;
    for (unsigned t = 0; t < svc::kSnTiers; ++t) {
        const double net_tcp = tcp.net[t];
        const double share_tcp = net_tcp / (net_tcp + tcp.app[t]);

        double share_dagger = -1;
        if (fe_slot_of_tier[t] < 4) {
            const double rtt = dag.hop_rtt[fe_slot_of_tier[t]];
            const double app = static_cast<double>(kSpecs[t].compute) +
                (t == 3 ? static_cast<double>(
                              std::max(kSpecs[4].compute,
                                       kSpecs[5].compute))
                        : 0.0);
            share_dagger = std::max(0.0, (rtt - app) / rtt);
        }
        if (t == 1) {
            tcp_user_share = share_tcp;
            dagger_user_share = share_dagger;
        }
        if (share_dagger >= 0) {
            std::printf("%-15s %16.0f%% %22.0f%%\n", svc::snTierName(t),
                        100 * share_tcp, 100 * share_dagger);
            ctx.point()
                .tag("tier", svc::snTierName(t))
                .value("tcp_net_share_pct", 100 * share_tcp)
                .value("dagger_net_share_pct", 100 * share_dagger);
        } else {
            std::printf("%-15s %16.0f%% %22s\n", svc::snTierName(t),
                        100 * share_tcp, "(nested)");
            ctx.point()
                .tag("tier", svc::snTierName(t))
                .value("tcp_net_share_pct", 100 * share_tcp);
        }
    }

    const double tcp_e2e = tcp.e2e_p50_us;
    const double dagger_e2e = dag.e2e_p50_us;
    std::printf("e2e p50: %.0f us over TCP vs %.0f us over Dagger "
                "(%.2fx)\n",
                tcp_e2e, dagger_e2e, tcp_e2e / dagger_e2e);
    ctx.point()
        .tag("tier", "e2e")
        .value("tcp_p50_us", tcp_e2e)
        .value("dagger_p50_us", dagger_e2e)
        .value("speedup_x", tcp_e2e / dagger_e2e);

    ctx.check("User tier: networking-dominated over TCP (~70%+)",
              tcp_user_share > 0.6);
    ctx.check("User tier: networking share collapses over Dagger",
              dagger_user_share < 0.35 &&
                  dagger_user_share < tcp_user_share / 2);
    ctx.check("end-to-end latency improves over Dagger",
              dagger_e2e < 0.98 * tcp_e2e);

    ctx.anchor("tcp_user_net_share_pct", 80.0, 100 * tcp_user_share,
               0.35);
}

} // namespace

DAGGER_BENCH_MAIN("ext_socialnet_on_dagger", run)
