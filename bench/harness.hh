/**
 * @file
 * Shared bench harness: echo rigs over the Dagger fabric, load
 * drivers, and paper-vs-measured table printing.
 *
 * Every bench binary regenerates one table or figure of the paper and
 * prints the paper's reported value next to the measured one.  The
 * absolute anchors come from a calibrated model (see DESIGN.md §4);
 * the *shape* (ordering, ratios, crossovers) is the reproduction
 * target.
 */

#ifndef DAGGER_BENCH_HARNESS_HH
#define DAGGER_BENCH_HARNESS_HH

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/adapters.hh"
#include "app/kvs_service.hh"
#include "app/workload.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"
#include "sim/rng.hh"

namespace dagger::bench {

/** One measured operating point. */
struct Point
{
    double mrps = 0;    ///< achieved throughput, Mrps
    double p50_us = 0;  ///< median RTT
    double p99_us = 0;  ///< 99th percentile RTT
    double drops = 0;   ///< drop fraction
};

/** Echo rig: N client threads <-> N server flows over one fabric. */
class EchoRig
{
  public:
    struct Options
    {
        ic::IfaceKind iface = ic::IfaceKind::Upi;
        unsigned batch = 4;
        bool autoBatch = false;
        unsigned threads = 1;        ///< client software threads
        std::size_t payload = 48;    ///< one 64 B frame by default
        sim::Tick serverCost = sim::nsToTicks(10);
        bool bestEffort = false;     ///< allow drops (peak-rate mode)
    };

    explicit EchoRig(const Options &opt)
        : _opt(opt), _sys(opt.iface),
          // Tight 80ns send loops co-schedule well on SMT siblings:
          // a mild 1.2x penalty matches the paper's near-linear
          // scaling to 4 threads on 2 cores.
          _clientCpus(_sys.eq(), std::max(1u, (opt.threads + 1) / 2), 1.2),
          _serverCpus(_sys.eq(), opt.threads), _rng(0xbe0c4)
    {
        nic::NicConfig cfg;
        cfg.numFlows = opt.threads;
        cfg.iface = opt.iface;
        cfg.txRingEntries = 512;
        cfg.rxRingEntries = 512;
        nic::SoftConfig soft;
        soft.batchSize = opt.batch;
        soft.autoBatch = opt.autoBatch;

        _clientNode = &_sys.addNode(cfg, soft);
        _serverNode = &_sys.addNode(cfg, soft);
        _server = std::make_unique<rpc::RpcThreadedServer>(*_serverNode);

        for (unsigned t = 0; t < opt.threads; ++t) {
            // Paper placement: logical client thread t -> core t/2.
            auto &cli = _clients.emplace_back(std::make_unique<rpc::RpcClient>(
                *_clientNode, t, _clientCpus.logicalThread(t)));
            cli->setConnection(_sys.connect(*_clientNode, t, *_serverNode,
                                            t, nic::LbScheme::Static));
            if (opt.bestEffort)
                cli->setBestEffort(true);
            _server->addThread(t, _serverCpus.core(t).thread(0));
        }
        // Handler cost carries a small exponential jitter so tail
        // percentiles behave like a real system rather than a
        // deterministic pipeline.
        auto jitter = std::make_shared<sim::Rng>(0x7a17);
        _server->registerHandler(1, [cost = opt.serverCost, jitter](
                                        const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            out.response = req.payload();
            out.cost = cost +
                static_cast<sim::Tick>(jitter->exponential(
                    static_cast<double>(cost) * 0.5));
            return out;
        });
        _payload.assign(opt.payload, 0x5a);
    }

    /**
     * Closed-loop saturation run: @p window outstanding requests per
     * thread; measures completions over @p measure after @p warmup.
     */
    Point
    saturate(unsigned window = 32,
             sim::Tick warmup = sim::msToTicks(2),
             sim::Tick measure = sim::msToTicks(10))
    {
        for (auto &cli : _clients)
            for (unsigned w = 0; w < window; ++w)
                fireClosedLoop(*cli);
        return measureWindow(warmup, measure);
    }

    /**
     * Open-loop run at @p offered_mrps total (split across threads),
     * Poisson arrivals.
     */
    Point
    offer(double offered_mrps, sim::Tick warmup = sim::msToTicks(2),
          sim::Tick measure = sim::msToTicks(10))
    {
        const double per_thread =
            offered_mrps / static_cast<double>(_clients.size());
        _stopAt = _sys.eq().now() + warmup + measure;
        for (auto &cli : _clients)
            fireOpenLoop(*cli, per_thread);
        return measureWindow(warmup, measure);
    }

    /**
     * Best-effort flood (§5.3): clients fire-and-forget at their CPU
     * send rate; the reported throughput is the rate the server side
     * actually processes, with drops allowed anywhere.
     */
    Point
    floodPeak(sim::Tick warmup = sim::msToTicks(2),
              sim::Tick measure = sim::msToTicks(10))
    {
        _stopAt = _sys.eq().now() + warmup + measure;
        for (auto &cli : _clients)
            floodLoop(*cli);
        _sys.eq().runFor(warmup);
        const std::uint64_t done0 = _server->totalProcessed();
        _sys.eq().runFor(measure);
        const std::uint64_t done1 = _server->totalProcessed();
        Point p;
        p.mrps = sim::ratePerSec(done1 - done0, measure) / 1e6;
        const auto &mon = _serverNode->nicDev().monitor();
        const double seen = static_cast<double>(mon.rpcsIn.value());
        p.drops = seen == 0
            ? 0.0
            : static_cast<double>(mon.drops()) / seen;
        return p;
    }

    rpc::DaggerSystem &system() { return _sys; }
    rpc::RpcClient &client(unsigned i) { return *_clients.at(i); }
    rpc::RpcThreadedServer &server() { return *_server; }

  private:
    void
    floodLoop(rpc::RpcClient &cli)
    {
        if (_sys.eq().now() >= _stopAt)
            return;
        cli.callAsync(1, _payload.data(), _payload.size());
        _sys.eq().schedule(_sys.sendCpuCost(*_clientNode),
                           [this, &cli] { floodLoop(cli); });
    }

    void
    fireClosedLoop(rpc::RpcClient &cli)
    {
        cli.callAsync(1, _payload.data(), _payload.size(),
                      [this, &cli](const proto::RpcMessage &) {
                          fireClosedLoop(cli);
                      });
    }

    void
    fireOpenLoop(rpc::RpcClient &cli, double mrps)
    {
        if (_sys.eq().now() >= _stopAt)
            return;
        const double mean_gap_ns = 1000.0 / mrps;
        _sys.eq().schedule(
            sim::nsToTicks(_rng.exponential(mean_gap_ns)),
            [this, &cli, mrps] {
                if (_sys.eq().now() < _stopAt)
                    cli.callAsync(1, _payload.data(), _payload.size());
                fireOpenLoop(cli, mrps);
            });
    }

    Point
    measureWindow(sim::Tick warmup, sim::Tick measure)
    {
        _sys.eq().runFor(warmup);
        std::uint64_t done0 = 0, sent0 = 0, fail0 = 0;
        for (auto &cli : _clients) {
            done0 += cli->responses();
            sent0 += cli->sent();
            fail0 += cli->sendFailures();
            cli->latency().reset();
        }
        _sys.eq().runFor(measure);
        std::uint64_t done1 = 0, sent1 = 0, fail1 = 0;
        sim::Histogram lat;
        for (auto &cli : _clients) {
            done1 += cli->responses();
            sent1 += cli->sent();
            fail1 += cli->sendFailures();
            lat.merge(cli->latency());
        }
        Point p;
        p.mrps = sim::ratePerSec(done1 - done0, measure) / 1e6;
        p.p50_us = sim::ticksToUs(lat.percentile(50));
        p.p99_us = sim::ticksToUs(lat.percentile(99));
        const double attempts = static_cast<double>(
            (sent1 - sent0) + (fail1 - fail0));
        p.drops = attempts == 0
            ? 0.0
            : static_cast<double>(fail1 - fail0) / attempts;
        return p;
    }

    Options _opt;
    rpc::DaggerSystem _sys;
    rpc::CpuSet _clientCpus;
    rpc::CpuSet _serverCpus;
    sim::Rng _rng;
    rpc::DaggerNode *_clientNode;
    rpc::DaggerNode *_serverNode;
    std::unique_ptr<rpc::RpcThreadedServer> _server;
    std::vector<std::unique_ptr<rpc::RpcClient>> _clients;
    std::vector<std::uint8_t> _payload;
    sim::Tick _stopAt = 0;
};

/** Print a table header. */
inline void
tableHeader(const std::string &title, const std::string &cols)
{
    std::printf("\n=== %s ===\n%s\n", title.c_str(), cols.c_str());
}

/** Shape check helper: prints PASS/FAIL on a predicate. */
inline bool
shapeCheck(const char *what, bool ok)
{
    std::printf("shape-check: %-58s %s\n", what, ok ? "PASS" : "FAIL");
    return ok;
}

} // namespace dagger::bench

#endif // DAGGER_BENCH_HARNESS_HH
