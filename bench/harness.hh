/**
 * @file
 * Shared bench harness: echo rigs over the Dagger fabric, load
 * drivers, and paper-vs-measured table printing.
 *
 * Every bench binary regenerates one table or figure of the paper and
 * prints the paper's reported value next to the measured one.  The
 * absolute anchors come from a calibrated model (see DESIGN.md §4);
 * the *shape* (ordering, ratios, crossovers) is the reproduction
 * target.
 */

#ifndef DAGGER_BENCH_HARNESS_HH
#define DAGGER_BENCH_HARNESS_HH

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "app/adapters.hh"
#include "app/kvs_service.hh"
#include "app/workload.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"

namespace dagger::bench {

/** One measured operating point. */
struct Point
{
    double mrps = 0;    ///< achieved throughput, Mrps
    double p50_us = 0;  ///< median RTT
    double p99_us = 0;  ///< 99th percentile RTT
    double drops = 0;   ///< drop fraction
};

/** Echo rig: N client threads <-> N server flows over one fabric. */
class EchoRig
{
  public:
    struct Options
    {
        ic::IfaceKind iface = ic::IfaceKind::Upi;
        unsigned batch = 4;
        bool autoBatch = false;
        unsigned threads = 1;        ///< client software threads
        std::size_t payload = 48;    ///< one 64 B frame by default
        sim::Tick serverCost = sim::nsToTicks(10);
        bool bestEffort = false;     ///< allow drops (peak-rate mode)
        unsigned shards = 1;         ///< event-engine domains (1 = classic)
        std::size_t txRingEntries = 512; ///< frames per TX ring
        std::size_t rxRingEntries = 512; ///< frames per RX ring
    };

    explicit EchoRig(const Options &opt)
        : _opt(opt), _sys(opt.iface, {}, {}, opt.shards), _rng(0xbe0c4)
    {
        nic::NicConfig cfg;
        cfg.numFlows = opt.threads;
        cfg.iface = opt.iface;
        cfg.txRingEntries = opt.txRingEntries;
        cfg.rxRingEntries = opt.rxRingEntries;
        nic::SoftConfig soft;
        soft.batchSize = opt.batch;
        soft.autoBatch = opt.autoBatch;

        _clientNode = &_sys.addNode(cfg, soft);
        _serverNode = &_sys.addNode(cfg, soft);

        // CPU sets live in their node's domain (on a sharded system the
        // two nodes sit on different shards), so they can only be built
        // once the nodes are placed.  Tight 80ns send loops co-schedule
        // well on SMT siblings: a mild 1.2x penalty matches the paper's
        // near-linear scaling to 4 threads on 2 cores.
        _clientCpus = std::make_unique<rpc::CpuSet>(
            _clientNode->eq(), std::max(1u, (opt.threads + 1) / 2), 1.2);
        _serverCpus =
            std::make_unique<rpc::CpuSet>(_serverNode->eq(), opt.threads);
        _server = std::make_unique<rpc::RpcThreadedServer>(*_serverNode);

        for (unsigned t = 0; t < opt.threads; ++t) {
            // Paper placement: logical client thread t -> core t/2.
            auto &cli = _clients.emplace_back(std::make_unique<rpc::RpcClient>(
                *_clientNode, t, _clientCpus->logicalThread(t)));
            cli->setConnection(_sys.connect(*_clientNode, t, *_serverNode,
                                            t, nic::LbScheme::Static));
            if (opt.bestEffort)
                cli->setBestEffort(true);
            _server->addThread(t, _serverCpus->core(t).thread(0));
        }
        // Handler cost carries a small exponential jitter so tail
        // percentiles behave like a real system rather than a
        // deterministic pipeline.
        auto jitter = std::make_shared<sim::Rng>(0x7a17);
        _server->registerHandler(1, [cost = opt.serverCost, jitter](
                                        const proto::RpcMessage &req) {
            rpc::HandlerOutcome out;
            out.response = req.payload();
            out.cost = cost +
                static_cast<sim::Tick>(jitter->exponential(
                    static_cast<double>(cost) * 0.5));
            return out;
        });
        _payload.assign(opt.payload, 0x5a);
    }

    /**
     * Closed-loop saturation run: @p window outstanding requests per
     * thread; measures completions over @p measure after @p warmup.
     */
    Point
    saturate(unsigned window = 32,
             sim::Tick warmup = sim::msToTicks(2),
             sim::Tick measure = sim::msToTicks(10))
    {
        for (auto &cli : _clients)
            for (unsigned w = 0; w < window; ++w)
                fireClosedLoop(*cli);
        return measureWindow(warmup, measure);
    }

    /**
     * Open-loop run at @p offered_mrps total (split across threads),
     * Poisson arrivals.
     */
    Point
    offer(double offered_mrps, sim::Tick warmup = sim::msToTicks(2),
          sim::Tick measure = sim::msToTicks(10))
    {
        const double per_thread =
            offered_mrps / static_cast<double>(_clients.size());
        _stopAt = _sys.now() + warmup + measure;
        for (auto &cli : _clients)
            fireOpenLoop(*cli, per_thread);
        return measureWindow(warmup, measure);
    }

    /**
     * Best-effort flood (§5.3): clients fire-and-forget at their CPU
     * send rate; the reported throughput is the rate the server side
     * actually processes, with drops allowed anywhere.
     */
    Point
    floodPeak(sim::Tick warmup = sim::msToTicks(2),
              sim::Tick measure = sim::msToTicks(10))
    {
        _stopAt = _sys.now() + warmup + measure;
        for (auto &cli : _clients)
            floodLoop(*cli);
        _sys.runFor(warmup);
        const std::uint64_t done0 = _server->totalProcessed();
        _sys.runFor(measure);
        const std::uint64_t done1 = _server->totalProcessed();
        Point p;
        p.mrps = sim::ratePerSec(done1 - done0, measure) / 1e6;
        const auto &mon = _serverNode->nicDev().monitor();
        const double seen = static_cast<double>(mon.rpcsIn.value());
        p.drops = seen == 0
            ? 0.0
            : static_cast<double>(mon.drops()) / seen;
        return p;
    }

    rpc::DaggerSystem &system() { return _sys; }
    rpc::RpcClient &client(unsigned i) { return *_clients.at(i); }
    rpc::RpcThreadedServer &server() { return *_server; }

  private:
    void
    floodLoop(rpc::RpcClient &cli)
    {
        // The send loop runs in the client node's domain.
        sim::EventQueue &eq = _clientNode->eq();
        if (eq.now() >= _stopAt)
            return;
        cli.callAsync(1, _payload.data(), _payload.size());
        eq.schedule(_sys.sendCpuCost(*_clientNode),
                    [this, &cli] { floodLoop(cli); });
    }

    void
    fireClosedLoop(rpc::RpcClient &cli)
    {
        cli.callAsync(1, _payload.data(), _payload.size(),
                      [this, &cli](const proto::RpcMessage &) {
                          fireClosedLoop(cli);
                      });
    }

    void
    fireOpenLoop(rpc::RpcClient &cli, double mrps)
    {
        sim::EventQueue &eq = _clientNode->eq();
        if (eq.now() >= _stopAt)
            return;
        const double mean_gap_ns = 1000.0 / mrps;
        eq.schedule(
            sim::nsToTicks(_rng.exponential(mean_gap_ns)),
            [this, &cli, mrps] {
                if (_clientNode->eq().now() < _stopAt)
                    cli.callAsync(1, _payload.data(), _payload.size());
                fireOpenLoop(cli, mrps);
            });
    }

    Point
    measureWindow(sim::Tick warmup, sim::Tick measure)
    {
        _sys.runFor(warmup);
        std::uint64_t done0 = 0, sent0 = 0, fail0 = 0;
        for (auto &cli : _clients) {
            done0 += cli->responses();
            sent0 += cli->sent();
            fail0 += cli->sendFailures();
            cli->latency().reset();
        }
        _sys.runFor(measure);
        std::uint64_t done1 = 0, sent1 = 0, fail1 = 0;
        sim::Histogram lat;
        for (auto &cli : _clients) {
            done1 += cli->responses();
            sent1 += cli->sent();
            fail1 += cli->sendFailures();
            lat.merge(cli->latency());
        }
        Point p;
        p.mrps = sim::ratePerSec(done1 - done0, measure) / 1e6;
        p.p50_us = sim::ticksToUs(lat.percentile(50));
        p.p99_us = sim::ticksToUs(lat.percentile(99));
        const double attempts = static_cast<double>(
            (sent1 - sent0) + (fail1 - fail0));
        p.drops = attempts == 0
            ? 0.0
            : static_cast<double>(fail1 - fail0) / attempts;
        return p;
    }

    Options _opt;
    rpc::DaggerSystem _sys;
    std::unique_ptr<rpc::CpuSet> _clientCpus;
    std::unique_ptr<rpc::CpuSet> _serverCpus;
    sim::Rng _rng;
    rpc::DaggerNode *_clientNode;
    rpc::DaggerNode *_serverNode;
    std::unique_ptr<rpc::RpcThreadedServer> _server;
    std::vector<std::unique_ptr<rpc::RpcClient>> _clients;
    std::vector<std::uint8_t> _payload;
    sim::Tick _stopAt = 0;
};

/** Print a table header. */
inline void
tableHeader(const std::string &title, const std::string &cols)
{
    std::printf("\n=== %s ===\n%s\n", title.c_str(), cols.c_str());
}

/** Shape check helper: prints PASS/FAIL on a predicate. */
inline bool
shapeCheck(const char *what, bool ok)
{
    std::printf("shape-check: %-58s %s\n", what, ok ? "PASS" : "FAIL");
    return ok;
}

/**
 * Host wall-clock stopwatch for engine self-benchmarks.
 *
 * Wall time is only legal inside bench/harness.hh (the no-wallclock
 * lint rule keeps host time out of simulated quantities), so perf
 * benches that need to report events/sec measure through this timer
 * instead of calling steady_clock themselves.
 */
class WallTimer
{
  public:
    WallTimer() : _start(std::chrono::steady_clock::now()) {} // dagger-lint: allow(no-wallclock)

    /** Seconds of host time since construction (or the last reset()). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   // dagger-lint: allow(no-wallclock)
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

    void reset() { *this = WallTimer(); }

  private:
    std::chrono::steady_clock::time_point _start; // dagger-lint: allow(no-wallclock)
};

/** ShardedEngine clock source: monotonic host nanoseconds.  Wall time
 *  feeds busy/stall accounting only, never a simulated quantity. */
inline std::uint64_t
engineClockNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // dagger-lint: allow(no-wallclock)
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Arm busy/stall accounting on @p sys's engine (no-op unsharded). */
inline void
attachEngineClock(rpc::DaggerSystem &sys)
{
    if (sim::ShardedEngine *e = sys.engine())
        e->setClock(&engineClockNs);
}

/**
 * Parallel scenario runner.
 *
 * Takes a vector of independent scenario closures — each builds and
 * runs its own DaggerSystem, which is thread-safe by isolation (no
 * mutable globals anywhere in sim/) — and executes them on a pool of
 * std::threads.  Results come back in input order, so tables printed
 * from them are bit-identical to a serial run regardless of the job
 * count.  Closures must not share mutable state with each other.
 */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 = defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0)
        : _jobs(jobs == 0 ? defaultJobs() : jobs)
    {}

    /** DAGGER_BENCH_JOBS env override, else hardware_concurrency. */
    static unsigned
    defaultJobs()
    {
        if (const char *env = std::getenv("DAGGER_BENCH_JOBS")) {
            const long n = std::strtol(env, nullptr, 10);
            if (n >= 1)
                return static_cast<unsigned>(n);
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }

    unsigned jobs() const { return _jobs; }

    /** Run all scenarios; result i is scenarios[i]'s return value. */
    template <typename R>
    std::vector<R>
    run(std::vector<std::function<R()>> scenarios) const
    {
        std::vector<R> results(scenarios.size());
        const unsigned workers = static_cast<unsigned>(
            std::min<std::size_t>(_jobs, scenarios.size()));
        if (workers <= 1) {
            for (std::size_t i = 0; i < scenarios.size(); ++i)
                results[i] = scenarios[i]();
            return results;
        }
        std::atomic<std::size_t> next{0};
        auto worker = [&scenarios, &results, &next] {
            for (;;) {
                const std::size_t i = next.fetch_add(1);
                if (i >= scenarios.size())
                    return;
                results[i] = scenarios[i]();
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
        return results;
    }

  private:
    unsigned _jobs;
};

/**
 * One measured operating point for the JSON export: an ordered list of
 * (key, value) fields, where a value is a number or a tag string.
 */
class BenchPoint
{
  public:
    BenchPoint &
    tag(std::string key, std::string value)
    {
        _fields.push_back(
            Field{std::move(key), 0.0, std::move(value), false});
        return *this;
    }

    BenchPoint &
    value(std::string key, double v)
    {
        _fields.push_back(Field{std::move(key), v, {}, true});
        return *this;
    }

    /** Render as a JSON object (deterministic field order/format). */
    std::string
    json() const
    {
        std::string out = "{";
        for (std::size_t i = 0; i < _fields.size(); ++i) {
            const Field &f = _fields[i];
            if (i > 0)
                out += ", ";
            out += "\"" + sim::jsonEscape(f.key) + "\": ";
            out += f.is_num ? sim::jsonNumber(f.num)
                            : "\"" + sim::jsonEscape(f.str) + "\"";
        }
        out += "}";
        return out;
    }

  private:
    struct Field
    {
        std::string key;
        double num;
        std::string str;
        bool is_num;
    };

    std::vector<Field> _fields;
};

/**
 * Shared per-binary bench state: parsed flags (--jobs/--json/--strict),
 * recorded points, shape checks and paper anchors, and the JSON
 * emitter.  Construct via benchMain() / DAGGER_BENCH_MAIN.
 */
class BenchContext
{
  public:
    BenchContext(std::string name, int argc, char **argv)
        // Host wall time only feeds the report's wall_clock_sec field,
        // never a simulated quantity.
        : _name(std::move(name)), _start(std::chrono::steady_clock::now()) // dagger-lint: allow(no-wallclock)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--jobs" && i + 1 < argc) {
                _jobs = parseJobs(argv[++i]);
            } else if (a.rfind("--jobs=", 0) == 0) {
                _jobs = parseJobs(a.substr(7).c_str());
            } else if (a == "--json") {
                _jsonPath = (i + 1 < argc && argv[i + 1][0] != '-')
                    ? argv[++i]
                    : defaultJsonPath();
            } else if (a.rfind("--json=", 0) == 0) {
                _jsonPath = a.substr(7);
            } else if (a == "--shards" && i + 1 < argc) {
                _shards = parseShards(argv[++i]);
            } else if (a.rfind("--shards=", 0) == 0) {
                _shards = parseShards(a.substr(9).c_str());
            } else if (a == "--strict") {
                _strict = true;
            } else if (a == "--help" || a == "-h") {
                std::printf(
                    "usage: %s [--jobs N] [--shards N] [--json [PATH]] "
                    "[--strict]\n"
                    "  --jobs N      scenario worker threads (default: "
                    "DAGGER_BENCH_JOBS or hardware threads)\n"
                    "  --shards N    event-engine domains per system "
                    "(default 1: classic single queue)\n"
                    "  --json [PATH] write results to PATH (default "
                    "%s)\n"
                    "  --strict      exit nonzero when a paper anchor "
                    "misses its tolerance\n",
                    _name.c_str(), defaultJsonPath().c_str());
                std::exit(0);
            }
            // Unknown flags are ignored so wrapped frameworks
            // (google-benchmark) can keep their own.
        }
    }

    const std::string &name() const { return _name; }
    bool strict() const { return _strict; }
    /** Event-engine domains per DaggerSystem (--shards; 1 = classic). */
    unsigned shards() const { return _shards; }
    unsigned jobs() const { return SweepRunner(_jobs).jobs(); }
    SweepRunner runner() const { return SweepRunner(_jobs); }
    bool jsonRequested() const { return !_jsonPath.empty(); }

    /** Record a config key for the JSON export. */
    void
    config(std::string key, std::string value)
    {
        _config.emplace_back(std::move(key),
                             "\"" + sim::jsonEscape(value) + "\"");
    }

    void
    config(std::string key, double value)
    {
        _config.emplace_back(std::move(key), sim::jsonNumber(value));
    }

    void seed(std::uint64_t s) { _seed = s; }

    /** Append a point; chain tag()/value() calls on the result. */
    BenchPoint &
    point()
    {
        _points.emplace_back();
        return _points.back();
    }

    /** Shape check: prints the legacy PASS/FAIL line and records it. */
    bool
    check(const char *what, bool ok)
    {
        shapeCheck(what, ok);
        _checks.emplace_back(what, ok);
        return ok;
    }

    /**
     * Record a paper anchor: ok iff |measured - paper| <= rel_tol *
     * |paper|.  Under --strict a miss turns into exit code 2.
     */
    bool
    anchor(std::string name, double paper, double measured, double rel_tol)
    {
        Anchor a;
        a.name = std::move(name);
        a.paper = paper;
        a.measured = measured;
        a.rel_tol = rel_tol;
        a.ok = paper == 0.0
            ? measured == 0.0
            : std::abs(measured - paper) <= rel_tol * std::abs(paper);
        std::printf("anchor: %-50s paper=%-10.4g measured=%-10.4g "
                    "tol=%.0f%% %s\n",
                    a.name.c_str(), paper, measured, rel_tol * 100.0,
                    a.ok ? "OK" : "MISS");
        _anchors.push_back(std::move(a));
        return _anchors.back().ok;
    }

    /** All recorded points rendered as JSON (the determinism probe). */
    std::string
    pointsJson() const
    {
        std::string out = "[";
        for (std::size_t i = 0; i < _points.size(); ++i) {
            out += i == 0 ? "\n  " : ",\n  ";
            out += _points[i].json();
        }
        out += "\n]";
        return out;
    }

    /**
     * Emit the JSON file (when requested) and compute the exit code:
     * 1 on any failed shape check, 2 on a --strict anchor miss, else 0.
     */
    int
    finish()
    {
        const double wall = std::chrono::duration<double>(
                                // dagger-lint: allow(no-wallclock)
                                std::chrono::steady_clock::now() - _start)
                                .count();
        bool checksOk = true;
        for (const auto &c : _checks)
            checksOk = checksOk && c.second;
        bool anchorsOk = true;
        for (const Anchor &a : _anchors)
            anchorsOk = anchorsOk && a.ok;
        if (!_jsonPath.empty()) {
            std::ofstream f(_jsonPath);
            if (!f) {
                std::fprintf(stderr, "cannot write %s\n",
                             _jsonPath.c_str());
                return 1;
            }
            f << renderJson(wall, checksOk, anchorsOk);
            std::printf("json: wrote %s\n", _jsonPath.c_str());
        }
        if (!checksOk)
            return 1;
        if (_strict && !anchorsOk)
            return 2;
        return 0;
    }

  private:
    struct Anchor
    {
        std::string name;
        double paper = 0;
        double measured = 0;
        double rel_tol = 0;
        bool ok = false;
    };

    static unsigned
    parseJobs(const char *s)
    {
        const long n = std::strtol(s, nullptr, 10);
        return n >= 1 ? static_cast<unsigned>(n) : 1;
    }

    static unsigned
    parseShards(const char *s)
    {
        const long n = std::strtol(s, nullptr, 10);
        return n >= 1 ? static_cast<unsigned>(n) : 1;
    }

    std::string defaultJsonPath() const { return "BENCH_" + _name + ".json"; }

    std::string
    renderJson(double wall, bool checks_ok, bool anchors_ok) const
    {
        std::string out = "{\n";
        out += "\"bench\": \"" + sim::jsonEscape(_name) + "\",\n";
        out += "\"seed\": " + std::to_string(_seed) + ",\n";
        out += "\"jobs\": " + std::to_string(jobs()) + ",\n";
        out += "\"shards\": " + std::to_string(_shards) + ",\n";
        out += "\"wall_clock_sec\": " + sim::jsonNumber(wall) + ",\n";
        out += "\"config\": {";
        for (std::size_t i = 0; i < _config.size(); ++i) {
            out += i == 0 ? "\n  " : ",\n  ";
            out += "\"" + sim::jsonEscape(_config[i].first)
                + "\": " + _config[i].second;
        }
        out += _config.empty() ? "},\n" : "\n},\n";
        out += "\"points\": " + pointsJson() + ",\n";
        out += "\"anchors\": [";
        for (std::size_t i = 0; i < _anchors.size(); ++i) {
            const Anchor &a = _anchors[i];
            out += i == 0 ? "\n  " : ",\n  ";
            out += "{\"name\": \"" + sim::jsonEscape(a.name)
                + "\", \"paper\": " + sim::jsonNumber(a.paper)
                + ", \"measured\": " + sim::jsonNumber(a.measured)
                + ", \"rel_tol\": " + sim::jsonNumber(a.rel_tol)
                + ", \"ok\": " + (a.ok ? "true" : "false") + "}";
        }
        out += _anchors.empty() ? "],\n" : "\n],\n";
        out += "\"checks\": [";
        for (std::size_t i = 0; i < _checks.size(); ++i) {
            out += i == 0 ? "\n  " : ",\n  ";
            out += "{\"what\": \"" + sim::jsonEscape(_checks[i].first)
                + "\", \"pass\": " + (_checks[i].second ? "true" : "false")
                + "}";
        }
        out += _checks.empty() ? "],\n" : "\n],\n";
        out += std::string("\"ok\": ")
            + (checks_ok && anchors_ok ? "true" : "false") + "\n}\n";
        return out;
    }

    std::string _name;
    std::chrono::steady_clock::time_point _start; // dagger-lint: allow(no-wallclock)
    unsigned _jobs = 0; ///< 0 = SweepRunner default
    unsigned _shards = 1;
    bool _strict = false;
    std::string _jsonPath;
    std::uint64_t _seed = 0;
    std::vector<std::pair<std::string, std::string>> _config;
    std::deque<BenchPoint> _points;
    std::vector<std::pair<std::string, bool>> _checks;
    std::vector<Anchor> _anchors;
};

/**
 * Append per-shard busy time and the barrier-stall fraction to @p pt:
 * `busy_ms_shard<i>` for every shard, `parallel_ms`/`serial_ms` phase
 * spans, and `barrier_stall_frac` — the fraction of the parallel-phase
 * wall time the workers spent *not* executing events (idle at the
 * lookahead barrier or waiting on uneven shard load).  Requires
 * attachEngineClock() before the run; all zeros otherwise.
 */
inline void
recordEngineTiming(BenchPoint &pt, sim::ShardedEngine &e)
{
    std::uint64_t busy_sum = 0; // parallel shards only (1..S-1)
    for (unsigned s = 0; s < e.shards(); ++s) {
        pt.value("busy_ms_shard" + std::to_string(s),
                 static_cast<double>(e.busyNs(s)) / 1e6);
        if (s >= 1)
            busy_sum += e.busyNs(s);
    }
    pt.value("parallel_ms", static_cast<double>(e.parallelNs()) / 1e6);
    pt.value("serial_ms", static_cast<double>(e.serialNs()) / 1e6);
    // With w workers the parallel phase offers w*parallelNs of worker
    // wall time; whatever is not shard busy time is barrier stall.
    const double lanes = static_cast<double>(std::max(1u, e.workers()));
    const double offered = lanes * static_cast<double>(e.parallelNs());
    const double stall = offered <= 0.0
        ? 0.0
        : std::max(0.0, 1.0 - static_cast<double>(busy_sum) / offered);
    pt.value("barrier_stall_frac", stall);
}

/** DaggerSystem convenience overload (no-op on unsharded systems). */
inline void
recordEngineTiming(BenchPoint &pt, rpc::DaggerSystem &sys)
{
    if (sim::ShardedEngine *e = sys.engine())
        recordEngineTiming(pt, *e);
}

/** Shared bench entry point: flag parsing, run, JSON emit, exit code. */
inline int
benchMain(std::string name, int argc, char **argv,
          const std::function<void(BenchContext &)> &fn)
{
    BenchContext ctx(std::move(name), argc, argv);
    fn(ctx);
    return ctx.finish();
}

/** Define main() for a bench binary running @p fn (a BenchContext&
 * callable). */
#define DAGGER_BENCH_MAIN(benchname, fn)                                   \
    int main(int argc, char **argv)                                        \
    {                                                                      \
        return ::dagger::bench::benchMain(benchname, argc, argv, fn);      \
    }

} // namespace dagger::bench

#endif // DAGGER_BENCH_HARNESS_HH
