/**
 * @file
 * Reproduces Table 3: median round-trip time and single-core RPC
 * throughput of Dagger vs IX, FaSST, eRPC, and NetDIMM.
 *
 * Each baseline runs as a calibrated cost-model point inside the same
 * DES harness (the paper likewise quotes those systems' published
 * numbers rather than re-running their testbeds).  Dagger runs its
 * full simulated stack.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "baseline/soft_rpc_node.hh"
#include "baseline/soft_stack.hh"
#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;

/** Echo over a modeled software stack: one client core, one server. */
Point
runBaseline(baseline::SoftStack stack)
{
    sim::EventQueue eq;
    rpc::CpuSet cpus(eq, 2);
    auto params = baseline::paramsFor(stack);
    baseline::SoftRpcNode client(eq, params, cpus.core(0).thread(0));
    baseline::SoftRpcNode server(eq, params, cpus.core(1).thread(0));
    server.setHandler([](const baseline::Payload &req,
                         baseline::SoftRpcNode::Responder respond) {
        respond(baseline::Payload(req), sim::nsToTicks(30));
    });

    sim::Histogram rtt;
    std::uint64_t done = 0;
    // Closed loop, window 24.
    struct Driver
    {
        baseline::SoftRpcNode *client;
        baseline::SoftRpcNode *server;
        sim::Histogram *rtt;
        std::uint64_t *done;
        void
        fire()
        {
            client->call(*server, baseline::Payload(64),
                         [this](const baseline::Payload &, sim::Tick t) {
                             rtt->record(t);
                             ++*done;
                             fire();
                         });
        }
    };
    std::vector<std::unique_ptr<Driver>> drivers;
    for (int w = 0; w < 24; ++w) {
        auto d = std::make_unique<Driver>();
        d->client = &client;
        d->server = &server;
        d->rtt = &rtt;
        d->done = &done;
        d->fire();
        drivers.push_back(std::move(d));
    }
    eq.runFor(sim::msToTicks(2));
    const std::uint64_t d0 = done;
    rtt.reset();
    eq.runFor(sim::msToTicks(10));

    // RTT under light load for the latency figure (Table 3 reports
    // unloaded median RTT).
    sim::EventQueue eq2;
    rpc::CpuSet cpus2(eq2, 2);
    baseline::SoftRpcNode c2(eq2, params, cpus2.core(0).thread(0));
    baseline::SoftRpcNode s2(eq2, params, cpus2.core(1).thread(0));
    s2.setHandler([](const baseline::Payload &req,
                     baseline::SoftRpcNode::Responder respond) {
        respond(baseline::Payload(req), sim::nsToTicks(30));
    });
    sim::Histogram rtt2;
    for (int i = 0; i < 64; ++i) {
        eq2.scheduleAt(sim::usToTicks(i * 40.0), [&] {
            c2.call(s2, baseline::Payload(64),
                    [&](const baseline::Payload &, sim::Tick t) {
                        rtt2.record(t);
                    });
        });
    }
    eq2.runUntil(sim::usToTicks(64 * 40 + 200));

    Point p;
    p.mrps = sim::ratePerSec(done - d0, sim::msToTicks(10)) / 1e6;
    p.p50_us = sim::ticksToUs(rtt2.percentile(50));
    return p;
}

/** Dagger: full stack, single core, UPI B=4 (unloaded RTT + peak). */
Point
runDagger()
{
    EchoRig::Options opt;
    opt.batch = 4;
    opt.autoBatch = true; // latency at low load without batch waits
    opt.threads = 1;
    EchoRig lat_rig(opt);
    Point lat = lat_rig.offer(0.2, sim::msToTicks(1), sim::msToTicks(5));

    EchoRig::Options sat_opt = opt;
    sat_opt.autoBatch = false;
    EchoRig sat_rig(sat_opt);
    Point sat = sat_rig.saturate(96);

    Point p;
    p.mrps = sat.mrps;
    p.p50_us = lat.p50_us;
    (void)lat;
    return p;
}

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("payload_bytes", 64.0);

    struct Row
    {
        const char *name;
        const char *objects;
        const char *tor;
        double paper_rtt;
        double paper_thr; // <0: not reported
    };

    const Row rows[] = {
        {"IX", "64B msg", "N/A", 11.4, 1.5},
        {"FaSST", "48B RPC", "0.3us", 2.8, 4.8},
        {"eRPC", "32B RPC", "0.3us", 2.3, 4.96},
        {"NetDIMM", "64B msg", "0.1us", 2.2, -1},
        {"Dagger", "64B RPC", "0.3us", 2.1, 12.4},
    };

    std::vector<std::function<Point()>> scenarios = {
        [] { return runBaseline(baseline::SoftStack::DpdkIx); },
        [] { return runBaseline(baseline::SoftStack::RdmaFasst); },
        [] { return runBaseline(baseline::SoftStack::Erpc); },
        [] { return runBaseline(baseline::SoftStack::NetDimm); },
        [] { return runDagger(); },
    };
    const std::vector<Point> points =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Table 3: median RTT and single-core RPC throughput vs "
                "related systems",
                "system    objects   TOR     paper: RTT(us) Thr(Mrps) | "
                "measured: RTT(us) Thr(Mrps)");

    for (unsigned i = 0; i < 5; ++i) {
        const Row &r = rows[i];
        const Point &p = points[i];
        char thr_paper[16];
        if (r.paper_thr < 0)
            std::snprintf(thr_paper, sizeof(thr_paper), "N/A");
        else
            std::snprintf(thr_paper, sizeof(thr_paper), "%.2f",
                          r.paper_thr);
        std::printf("%-9s %-9s %-6s %13.1f %9s | %16.2f %9.2f\n", r.name,
                    r.objects, r.tor, r.paper_rtt, thr_paper, p.p50_us,
                    p.mrps);
        ctx.point()
            .tag("system", r.name)
            .value("rtt_us", p.p50_us)
            .value("mrps", p.mrps)
            .value("paper_rtt_us", r.paper_rtt);
    }

    const Point &ix = points[0], &fasst = points[1], &erpc = points[2],
                &netdimm = points[3], &dagger = points[4];
    ctx.check("Dagger has the highest per-core throughput",
              dagger.mrps > fasst.mrps && dagger.mrps > erpc.mrps &&
                  dagger.mrps > ix.mrps);
    ctx.check("Dagger throughput 1.3-3.8x over eRPC/FaSST (paper)",
              dagger.mrps / erpc.mrps > 1.3 &&
                  dagger.mrps / fasst.mrps > 1.3 &&
                  dagger.mrps / fasst.mrps < 4.5);
    ctx.check("Dagger ~8x IX's per-core throughput",
              dagger.mrps / ix.mrps > 5.0);
    ctx.check("Dagger has the lowest median RTT",
              dagger.p50_us < fasst.p50_us && dagger.p50_us < erpc.p50_us &&
                  dagger.p50_us <= netdimm.p50_us + 0.4);
    ctx.check("IX pays an order of magnitude in RTT",
              ix.p50_us > 3.5 * erpc.p50_us);
    ctx.check("Dagger RTT ~2.1us (paper)",
              dagger.p50_us > 1.4 && dagger.p50_us < 2.9);

    ctx.anchor("dagger_rtt_us", 2.1, dagger.p50_us, 0.40);
    ctx.anchor("dagger_mrps", 12.4, dagger.mrps, 0.20);
}

} // namespace

DAGGER_BENCH_MAIN("table3_rpc_platforms", run)
