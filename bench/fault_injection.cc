/**
 * @file
 * Failure injection: RPC completion and tail latency under seeded
 * packet loss (extension bench).
 *
 * The paper's testbed assumes a lossless rack-scale fabric and leaves
 * reliable transports as future work for the Protocol block (§4.5).
 * This bench sweeps a per-packet drop probability across both
 * directions of a two-node fabric with the AckProtocol reliability
 * layer installed on each NIC (fragmenting at a 2-frame MTU so
 * multi-frame RPCs exercise reassembly) and a client-side retry
 * policy armed above it.  At every loss point each RPC must complete
 * exactly once — recovered by transport retransmission when the
 * outage is short, by a client retry when it is not.  A final
 * scenario scripts a 150us link flap, long enough to exhaust the
 * transport's retransmit budget, so only the client-level retry can
 * ride it out.
 *
 * All loss decisions come from per-scenario seeded sim::Rng streams:
 * the same seed gives byte-identical JSON (the CI fault-smoke job
 * diffs two runs).
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/harness.hh"
#include "net/fault_injector.hh"
#include "nic/ack_protocol.hh"

namespace {

using namespace dagger;
using namespace dagger::bench;
using sim::usToTicks;

constexpr unsigned kCalls = 400;
constexpr std::size_t kPayload = 160; // 4 frames -> 2 wire fragments
constexpr sim::Tick kAckTimeout = usToTicks(20);
constexpr unsigned kAckRetries = 6;
constexpr std::size_t kMtuFrames = 2;

struct Scenario
{
    const char *name;
    double dropP;
    bool flap;
    std::uint64_t seed;
};

constexpr Scenario kScenarios[] = {
    {"loss-0%", 0.000, false, 0x5eed00},
    {"loss-0.2%", 0.002, false, 0x5eed01},
    {"loss-1%", 0.010, false, 0x5eed02},
    {"loss-2%", 0.020, false, 0x5eed03},
    {"loss-5%", 0.050, false, 0x5eed04},
    {"flap-150us", 0.000, true, 0x5eed05},
};

struct LossPoint
{
    double ok = 0;            ///< calls completed CallStatus::Ok
    double timed_out = 0;     ///< calls surfaced as TimedOut
    double client_retries = 0;
    double late_responses = 0;
    double orphans = 0;
    double retransmits = 0;   ///< transport-level, both sides
    double dup_suppressed = 0;
    double transport_lost = 0;
    double wire_dropped = 0;  ///< injector drops, both directions
    double p50_us = 0;
    double p99_us = 0;
};

LossPoint
runScenario(const Scenario &sc)
{
    rpc::DaggerSystem sys(ic::IfaceKind::Upi);
    rpc::CpuSet cpus(sys.eq(), 2);

    nic::NicConfig cfg;
    cfg.numFlows = 1;
    nic::SoftConfig soft;
    soft.autoBatch = true;
    rpc::DaggerNode &cnode = sys.addNode(cfg, soft);
    rpc::DaggerNode &snode = sys.addNode(cfg, soft);

    auto cp = std::make_unique<nic::AckProtocol>(kAckTimeout, kAckRetries,
                                                 kMtuFrames);
    auto sp = std::make_unique<nic::AckProtocol>(kAckTimeout, kAckRetries,
                                                 kMtuFrames);
    nic::AckProtocol &cack = *cp;
    nic::AckProtocol &sack = *sp;
    cnode.nicDev().setProtocol(std::move(cp));
    snode.nicDev().setProtocol(std::move(sp));

    // Independent fault streams per direction; a scripted flap blacks
    // out the request direction (covering it is the retry layer's job).
    net::FaultSpec toServer;
    toServer.dropP = sc.dropP;
    toServer.seed = sc.seed * 2 + 1;
    if (sc.flap)
        toServer.flaps.push_back({usToTicks(100), usToTicks(250)});
    net::FaultSpec toClient;
    toClient.dropP = sc.dropP;
    toClient.seed = sc.seed * 2 + 2;
    net::FaultInjector fwd(sys.eq(), toServer);
    net::FaultInjector rev(sys.eq(), toClient);
    fwd.install(sys.tor().attach(snode.id()));
    rev.install(sys.tor().attach(cnode.id()));

    rpc::RpcClient cli(cnode, 0, cpus.core(0).thread(0));
    cli.setConnection(
        sys.connect(cnode, 0, snode, 0, nic::LbScheme::Static));
    // Client timeout sits above the transport's full retransmit budget
    // (6 x 20us), so it only fires when the transport has given up.
    rpc::RetryPolicy policy;
    policy.timeout = usToTicks(150);
    policy.maxRetries = 3;
    policy.backoff = 2.0;
    policy.maxTimeout = usToTicks(600);
    cli.setRetryPolicy(policy);

    rpc::RpcThreadedServer server(snode);
    server.addThread(0, cpus.core(1).thread(0));
    server.registerHandler(1, [](const proto::RpcMessage &req) {
        rpc::HandlerOutcome out;
        out.response = req.payload();
        out.cost = sim::nsToTicks(40);
        return out;
    });

    std::vector<std::uint8_t> payload(kPayload, 0xa5);
    std::uint64_t ok = 0, timed_out = 0;
    for (unsigned i = 0; i < kCalls; ++i) {
        cnode.eq().scheduleAt(usToTicks(i), [&] {
            cli.callAsyncStatus(
                1, payload.data(), payload.size(),
                [&](rpc::CallStatus st, const proto::RpcMessage &) {
                    (st == rpc::CallStatus::Ok ? ok : timed_out)++;
                });
        });
    }
    sys.runFor(sim::msToTicks(5));

    LossPoint p;
    p.ok = static_cast<double>(ok);
    p.timed_out = static_cast<double>(timed_out);
    p.client_retries = static_cast<double>(cli.retriesSent());
    p.late_responses = static_cast<double>(cli.lateResponses());
    p.orphans = static_cast<double>(cli.orphanResponses());
    p.retransmits = static_cast<double>(cack.retransmissions() +
                                        sack.retransmissions());
    p.dup_suppressed = static_cast<double>(cack.dupSuppressed() +
                                           sack.dupSuppressed());
    p.transport_lost =
        static_cast<double>(cack.lost() + sack.lost());
    p.wire_dropped = static_cast<double>(
        fwd.droppedCount() + fwd.flapDropped() + rev.droppedCount() +
        rev.flapDropped());
    p.p50_us = sim::ticksToUs(cli.latency().percentile(50));
    p.p99_us = sim::ticksToUs(cli.latency().percentile(99));
    return p;
}

void
run(BenchContext &ctx)
{
    ctx.seed(0x5eed);
    ctx.config("calls_per_point", static_cast<double>(kCalls));
    ctx.config("payload_bytes", static_cast<double>(kPayload));
    ctx.config("ack_timeout_us", sim::ticksToUs(kAckTimeout));
    ctx.config("ack_retries", static_cast<double>(kAckRetries));
    ctx.config("mtu_frames", static_cast<double>(kMtuFrames));
    ctx.config("client_timeout_us", 150.0);
    ctx.config("client_retries", 3.0);

    std::vector<std::function<LossPoint()>> scenarios;
    for (const Scenario &sc : kScenarios)
        scenarios.push_back([&sc] { return runScenario(sc); });
    const std::vector<LossPoint> results =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Failure injection: reliability layer under seeded "
                "packet loss",
                "scenario      ok  t/o  retx  dup  lost  c-retry  "
                "dropped  p50(us)  p99(us)");

    for (std::size_t i = 0; i < std::size(kScenarios); ++i) {
        const LossPoint &p = results[i];
        std::printf("%-11s %4.0f %4.0f %5.0f %4.0f %5.0f %8.0f %8.0f "
                    "%8.2f %8.2f\n",
                    kScenarios[i].name, p.ok, p.timed_out, p.retransmits,
                    p.dup_suppressed, p.transport_lost, p.client_retries,
                    p.wire_dropped, p.p50_us, p.p99_us);
        ctx.point()
            .tag("scenario", kScenarios[i].name)
            .value("drop_p", kScenarios[i].dropP)
            .value("ok", p.ok)
            .value("timed_out", p.timed_out)
            .value("retransmits", p.retransmits)
            .value("dup_suppressed", p.dup_suppressed)
            .value("transport_lost", p.transport_lost)
            .value("client_retries", p.client_retries)
            .value("late_responses", p.late_responses)
            .value("orphans", p.orphans)
            .value("wire_dropped", p.wire_dropped)
            .value("p50_us", p.p50_us)
            .value("p99_us", p.p99_us);
    }

    bool all_exactly_once = true;
    bool no_orphans = true;
    for (const LossPoint &p : results) {
        all_exactly_once = all_exactly_once &&
            p.ok == static_cast<double>(kCalls) && p.timed_out == 0;
        no_orphans = no_orphans && p.orphans == 0;
    }
    const LossPoint &lossless = results[0];
    const LossPoint &one_pct = results[2];
    const LossPoint &five_pct = results[4];
    const LossPoint &flap = results[5];

    ctx.check("every RPC completes exactly once at every loss point",
              all_exactly_once);
    ctx.check("no unexplained orphan responses anywhere", no_orphans);
    ctx.check("lossless run does zero recovery work",
              lossless.retransmits == 0 && lossless.client_retries == 0 &&
                  lossless.wire_dropped == 0);
    ctx.check("1% loss is recovered by transport retransmission",
              one_pct.retransmits > 0 && one_pct.wire_dropped > 0);
    ctx.check("loss inflates the tail (p99 at 5% > lossless p99)",
              five_pct.p99_us > lossless.p99_us);
    ctx.check("a 150us flap outlives the transport budget -> client "
              "retries carry it",
              flap.transport_lost > 0 && flap.client_retries > 0);

    ctx.anchor("lossless_vs_1pct_p50_ratio", 1.0,
               lossless.p50_us == 0 ? 0 : one_pct.p50_us / lossless.p50_us,
               0.25);
}

} // namespace

DAGGER_BENCH_MAIN("fault_injection", run)
