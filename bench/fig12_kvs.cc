/**
 * @file
 * Reproduces Fig. 12: memcached and MICA running over Dagger on a
 * single core — median/99th-pct latency (write-intensive mix) and
 * peak throughput for the 50%-GET and 95%-GET mixes, tiny and small
 * datasets — plus the §5.6 high-skew (Zipf 0.9999) MICA runs.
 *
 * Scaling note: the paper populates 10M (memcached) / 200M (MICA)
 * unique pairs; we scale the key spaces down (0.2M / 1M) to keep the
 * harness laptop-sized.  Zipf access concentrates on the head of the
 * key space, so hit rates and locality behaviour are preserved; see
 * EXPERIMENTS.md.
 */

#include <cstdio>
#include <functional>

#include "bench/harness.hh"

namespace {

using namespace dagger;
using namespace dagger::app;
using namespace dagger::bench;

constexpr std::uint64_t kMcdKeys = 200'000;
constexpr std::uint64_t kMicaKeys = 1'000'000;

/** Closed-loop KVS driver over the full Dagger stack, one core. */
class KvsRig
{
  public:
    KvsRig(KvBackend &backend, KvWorkload &wl, unsigned shards = 1)
        : _wl(wl), _sys(ic::IfaceKind::Upi, {}, {}, shards)
    {
        nic::NicConfig cfg;
        cfg.numFlows = 1;
        cfg.txRingEntries = 512;
        cfg.rxRingEntries = 512;
        nic::SoftConfig soft;
        soft.batchSize = 4;

        _clientNode = &_sys.addNode(cfg, soft);
        _serverNode = &_sys.addNode(cfg, soft);
        _serverNode->nicDev().setObjectLevelKey(0, wl.shape().keyLen);

        // One core per side, each on its node's domain queue (the two
        // coincide when shards == 1).
        _clientCpus =
            std::make_unique<rpc::CpuSet>(_clientNode->eq(), 1);
        _serverCpus =
            std::make_unique<rpc::CpuSet>(_serverNode->eq(), 1);

        _client = std::make_unique<rpc::RpcClient>(
            *_clientNode, 0, _clientCpus->core(0).thread(0));
        _client->setConnection(_sys.connect(*_clientNode, 0, *_serverNode,
                                            0, nic::LbScheme::ObjectLevel));
        _kvs = std::make_unique<KvsClient>(*_client);

        _server = std::make_unique<rpc::RpcThreadedServer>(*_serverNode);
        _server->addThread(0, _serverCpus->core(0).thread(0));
        _app = std::make_unique<KvsServer>(*_server, backend);
    }

    rpc::DaggerSystem &system() { return _sys; }
    rpc::RpcThreadedServer &server() { return *_server; }
    /** The server node's domain queue — where backend-side work (e.g.
     *  memcached hash costs) must be scheduled. */
    sim::EventQueue &serverEq() { return _serverNode->eq(); }

    Point
    run(unsigned window, sim::Tick warmup = sim::msToTicks(3),
        sim::Tick measure = sim::msToTicks(10))
    {
        for (unsigned w = 0; w < window; ++w)
            fire();
        _sys.runFor(warmup);
        const std::uint64_t d0 = _client->responses();
        _client->latency().reset();
        _sys.runFor(measure);
        Point p;
        p.mrps = sim::ratePerSec(_client->responses() - d0, measure) / 1e6;
        p.p50_us = sim::ticksToUs(_client->latency().percentile(50));
        p.p99_us = sim::ticksToUs(_client->latency().percentile(99));
        return p;
    }

  private:
    void
    fire()
    {
        KvOp op = _wl.next();
        if (op.isGet) {
            _kvs->get(op.key,
                      [this](bool, std::string_view) { fire(); });
        } else {
            _kvs->set(op.key, op.value, [this](bool) { fire(); });
        }
    }

    KvWorkload &_wl;
    rpc::DaggerSystem _sys;
    rpc::DaggerNode *_clientNode;
    rpc::DaggerNode *_serverNode;
    std::unique_ptr<rpc::CpuSet> _clientCpus;
    std::unique_ptr<rpc::CpuSet> _serverCpus;
    std::unique_ptr<rpc::RpcClient> _client;
    std::unique_ptr<KvsClient> _kvs;
    std::unique_ptr<rpc::RpcThreadedServer> _server;
    std::unique_ptr<KvsServer> _app;
};

struct KvsResult
{
    Point write_intense; ///< 50% GET (latency + throughput)
    Point read_intense;  ///< 95% GET (throughput)
};

KvsResult
runMica(DatasetShape shape, double theta, unsigned shards)
{
    KvsResult result;
    for (double get_ratio : {0.5, 0.95}) {
        MicaKvs store(1, 64u << 20, 1u << 18);
        MicaBackend backend(store);
        KvWorkload wl(kMicaKeys, theta, get_ratio, shape);
        // Populate every key (the paper pre-loads the dataset).
        for (std::uint64_t i = 0; i < kMicaKeys; ++i) {
            const auto key = wl.keyFor(i);
            store.partition(0).set(key, wl.valueFor(key));
        }
        // Warm the LLC-residency model to its steady state: the paper
        // measures a long-running server whose cache already holds the
        // hot working set.
        {
            KvWorkload warm(kMicaKeys, theta, get_ratio, shape);
            sim::Tick scratch = 0;
            for (int i = 0; i < 1'000'000; ++i) {
                KvOp op = warm.next();
                if (op.isGet)
                    backend.kvGet(0, op.key, scratch);
                else
                    backend.kvSet(0, op.key, op.value, scratch);
            }
        }
        KvsRig rig(backend, wl, shards);
        Point p = rig.run(/*window=*/48); // saturation throughput
        KvsRig lat_rig(backend, wl, shards);
        Point lat = lat_rig.run(/*window=*/12); // paper-like pipelining
        p.p50_us = lat.p50_us;
        p.p99_us = lat.p99_us;
        if (get_ratio == 0.5)
            result.write_intense = p;
        else
            result.read_intense = p;
    }
    return result;
}

KvsResult
runMemcached(DatasetShape shape, unsigned shards)
{
    KvsResult result;
    for (double get_ratio : {0.5, 0.95}) {
        Memcached store(128u << 20);
        KvWorkload wl(kMcdKeys, 0.99, get_ratio, shape);
        for (std::uint64_t i = 0; i < kMcdKeys; ++i) {
            const auto key = wl.keyFor(i);
            store.set(key, wl.valueFor(key));
        }
        // The backend needs the rig's event queue: build the rig with
        // a placeholder backend, then re-attach a memcached-backed
        // KvsServer (handler re-registration replaces the placeholder).
        // Backend work is server-side, so it lives on the server
        // node's domain queue.
        MicaKvs dummy(1, 1 << 20, 1 << 10);
        MicaBackend dummy_backend(dummy);
        KvsRig rig(dummy_backend, wl, shards);
        MemcachedBackend backend(store, rig.serverEq());
        KvsServer mc_app(rig.server(), backend);
        Point p = rig.run(/*window=*/8); // saturation throughput
        // Latency at light pipelining (the paper's 0.6 Mrps operating
        // point implies ~2 outstanding requests).
        KvsRig lat_rig(dummy_backend, wl, shards);
        MemcachedBackend lat_backend(store, lat_rig.serverEq());
        KvsServer lat_app(lat_rig.server(), lat_backend);
        Point lat = lat_rig.run(/*window=*/1);
        p.p50_us = lat.p50_us;
        p.p99_us = lat.p99_us;
        if (get_ratio == 0.5)
            result.write_intense = p;
        else
            result.read_intense = p;
    }
    return result;
}

void
run(BenchContext &ctx)
{
    ctx.seed(0xbe0c4);
    ctx.config("mcd_keys", static_cast<double>(kMcdKeys));
    ctx.config("mica_keys", static_cast<double>(kMicaKeys));

    struct Row
    {
        const char *label;
        double paper_p50, paper_p99, paper_t50, paper_t95;
    };

    const Row rows[] = {
        {"mcd-tiny", 2.8, 6.9, 0.6, 1.5},
        {"mcd-small", 3.2, 7.8, 0.6, 1.5},
        {"mica-tiny", 3.4, 5.4, 4.7, 5.2},
        {"mica-small", 3.5, 5.7, 4.3, 5.0},
    };

    // The four Fig. 12 rows plus the §5.6 high-skew MICA run, all
    // independent full-system simulations.
    const unsigned shards = ctx.shards();
    std::vector<std::function<KvsResult()>> scenarios = {
        [shards] { return runMemcached(kTiny, shards); },
        [shards] { return runMemcached(kSmall, shards); },
        [shards] { return runMica(kTiny, 0.99, shards); },
        [shards] { return runMica(kSmall, 0.99, shards); },
        [shards] { return runMica(kTiny, 0.9999, shards); },
    };
    const std::vector<KvsResult> results =
        ctx.runner().run(std::move(scenarios));

    tableHeader("Fig. 12: memcached and MICA over Dagger (single core)",
                "system      paper: p50  p99  thr50%GET thr95%GET | "
                "measured: p50   p99  thr50  thr95");

    for (unsigned i = 0; i < 4; ++i) {
        const Row &row = rows[i];
        const KvsResult &r = results[i];
        std::printf("%-11s %9.1f %5.1f %8.1f %9.1f | %12.2f %5.2f %6.2f "
                    "%6.2f\n",
                    row.label, row.paper_p50, row.paper_p99, row.paper_t50,
                    row.paper_t95, r.write_intense.p50_us,
                    r.write_intense.p99_us, r.write_intense.mrps,
                    r.read_intense.mrps);
        ctx.point()
            .tag("system", row.label)
            .value("p50_us", r.write_intense.p50_us)
            .value("p99_us", r.write_intense.p99_us)
            .value("mrps_50get", r.write_intense.mrps)
            .value("mrps_95get", r.read_intense.mrps);
    }

    // §5.6 high-skew MICA runs: "with such a workload, Dagger achieves
    // a throughput of 10.2 Mrps and 9.8 Mrps for read- and
    // write-intensive workloads".
    const KvsResult &hi = results[4];
    std::printf("%-11s %9s %5s %8.1f %9.1f | %12.2f %5.2f %6.2f %6.2f\n",
                "mica-0.9999", "-", "-", 9.8, 10.2,
                hi.write_intense.p50_us, hi.write_intense.p99_us,
                hi.write_intense.mrps, hi.read_intense.mrps);
    ctx.point()
        .tag("system", "mica-0.9999")
        .value("p50_us", hi.write_intense.p50_us)
        .value("p99_us", hi.write_intense.p99_us)
        .value("mrps_50get", hi.write_intense.mrps)
        .value("mrps_95get", hi.read_intense.mrps);

    ctx.check("MICA sustains several x memcached's throughput",
              results[2].read_intense.mrps >
                  3.0 * results[0].read_intense.mrps);
    ctx.check("memcached ~0.6 Mrps at 50% GET (paper 0.6)",
              results[0].write_intense.mrps > 0.3 &&
                  results[0].write_intense.mrps < 1.2);
    ctx.check("MICA tiny ~4.7 Mrps at 50% GET (paper 4.7)",
              results[2].write_intense.mrps > 3.4 &&
                  results[2].write_intense.mrps < 6.2);
    ctx.check("read-intensive mixes beat write-intensive",
              results[2].read_intense.mrps >
                  results[2].write_intense.mrps &&
                  results[0].read_intense.mrps >
                      results[0].write_intense.mrps);
    ctx.check("KVS access latency stays in the us range "
              "(paper 2.8-3.5 p50)",
              results[2].write_intense.p50_us < 8.0 &&
                  results[0].write_intense.p50_us < 16.0);
    // With a YCSB-style analytic Zipf, theta 0.99 -> 0.9999 changes
    // cache locality only marginally (the top-k mass ratio moves by
    // ~2%), so the paper's ~2x gain is not reproducible from the
    // distribution alone; see EXPERIMENTS.md.  We check direction.
    ctx.check("higher skew (0.9999) does not reduce throughput",
              hi.read_intense.mrps >=
                  0.97 * results[2].read_intense.mrps);
    ctx.check("tiny >= small throughput (smaller requests)",
              results[2].write_intense.mrps >=
                  0.95 * results[3].write_intense.mrps);

    ctx.anchor("mcd_tiny_mrps_50get", 0.6, results[0].write_intense.mrps,
               0.50);
    ctx.anchor("mica_tiny_mrps_50get", 4.7,
               results[2].write_intense.mrps, 0.30);
}

} // namespace

DAGGER_BENCH_MAIN("fig12_kvs", run)
