/**
 * @file
 * Set-associative LRU cache tests, including the Zipf-hit-rate
 * property the MICA residency model depends on.
 */

#include <gtest/gtest.h>

#include "mem/set_assoc_cache.hh"
#include "sim/rng.hh"

namespace {

using dagger::mem::SetAssocLruCache;

TEST(SetAssocLruCache, MissThenHit)
{
    SetAssocLruCache c(64, 4);
    EXPECT_FALSE(c.access(42));
    EXPECT_TRUE(c.access(42));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocLruCache, ContainsDoesNotMutate)
{
    SetAssocLruCache c(64, 4);
    c.access(7);
    EXPECT_TRUE(c.contains(7));
    EXPECT_FALSE(c.contains(8));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocLruCache, CapacityRoundsUpToSetsTimesWays)
{
    SetAssocLruCache c(100, 16);
    EXPECT_GE(c.capacity(), 100u);
    EXPECT_EQ(c.capacity() % 16, 0u);
}

TEST(SetAssocLruCache, LruEvictsColdestWithinSet)
{
    // One set of 4 ways: keys hashed into the same set by construction
    // (sets=1 when capacity <= ways).
    SetAssocLruCache c(4, 4);
    for (std::uint64_t k = 1; k <= 4; ++k)
        c.access(k);
    // Touch 1 (making 2 the LRU), then insert 5: 2 must be evicted.
    EXPECT_TRUE(c.access(1));
    EXPECT_FALSE(c.access(5));
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(SetAssocLruCache, HotKeysSurviveZipfTraffic)
{
    // The property the MICA residency model relies on: under Zipfian
    // traffic the hit rate approaches the request mass of the hottest
    // ~capacity keys (Che approximation), instead of collapsing the
    // way a direct-mapped table does.
    SetAssocLruCache c(1 << 12, 16);
    dagger::sim::ZipfianGenerator z(1'000'000, 0.99, 99);
    for (int i = 0; i < 200'000; ++i)
        c.access(z.next() * 0x9e3779b97f4a7c15ull);
    // Warmed-up hit rate: top-4096 Zipf(0.99) mass over 1M keys is
    // ~0.55-0.60.
    EXPECT_GT(c.hitRate(), 0.40);
    EXPECT_LT(c.hitRate(), 0.75);
}

TEST(SetAssocLruCache, UniformTrafficHitRateMatchesCapacityRatio)
{
    SetAssocLruCache c(1 << 10, 8);
    dagger::sim::Rng rng(5);
    for (int i = 0; i < 100'000; ++i)
        c.access(rng.range(1 << 12)); // keyspace 4x capacity
    EXPECT_NEAR(c.hitRate(), 0.25, 0.06);
}

} // namespace
