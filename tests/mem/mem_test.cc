/**
 * @file
 * Tests for the memory models: direct-mapped cache, HCC, LLC model.
 */

#include <gtest/gtest.h>

#include "mem/direct_mapped_cache.hh"
#include "mem/hcc.hh"
#include "mem/llc_model.hh"

namespace {

using namespace dagger::mem;

TEST(DirectMappedCache, LookupInsertErase)
{
    DirectMappedCache<int> c(16);
    EXPECT_FALSE(c.lookup(5).has_value());
    EXPECT_FALSE(c.insert(5, 42).has_value());
    auto got = c.lookup(5);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 42);
    EXPECT_TRUE(c.erase(5));
    EXPECT_FALSE(c.erase(5));
    EXPECT_FALSE(c.lookup(5).has_value());
}

TEST(DirectMappedCache, ConflictEvicts)
{
    DirectMappedCache<int> c(8);
    c.insert(1, 10);
    auto evicted = c.insert(9, 90); // 1 and 9 share set 1
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->first, 1u);
    EXPECT_EQ(evicted->second, 10);
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_FALSE(c.lookup(1).has_value());
    EXPECT_TRUE(c.lookup(9).has_value());
}

TEST(DirectMappedCache, ReinsertSameKeyIsNotEviction)
{
    DirectMappedCache<int> c(8);
    c.insert(3, 1);
    EXPECT_FALSE(c.insert(3, 2).has_value());
    EXPECT_EQ(c.evictions(), 0u);
    EXPECT_EQ(*c.peek(3), 2);
}

TEST(DirectMappedCache, HitRateTracksAccesses)
{
    DirectMappedCache<int> c(8);
    c.insert(1, 1);
    c.lookup(1);
    c.lookup(2);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
    EXPECT_EQ(c.occupancy(), 1u);
}

TEST(DirectMappedCacheDeath, NonPowerOfTwoRejected)
{
    EXPECT_DEATH(DirectMappedCache<int>(12), "power of two");
}

TEST(Hcc, HasPaperCapacity)
{
    EXPECT_EQ(kHccBytes, 128u * 1024u);
    EXPECT_EQ(kHccLines, 2048u);
}

TEST(Hcc, MissThenHit)
{
    Hcc hcc(dagger::sim::nsToTicks(400));
    EXPECT_EQ(hcc.access(7), dagger::sim::nsToTicks(400));
    EXPECT_EQ(hcc.access(7), 0u);
    EXPECT_EQ(hcc.hits(), 1u);
    EXPECT_EQ(hcc.misses(), 1u);
}

TEST(Hcc, InvalidateForcesRefill)
{
    Hcc hcc;
    hcc.access(3);
    hcc.invalidate(3);
    EXPECT_GT(hcc.access(3), 0u);
}

TEST(LlcModel, NoForeignPressureNoSlowdown)
{
    LlcModel llc;
    auto a = llc.addAgent(0.8);
    EXPECT_DOUBLE_EQ(llc.slowdown(a), 1.0);
}

TEST(LlcModel, ForeignPressureSlowsDown)
{
    LlcModel llc(1.0);
    auto a = llc.addAgent(0.2);
    auto b = llc.addAgent(0.5);
    EXPECT_GT(llc.slowdown(a), 1.2);
    EXPECT_GT(llc.slowdown(b), 1.0);
    // Quadratic onset: more pressure hurts superlinearly.
    llc.setPressure(b, 0.1);
    EXPECT_LT(llc.slowdown(a), 1.02);
}

TEST(LlcModel, PressureCapsAtOne)
{
    LlcModel llc(1.0);
    auto a = llc.addAgent(0.0);
    llc.addAgent(0.9);
    llc.addAgent(0.9);
    EXPECT_DOUBLE_EQ(llc.slowdown(a), 2.0); // 1 + 1.0 * 1^2
}

} // namespace
