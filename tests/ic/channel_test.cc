/**
 * @file
 * Interconnect channel + fabric tests: serialization, round-robin
 * arbiter fairness, outstanding-window limits, cost-model shapes.
 */

#include <gtest/gtest.h>

#include "ic/cci_fabric.hh"
#include "ic/channel.hh"
#include "ic/cost_model.hh"
#include "sim/event_queue.hh"

namespace {

using namespace dagger;
using namespace dagger::ic;
using sim::EventQueue;
using sim::nsToTicks;
using sim::Tick;

TEST(Channel, SingleTransactionTiming)
{
    EventQueue eq;
    Channel ch(eq, nsToTicks(10), nsToTicks(20), 1);
    Tick done_at = 0;
    ch.request(0, 4, [&] { done_at = eq.now(); });
    eq.runAll();
    // 20 overhead + 4 lines * 10.
    EXPECT_EQ(done_at, nsToTicks(60));
    EXPECT_EQ(ch.linesServiced(), 4u);
    EXPECT_EQ(ch.txnsServiced(), 1u);
    EXPECT_EQ(ch.busyTicks(), nsToTicks(60));
}

TEST(Channel, BackToBackTransactionsSerialize)
{
    EventQueue eq;
    Channel ch(eq, nsToTicks(10), 0, 1);
    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i)
        ch.request(0, 1, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], nsToTicks(10));
    EXPECT_EQ(done[1], nsToTicks(20));
    EXPECT_EQ(done[2], nsToTicks(30));
}

TEST(Channel, RoundRobinIsFairUnderContention)
{
    EventQueue eq;
    Channel ch(eq, nsToTicks(10), 0, 3);
    // Saturate all three ports.
    for (unsigned p = 0; p < 3; ++p)
        for (int i = 0; i < 100; ++i)
            ch.request(p, 1, [] {});
    eq.runAll();
    const auto &g = ch.grants();
    EXPECT_EQ(g[0], 100u);
    EXPECT_EQ(g[1], 100u);
    EXPECT_EQ(g[2], 100u);
    // And the interleaving must be round-robin: check via busy time.
    EXPECT_EQ(ch.busyTicks(), nsToTicks(3000));
}

TEST(Channel, AddPortGrowsArbiter)
{
    EventQueue eq;
    Channel ch(eq, nsToTicks(1), 0, 1);
    EXPECT_EQ(ch.addPort(), 1u);
    EXPECT_EQ(ch.addPort(), 2u);
    int done = 0;
    ch.request(2, 1, [&] { ++done; });
    eq.runAll();
    EXPECT_EQ(done, 1);
}

TEST(CciFabric, FetchLatencyIncludesPropagation)
{
    EventQueue eq;
    UpiCost upi;
    CciFabric fabric(eq, IfaceKind::Upi, 1, upi);
    Tick done_at = 0;
    fabric.port(0).fetch(1, [&] { done_at = eq.now(); });
    eq.runAll();
    // channel (txnOverhead + 1 line) + 400ns fetch latency.
    EXPECT_EQ(done_at, upi.txnOverhead + upi.lineService + upi.fetchLatency);
}

TEST(CciFabric, LlcPollModeAddsLatency)
{
    EventQueue eq;
    UpiCost upi;
    CciFabric f1(eq, IfaceKind::Upi, 1, upi);
    Tick local = 0, llc = 0;
    f1.port(0).fetch(1, [&] { local = eq.now(); });
    eq.runAll();
    EventQueue eq2;
    CciFabric f2(eq2, IfaceKind::Upi, 1, upi);
    f2.port(0).setPollMode(PollMode::Llc);
    f2.port(0).fetch(1, [&] { llc = eq2.now(); });
    eq2.runAll();
    EXPECT_EQ(llc, local + upi.llcPollExtra);
}

TEST(CciFabric, OutstandingWindowLimitsPipelining)
{
    EventQueue eq;
    UpiCost upi;
    upi.maxOutstanding = 2;
    CciFabric fabric(eq, IfaceKind::Upi, 1, upi);
    int completions = 0;
    for (int i = 0; i < 5; ++i)
        fabric.port(0).fetch(1, [&] { ++completions; });
    // Two issued, three stalled behind the window.
    EXPECT_EQ(fabric.port(0).stalls(), 3u);
    eq.runAll();
    EXPECT_EQ(completions, 5);
}

TEST(CciFabric, PcieDoorbellLatencyExceedsUpi)
{
    UpiCost upi;
    PcieCost pcie;
    EXPECT_GT(hostTxBaseLatency(IfaceKind::Doorbell, upi, pcie),
              hostTxBaseLatency(IfaceKind::Upi, upi, pcie));
    EXPECT_GT(hostTxBaseLatency(IfaceKind::MmioWrite, upi, pcie),
              hostTxBaseLatency(IfaceKind::Upi, upi, pcie));
}

TEST(CostModel, CpuCostOrderingMatchesFig10)
{
    UpiCost upi;
    PcieCost pcie;
    // Per-request CPU cost must yield the Fig. 10 per-core throughput
    // ordering: MMIO ~ doorbell < doorbell batched < UPI.
    const Tick mmio = hostTxCpuCost(IfaceKind::MmioWrite, 1, upi, pcie);
    const Tick db = hostTxCpuCost(IfaceKind::Doorbell, 1, upi, pcie);
    const Tick db11 = hostTxCpuCost(IfaceKind::DoorbellBatch, 11, upi, pcie);
    const Tick upi1 = hostTxCpuCost(IfaceKind::Upi, 1, upi, pcie);
    const Tick upi4 = hostTxCpuCost(IfaceKind::Upi, 4, upi, pcie);
    EXPECT_GT(mmio, db11);
    EXPECT_GT(db, db11);
    EXPECT_GT(upi1, upi4);
    EXPECT_LT(upi4, db11);
}

TEST(CostModel, BatchingMonotonicallyReducesDoorbellCost)
{
    UpiCost upi;
    PcieCost pcie;
    Tick prev = hostTxCpuCost(IfaceKind::DoorbellBatch, 1, upi, pcie);
    for (unsigned b = 2; b <= 16; ++b) {
        Tick cur = hostTxCpuCost(IfaceKind::DoorbellBatch, b, upi, pcie);
        EXPECT_LE(cur, prev) << "b=" << b;
        prev = cur;
    }
}

TEST(CostModel, IfaceNamesAreStable)
{
    EXPECT_STREQ(ifaceName(IfaceKind::Upi), "UPI");
    EXPECT_STREQ(ifaceName(IfaceKind::MmioWrite), "MMIO");
    EXPECT_STREQ(ifaceName(IfaceKind::Doorbell), "Doorbell");
    EXPECT_STREQ(ifaceName(IfaceKind::DoorbellBatch), "DoorbellBatch");
}

TEST(CciFabric, ArbiterSharesFairlyBetweenTwoNics)
{
    EventQueue eq;
    CciFabric fabric(eq, IfaceKind::Upi, 2);
    int a = 0, b = 0;
    for (int i = 0; i < 200; ++i) {
        fabric.port(0).fetch(1, [&] { ++a; });
        fabric.port(1).fetch(1, [&] { ++b; });
    }
    eq.runAll();
    EXPECT_EQ(a, 200);
    EXPECT_EQ(b, 200);
    EXPECT_EQ(fabric.toNicChannel().grants()[0],
              fabric.toNicChannel().grants()[1]);
}

} // namespace
