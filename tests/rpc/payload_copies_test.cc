/**
 * @file
 * Zero-copy steady-state accounting: across a full echo pipeline
 * (client API -> TX ring -> NIC fetch -> switch -> RX -> reassembly ->
 * server handler -> response path -> completion), the payload bytes
 * are copied O(1) times per RPC — at the client API edge — no matter
 * how many frames the message spans or how many hops the frames take.
 * Handle passes, by contrast, scale with the hop/frame count.
 *
 * The proto::payloadStats() counters are process-global and monotonic;
 * every measurement below is a delta across one run.
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "bench/harness.hh"
#include "proto/payload.hh"

namespace {

using namespace dagger;

struct RunStats
{
    double bytesPerRpc = 0;
    double passesPerRpc = 0;
    std::uint64_t completions = 0;
};

/** Run a closed-loop echo at @p payload bytes and return per-RPC deltas. */
RunStats
runEcho(std::size_t payload)
{
    bench::EchoRig::Options opt;
    opt.threads = 1;
    opt.payload = payload;
    const unsigned window = 8;

    bench::EchoRig rig(opt);
    const proto::PayloadStats before = proto::payloadStats();
    rig.saturate(window, sim::msToTicks(1), sim::msToTicks(4));
    const proto::PayloadStats after = proto::payloadStats();

    RunStats out;
    out.completions = rig.client(0).responses();
    EXPECT_GT(out.completions, 100u) << payload;
    out.bytesPerRpc =
        static_cast<double>(after.bytesCopied - before.bytesCopied) /
        static_cast<double>(out.completions);
    out.passesPerRpc =
        static_cast<double>(after.handlePasses - before.handlePasses) /
        static_cast<double>(out.completions);
    return out;
}

TEST(PayloadCopies, OneCopyPerRpcAtTheApiEdge)
{
    // 96 B payload = 2 frames.  The only counted copy is the client's
    // PayloadBuf construction (96 B per call); reassembly adopts the
    // buffer and the echo handler passes the handle back.  In-flight
    // calls at measurement end give the small upper slack.
    const RunStats r = runEcho(96);
    EXPECT_GE(r.bytesPerRpc, 96.0);
    EXPECT_LE(r.bytesPerRpc, 96.0 * 1.1);
}

TEST(PayloadCopies, CopiesScaleWithPayloadNotWithFrameCount)
{
    // 960 B spans 20 frames vs 96 B spanning 2: ten times the frames
    // and the same pipeline depth must cost exactly ten times the
    // copied bytes (still the one API-edge copy) — if any hop copied
    // per frame, this ratio would blow past 10.
    const RunStats small = runEcho(96);
    const RunStats large = runEcho(960);
    const double ratio = large.bytesPerRpc / small.bytesPerRpc;
    EXPECT_GT(ratio, 9.0);
    EXPECT_LT(ratio, 11.0);

    // Handle passes are where the hops show up: a 20-frame message is
    // sliced into 10x the views, so passes/RPC must grow with frame
    // count while bytes/RPC stayed put.
    EXPECT_GT(large.passesPerRpc, small.passesPerRpc * 2.0);
}

TEST(PayloadCopies, HandlePassesDominateCopiesOnTheHotPath)
{
    // Steady state moves handles, not bytes: passes per RPC must be
    // several per hop (frames + message-level handle copies), and the
    // per-RPC copied bytes must stay within the payload-size bound
    // proved above — together these pin the zero-copy invariant.
    const RunStats r = runEcho(480); // 10 frames
    EXPECT_GT(r.passesPerRpc, 4.0);
    EXPECT_LE(r.bytesPerRpc, 480.0 * 1.1);
}

} // namespace
