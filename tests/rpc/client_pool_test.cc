/**
 * @file
 * RpcClientPool tests: per-flow client provisioning, concurrent calls
 * from a pool, aggregate statistics (§4.2: "The RpcClientPool
 * encapsulates a pool of RPC clients that concurrently call remote
 * procedures registered in the corresponding RpcThreadedServer").
 */

#include <gtest/gtest.h>

#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::usToTicks;

struct PoolRig
{
    static constexpr unsigned kFlows = 4;

    PoolRig() : sys(ic::IfaceKind::Upi), cpus(sys.eq(), kFlows + 2)
    {
        nic::NicConfig cfg;
        cfg.numFlows = kFlows;
        cnode = &sys.addNode(cfg);
        snode = &sys.addNode(cfg);

        server = std::make_unique<RpcThreadedServer>(*snode);
        for (unsigned f = 0; f < kFlows; ++f)
            server->addThread(f, cpus.core(1 + f).thread(0));
        server->registerHandler(1, [](const proto::RpcMessage &req) {
            HandlerOutcome out;
            out.response = req.payload();
            out.cost = sim::nsToTicks(40);
            return out;
        });

        pool = std::make_unique<RpcClientPool>(*cnode);
        for (unsigned f = 0; f < kFlows; ++f) {
            auto &cli = pool->addClient(f, cpus.core(0).thread(f % 2));
            cli.setConnection(
                sys.connect(*cnode, f, *snode, f, nic::LbScheme::Static));
        }
    }

    DaggerSystem sys;
    CpuSet cpus;
    DaggerNode *cnode;
    DaggerNode *snode;
    std::unique_ptr<RpcThreadedServer> server;
    std::unique_ptr<RpcClientPool> pool;
};

TEST(RpcClientPool, ProvisionsOneClientPerFlow)
{
    PoolRig rig;
    EXPECT_EQ(rig.pool->size(), PoolRig::kFlows);
    for (unsigned f = 0; f < PoolRig::kFlows; ++f)
        EXPECT_EQ(rig.pool->client(f).flow(), f);
    EXPECT_EQ(&rig.pool->node(), rig.cnode);
}

TEST(RpcClientPool, ConcurrentCallsAcrossFlowsAllComplete)
{
    PoolRig rig;
    std::uint64_t done = 0;
    for (int i = 0; i < 40; ++i) {
        std::uint64_t v = i;
        rig.pool->client(i % PoolRig::kFlows)
            .callPod(1, v, [&](const proto::RpcMessage &) { ++done; });
    }
    rig.sys.eq().runFor(usToTicks(300));
    EXPECT_EQ(done, 40u);
    EXPECT_EQ(rig.pool->totalResponses(), 40u);
    // Every server thread served its static flow.
    for (unsigned f = 0; f < PoolRig::kFlows; ++f)
        EXPECT_EQ(rig.server->serverThread(f).processed(), 10u);
}

TEST(RpcClientPool, AggregateLatencyMergesAllClients)
{
    PoolRig rig;
    for (int i = 0; i < 20; ++i) {
        std::uint64_t v = i;
        rig.pool->client(i % PoolRig::kFlows).callPod(1, v);
    }
    rig.sys.eq().runFor(usToTicks(300));
    sim::Histogram agg = rig.pool->aggregateLatency();
    EXPECT_EQ(agg.count(), 20u);
    std::uint64_t sum = 0;
    for (unsigned f = 0; f < PoolRig::kFlows; ++f)
        sum += rig.pool->client(f).latency().count();
    EXPECT_EQ(sum, 20u);
    // Aggregate median is a plausible RTT.
    EXPECT_GT(agg.percentile(50), usToTicks(1.0));
    EXPECT_LT(agg.percentile(50), usToTicks(10.0));
}

TEST(RpcClientPool, FlowsAreIndependentUnderImbalance)
{
    PoolRig rig;
    // Flood flow 0 only; flow 3 stays fast.
    std::uint64_t done0 = 0, done3 = 0;
    for (int i = 0; i < 200; ++i) {
        std::uint64_t v = i;
        rig.pool->client(0).callPod(
            1, v, [&](const proto::RpcMessage &) { ++done0; });
    }
    std::uint64_t v3 = 7;
    rig.pool->client(3).callPod(
        1, v3, [&](const proto::RpcMessage &) { ++done3; });
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(done3, 1u); // not stuck behind flow 0's backlog
    rig.sys.eq().runFor(usToTicks(500));
    EXPECT_EQ(done0, 200u);
}

} // namespace
