/**
 * @file
 * RpcClientPool tests: per-flow client provisioning, concurrent calls
 * from a pool, aggregate statistics (§4.2: "The RpcClientPool
 * encapsulates a pool of RPC clients that concurrently call remote
 * procedures registered in the corresponding RpcThreadedServer").
 */

#include <gtest/gtest.h>

#include "net/fault_injector.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::usToTicks;

struct PoolRig
{
    static constexpr unsigned kFlows = 4;

    PoolRig() : sys(ic::IfaceKind::Upi), cpus(sys.eq(), kFlows + 2)
    {
        nic::NicConfig cfg;
        cfg.numFlows = kFlows;
        cnode = &sys.addNode(cfg);
        snode = &sys.addNode(cfg);

        server = std::make_unique<RpcThreadedServer>(*snode);
        for (unsigned f = 0; f < kFlows; ++f)
            server->addThread(f, cpus.core(1 + f).thread(0));
        server->registerHandler(1, [](const proto::RpcMessage &req) {
            HandlerOutcome out;
            out.response = req.payload();
            out.cost = sim::nsToTicks(40);
            return out;
        });

        pool = std::make_unique<RpcClientPool>(*cnode);
        for (unsigned f = 0; f < kFlows; ++f) {
            auto &cli = pool->addClient(f, cpus.core(0).thread(f % 2));
            cli.setConnection(
                sys.connect(*cnode, f, *snode, f, nic::LbScheme::Static));
        }
    }

    DaggerSystem sys;
    CpuSet cpus;
    DaggerNode *cnode;
    DaggerNode *snode;
    std::unique_ptr<RpcThreadedServer> server;
    std::unique_ptr<RpcClientPool> pool;
};

TEST(RpcClientPool, ProvisionsOneClientPerFlow)
{
    PoolRig rig;
    EXPECT_EQ(rig.pool->size(), PoolRig::kFlows);
    for (unsigned f = 0; f < PoolRig::kFlows; ++f)
        EXPECT_EQ(rig.pool->client(f).flow(), f);
    EXPECT_EQ(&rig.pool->node(), rig.cnode);
}

TEST(RpcClientPool, ConcurrentCallsAcrossFlowsAllComplete)
{
    PoolRig rig;
    std::uint64_t done = 0;
    for (int i = 0; i < 40; ++i) {
        std::uint64_t v = i;
        rig.pool->client(i % PoolRig::kFlows)
            .callPod(1, v, [&](const proto::RpcMessage &) { ++done; });
    }
    rig.sys.eq().runFor(usToTicks(300));
    EXPECT_EQ(done, 40u);
    EXPECT_EQ(rig.pool->totalResponses(), 40u);
    // Every server thread served its static flow.
    for (unsigned f = 0; f < PoolRig::kFlows; ++f)
        EXPECT_EQ(rig.server->serverThread(f).processed(), 10u);
}

TEST(RpcClientPool, AggregateLatencyMergesAllClients)
{
    PoolRig rig;
    for (int i = 0; i < 20; ++i) {
        std::uint64_t v = i;
        rig.pool->client(i % PoolRig::kFlows).callPod(1, v);
    }
    rig.sys.eq().runFor(usToTicks(300));
    sim::Histogram agg = rig.pool->aggregateLatency();
    EXPECT_EQ(agg.count(), 20u);
    std::uint64_t sum = 0;
    for (unsigned f = 0; f < PoolRig::kFlows; ++f)
        sum += rig.pool->client(f).latency().count();
    EXPECT_EQ(sum, 20u);
    // Aggregate median is a plausible RTT.
    EXPECT_GT(agg.percentile(50), usToTicks(1.0));
    EXPECT_LT(agg.percentile(50), usToTicks(10.0));
}

TEST(RpcClientPool, FlowsAreIndependentUnderImbalance)
{
    PoolRig rig;
    // Flood flow 0 only; flow 3 stays fast.
    std::uint64_t done0 = 0, done3 = 0;
    for (int i = 0; i < 200; ++i) {
        std::uint64_t v = i;
        rig.pool->client(0).callPod(
            1, v, [&](const proto::RpcMessage &) { ++done0; });
    }
    std::uint64_t v3 = 7;
    rig.pool->client(3).callPod(
        1, v3, [&](const proto::RpcMessage &) { ++done3; });
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(done3, 1u); // not stuck behind flow 0's backlog
    rig.sys.eq().runFor(usToTicks(500));
    EXPECT_EQ(done0, 200u);
}

// Regression: setBestEffort(true) must not wedge response processing
// for good.  The pre-fix toggle cleared the rx notify hook but never
// reinstalled it (and could leave _rxScheduled latched), so after
// switching best-effort back off no response was ever processed again.
TEST(RpcClient, BestEffortToggleRestoresResponseProcessing)
{
    PoolRig rig;
    RpcClient &cli = rig.pool->client(0);

    cli.setBestEffort(true);
    for (int i = 0; i < 5; ++i) {
        std::uint64_t v = i;
        cli.callPod(1, v); // fire-and-forget; responses pile up
    }
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(cli.responses(), 0u); // nothing tracked, nothing drained

    cli.setBestEffort(false);
    rig.sys.eq().runFor(usToTicks(100));
    // The piled-up best-effort responses drained (as orphans: they
    // were never tracked)...
    EXPECT_EQ(cli.orphanResponses(), 5u);

    // ...and, critically, a new tracked call completes.
    std::uint64_t done = 0;
    std::uint64_t v = 77;
    cli.callPod(1, v, [&](const proto::RpcMessage &resp) {
        std::uint64_t out = 0;
        ASSERT_TRUE(resp.payloadAs(out));
        EXPECT_EQ(out, 77u);
        ++done;
    });
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(done, 1u);
    EXPECT_EQ(cli.responses(), 1u);
}

TEST(RpcClient, RetryResendsLostRequestAndCompletesOk)
{
    PoolRig rig;
    net::FaultInjector fi(rig.sys.eq());
    fi.install(rig.sys.tor().attach(rig.snode->id()));
    fi.scriptDrop(1); // lose the first copy of the request

    RpcClient &cli = rig.pool->client(0);
    rpc::RetryPolicy policy;
    policy.timeout = usToTicks(30);
    policy.maxRetries = 3;
    cli.setRetryPolicy(policy);

    std::uint64_t ok = 0;
    std::uint64_t v = 21;
    cli.callPodStatus(1, v,
                      [&](CallStatus st, const proto::RpcMessage &resp) {
                          EXPECT_EQ(st, CallStatus::Ok);
                          std::uint64_t out = 0;
                          ASSERT_TRUE(resp.payloadAs(out));
                          EXPECT_EQ(out, 21u);
                          ++ok;
                      });
    rig.sys.eq().runFor(usToTicks(300));

    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(cli.retriesSent(), 1u);
    EXPECT_EQ(cli.timeouts(), 0u);
    EXPECT_EQ(cli.pendingCalls(), 0u);
    // The system-wide reliability counters saw the retry + completion.
    const std::string json = rig.sys.metrics().renderJson();
    EXPECT_NE(json.find("\"rpc.reliability.retries\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"rpc.reliability.timeouts\": 0"),
              std::string::npos);
}

TEST(RpcClient, RetryBudgetExhaustionSurfacesTimedOut)
{
    PoolRig rig;
    net::FaultSpec spec;
    spec.dropP = 1.0; // a dead link: nothing reaches the server
    net::FaultInjector fi(rig.sys.eq(), spec);
    fi.install(rig.sys.tor().attach(rig.snode->id()));

    RpcClient &cli = rig.pool->client(0);
    rpc::RetryPolicy policy;
    policy.timeout = usToTicks(20);
    policy.maxRetries = 2;
    cli.setRetryPolicy(policy);

    std::uint64_t timed_out = 0;
    std::uint64_t v = 3;
    cli.callPodStatus(1, v,
                      [&](CallStatus st, const proto::RpcMessage &resp) {
                          EXPECT_EQ(st, CallStatus::TimedOut);
                          EXPECT_EQ(resp.payloadLen(), 0u); // empty
                          ++timed_out;
                      });
    rig.sys.eq().runFor(usToTicks(500));

    EXPECT_EQ(timed_out, 1u); // fired exactly once, not per retry
    EXPECT_EQ(cli.timeouts(), 1u);
    EXPECT_EQ(cli.retriesSent(), 2u);
    EXPECT_EQ(cli.pendingCalls(), 0u); // reclaimed, no silent orphan
}

TEST(RpcClient, LateResponseAfterTimeoutIsAccountedNotOrphaned)
{
    PoolRig rig;
    net::FaultInjector fi(rig.sys.eq());
    fi.install(rig.sys.tor().attach(rig.cnode->id()));
    fi.scriptDelay(1, usToTicks(100)); // hold the response way too long

    RpcClient &cli = rig.pool->client(0);
    rpc::RetryPolicy policy;
    policy.timeout = usToTicks(20);
    policy.maxRetries = 0; // no resends: time out on first expiry
    cli.setRetryPolicy(policy);

    std::uint64_t timed_out = 0;
    std::uint64_t v = 9;
    cli.callPodStatus(1, v,
                      [&](CallStatus st, const proto::RpcMessage &) {
                          if (st == CallStatus::TimedOut)
                              ++timed_out;
                      });
    rig.sys.eq().runFor(usToTicks(500));

    EXPECT_EQ(timed_out, 1u);
    // The response eventually arrived — after the call completed as
    // timed out.  It is accounted as late, never as an unknown orphan,
    // and the continuation did not fire a second time.
    EXPECT_EQ(cli.lateResponses(), 1u);
    EXPECT_EQ(cli.orphanResponses(), 0u);
}

TEST(RpcClient, ExponentialBackoffStretchesRetryGaps)
{
    PoolRig rig;
    net::FaultSpec spec;
    spec.dropP = 1.0;
    net::FaultInjector fi(rig.sys.eq(), spec);
    fi.install(rig.sys.tor().attach(rig.snode->id()));

    RpcClient &cli = rig.pool->client(0);
    rpc::RetryPolicy policy;
    policy.timeout = usToTicks(10);
    policy.maxRetries = 3;
    policy.backoff = 2.0;
    policy.maxTimeout = usToTicks(25); // cap bites on the last gap
    cli.setRetryPolicy(policy);

    sim::Tick finished = 0;
    std::uint64_t v = 1;
    cli.callPodStatus(1, v,
                      [&](CallStatus, const proto::RpcMessage &) {
                          finished = rig.sys.eq().now();
                      });
    rig.sys.eq().runFor(usToTicks(500));

    // Gaps: 10, 20, 25 (capped from 40), 25 (capped from 80) -> 80us,
    // measured from when the first copy reached the TX ring (the
    // timeout clock starts at sentAt, not at issue time), so the total
    // is 80us plus the sub-microsecond first-send CPU cost.
    EXPECT_GT(finished, usToTicks(80));
    EXPECT_LT(finished, usToTicks(81));
    EXPECT_EQ(cli.retriesSent(), 3u);
    EXPECT_EQ(cli.timeouts(), 1u);
}

} // namespace
