/**
 * @file
 * CPU model tests: serialization on a hardware thread, SMT penalty,
 * logical-thread placement.
 */

#include <gtest/gtest.h>

#include "rpc/cpu.hh"
#include "sim/event_queue.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::EventQueue;
using sim::nsToTicks;
using sim::Tick;

TEST(CpuCore, WorkSerializesOnOneThread)
{
    EventQueue eq;
    CpuCore core(eq, 0);
    std::vector<Tick> done;
    core.thread(0).execute(nsToTicks(100), [&] { done.push_back(eq.now()); });
    core.thread(0).execute(nsToTicks(100), [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], nsToTicks(100));
    EXPECT_EQ(done[1], nsToTicks(200));
}

TEST(CpuCore, SiblingsContendViaSmtPenalty)
{
    EventQueue eq;
    CpuCore core(eq, 0, 1.6);
    Tick t0_done = 0, t1_done = 0;
    core.thread(0).execute(nsToTicks(100), [&] { t0_done = eq.now(); });
    core.thread(1).execute(nsToTicks(100), [&] { t1_done = eq.now(); });
    eq.runAll();
    // Thread 0 issued first with an idle sibling: full speed.
    EXPECT_EQ(t0_done, nsToTicks(100));
    // Thread 1 overlaps thread 0: 1.6x slower.
    EXPECT_EQ(t1_done, nsToTicks(160));
}

TEST(CpuCore, NoContentionWhenSequential)
{
    EventQueue eq;
    CpuCore core(eq, 0, 1.6);
    Tick t1_done = 0;
    core.thread(0).execute(nsToTicks(100), [&] {});
    eq.runAll();
    core.thread(1).execute(nsToTicks(100), [&] { t1_done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(t1_done, nsToTicks(200));
}

TEST(CpuCore, UtilizationAccounting)
{
    EventQueue eq;
    CpuCore core(eq, 0);
    core.thread(0).execute(nsToTicks(300), [] {});
    eq.runAll();
    EXPECT_NEAR(core.utilization(nsToTicks(600)), 0.5, 1e-9);
}

TEST(CpuSet, LogicalThreadPlacementMatchesPaper)
{
    EventQueue eq;
    CpuSet cpus(eq, 4);
    // "4 threads on 2 physical cores": threads 0,1 on core 0; 2,3 on 1.
    EXPECT_EQ(&cpus.logicalThread(0), &cpus.core(0).thread(0));
    EXPECT_EQ(&cpus.logicalThread(1), &cpus.core(0).thread(1));
    EXPECT_EQ(&cpus.logicalThread(2), &cpus.core(1).thread(0));
    EXPECT_EQ(&cpus.logicalThread(7), &cpus.core(3).thread(1));
}

TEST(CpuSetDeath, TooManyLogicalThreads)
{
    EventQueue eq;
    CpuSet cpus(eq, 2);
    EXPECT_DEATH(cpus.logicalThread(4), "exceeds core count");
}

TEST(HwThread, IdleReflectsBusyUntil)
{
    EventQueue eq;
    CpuCore core(eq, 0);
    EXPECT_TRUE(core.thread(0).idle());
    core.thread(0).execute(nsToTicks(50), [] {});
    EXPECT_FALSE(core.thread(0).idle());
    eq.runAll();
    EXPECT_TRUE(core.thread(0).idle());
}

} // namespace
