/**
 * @file
 * Full-stack integration tests: RPCs flow client software -> TX ring
 * -> NIC RX FSM -> CCI-P -> RPC pipeline -> ToR switch -> server NIC
 * -> RX ring -> dispatch thread -> handler -> response all the way
 * back.  Checks payload integrity, request conservation, latency
 * plausibility, threading models, and multi-frame RPCs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::usToTicks;

constexpr proto::FnId kEcho = 1;
constexpr proto::FnId kUpper = 2;

/** Standard two-node echo rig. */
struct Rig
{
    explicit Rig(ic::IfaceKind iface = ic::IfaceKind::Upi,
                 unsigned soft_batch = 1)
        : sys(iface), cpus(sys.eq(), 4)
    {
        nic::NicConfig cfg;
        cfg.numFlows = 2;
        cfg.iface = iface;
        nic::SoftConfig soft;
        soft.batchSize = soft_batch;
        soft.autoBatch = soft_batch == 0;
        if (soft.autoBatch)
            soft.batchSize = 1;

        clientNode = &sys.addNode(cfg, soft);
        serverNode = &sys.addNode(cfg, soft);

        client = std::make_unique<RpcClient>(*clientNode, 0,
                                             cpus.core(0).thread(0));
        server = std::make_unique<RpcThreadedServer>(*serverNode);
        srvThread = &server->addThread(0, cpus.core(1).thread(0));

        conn = sys.connect(*clientNode, 0, *serverNode, 0,
                           nic::LbScheme::Static);
        client->setConnection(conn);

        server->registerHandler(kEcho, [](const proto::RpcMessage &req) {
            HandlerOutcome out;
            out.response = req.payload();
            out.cost = sim::nsToTicks(50);
            return out;
        });
        server->registerHandler(kUpper, [](const proto::RpcMessage &req) {
            HandlerOutcome out;
            // A transforming handler is a genuine copy boundary: pull
            // the bytes out of the immutable buffer, rewrite, rewrap.
            std::vector<std::uint8_t> up(
                req.payload().data(),
                req.payload().data() + req.payload().size());
            for (auto &b : up)
                b = static_cast<std::uint8_t>(
                    std::toupper(static_cast<int>(b)));
            out.response = proto::PayloadBuf(up.data(), up.size());
            out.cost = sim::nsToTicks(120);
            return out;
        });
    }

    DaggerSystem sys;
    CpuSet cpus;
    DaggerNode *clientNode;
    DaggerNode *serverNode;
    std::unique_ptr<RpcClient> client;
    std::unique_ptr<RpcThreadedServer> server;
    RpcServerThread *srvThread;
    proto::ConnId conn;
};

TEST(EndToEnd, EchoRoundTripPreservesPayload)
{
    Rig rig;
    std::string got;
    const char payload[] = "hello dagger";
    rig.client->callAsync(kEcho, payload, sizeof(payload),
                          [&](const proto::RpcMessage &resp) {
                              got.assign(reinterpret_cast<const char *>(
                                             resp.payload().data()),
                                         resp.payload().size());
                          });
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(got, std::string(payload, sizeof(payload)));
    EXPECT_EQ(rig.client->responses(), 1u);
    EXPECT_EQ(rig.srvThread->processed(), 1u);
}

TEST(EndToEnd, HandlerActuallyTransforms)
{
    Rig rig;
    std::string got;
    const char payload[] = "abc";
    rig.client->callAsync(kUpper, payload, 3,
                          [&](const proto::RpcMessage &resp) {
                              got.assign(reinterpret_cast<const char *>(
                                             resp.payload().data()),
                                         3);
                          });
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(got, "ABC");
}

TEST(EndToEnd, RttIsMicrosecondScale)
{
    Rig rig(ic::IfaceKind::Upi, 1);
    std::uint64_t done = 0;
    // Send a few pipelined requests.
    for (int i = 0; i < 8; ++i) {
        std::uint64_t v = i;
        rig.client->callPod(kEcho, v,
                            [&](const proto::RpcMessage &) { ++done; });
    }
    rig.sys.eq().runFor(usToTicks(200));
    EXPECT_EQ(done, 8u);
    const auto p50 = rig.client->latency().percentile(50);
    // The paper's B=1 median RTT is 1.8us; accept a broad sanity band.
    EXPECT_GT(p50, usToTicks(0.8));
    EXPECT_LT(p50, usToTicks(6.0));
}

TEST(EndToEnd, ManyRequestsAllComplete)
{
    Rig rig(ic::IfaceKind::Upi, 4);
    std::uint64_t done = 0;
    constexpr int kN = 2000;
    // Pace sends to ~1 Mrps so rings never overflow.
    for (int i = 0; i < kN; ++i) {
        rig.sys.eq().scheduleAt(usToTicks(i), [&] {
            std::uint64_t v = 1;
            rig.client->callPod(kEcho, v,
                                [&](const proto::RpcMessage &) { ++done; });
        });
    }
    rig.sys.eq().runFor(usToTicks(kN + 200));
    EXPECT_EQ(done, static_cast<std::uint64_t>(kN));
    EXPECT_EQ(rig.client->sendFailures(), 0u);
    EXPECT_EQ(rig.serverNode->nicDev().monitor().drops(), 0u);
    // Conservation: every request the server NIC saw came from us.
    EXPECT_EQ(rig.serverNode->nicDev().monitor().rpcsIn.value(),
              static_cast<std::uint64_t>(kN));
}

TEST(EndToEnd, MultiFrameRpcRoundTrips)
{
    Rig rig;
    std::string big(500, 'x');
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<char>('a' + i % 26);
    std::string got;
    rig.client->callAsync(kEcho, big.data(), big.size(),
                          [&](const proto::RpcMessage &resp) {
                              got.assign(reinterpret_cast<const char *>(
                                             resp.payload().data()),
                                         resp.payload().size());
                          });
    rig.sys.eq().runFor(usToTicks(200));
    EXPECT_EQ(got, big);
}

TEST(EndToEnd, CompletionQueueCollectsWhenNoCallback)
{
    Rig rig;
    std::uint64_t v = 99;
    rig.client->callPod(kEcho, v);
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(rig.client->completions().size(), 1u);
    proto::RpcMessage resp;
    ASSERT_TRUE(rig.client->completions().pop(resp));
    std::uint64_t out = 0;
    ASSERT_TRUE(resp.payloadAs(out));
    EXPECT_EQ(out, 99u);
}

TEST(EndToEnd, WorkerPoolModelStillCorrect)
{
    Rig rig;
    WorkerPool pool(rig.sys, {&rig.cpus.core(2).thread(0),
                              &rig.cpus.core(2).thread(1)});
    rig.server->setWorkerPool(&pool);
    std::uint64_t done = 0;
    for (int i = 0; i < 50; ++i) {
        std::uint64_t v = i;
        rig.client->callPod(kEcho, v,
                            [&](const proto::RpcMessage &) { ++done; });
    }
    rig.sys.eq().runFor(usToTicks(500));
    EXPECT_EQ(done, 50u);
    EXPECT_EQ(pool.submitted(), 50u);
}

TEST(EndToEnd, WorkerModelAddsLatency)
{
    auto median_for = [](bool worker) {
        Rig rig;
        WorkerPool pool(rig.sys, {&rig.cpus.core(2).thread(0)});
        if (worker)
            rig.server->setWorkerPool(&pool);
        for (int i = 0; i < 20; ++i) {
            rig.sys.eq().scheduleAt(usToTicks(i * 10), [&rig] {
                std::uint64_t v = 1;
                rig.client->callPod(kEcho, v);
            });
        }
        rig.sys.eq().runFor(usToTicks(1000));
        return rig.client->latency().percentile(50);
    };
    const auto dispatch_p50 = median_for(false);
    const auto worker_p50 = median_for(true);
    // §5.7: worker threading costs latency (handoff + queueing).
    EXPECT_GT(worker_p50, dispatch_p50 + usToTicks(1.0));
}

TEST(EndToEnd, UnhandledFnIsCountedNotFatal)
{
    Rig rig;
    std::uint64_t v = 0;
    rig.client->callPod(static_cast<proto::FnId>(77), v);
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(rig.srvThread->unhandled(), 1u);
    EXPECT_EQ(rig.client->responses(), 0u);
}

TEST(EndToEnd, TwoClientsTwoFlows)
{
    Rig rig;
    RpcClient client2(*rig.clientNode, 1, rig.cpus.core(0).thread(1));
    auto conn2 = rig.sys.connect(*rig.clientNode, 1, *rig.serverNode, 0,
                                 nic::LbScheme::Static);
    client2.setConnection(conn2);
    std::uint64_t d1 = 0, d2 = 0;
    for (int i = 0; i < 30; ++i) {
        std::uint64_t v = i;
        rig.client->callPod(kEcho, v,
                            [&](const proto::RpcMessage &) { ++d1; });
        client2.callPod(kEcho, v,
                        [&](const proto::RpcMessage &) { ++d2; });
    }
    rig.sys.eq().runFor(usToTicks(500));
    EXPECT_EQ(d1, 30u);
    EXPECT_EQ(d2, 30u);
}

TEST(EndToEnd, RoundRobinLbSpreadsAcrossServerFlows)
{
    Rig rig;
    // Re-register the echo handler on a second server thread/flow.
    auto &t2 = rig.server->addThread(1, rig.cpus.core(3).thread(0));
    t2.registerHandler(kEcho, [](const proto::RpcMessage &req) {
        HandlerOutcome out;
        out.response = req.payload();
        out.cost = sim::nsToTicks(50);
        return out;
    });
    auto conn_rr = rig.sys.connect(*rig.clientNode, 0, *rig.serverNode, 0,
                                   nic::LbScheme::RoundRobin);
    std::uint64_t done = 0;
    for (int i = 0; i < 40; ++i) {
        std::uint64_t v = i;
        rig.client->callAsyncOn(conn_rr, kEcho, &v, sizeof(v),
                                [&](const proto::RpcMessage &) { ++done; });
    }
    rig.sys.eq().runFor(usToTicks(500));
    EXPECT_EQ(done, 40u);
    // Both server threads got work.
    EXPECT_GT(rig.srvThread->processed(), 0u);
    EXPECT_GT(t2.processed(), 0u);
}

TEST(EndToEnd, AllIfaceKindsDeliver)
{
    for (auto kind : {ic::IfaceKind::MmioWrite, ic::IfaceKind::Doorbell,
                      ic::IfaceKind::DoorbellBatch, ic::IfaceKind::Upi,
                      ic::IfaceKind::Cxl}) {
        Rig rig(kind, 1);
        std::uint64_t done = 0;
        for (int i = 0; i < 10; ++i) {
            std::uint64_t v = i;
            rig.client->callPod(kEcho, v,
                                [&](const proto::RpcMessage &) { ++done; });
        }
        rig.sys.eq().runFor(usToTicks(300));
        EXPECT_EQ(done, 10u) << ic::ifaceName(kind);
    }
}

TEST(EndToEnd, UpiLatencyBeatsDoorbellAndMmio)
{
    auto median_for = [](ic::IfaceKind kind) {
        Rig rig(kind, 1);
        for (int i = 0; i < 20; ++i) {
            rig.sys.eq().scheduleAt(usToTicks(i * 5), [&rig] {
                std::uint64_t v = 1;
                rig.client->callPod(kEcho, v);
            });
        }
        rig.sys.eq().runFor(usToTicks(500));
        return rig.client->latency().percentile(50);
    };
    const auto upi = median_for(ic::IfaceKind::Upi);
    const auto db = median_for(ic::IfaceKind::Doorbell);
    const auto mmio = median_for(ic::IfaceKind::MmioWrite);
    EXPECT_LT(upi, db);
    EXPECT_LT(upi, mmio);
}

} // namespace
