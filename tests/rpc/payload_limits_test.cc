/**
 * @file
 * Payload size limit regression (proto::kMaxPayloadBytes): oversize
 * payloads are a *recoverable* client-path error — CallStatus::Rejected
 * through the status callback, a sendFailures() tick for the rest —
 * never an assert.  The boundary value itself (65535 B, 1366 frames)
 * must travel end to end.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench/harness.hh"
#include "proto/payload.hh"
#include "rpc/client.hh"

namespace {

using namespace dagger;

bench::EchoRig::Options
bigRingOptions()
{
    bench::EchoRig::Options opt;
    opt.threads = 1;
    // A kMaxPayloadBytes message spans 1366 frames; give the rings
    // room so the boundary case exercises the wire, not ring backpressure.
    opt.txRingEntries = 4096;
    opt.rxRingEntries = 4096;
    return opt;
}

TEST(PayloadLimits, OversizeCallIsRejectedRecoverably)
{
    bench::EchoRig rig(bigRingOptions());
    rpc::RpcClient &cli = rig.client(0);
    std::vector<std::uint8_t> data(proto::kMaxPayloadBytes + 1, 0x7e);

    rpc::CallStatus status = rpc::CallStatus::Ok;
    bool fired = false;
    cli.callAsyncStatus(2, data.data(), data.size(),
                        [&](rpc::CallStatus s, const proto::RpcMessage &m) {
                            fired = true;
                            status = s;
                            EXPECT_TRUE(m.payload().empty());
                        });
    // The rejection is synchronous: refused before any simulated work,
    // no rpc id consumed, no pending entry left behind.
    EXPECT_TRUE(fired);
    EXPECT_EQ(status, rpc::CallStatus::Rejected);
    EXPECT_EQ(cli.sendFailures(), 1u);
    EXPECT_EQ(cli.pendingCalls(), 0u);

    // The client remains fully usable: a normal echo completes.
    std::vector<std::uint8_t> ok(64, 0x11);
    bool completed = false;
    cli.callAsync(1, ok.data(), ok.size(),
                  [&](const proto::RpcMessage &resp) {
                      completed = true;
                      EXPECT_TRUE(resp.payload() == ok);
                  });
    rig.system().runFor(sim::msToTicks(2));
    EXPECT_TRUE(completed);
}

TEST(PayloadLimits, OversizeOneWayCountsSendFailure)
{
    bench::EchoRig rig(bigRingOptions());
    rpc::RpcClient &cli = rig.client(0);
    std::vector<std::uint8_t> data(proto::kMaxPayloadBytes + 1, 0x7e);
    cli.callOneWay(3, data.data(), data.size());
    EXPECT_EQ(cli.sendFailures(), 1u);
    EXPECT_EQ(cli.sent(), 0u);
    rig.system().runFor(sim::msToTicks(1)); // nothing scheduled explodes
}

TEST(PayloadLimits, BoundaryPayloadTravelsEndToEnd)
{
    bench::EchoRig rig(bigRingOptions());
    rpc::RpcClient &cli = rig.client(0);
    std::vector<std::uint8_t> data(proto::kMaxPayloadBytes);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 13 + 1);

    bool completed = false;
    cli.callAsync(1, data.data(), data.size(),
                  [&](const proto::RpcMessage &resp) {
                      completed = true;
                      EXPECT_TRUE(resp.payload() == data);
                  });
    rig.system().runFor(sim::msToTicks(20));
    EXPECT_TRUE(completed);
    EXPECT_EQ(cli.sendFailures(), 0u);
}

} // namespace
