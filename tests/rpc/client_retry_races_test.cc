/**
 * @file
 * Regression tests for the two retry-timer races fixed in
 * RpcClient:
 *
 *  1. issueCall used to arm the retry timer at issue time, before the
 *     send lambda had executed — under CPU backlog the timer fired
 *     (and retransmitted) before the first copy ever reached the TX
 *     ring.  The timer now arms from inside the send lambda at
 *     sentAt, and the would-have-fired cases are accounted as
 *     rpc.reliability.spurious_arms.
 *
 *  2. onCallTimeout's resend path used to silently strand the call
 *     when tx.push failed: _sendFailures ticked but the pending entry
 *     sat out a full backoff with nothing in flight.  Resend drops
 *     now arm a short re-attempt timer and count
 *     rpc.reliability.resend_drops.
 */

#include <gtest/gtest.h>

#include "net/fault_injector.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::usToTicks;

/** Two-node rig with configurable rings/batching on the client NIC. */
struct RaceRig
{
    explicit RaceRig(nic::NicConfig client_cfg = {},
                     nic::SoftConfig client_soft = {})
        : sys(ic::IfaceKind::Upi), cpus(sys.eq(), 4)
    {
        client_cfg.numFlows = 1;
        nic::NicConfig server_cfg;
        server_cfg.numFlows = 1;
        cnode = &sys.addNode(client_cfg, client_soft);
        snode = &sys.addNode(server_cfg);

        server = std::make_unique<RpcThreadedServer>(*snode);
        server->addThread(0, cpus.core(1).thread(0));
        server->registerHandler(1, [](const proto::RpcMessage &req) {
            HandlerOutcome out;
            out.response = req.payload();
            out.cost = sim::nsToTicks(40);
            return out;
        });
        // One-way filler traffic: consumed, never answered.
        server->registerHandler(2, [](const proto::RpcMessage &) {
            HandlerOutcome out;
            out.respond = false;
            out.cost = sim::nsToTicks(10);
            return out;
        });

        client = std::make_unique<RpcClient>(*cnode, 0,
                                             cpus.core(0).thread(0));
        client->setConnection(
            sys.connect(*cnode, 0, *snode, 0, nic::LbScheme::Static));
    }

    DaggerSystem sys;
    CpuSet cpus;
    DaggerNode *cnode;
    DaggerNode *snode;
    std::unique_ptr<RpcThreadedServer> server;
    std::unique_ptr<RpcClient> client;
};

TEST(RetryRaces, SaturatedThreadDoesNotFireSpuriousRetransmit)
{
    RaceRig rig;
    RpcClient &cli = *rig.client;
    rpc::RetryPolicy policy;
    policy.timeout = usToTicks(20);
    policy.maxRetries = 3;
    cli.setRetryPolicy(policy);

    // Saturate the client's hardware thread: the send lambda queues
    // behind 100us of CPU work, five times the retry timeout.
    cli.thread().execute(usToTicks(100), [] {});

    std::uint64_t ok = 0;
    std::uint64_t v = 7;
    cli.callPodStatus(1, v,
                      [&](CallStatus st, const proto::RpcMessage &resp) {
                          EXPECT_EQ(st, CallStatus::Ok);
                          std::uint64_t out = 0;
                          ASSERT_TRUE(resp.payloadAs(out));
                          EXPECT_EQ(out, 7u);
                          ++ok;
                      });
    rig.sys.eq().runFor(usToTicks(500));

    // The call completes exactly once, with no retransmit: the timer
    // armed at sentAt (after the backlog drained), not at issue time.
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(cli.retriesSent(), 0u);
    EXPECT_EQ(cli.timeouts(), 0u);
    EXPECT_EQ(cli.pendingCalls(), 0u);
    // The would-have-been-spurious arming is accounted distinctly.
    EXPECT_EQ(cli.spuriousArms(), 1u);
    const std::string json = rig.sys.metrics().renderJson();
    EXPECT_NE(json.find("\"rpc.reliability.spurious_arms\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"rpc.reliability.retries\": 0"),
              std::string::npos);
}

TEST(RetryRaces, FastSendDoesNotCountSpuriousArm)
{
    RaceRig rig;
    RpcClient &cli = *rig.client;
    rpc::RetryPolicy policy;
    policy.timeout = usToTicks(20);
    cli.setRetryPolicy(policy);

    std::uint64_t ok = 0;
    std::uint64_t v = 9;
    cli.callPodStatus(1, v,
                      [&](CallStatus, const proto::RpcMessage &) { ++ok; });
    rig.sys.eq().runFor(usToTicks(200));

    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(cli.spuriousArms(), 0u);
}

TEST(RetryRaces, RingFullResendReattemptsAndDeliversExactlyOnce)
{
    // Tiny TX ring that drains slowly: a large batch with a long
    // batch timeout keeps pushed frames parked in the ring, so the
    // timeout-path resend meets a full ring deterministically.
    nic::NicConfig cfg;
    cfg.txRingEntries = 4;
    nic::SoftConfig soft;
    soft.batchSize = 64;
    soft.autoBatch = false;
    soft.batchTimeout = usToTicks(35);
    RaceRig rig(cfg, soft);

    // Lose the first copy of the tracked request so its retry timer
    // fires while the ring is still full of one-way traffic.
    net::FaultInjector fi(rig.sys.eq());
    fi.install(rig.sys.tor().attach(rig.snode->id()));
    fi.scriptDrop(1);

    RpcClient &cli = *rig.client;
    rpc::RetryPolicy policy;
    policy.timeout = usToTicks(20);
    policy.maxRetries = 5;
    policy.maxTimeout = usToTicks(40);
    cli.setRetryPolicy(policy);

    std::uint64_t ok = 0;
    std::uint64_t v = 13;
    cli.callPodStatus(1, v,
                      [&](CallStatus st, const proto::RpcMessage &resp) {
                          EXPECT_EQ(st, CallStatus::Ok);
                          std::uint64_t out = 0;
                          ASSERT_TRUE(resp.payloadAs(out));
                          EXPECT_EQ(out, 13u);
                          ++ok;
                      });
    // Fill the remaining ring entries with one-way traffic that the
    // batching NIC will not fetch until its batch timeout expires.
    for (int i = 0; i < 3; ++i) {
        std::uint64_t w = 100 + i;
        cli.callOneWay(2, &w, sizeof(w));
    }
    rig.sys.eq().runFor(usToTicks(1000));

    // Eventual delivery, exactly-once completion: the resend that met
    // the full ring re-attempted on the short timer instead of
    // stranding the call for a full backoff.
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(cli.pendingCalls(), 0u);
    EXPECT_EQ(cli.timeouts(), 0u);
    EXPECT_EQ(cli.orphanResponses(), 0u);
    EXPECT_GE(cli.resendDrops(), 1u);
    const std::string json = rig.sys.metrics().renderJson();
    EXPECT_EQ(json.find("\"rpc.reliability.resend_drops\": 0"),
              std::string::npos);
}

} // namespace
