/**
 * @file
 * Report tests: the MetricRegistry-driven reportSystem() must
 * reproduce the legacy hand-walked text byte for byte, and the JSON
 * report must export the hidden detail metrics too.
 *
 * The "legacy" renderer below is a verbatim re-implementation of the
 * pre-registry report code, kept here as the reference the generic
 * registry walk is diffed against.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "ic/cci_fabric.hh"
#include "net/tor_switch.hh"
#include "nic/dagger_nic.hh"
#include "rpc/client.hh"
#include "rpc/report.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::usToTicks;

void
line(std::ostringstream &os, const std::string &key, std::uint64_t value)
{
    os << "  " << key;
    for (std::size_t i = key.size(); i < 28; ++i)
        os << ' ';
    os << value << "\n";
}

void
lineF(std::ostringstream &os, const std::string &key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    os << "  " << key;
    for (std::size_t i = key.size(); i < 28; ++i)
        os << ' ';
    os << buf << "\n";
}

/** The pre-registry reportNic(), walked by hand. */
std::string
legacyReportNic(DaggerNode &node)
{
    std::ostringstream os;
    nic::DaggerNic &dev = node.nicDev();
    const auto &mon = dev.monitor();
    os << "nic" << node.id() << " (" << ic::ifaceName(dev.config().iface)
       << ", " << dev.config().numFlows << " flows)\n";
    line(os, "rpcs_out", mon.rpcsOut.value());
    line(os, "rpcs_in", mon.rpcsIn.value());
    line(os, "frames_fetched", mon.framesFetched.value());
    line(os, "frames_posted", mon.framesPosted.value());
    line(os, "bytes_out", mon.bytesOut.value());
    line(os, "bytes_in", mon.bytesIn.value());
    line(os, "drops_no_connection", mon.dropsNoConnection.value());
    line(os, "drops_no_slot", mon.dropsNoSlot.value());
    line(os, "malformed", mon.malformed.value());
    line(os, "timeout_flushes", mon.timeoutFlushes.value());
    line(os, "fetch_batch_p50", mon.fetchBatch.percentile(50));
    lineF(os, "conn_cache_hit_rate",
          dev.connectionManager().hits() +
                  dev.connectionManager().misses() ==
              0
              ? 0.0
              : static_cast<double>(dev.connectionManager().hits()) /
                    static_cast<double>(dev.connectionManager().hits() +
                                        dev.connectionManager().misses()));
    lineF(os, "hcc_hit_rate", dev.hcc().hitRate());
    for (unsigned f = 0; f < node.numFlows(); ++f)
        line(os, "flow" + std::to_string(f) + "_rx_drops",
             node.flow(f).rx.drops());
    return os.str();
}

/** The pre-registry reportSystem(), walked by hand. */
std::string
legacyReportSystem(DaggerSystem &sys)
{
    std::ostringstream os;
    const sim::Tick now = sys.eq().now();
    os << "=== dagger system report @ " << sim::ticksToUs(now)
       << " us simulated ===\n";
    lineF(os, "ccip_to_nic_utilization",
          sys.fabric().toNicChannel().utilization(now));
    lineF(os, "ccip_to_host_utilization",
          sys.fabric().toHostChannel().utilization(now));
    line(os, "ccip_lines_to_nic",
         sys.fabric().toNicChannel().linesServiced());
    line(os, "ccip_lines_to_host",
         sys.fabric().toHostChannel().linesServiced());
    line(os, "tor_forwarded", sys.tor().forwarded());
    line(os, "tor_dropped", sys.tor().dropped());
    line(os, "events_executed", sys.eq().executed());
    for (std::size_t n = 0; n < sys.numNodes(); ++n)
        os << legacyReportNic(sys.node(n));
    return os.str();
}

struct ReportRig
{
    ReportRig() : sys(ic::IfaceKind::Upi), cpus(sys.eq(), 2)
    {
        nic::NicConfig cfg;
        cfg.numFlows = 2;
        cnode = &sys.addNode(cfg);
        snode = &sys.addNode(cfg);
        client = std::make_unique<RpcClient>(*cnode, 0,
                                             cpus.core(0).thread(0));
        client->setConnection(sys.connect(*cnode, 0, *snode, 0));
        server = std::make_unique<RpcThreadedServer>(*snode);
        server->addThread(0, cpus.core(1).thread(0));
        server->registerHandler(1, [](const proto::RpcMessage &req) {
            HandlerOutcome out;
            out.response = req.payload();
            out.cost = sim::nsToTicks(20);
            return out;
        });
    }

    void
    traffic(int n)
    {
        for (int i = 0; i < n; ++i) {
            std::uint64_t v = static_cast<std::uint64_t>(i);
            client->callPod(1, v);
        }
        sys.eq().runFor(usToTicks(300));
    }

    DaggerSystem sys;
    CpuSet cpus;
    DaggerNode *cnode;
    DaggerNode *snode;
    std::unique_ptr<RpcClient> client;
    std::unique_ptr<RpcThreadedServer> server;
};

TEST(Report, RegistryWalkMatchesLegacyByteForByte)
{
    ReportRig rig;
    rig.traffic(7);
    EXPECT_EQ(reportSystem(rig.sys), legacyReportSystem(rig.sys));
}

TEST(Report, RegistryWalkMatchesLegacyOnIdleSystem)
{
    // Zero traffic exercises the 0/0 hit-rate and empty-histogram paths.
    ReportRig rig;
    EXPECT_EQ(reportSystem(rig.sys), legacyReportSystem(rig.sys));
}

TEST(Report, PerNicReportIsTheScopedWalk)
{
    ReportRig rig;
    rig.traffic(3);
    EXPECT_EQ(reportNic(rig.sys.node(0)), legacyReportNic(rig.sys.node(0)));
    EXPECT_EQ(reportNic(rig.sys.node(1)), legacyReportNic(rig.sys.node(1)));
    EXPECT_EQ(reportNic(rig.sys.node(0)),
              rig.sys.metrics().renderText("node0"));
}

TEST(Report, JsonExportsHiddenDetailMetrics)
{
    ReportRig rig;
    rig.traffic(5);
    const std::string json = reportSystemJson(rig.sys);
    EXPECT_NE(json.find("\"time_us\""), std::string::npos);
    // Text-visible metrics appear under their hierarchical names...
    EXPECT_NE(json.find("\"node0.nic.rpcs_out\""), std::string::npos);
    EXPECT_NE(json.find("\"tor.forwarded\""), std::string::npos);
    // ...and so do detail metrics the text report never printed.
    EXPECT_NE(json.find("\"node0.nic.post_batch\""), std::string::npos);
    EXPECT_NE(json.find("\"fabric.port0.fetch_txns\""), std::string::npos);
    EXPECT_NE(json.find("\"node0.flow1.tx.pushed_frames\""),
              std::string::npos);
    // Histograms export the full summary object.
    EXPECT_NE(json.find("\"node0.nic.fetch_batch\": {\"count\""),
              std::string::npos);
}

TEST(Report, JsonExportsShardedEngineGauges)
{
    // On a sharded system the engine's round-protocol counters are
    // JSON-only gauges under sim.engine.* / sim.shardN.* (docs/API.md).
    DaggerSystem sys(ic::IfaceKind::Upi, {}, {}, /*shards=*/3);
    sys.addNode();
    sys.addNode();
    sys.runFor(usToTicks(50));
    const std::string json = reportSystemJson(sys);
    for (const char *key :
         {"\"sim.engine.shards\": 3", "\"sim.engine.rounds\"",
          "\"sim.engine.solo_runs\"", "\"sim.engine.solo_chunks\"",
          "\"sim.engine.windows_extended\"",
          "\"sim.engine.window_ticks_mean\"",
          "\"sim.engine.serial_elided\"", "\"sim.engine.batch_flushes\"",
          "\"sim.engine.barrier_parks\"", "\"sim.shard1.executed\"",
          "\"sim.shard2.cross_recvd\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

} // namespace
