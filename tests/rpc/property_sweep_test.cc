/**
 * @file
 * Parameterized property sweeps over the full stack.
 *
 * Invariants, for every (interface, batch, payload, ring-size) point:
 *  - conservation: every request is completed exactly once, or
 *    accounted as a drop/send-failure somewhere observable;
 *  - integrity: every response carries the request's payload back;
 *  - per-flow FIFO: responses arrive in issue order on a flow;
 *  - ring occupancy returns to zero after drain.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::usToTicks;

using SweepParam = std::tuple<ic::IfaceKind, unsigned /*batch*/,
                              std::size_t /*payload*/,
                              std::size_t /*ring entries*/>;

class StackSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(StackSweep, ConservationIntegrityFifoAndDrain)
{
    const auto [iface, batch, payload, ring] = GetParam();

    DaggerSystem sys(iface);
    CpuSet cpus(sys.eq(), 2);
    nic::NicConfig cfg;
    cfg.numFlows = 1;
    cfg.iface = iface;
    cfg.txRingEntries = ring;
    cfg.rxRingEntries = ring;
    nic::SoftConfig soft;
    soft.batchSize = batch;

    auto &cnode = sys.addNode(cfg, soft);
    auto &snode = sys.addNode(cfg, soft);
    RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setConnection(
        sys.connect(cnode, 0, snode, 0, nic::LbScheme::Static));
    RpcThreadedServer server(snode);
    server.addThread(0, cpus.core(1).thread(0));
    server.registerHandler(1, [](const proto::RpcMessage &req) {
        HandlerOutcome out;
        out.response = req.payload();
        out.cost = sim::nsToTicks(25);
        return out;
    });

    constexpr int kN = 300;
    int completed = 0;
    std::uint32_t last_seq = 0;
    bool fifo_ok = true;
    bool integrity_ok = true;

    // Paced sends (500ns apart) so small rings survive every config.
    for (int i = 0; i < kN; ++i) {
        sys.eq().scheduleAt(sim::nsToTicks(500.0 * i), [&, i] {
            std::vector<std::uint8_t> data(payload);
            for (std::size_t b = 0; b < payload; ++b)
                data[b] = static_cast<std::uint8_t>(i + b);
            client.callAsync(
                1, data.data(), data.size(),
                [&, i, data](const proto::RpcMessage &resp) {
                    ++completed;
                    if (resp.payload() != data)
                        integrity_ok = false;
                    // Per-flow FIFO: completions in issue order.
                    if (static_cast<std::uint32_t>(i) < last_seq)
                        fifo_ok = false;
                    last_seq = static_cast<std::uint32_t>(i);
                });
        });
    }
    sys.eq().runFor(usToTicks(500.0 * kN / 1000.0 + 300));

    const auto failures = client.sendFailures();
    const auto nic_drops = cnode.nicDev().monitor().drops() +
                           snode.nicDev().monitor().drops();
    const auto ring_drops = cnode.flow(0).rx.drops() +
                            snode.flow(0).rx.drops();

    // Conservation: every issued call either completed, failed at
    // send time (ring full), or is still pending because its frames
    // were dropped somewhere observable.
    EXPECT_EQ(static_cast<std::uint64_t>(completed) + failures +
                  client.pendingCalls(),
              static_cast<std::uint64_t>(kN))
        << "conservation violated";
    // Lost-in-flight calls must have an observable cause.
    if (client.pendingCalls() > 0)
        EXPECT_GT(nic_drops + ring_drops, 0u);
    else
        EXPECT_EQ(nic_drops + ring_drops, 0u);
    EXPECT_TRUE(integrity_ok);
    EXPECT_TRUE(fifo_ok);
    // Drain: all ring entries returned.
    EXPECT_EQ(cnode.flow(0).tx.used(), 0u);
    EXPECT_EQ(snode.flow(0).tx.used(), 0u);
}

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    std::string name = ic::ifaceName(std::get<0>(info.param));
    name += "_B" + std::to_string(std::get<1>(info.param));
    name += "_P" + std::to_string(std::get<2>(info.param));
    name += "_R" + std::to_string(std::get<3>(info.param));
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllInterfaces, StackSweep,
    ::testing::Combine(
        ::testing::Values(ic::IfaceKind::MmioWrite, ic::IfaceKind::Doorbell,
                          ic::IfaceKind::DoorbellBatch, ic::IfaceKind::Upi,
                          ic::IfaceKind::Cxl),
        ::testing::Values(1u, 3u, 8u),
        ::testing::Values(std::size_t{8}, std::size_t{48},
                          std::size_t{200}),
        ::testing::Values(std::size_t{16}, std::size_t{256})),
    sweepName);

/** Latency must be monotonically hurt by the doorbell batch factor. */
class DoorbellBatchLatency : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DoorbellBatchLatency, TimeoutBoundsSingleRequestRtt)
{
    const unsigned batch = GetParam();
    DaggerSystem sys(ic::IfaceKind::DoorbellBatch);
    CpuSet cpus(sys.eq(), 2);
    nic::NicConfig cfg;
    cfg.numFlows = 1;
    cfg.iface = ic::IfaceKind::DoorbellBatch;
    nic::SoftConfig soft;
    soft.batchSize = batch;

    auto &cnode = sys.addNode(cfg, soft);
    auto &snode = sys.addNode(cfg, soft);
    RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setConnection(
        sys.connect(cnode, 0, snode, 0, nic::LbScheme::Static));
    RpcThreadedServer server(snode);
    server.addThread(0, cpus.core(1).thread(0));
    server.registerHandler(1, [](const proto::RpcMessage &req) {
        HandlerOutcome out;
        out.response = req.payload();
        return out;
    });

    std::uint64_t v = 1;
    client.callPod(1, v);
    sys.eq().runFor(usToTicks(100));
    ASSERT_EQ(client.responses(), 1u);
    const auto rtt = client.latency().percentile(50);
    const auto timeout = cnode.nicDev().softConfig().batchTimeout;
    // A lone request waits at most one batch timeout per crossing,
    // plus the first-touch cold HCC fills.
    EXPECT_LT(rtt, usToTicks(6.0) + 4 * timeout) << "batch=" << batch;
}

INSTANTIATE_TEST_SUITE_P(Batches, DoorbellBatchLatency,
                         ::testing::Values(1u, 2u, 4u, 8u, 11u, 16u));

} // namespace
