/**
 * @file
 * Parameterized property sweeps over the full stack.
 *
 * Invariants, for every (interface, batch, payload, ring-size) point:
 *  - conservation: every request is completed exactly once, or
 *    accounted as a drop/send-failure somewhere observable;
 *  - integrity: every response carries the request's payload back;
 *  - per-flow FIFO: responses arrive in issue order on a flow;
 *  - ring occupancy returns to zero after drain.
 *
 * The 90-point grid runs through bench::SweepRunner — each point is an
 * isolated DaggerSystem, so the combos execute concurrently and the
 * verdicts come back in input order.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::usToTicks;

struct SweepParam
{
    ic::IfaceKind iface;
    unsigned batch;
    std::size_t payload;
    std::size_t ring;
};

std::string
sweepName(const SweepParam &p)
{
    std::string name = ic::ifaceName(p.iface);
    name += "_B" + std::to_string(p.batch);
    name += "_P" + std::to_string(p.payload);
    name += "_R" + std::to_string(p.ring);
    return name;
}

/** Everything the invariant checks need from one sweep point. */
struct SweepVerdict
{
    std::string name;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t send_failures = 0;
    std::uint64_t pending = 0;
    std::uint64_t nic_drops = 0;
    std::uint64_t ring_drops = 0;
    std::uint64_t tx_used_client = 0;
    std::uint64_t tx_used_server = 0;
    bool integrity_ok = true;
    bool fifo_ok = true;
};

SweepVerdict
runSweepPoint(const SweepParam &param)
{
    DaggerSystem sys(param.iface);
    CpuSet cpus(sys.eq(), 2);
    nic::NicConfig cfg;
    cfg.numFlows = 1;
    cfg.iface = param.iface;
    cfg.txRingEntries = param.ring;
    cfg.rxRingEntries = param.ring;
    nic::SoftConfig soft;
    soft.batchSize = param.batch;

    auto &cnode = sys.addNode(cfg, soft);
    auto &snode = sys.addNode(cfg, soft);
    RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setConnection(
        sys.connect(cnode, 0, snode, 0, nic::LbScheme::Static));
    RpcThreadedServer server(snode);
    server.addThread(0, cpus.core(1).thread(0));
    server.registerHandler(1, [](const proto::RpcMessage &req) {
        HandlerOutcome out;
        out.response = req.payload();
        out.cost = sim::nsToTicks(25);
        return out;
    });

    constexpr int kN = 300;
    SweepVerdict v;
    v.name = sweepName(param);
    v.issued = kN;
    int completed = 0;
    std::uint32_t last_seq = 0;

    // Paced sends (500ns apart) so small rings survive every config.
    const std::size_t payload = param.payload;
    for (int i = 0; i < kN; ++i) {
        sys.eq().scheduleAt(sim::nsToTicks(500.0 * i), [&, i] {
            std::vector<std::uint8_t> data(payload);
            for (std::size_t b = 0; b < payload; ++b)
                data[b] = static_cast<std::uint8_t>(i + b);
            client.callAsync(
                1, data.data(), data.size(),
                [&, i, data](const proto::RpcMessage &resp) {
                    ++completed;
                    if (resp.payload() != data)
                        v.integrity_ok = false;
                    // Per-flow FIFO: completions in issue order.
                    if (static_cast<std::uint32_t>(i) < last_seq)
                        v.fifo_ok = false;
                    last_seq = static_cast<std::uint32_t>(i);
                });
        });
    }
    sys.eq().runFor(usToTicks(500.0 * kN / 1000.0 + 300));

    v.completed = static_cast<std::uint64_t>(completed);
    v.send_failures = client.sendFailures();
    v.pending = client.pendingCalls();
    v.nic_drops = cnode.nicDev().monitor().drops() +
                  snode.nicDev().monitor().drops();
    v.ring_drops = cnode.flow(0).rx.drops() + snode.flow(0).rx.drops();
    v.tx_used_client = cnode.flow(0).tx.used();
    v.tx_used_server = snode.flow(0).tx.used();
    return v;
}

TEST(StackSweep, ConservationIntegrityFifoAndDrain)
{
    const ic::IfaceKind ifaces[] = {
        ic::IfaceKind::MmioWrite, ic::IfaceKind::Doorbell,
        ic::IfaceKind::DoorbellBatch, ic::IfaceKind::Upi,
        ic::IfaceKind::Cxl};
    const unsigned batches[] = {1, 3, 8};
    const std::size_t payloads[] = {8, 48, 200};
    const std::size_t rings[] = {16, 256};

    std::vector<SweepParam> grid;
    for (auto iface : ifaces)
        for (auto batch : batches)
            for (auto payload : payloads)
                for (auto ring : rings)
                    grid.push_back({iface, batch, payload, ring});

    std::vector<std::function<SweepVerdict()>> scenarios;
    scenarios.reserve(grid.size());
    for (const SweepParam &param : grid)
        scenarios.push_back([param] { return runSweepPoint(param); });
    const std::vector<SweepVerdict> verdicts =
        bench::SweepRunner().run(std::move(scenarios));

    ASSERT_EQ(verdicts.size(), grid.size());
    for (const SweepVerdict &v : verdicts) {
        SCOPED_TRACE(v.name);
        // Conservation: every issued call either completed, failed at
        // send time (ring full), or is still pending because its
        // frames were dropped somewhere observable.
        EXPECT_EQ(v.completed + v.send_failures + v.pending, v.issued)
            << "conservation violated";
        // Lost-in-flight calls must have an observable cause.
        if (v.pending > 0)
            EXPECT_GT(v.nic_drops + v.ring_drops, 0u);
        else
            EXPECT_EQ(v.nic_drops + v.ring_drops, 0u);
        EXPECT_TRUE(v.integrity_ok);
        EXPECT_TRUE(v.fifo_ok);
        // Drain: all ring entries returned.
        EXPECT_EQ(v.tx_used_client, 0u);
        EXPECT_EQ(v.tx_used_server, 0u);
    }
}

/** Latency must be monotonically hurt by the doorbell batch factor. */
class DoorbellBatchLatency : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DoorbellBatchLatency, TimeoutBoundsSingleRequestRtt)
{
    const unsigned batch = GetParam();
    DaggerSystem sys(ic::IfaceKind::DoorbellBatch);
    CpuSet cpus(sys.eq(), 2);
    nic::NicConfig cfg;
    cfg.numFlows = 1;
    cfg.iface = ic::IfaceKind::DoorbellBatch;
    nic::SoftConfig soft;
    soft.batchSize = batch;

    auto &cnode = sys.addNode(cfg, soft);
    auto &snode = sys.addNode(cfg, soft);
    RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setConnection(
        sys.connect(cnode, 0, snode, 0, nic::LbScheme::Static));
    RpcThreadedServer server(snode);
    server.addThread(0, cpus.core(1).thread(0));
    server.registerHandler(1, [](const proto::RpcMessage &req) {
        HandlerOutcome out;
        out.response = req.payload();
        return out;
    });

    std::uint64_t v = 1;
    client.callPod(1, v);
    sys.eq().runFor(usToTicks(100));
    ASSERT_EQ(client.responses(), 1u);
    const auto rtt = client.latency().percentile(50);
    const auto timeout = cnode.nicDev().softConfig().batchTimeout;
    // A lone request waits at most one batch timeout per crossing,
    // plus the first-touch cold HCC fills.
    EXPECT_LT(rtt, usToTicks(6.0) + 4 * timeout) << "batch=" << batch;
}

INSTANTIATE_TEST_SUITE_P(Batches, DoorbellBatchLatency,
                         ::testing::Values(1u, 2u, 4u, 8u, 11u, 16u));

} // namespace
