/**
 * @file
 * Ring tests (Fig. 8 semantics): occupancy counting, release-based
 * reuse, flow blocking, RX overflow drops, reassembly on pop.
 */

#include <gtest/gtest.h>

#include "rpc/rings.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;

proto::RpcMessage
msg(std::size_t len, proto::RpcId id = 1)
{
    std::string payload(len, 'p');
    return proto::RpcMessage(1, id, 1, proto::MsgType::Request,
                             payload.data(), payload.size());
}

TEST(TxRing, PushPopReleaseCycle)
{
    TxRing tx(4);
    EXPECT_TRUE(tx.push(msg(8)));
    EXPECT_EQ(tx.used(), 1u);
    EXPECT_EQ(tx.pendingFrames(), 1u);
    auto frames = tx.popFrames(1);
    EXPECT_EQ(frames.size(), 1u);
    EXPECT_EQ(tx.pendingFrames(), 0u);
    EXPECT_EQ(tx.used(), 1u); // still occupied until bookkeeping
    tx.release(1);
    EXPECT_EQ(tx.used(), 0u);
}

TEST(TxRing, BlocksWhenEntriesNotReleased)
{
    TxRing tx(2);
    EXPECT_TRUE(tx.push(msg(8, 1)));
    EXPECT_TRUE(tx.push(msg(8, 2)));
    EXPECT_FALSE(tx.push(msg(8, 3))); // full: nothing released yet
    EXPECT_EQ(tx.blocked(), 1u);
    tx.popFrames(2);
    EXPECT_FALSE(tx.push(msg(8, 3))); // popped but not released
    tx.release(2);
    EXPECT_TRUE(tx.push(msg(8, 3)));
}

TEST(TxRing, MultiFrameMessageCountsAllFrames)
{
    TxRing tx(4);
    EXPECT_TRUE(tx.push(msg(100))); // 3 frames
    EXPECT_EQ(tx.used(), 3u);
    EXPECT_FALSE(tx.push(msg(100))); // needs 3, only 1 left
}

TEST(TxRing, NotifyFiresOnPush)
{
    TxRing tx(4);
    int notified = 0;
    tx.setNotify([&] { ++notified; });
    tx.push(msg(8));
    tx.push(msg(8, 2));
    EXPECT_EQ(notified, 2);
}

TEST(TxRing, SpaceNotifyFiresOnRelease)
{
    TxRing tx(1);
    int space = 0;
    tx.setSpaceNotify([&] { ++space; });
    tx.push(msg(8));
    tx.popFrames(1);
    tx.release(1);
    EXPECT_EQ(space, 1);
}

TEST(RxRing, DeliverPopRoundTrip)
{
    RxRing rx(8);
    auto m = msg(40);
    rx.deliver(m.toFrames());
    proto::RpcMessage out;
    ASSERT_TRUE(rx.popMessage(out));
    EXPECT_EQ(out.payload(), m.payload());
    EXPECT_FALSE(rx.popMessage(out));
}

TEST(RxRing, OverflowDrops)
{
    RxRing rx(2);
    auto m = msg(100); // 3 frames
    EXPECT_EQ(rx.deliver(m.toFrames()), 2u);
    EXPECT_EQ(rx.drops(), 1u);
}

TEST(RxRing, PartialMessageWaitsForRemainingFrames)
{
    RxRing rx(8);
    auto m = msg(100);
    auto frames = m.toFrames();
    rx.deliver({frames[0], frames[1]});
    proto::RpcMessage out;
    EXPECT_FALSE(rx.popMessage(out));
    rx.deliver({frames[2]});
    ASSERT_TRUE(rx.popMessage(out));
    EXPECT_EQ(out.payload(), m.payload());
}

TEST(RxRing, NotifyOnDelivery)
{
    RxRing rx(8);
    int notified = 0;
    rx.setNotify([&] { ++notified; });
    rx.deliver(msg(8).toFrames());
    EXPECT_EQ(notified, 1);
}

} // namespace
