/**
 * @file
 * DaggerSystem-level tests: connection lifecycle, send-cost model
 * plumbing, SRQ sharing, orphan responses, stats reporting.
 */

#include <gtest/gtest.h>

#include "rpc/client.hh"
#include "rpc/report.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::rpc;
using sim::usToTicks;

struct SysRig
{
    SysRig() : sys(ic::IfaceKind::Upi), cpus(sys.eq(), 2)
    {
        nic::NicConfig cfg;
        cfg.numFlows = 1;
        cnode = &sys.addNode(cfg);
        snode = &sys.addNode(cfg);
        client = std::make_unique<RpcClient>(*cnode, 0,
                                             cpus.core(0).thread(0));
        server = std::make_unique<RpcThreadedServer>(*snode);
        server->addThread(0, cpus.core(1).thread(0));
        server->registerHandler(1, [](const proto::RpcMessage &req) {
            HandlerOutcome out;
            out.response = req.payload();
            out.cost = sim::nsToTicks(20);
            return out;
        });
    }

    DaggerSystem sys;
    CpuSet cpus;
    DaggerNode *cnode;
    DaggerNode *snode;
    std::unique_ptr<RpcClient> client;
    std::unique_ptr<RpcThreadedServer> server;
};

TEST(DaggerSystem, DisconnectStopsTraffic)
{
    SysRig rig;
    auto conn = rig.sys.connect(*rig.cnode, 0, *rig.snode, 0);
    rig.client->setConnection(conn);
    std::uint64_t done = 0;
    std::uint64_t v = 1;
    rig.client->callPod(1, v, [&](const proto::RpcMessage &) { ++done; });
    rig.sys.eq().runFor(usToTicks(100));
    ASSERT_EQ(done, 1u);

    rig.sys.disconnect(conn);
    rig.client->callPod(1, v, [&](const proto::RpcMessage &) { ++done; });
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(done, 1u); // second call never completed
    EXPECT_EQ(rig.cnode->nicDev().monitor().dropsNoConnection.value(), 1u);
}

TEST(DaggerSystem, ConnectionIdsAreSequentialAndDistinct)
{
    SysRig rig;
    auto a = rig.sys.connect(*rig.cnode, 0, *rig.snode, 0);
    auto b = rig.sys.connect(*rig.cnode, 0, *rig.snode, 0);
    EXPECT_NE(a, b);
    EXPECT_EQ(b, a + 1);
}

TEST(DaggerSystem, SendCpuCostTracksInterfaceAndBatch)
{
    DaggerSystem upi(ic::IfaceKind::Upi);
    nic::SoftConfig b1;
    b1.batchSize = 1;
    nic::SoftConfig b4;
    b4.batchSize = 4;
    auto &n1 = upi.addNode({}, b1);
    auto &n4 = upi.addNode({}, b4);
    EXPECT_GT(upi.sendCpuCost(n1), upi.sendCpuCost(n4));

    DaggerSystem mmio(ic::IfaceKind::MmioWrite);
    auto &nm = mmio.addNode({}, b1);
    EXPECT_GT(mmio.sendCpuCost(nm), upi.sendCpuCost(n1));
}

TEST(DaggerSystem, SrqSharedClientChargesLockCost)
{
    // Two logical connections over one client (SRQ): lock cost makes
    // the shared client's per-send CPU strictly larger, observable as
    // lower saturation throughput.
    auto run = [](bool shared) {
        SysRig rig;
        rig.client->setConnection(
            rig.sys.connect(*rig.cnode, 0, *rig.snode, 0));
        rig.client->setSharedByThreads(shared);
        int done = 0;
        std::function<void()> fire = [&] {
            std::uint64_t v = 1;
            rig.client->callPod(1, v,
                                [&](const proto::RpcMessage &) {
                                    ++done;
                                    fire();
                                });
        };
        for (int w = 0; w < 32; ++w)
            fire();
        rig.sys.eq().runFor(sim::msToTicks(3));
        return done;
    };
    EXPECT_GT(run(false), run(true));
}

TEST(DaggerSystem, OrphanResponsesCounted)
{
    SysRig rig;
    // Two clients alternate on the same flow: the second client's
    // responses arrive at a ring the first client polls -> orphans.
    rig.client->setConnection(
        rig.sys.connect(*rig.cnode, 0, *rig.snode, 0));
    // Craft an orphan by injecting a response for an unknown rpc id.
    proto::RpcMessage fake(rig.client->connection(), 4242, 1,
                           proto::MsgType::Response, "x", 1);
    rig.cnode->flow(0).rx.deliver(fake.toFrames());
    rig.sys.eq().runFor(usToTicks(50));
    EXPECT_EQ(rig.client->orphanResponses(), 1u);
}

TEST(DaggerSystem, ReportContainsKeyCounters)
{
    SysRig rig;
    rig.client->setConnection(
        rig.sys.connect(*rig.cnode, 0, *rig.snode, 0));
    for (int i = 0; i < 5; ++i) {
        std::uint64_t v = i;
        rig.client->callPod(1, v);
    }
    rig.sys.eq().runFor(usToTicks(200));

    const std::string report = reportSystem(rig.sys);
    EXPECT_NE(report.find("dagger system report"), std::string::npos);
    EXPECT_NE(report.find("tor_forwarded"), std::string::npos);
    EXPECT_NE(report.find("nic0"), std::string::npos);
    EXPECT_NE(report.find("nic1"), std::string::npos);
    EXPECT_NE(report.find("rpcs_out"), std::string::npos);
    EXPECT_NE(report.find("conn_cache_hit_rate"), std::string::npos);
    EXPECT_NE(report.find("hcc_hit_rate"), std::string::npos);
    // The per-NIC rpc counters reflect the five round trips.
    EXPECT_NE(report.find("rpcs_out                    5"),
              std::string::npos);
}

TEST(DaggerSystem, CompletionContinuationFires)
{
    SysRig rig;
    rig.client->setConnection(
        rig.sys.connect(*rig.cnode, 0, *rig.snode, 0));
    int via_continuation = 0;
    rig.client->completions().setContinuation(
        [&](const proto::RpcMessage &) { ++via_continuation; });
    std::uint64_t v = 5;
    rig.client->callPod(1, v); // no per-call callback
    rig.sys.eq().runFor(usToTicks(100));
    EXPECT_EQ(via_continuation, 1);
    EXPECT_EQ(rig.client->completions().size(), 0u); // consumed
}

/** One full-stack echo pass at a given shard count. */
struct ShardedRun
{
    std::uint64_t done = 0;
    sim::Tick now = 0;
    std::uint64_t events = 0;
};

ShardedRun
runEchoAt(unsigned shards, unsigned calls)
{
    DaggerSystem sys(ic::IfaceKind::Upi, {}, {}, shards);
    nic::NicConfig cfg;
    cfg.numFlows = 1;
    DaggerNode &cnode = sys.addNode(cfg);
    DaggerNode &snode = sys.addNode(cfg);
    // One core per side, each on its node's domain queue.
    CpuSet ccpus(cnode.eq(), 1);
    CpuSet scpus(snode.eq(), 1);
    RpcClient client(cnode, 0, ccpus.core(0).thread(0));
    RpcThreadedServer server(snode);
    server.addThread(0, scpus.core(0).thread(0));
    server.registerHandler(1, [](const proto::RpcMessage &req) {
        HandlerOutcome out;
        out.response = req.payload();
        out.cost = sim::nsToTicks(20);
        return out;
    });
    client.setConnection(sys.connect(cnode, 0, snode, 0));
    ShardedRun r;
    for (unsigned i = 0; i < calls; ++i) {
        std::uint64_t v = i;
        client.callPod(1, v,
                       [&r](const proto::RpcMessage &) { ++r.done; });
    }
    sys.runFor(sim::msToTicks(2));
    r.now = sys.now();
    r.events = sys.eventsExecuted();
    return r;
}

TEST(DaggerSystem, ShardedRunMatchesSingleQueue)
{
    // The whole-stack equivalence behind the figure byte-compares:
    // client and server land on different node domains at shards 4
    // (nodes round-robin over shards 1..3), yet every simulated
    // quantity must match the single-queue run exactly.
    const ShardedRun s1 = runEchoAt(1, 64);
    EXPECT_EQ(s1.done, 64u);
    const ShardedRun s4 = runEchoAt(4, 64);
    EXPECT_EQ(s4.done, s1.done);
    EXPECT_EQ(s4.events, s1.events);
    EXPECT_EQ(s4.now, s1.now);
}

TEST(DaggerSystemDeath, DisconnectUnknownConnection)
{
    SysRig rig;
    EXPECT_DEATH(rig.sys.disconnect(999), "unknown connection");
}

} // namespace
