/**
 * @file
 * Wire-format tests: frame layout, multi-frame split/reassembly,
 * checksum detection, reassembler state machine.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "proto/wire.hh"

namespace {

using namespace dagger::proto;

RpcMessage
makeMsg(std::size_t len, ConnId conn = 3, RpcId rpc = 9, FnId fn = 2,
        MsgType type = MsgType::Request)
{
    std::string payload(len, '\0');
    for (std::size_t i = 0; i < len; ++i)
        payload[i] = static_cast<char>('a' + i % 26);
    return RpcMessage(conn, rpc, fn, type, payload.data(), payload.size());
}

TEST(Wire, FrameModelsOneCacheLine)
{
    // The in-memory Frame is a header plus a payload *view*; what it
    // models on the wire is still one 64-byte cache line.
    EXPECT_EQ(Frame::kWireBytes, kCacheLineBytes);
    EXPECT_EQ(sizeof(FrameHeader), kHeaderBytes);
    EXPECT_EQ(kFramePayload, 48u);
    EXPECT_EQ(kHeaderBytes + kFramePayload, kCacheLineBytes);
}

TEST(Wire, EmptyPayloadUsesOneFrame)
{
    RpcMessage m = makeMsg(0);
    EXPECT_EQ(m.frameCount(), 1u);
    EXPECT_EQ(m.wireBytes(), 64u);
}

TEST(Wire, FrameCountMatchesPayloadSize)
{
    EXPECT_EQ(makeMsg(1).frameCount(), 1u);
    EXPECT_EQ(makeMsg(48).frameCount(), 1u);
    EXPECT_EQ(makeMsg(49).frameCount(), 2u);
    EXPECT_EQ(makeMsg(96).frameCount(), 2u);
    EXPECT_EQ(makeMsg(97).frameCount(), 3u);
    EXPECT_EQ(makeMsg(580).frameCount(), 13u); // Text-service median RPC
}

TEST(Wire, RoundTripSingleFrame)
{
    RpcMessage m = makeMsg(32);
    auto frames = m.toFrames();
    ASSERT_EQ(frames.size(), 1u);
    RpcMessage out;
    ASSERT_TRUE(RpcMessage::fromFrames(frames, out));
    EXPECT_EQ(out.connId(), m.connId());
    EXPECT_EQ(out.rpcId(), m.rpcId());
    EXPECT_EQ(out.fnId(), m.fnId());
    EXPECT_EQ(out.type(), MsgType::Request);
    EXPECT_EQ(out.payload(), m.payload());
}

TEST(Wire, RoundTripMultiFrame)
{
    for (std::size_t len : {49u, 100u, 512u, 1500u}) {
        RpcMessage m = makeMsg(len);
        RpcMessage out;
        ASSERT_TRUE(RpcMessage::fromFrames(m.toFrames(), out)) << len;
        EXPECT_EQ(out.payload(), m.payload()) << len;
    }
}

TEST(Wire, ChecksumDetectsCorruption)
{
    RpcMessage m = makeMsg(100);
    auto frames = m.toFrames();
    frames[1].corruptPayloadByte(5);
    RpcMessage out;
    EXPECT_FALSE(RpcMessage::fromFrames(frames, out));
}

TEST(Wire, RejectsFrameCountMismatch)
{
    RpcMessage m = makeMsg(100);
    auto frames = m.toFrames();
    frames.pop_back();
    RpcMessage out;
    EXPECT_FALSE(RpcMessage::fromFrames(frames, out));
}

TEST(Wire, RejectsShuffledFrames)
{
    RpcMessage m = makeMsg(100);
    auto frames = m.toFrames();
    std::swap(frames[0], frames[1]);
    RpcMessage out;
    EXPECT_FALSE(RpcMessage::fromFrames(frames, out));
}

TEST(Wire, PayloadAsPodRoundTrip)
{
    struct Pod
    {
        std::uint32_t a;
        std::uint64_t b;
    } in{7, 1234567890123ull};
    auto m = RpcMessage::ofPod(1, 2, 3, MsgType::Response, in);
    Pod out{};
    ASSERT_TRUE(m.payloadAs(out));
    EXPECT_EQ(out.a, in.a);
    EXPECT_EQ(out.b, in.b);
    std::uint16_t wrong = 0;
    EXPECT_FALSE(m.payloadAs(wrong));
}

TEST(Reassembler, SingleFrameFastPath)
{
    Reassembler r;
    RpcMessage m = makeMsg(40), out;
    ASSERT_TRUE(r.push(m.toFrames()[0], out));
    EXPECT_EQ(out.payload(), m.payload());
    EXPECT_EQ(r.inFlight(), 0u);
}

TEST(Reassembler, MultiFrameCompletesOnLastFrame)
{
    Reassembler r;
    RpcMessage m = makeMsg(130), out;
    auto frames = m.toFrames();
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_FALSE(r.push(frames[0], out));
    EXPECT_EQ(r.inFlight(), 1u);
    EXPECT_FALSE(r.push(frames[1], out));
    ASSERT_TRUE(r.push(frames[2], out));
    EXPECT_EQ(out.payload(), m.payload());
    EXPECT_EQ(r.inFlight(), 0u);
}

TEST(Reassembler, InterleavedMessagesFromDifferentRpcs)
{
    Reassembler r;
    RpcMessage a = makeMsg(96, 1, 1); // exactly two frames each
    RpcMessage b = makeMsg(96, 1, 2);
    auto fa = a.toFrames(), fb = b.toFrames();
    RpcMessage out;
    EXPECT_FALSE(r.push(fa[0], out));
    EXPECT_FALSE(r.push(fb[0], out));
    EXPECT_EQ(r.inFlight(), 2u);
    ASSERT_TRUE(r.push(fa[1], out));
    EXPECT_EQ(out.rpcId(), 1u);
    ASSERT_TRUE(r.push(fb[1], out));
    EXPECT_EQ(out.rpcId(), 2u);
}

TEST(Reassembler, OutOfSequenceFrameDropsPartial)
{
    Reassembler r;
    RpcMessage m = makeMsg(130), out;
    auto frames = m.toFrames();
    EXPECT_FALSE(r.push(frames[0], out));
    EXPECT_FALSE(r.push(frames[2], out)); // skipped frame 1
    EXPECT_EQ(r.malformed(), 1u);
    EXPECT_EQ(r.inFlight(), 0u);
}

TEST(Reassembler, RequestAndResponseWithSameIdsDoNotCollide)
{
    Reassembler r;
    RpcMessage req = makeMsg(100, 5, 5, 1, MsgType::Request);
    RpcMessage rsp = makeMsg(100, 5, 5, 1, MsgType::Response);
    RpcMessage out;
    EXPECT_FALSE(r.push(req.toFrames()[0], out));
    EXPECT_FALSE(r.push(rsp.toFrames()[0], out));
    EXPECT_EQ(r.inFlight(), 2u);
}

} // namespace
