/**
 * @file
 * Property tests for the zero-copy payload path (proto::PayloadBuf /
 * proto::PayloadView):
 *
 *  - inline <-> heap storage boundary at kFramePayload (48 B)
 *  - handle-pass vs byte-copy accounting across the boundary
 *  - frame checksums over views byte-equal to the owned-array oracle
 *    (the pre-refactor Frame kept a private 48 B payload array)
 *  - buffer lifetime under out-of-order Reassembler completion
 *  - copy-on-write corruption isolating duplicates from originals
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "proto/wire.hh"

namespace {

using namespace dagger::proto;

std::vector<std::uint8_t>
patternBytes(std::size_t len, std::uint8_t seed = 0)
{
    std::vector<std::uint8_t> v(len);
    for (std::size_t i = 0; i < len; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 7 + 3);
    return v;
}

TEST(PayloadBuf, InlineHeapBoundaryAtFramePayload)
{
    for (std::size_t len : {47u, 48u, 49u}) {
        const auto bytes = patternBytes(len);
        PayloadBuf buf(bytes.data(), bytes.size());
        EXPECT_EQ(buf.size(), len);
        EXPECT_EQ(buf.inlined(), len <= kFramePayload) << len;
        EXPECT_EQ(buf.heapUseCount(), len <= kFramePayload ? 0 : 1) << len;
        EXPECT_TRUE(buf == bytes) << len;
    }
    EXPECT_TRUE(PayloadBuf().inlined());
}

TEST(PayloadBuf, CopyIsHandlePassNotByteCopy)
{
    const auto bytes = patternBytes(1024);
    PayloadBuf buf(bytes.data(), bytes.size());

    const PayloadStats before = payloadStats();
    PayloadBuf copy(buf);
    const PayloadStats after = payloadStats();

    EXPECT_EQ(after.bytesCopied, before.bytesCopied);
    EXPECT_EQ(after.handlePasses, before.handlePasses + 1);
    EXPECT_TRUE(copy.sharesBufferWith(buf));
    EXPECT_EQ(buf.heapUseCount(), 2);
}

TEST(PayloadBuf, InlineCopiesAreIndependentHandles)
{
    const auto bytes = patternBytes(48);
    PayloadBuf buf(bytes.data(), bytes.size());
    PayloadBuf copy(buf);
    // Inline payloads ride in the handle itself: equal bytes, no
    // shared heap block.
    EXPECT_TRUE(copy == buf);
    EXPECT_FALSE(copy.sharesBufferWith(buf));
    EXPECT_EQ(copy.heapUseCount(), 0);
}

TEST(PayloadBuf, ConstructionCountsBytesOnce)
{
    const auto bytes = patternBytes(300);
    const PayloadStats before = payloadStats();
    PayloadBuf buf(bytes.data(), bytes.size());
    const PayloadStats after = payloadStats();
    EXPECT_EQ(after.bytesCopied, before.bytesCopied + 300);
}

/**
 * Oracle: the pre-refactor frame checksum, computed over an owned
 * 48-byte zero-padded array exactly as the seed implementation did
 * (sum seeded with the low byte of frameIdx, xor of live bytes).
 */
std::uint8_t
oracleChecksum(const Frame &f)
{
    std::uint8_t owned[kFramePayload] = {};
    for (std::size_t i = 0; i < kFramePayload; ++i)
        owned[i] = f.payloadByte(i); // wire bytes, zero-padded
    std::uint8_t sum = static_cast<std::uint8_t>(f.header.frameIdx);
    const std::size_t n = f.liveBytes();
    for (std::size_t i = 0; i < n; ++i)
        sum ^= owned[i];
    return sum;
}

TEST(Frame, ViewChecksumMatchesOwnedArrayOracle)
{
    for (std::size_t len : {0u, 1u, 47u, 48u, 49u, 96u, 97u, 580u, 4096u}) {
        const auto bytes = patternBytes(len, 0x5a);
        RpcMessage m(7, 11, 2, MsgType::Request, bytes.data(), bytes.size());
        for (const Frame &f : m.toFrames()) {
            EXPECT_EQ(f.computeChecksum(), oracleChecksum(f))
                << len << " idx " << f.header.frameIdx;
            EXPECT_EQ(f.header.checksum, oracleChecksum(f))
                << len << " idx " << f.header.frameIdx;
            EXPECT_TRUE(f.verifyChecksum());
        }
    }
}

TEST(Frame, MaxPayloadSpans1366Frames)
{
    // Regression for the widened 16-bit frameIdx: the largest payload
    // the wire format admits round-trips (the seed format capped
    // multi-frame RPCs at 255 frames / 12240 B).
    const auto bytes = patternBytes(kMaxPayloadBytes, 0x21);
    RpcMessage m(1, 2, 3, MsgType::Request, bytes.data(), bytes.size());
    EXPECT_EQ(m.frameCount(), 1366u);
    auto frames = m.toFrames();
    EXPECT_EQ(frames.back().header.frameIdx, 1365u);
    RpcMessage out;
    ASSERT_TRUE(RpcMessage::fromFrames(frames, out));
    EXPECT_TRUE(out.payload() == bytes);
    // Handle identity end to end: reassembly adopted the buffer.
    EXPECT_TRUE(out.payload().sharesBufferWith(m.payload()));
}

TEST(Reassembler, BufferOutlivesSourceMessage)
{
    // Frames keep the payload alive through the refcount: destroy the
    // source message mid-assembly and complete from the frames alone.
    Reassembler r;
    const auto bytes = patternBytes(130, 0x33);
    std::vector<Frame> frames;
    {
        RpcMessage m(3, 9, 1, MsgType::Request, bytes.data(), bytes.size());
        frames = m.toFrames();
    } // m destroyed; only the frames' views hold the buffer now
    ASSERT_EQ(frames.size(), 3u);
    RpcMessage out;
    EXPECT_FALSE(r.push(frames[0], out));
    EXPECT_FALSE(r.push(frames[1], out));
    ASSERT_TRUE(r.push(frames[2], out));
    EXPECT_TRUE(out.payload() == bytes);
}

TEST(Reassembler, InterleavedCompletionAdoptsEachBuffer)
{
    // Two messages assembling out of lockstep: each completion must
    // adopt *its own* buffer (pointer identity), and the refcounts
    // must drop back once the reassembler's partials clear.
    Reassembler r;
    const auto ba = patternBytes(96, 0x01);
    const auto bb = patternBytes(96, 0x80);
    RpcMessage a(1, 1, 0, MsgType::Request, ba.data(), ba.size());
    RpcMessage b(1, 2, 0, MsgType::Request, bb.data(), bb.size());
    auto fa = a.toFrames(), fb = b.toFrames();

    const long base_a = a.payload().heapUseCount();
    RpcMessage out;
    EXPECT_FALSE(r.push(fa[0], out));
    EXPECT_FALSE(r.push(fb[0], out));
    // The buffered partial holds a reference beyond the local frames.
    EXPECT_GT(a.payload().heapUseCount(), base_a);

    ASSERT_TRUE(r.push(fb[1], out));
    EXPECT_EQ(out.rpcId(), 2u);
    EXPECT_TRUE(out.payload().sharesBufferWith(b.payload()));
    EXPECT_FALSE(out.payload().sharesBufferWith(a.payload()));

    ASSERT_TRUE(r.push(fa[1], out));
    EXPECT_EQ(out.rpcId(), 1u);
    EXPECT_TRUE(out.payload().sharesBufferWith(a.payload()));
    EXPECT_EQ(r.inFlight(), 0u);

    // out + a's own handle + a's local frames (2 views): releasing out
    // must return the count to what the locals account for.
    out = RpcMessage();
    EXPECT_EQ(a.payload().heapUseCount(), base_a);
}

TEST(Frame, CorruptOnDuplicateLeavesOriginalIntact)
{
    const auto bytes = patternBytes(100, 0x44);
    RpcMessage m(5, 6, 7, MsgType::Request, bytes.data(), bytes.size());
    auto frames = m.toFrames();
    auto dup = frames; // in-flight duplicate: handle passes, no copies

    dup[1].corruptPayloadByte(5);

    // The duplicate is detectably damaged...
    EXPECT_FALSE(dup[1].verifyChecksum());
    // ...the original — the sender's retransmission copy — is not.
    EXPECT_TRUE(frames[1].verifyChecksum());
    EXPECT_EQ(frames[1].payloadByte(5),
              static_cast<std::uint8_t>(dup[1].payloadByte(5) ^ 0xff));
    RpcMessage out;
    ASSERT_TRUE(RpcMessage::fromFrames(frames, out));
    EXPECT_TRUE(out.payload() == bytes);
    EXPECT_FALSE(RpcMessage::fromFrames(dup, out));
}

TEST(Frame, HandBuiltFramesGatherWithCopyAccounting)
{
    // Frames that do not share one source buffer (hand-built, e.g. by
    // tests or future hardware reassembly) fall back to a gather that
    // is *counted* as a byte copy.
    const auto bytes = patternBytes(96, 0x19);
    RpcMessage m(2, 4, 6, MsgType::Request, bytes.data(), bytes.size());
    auto frames = m.toFrames();
    // Rebuild frame 1's bytes privately so the buffers differ.
    std::uint8_t tmp[kFramePayload];
    for (std::size_t i = 0; i < frames[1].liveBytes(); ++i)
        tmp[i] = frames[1].payloadByte(i);
    frames[1].setPayload(tmp, frames[1].liveBytes());
    frames[1].header.checksum = frames[1].computeChecksum();

    const PayloadStats before = payloadStats();
    RpcMessage out;
    ASSERT_TRUE(RpcMessage::fromFrames(frames, out));
    const PayloadStats after = payloadStats();
    EXPECT_TRUE(out.payload() == bytes);
    EXPECT_FALSE(out.payload().sharesBufferWith(m.payload()));
    EXPECT_EQ(after.bytesCopied, before.bytesCopied + bytes.size());
}

} // namespace
