/**
 * @file
 * Randomized reassembler stress: many concurrent multi-frame messages
 * with interleaved (per-message in-order) frame arrival must all
 * reassemble exactly once with intact payloads, regardless of the
 * interleaving.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "proto/wire.hh"
#include "sim/rng.hh"

namespace {

using namespace dagger;
using namespace dagger::proto;

class ReassemblerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReassemblerFuzz, InterleavedStreamsAlwaysReassemble)
{
    sim::Rng rng(GetParam());
    constexpr int kMessages = 60;

    // Build the messages and their frame queues.
    struct Stream
    {
        RpcMessage msg;
        std::vector<Frame> frames;
        std::size_t next = 0;
    };
    std::vector<Stream> streams;
    for (int i = 0; i < kMessages; ++i) {
        const std::size_t len = 1 + rng.range(400);
        std::vector<std::uint8_t> payload(len);
        for (auto &b : payload)
            b = static_cast<std::uint8_t>(rng.range(256));
        Stream s;
        s.msg = RpcMessage(static_cast<ConnId>(1 + rng.range(5)),
                           static_cast<RpcId>(i), 1, MsgType::Request,
                           payload.data(), payload.size());
        s.frames = s.msg.toFrames();
        streams.push_back(std::move(s));
    }

    // Feed frames: pick a random stream with frames left each step
    // (per-stream order preserved — the fabric's guarantee).
    Reassembler reasm;
    std::map<RpcId, RpcMessage> completed;
    std::size_t remaining = 0;
    for (const Stream &s : streams)
        remaining += s.frames.size();
    while (remaining > 0) {
        const std::size_t pick = rng.range(streams.size());
        Stream &s = streams[pick];
        if (s.next >= s.frames.size())
            continue;
        RpcMessage out;
        if (reasm.push(s.frames[s.next++], out)) {
            ASSERT_EQ(completed.count(out.rpcId()), 0u)
                << "message completed twice";
            completed.emplace(out.rpcId(), std::move(out));
        }
        --remaining;
    }

    ASSERT_EQ(completed.size(), static_cast<std::size_t>(kMessages));
    EXPECT_EQ(reasm.inFlight(), 0u);
    EXPECT_EQ(reasm.malformed(), 0u);
    for (const Stream &s : streams) {
        const auto it = completed.find(s.msg.rpcId());
        ASSERT_NE(it, completed.end());
        EXPECT_EQ(it->second.payload(), s.msg.payload());
        EXPECT_EQ(it->second.connId(), s.msg.connId());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassemblerFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace
