/**
 * @file
 * OpenLoopGen tests: cohort-actor compression of million-client
 * populations, same-seed determinism, arrival-rate fidelity, diurnal
 * shaping, and per-tenant mixes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "app/open_loop.hh"
#include "sim/event_queue.hh"

namespace {

using namespace dagger;
using namespace dagger::app;
using sim::msToTicks;
using sim::usToTicks;

struct Arrival
{
    sim::Tick at;
    unsigned tenant;
    unsigned cohort;
    std::uint64_t client;
    std::uint64_t keyIndex;
    bool isGet;

    bool
    operator==(const Arrival &o) const
    {
        return at == o.at && tenant == o.tenant && cohort == o.cohort &&
               client == o.client && keyIndex == o.keyIndex &&
               isGet == o.isGet;
    }
};

std::vector<Arrival>
trace(std::uint64_t seed, sim::Tick duration, const TenantSpec &spec)
{
    sim::EventQueue eq;
    OpenLoopGen gen(eq, seed);
    gen.addTenant(spec);
    std::vector<Arrival> out;
    gen.start(duration, [&](const OpenLoopCall &c) {
        out.push_back(Arrival{eq.now(), c.tenant, c.cohort, c.client,
                              c.op.keyIndex, c.op.isGet});
    });
    eq.runUntil(duration);
    return out;
}

TEST(OpenLoopGen, MillionClientsViaCohortActors)
{
    TenantSpec spec;
    spec.clients = 1'048'576; // 2^20 simulated clients
    spec.cohorts = 64;
    spec.perClientRps = 20.0; // ~21 Mrps aggregate, ~21k in 1 ms
    spec.keySpace = 10'000;

    sim::EventQueue eq;
    OpenLoopGen gen(eq, 0x510);
    gen.addTenant(spec);
    // The memory story: 2^20 clients are carried by 64 actors.
    EXPECT_EQ(gen.cohortCount(), 64u);
    EXPECT_EQ(gen.clientCount(), 1'048'576u);

    std::uint64_t max_client = 0;
    std::uint64_t arrivals = 0;
    gen.start(msToTicks(1), [&](const OpenLoopCall &c) {
        ++arrivals;
        max_client = std::max(max_client, c.client);
        EXPECT_LT(c.client, spec.clients);
        EXPECT_LT(c.op.keyIndex, spec.keySpace);
    });
    eq.runUntil(msToTicks(1));

    // ~20971 expected arrivals; Poisson sd ~145.
    EXPECT_GT(arrivals, 20'000u);
    EXPECT_LT(arrivals, 22'000u);
    EXPECT_EQ(gen.issued(), arrivals);
    // Client draws actually span the million-client space.
    EXPECT_GT(max_client, spec.clients / 2);
}

TEST(OpenLoopGen, SameSeedSameTraceDifferentSeedDiffers)
{
    TenantSpec spec;
    spec.clients = 100'000;
    spec.cohorts = 16;
    spec.perClientRps = 50.0;
    spec.keySpace = 1'000;
    spec.getRatio = 0.8;

    const auto a = trace(0xabc, msToTicks(2), spec);
    const auto b = trace(0xabc, msToTicks(2), spec);
    const auto c = trace(0xdef, msToTicks(2), spec);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(OpenLoopGen, DiurnalCurveShapesArrivals)
{
    TenantSpec spec;
    spec.clients = 50'000;
    spec.cohorts = 8;
    spec.perClientRps = 100.0;
    spec.diurnal.period = msToTicks(2);
    spec.diurnal.low = 0.2;
    spec.diurnal.high = 1.0;

    // Quarters 1+4 straddle the trough (t=0), quarters 2+3 the peak.
    const auto arr = trace(0xd1, msToTicks(2), spec);
    std::uint64_t trough = 0, peak = 0;
    for (const Arrival &a : arr) {
        const sim::Tick q = msToTicks(2) / 4;
        if (a.at < q || a.at >= 3 * q)
            ++trough;
        else
            ++peak;
    }
    ASSERT_GT(arr.size(), 1000u);
    // Raised cosine: the peak half carries several times the trough.
    EXPECT_GT(peak, 2 * trough);
}

TEST(OpenLoopGen, PerTenantMixesAreIndependent)
{
    TenantSpec readers;
    readers.name = "readers";
    readers.clients = 10'000;
    readers.cohorts = 4;
    readers.perClientRps = 200.0;
    readers.getRatio = 1.0;

    TenantSpec writers = readers;
    writers.name = "writers";
    writers.getRatio = 0.0;

    sim::EventQueue eq;
    OpenLoopGen gen(eq, 0x3e7);
    const unsigned t_read = gen.addTenant(readers);
    const unsigned t_write = gen.addTenant(writers);
    EXPECT_EQ(gen.cohortCount(), 8u);

    std::uint64_t read_gets = 0, read_total = 0;
    std::uint64_t write_sets = 0, write_total = 0;
    gen.start(msToTicks(1), [&](const OpenLoopCall &c) {
        if (c.tenant == t_read) {
            ++read_total;
            read_gets += c.op.isGet;
        } else {
            ASSERT_EQ(c.tenant, t_write);
            ++write_total;
            write_sets += !c.op.isGet;
            EXPECT_FALSE(c.op.value.empty());
        }
    });
    eq.runUntil(msToTicks(1));

    ASSERT_GT(read_total, 500u);
    ASSERT_GT(write_total, 500u);
    EXPECT_EQ(read_gets, read_total);
    EXPECT_EQ(write_sets, write_total);
}

TEST(OpenLoopGen, ZipfSkewConcentratesOnHotKeys)
{
    TenantSpec spec;
    spec.clients = 10'000;
    spec.cohorts = 4;
    spec.perClientRps = 500.0;
    spec.keySpace = 10'000;
    spec.zipfTheta = 0.99;

    const auto arr = trace(0x21f, msToTicks(1), spec);
    ASSERT_GT(arr.size(), 2000u);
    std::uint64_t hot = 0;
    for (const Arrival &a : arr)
        hot += a.keyIndex < spec.keySpace / 100; // hottest 1%
    // Zipf(0.99): the hottest 1% of keys draws far more than 1%.
    EXPECT_GT(hot * 5, arr.size());
}

} // namespace
