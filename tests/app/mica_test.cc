/**
 * @file
 * Mini-MICA tests: lossy index + circular log semantics, EREW
 * partitioning consistent with the NIC's object-level load balancer.
 */

#include <gtest/gtest.h>

#include <set>

#include "app/mica.hh"
#include "app/workload.hh"
#include "nic/load_balancer.hh"

namespace {

using namespace dagger::app;

TEST(MicaPartition, SetGetRoundTrip)
{
    MicaPartition p(1 << 16, 1 << 8);
    p.set("hello", "world");
    auto got = p.get("hello");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "world");
}

TEST(MicaPartition, MissOnAbsentKey)
{
    MicaPartition p(1 << 16, 1 << 8);
    EXPECT_FALSE(p.get("nope").has_value());
    EXPECT_EQ(p.stats().gets, 1u);
    EXPECT_EQ(p.stats().getHits, 0u);
}

TEST(MicaPartition, OverwriteReturnsLatestValue)
{
    MicaPartition p(1 << 16, 1 << 8);
    p.set("k", "v1");
    p.set("k", "v2");
    EXPECT_EQ(*p.get("k"), "v2");
}

TEST(MicaPartition, EraseRemoves)
{
    MicaPartition p(1 << 16, 1 << 8);
    p.set("k", "v");
    EXPECT_TRUE(p.erase("k"));
    EXPECT_FALSE(p.get("k").has_value());
    EXPECT_FALSE(p.erase("k"));
}

TEST(MicaPartition, LogWrapInvalidatesOldEntries)
{
    // Tiny log: 4 KB; each record ~ 4 + 8 + 8 = 20 B -> ~200 records.
    MicaPartition p(4096, 1 << 10);
    for (int i = 0; i < 1000; ++i) {
        char key[9], val[9];
        std::snprintf(key, sizeof(key), "k%07d", i);
        std::snprintf(val, sizeof(val), "v%07d", i);
        p.set(key, val);
    }
    EXPECT_GT(p.stats().logWraps, 0u);
    // Oldest entries are gone; the newest survive.
    EXPECT_FALSE(p.get("k0000000").has_value());
    EXPECT_EQ(*p.get("k0000999"), "v0000999");
}

TEST(MicaPartition, LossyIndexDisplacesUnderPressure)
{
    // One bucket, 8 ways: the 9th distinct key displaces something.
    MicaPartition p(1 << 16, 1);
    for (int i = 0; i < 32; ++i) {
        char key[9];
        std::snprintf(key, sizeof(key), "k%07d", i);
        p.set(key, "v");
    }
    EXPECT_GT(p.stats().indexEvictions, 0u);
    std::size_t live = 0;
    for (int i = 0; i < 32; ++i) {
        char key[9];
        std::snprintf(key, sizeof(key), "k%07d", i);
        live += p.get(key).has_value();
    }
    EXPECT_LE(live, 8u);
    EXPECT_GT(live, 0u);
}

TEST(MicaKvs, PartitioningMatchesNicLoadBalancer)
{
    MicaKvs kvs(4, 1 << 16, 1 << 8);
    dagger::nic::ObjectLevelLb lb(0, 8);
    for (int i = 0; i < 200; ++i) {
        char key[9];
        std::snprintf(key, sizeof(key), "k%07d", i);
        dagger::proto::RpcMessage msg(1, 1, 1,
                                      dagger::proto::MsgType::Request, key,
                                      8);
        EXPECT_EQ(kvs.partitionOf(std::string_view(key, 8)),
                  lb.pick(msg, dagger::nic::ConnTuple{}, 4))
            << key;
    }
}

TEST(MicaKvs, CrossPartitionAccessCountedButCorrect)
{
    MicaKvs kvs(4, 1 << 16, 1 << 8);
    const std::string key = "somekey1";
    const unsigned owner = kvs.partitionOf(key);
    const unsigned wrong = (owner + 1) % 4;
    kvs.set(wrong, key, "value");
    auto got = kvs.get(wrong, key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "value");
    EXPECT_EQ(kvs.totalStats().crossPartition, 2u);
    // Correctly-steered access: no violation counted.
    kvs.get(owner, key);
    EXPECT_EQ(kvs.totalStats().crossPartition, 2u);
}

TEST(MicaKvs, KeysSpreadOverPartitions)
{
    MicaKvs kvs(8, 1 << 16, 1 << 8);
    std::set<unsigned> seen;
    for (int i = 0; i < 500; ++i) {
        char key[9];
        std::snprintf(key, sizeof(key), "k%07d", i);
        seen.insert(kvs.partitionOf(std::string_view(key, 8)));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(MicaKvs, BulkIntegrityUnderZipf)
{
    MicaKvs kvs(4, 1 << 20, 1 << 12);
    KvWorkload wl(10'000, 0.99, 0.5, kTiny);
    // Warm: set every key once.
    for (std::uint64_t i = 0; i < wl.numKeys(); ++i) {
        const auto key = wl.keyFor(i);
        kvs.set(kvs.partitionOf(key), key, wl.valueFor(key));
    }
    // Every hit must return the deterministic value.
    std::uint64_t hits = 0;
    for (int i = 0; i < 20'000; ++i) {
        KvOp op = wl.next();
        const unsigned part = kvs.partitionOf(op.key);
        if (op.isGet) {
            auto got = kvs.get(part, op.key);
            if (got) {
                ++hits;
                ASSERT_EQ(*got, wl.valueFor(op.key)) << op.key;
            }
        } else {
            kvs.set(part, op.key, op.value);
        }
    }
    // Zipf(0.99) over a warm 10k store: the hot head should hit.
    EXPECT_GT(hits, 5000u);
}

TEST(Workload, DeterministicAcrossInstances)
{
    KvWorkload a(1000, 0.99, 0.95, kSmall, 7);
    KvWorkload b(1000, 0.99, 0.95, kSmall, 7);
    for (int i = 0; i < 100; ++i) {
        KvOp x = a.next(), y = b.next();
        EXPECT_EQ(x.isGet, y.isGet);
        EXPECT_EQ(x.key, y.key);
        EXPECT_EQ(x.value, y.value);
    }
}

TEST(Workload, ShapesMatchPaper)
{
    KvWorkload tiny(1000, 0.99, 0.95, kTiny);
    KvOp op = tiny.next();
    EXPECT_EQ(op.key.size(), 8u);
    KvWorkload small(1000, 0.99, 0.5, kSmall);
    int gets = 0;
    for (int i = 0; i < 2000; ++i) {
        KvOp o = small.next();
        EXPECT_EQ(o.key.size(), 16u);
        if (!o.isGet) {
            EXPECT_EQ(o.value.size(), 32u);
        }
        gets += o.isGet;
    }
    EXPECT_NEAR(gets, 1000, 120);
}

} // namespace
