/**
 * @file
 * KVS-over-Dagger integration tests (§5.6): MICA and memcached served
 * through the full fabric, object-level steering correctness, data
 * integrity through the wire format.
 */

#include <gtest/gtest.h>

#include "app/adapters.hh"
#include "app/kvs_service.hh"
#include "app/workload.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"

namespace {

using namespace dagger;
using namespace dagger::app;
using namespace dagger::rpc;
using sim::usToTicks;

struct KvsRig
{
    explicit KvsRig(KvBackend &backend, unsigned server_flows = 1,
                    nic::LbScheme lb = nic::LbScheme::ObjectLevel)
        : sys(ic::IfaceKind::Upi), cpus(sys.eq(), 2 + server_flows)
    {
        nic::NicConfig ccfg;
        ccfg.numFlows = 1;
        nic::NicConfig scfg;
        scfg.numFlows = server_flows;
        nic::SoftConfig soft;
        soft.autoBatch = true;

        clientNode = &sys.addNode(ccfg, soft);
        serverNode = &sys.addNode(scfg, soft);
        serverNode->nicDev().setObjectLevelKey(0, 8);

        client = std::make_unique<RpcClient>(*clientNode, 0,
                                             cpus.core(0).thread(0));
        client->setConnection(
            sys.connect(*clientNode, 0, *serverNode, 0, lb));
        kvs = std::make_unique<KvsClient>(*client);

        server = std::make_unique<RpcThreadedServer>(*serverNode);
        for (unsigned f = 0; f < server_flows; ++f)
            server->addThread(f, cpus.core(1 + f).thread(0));
        app = std::make_unique<KvsServer>(*server, backend);
    }

    DaggerSystem sys;
    CpuSet cpus;
    DaggerNode *clientNode;
    DaggerNode *serverNode;
    std::unique_ptr<RpcClient> client;
    std::unique_ptr<KvsClient> kvs;
    std::unique_ptr<RpcThreadedServer> server;
    std::unique_ptr<KvsServer> app;
};

TEST(KvsOverDagger, MicaSetThenGet)
{
    MicaKvs store(1, 1 << 20, 1 << 10);
    MicaBackend backend(store);
    KvsRig rig(backend);

    bool stored = false;
    std::string got;
    rig.kvs->set("key00001", "hello", [&](bool ok) { stored = ok; });
    rig.sys.eq().runFor(usToTicks(50));
    ASSERT_TRUE(stored);

    rig.kvs->get("key00001", [&](bool hit, std::string_view v) {
        ASSERT_TRUE(hit);
        got.assign(v);
    });
    rig.sys.eq().runFor(usToTicks(50));
    EXPECT_EQ(got, "hello");
}

TEST(KvsOverDagger, GetMissReportsMiss)
{
    MicaKvs store(1, 1 << 20, 1 << 10);
    MicaBackend backend(store);
    KvsRig rig(backend);
    bool called = false, hit = true;
    rig.kvs->get("missing1", [&](bool h, std::string_view) {
        called = true;
        hit = h;
    });
    rig.sys.eq().runFor(usToTicks(50));
    ASSERT_TRUE(called);
    EXPECT_FALSE(hit);
}

TEST(KvsOverDagger, ObjectLevelLbPreservesErewOnMica)
{
    MicaKvs store(4, 1 << 20, 1 << 10);
    MicaBackend backend(store);
    KvsRig rig(backend, 4, nic::LbScheme::ObjectLevel);

    KvWorkload wl(200, 0.6, 0.0, kTiny); // all SETs
    int done = 0;
    for (int i = 0; i < 100; ++i) {
        KvOp op = wl.next();
        rig.sys.eq().scheduleAt(usToTicks(i), [&rig, &done, op] {
            rig.kvs->set(op.key, op.value, [&done](bool) { ++done; });
        });
    }
    rig.sys.eq().runFor(usToTicks(400));
    EXPECT_EQ(done, 100);
    // Hardware steering matched store partitioning: no EREW violations.
    EXPECT_EQ(store.totalStats().crossPartition, 0u);
}

TEST(KvsOverDagger, RoundRobinLbViolatesErewOnMica)
{
    MicaKvs store(4, 1 << 20, 1 << 10);
    MicaBackend backend(store);
    KvsRig rig(backend, 4, nic::LbScheme::RoundRobin);

    KvWorkload wl(200, 0.6, 0.0, kTiny);
    int done = 0;
    for (int i = 0; i < 100; ++i) {
        KvOp op = wl.next();
        rig.sys.eq().scheduleAt(usToTicks(i), [&rig, &done, op] {
            rig.kvs->set(op.key, op.value, [&done](bool) { ++done; });
        });
    }
    rig.sys.eq().runFor(usToTicks(400));
    EXPECT_EQ(done, 100);
    // Round-robin ignores key affinity: most accesses land wrong.
    EXPECT_GT(store.totalStats().crossPartition, 50u);
}

TEST(KvsOverDagger, MemcachedBackendIntegrity)
{
    Memcached store(1 << 22);
    // The backend needs the rig's event queue: build the rig with a
    // placeholder backend, then re-attach a memcached-backed KvsServer
    // (handler re-registration overwrites the placeholder's).
    MicaKvs dummy(1, 1 << 20, 1 << 10);
    MicaBackend dummy_backend(dummy);
    KvsRig rig(dummy_backend);
    KvsRig *rig_ptr = &rig;
    MemcachedBackend backend(store, rig.sys.eq());
    KvsServer mc_app(*rig.server, backend);

    KvWorkload wl(500, 0.8, 0.0, kSmall);
    std::vector<KvOp> ops;
    int stored = 0;
    for (int i = 0; i < 50; ++i) {
        ops.push_back(wl.next());
        const KvOp &op = ops.back();
        rig_ptr->sys.eq().scheduleAt(usToTicks(i * 4), [&, op] {
            rig_ptr->kvs->set(op.key, op.value,
                              [&stored](bool) { ++stored; });
        });
    }
    rig.sys.eq().runFor(usToTicks(400));
    EXPECT_EQ(stored, 50);

    int verified = 0;
    for (const KvOp &op : ops) {
        rig.kvs->get(op.key, [&, op](bool hit, std::string_view v) {
            ASSERT_TRUE(hit) << op.key;
            EXPECT_EQ(std::string(v), wl.valueFor(op.key));
            ++verified;
        });
        rig.sys.eq().runFor(usToTicks(30));
    }
    EXPECT_EQ(verified, 50);
}

TEST(KvsOverDagger, MicaFasterThanMemcachedPerOp)
{
    MicaCost mica;
    MemcachedCost mc;
    EXPECT_LT(mica.hotGetCost, mc.getCost);
    EXPECT_LT(mica.hotSetCost, mc.setCost);
    // Shape anchor: memcached is several times slower per op (§5.6).
    EXPECT_GT(static_cast<double>(mc.getCost) / mica.hotGetCost, 2.5);
}

} // namespace
