/**
 * @file
 * Mini-memcached tests: LRU eviction, expiry, slab accounting.
 */

#include <gtest/gtest.h>

#include "app/memcached.hh"
#include "sim/time.hh"

namespace {

using namespace dagger::app;
using dagger::sim::usToTicks;

TEST(Memcached, SetGetRoundTrip)
{
    Memcached mc(1 << 20);
    mc.set("key", "value");
    auto got = mc.get("key");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "value");
    EXPECT_EQ(mc.stats().getHits, 1u);
}

TEST(Memcached, MissOnAbsent)
{
    Memcached mc(1 << 20);
    EXPECT_FALSE(mc.get("nope").has_value());
    EXPECT_EQ(mc.stats().cmdGet, 1u);
    EXPECT_EQ(mc.stats().getHits, 0u);
}

TEST(Memcached, OverwriteReplaces)
{
    Memcached mc(1 << 20);
    mc.set("k", "v1");
    mc.set("k", "v2");
    EXPECT_EQ(*mc.get("k"), "v2");
    EXPECT_EQ(mc.stats().currItems, 1u);
}

TEST(Memcached, EraseRemoves)
{
    Memcached mc(1 << 20);
    mc.set("k", "v");
    EXPECT_TRUE(mc.erase("k"));
    EXPECT_FALSE(mc.erase("k"));
    EXPECT_EQ(mc.stats().currItems, 0u);
}

TEST(Memcached, LruEvictionUnderMemoryPressure)
{
    // ~100 chunks of the smallest class.
    Memcached mc(100 * Memcached::slabChunkSize(0));
    for (int i = 0; i < 200; ++i) {
        char key[12];
        std::snprintf(key, sizeof(key), "key%05d", i);
        mc.set(key, "v");
    }
    EXPECT_GT(mc.stats().evictions, 0u);
    // Oldest keys evicted, newest retained.
    EXPECT_FALSE(mc.get("key00000").has_value());
    EXPECT_TRUE(mc.get("key00199").has_value());
}

TEST(Memcached, GetRefreshesLruPosition)
{
    Memcached mc(3 * Memcached::slabChunkSize(0));
    mc.set("a", "1");
    mc.set("b", "2");
    mc.set("c", "3");
    mc.get("a"); // touch a -> victim should be b
    mc.set("d", "4");
    EXPECT_TRUE(mc.get("a").has_value());
    EXPECT_FALSE(mc.get("b").has_value());
}

TEST(Memcached, TtlExpiry)
{
    Memcached mc(1 << 20);
    mc.set("k", "v", /*now=*/usToTicks(0), /*ttl=*/usToTicks(10));
    EXPECT_TRUE(mc.get("k", usToTicks(5)).has_value());
    EXPECT_FALSE(mc.get("k", usToTicks(11)).has_value());
    EXPECT_EQ(mc.stats().expired, 1u);
}

TEST(Memcached, SlabClassesGrowGeometrically)
{
    EXPECT_EQ(Memcached::slabClassOf(1), 0u);
    const std::size_t c0 = Memcached::slabChunkSize(0);
    const std::size_t c1 = Memcached::slabChunkSize(1);
    const std::size_t c5 = Memcached::slabChunkSize(5);
    EXPECT_GT(c1, c0);
    EXPECT_GT(c5, c1);
    EXPECT_NEAR(static_cast<double>(c1) / c0, 1.25, 0.05);
    // Larger items land in larger classes.
    EXPECT_GT(Memcached::slabClassOf(1000), Memcached::slabClassOf(10));
}

TEST(Memcached, OversizedItemRejectedNotFatal)
{
    Memcached mc(4096);
    std::string huge(8192, 'x');
    mc.set("big", huge);
    EXPECT_FALSE(mc.get("big").has_value());
}

TEST(Memcached, BytesTrackUsage)
{
    Memcached mc(1 << 20);
    mc.set("k", "v");
    EXPECT_EQ(mc.stats().bytes, Memcached::slabChunkSize(0));
}

} // namespace
