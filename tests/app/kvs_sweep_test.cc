/**
 * @file
 * Parameterized KVS-over-Dagger sweeps: both backends x both dataset
 * shapes x both request mixes, checking completion, integrity, and
 * the cost-model ordering (MICA > memcached throughput) at every
 * point.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "app/adapters.hh"
#include "app/kvs_service.hh"
#include "app/workload.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "rpc/system.hh"
#include "svc/flight.hh"

namespace {

using namespace dagger;
using namespace dagger::app;
using namespace dagger::rpc;
using sim::usToTicks;

enum class Backend { Mica, Memcached };

using KvsSweepParam =
    std::tuple<Backend, bool /*small shape*/, double /*get ratio*/>;

class KvsSweep : public ::testing::TestWithParam<KvsSweepParam>
{
};

TEST_P(KvsSweep, CompletionAndIntegrity)
{
    const auto [backend_kind, small, get_ratio] = GetParam();
    const DatasetShape shape = small ? kSmall : kTiny;

    DaggerSystem sys(ic::IfaceKind::Upi);
    CpuSet cpus(sys.eq(), 2);
    nic::NicConfig cfg;
    cfg.numFlows = 1;
    nic::SoftConfig soft;
    soft.autoBatch = true;

    auto &cnode = sys.addNode(cfg, soft);
    auto &snode = sys.addNode(cfg, soft);
    snode.nicDev().setObjectLevelKey(0, shape.keyLen);

    RpcClient client(cnode, 0, cpus.core(0).thread(0));
    client.setConnection(
        sys.connect(cnode, 0, snode, 0, nic::LbScheme::ObjectLevel));
    KvsClient kvs(client);

    RpcThreadedServer server(snode);
    server.addThread(0, cpus.core(1).thread(0));

    MicaKvs mica(1, 1u << 22, 1u << 12);
    Memcached mcd(8u << 20);
    MicaBackend mica_backend(mica);
    MemcachedBackend mcd_backend(mcd, sys.eq());
    KvBackend &backend = backend_kind == Backend::Mica
        ? static_cast<KvBackend &>(mica_backend)
        : static_cast<KvBackend &>(mcd_backend);
    KvsServer app(server, backend);

    KvWorkload wl(2000, 0.99, get_ratio, shape);
    // Warm every key so GET hits are checkable.
    for (std::uint64_t i = 0; i < wl.numKeys(); ++i) {
        const auto key = wl.keyFor(i);
        if (backend_kind == Backend::Mica)
            mica.partition(0).set(key, wl.valueFor(key));
        else
            mcd.set(key, wl.valueFor(key));
    }

    constexpr int kOps = 400;
    int done = 0;
    int integrity_errors = 0;
    std::function<void()> fire = [&] {
        if (done >= kOps)
            return;
        KvOp op = wl.next();
        if (op.isGet) {
            const std::string expect = wl.valueFor(op.key);
            kvs.get(op.key, [&, expect](bool hit, std::string_view v) {
                if (hit && std::string(v) != expect)
                    ++integrity_errors;
                ++done;
                fire();
            });
        } else {
            kvs.set(op.key, op.value, [&](bool stored) {
                if (!stored)
                    ++integrity_errors;
                ++done;
                fire();
            });
        }
    };
    for (int w = 0; w < 8; ++w)
        fire();
    sys.eq().runFor(sim::msToTicks(20));

    EXPECT_GE(done, kOps);
    EXPECT_EQ(integrity_errors, 0);
    EXPECT_EQ(snode.nicDev().monitor().drops(), 0u);
}

std::string
kvsSweepName(const ::testing::TestParamInfo<KvsSweepParam> &info)
{
    std::string name = std::get<0>(info.param) == Backend::Mica
        ? "mica"
        : "memcached";
    name += std::get<1>(info.param) ? "_small" : "_tiny";
    name += std::get<2>(info.param) > 0.9 ? "_read" : "_write";
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KvsSweep,
    ::testing::Combine(::testing::Values(Backend::Mica,
                                         Backend::Memcached),
                       ::testing::Bool(), ::testing::Values(0.5, 0.95)),
    kvsSweepName);

/** Worker-count scaling property of the Optimized flight model. */
class FlightWorkerSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FlightWorkerSweep, MoreWorkersMoreCapacity)
{
    // Capacity at a fixed overload point grows with the worker count
    // (the Optimized model's knob, §5.7).
    const unsigned workers = GetParam();
    svc::FlightConfig cfg;
    cfg.model = svc::ThreadingModel::Optimized;
    cfg.flightWorkers = workers;
    cfg.staffReadRate = 0;
    svc::FlightApp app(cfg);
    app.run(/*krps=*/30.0, sim::msToTicks(50));
    const double goodput =
        static_cast<double>(app.completed()) /
        std::max<std::uint64_t>(1, app.issued());
    if (workers >= 12) {
        EXPECT_GT(goodput, 0.99); // 30 Krps fits comfortably
    } else if (workers <= 2) {
        EXPECT_LT(goodput, 0.9); // clearly over capacity
    }
}

INSTANTIATE_TEST_SUITE_P(Workers, FlightWorkerSweep,
                         ::testing::Values(2u, 8u, 16u));

} // namespace
