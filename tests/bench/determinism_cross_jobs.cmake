# ctest script for test_determinism_cross_jobs: run one bench grid
# twice (--jobs 1 vs --jobs 8) and byte-compare the JSON exports after
# normalizing the two fields that legitimately differ between runs
# (the jobs count itself and host wall time).  Everything else — every
# point, anchor, check, and config value — must match byte for byte,
# which is the determinism contract every reproduced figure rests on.
#
# Expects: -DBENCH=<bench binary> -DWORKDIR=<scratch dir>

if(NOT BENCH OR NOT WORKDIR)
    message(FATAL_ERROR "usage: cmake -DBENCH=... -DWORKDIR=... -P ...")
endif()

# Namespace scratch files by bench so several registrations of this
# script can run under one parallel ctest invocation.
get_filename_component(stem ${BENCH} NAME_WE)
set(json1 ${WORKDIR}/${stem}_jobs1.json)
set(json8 ${WORKDIR}/${stem}_jobs8.json)

foreach(jobs IN ITEMS 1 8)
    execute_process(
        COMMAND ${BENCH} --jobs ${jobs} --json
                ${WORKDIR}/${stem}_jobs${jobs}.json
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${BENCH} --jobs ${jobs} exited with ${rc}")
    endif()
endforeach()

file(READ ${json1} a)
file(READ ${json8} b)

foreach(var IN ITEMS a b)
    string(REGEX REPLACE "\"jobs\": [0-9]+," "\"jobs\": N," ${var} "${${var}}")
    string(REGEX REPLACE "\"wall_clock_sec\": [0-9.eE+-]+,"
           "\"wall_clock_sec\": W," ${var} "${${var}}")
endforeach()

if(NOT a STREQUAL b)
    message(FATAL_ERROR "JSON differs between --jobs 1 and --jobs 8:\n"
        "--- jobs 1 ---\n${a}\n--- jobs 8 ---\n${b}")
endif()

message(STATUS "jobs 1 and jobs 8 JSON byte-identical after "
    "jobs/wall-clock normalization")
