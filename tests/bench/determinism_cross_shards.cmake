# ctest script for test_determinism_cross_shards: run a figure bench
# at --shards 1 (the classic single-queue engine) and --shards 4 (the
# sharded parallel engine, fabric on shard 0 + nodes spread over three
# node domains) and byte-compare the JSON exports.  Only the fields
# that legitimately differ between runs are normalized: the shard
# count itself, host wall time, and — when the sharded run exports
# engine timing — the busy/stall accounting keys.  Every point,
# anchor, check, and config value must match byte for byte: the
# conservative-lookahead merge is required to reproduce the sequential
# event order exactly (docs/PERF.md, "Deterministic merge").
#
# Expects: -DBENCH=<bench binary> -DWORKDIR=<scratch dir>
# Optional: -DTHREADS=<n> to force DAGGER_SHARD_THREADS for the
# sharded run (exercises the real worker threads even on small CI
# machines, where the engine would otherwise run its serial fallback).

if(NOT BENCH OR NOT WORKDIR)
    message(FATAL_ERROR "usage: cmake -DBENCH=... -DWORKDIR=... -P ...")
endif()

get_filename_component(stem ${BENCH} NAME_WE)

foreach(shards IN ITEMS 1 4)
    set(ENV{DAGGER_SHARD_THREADS} "")
    if(THREADS AND shards GREATER 1)
        set(ENV{DAGGER_SHARD_THREADS} ${THREADS})
    endif()
    execute_process(
        COMMAND ${BENCH} --shards ${shards} --json
                ${WORKDIR}/${stem}_shards${shards}.json
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${BENCH} --shards ${shards} exited with ${rc}")
    endif()
endforeach()

file(READ ${WORKDIR}/${stem}_shards1.json a)
file(READ ${WORKDIR}/${stem}_shards4.json b)

foreach(var IN ITEMS a b)
    string(REGEX REPLACE "\"shards\": [0-9]+," "\"shards\": N,"
           ${var} "${${var}}")
    string(REGEX REPLACE "\"wall_clock_sec\": [0-9.eE+-]+,"
           "\"wall_clock_sec\": W," ${var} "${${var}}")
    # Engine wall-clock accounting (busy_ms_shard<i>, parallel_ms,
    # serial_ms, barrier_stall_frac) only exists on sharded runs and
    # is host-time, not simulated time; strip it before comparing.
    string(REGEX REPLACE
           "\"(busy_ms_shard[0-9]+|parallel_ms|serial_ms|barrier_stall_frac)\": [0-9.eE+-]+,?[ \n]*"
           "" ${var} "${${var}}")
endforeach()

if(NOT a STREQUAL b)
    message(FATAL_ERROR "JSON differs between --shards 1 and --shards 4:\n"
        "--- shards 1 ---\n${a}\n--- shards 4 ---\n${b}")
endif()

message(STATUS "shards 1 and shards 4 JSON byte-identical after "
    "shards/wall-clock normalization")
